// Command dbload drives concurrent transactional load at a dbserver and
// reports throughput and latency percentiles.
//
// Each session is one TCP connection running debit/credit transfers:
// read two distinct balance pages, move a random amount between them,
// commit. Transfers preserve the bank's total balance, so after the run
// dbload audits the invariant with a read-only transaction — a nonzero
// drift means a recovery architecture leaked or lost a committed write
// under concurrency.
//
// Two load models:
//
//   - closed (default): -sessions workers each run -txns transactions
//     back-to-back; latency is per-transaction service time.
//   - open: a pacer schedules -rate arrivals/sec onto the session pool
//     regardless of how fast the server drains them; latency is measured
//     from the scheduled arrival instant, so queueing delay counts.
//
// Deadlock victims (the server's retryable status) are retried with a
// fresh transaction and counted separately.
//
// Modes:
//
//	dbload -addr HOST:PORT            drive an external dbserver
//	dbload -engines all               self-host: start an in-process
//	                                  server per architecture and drive
//	                                  each in turn
//
// Usage:
//
//	go run ./cmd/dbload -engines all -sessions 1000 -txns 3
//	    [-mode closed|open] [-rate 2000] [-pages 64] [-value 1000]
//	    [-transfers 1] [-seed 1] [-out BENCH_server.json] [-live :8080]
//
// dbload is a benchmark harness, not a simulator: wall-clock reads go
// through internal/obs/live's Clock, the one scope where host time is
// legal under simlint; randomness is per-worker seeded, never global.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs/live"
	"repro/internal/server"
)

// options collects the knobs shared by every engine run.
type options struct {
	Mode      string
	Sessions  int
	Txns      int
	Pages     int
	Value     int64
	Transfers int
	Rate      float64
	Seed      int64
}

// engineResult is one architecture's row in BENCH_server.json.
type engineResult struct {
	Name            string        `json:"name"`
	Txns            int64         `json:"txns"`
	DeadlockRetries int64         `json:"deadlock_retries"`
	BusyRetries     int64         `json:"busy_retries"`
	ElapsedMs       float64       `json:"elapsed_ms"`
	TxnsPerSec      float64       `json:"txns_per_sec"`
	LatencyMs       live.HistSnap `json:"latency_ms"`
	Server          server.Stats  `json:"server"`
	BalanceSum      int64         `json:"balance_sum"`
	Consistent      bool          `json:"consistent"`
}

// result is the BENCH_server.json document.
type result struct {
	Benchmark  string         `json:"benchmark"`
	GoMaxProcs int            `json:"gomaxprocs"`
	Mode       string         `json:"mode"`
	Sessions   int            `json:"sessions"`
	TxnsPerSes int            `json:"txns_per_session"`
	Pages      int            `json:"pages"`
	Transfers  int            `json:"transfers_per_txn"`
	RatePerSec float64        `json:"rate_per_sec"`
	Seed       int64          `json:"seed"`
	Engines    []engineResult `json:"engines"`
}

func main() {
	addr := flag.String("addr", "", "drive an external dbserver at this address")
	engines := flag.String("engines", "", "self-host these architectures (comma list or \"all\"); mutually exclusive with -addr")
	mode := flag.String("mode", "closed", "load model: closed or open")
	sessions := flag.Int("sessions", 1000, "concurrent sessions (TCP connections)")
	txns := flag.Int("txns", 3, "committed transactions per session")
	pages := flag.Int("pages", 64, "balance pages (self-host preload; must match the server's bank)")
	value := flag.Int64("value", 1000, "initial balance per page")
	transfers := flag.Int("transfers", 1, "debit/credit transfers per transaction (each: 2 reads + 2 writes)")
	rate := flag.Float64("rate", 2000, "open mode: scheduled arrivals per second")
	seed := flag.Int64("seed", 1, "base RNG seed (worker w uses seed+w)")
	out := flag.String("out", "BENCH_server.json", "output JSON path (empty: skip)")
	liveAddr := flag.String("live", "", "serve /metrics and /progress on this address (empty: off)")
	flag.Parse()

	opt := options{
		Mode:      *mode,
		Sessions:  *sessions,
		Txns:      *txns,
		Pages:     *pages,
		Value:     *value,
		Transfers: *transfers,
		Rate:      *rate,
		Seed:      *seed,
	}
	if err := run(*addr, *engines, opt, *out, *liveAddr); err != nil {
		fmt.Fprintln(os.Stderr, "dbload:", err)
		os.Exit(1)
	}
}

func run(addr, engines string, opt options, out, liveAddr string) error {
	if (addr == "") == (engines == "") {
		return errors.New("pass exactly one of -addr or -engines")
	}
	if opt.Mode != "closed" && opt.Mode != "open" {
		return fmt.Errorf("unknown -mode %q (want closed or open)", opt.Mode)
	}
	if opt.Mode == "open" && opt.Rate <= 0 {
		return errors.New("-mode open needs -rate > 0")
	}
	if opt.Pages < 2 {
		return errors.New("-pages must be at least 2 (transfers need two distinct pages)")
	}

	clock := live.Wall()
	prog := live.NewProgress(clock, "dbload")
	if liveAddr != "" {
		obs, err := live.Serve(liveAddr, live.Default(), prog)
		if err != nil {
			return err
		}
		defer obs.Close()
		fmt.Printf("dbload: live metrics on http://%s/metrics\n", obs.Addr())
	}

	res := result{
		Benchmark:  "server",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Mode:       opt.Mode,
		Sessions:   opt.Sessions,
		TxnsPerSes: opt.Txns,
		Pages:      opt.Pages,
		Transfers:  opt.Transfers,
		RatePerSec: opt.Rate,
		Seed:       opt.Seed,
	}
	if opt.Mode == "closed" {
		res.RatePerSec = 0
	}

	if addr != "" {
		er, err := driveEngine("external", addr, opt, clock, prog)
		if err != nil {
			return err
		}
		res.Engines = append(res.Engines, er)
	} else {
		names, err := server.EnginesByName(engines)
		if err != nil {
			return err
		}
		prog.AddTotal(int64(len(names) * opt.Sessions * opt.Txns))
		for _, name := range names {
			er, err := driveSelfHosted(name, opt, clock, prog)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			res.Engines = append(res.Engines, er)
		}
	}

	for _, er := range res.Engines {
		status := "OK"
		if !er.Consistent {
			status = "DRIFT"
		}
		fmt.Printf("%-12s %7d txns %8.1f txn/s  p50 %6.2fms p95 %6.2fms p99 %6.2fms  deadlock %5d  busy %5d  balance %s\n",
			er.Name, er.Txns, er.TxnsPerSec,
			er.LatencyMs.P50, er.LatencyMs.P95, er.LatencyMs.P99,
			er.DeadlockRetries, er.BusyRetries, status)
	}
	for _, er := range res.Engines {
		if !er.Consistent {
			return fmt.Errorf("%s: balance sum %d after run, want %d — committed writes lost or leaked",
				er.Name, er.BalanceSum, int64(opt.Pages)*opt.Value)
		}
	}

	if out != "" {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(out, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("dbload: wrote %s\n", out)
	}
	return nil
}

// driveSelfHosted starts an in-process server for the named architecture
// on an ephemeral loopback port, drives it, and tears it down.
func driveSelfHosted(name string, opt options, clock live.Clock, prog *live.Progress) (engineResult, error) {
	eng, err := server.NewEngine(name)
	if err != nil {
		return engineResult{}, err
	}
	if err := server.InitPages(eng, opt.Pages, opt.Value); err != nil {
		return engineResult{}, err
	}
	srv := server.New(eng, server.Config{Clock: clock, Metrics: server.NewMetrics(clock)})
	bound, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return engineResult{}, err
	}
	defer srv.Close()
	return driveEngine(name, bound.String(), opt, clock, prog)
}

// driveEngine runs the full load against one server address and audits the
// balance invariant afterwards.
func driveEngine(name, addr string, opt options, clock live.Clock, prog *live.Progress) (engineResult, error) {
	hist := live.Default().Histogram("dbload." + name + ".txn_ms")
	var committed, retries, busyRetries atomic.Int64

	// Open mode feeds scheduled arrival instants to the session pool
	// through a channel; closed mode leaves jobs nil and workers self-pace.
	var jobs chan time.Time
	total := opt.Sessions * opt.Txns
	if opt.Mode == "open" {
		jobs = make(chan time.Time, total)
	}

	errc := make(chan error, opt.Sessions)
	var wg sync.WaitGroup
	start := clock.Now()
	for w := 0; w < opt.Sessions; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errc <- session(addr, w, opt, clock, hist, jobs, &committed, &retries, &busyRetries, prog)
		}(w)
	}
	if jobs != nil {
		pacer := live.NewPacer(clock, opt.Rate)
		for i := 0; i < total; i++ {
			jobs <- pacer.Wait()
		}
		close(jobs)
	}
	wg.Wait()
	elapsed := float64(clock.Now().Sub(start).Microseconds()) / 1000
	close(errc)
	for err := range errc {
		if err != nil {
			return engineResult{}, err
		}
	}

	sum, stats, err := audit(addr, opt.Pages)
	if err != nil {
		return engineResult{}, err
	}
	// Row name: the canonical architecture name in self-host mode; what the
	// server reports (Stats.Engine is the kernel's descriptive name, e.g.
	// "wal(1 streams,cyclic)") when driving an external address.
	rowName := name
	if name == "external" {
		rowName = stats.Engine
	}
	er := engineResult{
		Name:            rowName,
		Txns:            committed.Load(),
		DeadlockRetries: retries.Load(),
		BusyRetries:     busyRetries.Load(),
		ElapsedMs:       elapsed,
		LatencyMs:       hist.Snap(),
		Server:          stats,
		BalanceSum:      sum,
		Consistent:      sum == int64(opt.Pages)*opt.Value,
	}
	if elapsed > 0 {
		er.TxnsPerSec = float64(er.Txns) / (elapsed / 1000)
	}
	return er, nil
}

// session dials one connection and runs its share of the load: opt.Txns
// committed transactions in closed mode, or however many arrivals it wins
// from the jobs channel in open mode.
func session(addr string, w int, opt options, clock live.Clock, hist *live.Histogram,
	jobs chan time.Time, committed, retries, busyRetries *atomic.Int64, prog *live.Progress) error {
	rng := rand.New(rand.NewSource(opt.Seed + int64(w)))
	c, err := dialRetry(addr)
	if err != nil {
		return err
	}
	defer c.Close()

	runOne := func(arrival time.Time) error {
		if err := transfer(c, rng, opt, retries, busyRetries); err != nil {
			return fmt.Errorf("session %d: %w", w, err)
		}
		hist.Observe(float64(clock.Now().Sub(arrival).Microseconds()) / 1000)
		committed.Add(1)
		prog.Add(1)
		return nil
	}

	if jobs == nil {
		for i := 0; i < opt.Txns; i++ {
			if err := runOne(clock.Now()); err != nil {
				return err
			}
		}
		return nil
	}
	for arrival := range jobs {
		if err := runOne(arrival); err != nil {
			return err
		}
	}
	return nil
}

// dialRetry absorbs transient accept-queue overflow when a thousand
// sessions dial the same loopback listener at once.
func dialRetry(addr string) (*server.Client, error) {
	var lastErr error
	for attempt := 0; attempt < 50; attempt++ {
		c, err := server.Dial(addr)
		if err == nil {
			return c, nil
		}
		lastErr = err
		live.Sleep(time.Duration(attempt+1) * 2 * time.Millisecond)
	}
	return nil, fmt.Errorf("dial %s: %w", addr, lastErr)
}

// transfer runs one debit/credit transaction to commit, beginning a fresh
// transaction each time the previous one is killed as a deadlock victim or
// rejected at a kernel admission limit (busy). Busy retries back off with a
// seeded jitter so a thousand sessions don't re-storm a full intention
// list in lockstep.
func transfer(c *server.Client, rng *rand.Rand, opt options, retries, busyRetries *atomic.Int64) error {
	const maxAttempts = 10000
	for attempt := 0; attempt < maxAttempts; attempt++ {
		txn, err := c.Begin()
		if err != nil {
			return err
		}
		err = moveFunds(c, txn, rng, opt)
		if err == nil {
			err = c.Commit(txn)
			if err == nil {
				return nil
			}
		}
		switch {
		case errors.Is(err, server.ErrDeadlock):
			retries.Add(1)
			continue
		case errors.Is(err, server.ErrBusy):
			busyRetries.Add(1)
			live.Sleep(time.Duration(rng.Intn(4)+1) * time.Millisecond)
			continue
		}
		_ = c.Abort(txn)
		return err
	}
	return fmt.Errorf("transaction still rejected after %d attempts", maxAttempts)
}

// moveFunds performs opt.Transfers debit/credit pairs inside txn: each
// reads two distinct pages and moves a random amount from one to the
// other, preserving the bank's total balance.
func moveFunds(c *server.Client, txn uint64, rng *rand.Rand, opt options) error {
	for i := 0; i < opt.Transfers; i++ {
		from := int64(rng.Intn(opt.Pages))
		to := int64(rng.Intn(opt.Pages - 1))
		if to >= from {
			to++
		}
		amt := rng.Int63n(10) + 1

		fromImg, err := c.Read(txn, from)
		if err != nil {
			return err
		}
		toImg, err := c.Read(txn, to)
		if err != nil {
			return err
		}
		if err := c.Write(txn, from, server.EncodeBalance(server.DecodeBalance(fromImg)-amt)); err != nil {
			return err
		}
		if err := c.Write(txn, to, server.EncodeBalance(server.DecodeBalance(toImg)+amt)); err != nil {
			return err
		}
	}
	return nil
}

// audit sums every balance page in one read-only transaction after the
// load has drained, and fetches the server's counter snapshot.
func audit(addr string, pages int) (int64, server.Stats, error) {
	c, err := dialRetry(addr)
	if err != nil {
		return 0, server.Stats{}, err
	}
	defer c.Close()
	txn, err := c.Begin()
	if err != nil {
		return 0, server.Stats{}, err
	}
	var sum int64
	for p := 0; p < pages; p++ {
		img, err := c.Read(txn, int64(p))
		if err != nil {
			return 0, server.Stats{}, fmt.Errorf("audit read page %d: %w", p, err)
		}
		sum += server.DecodeBalance(img)
	}
	if err := c.Commit(txn); err != nil {
		return 0, server.Stats{}, err
	}
	stats, err := c.Stats()
	if err != nil {
		return 0, server.Stats{}, err
	}
	return sum, stats, nil
}
