package main

import (
	"fmt"
	"strings"

	"repro/internal/machine"
	"repro/internal/recovery/difffile"
	"repro/internal/recovery/logging"
	"repro/internal/recovery/shadow"
	"repro/internal/sim"
)

// runProfile executes a single simulation with utilization sampling and
// prints the timeline as sparklines.
func runProfile(configName, recoveryName string, txns int, seed int64) error {
	cfg := machine.DefaultConfig()
	switch strings.ToLower(configName) {
	case "conv-random", "":
	case "par-random":
		cfg.ParallelDisks = true
	case "conv-seq":
		cfg.Workload.Sequential = true
	case "par-seq":
		cfg.ParallelDisks = true
		cfg.Workload.Sequential = true
	default:
		return fmt.Errorf("unknown config %q (conv-random, par-random, conv-seq, par-seq)", configName)
	}
	var model machine.Model
	switch strings.ToLower(recoveryName) {
	case "bare", "":
	case "logging":
		model = logging.New(logging.Config{})
	case "logging-physical":
		model = logging.New(logging.Config{Mode: logging.Physical})
	case "shadow":
		model = shadow.NewPageTable(shadow.Config{})
	case "scrambled":
		model = shadow.NewPageTable(shadow.Config{Scrambled: true})
	case "version":
		model = shadow.NewVersion(shadow.Config{})
	case "overwrite":
		model = shadow.NewOverwrite(shadow.Config{}, true)
	case "difffile":
		model = difffile.New(difffile.Config{})
	default:
		return fmt.Errorf("unknown recovery %q (bare, logging, logging-physical, shadow, scrambled, version, overwrite, difffile)", recoveryName)
	}
	if txns > 0 {
		cfg.NumTxns = txns
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	cfg.ProfileEvery = sim.Ms(25)
	res, err := machine.Run(cfg, model)
	if err != nil {
		return err
	}
	fmt.Printf("%s on %s: exec/page %.1f ms, completion %.1f ms\n",
		res.Name, configName, res.ExecPerPageMs, res.MeanCompletionMs)
	fmt.Print(res.Profile.Render(72))
	return nil
}
