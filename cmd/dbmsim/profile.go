package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/recovery/difffile"
	"repro/internal/recovery/logging"
	"repro/internal/recovery/shadow"
	"repro/internal/sim"
)

// runProfile executes a single simulation with utilization sampling and
// prints the timeline as sparklines. tracePath, when non-empty, writes the
// run's Chrome trace-event JSON there; metrics prints a JSON metrics
// snapshot to stdout.
func runProfile(configName, recoveryName string, txns int, seed int64, tracePath string, metrics bool) error {
	cfg := machine.DefaultConfig()
	switch strings.ToLower(configName) {
	case "conv-random", "":
	case "par-random":
		cfg.ParallelDisks = true
	case "conv-seq":
		cfg.Workload.Sequential = true
	case "par-seq":
		cfg.ParallelDisks = true
		cfg.Workload.Sequential = true
	default:
		return fmt.Errorf("unknown config %q (conv-random, par-random, conv-seq, par-seq)", configName)
	}
	var model machine.Model
	switch strings.ToLower(recoveryName) {
	case "bare", "":
	case "logging":
		model = logging.New(logging.Config{})
	case "logging-physical":
		model = logging.New(logging.Config{Mode: logging.Physical})
	case "shadow":
		model = shadow.NewPageTable(shadow.Config{})
	case "scrambled":
		model = shadow.NewPageTable(shadow.Config{Scrambled: true})
	case "version":
		model = shadow.NewVersion(shadow.Config{})
	case "overwrite":
		model = shadow.NewOverwrite(shadow.Config{}, true)
	case "difffile":
		model = difffile.New(difffile.Config{})
	default:
		return fmt.Errorf("unknown recovery %q (bare, logging, logging-physical, shadow, scrambled, version, overwrite, difffile)", recoveryName)
	}
	if txns > 0 {
		cfg.NumTxns = txns
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	cfg.ProfileEvery = sim.Ms(25)
	m, err := machine.New(cfg, model)
	if err != nil {
		return err
	}
	var tb *obs.TraceBuffer
	if tracePath != "" {
		tb = obs.NewTrace()
		m.SetTracer(tb)
	}
	res, err := m.Run()
	if err != nil {
		return err
	}
	fmt.Printf("%s on %s: exec/page %.1f ms, completion %.1f ms (p50 %.1f, p95 %.1f, p99 %.1f)\n",
		res.Name, configName, res.ExecPerPageMs, res.MeanCompletionMs,
		res.CompletionP50Ms, res.CompletionP95Ms, res.CompletionP99Ms)
	fmt.Printf("waits/txn: lock %.1f ms, qp %.1f ms, disk %.1f ms, recovery %.1f ms, commit %.1f ms\n",
		res.Waits.LockMs, res.Waits.QPMs, res.Waits.DiskMs,
		res.Waits.RecoveryMs, res.Waits.CommitMs)
	fmt.Print(res.Profile.Render(72))
	if tb != nil {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if _, err := tb.WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %d events written to %s (open at ui.perfetto.dev)\n", tb.Len(), tracePath)
	}
	if metrics {
		b, err := m.Metrics().Snapshot().JSON()
		if err != nil {
			return err
		}
		os.Stdout.Write(append(b, '\n'))
	}
	return nil
}
