// Command dbmsim regenerates the evaluation tables of "Recovery
// Architectures for Multiprocessor Database Machines" (Agrawal & DeWitt,
// 1985) from the simulator in this repository.
//
// Usage:
//
//	dbmsim -table all            # every table (1-12) plus the bandwidth study
//	dbmsim -table 3              # just Table 3
//	dbmsim -table bandwidth      # the Section 4.1.3 interconnect study
//	dbmsim -table all -txns 12   # faster, reduced load
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/experiments"
	"repro/internal/obs/live"
)

func main() {
	table := flag.String("table", "all", `experiment to run: 1..12, an extension id (see -list), or "all"`)
	txns := flag.Int("txns", 0, "transactions per simulation (0 = paper-scale default)")
	seed := flag.Int64("seed", 0, "base random seed (0 = default; pass -seed 0 explicitly for a true zero seed)")
	jobs := flag.Int("jobs", 0,
		"worker count for fanning tables and their simulation cells out (0 = GOMAXPROCS); any value produces byte-identical tables")
	format := flag.String("format", "text", `output format: "text" or "md"`)
	profile := flag.String("profile", "", `instead of a table, profile one run: machine config ("conv-random", "par-random", "conv-seq", "par-seq")`)
	recovery := flag.String("recovery", "bare", "recovery architecture for -profile")
	trace := flag.String("trace", "", "with -profile: write a Chrome trace-event JSON file (open in Perfetto)")
	metrics := flag.Bool("metrics", false, "with -profile: print a JSON metrics snapshot of the run")
	list := flag.Bool("list", false, "list the available experiments and exit")
	liveAddr := flag.String("live", "", "serve live /metrics, /progress and /debug/pprof on this address while running (e.g. :9090)")
	flag.Parse()

	if *liveAddr != "" {
		srv, err := live.Serve(*liveAddr, live.Default(), nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dbmsim: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "dbmsim: live endpoint on http://%s/metrics\n", srv.Addr())
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	if *profile == "" && (*trace != "" || *metrics) {
		fmt.Fprintln(os.Stderr, "dbmsim: -trace and -metrics require -profile")
		os.Exit(2)
	}
	if *profile != "" {
		if err := runProfile(*profile, *recovery, *txns, *seed, *trace, *metrics); err != nil {
			fmt.Fprintf(os.Stderr, "dbmsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	opt := experiments.Options{NumTxns: *txns, Seed: *seed, Jobs: *jobs}
	// A flag passed explicitly means exactly what it says — "-seed 0" and
	// "-txns 0" are real zeros, not the use-the-default sentinel.
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "seed":
			opt.SeedSet = true
		case "txns":
			opt.NumTxnsSet = true
		}
	})
	ids := experiments.IDs()
	if *table != "all" {
		id := *table
		if _, err := strconv.Atoi(id); err == nil {
			id = "table" + id
		}
		ids = []string{id}
	}
	tabs, err := experiments.RunAll(ids, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbmsim: %v\n", err)
		os.Exit(1)
	}
	for _, tab := range tabs {
		if *format == "md" {
			fmt.Print(tab.RenderMarkdown())
		} else {
			fmt.Println(tab.Render())
		}
	}
}
