// Command dbserver serves one recovery architecture over TCP.
//
// It builds the selected engine (any of the seven functional recovery
// architectures, wrapped in engine.Guard by construction), preloads a
// bank of balance pages, and then speaks the length-prefixed binary
// protocol of internal/server: Begin/Read/Write/Commit/Abort/Stats
// sessions, with deadlock victims surfaced as a retryable status code.
//
// Usage:
//
//	go run ./cmd/dbserver -arch wal-1stream [-addr 127.0.0.1:7070]
//	    [-pages 64] [-value 1000] [-live 127.0.0.1:8080]
//	    [-group-commit 8] [-group-wait 1ms] [-read-stripes 64]
//
// With -live, a live.Registry HTTP endpoint exposes the server's per-op
// service-time histograms, the in-flight session gauge, and the engine
// Guard's contention profile at /metrics (plus /debug/pprof).
//
// -group-commit, -group-wait, and -read-stripes tune the Guard's relaxed
// concurrency envelope (docs/DESIGN.md, "Concurrency envelope v2"):
// concurrent commits are batched into one kernel log force per group, and
// committed-page reads are served through striped latches without taking
// the kernel mutex. The defaults keep the plain fully-serialized Guard.
//
// dbserver is a serving harness, not a simulator: wall-clock reads go
// through internal/obs/live's Clock, the one scope where host time is
// legal under simlint.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs/live"
	"repro/internal/server"
)

func main() {
	arch := flag.String("arch", "wal-1stream", "recovery architecture: "+strings.Join(server.Architectures(), ", "))
	addr := flag.String("addr", "127.0.0.1:7070", "listen address (host:0 picks an ephemeral port)")
	pages := flag.Int("pages", 64, "balance pages to preload (ids 0..pages-1)")
	value := flag.Int64("value", 1000, "initial balance per page")
	liveAddr := flag.String("live", "", "serve /metrics and /debug/pprof on this address (empty: off)")
	groupCommit := flag.Int("group-commit", 0, "group-commit batch cap; 0 or 1 keeps plain per-txn commits")
	groupWait := flag.Duration("group-wait", 0, "max time a commit leader waits for batch company (with -group-commit)")
	readStripes := flag.Int("read-stripes", 0, "latch stripes for the committed-page read cache; 0 disables")
	flag.Parse()

	tuning := server.GuardTuning{
		GroupCommit: *groupCommit,
		GroupWait:   *groupWait,
		ReadStripes: *readStripes,
	}
	if err := run(*arch, *addr, *pages, *value, *liveAddr, tuning); err != nil {
		fmt.Fprintln(os.Stderr, "dbserver:", err)
		os.Exit(1)
	}
}

func run(arch, addr string, pages int, value int64, liveAddr string, tuning server.GuardTuning) error {
	eng, err := server.NewEngine(arch)
	if err != nil {
		return err
	}
	if err := server.InitPages(eng, pages, value); err != nil {
		return err
	}
	// Tune the concurrency envelope before the listener opens: stripes must
	// be installed while the engine is quiescent.
	tuning.Apply(eng)

	clock := live.Wall()
	mx := server.NewMetrics(clock)
	gm := live.NewGuardMetrics(clock)
	eng.Guard().SetMetrics(gm)
	live.Default().AddCollector(mx)
	live.Default().AddCollector(gm)
	if liveAddr != "" {
		obs, err := live.Serve(liveAddr, live.Default(), nil)
		if err != nil {
			return err
		}
		defer obs.Close()
		fmt.Printf("dbserver: live metrics on http://%s/metrics\n", obs.Addr())
	}

	srv := server.New(eng, server.Config{Clock: clock, Metrics: mx, Log: os.Stderr})
	bound, err := srv.Start(addr)
	if err != nil {
		return err
	}
	fmt.Printf("dbserver: %s serving %d pages (balance %d) on %s [%s]\n", arch, pages, value, bound, tuning)

	// Serve until the process is killed: Start's accept loop owns the
	// listener, so blocking forever here keeps the sessions alive.
	select {}
}
