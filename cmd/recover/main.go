// Command recover drives the functional recovery engines through a
// crash-and-restart drill: run a workload, cut power at a chosen write
// budget, recover, and verify the committed state — for any of the six
// recovery architectures in this repository.
//
// Usage:
//
//	recover -engine wal -streams 4 -txns 500
//	recover -engine shadow -crash-after 100
//	recover -engine all
//
// Point-in-time backup and restore (one engine at a time):
//
//	recover -engine wal -snapshot full.snap
//	recover -engine wal -txns 600 -snapshot incr.snap -snapshot-since full.snap
//	recover -engine wal -restore full.snap,incr.snap
//
// -snapshot archives the engine's stable stores right before the crash and
// verifies the archive round-trips into a fresh engine; -snapshot-since
// makes that archive incremental relative to an existing chain; -restore
// skips the workload, applies a chain to a fresh engine, and reports the
// recovered state.
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"os"
	"strings"

	"repro/internal/engine"
	"repro/internal/pagestore"
	"repro/internal/shadoweng"
	"repro/internal/wal"
)

var (
	engineName = flag.String("engine", "all", "wal | shadow | noundo | noredo | verselect | diff | all")
	streams    = flag.Int("streams", 2, "parallel WAL streams (wal engine only)")
	txns       = flag.Int("txns", 300, "transactions to run before the crash")
	pages      = flag.Int("pages", 32, "database size in pages")
	crashAfter = flag.Int64("crash-after", -1, "cut power after N stable writes (-1: crash after the workload)")
	seed       = flag.Int64("seed", 1985, "workload seed")
	snapPath   = flag.String("snapshot", "",
		"write a point-in-time snapshot archive to this file before the crash and verify it restores into a fresh engine")
	snapSince = flag.String("snapshot-since", "",
		"comma-separated base archive chain; makes -snapshot incremental relative to it")
	restoreChain = flag.String("restore", "",
		"skip the workload: restore this comma-separated archive chain into a fresh engine and report the recovered state")
)

func build(name string) (*engine.Engine, *pagestore.Store, error) {
	store := pagestore.New(4096)
	switch name {
	case "wal":
		e, _ := engine.NewWALOn(store, wal.Config{Streams: *streams, Selection: wal.PageMod})
		return e, store, nil
	case "shadow":
		e, err := engine.NewShadowOn(store)
		return e, store, err
	case "noundo":
		return engine.NewOverwriteOn(store, shadoweng.NoUndo), store, nil
	case "noredo":
		return engine.NewOverwriteOn(store, shadoweng.NoRedo), store, nil
	case "verselect":
		e, err := engine.NewVersionSelectOn(store)
		return e, store, err
	case "diff":
		return engine.NewDiffOn(store), store, nil
	}
	return nil, nil, fmt.Errorf("unknown engine %q", name)
}

func enc(v int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

func dec(b []byte) int64 {
	if len(b) < 8 {
		return 0
	}
	return int64(binary.BigEndian.Uint64(b))
}

func drill(name string) error {
	e, store, err := build(name)
	if err != nil {
		return err
	}
	for p := int64(0); p < int64(*pages); p++ {
		if err := e.Load(p, enc(0)); err != nil {
			return err
		}
	}
	if *crashAfter >= 0 {
		store.SetWriteBudget(*crashAfter)
	}

	// The committed model; counters per page.
	model := make([]int64, *pages)
	committed, losers := 0, 0
	var doubtPage int64 = -1
	var doubtVal int64
	rng := int64(*seed)
	next := func(n int64) int64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		v := rng >> 33
		if v < 0 {
			v = -v
		}
		return v % n
	}

	for i := 0; i < *txns; i++ {
		tx, err := e.Begin()
		if err != nil {
			break
		}
		p := next(int64(*pages))
		cur, err := tx.Read(p)
		if err != nil {
			_ = tx.Abort()
			losers++
			break
		}
		v := dec(cur) + 1
		if err := tx.Write(p, enc(v)); err != nil {
			_ = tx.Abort()
			losers++
			break
		}
		if next(5) == 0 {
			if err := tx.Abort(); err != nil {
				break
			}
			losers++
			continue
		}
		if err := tx.Commit(); err != nil {
			doubtPage, doubtVal = p, v
			break
		}
		model[p] = v
		committed++
	}

	// A snapshot taken here is a transaction-consistent image of the
	// pre-crash instant: after restore + recovery, committed state must
	// equal the drill's model (the in-doubt commit may resolve either way).
	var chain []string
	if *snapPath != "" {
		if *snapSince != "" {
			chain = splitChain(*snapSince)
		}
		if err := writeSnapshot(e, *snapPath, chain); err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		chain = append(chain, *snapPath)
	}

	e.Crash()
	if err := e.Recover(); err != nil {
		return fmt.Errorf("recover: %w", err)
	}
	mismatches := 0
	for p := int64(0); p < int64(*pages); p++ {
		got, err := e.ReadCommitted(p)
		if err != nil {
			return err
		}
		g := dec(got)
		if p == doubtPage {
			if g != model[p] && g != doubtVal {
				mismatches++
			}
			continue
		}
		if g != model[p] {
			mismatches++
		}
	}
	status := "CONSISTENT"
	if mismatches > 0 {
		status = fmt.Sprintf("INCONSISTENT (%d pages)", mismatches)
	}
	doubt := ""
	if doubtPage >= 0 {
		doubt = " (one in-doubt commit resolved atomically)"
	}
	fmt.Printf("%-28s committed=%-4d aborted=%-3d recovered: %s%s\n",
		e.Name(), committed, losers, status, doubt)
	if mismatches > 0 {
		return errors.New("recovery verification failed")
	}
	if len(chain) > 0 {
		return verifyRestore(name, chain, model, doubtPage, doubtVal)
	}
	return nil
}

// splitChain parses a comma-separated archive chain.
func splitChain(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// openChain opens every archive of a chain in order.
func openChain(paths []string) ([]io.Reader, func(), error) {
	var files []*os.File
	var rs []io.Reader
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			for _, g := range files {
				g.Close()
			}
			return nil, nil, err
		}
		files = append(files, f)
		rs = append(rs, f)
	}
	return rs, func() {
		for _, g := range files {
			g.Close()
		}
	}, nil
}

// writeSnapshot archives e's stable stores to path — full when base is
// empty, incremental relative to the base chain's manifests otherwise.
func writeSnapshot(e *engine.Engine, path string, base []string) error {
	var manifests []pagestore.Manifest
	if len(base) > 0 {
		rs, closeAll, err := openChain(base)
		if err != nil {
			return err
		}
		manifests, err = engine.ArchiveManifests(rs...)
		closeAll()
		if err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if manifests == nil {
		_, err = e.Snapshot(f)
	} else {
		_, err = e.SnapshotSince(f, manifests)
	}
	return err
}

// verifyRestore proves the snapshot round-trips: apply the chain to a
// fresh engine and check its committed state equals the drill's model at
// the snapshot instant (the in-doubt commit may resolve either way).
func verifyRestore(name string, chain []string, model []int64, doubtPage, doubtVal int64) error {
	e, _, err := build(name)
	if err != nil {
		return err
	}
	rs, closeAll, err := openChain(chain)
	if err != nil {
		return err
	}
	defer closeAll()
	if err := e.Restore(rs...); err != nil {
		return fmt.Errorf("restore: %w", err)
	}
	mismatches := 0
	for p := int64(0); p < int64(*pages); p++ {
		got, err := e.ReadCommitted(p)
		if err != nil {
			return err
		}
		g := dec(got)
		if p == doubtPage {
			if g != model[p] && g != doubtVal {
				mismatches++
			}
			continue
		}
		if g != model[p] {
			mismatches++
		}
	}
	if mismatches > 0 {
		return fmt.Errorf("snapshot round-trip: %d pages diverge after restore", mismatches)
	}
	fmt.Printf("%-28s snapshot chain (%d archives) restored into a fresh engine: CONSISTENT\n",
		e.Name(), len(chain))
	return nil
}

// restoreDrill is the -restore path: no workload, just apply the chain to
// a fresh engine, report the recovered state, and prove the engine is
// live again.
func restoreDrill(name string, chain []string) error {
	e, _, err := build(name)
	if err != nil {
		return err
	}
	rs, closeAll, err := openChain(chain)
	if err != nil {
		return err
	}
	defer closeAll()
	if err := e.Restore(rs...); err != nil {
		return fmt.Errorf("restore: %w", err)
	}
	sum := crc32.NewIEEE()
	for p := int64(0); p < int64(*pages); p++ {
		got, err := e.ReadCommitted(p)
		if err != nil {
			return fmt.Errorf("page %d after restore: %w", p, err)
		}
		sum.Write(enc(p))
		sum.Write(got)
	}
	// The restored engine must accept new transactions.
	tx, err := e.Begin()
	if err != nil {
		return fmt.Errorf("begin after restore: %w", err)
	}
	if _, err := tx.Read(0); err != nil {
		return fmt.Errorf("read after restore: %w", err)
	}
	if err := tx.Abort(); err != nil {
		return fmt.Errorf("abort after restore: %w", err)
	}
	fmt.Printf("%-28s restored %d archives: %d pages, state crc %08x, engine live\n",
		e.Name(), len(chain), *pages, sum.Sum32())
	return nil
}

func main() {
	flag.Parse()
	if *snapSince != "" && *snapPath == "" {
		log.Fatal("recover: -snapshot-since requires -snapshot")
	}
	if (*snapPath != "" || *restoreChain != "") && *engineName == "all" {
		log.Fatal("recover: -snapshot and -restore need a specific -engine")
	}
	if *restoreChain != "" {
		if err := restoreDrill(*engineName, splitChain(*restoreChain)); err != nil {
			log.Fatalf("%s: %v", *engineName, err)
		}
		return
	}
	names := []string{*engineName}
	if *engineName == "all" {
		names = []string{"wal", "shadow", "noundo", "noredo", "verselect", "diff"}
	}
	failed := false
	for _, n := range names {
		if err := drill(n); err != nil {
			log.Printf("%s: %v", n, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
