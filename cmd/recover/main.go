// Command recover drives the functional recovery engines through a
// crash-and-restart drill: run a workload, cut power at a chosen write
// budget, recover, and verify the committed state — for any of the six
// recovery architectures in this repository.
//
// Usage:
//
//	recover -engine wal -streams 4 -txns 500
//	recover -engine shadow -crash-after 100
//	recover -engine all
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/engine"
	"repro/internal/pagestore"
	"repro/internal/shadoweng"
	"repro/internal/wal"
)

var (
	engineName = flag.String("engine", "all", "wal | shadow | noundo | noredo | verselect | diff | all")
	streams    = flag.Int("streams", 2, "parallel WAL streams (wal engine only)")
	txns       = flag.Int("txns", 300, "transactions to run before the crash")
	pages      = flag.Int("pages", 32, "database size in pages")
	crashAfter = flag.Int64("crash-after", -1, "cut power after N stable writes (-1: crash after the workload)")
	seed       = flag.Int64("seed", 1985, "workload seed")
)

func build(name string) (*engine.Engine, *pagestore.Store, error) {
	store := pagestore.New(4096)
	switch name {
	case "wal":
		e, _ := engine.NewWALOn(store, wal.Config{Streams: *streams, Selection: wal.PageMod})
		return e, store, nil
	case "shadow":
		e, err := engine.NewShadowOn(store)
		return e, store, err
	case "noundo":
		return engine.NewOverwriteOn(store, shadoweng.NoUndo), store, nil
	case "noredo":
		return engine.NewOverwriteOn(store, shadoweng.NoRedo), store, nil
	case "verselect":
		e, err := engine.NewVersionSelectOn(store)
		return e, store, err
	case "diff":
		return engine.NewDiffOn(store), store, nil
	}
	return nil, nil, fmt.Errorf("unknown engine %q", name)
}

func enc(v int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

func dec(b []byte) int64 {
	if len(b) < 8 {
		return 0
	}
	return int64(binary.BigEndian.Uint64(b))
}

func drill(name string) error {
	e, store, err := build(name)
	if err != nil {
		return err
	}
	for p := int64(0); p < int64(*pages); p++ {
		if err := e.Load(p, enc(0)); err != nil {
			return err
		}
	}
	if *crashAfter >= 0 {
		store.SetWriteBudget(*crashAfter)
	}

	// The committed model; counters per page.
	model := make([]int64, *pages)
	committed, losers := 0, 0
	var doubtPage int64 = -1
	var doubtVal int64
	rng := int64(*seed)
	next := func(n int64) int64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		v := rng >> 33
		if v < 0 {
			v = -v
		}
		return v % n
	}

	for i := 0; i < *txns; i++ {
		tx, err := e.Begin()
		if err != nil {
			break
		}
		p := next(int64(*pages))
		cur, err := tx.Read(p)
		if err != nil {
			_ = tx.Abort()
			losers++
			break
		}
		v := dec(cur) + 1
		if err := tx.Write(p, enc(v)); err != nil {
			_ = tx.Abort()
			losers++
			break
		}
		if next(5) == 0 {
			if err := tx.Abort(); err != nil {
				break
			}
			losers++
			continue
		}
		if err := tx.Commit(); err != nil {
			doubtPage, doubtVal = p, v
			break
		}
		model[p] = v
		committed++
	}

	e.Crash()
	if err := e.Recover(); err != nil {
		return fmt.Errorf("recover: %w", err)
	}
	mismatches := 0
	for p := int64(0); p < int64(*pages); p++ {
		got, err := e.ReadCommitted(p)
		if err != nil {
			return err
		}
		g := dec(got)
		if p == doubtPage {
			if g != model[p] && g != doubtVal {
				mismatches++
			}
			continue
		}
		if g != model[p] {
			mismatches++
		}
	}
	status := "CONSISTENT"
	if mismatches > 0 {
		status = fmt.Sprintf("INCONSISTENT (%d pages)", mismatches)
	}
	doubt := ""
	if doubtPage >= 0 {
		doubt = " (one in-doubt commit resolved atomically)"
	}
	fmt.Printf("%-28s committed=%-4d aborted=%-3d recovered: %s%s\n",
		e.Name(), committed, losers, status, doubt)
	if mismatches > 0 {
		return errors.New("recovery verification failed")
	}
	return nil
}

func main() {
	flag.Parse()
	names := []string{*engineName}
	if *engineName == "all" {
		names = []string{"wal", "shadow", "noundo", "noredo", "verselect", "diff"}
	}
	failed := false
	for _, n := range names {
		if err := drill(n); err != nil {
			log.Printf("%s: %v", n, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
