// Command crashsweep enumerates crash points across every recovery
// architecture and audits recovery at each one (see internal/faultinj and
// docs/FAULTS.md).
//
// Usage:
//
//	go run ./cmd/crashsweep [flags]
//
// For each selected engine it cuts power at every -every-th stable-storage
// mutation of a seeded workload, re-crashes recovery itself partway
// through, recovers, and audits atomicity, durability, page checksums,
// idempotence, and liveness. It also cuts performance-simulator runs at
// virtual-time instants and audits determinism, monotone progress, and
// loss-free resume. The report is deterministic: the same flags produce
// byte-identical output.
//
// Exit status: 0 when every audit passes, 1 on audit failures, 2 on usage
// or harness errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/faultinj"
	"repro/internal/obs/live"
)

func main() {
	engines := flag.String("engines", "all",
		"comma-separated recovery engines to sweep (wal-1stream, wal-3streams, shadow, ow-noundo, ow-noredo, verselect, difffile), or \"all\"")
	every := flag.Int64("every", 1, "crash at every n-th stable mutation")
	seed := flag.Int64("seed", 1985, "workload seed")
	jobs := flag.Int("jobs", 0,
		"worker count for fanning crash points out (0 = GOMAXPROCS); any value produces a byte-identical report")
	report := flag.String("report", "", "write the report to this file instead of stdout")
	fileSweep := flag.Bool("file", false,
		"additionally sweep file-backed stores at file-operation granularity (power cuts, torn writes, lost fsyncs on a real WAL)")
	fileDir := flag.String("file-dir", "",
		"scratch directory for the file-backed sweep (default: a fresh temp dir, removed afterwards)")
	machinePoints := flag.Int("machine-points", 8,
		"virtual-time crash instants per performance-simulator model (0 disables the machine sweep)")
	machineTxns := flag.Int("machine-txns", 10, "transactions per performance-simulator run")
	quiet := flag.Bool("quiet", false, "suppress the stderr progress ticker")
	liveAddr := flag.String("live", "", "serve live /metrics, /progress and /debug/pprof on this address during the sweep (e.g. :9090)")
	journalAt := flag.String("journal", "",
		"instead of sweeping, replay one crash point with a recovery journal attached: engine@k (e.g. wal-1stream@17)")
	journalOut := flag.String("journal-out", "", "write the journal JSONL to this file instead of stdout")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: crashsweep [-engines wal-1stream,shadow] [-every n] [-seed s] [-report file]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}

	if *journalAt != "" {
		if err := journalPoint(*journalAt, *seed, *journalOut); err != nil {
			fatal(err)
		}
		return
	}

	targets, err := faultinj.TargetsByName(*engines)
	if err != nil {
		fatal(err)
	}

	// The progress tracker feeds the stderr ticker and the -live /progress
	// endpoint; it never touches the report, which stays byte-identical
	// with or without it (-quiet only silences stderr).
	prog := live.NewProgress(live.Wall(), "crashsweep")
	if *liveAddr != "" {
		srv, err := live.Serve(*liveAddr, live.Default(), prog)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "crashsweep: live endpoint on http://%s/metrics\n", srv.Addr())
	}
	if !*quiet {
		stop := prog.StartTicker(os.Stderr, 2*time.Second)
		defer stop()
	}

	rep, err := faultinj.Sweep(targets, faultinj.Options{
		Seed: *seed, Every: *every, Jobs: *jobs, Progress: prog,
	})
	if err != nil {
		fatal(err)
	}
	if *fileSweep {
		root := *fileDir
		if root == "" {
			tmp, err := os.MkdirTemp("", "crashsweep-file-")
			if err != nil {
				fatal(err)
			}
			defer os.RemoveAll(tmp)
			root = tmp
		} else if err := os.MkdirAll(root, 0o755); err != nil {
			fatal(err)
		}
		ftargets, err := faultinj.FileTargetsByName(root, *engines)
		if err != nil {
			fatal(err)
		}
		frs, err := faultinj.SweepFiles(ftargets, faultinj.Options{
			Seed: *seed, Every: *every, Jobs: *jobs, Progress: prog,
		})
		if err != nil {
			fatal(err)
		}
		rep.Files = frs
	}
	if *machinePoints > 0 {
		ms, err := faultinj.SweepMachines(faultinj.MachineOptions{
			Seed:     *seed,
			Points:   *machinePoints,
			NumTxns:  *machineTxns,
			Jobs:     *jobs,
			Progress: prog,
		})
		if err != nil {
			fatal(err)
		}
		rep.Machines = ms
	}

	var out io.Writer = os.Stdout
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := rep.Render(out); err != nil {
		fatal(err)
	}
	if rep.TotalFailures() > 0 {
		os.Exit(1)
	}
}

// journalPoint handles -journal engine@k: replay exactly one crash point
// with a structured recovery journal attached and emit the JSONL record of
// what recovery decided there. Deterministic: same engine, seed and k give
// byte-identical output.
func journalPoint(spec string, seed int64, outPath string) error {
	name, kStr, ok := strings.Cut(spec, "@")
	if !ok {
		return fmt.Errorf("-journal wants engine@k, got %q", spec)
	}
	k, err := strconv.ParseInt(kStr, 10, 64)
	if err != nil || k < 1 {
		return fmt.Errorf("-journal wants a positive crash point, got %q", kStr)
	}
	targets, err := faultinj.TargetsByName(name)
	if err != nil {
		return err
	}
	j, rep, err := faultinj.JournalPoint(targets[0], faultinj.Options{Seed: seed}, k)
	if err != nil {
		return err
	}
	var out io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := j.WriteJSONL(out); err != nil {
		return err
	}
	for _, f := range rep.Failures {
		fmt.Fprintln(os.Stderr, "crashsweep: audit failure:", f)
	}
	if len(rep.Failures) > 0 {
		os.Exit(1)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crashsweep:", err)
	os.Exit(2)
}
