// Command crashsweep enumerates crash points across every recovery
// architecture and audits recovery at each one (see internal/faultinj and
// docs/FAULTS.md).
//
// Usage:
//
//	go run ./cmd/crashsweep [flags]
//
// For each selected engine it cuts power at every -every-th stable-storage
// mutation of a seeded workload, re-crashes recovery itself partway
// through, recovers, and audits atomicity, durability, page checksums,
// idempotence, and liveness. It also cuts performance-simulator runs at
// virtual-time instants and audits determinism, monotone progress, and
// loss-free resume. The report is deterministic: the same flags produce
// byte-identical output.
//
// Exit status: 0 when every audit passes, 1 on audit failures, 2 on usage
// or harness errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/faultinj"
)

func main() {
	engines := flag.String("engines", "all",
		"comma-separated recovery engines to sweep (wal-1stream, wal-3streams, shadow, ow-noundo, ow-noredo, verselect, difffile), or \"all\"")
	every := flag.Int64("every", 1, "crash at every n-th stable mutation")
	seed := flag.Int64("seed", 1985, "workload seed")
	jobs := flag.Int("jobs", 0,
		"worker count for fanning crash points out (0 = GOMAXPROCS); any value produces a byte-identical report")
	report := flag.String("report", "", "write the report to this file instead of stdout")
	machinePoints := flag.Int("machine-points", 8,
		"virtual-time crash instants per performance-simulator model (0 disables the machine sweep)")
	machineTxns := flag.Int("machine-txns", 10, "transactions per performance-simulator run")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: crashsweep [-engines wal-1stream,shadow] [-every n] [-seed s] [-report file]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}

	targets, err := faultinj.TargetsByName(*engines)
	if err != nil {
		fatal(err)
	}
	rep, err := faultinj.Sweep(targets, faultinj.Options{Seed: *seed, Every: *every, Jobs: *jobs})
	if err != nil {
		fatal(err)
	}
	if *machinePoints > 0 {
		ms, err := faultinj.SweepMachines(faultinj.MachineOptions{
			Seed:    *seed,
			Points:  *machinePoints,
			NumTxns: *machineTxns,
			Jobs:    *jobs,
		})
		if err != nil {
			fatal(err)
		}
		rep.Machines = ms
	}

	var out io.Writer = os.Stdout
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := rep.Render(out); err != nil {
		fatal(err)
	}
	if rep.TotalFailures() > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crashsweep:", err)
	os.Exit(2)
}
