// Command simlint is the repository's determinism and simulator-invariant
// analyzer (see internal/lint and docs/LINTING.md).
//
// Usage:
//
//	go run ./cmd/simlint [flags] [patterns...]
//
// Patterns are module-relative package patterns ("./internal/...",
// "./cmd/simlint"); with no patterns it checks ./internal/... and
// ./cmd/... . Exit status: 0 clean, 1 findings, 2 usage or load error.
// Stale-suppression warnings are printed but only fail the run under
// -strict.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	rules := flag.String("rules", "", "comma-separated rule IDs to enable (default: all)")
	strict := flag.Bool("strict", false, "treat warnings (stale suppressions) as failures")
	list := flag.Bool("list", false, "print the rule table and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: simlint [-rules D001,D003] [-strict] [patterns...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, r := range lint.Rules {
			fmt.Printf("%s  %s  (scope: %s)\n", r.ID, r.Short, strings.Join(r.Scope, ", "))
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./internal/...", "./cmd/..."}
	}
	var cfg lint.Config
	if *rules != "" {
		cfg.Rules = strings.Split(*rules, ",")
	}

	diags, err := lint.Run(root, patterns, cfg)
	if err != nil {
		fatal(err)
	}
	failures := 0
	for _, d := range diags {
		fmt.Println(d)
		if !d.Warning || *strict {
			failures++
		}
	}
	if failures > 0 {
		fmt.Printf("simlint: %d finding(s)\n", failures)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simlint:", err)
	os.Exit(2)
}
