// Command simlint is the repository's determinism and simulator-invariant
// analyzer (see internal/lint and docs/LINTING.md).
//
// Usage:
//
//	go run ./cmd/simlint [flags] [patterns...]
//
// Patterns are module-relative package patterns ("./internal/...",
// "./cmd/simlint"); with no patterns it checks ./internal/... and
// ./cmd/... . Exit status: 0 clean, 1 findings, 2 usage or load error.
// Stale-suppression warnings are printed but only fail the run under
// -strict. With -json the findings are written as a machine-readable
// report on stdout (the exit-status contract is unchanged).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command behind a testable seam: flag parsing, rule
// validation, analysis, and rendering, with the exit status returned
// instead of raised.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated rule IDs to enable (default: all)")
	strict := fs.Bool("strict", false, "treat warnings (stale suppressions) as failures")
	list := fs.Bool("list", false, "print the rule table and exit")
	jsonOut := fs.Bool("json", false, "write findings as a JSON report on stdout")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: simlint [-rules D001,D003] [-strict] [-json] [patterns...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, r := range lint.Rules {
			fmt.Fprintf(stdout, "%s  %s  (scope: %s)\n", r.ID, r.Short, strings.Join(r.Scope, ", "))
		}
		return 0
	}

	var cfg lint.Config
	if *rules != "" {
		cfg.Rules = strings.Split(*rules, ",")
		for _, id := range cfg.Rules {
			if id = strings.TrimSpace(id); id != "" && !lint.KnownRule(id) {
				fmt.Fprintf(stderr, "simlint: unknown rule %q (run simlint -list for the rule table)\n", id)
				return 2
			}
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		return fatal(stderr, err)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		return fatal(stderr, err)
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./internal/...", "./cmd/..."}
	}

	diags, err := lint.Run(root, patterns, cfg)
	if err != nil {
		return fatal(stderr, err)
	}
	failures := 0
	for _, d := range diags {
		if !d.Warning || *strict {
			failures++
		}
	}
	if *jsonOut {
		if err := lint.WriteJSON(stdout, root, diags); err != nil {
			return fatal(stderr, err)
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		if failures > 0 {
			fmt.Fprintf(stdout, "simlint: %d finding(s)\n", failures)
		}
	}
	if failures > 0 {
		return 1
	}
	return 0
}

func fatal(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "simlint:", err)
	return 2
}
