package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixture returns the module-relative pattern for one lint fixture
// directory; the fixtures double as a stable corpus for the CLI tests.
func fixture(name string) string {
	return "./internal/lint/testdata/" + name
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitCodeClean(t *testing.T) {
	code, stdout, stderr := runCLI(t, fixture("clean"))
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Fatalf("clean run should print nothing, got:\n%s", stdout)
	}
}

func TestExitCodeFindings(t *testing.T) {
	code, stdout, _ := runCLI(t, fixture("d001"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "[D001]") {
		t.Fatalf("stdout missing D001 finding:\n%s", stdout)
	}
	if !strings.Contains(stdout, "finding(s)") {
		t.Fatalf("stdout missing summary line:\n%s", stdout)
	}
}

func TestExitCodeUnknownRule(t *testing.T) {
	code, _, stderr := runCLI(t, "-rules", "D001,D099", fixture("clean"))
	if code != 2 {
		t.Fatalf("exit = %d, want 2\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, `unknown rule "D099"`) {
		t.Fatalf("stderr missing unknown-rule message:\n%s", stderr)
	}
}

func TestExitCodeBadFlag(t *testing.T) {
	code, _, stderr := runCLI(t, "-no-such-flag")
	if code != 2 {
		t.Fatalf("exit = %d, want 2\nstderr:\n%s", code, stderr)
	}
}

func TestExitCodeBadPattern(t *testing.T) {
	code, _, stderr := runCLI(t, "./no/such/dir")
	if code != 2 {
		t.Fatalf("exit = %d, want 2\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "simlint:") {
		t.Fatalf("stderr missing error prefix:\n%s", stderr)
	}
}

// TestRulesSubset proves -rules really narrows the run: the d003
// fixture is clean when only D001 is enabled.
func TestRulesSubset(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-rules", "D001", fixture("d003"))
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (run with -update after reviewing):\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestListGolden pins the rule table: adding or rescoping a rule must
// show up as a reviewed golden diff.
func TestListGolden(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, stderr)
	}
	checkGolden(t, "list.golden", stdout)
}

// TestJSONGolden pins the machine-readable report format consumed by CI.
func TestJSONGolden(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-json", fixture("d001"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr)
	}
	checkGolden(t, "json.golden", stdout)
}

// TestJSONClean pins the empty-report shape (findings stays [] — never
// null — so downstream jq filters keep working).
func TestJSONClean(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-json", fixture("clean"))
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, `"findings": []`) {
		t.Fatalf("empty report should render findings as []:\n%s", stdout)
	}
}
