// Command dbbench measures how internal/runpool scales the two heavy
// drivers in this repository — full table regeneration (cmd/dbmsim
// -table all) and the crash-injection sweep (cmd/crashsweep) — at
// jobs=1 versus jobs=N, and emits the result as BENCH_runpool.json.
//
// Each benchmark also re-verifies the pool's core contract while timing
// it: the jobs=1 and jobs=N outputs must be byte-identical, or the run
// fails. Timings are best-of -repeat wall-clock measurements; the JSON
// records runtime.GOMAXPROCS so a speedup of ~1.0 from a single-core
// container is distinguishable from a scaling regression. Regenerate
// with `make bench` on a multi-core machine for meaningful speedups.
//
// Usage:
//
//	go run ./cmd/dbbench [-jobs 4] [-txns 12] [-every 4] [-out BENCH_runpool.json]
//
// Two further modes focus on the engine Guard: -guard-only emits the
// mutex-contention profile (BENCH_guard_contention.json), and -guardscale
// emits the concurrency-envelope scaling curve comparing the plain Guard
// against group commit and striped reads (BENCH_guard.json).
//
// dbbench is a benchmark harness, not a simulator: it is one of the
// places that are *supposed* to read the host clock. It does so through
// internal/obs/live's Clock — the runtime observability layer where
// wall-clock time is legal by simlint scope, not by suppression.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/experiments"
	"repro/internal/faultinj"
	"repro/internal/obs/live"
)

// A Timing records one benchmark's sequential-versus-parallel result.
type Timing struct {
	Name      string  `json:"name"`
	Jobs1Ms   float64 `json:"jobs1_ms"`
	JobsNMs   float64 `json:"jobsN_ms"`
	Speedup   float64 `json:"speedup"`
	Identical bool    `json:"identical"` // jobs=1 and jobs=N outputs byte-equal
	Bytes     int     `json:"output_bytes"`
}

// Result is the BENCH_runpool.json document.
type Result struct {
	Benchmark  string   `json:"benchmark"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Jobs       int      `json:"jobs"`
	Txns       int      `json:"txns"`
	Seed       int64    `json:"seed"`
	SweepEvery int64    `json:"sweep_every"`
	Repeat     int      `json:"repeat"`
	Timings    []Timing `json:"timings"`
}

// bench runs f(jobs) repeat times at jobs=1 and jobs=n, keeps the best
// (minimum) wall-clock time of each, and byte-compares the outputs.
func bench(name string, repeat, n int, f func(jobs int) ([]byte, error)) (Timing, error) {
	clock := live.Wall()
	best := func(jobs int) ([]byte, float64, error) {
		var out []byte
		min := -1.0
		for r := 0; r < repeat; r++ {
			start := clock.Now()
			b, err := f(jobs)
			if err != nil {
				return nil, 0, fmt.Errorf("%s at jobs=%d: %w", name, jobs, err)
			}
			ms := float64(clock.Now().Sub(start).Microseconds()) / 1000
			if min < 0 || ms < min {
				min = ms
			}
			out = b
		}
		return out, min, nil
	}
	seq, seqMs, err := best(1)
	if err != nil {
		return Timing{}, err
	}
	par, parMs, err := best(n)
	if err != nil {
		return Timing{}, err
	}
	t := Timing{
		Name:      name,
		Jobs1Ms:   seqMs,
		JobsNMs:   parMs,
		Speedup:   seqMs / parMs,
		Identical: bytes.Equal(seq, par),
		Bytes:     len(seq),
	}
	if !t.Identical {
		return t, fmt.Errorf("%s: jobs=1 and jobs=%d outputs differ — runpool determinism violated", name, n)
	}
	return t, nil
}

func benchTables(txns int, seed int64) func(jobs int) ([]byte, error) {
	return func(jobs int) ([]byte, error) {
		opt := experiments.Options{NumTxns: txns, Seed: seed, Jobs: jobs}
		tabs, err := experiments.RunAll(experiments.IDs(), opt)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		for _, tab := range tabs {
			buf.WriteString(tab.Render())
			buf.WriteByte('\n')
		}
		return buf.Bytes(), nil
	}
}

func benchSweep(seed, every int64, machinePoints, machineTxns int) func(jobs int) ([]byte, error) {
	return func(jobs int) ([]byte, error) {
		rep, err := faultinj.Sweep(faultinj.Targets(),
			faultinj.Options{Seed: seed, Every: every, Jobs: jobs})
		if err != nil {
			return nil, err
		}
		rep.Machines, err = faultinj.SweepMachines(faultinj.MachineOptions{
			Seed:    seed,
			Points:  machinePoints,
			NumTxns: machineTxns,
			Jobs:    jobs,
		})
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := rep.Render(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
}

func main() {
	jobs := flag.Int("jobs", 4, "parallel worker count to compare against jobs=1")
	txns := flag.Int("txns", 12, "transactions per simulation for the table benchmark")
	seed := flag.Int64("seed", 1985, "base random seed")
	every := flag.Int64("every", 4, "crash-point stride for the sweep benchmark")
	machinePoints := flag.Int("machine-points", 4, "virtual-time crash instants per model in the sweep benchmark")
	machineTxns := flag.Int("machine-txns", 6, "transactions per machine run in the sweep benchmark")
	repeat := flag.Int("repeat", 3, "measurements per configuration; best (minimum) time wins")
	out := flag.String("out", "", "write the JSON result to this file instead of stdout")
	guardTxns := flag.Int("guard-txns", 200, "guard-contention benchmark: transactions per worker")
	guardWrites := flag.Int("guard-writes", 4, "guard-contention benchmark: page writes per transaction")
	guardPages := flag.Int("guard-pages", 64, "guard-contention benchmark: database pages")
	guardOut := flag.String("guard-out", "", "write the guard-contention JSON to this file (default stdout)")
	guardOnly := flag.Bool("guard-only", false, "run only the guard-contention benchmark")
	guardScale := flag.Bool("guardscale", false, "run only the guard-scaling benchmark (plain vs group-commit vs striped-read)")
	guardReads := flag.Int("guard-reads", 8, "guard-scaling benchmark: page reads per transaction")
	guardScaleOut := flag.String("guardscale-out", "", "write the guard-scaling JSON to this file (default stdout)")
	liveAddr := flag.String("live", "", "serve live /metrics, /progress and /debug/pprof on this address while benchmarking (e.g. :9090)")
	flag.Parse()

	if *liveAddr != "" {
		srv, err := live.Serve(*liveAddr, live.Default(), nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbbench:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "dbbench: live endpoint on http://%s/metrics\n", srv.Addr())
	}

	runGuard := func() {
		if err := benchGuard(*jobs, *guardTxns, *guardWrites, *guardPages, *seed, *guardOut); err != nil {
			fmt.Fprintln(os.Stderr, "dbbench:", err)
			os.Exit(1)
		}
	}
	if *guardScale {
		if err := benchGuardScale(*jobs, *guardTxns, *guardReads, *guardWrites, *guardPages, *seed, *guardScaleOut); err != nil {
			fmt.Fprintln(os.Stderr, "dbbench:", err)
			os.Exit(1)
		}
		return
	}
	if *guardOnly {
		runGuard()
		return
	}

	res := Result{
		Benchmark:  "runpool",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Jobs:       *jobs,
		Txns:       *txns,
		Seed:       *seed,
		SweepEvery: *every,
		Repeat:     *repeat,
	}
	runs := []struct {
		name string
		f    func(jobs int) ([]byte, error)
	}{
		{"tables_all", benchTables(*txns, *seed)},
		{"crashsweep", benchSweep(*seed, *every, *machinePoints, *machineTxns)},
	}
	for _, r := range runs {
		t, err := bench(r.name, *repeat, *jobs, r.f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbbench:", err)
			os.Exit(1)
		}
		res.Timings = append(res.Timings, t)
		fmt.Fprintf(os.Stderr, "dbbench: %-11s jobs=1 %8.1fms  jobs=%d %8.1fms  speedup %.2fx  (%d bytes, identical)\n",
			r.name, t.Jobs1Ms, *jobs, t.JobsNMs, t.Speedup, t.Bytes)
	}

	enc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbbench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		runGuard()
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "dbbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "dbbench: wrote %s\n", *out)
	runGuard()
}
