package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/obs/live"
	"repro/internal/sim"
	"repro/internal/wal"
)

// The guard-scaling benchmark compares the three concurrency envelopes the
// Guard can run — plain (every operation through the one kernel mutex),
// group-commit (concurrent committers batched into one log force), and
// striped-read (committed-page reads served from per-stripe latches) —
// over a worker-count sweep. Where BENCH_guard_contention.json profiles
// *where* the mutex hurts, BENCH_guard.json measures what the relaxations
// *buy*: transactions per second and client-observed commit latency
// percentiles per mode per worker count. The committed file records
// gomaxprocs; on a single-core container the curves show overhead parity
// rather than speedup, so regenerate on a multi-core machine for the
// scaling story.

// scaleMode is one concurrency envelope under test.
type scaleMode struct {
	name   string
	tuning func(jobs int, e *engine.Engine)
}

func scaleModes() []scaleMode {
	return []scaleMode{
		{"plain", func(int, *engine.Engine) {}},
		// MaxWait 0 batches opportunistically: whoever queued while the
		// previous batch drained rides the next force. A positive MaxWait
		// only pays off when the force itself is expensive; on the
		// simulated in-memory store it would just add latency.
		{"group-commit", func(jobs int, e *engine.Engine) {
			e.Guard().SetGroupCommit(engine.GroupCommitPolicy{MaxBatch: jobs}, nil)
		}},
		{"striped-read", func(_ int, e *engine.Engine) {
			e.Guard().SetReadStripes(64)
		}},
	}
}

// ScalePoint is one (mode, workers) measurement.
type ScalePoint struct {
	Jobs       int           `json:"jobs"`
	WallMs     float64       `json:"wall_ms"`
	Commits    int64         `json:"commits"`
	TxnsPerSec float64       `json:"txns_per_sec"`
	CommitMs   live.HistSnap `json:"commit_ms"` // client-observed commit latency
}

// ScaleMode is one envelope's scaling curve.
type ScaleMode struct {
	Mode   string       `json:"mode"`
	Points []ScalePoint `json:"points"`
}

// ScaleResult is the BENCH_guard.json document.
type ScaleResult struct {
	Benchmark     string      `json:"benchmark"`
	GoMaxProcs    int         `json:"gomaxprocs"`
	Engine        string      `json:"engine"`
	TxnsPerWorker int         `json:"txns_per_worker"`
	ReadsPerTxn   int         `json:"reads_per_txn"`
	WritesPerTxn  int         `json:"writes_per_txn"`
	Pages         int         `json:"pages"`
	Seed          int64       `json:"seed"`
	Modes         []ScaleMode `json:"modes"`
}

// scaleWorkload is guardWorkload with a read-heavy mix (so the stripe
// cache has traffic to serve) and per-commit latency observation.
func scaleWorkload(e *engine.Engine, rng *sim.RNG, txns, reads, writes, pages int, commitMs *live.Histogram, clock live.Clock) (int64, error) {
	var commits int64
	for t := 0; t < txns; t++ {
		txn, err := e.Begin()
		if err != nil {
			return commits, err
		}
		ok := true
		for r := 0; r < reads && ok; r++ {
			if _, err := txn.Read(int64(rng.Intn(pages))); err != nil {
				ok = false // deadlock victim: roll back and move on
			}
		}
		for w := 0; w < writes && ok; w++ {
			p := int64(rng.Intn(pages))
			if err := txn.Write(p, []byte(fmt.Sprintf("w%d", t))); err != nil {
				ok = false
			}
		}
		if !ok {
			_ = txn.Abort()
			continue
		}
		start := clock.Now()
		err = txn.Commit()
		commitMs.Observe(float64(clock.Now().Sub(start)) / float64(time.Millisecond))
		if err != nil {
			continue
		}
		commits++
	}
	return commits, nil
}

// scalePoint measures one (mode, jobs) cell on a fresh WAL engine.
func scalePoint(mode scaleMode, jobs, txns, reads, writes, pages int, seed int64) (ScalePoint, error) {
	e := engine.NewWAL(wal.Config{})
	for p := 0; p < pages; p++ {
		if err := e.Load(int64(p), []byte("seed")); err != nil {
			return ScalePoint{}, err
		}
	}
	mode.tuning(jobs, e)

	clock := live.Wall()
	var commitMs live.Histogram
	commits := make([]int64, jobs)
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	start := clock.Now()
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func(w int) {
			defer wg.Done()
			rng := sim.NewRNG(seed + int64(w))
			commits[w], errs[w] = scaleWorkload(e, rng, txns, reads, writes, pages, &commitMs, clock)
		}(w)
	}
	wg.Wait()
	wallMs := float64(clock.Now().Sub(start).Microseconds()) / 1000

	pt := ScalePoint{Jobs: jobs, WallMs: wallMs, CommitMs: commitMs.Snap()}
	for w := 0; w < jobs; w++ {
		if errs[w] != nil {
			return pt, fmt.Errorf("mode %s worker %d: %w", mode.name, w, errs[w])
		}
		pt.Commits += commits[w]
	}
	if wallMs > 0 {
		pt.TxnsPerSec = float64(jobs*txns) / (wallMs / 1000)
	}
	return pt, nil
}

// benchGuardScale sweeps workers 1, 2, 4, ... up to maxJobs (always
// including maxJobs) across the three envelopes and writes BENCH_guard.json.
func benchGuardScale(maxJobs, txns, reads, writes, pages int, seed int64, outPath string) error {
	res := ScaleResult{
		Benchmark:     "guard_scaling",
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Engine:        engine.NewWAL(wal.Config{}).Name(),
		TxnsPerWorker: txns,
		ReadsPerTxn:   reads,
		WritesPerTxn:  writes,
		Pages:         pages,
		Seed:          seed,
	}
	var counts []int
	for j := 1; j < maxJobs; j *= 2 {
		counts = append(counts, j)
	}
	if len(counts) == 0 || counts[len(counts)-1] != maxJobs {
		counts = append(counts, maxJobs)
	}
	for _, mode := range scaleModes() {
		m := ScaleMode{Mode: mode.name}
		for _, j := range counts {
			pt, err := scalePoint(mode, j, txns, reads, writes, pages, seed)
			if err != nil {
				return err
			}
			m.Points = append(m.Points, pt)
			fmt.Fprintf(os.Stderr,
				"dbbench: guardscale %-12s jobs=%-2d wall %7.1fms  %9.0f txn/s  commit p50 %.4fms p95 %.4fms p99 %.4fms\n",
				mode.name, j, pt.WallMs, pt.TxnsPerSec, pt.CommitMs.P50, pt.CommitMs.P95, pt.CommitMs.P99)
		}
		res.Modes = append(res.Modes, m)
	}

	enc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if outPath == "" {
		os.Stdout.Write(enc)
		return nil
	}
	if err := os.WriteFile(outPath, enc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dbbench: wrote %s\n", outPath)
	return nil
}
