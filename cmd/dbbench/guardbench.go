package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"

	"repro/internal/engine"
	"repro/internal/obs/live"
	"repro/internal/sim"
	"repro/internal/wal"
)

// The guard-contention benchmark measures what the repository's whole
// concurrency story hinges on: every transactional operation serializes
// through engine.Guard's single mutex, so the mutex wait-time curve over
// worker count is the direct cost of the kernel/wrapper split. W workers
// each run K seeded transactions against one shared WAL engine while a
// live.GuardMetrics profiles per-op wait and hold times; the jobs=1 row is
// the contention-free baseline the other rows are read against.

// GuardOpSummary is one op's wait/hold profile at one worker count.
type GuardOpSummary struct {
	Wait live.HistSnap `json:"wait_ms"`
	Hold live.HistSnap `json:"hold_ms"`
}

// GuardPoint is the measurement at one worker count.
type GuardPoint struct {
	Jobs       int                       `json:"jobs"`
	WallMs     float64                   `json:"wall_ms"`
	Commits    int64                     `json:"commits"`
	MaxWaiters int64                     `json:"max_waiters"`
	Ops        map[string]GuardOpSummary `json:"ops"`
}

// GuardResult is the BENCH_guard_contention.json document.
type GuardResult struct {
	Benchmark     string       `json:"benchmark"`
	GoMaxProcs    int          `json:"gomaxprocs"`
	Engine        string       `json:"engine"`
	TxnsPerWorker int          `json:"txns_per_worker"`
	WritesPerTxn  int          `json:"writes_per_txn"`
	Pages         int          `json:"pages"`
	Seed          int64        `json:"seed"`
	Points        []GuardPoint `json:"points"`
}

// guardWorkload runs K transactions against e, each touching a few seeded
// pages. Every worker gets its own RNG (seed+worker), so the page traffic
// is reproducible per worker regardless of scheduling.
func guardWorkload(e *engine.Engine, rng *sim.RNG, txns, writesPerTxn, pages int) (int64, error) {
	var commits int64
	for t := 0; t < txns; t++ {
		txn, err := e.Begin()
		if err != nil {
			return commits, err
		}
		ok := true
		for w := 0; w < writesPerTxn; w++ {
			p := int64(rng.Intn(pages))
			if _, err := txn.Read(p); err != nil {
				ok = false // deadlock victim: roll back and move on
				break
			}
			if err := txn.Write(p, []byte(fmt.Sprintf("w%d", t))); err != nil {
				ok = false
				break
			}
		}
		if !ok {
			_ = txn.Abort()
			continue
		}
		if err := txn.Commit(); err != nil {
			_ = txn.Abort()
			continue
		}
		commits++
	}
	return commits, nil
}

// guardPoint measures one worker count: a fresh WAL engine, fresh metrics,
// W concurrent workers of K transactions each.
func guardPoint(jobs, txns, writesPerTxn, pages int, seed int64) (GuardPoint, error) {
	e := engine.NewWAL(wal.Config{})
	for p := 0; p < pages; p++ {
		if err := e.Load(int64(p), []byte("seed")); err != nil {
			return GuardPoint{}, err
		}
	}
	gm := live.NewGuardMetrics(live.Wall())
	e.Guard().SetMetrics(gm)

	clock := live.Wall()
	start := clock.Now()
	var wg sync.WaitGroup
	commits := make([]int64, jobs)
	errs := make([]error, jobs)
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func(w int) {
			defer wg.Done()
			rng := sim.NewRNG(seed + int64(w))
			commits[w], errs[w] = guardWorkload(e, rng, txns, writesPerTxn, pages)
		}(w)
	}
	wg.Wait()
	wallMs := float64(clock.Now().Sub(start).Microseconds()) / 1000

	pt := GuardPoint{
		Jobs:       jobs,
		WallMs:     wallMs,
		MaxWaiters: gm.MaxWaiters(),
		Ops:        map[string]GuardOpSummary{},
	}
	for w := 0; w < jobs; w++ {
		if errs[w] != nil {
			return pt, fmt.Errorf("guard bench worker %d: %w", w, errs[w])
		}
		pt.Commits += commits[w]
	}
	for op := live.GuardBegin; op <= live.GuardCommit; op++ {
		if gm.Wait(op).Count() == 0 {
			continue
		}
		pt.Ops[op.String()] = GuardOpSummary{
			Wait: gm.Wait(op).Snap(),
			Hold: gm.Hold(op).Snap(),
		}
	}
	return pt, nil
}

// benchGuard sweeps worker counts 1, 2, 4, ... up to maxJobs (always
// including maxJobs itself) and writes BENCH_guard_contention.json.
func benchGuard(maxJobs, txns, writesPerTxn, pages int, seed int64, outPath string) error {
	res := GuardResult{
		Benchmark:     "guard_contention",
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		TxnsPerWorker: txns,
		WritesPerTxn:  writesPerTxn,
		Pages:         pages,
		Seed:          seed,
		Engine:        engine.NewWAL(wal.Config{}).Name(),
	}
	var counts []int
	for j := 1; j < maxJobs; j *= 2 {
		counts = append(counts, j)
	}
	if len(counts) == 0 || counts[len(counts)-1] != maxJobs {
		counts = append(counts, maxJobs)
	}
	for _, j := range counts {
		pt, err := guardPoint(j, txns, writesPerTxn, pages, seed)
		if err != nil {
			return err
		}
		res.Points = append(res.Points, pt)
		wait := pt.Ops["commit"].Wait
		fmt.Fprintf(os.Stderr,
			"dbbench: guard jobs=%-2d wall %7.1fms  commits %4d  max-waiters %2d  commit-wait p50 %.4fms p99 %.4fms\n",
			j, pt.WallMs, pt.Commits, pt.MaxWaiters, wait.P50, wait.P99)
	}

	enc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if outPath == "" {
		os.Stdout.Write(enc)
		return nil
	}
	if err := os.WriteFile(outPath, enc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dbbench: wrote %s\n", outPath)
	return nil
}
