package diffeng

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/pagestore"
)

func newEngine() (*Engine, *pagestore.Store) {
	store := pagestore.New(4096)
	return New(store), store
}

func TestViewResolution(t *testing.T) {
	e, _ := newEngine()
	if err := e.Load(1, []byte("base")); err != nil {
		t.Fatal(err)
	}
	// Base visible before any differential.
	got, err := e.ReadCommitted(1)
	if err != nil || string(got) != "base" {
		t.Fatalf("base read: %q %v", got, err)
	}
	if err := e.Begin(1); err != nil {
		t.Fatal(err)
	}
	if err := e.Write(1, 1, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Own pending write visible; committed view unchanged.
	own, _ := e.Read(1, 1)
	if string(own) != "v1" {
		t.Fatalf("own read: %q", own)
	}
	com, _ := e.ReadCommitted(1)
	if string(com) != "base" {
		t.Fatalf("committed view leaked: %q", com)
	}
	if err := e.Commit(1); err != nil {
		t.Fatal(err)
	}
	com, _ = e.ReadCommitted(1)
	if string(com) != "v1" {
		t.Fatalf("after commit: %q", com)
	}
	// The base file itself is untouched.
	raw, _, err := e.storeRead(1)
	if err != nil || string(raw) != "base" {
		t.Fatalf("base file modified: %q %v", raw, err)
	}
}

// storeRead peeks at the base file directly.
func (e *Engine) storeRead(p int64) ([]byte, uint64, error) {
	return e.store.Read(pagestore.PageID(p))
}

func TestDeleteThroughDFile(t *testing.T) {
	e, _ := newEngine()
	if err := e.Load(1, []byte("base")); err != nil {
		t.Fatal(err)
	}
	if err := e.Begin(1); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(1, 1); err != nil {
		t.Fatal(err)
	}
	if own, _ := e.Read(1, 1); own != nil {
		t.Fatalf("own read after delete: %q", own)
	}
	if err := e.Commit(1); err != nil {
		t.Fatal(err)
	}
	got, _ := e.ReadCommitted(1)
	if got != nil {
		t.Fatalf("deleted page still visible: %q", got)
	}
}

func TestAbortLeavesNoTrace(t *testing.T) {
	e, store := newEngine()
	if err := e.Load(1, []byte("base")); err != nil {
		t.Fatal(err)
	}
	_, wBefore := store.Stats()
	if err := e.Begin(1); err != nil {
		t.Fatal(err)
	}
	if err := e.Write(1, 1, []byte("junk")); err != nil {
		t.Fatal(err)
	}
	if err := e.Abort(1); err != nil {
		t.Fatal(err)
	}
	_, wAfter := store.Stats()
	if wAfter != wBefore {
		t.Fatal("aborted transaction touched stable storage")
	}
	got, _ := e.ReadCommitted(1)
	if string(got) != "base" {
		t.Fatalf("abort leaked: %q", got)
	}
}

func TestCrashRecovery(t *testing.T) {
	e, _ := newEngine()
	if err := e.Load(1, []byte("base")); err != nil {
		t.Fatal(err)
	}
	if err := e.Begin(1); err != nil {
		t.Fatal(err)
	}
	if err := e.Write(1, 1, []byte("committed")); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(1); err != nil {
		t.Fatal(err)
	}
	if err := e.Begin(2); err != nil {
		t.Fatal(err)
	}
	if err := e.Write(2, 1, []byte("lost")); err != nil {
		t.Fatal(err)
	}
	e.Crash()
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
	got, _ := e.ReadCommitted(1)
	if string(got) != "committed" {
		t.Fatalf("after recovery: %q", got)
	}
}

func TestInDoubtCommitAtomic(t *testing.T) {
	for budget := int64(0); budget < 4; budget++ {
		e, store := newEngine()
		for p := int64(0); p < 3; p++ {
			if err := e.Load(p, []byte("base")); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Begin(1); err != nil {
			t.Fatal(err)
		}
		for p := int64(0); p < 3; p++ {
			if err := e.Write(1, p, []byte("new")); err != nil {
				t.Fatal(err)
			}
		}
		store.SetWriteBudget(budget)
		commitErr := e.Commit(1)
		e.Crash()
		if err := e.Recover(); err != nil {
			t.Fatal(err)
		}
		news := 0
		for p := int64(0); p < 3; p++ {
			got, err := e.ReadCommitted(p)
			if err != nil {
				t.Fatal(err)
			}
			switch string(got) {
			case "new":
				news++
			case "base":
			default:
				t.Fatalf("budget %d: page %d = %q", budget, p, got)
			}
		}
		if news != 0 && news != 3 {
			t.Fatalf("budget %d: torn commit", budget)
		}
		if commitErr == nil && news != 3 {
			t.Fatalf("budget %d: acked commit lost", budget)
		}
	}
}

func TestMergeCompacts(t *testing.T) {
	e, store := newEngine()
	for p := int64(0); p < 4; p++ {
		if err := e.Load(p, []byte("base")); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Begin(1); err != nil {
		t.Fatal(err)
	}
	if err := e.Write(1, 0, []byte("updated")); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(1); err != nil {
		t.Fatal(err)
	}
	if e.DiffSize() == 0 {
		t.Fatal("no differentials before merge")
	}
	if err := e.Merge(); err != nil {
		t.Fatal(err)
	}
	if e.DiffSize() != 0 {
		t.Fatal("differentials remain after merge")
	}
	// The view survives merge + crash + recovery (now from the base).
	e.Crash()
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
	if got, _ := e.ReadCommitted(0); string(got) != "updated" {
		t.Fatalf("merged update lost: %q", got)
	}
	if got, _ := e.ReadCommitted(1); got != nil {
		t.Fatalf("merged delete lost: %q", got)
	}
	if got, _ := e.ReadCommitted(2); string(got) != "base" {
		t.Fatalf("untouched base page: %q", got)
	}
	_ = store
}

func TestMergeRequiresQuiescence(t *testing.T) {
	e, _ := newEngine()
	if err := e.Begin(1); err != nil {
		t.Fatal(err)
	}
	if err := e.Merge(); err == nil {
		t.Fatal("merge allowed with active transaction")
	}
}

func TestEntryMarshalProperty(t *testing.T) {
	f := func(txn uint64, pg int64, data []byte, del bool) bool {
		in := entry{typ: entryAdd, txn: txn, page: pg, data: data}
		if del {
			in = entry{typ: entryDel, txn: txn, page: pg}
		}
		out, n, err := unmarshalEntry(in.marshal(nil))
		if err != nil || n != in.size() {
			return false
		}
		if out.typ != in.typ || out.txn != in.txn || out.page != in.page {
			return false
		}
		return string(out.data) == string(in.data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestViewEquivalenceProperty(t *testing.T) {
	// Property: after any committed/aborted history (with occasional crash
	// and merge), the engine's view equals a model map.
	f := func(script []uint16) bool {
		e, _ := newEngine()
		const pages = 5
		model := map[int64]string{}
		for p := int64(0); p < pages; p++ {
			v := fmt.Sprintf("base%d", p)
			if err := e.Load(p, []byte(v)); err != nil {
				return false
			}
			model[p] = v
		}
		tid := uint64(0)
		for i, op := range script {
			tid++
			if e.Begin(tid) != nil {
				return false
			}
			p := int64(op) % pages
			v := fmt.Sprintf("t%d-%d", tid, i)
			del := op%7 == 0
			if del {
				if e.Delete(tid, p) != nil {
					return false
				}
			} else if e.Write(tid, p, []byte(v)) != nil {
				return false
			}
			switch op % 5 {
			case 0: // abort
				if e.Abort(tid) != nil {
					return false
				}
			default:
				if e.Commit(tid) != nil {
					return false
				}
				if del {
					delete(model, p)
				} else {
					model[p] = v
				}
			}
			if op%11 == 0 {
				e.Crash()
				if e.Recover() != nil {
					return false
				}
			}
			if op%13 == 0 {
				if e.Merge() != nil {
					return false
				}
			}
		}
		for p := int64(0); p < pages; p++ {
			got, err := e.ReadCommitted(p)
			if err != nil {
				return false
			}
			want, exists := model[p]
			if exists != (got != nil) {
				return false
			}
			if exists && string(got) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
