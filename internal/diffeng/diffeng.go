// Package diffeng implements a functional differential-file recovery engine
// (the paper's Section 3.3, after Severance & Lohman): the database is a
// view R = (B ∪ A) − D of a read-only base file B, an additions file A and a
// deletions file D. Transactions never touch B: an update appends the old
// version's obituary to D and the new version to A; commit appends a commit
// marker and forces the differential files. Recovery replays the stable A/D
// tail, honouring only marked transactions — B itself is always consistent.
//
// Merge folds the committed differentials into a new base and truncates
// A and D, the maintenance operation the paper sizes in Table 11.
//
// The Engine is a pure, single-threaded recovery kernel: it contains no
// locks, goroutines, or channels (simlint rule D004 enforces this), so its
// behaviour is a deterministic function of the call sequence. Concurrent
// callers must go through the thread-safe wrapper in internal/engine.
package diffeng

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/pagestore"
)

type entryType uint8

const (
	entryAdd entryType = iota + 1 // A-file record: new page version
	entryDel                      // D-file record: previous version dead
	entryCommit
)

// entry is one differential-file record.
type entry struct {
	typ  entryType
	txn  uint64
	page int64
	data []byte
}

func (e entry) size() int { return 1 + 8 + 8 + 4 + len(e.data) }

func (e entry) marshal(buf []byte) []byte {
	buf = append(buf, byte(e.typ))
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], e.txn)
	buf = append(buf, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], uint64(e.page))
	buf = append(buf, tmp[:]...)
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(e.data)))
	buf = append(buf, l[:]...)
	return append(buf, e.data...)
}

func unmarshalEntry(buf []byte) (entry, int, error) {
	const header = 21
	if len(buf) < header {
		return entry{}, 0, fmt.Errorf("diffeng: truncated entry header")
	}
	var e entry
	e.typ = entryType(buf[0])
	if e.typ < entryAdd || e.typ > entryCommit {
		return entry{}, 0, fmt.Errorf("diffeng: corrupt entry type %d", buf[0])
	}
	e.txn = binary.BigEndian.Uint64(buf[1:])
	e.page = int64(binary.BigEndian.Uint64(buf[9:]))
	n := int(binary.BigEndian.Uint32(buf[17:]))
	if len(buf) < header+n {
		return entry{}, 0, fmt.Errorf("diffeng: truncated entry body")
	}
	if n > 0 {
		e.data = append([]byte(nil), buf[header:header+n]...)
	}
	return e, header + n, nil
}

// Reserved page-id layout: base pages are the logical ids (>= 0);
// differential chunks live below diffBase. Chunks are packed to the store's
// page size, so a single entry (21-byte header + value) must fit in one
// page; Write enforces that bound.
const diffBase int64 = -4000000

func chunkPage(seq int64) pagestore.PageID { return pagestore.PageID(diffBase - seq) }

// version is a page's committed state in the differential view.
type version struct {
	deleted bool
	data    []byte
}

// Engine is the differential-file engine: a pure kernel, not safe for
// concurrent use on its own. Isolation and locking are the caller's job
// (see internal/engine.Guard).
type Engine struct {
	store *pagestore.Store

	nextChunk int64
	volatile  []entry // appended, not yet forced

	view map[int64]version // committed differential view (A minus D)
	att  map[uint64][]entry

	adds, dels, commits, aborts, merges int64
	replayed                            int64 // entries scanned by the last Recover

	// journal, when attached, records recovery and merge decisions in
	// order. A nil journal is a no-op sink; it belongs to the observer and
	// survives Crash.
	journal *obs.Journal
}

// New creates a differential-file engine on store.
func New(store *pagestore.Store) *Engine {
	return &Engine{
		store: store,
		view:  make(map[int64]version),
		att:   make(map[uint64][]entry),
	}
}

// Name identifies the engine.
func (e *Engine) Name() string { return "difffile" }

// SetJournal attaches (or with nil detaches) the structured recovery
// journal. Subsequent Recover and Merge calls emit their decisions to it.
func (e *Engine) SetJournal(j *obs.Journal) { e.journal = j }

// Stores lists the engine's stable stores for snapshot/backup through the
// engine.Guard. The store is the thread-safe substrate, exempt from the
// kernel-state escape rule by contract.
func (e *Engine) Stores() []*pagestore.Store { return []*pagestore.Store{e.store} }

// Load writes page p into the read-only base file B.
func (e *Engine) Load(p int64, data []byte) error {
	if err := e.store.Write(pagestore.PageID(p), data, 0); err != nil {
		return err
	}
	e.journal.Emit(obs.JournalRecord{Event: "load", Page: obs.JournalPage(p)})
	return nil
}

// Begin starts transaction tid.
func (e *Engine) Begin(tid uint64) error {
	if _, ok := e.att[tid]; ok {
		return fmt.Errorf("diffeng: transaction %d already active", tid)
	}
	e.att[tid] = nil
	return nil
}

// Read resolves page p through (B ∪ A) − D as seen by tid, including its
// own uncommitted differentials.
func (e *Engine) Read(tid uint64, p int64) ([]byte, error) {
	// The transaction's own pending entries shadow everything.
	if pend, ok := e.att[tid]; ok {
		for i := len(pend) - 1; i >= 0; i-- {
			if pend[i].page != p {
				continue
			}
			switch pend[i].typ {
			case entryAdd:
				return append([]byte(nil), pend[i].data...), nil
			case entryDel:
				return nil, nil
			}
		}
	}
	return e.resolveCommitted(p)
}

func (e *Engine) resolveCommitted(p int64) ([]byte, error) {
	if v, ok := e.view[p]; ok {
		if v.deleted {
			return nil, nil
		}
		return append([]byte(nil), v.data...), nil
	}
	data, _, err := e.store.Read(pagestore.PageID(p))
	if errors.Is(err, pagestore.ErrNotFound) {
		return nil, nil
	}
	return data, err
}

// Write replaces page p for tid: the old version's obituary goes to D and
// the new version to A (buffered until commit).
func (e *Engine) Write(tid uint64, p int64, data []byte) error {
	pend, ok := e.att[tid]
	if !ok {
		return fmt.Errorf("diffeng: transaction %d not active", tid)
	}
	add := entry{typ: entryAdd, txn: tid, page: p, data: append([]byte(nil), data...)}
	if add.size() > e.store.PageSize() {
		return fmt.Errorf("diffeng: value for page %d (%d bytes) exceeds the differential chunk size %d",
			p, len(data), e.store.PageSize()-21)
	}
	e.att[tid] = append(pend, entry{typ: entryDel, txn: tid, page: p}, add)
	return nil
}

// Delete removes page p from the view for tid (a pure D-file append).
func (e *Engine) Delete(tid uint64, p int64) error {
	pend, ok := e.att[tid]
	if !ok {
		return fmt.Errorf("diffeng: transaction %d not active", tid)
	}
	e.att[tid] = append(pend, entry{typ: entryDel, txn: tid, page: p})
	return nil
}

// Commit appends tid's differentials plus a commit marker and forces them.
// An error leaves the commit in doubt; recovery decides by the marker.
func (e *Engine) Commit(tid uint64) error {
	pend, ok := e.att[tid]
	if !ok {
		return fmt.Errorf("diffeng: transaction %d not active", tid)
	}
	e.volatile = append(e.volatile, pend...)
	e.volatile = append(e.volatile, entry{typ: entryCommit, txn: tid})
	if err := e.force(); err != nil {
		return fmt.Errorf("diffeng: commit %d in doubt: %w", tid, err)
	}
	e.applyCommitted(pend)
	delete(e.att, tid)
	e.commits++
	e.journal.Emit(obs.JournalRecord{Event: "commit", Txn: tid, N: int64(len(pend))})
	return nil
}

func (e *Engine) applyCommitted(entries []entry) {
	for _, en := range entries {
		switch en.typ {
		case entryAdd:
			e.view[en.page] = version{data: en.data}
			e.adds++
		case entryDel:
			e.view[en.page] = version{deleted: true}
			e.dels++
		}
	}
}

// Abort drops tid's buffered differentials; nothing ever reached A or D.
func (e *Engine) Abort(tid uint64) error {
	if _, ok := e.att[tid]; !ok {
		return fmt.Errorf("diffeng: transaction %d not active", tid)
	}
	delete(e.att, tid)
	e.aborts++
	return nil
}

// force persists the volatile differential tail in whole-entry chunks of at
// most one store page each.
func (e *Engine) force() error {
	budget := e.store.PageSize()
	i := 0
	for i < len(e.volatile) {
		var buf []byte
		j := i
		for j < len(e.volatile) {
			if len(buf) > 0 && len(buf)+e.volatile[j].size() > budget {
				break
			}
			buf = e.volatile[j].marshal(buf)
			j++
		}
		if err := e.store.Write(chunkPage(e.nextChunk), buf, 0); err != nil {
			e.volatile = append([]entry(nil), e.volatile[i:]...)
			return err
		}
		e.nextChunk++
		i = j
	}
	e.volatile = e.volatile[:0]
	return nil
}

// Crash drops all volatile state (view cache, active transactions, unforced
// differential tail).
func (e *Engine) Crash() {
	e.view = nil
	e.att = nil
	e.volatile = nil
}

// Recover rebuilds the committed view by replaying the stable differential
// files; only transactions whose commit marker survived are applied.
func (e *Engine) Recover() error {
	if err := e.store.Reset(); err != nil {
		return err
	}
	entries, nextChunk, err := e.readStable()
	if err != nil {
		return err
	}
	e.nextChunk = nextChunk
	e.replayed = int64(len(entries))
	e.journal.Emit(obs.JournalRecord{Event: "scan", Engine: e.Name(), N: e.replayed})
	committed := map[uint64]bool{}
	for _, en := range entries {
		if en.typ == entryCommit {
			committed[en.txn] = true
		}
	}
	// Journal the classification in first-appearance (replay) order — never
	// by iterating the committed map, whose order is nondeterministic.
	if e.journal != nil {
		seen := map[uint64]bool{}
		for _, en := range entries {
			if seen[en.txn] {
				continue
			}
			seen[en.txn] = true
			ev := "loser"
			if committed[en.txn] {
				ev = "winner"
			}
			e.journal.Emit(obs.JournalRecord{Event: ev, Txn: en.txn})
		}
	}
	e.view = make(map[int64]version)
	e.adds, e.dels = 0, 0
	var applied int64
	for _, en := range entries {
		if committed[en.txn] {
			e.applyCommitted([]entry{en})
			if en.typ != entryCommit {
				applied++
			}
		}
	}
	e.journal.Emit(obs.JournalRecord{Event: "replay", Engine: e.Name(), N: applied})
	e.att = make(map[uint64][]entry)
	e.volatile = nil
	return nil
}

func (e *Engine) readStable() ([]entry, int64, error) {
	var out []entry
	seq := int64(0)
	for {
		buf, _, err := e.store.Read(chunkPage(seq))
		if errors.Is(err, pagestore.ErrNotFound) {
			return out, seq, nil
		}
		if err != nil {
			return nil, 0, err
		}
		for len(buf) > 0 {
			en, n, err := unmarshalEntry(buf)
			if err != nil {
				return nil, 0, err
			}
			out = append(out, en)
			buf = buf[n:]
		}
		seq++
	}
}

// Merge folds the committed differential view into the base file and
// truncates A and D. It requires a quiescent engine (no active
// transactions).
func (e *Engine) Merge() error {
	if len(e.att) > 0 {
		return fmt.Errorf("diffeng: merge requires quiescence (%d active transactions)", len(e.att))
	}
	pages := make([]int64, 0, len(e.view))
	for p := range e.view {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	for _, p := range pages {
		v := e.view[p]
		if v.deleted {
			if err := e.store.Delete(pagestore.PageID(p)); err != nil {
				return err
			}
			continue
		}
		if err := e.store.Write(pagestore.PageID(p), v.data, 0); err != nil {
			return err
		}
	}
	// Truncate the differential files highest chunk first. The chunk file
	// must stay a contiguous prefix at all times: a crash mid-truncation then
	// leaves chunks 0..j, which recovery replays idempotently over the merged
	// base. Deleting ascending would instead leave a hole at chunk 0 with
	// stale chunks above it — a later force would fill the hole and recovery
	// would replay the stale tail on top of newer data.
	truncated := e.nextChunk
	for seq := e.nextChunk - 1; seq >= 0; seq-- {
		if err := e.store.Delete(chunkPage(seq)); err != nil {
			return err
		}
	}
	e.nextChunk = 0
	e.journal.Emit(obs.JournalRecord{Event: "merge", Engine: e.Name(), N: int64(len(pages))})
	e.journal.Emit(obs.JournalRecord{Event: "truncate", Engine: e.Name(), N: truncated})
	e.view = make(map[int64]version)
	e.merges++
	return nil
}

// ReadCommitted resolves the committed value of page p.
func (e *Engine) ReadCommitted(p int64) ([]byte, error) {
	return e.resolveCommitted(p)
}

// DiffSize reports the number of live differential entries (the paper's
// |A|+|D| relative to |B| drives Table 11).
func (e *Engine) DiffSize() int {
	return len(e.view)
}

// Stats reports counters.
func (e *Engine) Stats() map[string]int64 {
	return map[string]int64{
		"adds":     e.adds,
		"dels":     e.dels,
		"commits":  e.commits,
		"aborts":   e.aborts,
		"merges":   e.merges,
		"replayed": e.replayed,
	}
}
