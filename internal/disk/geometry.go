// Package disk models the mass-storage devices of the database machine:
// IBM-3350-class conventional moving-head disks and SURE/DBC-style
// parallel-access disks that can read or write every page of a cylinder in
// one access.
//
// Pages on a device are addressed by a dense local page number; the geometry
// maps page numbers to (cylinder, track, sector). Service times are built
// from seek, rotational latency and transfer components, so relative device
// behaviour (random vs sequential, conventional vs parallel-access) emerges
// from the same few parameters the paper's simulator used.
package disk

import "fmt"

// Geometry describes the physical layout of a disk.
type Geometry struct {
	PagesPerTrack int // 4 KB pages per track
	TracksPerCyl  int // tracks (heads) per cylinder
	Cylinders     int
}

// Default3350Geometry approximates an IBM 3350: roughly 4 four-KB pages per
// 19 KB track; 30 surfaces grouped here into 12-track logical cylinders to
// keep cylinder capacity near the paper's batching behaviour.
func Default3350Geometry() Geometry {
	return Geometry{PagesPerTrack: 4, TracksPerCyl: 12, Cylinders: 555}
}

// PagesPerCyl reports the number of pages in one cylinder.
func (g Geometry) PagesPerCyl() int { return g.PagesPerTrack * g.TracksPerCyl }

// Capacity reports the total number of pages on the device.
func (g Geometry) Capacity() int { return g.PagesPerCyl() * g.Cylinders }

// CylinderOf maps a local page number to its cylinder.
func (g Geometry) CylinderOf(page int) int {
	if page < 0 || page >= g.Capacity() {
		panic(fmt.Sprintf("disk: page %d out of range (capacity %d)", page, g.Capacity()))
	}
	return page / g.PagesPerCyl()
}

// TrackOf maps a local page number to its track within the cylinder.
func (g Geometry) TrackOf(page int) int {
	return (page % g.PagesPerCyl()) / g.PagesPerTrack
}

// Validate reports an error if the geometry is degenerate.
func (g Geometry) Validate() error {
	if g.PagesPerTrack <= 0 || g.TracksPerCyl <= 0 || g.Cylinders <= 0 {
		return fmt.Errorf("disk: invalid geometry %+v", g)
	}
	return nil
}
