package disk

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testGeom() Geometry {
	return Geometry{PagesPerTrack: 4, TracksPerCyl: 12, Cylinders: 100}
}

func testParams() Params {
	return Params{
		MinSeek:      sim.Ms(10),
		SeekPerCyl:   sim.Ms(0.1),
		Rotation:     sim.Ms(16),
		PageTransfer: sim.Ms(3),
	}
}

func TestGeometryMapping(t *testing.T) {
	g := testGeom()
	if g.PagesPerCyl() != 48 {
		t.Fatalf("pages/cyl = %d", g.PagesPerCyl())
	}
	if g.Capacity() != 4800 {
		t.Fatalf("capacity = %d", g.Capacity())
	}
	if g.CylinderOf(0) != 0 || g.CylinderOf(47) != 0 || g.CylinderOf(48) != 1 {
		t.Fatal("cylinder mapping wrong")
	}
	if g.TrackOf(0) != 0 || g.TrackOf(3) != 0 || g.TrackOf(4) != 1 || g.TrackOf(47) != 11 {
		t.Fatal("track mapping wrong")
	}
}

func TestGeometryCylinderOfPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range page did not panic")
		}
	}()
	testGeom().CylinderOf(4800)
}

func TestGeometryValidate(t *testing.T) {
	if err := testGeom().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Geometry{PagesPerTrack: 0, TracksPerCyl: 1, Cylinders: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("degenerate geometry validated")
	}
}

func TestSeekTime(t *testing.T) {
	p := testParams()
	if p.SeekTime(0) != 0 {
		t.Fatal("zero-distance seek not free")
	}
	if p.SeekTime(10) != sim.Ms(11) {
		t.Fatalf("seek(10) = %v", p.SeekTime(10))
	}
	if p.SeekTime(-10) != p.SeekTime(10) {
		t.Fatal("seek not symmetric")
	}
}

func TestConventionalSinglePageAccess(t *testing.T) {
	e := sim.New()
	d := NewConventional(e, "d0", testGeom(), testParams())
	var doneAt sim.Time
	// Head starts at cylinder 0; page 480 is cylinder 10.
	d.Submit(&Request{Pages: []int{480}, Done: func() { doneAt = e.Now() }})
	e.Run()
	// seek 10+10*0.1=11ms, latency 8ms, transfer 3ms = 22ms.
	want := sim.Ms(22)
	if doneAt != want {
		t.Fatalf("access took %v, want %v", doneAt, want)
	}
	if d.Accesses() != 1 || d.PagesMoved() != 1 {
		t.Fatalf("accesses=%d pages=%d", d.Accesses(), d.PagesMoved())
	}
}

func TestConventionalSameCylinderSkipsSeek(t *testing.T) {
	e := sim.New()
	d := NewConventional(e, "d0", testGeom(), testParams())
	var first, second, third sim.Time
	d.Submit(&Request{Pages: []int{0}, Done: func() { first = e.Now() }})
	d.Submit(&Request{Pages: []int{1}, Done: func() { second = e.Now() }})
	d.Submit(&Request{Pages: []int{3}, Done: func() { third = e.Now() }})
	e.Run()
	// First: 0 seek + 8 latency + 3 transfer = 11ms.
	// Second: immediately-sequential page -> rotational miss: 12 + 3 = 15ms.
	// Third: same cylinder, non-sequential -> 8 + 3 = 11ms.
	if first != sim.Ms(11) || second != sim.Ms(26) || third != sim.Ms(37) {
		t.Fatalf("first=%v second=%v third=%v", first, second, third)
	}
}

func TestConventionalMultiPageOneLatency(t *testing.T) {
	e := sim.New()
	d := NewConventional(e, "d0", testGeom(), testParams())
	d.Submit(&Request{Pages: []int{0, 1, 2, 3}})
	e.Run()
	// 0 seek + 8 latency + 4*3 transfer = 20ms.
	if e.Now() != sim.Ms(20) {
		t.Fatalf("4-page access took %v", e.Now())
	}
	// Spanning a cylinder boundary adds one MinSeek.
	e2 := sim.New()
	d2 := NewConventional(e2, "d0", testGeom(), testParams())
	d2.Submit(&Request{Pages: []int{47, 48}})
	e2.Run()
	// seek to cyl 0: 0; latency 8 + 3 + minseek 10 + 3 = 24ms.
	if e2.Now() != sim.Ms(24) {
		t.Fatalf("cross-cylinder access took %v", e2.Now())
	}
}

func TestConventionalFCFS(t *testing.T) {
	e := sim.New()
	d := NewConventional(e, "d0", testGeom(), testParams())
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		d.Submit(&Request{Pages: []int{i * 48}, Done: func() { order = append(order, i) }})
	}
	e.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("order %v", order)
	}
}

func TestConventionalUtilization(t *testing.T) {
	e := sim.New()
	d := NewConventional(e, "d0", testGeom(), testParams())
	d.Submit(&Request{Pages: []int{0}})
	e.Run() // busy 11ms
	e.RunUntil(sim.Ms(22))
	u := d.Utilization()
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
}

func TestParallelMergesSameCylinder(t *testing.T) {
	e := sim.New()
	d := NewParallel(e, "p0", testGeom(), testParams())
	done := 0
	var last sim.Time
	// 8 pages spread across 8 tracks of cylinder 2, as separate requests.
	// A long request to another cylinder keeps the disk busy first so all 8
	// are queued when it dispatches them.
	d.Submit(&Request{Pages: []int{480}})
	for i := 0; i < 8; i++ {
		p := 2*48 + i*4 // track i, sector 0 of cylinder 2
		d.Submit(&Request{Pages: []int{p}, Done: func() { done++; last = e.Now() }})
	}
	e.Run()
	if done != 8 {
		t.Fatalf("done = %d", done)
	}
	// 2 accesses total: one to cyl 10, one merged access to cyl 2.
	if d.Accesses() != 2 {
		t.Fatalf("accesses = %d, want 2 (merged)", d.Accesses())
	}
	if d.PagesMoved() != 9 {
		t.Fatalf("pages moved = %d", d.PagesMoved())
	}
	// Merged access: all 8 pages on distinct tracks -> transfer = 1 page time.
	// First access: seek 11 + 8 + 3 = 22. Second: seek(8 cyl)=10.8 + 8 + 3 = 21.8.
	want := sim.Ms(22) + sim.Ms(21.8)
	if last != want {
		t.Fatalf("merged access finished at %v, want %v", last, want)
	}
}

func TestParallelDoesNotMergeReadsWithWrites(t *testing.T) {
	e := sim.New()
	d := NewParallel(e, "p0", testGeom(), testParams())
	d.Submit(&Request{Pages: []int{480}}) // busy
	d.Submit(&Request{Pages: []int{0}, Write: false})
	d.Submit(&Request{Pages: []int{1}, Write: true})
	e.Run()
	if d.Accesses() != 3 {
		t.Fatalf("accesses = %d, want 3 (no read/write merge)", d.Accesses())
	}
}

func TestParallelTransferCappedAtRevolution(t *testing.T) {
	e := sim.New()
	g := testGeom()
	p := testParams()
	d := NewParallel(e, "p0", g, p)
	// Entire cylinder 0 in one request: 48 pages over 12 tracks = 4 per track.
	pages := make([]int, 48)
	for i := range pages {
		pages[i] = i
	}
	d.Submit(&Request{Pages: pages})
	e.Run()
	// 0 seek + 8 latency + min(4*3, 16+...) = 8 + 12 = 20ms.
	if e.Now() != sim.Ms(20) {
		t.Fatalf("cylinder read took %v", e.Now())
	}
}

func TestParallelRejectsSpanningRequest(t *testing.T) {
	e := sim.New()
	d := NewParallel(e, "p0", testGeom(), testParams())
	defer func() {
		if recover() == nil {
			t.Error("spanning request did not panic")
		}
	}()
	d.Submit(&Request{Pages: []int{47, 48}})
}

func TestDeviceRejectsEmptyAndOutOfRange(t *testing.T) {
	e := sim.New()
	d := NewConventional(e, "d0", testGeom(), testParams())
	for _, pages := range [][]int{{}, {-1}, {4800}} {
		pages := pages
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("request %v did not panic", pages)
				}
			}()
			d.Submit(&Request{Pages: pages})
		}()
	}
}

func TestParallelBeatsConventionalOnSequentialProperty(t *testing.T) {
	// Property: for any batch of sequential pages within a cylinder,
	// serving them queued on a parallel disk is never slower than on a
	// conventional disk.
	f := func(nRaw uint8) bool {
		n := int(nRaw%47) + 1
		// Each device is paired with its own engine locally — no shared
		// lookup table, so property iterations are fully independent.
		run := func(e *sim.Engine, dev Device) sim.Time {
			for i := 0; i < n; i++ {
				dev.Submit(&Request{Pages: []int{i}})
			}
			e.Run()
			return e.Now()
		}
		e1 := sim.New()
		conv := NewConventional(e1, "c", testGeom(), testParams())
		e2 := sim.New()
		par := NewParallel(e2, "p", testGeom(), testParams())
		tc := run(e1, conv)
		tp := run(e2, par)
		return tp <= tc
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 50}
}
