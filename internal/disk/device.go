package disk

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Params are the timing parameters of a disk model.
type Params struct {
	MinSeek      sim.Time // arm settle / track-to-track move
	SeekPerCyl   sim.Time // incremental seek cost per cylinder of distance
	Rotation     sim.Time // one full revolution
	PageTransfer sim.Time // transfer time for one 4 KB page
}

// Default3350Params approximates an IBM 3350: ~10 ms minimum seek, ~50 ms
// full-stroke seek, 16.7 ms revolution (3600 rpm), ~3.4 ms to move a 4 KB
// page at ~1.2 MB/s.
func Default3350Params() Params {
	return Params{
		MinSeek:      sim.Ms(10),
		SeekPerCyl:   sim.Ms(0.165),
		Rotation:     sim.Ms(16.7),
		PageTransfer: sim.Ms(3.4),
	}
}

// SeekTime reports the time to move the arm dist cylinders (0 => no seek).
func (p Params) SeekTime(dist int) sim.Time {
	if dist == 0 {
		return 0
	}
	if dist < 0 {
		dist = -dist
	}
	return p.MinSeek + sim.Time(dist)*p.SeekPerCyl
}

// Request is one I/O submitted to a device. Pages are local page numbers on
// that device. Done (may be nil) runs when the access completes.
type Request struct {
	Pages []int
	Write bool
	Done  func()
}

// Device is the interface shared by the conventional and parallel-access
// disk models.
type Device interface {
	// Submit enqueues a request; it is served FCFS (the parallel-access
	// device may merge same-cylinder requests into one access).
	Submit(req *Request)
	// Name identifies the device in statistics output.
	Name() string
	// Geom reports the device geometry.
	Geom() Geometry
	// QueueLen reports queued requests not yet in service.
	QueueLen() int
	// InFlight reports whether an access is in progress.
	InFlight() bool
	// Utilization reports the time-weighted busy fraction.
	Utilization() float64
	// Accesses reports the number of physical accesses performed.
	Accesses() int64
	// PagesMoved reports the number of pages transferred.
	PagesMoved() int64
	// Instrument wires the device into the observability sink: its busy and
	// queue trackers become registry gauges, per-device read/write/page
	// counts become stats, and — when tracing is enabled — every access
	// emits seek/rotate/transfer phase spans on the device's track.
	Instrument(sink *obs.Sink)
}

// base holds state common to both device models.
type base struct {
	eng     *sim.Engine
	name    string
	geom    Geometry
	params  Params
	queue   []*Request
	busy    bool
	headCyl int

	busyTW     *sim.TimeWeighted
	queueTW    *sim.TimeWeighted
	accesses   int64
	pagesMoved int64
	reads      int64
	writes     int64

	sink   *obs.Sink
	hSvcMs *obs.Histogram
}

func newBase(eng *sim.Engine, name string, geom Geometry, params Params) base {
	if err := geom.Validate(); err != nil {
		panic(err)
	}
	return base{
		eng:     eng,
		name:    name,
		geom:    geom,
		params:  params,
		busyTW:  sim.NewTimeWeighted(eng),
		queueTW: sim.NewTimeWeighted(eng),
	}
}

func (b *base) Name() string         { return b.name }
func (b *base) Geom() Geometry       { return b.geom }
func (b *base) QueueLen() int        { return len(b.queue) }
func (b *base) InFlight() bool       { return b.busy }
func (b *base) Utilization() float64 { return b.busyTW.Mean() }
func (b *base) Accesses() int64      { return b.accesses }
func (b *base) PagesMoved() int64    { return b.pagesMoved }

// MeanQueue reports the time-weighted mean queue length.
func (b *base) MeanQueue() float64 { return b.queueTW.Mean() }

// Reads reports the number of read accesses performed.
func (b *base) Reads() int64 { return b.reads }

// Writes reports the number of write accesses performed.
func (b *base) Writes() int64 { return b.writes }

// Instrument implements Device.
func (b *base) Instrument(sink *obs.Sink) {
	b.sink = sink
	reg := sink.Reg
	pre := "disk." + b.name
	reg.RegisterGauge(pre+".busy", b.busyTW)
	reg.RegisterGauge(pre+".queue", b.queueTW)
	b.hSvcMs = reg.Histogram(pre + ".service.ms")
	reg.Func(pre+".utilization", b.Utilization)
	reg.Func(pre+".accesses", func() float64 { return float64(b.accesses) })
	reg.Func(pre+".pages", func() float64 { return float64(b.pagesMoved) })
	reg.Func(pre+".reads", func() float64 { return float64(b.reads) })
	reg.Func(pre+".writes", func() float64 { return float64(b.writes) })
}

// noteAccess does the per-access metrics bookkeeping shared by both device
// models and, when tracing is on, emits the access's seek / rotate /
// transfer phases as spans on the device's track. The phases start at the
// current virtual time (an access is timed from dispatch).
func (b *base) noteAccess(write bool, pages int, seek, rot, xfer sim.Time) {
	b.accesses++
	b.pagesMoved += int64(pages)
	if write {
		b.writes++
	} else {
		b.reads++
	}
	if b.sink == nil {
		return
	}
	b.hSvcMs.Observe((seek + rot + xfer).ToMs())
	if !b.sink.Tracing() {
		return
	}
	tr := b.sink.Tracer()
	start := b.eng.Now()
	op := "read"
	if write {
		op = "write"
	}
	tr.Span(b.name, op, start, start+seek+rot+xfer, map[string]any{"pages": pages})
	if seek > 0 {
		tr.Span(b.name+"/phase", "seek", start, start+seek, nil)
	}
	if rot > 0 {
		tr.Span(b.name+"/phase", "rotate", start+seek, start+seek+rot, nil)
	}
	if xfer > 0 {
		tr.Span(b.name+"/phase", "transfer", start+seek+rot, start+seek+rot+xfer, nil)
	}
}

func (b *base) checkRequest(req *Request) {
	if len(req.Pages) == 0 {
		panic(fmt.Sprintf("disk %s: empty request", b.name))
	}
	cap := b.geom.Capacity()
	for _, p := range req.Pages {
		if p < 0 || p >= cap {
			panic(fmt.Sprintf("disk %s: page %d out of range (capacity %d)", b.name, p, cap))
		}
	}
}

// Conventional is a moving-head disk that serves one request per access.
// Every access pays a distance-based seek (if the cylinder changes) plus
// rotational latency plus per-page transfer; there is no chained I/O,
// matching 1985-era drives without track buffers. Latency is Rotation/2 on
// average, except for an immediately-sequential access (the very next page
// on the same cylinder): with no read-ahead the sector has just passed
// under the head, so the disk waits most of a revolution.
type Conventional struct {
	base
	lastEnd int // page following the last one accessed, or -1
}

// NewConventional returns a conventional disk model.
func NewConventional(eng *sim.Engine, name string, geom Geometry, params Params) *Conventional {
	return &Conventional{base: newBase(eng, name, geom, params), lastEnd: -1}
}

// Submit implements Device.
func (d *Conventional) Submit(req *Request) {
	d.checkRequest(req)
	d.queue = append(d.queue, req)
	d.queueTW.Set(float64(len(d.queue)))
	if !d.busy {
		d.dispatch()
	}
}

func (d *Conventional) dispatch() {
	req := d.queue[0]
	d.queue = d.queue[1:]
	d.queueTW.Set(float64(len(d.queue)))
	seek, rot, xfer := d.servicePhases(req)
	svc := seek + rot + xfer
	d.busy = true
	d.busyTW.Set(1)
	d.noteAccess(req.Write, len(req.Pages), seek, rot, xfer)
	last := req.Pages[len(req.Pages)-1]
	d.headCyl = d.geom.CylinderOf(last)
	d.lastEnd = last + 1
	d.eng.After(svc, func() {
		d.busy = false
		d.busyTW.Set(0)
		if len(d.queue) > 0 {
			d.dispatch()
		}
		if req.Done != nil {
			req.Done()
		}
	})
}

// servicePhases computes the seek, rotational-latency, and transfer
// components of one access (service time is their sum). Multi-page
// requests are charged one latency, per-page transfer, and a minimum seek
// for every cylinder boundary crossed (folded into the transfer phase, as
// the arm moves mid-transfer). An immediately-sequential access (the next
// page after the previous request, same cylinder) pays a rotational miss:
// ~3/4 of a revolution instead of the 1/2 average.
func (d *Conventional) servicePhases(req *Request) (seek, rot, xfer sim.Time) {
	first := d.geom.CylinderOf(req.Pages[0])
	rot = d.params.Rotation / 2
	if first == d.headCyl && req.Pages[0] == d.lastEnd {
		rot = 3 * d.params.Rotation / 4
	}
	seek = d.params.SeekTime(first - d.headCyl)
	cur := first
	for _, p := range req.Pages {
		c := d.geom.CylinderOf(p)
		if c != cur {
			xfer += d.params.MinSeek
			cur = c
		}
		xfer += d.params.PageTransfer
	}
	return seek, rot, xfer
}

// Parallel is a SURE/DBC-style parallel-access disk: all pages on the
// different tracks of one cylinder can be read or written in a single
// access. When an access is dispatched, every queued request for the same
// cylinder and direction (read/write) is merged into it, so sequential
// workloads are served nearly a cylinder at a time.
type Parallel struct {
	base
}

// NewParallel returns a parallel-access disk model.
func NewParallel(eng *sim.Engine, name string, geom Geometry, params Params) *Parallel {
	return &Parallel{base: newBase(eng, name, geom, params)}
}

// Submit implements Device.
func (d *Parallel) Submit(req *Request) {
	d.checkRequest(req)
	cyl := d.geom.CylinderOf(req.Pages[0])
	for _, p := range req.Pages {
		if d.geom.CylinderOf(p) != cyl {
			panic(fmt.Sprintf("disk %s: parallel-access request spans cylinders", d.name))
		}
	}
	d.queue = append(d.queue, req)
	d.queueTW.Set(float64(len(d.queue)))
	if !d.busy {
		d.dispatch()
	}
}

func (d *Parallel) dispatch() {
	head := d.queue[0]
	cyl := d.geom.CylinderOf(head.Pages[0])
	// Merge every queued same-cylinder, same-direction request into this
	// access (the parallel read-out hardware serves them together).
	var batch []*Request
	rest := d.queue[:0]
	for _, r := range d.queue {
		if d.geom.CylinderOf(r.Pages[0]) == cyl && r.Write == head.Write {
			batch = append(batch, r)
		} else {
			rest = append(rest, r)
		}
	}
	d.queue = rest
	d.queueTW.Set(float64(len(d.queue)))

	perTrack := make(map[int]int)
	npages := 0
	for _, r := range batch {
		for _, p := range r.Pages {
			perTrack[d.geom.TrackOf(p)]++
			npages++
		}
	}
	maxTrack := 0
	for _, n := range perTrack {
		if n > maxTrack {
			maxTrack = n
		}
	}
	seek := d.params.SeekTime(cyl - d.headCyl)
	rot := d.params.Rotation / 2
	xfer := sim.Time(maxTrack) * d.params.PageTransfer
	if xfer > d.params.Rotation {
		// One revolution moves the whole cylinder; transfers cannot exceed it.
		xfer = d.params.Rotation
	}
	svc := seek + rot + xfer
	d.busy = true
	d.busyTW.Set(1)
	d.noteAccess(head.Write, npages, seek, rot, xfer)
	d.headCyl = cyl
	d.eng.After(svc, func() {
		d.busy = false
		d.busyTW.Set(0)
		if len(d.queue) > 0 {
			d.dispatch()
		}
		for _, r := range batch {
			if r.Done != nil {
				r.Done()
			}
		}
	})
}
