// Package runpool is the deterministic fan-out pool for the repository's
// embarrassingly-parallel batch paths: regenerating the paper's evaluation
// tables (internal/experiments) and auditing crash points
// (internal/faultinj). Each submitted job is an independent, shared-nothing
// simulation — it owns its own sim.Engine, RNG, and obs registry — so jobs
// may execute on any worker in any order, and the pool's only promise is
// that results come back in submission order. Determinism lives in the
// per-job seeded state, never in scheduling order: the same job list
// produces byte-identical results at any worker count.
//
// Like internal/engine.Guard, this package is wrapper-side concurrency: it
// sits outside simlint's D004 kernel scope on purpose. The single-threaded
// simulator kernels never import it; they are what runs *inside* a job.
package runpool

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/obs/live"
)

// Jobs resolves a -jobs flag value to a concrete worker count: values < 1
// (the "pick for me" sentinel) become GOMAXPROCS.
func Jobs(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// A PanicError is a panic captured inside a pool job. The pool contains
// panics instead of letting them kill the process so that one bad cell in a
// fanned-out table or sweep surfaces as an ordinary, attributable error.
type PanicError struct {
	Value any    // the value passed to panic
	Stack string // the panicking goroutine's stack
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}

// Run executes every task across min(Jobs(jobs), len(tasks)) workers and
// returns the results indexed exactly like tasks — submission order, not
// completion order. All tasks run to completion even when some fail; if any
// failed, the returned error is the lowest-indexed failure (so the error,
// like the results, does not depend on scheduling). A task that panics is
// contained and reported as a *PanicError wrapped the same way.
//
// jobs < 1 means GOMAXPROCS; jobs == 1 degenerates to a plain sequential
// loop on the calling goroutine, which is what the differential tests use
// to prove worker count cannot leak into results.
func Run[T any](jobs int, tasks []func() (T, error)) ([]T, error) {
	out := make([]T, len(tasks))
	errs := make([]error, len(tasks))
	workers := Jobs(jobs)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	// Runtime metrics go to the process-wide registry; they never touch the
	// task results, so they cannot leak scheduling into deterministic
	// outputs. Task latency shares one histogram; busy time is per worker so
	// /metrics shows load balance across the pool.
	reg := live.Default()
	clock := live.Wall()
	taskMS := reg.Histogram("runpool.task_ms")
	taskCount := reg.Counter("runpool.tasks")
	inflight := reg.Gauge("runpool.inflight")
	runOne := func(i int, busy *live.Counter) {
		inflight.Add(1)
		start := clock.Now()
		out[i], errs[i] = runTask(tasks[i])
		ms := taskMS.ObserveSince(clock, start)
		busy.Add(int64(ms * 1000)) // µs resolution for the int64 counter
		taskCount.Inc()
		inflight.Add(-1)
	}
	if workers <= 1 {
		busy := reg.Counter("runpool.worker0.busy_us")
		for i := range tasks {
			runOne(i, busy)
		}
		return out, firstError(errs)
	}

	// Workers claim the next unclaimed index; each index is written by
	// exactly one worker, so the slices need no locking of their own.
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		busy := reg.Counter(fmt.Sprintf("runpool.worker%d.busy_us", w))
		go func(busy *live.Counter) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				runOne(i, busy)
			}
		}(busy)
	}
	wg.Wait()
	return out, firstError(errs)
}

// Map fans an indexed job out over n items: Map(jobs, n, f) is Run over the
// task list f(0), f(1), ... f(n-1). It is the convenient form for drivers
// whose cells are naturally "the i-th configuration".
func Map[T any](jobs, n int, f func(i int) (T, error)) ([]T, error) {
	tasks := make([]func() (T, error), n)
	for i := range tasks {
		i := i
		tasks[i] = func() (T, error) { return f(i) }
	}
	return Run(jobs, tasks)
}

func runTask[T any](task func() (T, error)) (result T, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: string(debug.Stack())}
		}
	}()
	return task()
}

func firstError(errs []error) error {
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("runpool: job %d: %w", i, err)
		}
	}
	return nil
}
