package runpool

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
)

func TestJobsResolvesSentinel(t *testing.T) {
	if got := Jobs(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Jobs(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Jobs(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Jobs(-3) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Jobs(7); got != 7 {
		t.Fatalf("Jobs(7) = %d", got)
	}
}

// TestOrderedCollection is the pool's core promise: results land at their
// submission index regardless of completion order. Jobs deliberately finish
// out of order — each blocks until every later-indexed job has started, so
// at 8 workers the *last* submissions complete first — and the output must
// still read 0..n-1.
func TestOrderedCollection(t *testing.T) {
	const n = 16
	var started sync.WaitGroup
	started.Add(n)
	tasks := make([]func() (int, error), n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = func() (int, error) {
			started.Done()
			if i < n/2 {
				// Early jobs wait for the full fleet, inverting completion
				// order relative to submission order. This only terminates
				// when workers >= n, which the test guarantees below.
				started.Wait()
			}
			return i, nil
		}
	}
	out, err := Run(n, tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d; collection is not in submission order: %v", i, v, out)
		}
	}
}

// TestSameResultsAtAnyWorkerCount runs an identical task list at several
// worker counts and demands identical output — the property the experiment
// and sweep differential tests rely on.
func TestSameResultsAtAnyWorkerCount(t *testing.T) {
	mk := func() []func() (string, error) {
		tasks := make([]func() (string, error), 20)
		for i := range tasks {
			i := i
			tasks[i] = func() (string, error) { return fmt.Sprintf("job-%02d", i), nil }
		}
		return tasks
	}
	ref, err := Run(1, mk())
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{2, 3, 8, 64} {
		got, err := Run(jobs, mk())
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("jobs=%d: out[%d] = %q, want %q", jobs, i, got[i], ref[i])
			}
		}
	}
}

// TestErrorPropagation: every task still runs, and the reported error is
// the lowest-indexed failure — deterministic no matter which worker tripped
// first in wall-clock time.
func TestErrorPropagation(t *testing.T) {
	boom3 := errors.New("boom at three")
	boom7 := errors.New("boom at seven")
	var ran [10]bool
	tasks := make([]func() (int, error), 10)
	for i := range tasks {
		i := i
		tasks[i] = func() (int, error) {
			ran[i] = true
			switch i {
			case 3:
				return 0, boom3
			case 7:
				return 0, boom7
			}
			return i * i, nil
		}
	}
	out, err := Run(4, tasks)
	if !errors.Is(err, boom3) {
		t.Fatalf("err = %v, want the lowest-indexed failure (%v)", err, boom3)
	}
	if !strings.Contains(err.Error(), "job 3") {
		t.Fatalf("error does not name the failing job: %v", err)
	}
	for i, r := range ran {
		if !r {
			t.Errorf("task %d was skipped after an earlier failure", i)
		}
	}
	if out[9] != 81 {
		t.Errorf("successful results discarded on failure: out[9] = %d", out[9])
	}
}

// TestPanicContainment: a panicking job must not kill the process; it comes
// back as a *PanicError carrying the panic value and stack.
func TestPanicContainment(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		tasks := []func() (int, error){
			func() (int, error) { return 1, nil },
			func() (int, error) { panic("cell exploded") },
			func() (int, error) { return 3, nil },
		}
		_, err := Run(jobs, tasks)
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("jobs=%d: err = %v, want a *PanicError", jobs, err)
		}
		if pe.Value != "cell exploded" {
			t.Fatalf("jobs=%d: panic value = %v", jobs, pe.Value)
		}
		if !strings.Contains(pe.Stack, "runpool") {
			t.Fatalf("jobs=%d: panic stack not captured:\n%s", jobs, pe.Stack)
		}
		if !strings.Contains(err.Error(), "job 1") {
			t.Fatalf("jobs=%d: error does not name the panicking job: %v", jobs, err)
		}
	}
}

func TestEmptyAndSingle(t *testing.T) {
	out, err := Run[int](8, nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty task list: out=%v err=%v", out, err)
	}
	one, err := Run(8, []func() (int, error){func() (int, error) { return 42, nil }})
	if err != nil || len(one) != 1 || one[0] != 42 {
		t.Fatalf("single task: out=%v err=%v", one, err)
	}
}

func TestMap(t *testing.T) {
	out, err := Map(3, 5, func(i int) (int, error) { return i * 10, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*10 {
			t.Fatalf("Map out[%d] = %d", i, v)
		}
	}
}
