package faultinj

import (
	"bytes"
	"testing"
)

// TestSweepJobsEquivalence is the differential acceptance test for the
// parallel crash sweep: a full report — engine sweeps, machine sweeps with
// their byte-compared obs snapshots, and the rendered document — must be
// byte-identical at jobs=1 (a plain sequential loop) and jobs=8. Crash
// points fan out across workers, but every point owns its own engine and
// stores and outcomes are assembled in point order, so worker count can
// only change wall-clock time.
func TestSweepJobsEquivalence(t *testing.T) {
	render := func(jobs int) []byte {
		t.Helper()
		rep, err := Sweep(Targets(), Options{Seed: 42, Every: 7, Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		ms, err := SweepMachines(MachineOptions{Points: 3, NumTxns: 4, Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		rep.Machines = ms
		var buf bytes.Buffer
		if err := rep.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq, par := render(1), render(8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("jobs=1 and jobs=8 reports differ:\n--- jobs=1\n%s\n--- jobs=8\n%s", seq, par)
	}
}

// TestSweepTargetParallelFailureOrder pins that audit failures, if any ever
// appear, would surface in deterministic point order: the fan-out assembles
// outcomes by crash-point index, not completion order. It exercises the
// assembly path at a worker count above the point count.
func TestSweepTargetParallelFailureOrder(t *testing.T) {
	tg := Targets()[0] // wal-1stream
	a, err := SweepTarget(tg, Options{Seed: 42, Every: 11, Jobs: 16})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SweepTarget(tg, Options{Seed: 42, Every: 11, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Points != b.Points || a.Recrashes != b.Recrashes || a.Commits != b.Commits ||
		a.DoubtApplied != b.DoubtApplied || a.DoubtReverted != b.DoubtReverted {
		t.Fatalf("parallel and sequential target reports diverged: %+v vs %+v", a, b)
	}
	if len(a.Failures) != len(b.Failures) {
		t.Fatalf("failure counts diverged: %v vs %v", a.Failures, b.Failures)
	}
	for i := range a.Failures {
		if a.Failures[i] != b.Failures[i] {
			t.Fatalf("failure order diverged at %d: %q vs %q", i, a.Failures[i], b.Failures[i])
		}
	}
}
