package faultinj

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/obs/live"
	"repro/internal/pagestore"
	"repro/internal/runpool"
	"repro/internal/shadoweng"
	"repro/internal/wal"
)

// A Target is one recovery architecture under test: a builder for a fresh
// engine plus every stable store it writes (the WAL engine has two — data
// and log — and crash points are enumerated across their combined
// operation sequence).
type Target struct {
	Name  string
	Build func() (*engine.Engine, []*pagestore.Store, error)
	// Clean, when non-nil, releases whatever Build allocated outside the
	// process (file-backed targets close their stores and remove their
	// per-build directories). It runs after every audited point and after
	// the probe run; in-memory targets leave it nil.
	Clean func(stores []*pagestore.Store)
}

func (tg Target) clean(stores []*pagestore.Store) {
	if tg.Clean != nil {
		tg.Clean(stores)
	}
}

// Targets returns every recovery architecture the sweep knows, mirroring
// the paper's comparison: WAL with one and three parallel log streams,
// shadow paging (canonical, both overwrite variants, version selection),
// and differential files.
func Targets() []Target {
	return []Target{
		{Name: "wal-1stream", Build: func() (*engine.Engine, []*pagestore.Store, error) {
			store := pagestore.New(4096)
			e, m := engine.NewWALOn(store, wal.Config{PoolPages: 4})
			return e, []*pagestore.Store{store, m.LogStore()}, nil
		}},
		{Name: "wal-3streams", Build: func() (*engine.Engine, []*pagestore.Store, error) {
			store := pagestore.New(4096)
			e, m := engine.NewWALOn(store, wal.Config{Streams: 3, Selection: wal.PageMod, PoolPages: 4})
			return e, []*pagestore.Store{store, m.LogStore()}, nil
		}},
		{Name: "shadow", Build: func() (*engine.Engine, []*pagestore.Store, error) {
			store := pagestore.New(4096)
			e, err := engine.NewShadowOn(store)
			return e, []*pagestore.Store{store}, err
		}},
		{Name: "ow-noundo", Build: func() (*engine.Engine, []*pagestore.Store, error) {
			store := pagestore.New(4096)
			return engine.NewOverwriteOn(store, shadoweng.NoUndo), []*pagestore.Store{store}, nil
		}},
		{Name: "ow-noredo", Build: func() (*engine.Engine, []*pagestore.Store, error) {
			store := pagestore.New(4096)
			return engine.NewOverwriteOn(store, shadoweng.NoRedo), []*pagestore.Store{store}, nil
		}},
		{Name: "verselect", Build: func() (*engine.Engine, []*pagestore.Store, error) {
			store := pagestore.New(4096)
			e, err := engine.NewVersionSelectOn(store)
			return e, []*pagestore.Store{store}, err
		}},
		{Name: "difffile", Build: func() (*engine.Engine, []*pagestore.Store, error) {
			store := pagestore.New(4096)
			return engine.NewDiffOn(store), []*pagestore.Store{store}, nil
		}},
	}
}

// TargetsByName filters Targets to the comma-separated names in sel; empty
// or "all" selects everything.
func TargetsByName(sel string) ([]Target, error) {
	return selectTargets(Targets(), sel)
}

func selectTargets(all []Target, sel string) ([]Target, error) {
	if sel == "" || sel == "all" {
		return all, nil
	}
	byName := make(map[string]Target, len(all))
	known := make([]string, 0, len(all))
	for _, tg := range all {
		byName[tg.Name] = tg
		known = append(known, tg.Name)
	}
	var out []Target
	for _, name := range strings.Split(sel, ",") {
		name = strings.TrimSpace(name)
		tg, ok := byName[name]
		if !ok {
			sort.Strings(known)
			return nil, fmt.Errorf("faultinj: unknown engine %q (have %s)",
				name, strings.Join(known, ", "))
		}
		out = append(out, tg)
	}
	return out, nil
}

// Options configures an engine sweep.
type Options struct {
	Seed    int64 // workload seed (same seed → byte-identical report)
	Every   int64 // stride between crash points; 1 = every mutation
	Pages   int   // database pages in the scripted workload (default 6)
	MaxTxns int   // transactions per scripted run (default 25)
	// RecrashCycle varies where recovery itself is re-crashed: crash point k
	// re-crashes recovery at stable-storage operation 1+(k-1)%RecrashCycle
	// (default 5).
	RecrashCycle int64
	// Jobs is the worker count for fanning crash points out through
	// internal/runpool (< 1 = GOMAXPROCS). Every point builds its own engine
	// and stores, and outcomes are assembled in point order, so any value
	// renders a byte-identical report.
	Jobs int
	// Progress, when non-nil, receives live completion counts (one unit per
	// audited crash point). It feeds the -live /progress endpoint and the
	// stderr ticker; it never touches the report, which stays
	// byte-identical with or without it.
	Progress *live.Progress
}

func (o Options) withDefaults() Options {
	if o.Every <= 0 {
		o.Every = 1
	}
	if o.Pages <= 0 {
		o.Pages = 6
	}
	if o.MaxTxns <= 0 {
		o.MaxTxns = 25
	}
	if o.RecrashCycle <= 0 {
		o.RecrashCycle = 5
	}
	return o
}

// TargetReport is the audited result of sweeping one recovery architecture.
type TargetReport struct {
	Target        string
	Mutations     int64    // stable mutations in the crash-free probe run
	Points        int      // crash points injected and audited
	Recrashes     int      // recoveries that were crashed mid-flight and rerun
	DoubtApplied  int      // in-doubt commits recovery surfaced as applied
	DoubtReverted int      // in-doubt commits recovery rolled back
	Commits       int64    // committed transactions across all point runs
	Failures      []string // audit failures; empty means every audit passed
}

// SweepTarget enumerates every opt.Every-th stable mutation of the scripted
// workload as a crash point and, for each one, runs crash → recover →
// audit, re-crashing recovery itself partway through. The returned error
// reports harness problems (a target that cannot even be built); audit
// verdicts live in the report.
func SweepTarget(tg Target, opt Options) (*TargetReport, error) {
	opt = opt.withDefaults()
	rep := &TargetReport{Target: tg.Name}

	// Probe run: count the workload's stable mutations without crashing.
	e, stores, err := tg.Build()
	if err != nil {
		return nil, fmt.Errorf("faultinj: build %s: %w", tg.Name, err)
	}
	defer tg.clean(stores)
	model, err := LoadPages(e, opt.Pages)
	if err != nil {
		return nil, fmt.Errorf("faultinj: load %s: %w", tg.Name, err)
	}
	ctr := &Counter{}
	hook := ctr.Hook()
	for _, s := range stores {
		s.SetFaultHook(hook)
	}
	probe := RunScript(e, model, opt.Seed, opt.Pages, opt.MaxTxns)
	if probe.Crashed {
		return nil, fmt.Errorf("faultinj: %s: probe run crashed without injection", tg.Name)
	}
	rep.Mutations = ctr.Mutations()

	// Every crash point builds its own engine and stores, so points are
	// shared-nothing jobs; they fan out across workers and their outcomes
	// are folded into the report in point order, keeping it byte-identical
	// at any worker count.
	var points []int64
	for k := int64(1); k <= rep.Mutations; k += opt.Every {
		points = append(points, k)
	}
	opt.Progress.AddTotal(int64(len(points)))
	outcomes, err := runpool.Map(opt.Jobs, len(points), func(i int) (*pointOutcome, error) {
		po, err := sweepPoint(tg, opt, points[i], nil)
		opt.Progress.Add(1)
		return po, err
	})
	if err != nil {
		return nil, err
	}
	for _, po := range outcomes {
		rep.Points++
		rep.Commits += po.commits
		if po.recrashed {
			rep.Recrashes++
		}
		if po.doubtApplied {
			rep.DoubtApplied++
		}
		if po.doubtReverted {
			rep.DoubtReverted++
		}
		rep.Failures = append(rep.Failures, po.failures...)
	}
	return rep, nil
}

// pointOutcome is what one audited crash point contributes to its target's
// report; sweepPoint returns it instead of mutating shared state so points
// can run on pool workers.
type pointOutcome struct {
	commits       int64
	recrashed     bool
	doubtApplied  bool
	doubtReverted bool
	failures      []string
}

func (po *pointOutcome) fail(target string, k int64, format string, args ...any) {
	po.failures = append(po.failures,
		fmt.Sprintf("%s@%d: %s", target, k, fmt.Sprintf(format, args...)))
}

// sweepPoint audits one crash point: cut power at the k-th stable mutation,
// crash recovery itself at a k-derived operation, finish recovery, then
// audit state, idempotence, and liveness. A non-nil journal is attached to
// the engine's kernel before the run, so it records the checkpoint and
// recovery decisions of exactly this point.
func sweepPoint(tg Target, opt Options, k int64, journal *obs.Journal) (*pointOutcome, error) {
	po := &pointOutcome{}
	e, stores, err := tg.Build()
	if err != nil {
		return nil, fmt.Errorf("faultinj: build %s: %w", tg.Name, err)
	}
	defer tg.clean(stores)
	if journal != nil {
		if err := e.Guard().SetJournal(journal); err != nil {
			return nil, fmt.Errorf("faultinj: %s does not journal: %w", tg.Name, err)
		}
	}
	model, err := LoadPages(e, opt.Pages)
	if err != nil {
		return nil, fmt.Errorf("faultinj: load %s: %w", tg.Name, err)
	}
	hook := CrashAtMutation(k)
	for _, s := range stores {
		s.SetFaultHook(hook)
	}
	out := RunScript(e, model, opt.Seed, opt.Pages, opt.MaxTxns)
	po.commits = int64(out.Commits)
	e.Crash()

	// Re-crash recovery partway through: the restarted restart must still
	// converge. CrashAtOp fires exactly once, so the retry below runs over
	// the same armed stores without tripping again.
	j := 1 + (k-1)%opt.RecrashCycle
	rhook := CrashAtOp(j)
	for _, s := range stores {
		s.SetFaultHook(rhook)
	}
	if err := e.Recover(); err != nil {
		po.recrashed = true
		e.Crash()
		if err := e.Recover(); err != nil {
			po.fail(tg.Name, k, "recovery after mid-recovery crash (op %d): %v", j, err)
			return po, nil
		}
	}
	for _, s := range stores {
		s.SetFaultHook(nil)
	}

	fails, applied := AuditState(e, out, opt.Pages)
	po.failures = append(po.failures, prefix(tg.Name, k, fails)...)
	if out.Doubt != nil {
		if applied {
			po.doubtApplied = true
		} else {
			po.doubtReverted = true
		}
	}
	po.failures = append(po.failures, prefix(tg.Name, k, AuditIdempotence(e, opt.Pages))...)
	po.failures = append(po.failures, prefix(tg.Name, k, AuditLiveness(e, opt.Pages))...)
	return po, nil
}

// JournalPoint replays one crash point of tg with a recovery journal
// attached and returns the journal plus the point's audited outcome. The
// replay is the exact computation the sweep runs at point k — same build,
// same script, same re-crash schedule — so the journal is the
// deterministic record of what recovery decided there: same seed and k,
// byte-identical JSONL.
func JournalPoint(tg Target, opt Options, k int64) (*obs.Journal, *TargetReport, error) {
	opt = opt.withDefaults()
	j := obs.NewJournal()
	po, err := sweepPoint(tg, opt, k, j)
	if err != nil {
		return nil, nil, err
	}
	rep := &TargetReport{Target: tg.Name, Points: 1, Commits: po.commits, Failures: po.failures}
	if po.recrashed {
		rep.Recrashes = 1
	}
	if po.doubtApplied {
		rep.DoubtApplied = 1
	}
	if po.doubtReverted {
		rep.DoubtReverted = 1
	}
	return j, rep, nil
}

func prefix(target string, k int64, fails []string) []string {
	out := make([]string, 0, len(fails))
	for _, f := range fails {
		out = append(out, fmt.Sprintf("%s@%d: %s", target, k, f))
	}
	return out
}

// Sweep runs SweepTarget over targets and bundles the reports. Targets run
// one after another — the per-target crash points already saturate
// opt.Jobs workers — and the report lists them in the given order.
func Sweep(targets []Target, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{Seed: opt.Seed, Every: opt.Every, Pages: opt.Pages, MaxTxns: opt.MaxTxns}
	for _, tg := range targets {
		tr, err := SweepTarget(tg, opt)
		if err != nil {
			return nil, err
		}
		rep.Engines = append(rep.Engines, tr)
	}
	return rep, nil
}
