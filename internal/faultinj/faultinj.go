// Package faultinj is the deterministic fault-injection and recovery-audit
// harness for the functional recovery engines and the performance
// simulator. Where internal/engine's crash tests cut power at a handful of
// hand-picked write budgets, this package enumerates crash points
// systematically:
//
//   - every mutation (page write or delete) a recovery engine makes to
//     stable storage during a scripted workload, including the WAL engine's
//     separate log store;
//   - every stable-storage operation (reads included) during restart
//     recovery itself, so recovery is re-crashed mid-flight and rerun;
//   - virtual-time instants inside internal/machine performance runs.
//
// For each crash point the harness runs crash → recover → audit. The audits
// are the paper's own claims, machine-checked: atomicity (no partial
// transaction visible after restart; an in-doubt commit is applied all or
// nothing), durability (every committed write set present, page checksums
// intact), idempotence (recovery crashed partway and rerun, then rerun
// again on its own output, converges to the same state), and liveness (the
// recovered engine accepts new transactions).
//
// Everything is seeded and deterministic: two sweeps with the same options
// produce byte-identical reports. See docs/FAULTS.md and cmd/crashsweep.
package faultinj

import "repro/internal/pagestore"

// A Counter observes stable-storage traffic without ever cutting power;
// sweeps install it for the probe run that discovers how many crash points
// a workload has. One Counter may be shared by several stores (the WAL
// engine's data and log stores), in which case it counts their combined,
// deterministic operation sequence.
type Counter struct {
	ops  int64
	muts int64
}

// Hook returns the counting fault hook; it never fires.
func (c *Counter) Hook() pagestore.FaultHook {
	return func(op pagestore.Op, _ pagestore.PageID, _ int64) bool {
		c.ops++
		if op != pagestore.OpRead {
			c.muts++
		}
		return false
	}
}

// Ops reports the operations observed (reads, writes, and deletes).
func (c *Counter) Ops() int64 { return c.ops }

// Mutations reports the mutations observed (writes and deletes).
func (c *Counter) Mutations() int64 { return c.muts }

// CrashAtMutation returns a hook that cuts power at exactly the n-th
// mutation (write or delete) it observes, counting across every store it
// is installed on. It fires once; afterwards it stays quiet, so recovery
// can proceed over the same store without re-tripping.
func CrashAtMutation(n int64) pagestore.FaultHook {
	var seen int64
	return func(op pagestore.Op, _ pagestore.PageID, _ int64) bool {
		if op == pagestore.OpRead {
			return false
		}
		seen++
		return seen == n
	}
}

// CrashAtOp returns a hook that cuts power at exactly the n-th operation of
// any kind — reads included, because restart recovery on the shadow and
// differential engines is read-mostly and would otherwise present no crash
// points. Like CrashAtMutation it fires exactly once.
func CrashAtOp(n int64) pagestore.FaultHook {
	var seen int64
	return func(pagestore.Op, pagestore.PageID, int64) bool {
		seen++
		return seen == n
	}
}
