package faultinj

import (
	"bytes"
	"fmt"

	"repro/internal/machine"
	"repro/internal/obs/live"
	"repro/internal/recovery/difffile"
	"repro/internal/recovery/logging"
	"repro/internal/recovery/shadow"
	"repro/internal/runpool"
	"repro/internal/sim"
)

// MachineOptions configures the virtual-time crash-point sweep over the
// performance simulator.
type MachineOptions struct {
	Seed    int64 // machine seed (0 keeps the paper's default)
	Points  int   // crash instants per model (default 8)
	NumTxns int   // transactions per run (default 10, kept small for CI)
	// Jobs is the worker count for fanning models and crash instants out
	// through internal/runpool (< 1 = GOMAXPROCS). Every instant runs its
	// own machines and results are assembled in instant order, so any value
	// renders a byte-identical report.
	Jobs int
	// Progress, when non-nil, receives live completion counts (one unit per
	// audited crash instant). It never touches the report.
	Progress *live.Progress
}

func (o MachineOptions) withDefaults() MachineOptions {
	if o.Points <= 0 {
		o.Points = 8
	}
	if o.NumTxns <= 0 {
		o.NumTxns = 10
	}
	return o
}

// ModelReport is the audited result of crash-pointing one recovery model's
// performance-simulator run.
type ModelReport struct {
	Model    string
	Points   int     // virtual-time crash instants audited
	Final    int     // committed transactions in the full run
	EndMs    float64 // full-run virtual completion time
	Failures []string
}

// machineModels mirrors the paper's model lineup; each entry builds a fresh
// recovery model because models carry per-run state.
func machineModels() []struct {
	name string
	mk   func() machine.Model
} {
	return []struct {
		name string
		mk   func() machine.Model
	}{
		{"bare", func() machine.Model { return nil }},
		{"logging", func() machine.Model { return logging.New(logging.Config{}) }},
		{"shadow-pt", func() machine.Model { return shadow.NewPageTable(shadow.Config{}) }},
		{"ow-noundo", func() machine.Model { return shadow.NewOverwrite(shadow.Config{}, true) }},
		{"ow-noredo", func() machine.Model { return shadow.NewOverwrite(shadow.Config{}, false) }},
		{"verselect", func() machine.Model { return shadow.NewVersion(shadow.Config{}) }},
		{"difffile", func() machine.Model { return difffile.New(difffile.Config{}) }},
	}
}

func machineConfig(opt MachineOptions) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.NumTxns = opt.NumTxns
	cfg.Workload.MaxPages = 60
	if opt.Seed != 0 {
		cfg.Seed = opt.Seed
	}
	return cfg
}

// snapshotText renders a machine's full metrics registry to deterministic
// text; two machines in identical states must render identical bytes.
func snapshotText(m *machine.Machine) (string, error) {
	var buf bytes.Buffer
	if err := m.Metrics().Snapshot().WriteText(&buf); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// SweepMachineModel crash-points one model's run: it probes the full run
// for its completion time, then for evenly spaced virtual-time instants t
// verifies that (a) two independent machines cut at t agree on every
// observable — progress counters and the complete metrics registry, byte
// for byte (the performance simulator's analogue of recovery determinism),
// (b) committed progress is monotone in t, and (c) a machine resumed after
// the cut finishes with exactly the probe's final results (a "crash" of the
// observer loses no simulated work).
func SweepMachineModel(name string, mk func() machine.Model, opt MachineOptions) (*ModelReport, error) {
	opt = opt.withDefaults()
	cfg := machineConfig(opt)
	rep := &ModelReport{Model: name}

	probe, err := machine.New(cfg, mk())
	if err != nil {
		return nil, fmt.Errorf("faultinj: machine %s: %w", name, err)
	}
	full, err := probe.Run()
	if err != nil {
		return nil, fmt.Errorf("faultinj: machine %s: probe run: %w", name, err)
	}
	rep.Final = full.Committed
	rep.EndMs = full.SimTime.ToMs()

	// Each instant audits its own pair of machines plus a resumed run —
	// shared-nothing jobs that fan out across workers. The monotonicity
	// audit needs consecutive instants, so it runs as an in-order scan over
	// the collected outcomes afterwards; the report stays byte-identical at
	// any worker count.
	type instantOutcome struct {
		committed int  // committed transactions at the cut
		agreed    bool // twin runs agreed (monotonicity uses only agreed cuts)
		failures  []string
	}
	opt.Progress.AddTotal(int64(opt.Points))
	outcomes, err := runpool.Map(opt.Jobs, opt.Points, func(i int) (*instantOutcome, error) {
		defer opt.Progress.Add(1)
		t := sim.Time(int64(full.SimTime) * int64(i+1) / int64(opt.Points))
		po := &instantOutcome{}
		m1, err := machine.New(cfg, mk())
		if err != nil {
			return nil, fmt.Errorf("faultinj: machine %s: %w", name, err)
		}
		m2, err := machine.New(cfg, mk())
		if err != nil {
			return nil, fmt.Errorf("faultinj: machine %s: %w", name, err)
		}
		p1 := m1.RunUntil(t)
		p2 := m2.RunUntil(t)
		if p1 != p2 {
			po.failures = append(po.failures, fmt.Sprintf(
				"%s@%s: twin runs diverged: %+v vs %+v", name, t, p1, p2))
			return po, nil
		}
		po.agreed = true
		po.committed = p1.Committed
		s1, err := snapshotText(m1)
		if err != nil {
			return nil, err
		}
		s2, err := snapshotText(m2)
		if err != nil {
			return nil, err
		}
		if s1 != s2 {
			po.failures = append(po.failures, fmt.Sprintf(
				"%s@%s: twin metrics snapshots differ", name, t))
		}
		res, err := m1.Run()
		if err != nil {
			po.failures = append(po.failures, fmt.Sprintf(
				"%s@%s: resume after cut: %v", name, t, err))
			return po, nil
		}
		if res.Committed != full.Committed || res.Aborted != full.Aborted ||
			res.SimTime != full.SimTime || res.PagesProcessed != full.PagesProcessed {
			po.failures = append(po.failures, fmt.Sprintf(
				"%s@%s: resumed run finished at {c=%d a=%d t=%s pages=%d}, probe {c=%d a=%d t=%s pages=%d}",
				name, t, res.Committed, res.Aborted, res.SimTime, res.PagesProcessed,
				full.Committed, full.Aborted, full.SimTime, full.PagesProcessed))
		}
		return po, nil
	})
	if err != nil {
		return nil, err
	}
	prevCommitted := 0
	for i, po := range outcomes {
		rep.Points++
		rep.Failures = append(rep.Failures, po.failures...)
		if !po.agreed {
			continue
		}
		if po.committed < prevCommitted {
			t := sim.Time(int64(full.SimTime) * int64(i+1) / int64(opt.Points))
			rep.Failures = append(rep.Failures, fmt.Sprintf(
				"%s@%s: committed count went backwards (%d after %d)",
				name, t, po.committed, prevCommitted))
		}
		prevCommitted = po.committed
	}
	return rep, nil
}

// SweepMachines runs the virtual-time sweep for every recovery model,
// fanning the models out across pool workers; reports come back in the
// fixed model-lineup order.
func SweepMachines(opt MachineOptions) ([]*ModelReport, error) {
	models := machineModels()
	return runpool.Map(opt.Jobs, len(models), func(i int) (*ModelReport, error) {
		return SweepMachineModel(models[i].name, models[i].mk, opt)
	})
}
