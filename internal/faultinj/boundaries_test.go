package faultinj

import (
	"sync"
	"testing"

	"repro/internal/pagestore"
)

// opTrace records every stable-storage operation of a scripted run.
type opTrace struct {
	mu  sync.Mutex
	ops []pagestore.Op
	ids []pagestore.PageID
}

func (tr *opTrace) hook() pagestore.FaultHook {
	return func(op pagestore.Op, id pagestore.PageID, seq int64) bool {
		tr.mu.Lock()
		tr.ops = append(tr.ops, op)
		tr.ids = append(tr.ids, id)
		tr.mu.Unlock()
		return false
	}
}

// TestSweepEnumeratesExistsAndDeleteBoundaries pins the two operation
// classes the old pagestore hid from the sweep: existence probes (Exists
// now fires the hook as an OpRead) and deletes (now budget-charged
// mutations). Both must appear in the scripted workload's operation
// stream, and cutting power exactly at each kind must recover cleanly.
func TestSweepEnumeratesExistsAndDeleteBoundaries(t *testing.T) {
	opt := Options{Seed: 1985}.withDefaults()
	var tg Target
	for _, cand := range Targets() {
		if cand.Name == "ow-noredo" {
			tg = cand
		}
	}
	e, stores, err := tg.Build()
	if err != nil {
		t.Fatal(err)
	}
	model, err := LoadPages(e, opt.Pages)
	if err != nil {
		t.Fatal(err)
	}
	tr := &opTrace{}
	hook := tr.hook()
	for _, s := range stores {
		s.SetFaultHook(hook)
	}
	if out := RunScript(e, model, opt.Seed, opt.Pages, opt.MaxTxns); out.Crashed {
		t.Fatal("probe crashed")
	}

	// Find (a) an existence probe — an OpRead on an intention-list page
	// never written up to that point can only come from Exists (Read on
	// an absent page is never issued) — and (b) the first delete,
	// counting its 1-based mutation index as CrashAtMutation does.
	written := map[pagestore.PageID]bool{}
	existsAt := -1 // 1-based op index of the probe
	deleteMut := int64(-1)
	muts := int64(0)
	for i, op := range tr.ops {
		if op != pagestore.OpRead {
			muts++
		}
		switch op {
		case pagestore.OpWrite:
			written[tr.ids[i]] = true
		case pagestore.OpRead:
			if tr.ids[i] < -1000000 && !written[tr.ids[i]] && existsAt < 0 {
				existsAt = i + 1
			}
		case pagestore.OpDelete:
			if deleteMut < 0 {
				deleteMut = muts
			}
		}
	}
	if existsAt < 0 {
		t.Fatal("no existence probe in the ow-noredo op stream — Exists is invisible to the sweep again")
	}
	if deleteMut < 0 {
		t.Fatal("no delete in the ow-noredo mutation stream — intent cleanup is invisible to the sweep again")
	}

	// Cut power exactly at the delete (NoRedo's commit-time intent
	// cleanup): the commit is in doubt, recovery must resolve it
	// atomically and every audit must pass.
	po, err := sweepPoint(tg, opt, deleteMut, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(po.failures) != 0 {
		t.Fatalf("crash at delete boundary (mutation %d): %v", deleteMut, po.failures)
	}
	if !po.doubtApplied && !po.doubtReverted {
		t.Fatalf("crash at mutation %d left no in-doubt commit; expected the NoRedo intent delete", deleteMut)
	}

	// Cut power exactly at the existence probe: CrashAtOp counts reads
	// too, so the sweep's re-crash schedule can land here; recovery must
	// survive it.
	e2, stores2, err := tg.Build()
	if err != nil {
		t.Fatal(err)
	}
	model2, err := LoadPages(e2, opt.Pages)
	if err != nil {
		t.Fatal(err)
	}
	chook := CrashAtOp(int64(existsAt))
	for _, s := range stores2 {
		s.SetFaultHook(chook)
	}
	out := RunScript(e2, model2, opt.Seed, opt.Pages, opt.MaxTxns)
	if !out.Crashed {
		t.Fatalf("CrashAtOp(%d) never fired at the existence probe", existsAt)
	}
	e2.Crash()
	for _, s := range stores2 {
		s.SetFaultHook(nil)
	}
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	fails, _ := AuditState(e2, out, opt.Pages)
	fails = append(fails, AuditIdempotence(e2, opt.Pages)...)
	fails = append(fails, AuditLiveness(e2, opt.Pages)...)
	if len(fails) != 0 {
		t.Fatalf("crash at existence probe (op %d): %v", existsAt, fails)
	}
}

// TestSweepMutationCountsPinned pins the default workload's per-target
// mutation counts. These ARE the sweep's crash-point counts at -every 1:
// 626 engine points, which with the 56 performance-simulator points make
// the full 682-point sweep. A drift here means the stable-storage
// contract changed shape (an operation appeared, vanished, or switched
// class) — that must be a conscious decision, not an accident.
func TestSweepMutationCountsPinned(t *testing.T) {
	want := map[string]int64{
		"wal-1stream":  54,
		"wal-3streams": 82,
		"shadow":       87,
		"ow-noundo":    112,
		"ow-noredo":    162,
		"verselect":    109,
		"difffile":     20,
	}
	opt := Options{Seed: 1985}.withDefaults()
	total := int64(0)
	for _, tg := range Targets() {
		e, stores, err := tg.Build()
		if err != nil {
			t.Fatal(err)
		}
		model, err := LoadPages(e, opt.Pages)
		if err != nil {
			t.Fatal(err)
		}
		ctr := &Counter{}
		hook := ctr.Hook()
		for _, s := range stores {
			s.SetFaultHook(hook)
		}
		if out := RunScript(e, model, opt.Seed, opt.Pages, opt.MaxTxns); out.Crashed {
			t.Fatalf("%s: probe crashed", tg.Name)
		}
		if got := ctr.Mutations(); got != want[tg.Name] {
			t.Errorf("%s: %d mutations, pinned %d", tg.Name, got, want[tg.Name])
		}
		total += ctr.Mutations()
	}
	if total != 626 {
		t.Errorf("total mutations = %d, pinned 626 (682-point sweep = 626 engine + 56 machine)", total)
	}
}
