package faultinj

import (
	"bytes"
	"fmt"

	"repro/internal/engine"
)

// AuditState checks the recovered engine against the script's oracle. Every
// page must hold its last committed value with an intact checksum; pages
// written by an in-doubt commit may hold either the old or the new value,
// but all of them must agree (atomic commit, never torn). It returns the
// audit failures (empty means pass) plus whether the in-doubt transaction
// was applied.
func AuditState(e *engine.Engine, o *Outcome, pages int) (fails []string, doubtApplied bool) {
	applied, reverted := 0, 0
	for p := int64(0); p < int64(pages); p++ {
		got, err := e.ReadCommitted(p)
		if err != nil {
			fails = append(fails, fmt.Sprintf("read page %d: %v", p, err))
			continue
		}
		if msg := CheckPayload(got, p); msg != "" {
			fails = append(fails, "checksum: "+msg)
			continue
		}
		if v, ok := o.Doubt[p]; ok {
			switch {
			case bytes.Equal(got, v):
				applied++
			case bytes.Equal(got, o.Model[p]):
				reverted++
			default:
				fails = append(fails, fmt.Sprintf(
					"page %d = %q, neither in-doubt %q nor committed %q", p, got, v, o.Model[p]))
			}
			continue
		}
		if want := o.Model[p]; !bytes.Equal(got, want) {
			fails = append(fails, fmt.Sprintf("durability: page %d = %q, want %q", p, got, want))
		}
	}
	if applied > 0 && reverted > 0 {
		fails = append(fails, fmt.Sprintf(
			"atomicity: in-doubt commit torn (%d pages applied, %d reverted)", applied, reverted))
	}
	return fails, applied > 0
}

// snapshotPages captures the committed value of every page, for comparing
// recovery outputs byte for byte.
func snapshotPages(e *engine.Engine, pages int) ([][]byte, error) {
	out := make([][]byte, pages)
	for p := int64(0); p < int64(pages); p++ {
		got, err := e.ReadCommitted(p)
		if err != nil {
			return nil, fmt.Errorf("page %d: %w", p, err)
		}
		out[p] = got
	}
	return out, nil
}

// AuditIdempotence crashes the already-recovered engine again, recovers it
// a second time, and requires the committed state to be unchanged: running
// recovery on recovery's own output must be a fixpoint.
func AuditIdempotence(e *engine.Engine, pages int) []string {
	before, err := snapshotPages(e, pages)
	if err != nil {
		return []string{fmt.Sprintf("idempotence: pre-snapshot: %v", err)}
	}
	e.Crash()
	if err := e.Recover(); err != nil {
		return []string{fmt.Sprintf("idempotence: second recovery failed: %v", err)}
	}
	after, err := snapshotPages(e, pages)
	if err != nil {
		return []string{fmt.Sprintf("idempotence: post-snapshot: %v", err)}
	}
	var fails []string
	for p := range before {
		if !bytes.Equal(before[p], after[p]) {
			fails = append(fails, fmt.Sprintf(
				"idempotence: page %d changed across double recovery: %q -> %q",
				p, before[p], after[p]))
		}
	}
	return fails
}

// AuditLiveness runs one fresh transaction through the recovered engine and
// reads its write back: a recovery that leaves the engine wedged fails even
// if the restored state looks right.
func AuditLiveness(e *engine.Engine, pages int) []string {
	p := int64(0)
	v := Payload(p, 1<<40, 0) // txn id far outside the script's range
	if err := e.Update(func(tx *engine.Txn) error { return tx.Write(p, v) }); err != nil {
		return []string{fmt.Sprintf("liveness: post-recovery update: %v", err)}
	}
	got, err := e.ReadCommitted(p)
	if err != nil || !bytes.Equal(got, v) {
		return []string{fmt.Sprintf("liveness: post-recovery read = %q, %v (want %q)", got, err, v)}
	}
	return nil
}
