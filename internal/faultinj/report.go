package faultinj

import (
	"fmt"
	"io"
)

// Report bundles one whole crash sweep: the engine crash-point sweeps plus
// the virtual-time machine sweeps. Rendering is fully deterministic — no
// wall-clock, no map iteration — so two sweeps with the same options emit
// byte-identical reports.
type Report struct {
	Seed    int64
	Every   int64
	Pages   int
	MaxTxns int

	Engines  []*TargetReport
	Files    []*FileTargetReport
	Machines []*ModelReport
}

// TotalPoints counts every audited crash point in the report.
func (r *Report) TotalPoints() int {
	n := 0
	for _, tr := range r.Engines {
		n += tr.Points
	}
	for _, fr := range r.Files {
		n += fr.Points
	}
	for _, mr := range r.Machines {
		n += mr.Points
	}
	return n
}

// TotalFailures counts every audit failure in the report.
func (r *Report) TotalFailures() int {
	n := 0
	for _, tr := range r.Engines {
		n += len(tr.Failures)
	}
	for _, fr := range r.Files {
		n += len(fr.Failures)
	}
	for _, mr := range r.Machines {
		n += len(mr.Failures)
	}
	return n
}

// Render writes the report as a deterministic plain-text document.
func (r *Report) Render(w io.Writer) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("crashsweep report (seed=%d every=%d pages=%d txns=%d)\n\n",
		r.Seed, r.Every, r.Pages, r.MaxTxns); err != nil {
		return err
	}
	if len(r.Engines) > 0 {
		if err := p("recovery-engine crash points (crash at k-th stable mutation, re-crash during recovery, audit):\n"); err != nil {
			return err
		}
		if err := p("  %-12s %9s %7s %9s %8s %8s %8s %9s\n",
			"engine", "mutations", "points", "recrashes", "applied", "reverted", "commits", "failures"); err != nil {
			return err
		}
		for _, tr := range r.Engines {
			if err := p("  %-12s %9d %7d %9d %8d %8d %8d %9d\n",
				tr.Target, tr.Mutations, tr.Points, tr.Recrashes,
				tr.DoubtApplied, tr.DoubtReverted, tr.Commits, len(tr.Failures)); err != nil {
				return err
			}
		}
		if err := p("\n"); err != nil {
			return err
		}
	}
	if len(r.Files) > 0 {
		if err := p("file-backed crash points (fault the k-th file operation: power cut, torn write at appends, lost fsync at syncs):\n"); err != nil {
			return err
		}
		if err := p("  %-12s %8s %7s %6s %9s %9s %8s %9s\n",
			"engine", "fileops", "points", "torn", "lostsyncs", "recrashes", "commits", "failures"); err != nil {
			return err
		}
		for _, fr := range r.Files {
			if err := p("  %-12s %8d %7d %6d %9d %9d %8d %9d\n",
				fr.Target, fr.FileOps, fr.Points, fr.Torn, fr.LostSyncs,
				fr.Recrashes, fr.Commits, len(fr.Failures)); err != nil {
				return err
			}
		}
		if err := p("\n"); err != nil {
			return err
		}
	}
	if len(r.Machines) > 0 {
		if err := p("performance-simulator crash points (cut at virtual time t, audit determinism/monotonicity/resume):\n"); err != nil {
			return err
		}
		if err := p("  %-12s %7s %10s %12s %9s\n",
			"model", "points", "committed", "endMs", "failures"); err != nil {
			return err
		}
		for _, mr := range r.Machines {
			if err := p("  %-12s %7d %10d %12.3f %9d\n",
				mr.Model, mr.Points, mr.Final, mr.EndMs, len(mr.Failures)); err != nil {
				return err
			}
		}
		if err := p("\n"); err != nil {
			return err
		}
	}
	for _, tr := range r.Engines {
		for _, f := range tr.Failures {
			if err := p("FAIL %s\n", f); err != nil {
				return err
			}
		}
	}
	for _, fr := range r.Files {
		for _, f := range fr.Failures {
			if err := p("FAIL %s\n", f); err != nil {
				return err
			}
		}
	}
	for _, mr := range r.Machines {
		for _, f := range mr.Failures {
			if err := p("FAIL %s\n", f); err != nil {
				return err
			}
		}
	}
	verdict := "PASS"
	if r.TotalFailures() > 0 {
		verdict = "FAIL"
	}
	return p("total: %d crash points, %d failures — %s\n",
		r.TotalPoints(), r.TotalFailures(), verdict)
}
