package faultinj

import "testing"

// TestMachineSweep crash-points one performance-simulator model and
// requires every audit — twin-run determinism (including byte-identical
// metrics registries), monotone progress, and loss-free resume — to pass.
func TestMachineSweep(t *testing.T) {
	rep, err := SweepMachineModel("logging", machineModels()[1].mk,
		MachineOptions{Points: 4, NumTxns: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures {
		t.Error(f)
	}
	if rep.Points != 4 {
		t.Fatalf("points = %d, want 4", rep.Points)
	}
	if rep.Final == 0 {
		t.Fatal("probe run committed nothing")
	}
}

// TestMachineSweepAllModels runs a minimal sweep over every recovery model
// so a determinism regression in any one of them fails here, not only in
// the slower CI crashsweep.
func TestMachineSweepAllModels(t *testing.T) {
	reps, err := SweepMachines(MachineOptions{Points: 2, NumTxns: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(machineModels()) {
		t.Fatalf("models swept = %d, want %d", len(reps), len(machineModels()))
	}
	for _, rep := range reps {
		for _, f := range rep.Failures {
			t.Errorf("%s: %s", rep.Model, f)
		}
	}
}
