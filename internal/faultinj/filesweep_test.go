package faultinj

import (
	"bytes"
	"os"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/pagestore"
)

// TestSweepFileTargetQuick runs a strided file-operation sweep over one
// architecture on real files and requires every audit to pass, with all
// three fault kinds represented.
func TestSweepFileTargetQuick(t *testing.T) {
	tg := FileTargets(t.TempDir())[2] // shadow
	rep, err := SweepFileTarget(tg, Options{Seed: 1985, Every: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FileOps == 0 || rep.Points == 0 {
		t.Fatalf("empty sweep: %+v", rep)
	}
	if rep.Torn == 0 || rep.LostSyncs == 0 {
		t.Fatalf("fault kinds missing: torn=%d lostsyncs=%d (stride must hit appends AND syncs)",
			rep.Torn, rep.LostSyncs)
	}
	if len(rep.Failures) != 0 {
		t.Fatalf("file sweep failures: %v", rep.Failures)
	}
}

// TestSweepFilesWALTarget covers the two-store (data + log) layout: the
// WAL engine's log chunks live on their own file-backed store and the
// fault point countdown spans both stores.
func TestSweepFilesWALTarget(t *testing.T) {
	tg := FileTargets(t.TempDir())[0] // wal-1stream
	rep, err := SweepFileTarget(tg, Options{Seed: 1985, Every: 9, MaxTxns: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Points == 0 {
		t.Fatal("no points")
	}
	if len(rep.Failures) != 0 {
		t.Fatalf("file sweep failures: %v", rep.Failures)
	}
}

// TestFileTargetsCleanRemovesDirs: a finished sweep leaves nothing behind
// in the scratch root.
func TestFileTargetsCleanRemovesDirs(t *testing.T) {
	root := t.TempDir()
	tg := FileTargets(root)[6] // difffile: smallest workload
	if _, err := SweepFileTarget(tg, Options{Seed: 1985, Every: 5}); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("scratch root not cleaned: %d entries left (%v ...)", len(ents), ents[0].Name())
	}
}

// TestFileSweepCatchesLyingSync is the negative control the whole file
// fault surface exists for: a device that ACKNOWLEDGES fsyncs without
// performing them violates the stable-storage contract, and the same
// audits that pass 0-failure sweeps on the honest device must flag it.
// (Referenced by filestore's TestSkipSyncViolatesDurability.)
func TestFileSweepCatchesLyingSync(t *testing.T) {
	opt := Options{Seed: 1985}.withDefaults()
	caught := false
	for _, tg := range []Target{FileTargets(t.TempDir())[2]} { // shadow
		e, stores, err := tg.Build()
		if err != nil {
			t.Fatal(err)
		}
		model, err := LoadPages(e, opt.Pages)
		if err != nil {
			tg.clean(stores)
			t.Fatal(err)
		}
		// From the 20th file operation on, every fsync lies; the 120th
		// operation cuts power, losing every "durable" write in between.
		var n atomic.Int64
		lie := func(op pagestore.FileOp, name string, seq int64) pagestore.FileFault {
			k := n.Add(1)
			if k >= 120 {
				return pagestore.FileCrash
			}
			if k >= 20 && op == pagestore.FileSync {
				return pagestore.FileSkipSync
			}
			return pagestore.FileOK
		}
		if err := armFileHook(tg, stores, lie); err != nil {
			tg.clean(stores)
			t.Fatal(err)
		}
		out := RunScript(e, model, opt.Seed, opt.Pages, opt.MaxTxns)
		e.Crash()
		if err := armFileHook(tg, stores, nil); err != nil {
			tg.clean(stores)
			t.Fatal(err)
		}
		if err := e.Recover(); err != nil {
			// Recovery itself refusing the corrupted state counts as
			// detection.
			caught = true
		} else {
			fails, _ := AuditState(e, out, opt.Pages)
			fails = append(fails, AuditIdempotence(e, opt.Pages)...)
			if len(fails) > 0 {
				caught = true
			}
		}
		tg.clean(stores)
	}
	if !caught {
		t.Fatal("a lying fsync device produced no audit failures — the sweep cannot detect durability violations")
	}
}

// TestFileReportRendering: the file section renders deterministically and
// only when present (memory-only reports stay byte-identical).
func TestFileReportRendering(t *testing.T) {
	base := &Report{Seed: 1, Every: 1, Pages: 6, MaxTxns: 25,
		Engines: []*TargetReport{{Target: "shadow", Mutations: 3, Points: 3}}}
	var memOnly bytes.Buffer
	if err := base.Render(&memOnly); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(memOnly.String(), "file-backed") {
		t.Fatal("memory-only report mentions the file section")
	}
	base.Files = []*FileTargetReport{{Target: "shadow", FileOps: 6, Points: 9, Torn: 2, LostSyncs: 1,
		Failures: []string{"shadow@fileop 3 (torn): boom"}}}
	var withFiles bytes.Buffer
	if err := base.Render(&withFiles); err != nil {
		t.Fatal(err)
	}
	out := withFiles.String()
	for _, want := range []string{"file-backed crash points", "lostsyncs", "FAIL shadow@fileop 3 (torn): boom", "12 crash points, 1 failures — FAIL"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if !strings.HasPrefix(withFiles.String(), memOnly.String()[:len("crashsweep report")]) {
		t.Fatal("header diverged")
	}
}
