package faultinj

import (
	"fmt"
	"hash/crc32"

	"repro/internal/engine"
	"repro/internal/sim"
)

// Payload builds a self-describing page value: the page it belongs to, the
// transaction that wrote it, a per-write sequence number, and a CRC32 over
// all of that. Audits re-derive the checksum after recovery, so a page
// assembled from two different versions — a torn write — cannot pass.
func Payload(page int64, txn uint64, n int) []byte {
	body := fmt.Sprintf("p%d.t%d.n%d.", page, txn, n)
	return []byte(fmt.Sprintf("%sc%08x", body, crc32.ChecksumIEEE([]byte(body))))
}

// CheckPayload verifies that data is a well-formed Payload for page:
// checksum intact and page id matching. It returns a description of the
// corruption, or "" if the payload is sound.
func CheckPayload(data []byte, page int64) string {
	// The checksum is a fixed-width suffix: 'c' plus eight hex digits.
	i := len(data) - 9
	if i < 1 || data[i] != 'c' {
		return fmt.Sprintf("page %d: malformed payload %q", page, data)
	}
	var sum uint32
	if _, err := fmt.Sscanf(string(data[i+1:]), "%08x", &sum); err != nil {
		return fmt.Sprintf("page %d: unreadable checksum in %q", page, data)
	}
	if got := crc32.ChecksumIEEE(data[:i]); got != sum {
		return fmt.Sprintf("page %d: checksum mismatch in %q (crc %08x)", page, data, got)
	}
	var p int64
	var t uint64
	var n int
	if _, err := fmt.Sscanf(string(data[:i]), "p%d.t%d.n%d.", &p, &t, &n); err != nil {
		return fmt.Sprintf("page %d: unreadable payload body %q", page, data)
	}
	if p != page {
		return fmt.Sprintf("page %d: payload claims page %d (%q)", page, p, data)
	}
	return ""
}

// Outcome is what a scripted workload run left behind, as tracked by the
// script itself: the oracle the post-recovery audits compare against.
type Outcome struct {
	// Model maps every page to its last committed value.
	Model map[int64][]byte
	// Doubt holds the write set of a transaction whose Commit returned an
	// error (power failed mid-commit): recovery may surface it fully applied
	// or fully reverted, never torn. Nil when no commit was in doubt.
	Doubt map[int64][]byte
	// Crashed reports whether the run ended at an injected crash.
	Crashed bool
	// Commits counts transactions whose Commit returned nil.
	Commits int
}

// RunScript drives e through a seeded, fully deterministic transaction mix
// over pages [0,pages): each transaction writes 1–3 self-describing
// payloads, a fifth of them abort voluntarily, and the run stops at the
// first storage error (the injected crash) or after maxTxns transactions.
// The caller loads pages (see LoadPages, whose map becomes the outcome's
// model) and installs fault hooks before calling.
//
// With identical seeds, two runs issue identical operation sequences to the
// engine — which is what makes "crash at the k-th mutation" a well-defined,
// repeatable crash point.
func RunScript(e *engine.Engine, model map[int64][]byte, seed int64, pages, maxTxns int) *Outcome {
	rng := sim.NewRNG(seed)
	out := &Outcome{Model: model}
	for i := 0; i < maxTxns; i++ {
		tx, err := e.Begin()
		if err != nil {
			out.Crashed = true
			return out
		}
		writes := make(map[int64][]byte)
		n := rng.UniformInt(1, 3)
		for j := 0; j < n; j++ {
			p := int64(rng.Intn(pages))
			v := Payload(p, tx.ID(), j)
			if err := tx.Write(p, v); err != nil {
				_ = tx.Abort() // may itself fail; the txn is a loser either way
				out.Crashed = true
				return out
			}
			writes[p] = v
		}
		if rng.Bool(0.2) {
			if err := tx.Abort(); err != nil {
				out.Crashed = true
				return out
			}
			continue
		}
		if err := tx.Commit(); err != nil {
			out.Doubt = writes
			out.Crashed = true
			return out
		}
		out.Commits++
		for p, v := range writes {
			out.Model[p] = v
		}
	}
	return out
}

// LoadPages seeds pages [0,pages) of e with committed initial payloads
// (written as transaction 0) and records them in a fresh model map.
func LoadPages(e *engine.Engine, pages int) (map[int64][]byte, error) {
	model := make(map[int64][]byte, pages)
	for p := int64(0); p < int64(pages); p++ {
		v := Payload(p, 0, 0)
		if err := e.Load(p, v); err != nil {
			return nil, err
		}
		model[p] = v
	}
	return model, nil
}
