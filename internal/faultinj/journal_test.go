package faultinj

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateJournal = flag.Bool("update", false, "rewrite journal golden files")

// TestJournalPointGolden pins the recovery journal of one seeded WAL crash
// point byte-for-byte: the journal is a pure function of (target, seed, k),
// so its JSONL must never drift without an intentional kernel change.
// Regenerate with go test ./internal/faultinj -run JournalPointGolden -update.
func TestJournalPointGolden(t *testing.T) {
	tg := Targets()[0] // wal-1stream
	opt := Options{Seed: 7}
	j, rep, err := JournalPoint(tg, opt, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) != 0 {
		t.Fatalf("audits failed at the journalled point: %v", rep.Failures)
	}
	if j.Len() == 0 {
		t.Fatal("journal empty")
	}

	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "journal_wal1stream_seed7_k3.jsonl")
	if *updateJournal {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("journal drifted from golden\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}

	// Determinism: replaying the same point journals identically.
	j2, _, err := JournalPoint(tg, opt, 3)
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := j2.WriteJSONL(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two replays of the same crash point journal differently")
	}
}

// TestJournalPointEveryTarget proves a journal can attach to any target in
// the lineup and captures at least the recovery pass.
func TestJournalPointEveryTarget(t *testing.T) {
	for _, tg := range Targets() {
		j, rep, err := JournalPoint(tg, Options{Seed: 3}, 2)
		if err != nil {
			t.Errorf("%s: %v", tg.Name, err)
			continue
		}
		if len(rep.Failures) != 0 {
			t.Errorf("%s: audits failed: %v", tg.Name, rep.Failures)
		}
		if j.Len() == 0 {
			t.Errorf("%s: journal empty after crash/recover", tg.Name)
		}
	}
}
