package faultinj

import (
	"bytes"
	"strings"
	"testing"
)

// quickOpt keeps unit-test sweeps fast; the full stride-1 sweep runs in
// cmd/crashsweep (and in make crashsweep-short on CI).
var quickOpt = Options{Seed: 42, Every: 5}

func TestPayloadRoundTrip(t *testing.T) {
	v := Payload(7, 12, 3)
	if msg := CheckPayload(v, 7); msg != "" {
		t.Fatalf("fresh payload rejected: %s", msg)
	}
	if msg := CheckPayload(v, 8); msg == "" {
		t.Fatal("payload accepted for the wrong page")
	}
	corrupt := append([]byte(nil), v...)
	corrupt[0] ^= 0xff
	if msg := CheckPayload(corrupt, 7); msg == "" {
		t.Fatal("corrupted payload passed its checksum")
	}
	// A torn page: one version's body with another version's checksum tail.
	v1, v2 := Payload(7, 12, 3), Payload(7, 99, 1)
	torn := append(append([]byte(nil), v1[:len(v1)-9]...), v2[len(v2)-9:]...)
	if msg := CheckPayload(torn, 7); msg == "" {
		t.Fatal("torn payload (two versions spliced) passed its checksum")
	}
}

// TestSweepAllTargets is the tentpole regression: every audit must pass at
// every enumerated crash point, for every recovery architecture, including
// the re-crash-during-recovery points.
func TestSweepAllTargets(t *testing.T) {
	for _, tg := range Targets() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			rep, err := SweepTarget(tg, quickOpt)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range rep.Failures {
				t.Error(f)
			}
			if rep.Points == 0 {
				t.Fatal("no crash points enumerated")
			}
			if rep.Recrashes == 0 {
				t.Error("no recovery was ever re-crashed; idempotence under " +
					"mid-recovery crashes went unexercised")
			}
			if rep.Commits == 0 {
				t.Error("no point run committed anything; the workload is too weak")
			}
		})
	}
}

// TestSweepFindsInDoubtCommits checks the sweep actually lands crashes
// inside commit processing somewhere: with stride 1 on the WAL engine, some
// point must leave a commit in doubt (that is the hard recovery case).
func TestSweepFindsInDoubtCommits(t *testing.T) {
	tg := Targets()[0] // wal-1stream
	rep, err := SweepTarget(tg, Options{Seed: 42, Every: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DoubtApplied+rep.DoubtReverted == 0 {
		t.Error("stride-1 sweep never crashed inside a commit")
	}
	for _, f := range rep.Failures {
		t.Error(f)
	}
}

// TestReportByteIdentical is the determinism acceptance criterion: two
// sweeps with the same seed must render byte-identical reports.
func TestReportByteIdentical(t *testing.T) {
	render := func() []byte {
		t.Helper()
		rep, err := Sweep(Targets(), quickOpt)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := SweepMachines(MachineOptions{Points: 2, NumTxns: 4})
		if err != nil {
			t.Fatal(err)
		}
		rep.Machines = ms
		var buf bytes.Buffer
		if err := rep.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed reports differ:\n--- first\n%s\n--- second\n%s", a, b)
	}
	if !strings.Contains(string(a), "PASS") {
		t.Fatalf("report did not pass:\n%s", a)
	}
}

func TestTargetsByName(t *testing.T) {
	got, err := TargetsByName("shadow, difffile")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "shadow" || got[1].Name != "difffile" {
		t.Fatalf("selection = %+v", got)
	}
	if _, err := TargetsByName("nope"); err == nil {
		t.Fatal("unknown engine accepted")
	}
	all, err := TargetsByName("all")
	if err != nil || len(all) != len(Targets()) {
		t.Fatalf("all = %d targets, %v", len(all), err)
	}
}
