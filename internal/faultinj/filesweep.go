package faultinj

// filesweep.go runs the crash sweep against real storage. The memory
// sweep (sweep.go) enumerates page-level stable mutations; this sweep
// descends one layer and enumerates *file operations* — every append,
// fsync, fold page-write, and log truncate the file-backed pagestore
// performs — and injects the faults real disks exhibit at each one:
//
//   - power cut between the write and its fsync (FileCrash),
//   - a torn (partial) record left on the platter (FileTorn),
//   - an fsync whose payload the device loses, unacknowledged (FileLostSync).
//
// The audits are the same ones the memory sweep runs: after the fault,
// crash the engine, re-crash recovery itself partway through, finish
// recovery, and check atomicity, durability, idempotence, and liveness.
// A file-backed architecture passes only if the on-disk write ordering
// (append → fsync → acknowledge) upholds the stable-storage contract at
// every single file operation.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/pagestore"
	"repro/internal/pagestore/filestore"
	"repro/internal/runpool"
	"repro/internal/shadoweng"
	"repro/internal/wal"
)

// fileBuildSeq hands every file-backed Build call its own directory.
// Uniqueness is all that matters here — the directory name never reaches
// the report, so the counter does not threaten determinism.
var fileBuildSeq atomic.Int64

// cleanFileStores closes every store and removes the per-build directory
// of each file-backed one; it is the Clean hook of every file target.
func cleanFileStores(stores []*pagestore.Store) {
	for _, s := range stores {
		var dir string
		if fb, ok := s.Backend().(*filestore.Backend); ok {
			dir = fb.Dir()
		}
		s.Close()
		if dir != "" {
			os.RemoveAll(dir)
		}
	}
}

// FileTargets mirrors Targets — the same seven recovery architectures —
// but every stable store lives on real files under root: a fresh
// subdirectory per build, a write-ahead page log with explicit fsyncs,
// and crc-checked records. The WAL engines put their log streams on a
// second file-backed store sized for wal.LogChunkSize chunks.
func FileTargets(root string) []Target {
	dir := func(name string) string {
		return filepath.Join(root, fmt.Sprintf("%s-%06d", name, fileBuildSeq.Add(1)))
	}
	// single-store architectures: one file-backed data store.
	one := func(name string, mk func(*pagestore.Store) (*engine.Engine, error)) Target {
		return Target{
			Name: name,
			Build: func() (*engine.Engine, []*pagestore.Store, error) {
				store, err := filestore.Open(dir(name), 4096)
				if err != nil {
					return nil, nil, err
				}
				e, err := mk(store)
				if err != nil {
					cleanFileStores([]*pagestore.Store{store})
					return nil, nil, err
				}
				return e, []*pagestore.Store{store}, nil
			},
			Clean: cleanFileStores,
		}
	}
	// WAL architectures: data pages and log chunks on separate stores,
	// both file-backed (the log store's page size is the chunk size).
	walT := func(name string, cfg wal.Config) Target {
		return Target{
			Name: name,
			Build: func() (*engine.Engine, []*pagestore.Store, error) {
				data, err := filestore.Open(dir(name+"-data"), 4096)
				if err != nil {
					return nil, nil, err
				}
				logs, err := filestore.Open(dir(name+"-log"), wal.LogChunkSize)
				if err != nil {
					cleanFileStores([]*pagestore.Store{data})
					return nil, nil, err
				}
				cfg.LogStore = logs
				e, m := engine.NewWALOn(data, cfg)
				return e, []*pagestore.Store{data, m.LogStore()}, nil
			},
			Clean: cleanFileStores,
		}
	}
	return []Target{
		walT("wal-1stream", wal.Config{PoolPages: 4}),
		walT("wal-3streams", wal.Config{Streams: 3, Selection: wal.PageMod, PoolPages: 4}),
		one("shadow", engine.NewShadowOn),
		one("ow-noundo", func(s *pagestore.Store) (*engine.Engine, error) {
			return engine.NewOverwriteOn(s, shadoweng.NoUndo), nil
		}),
		one("ow-noredo", func(s *pagestore.Store) (*engine.Engine, error) {
			return engine.NewOverwriteOn(s, shadoweng.NoRedo), nil
		}),
		one("verselect", engine.NewVersionSelectOn),
		one("difffile", func(s *pagestore.Store) (*engine.Engine, error) {
			return engine.NewDiffOn(s), nil
		}),
	}
}

// FileTargetsByName filters FileTargets(root) to the comma-separated
// names in sel; empty or "all" selects everything.
func FileTargetsByName(root, sel string) ([]Target, error) {
	return selectTargets(FileTargets(root), sel)
}

// FileTargetReport is the audited result of sweeping one architecture at
// file-operation granularity.
type FileTargetReport struct {
	Target    string
	FileOps   int64    // file operations in the crash-free probe run
	Points    int      // fault points injected and audited (all kinds)
	Torn      int      // points injecting a torn write
	LostSyncs int      // points injecting an unacknowledged lost fsync
	Recrashes int      // recoveries that were crashed mid-flight and rerun
	Commits   int64    // committed transactions across all point runs
	Failures  []string // audit failures; empty means every audit passed
}

// filePoint is one fault to inject: fault at the k-th file operation.
type filePoint struct {
	k     int64
	fault pagestore.FileFault
}

func faultName(f pagestore.FileFault) string {
	switch f {
	case pagestore.FileCrash:
		return "crash"
	case pagestore.FileTorn:
		return "torn"
	case pagestore.FileLostSync:
		return "lostsync"
	case pagestore.FileSkipSync:
		return "skipsync"
	}
	return "ok"
}

// crashAtFileOp returns a one-shot FileHook injecting fault at the n-th
// file operation counted across every store it is installed on (a WAL
// engine's data and log stores share the same countdown, so points
// enumerate their combined sequence).
func crashAtFileOp(n int64, fault pagestore.FileFault) pagestore.FileHook {
	var ctr atomic.Int64
	return func(op pagestore.FileOp, name string, seq int64) pagestore.FileFault {
		if ctr.Add(1) == n {
			return fault
		}
		return pagestore.FileOK
	}
}

// armFileHook installs hook on every store, failing if any store's
// backend cannot inject file faults.
func armFileHook(tg Target, stores []*pagestore.Store, hook pagestore.FileHook) error {
	for _, s := range stores {
		if !s.SetFileHook(hook) {
			return fmt.Errorf("faultinj: %s: store backend is not file-injectable", tg.Name)
		}
	}
	return nil
}

// SweepFileTarget enumerates the file operations of the scripted workload
// and injects, at every opt.Every-th one, a power cut — plus a torn write
// where the operation is an append or fold page-write, and a lost fsync
// where it is an fsync. Each point then runs the standard crash → re-crash
// recovery → audit cycle of the memory sweep.
func SweepFileTarget(tg Target, opt Options) (*FileTargetReport, error) {
	opt = opt.withDefaults()
	rep := &FileTargetReport{Target: tg.Name}

	// Probe run: trace the workload's file operations without faulting.
	e, stores, err := tg.Build()
	if err != nil {
		return nil, fmt.Errorf("faultinj: build %s: %w", tg.Name, err)
	}
	defer tg.clean(stores)
	model, err := LoadPages(e, opt.Pages)
	if err != nil {
		return nil, fmt.Errorf("faultinj: load %s: %w", tg.Name, err)
	}
	var mu sync.Mutex
	var ops []pagestore.FileOp
	trace := func(op pagestore.FileOp, name string, seq int64) pagestore.FileFault {
		mu.Lock()
		ops = append(ops, op)
		mu.Unlock()
		return pagestore.FileOK
	}
	if err := armFileHook(tg, stores, trace); err != nil {
		return nil, err
	}
	probe := RunScript(e, model, opt.Seed, opt.Pages, opt.MaxTxns)
	if probe.Crashed {
		return nil, fmt.Errorf("faultinj: %s: probe run crashed without injection", tg.Name)
	}
	rep.FileOps = int64(len(ops))

	// Every file operation k (stride Every) yields a power-cut point, and
	// operations with a richer failure mode yield a second point for it.
	var points []filePoint
	for k := int64(1); k <= rep.FileOps; k += opt.Every {
		points = append(points, filePoint{k, pagestore.FileCrash})
		switch ops[k-1] {
		case pagestore.FileAppend, pagestore.FilePageWrite:
			points = append(points, filePoint{k, pagestore.FileTorn})
		case pagestore.FileSync:
			points = append(points, filePoint{k, pagestore.FileLostSync})
		}
	}
	opt.Progress.AddTotal(int64(len(points)))
	outcomes, err := runpool.Map(opt.Jobs, len(points), func(i int) (*pointOutcome, error) {
		po, err := sweepFilePoint(tg, opt, points[i])
		opt.Progress.Add(1)
		return po, err
	})
	if err != nil {
		return nil, err
	}
	for i, po := range outcomes {
		rep.Points++
		switch points[i].fault {
		case pagestore.FileTorn:
			rep.Torn++
		case pagestore.FileLostSync:
			rep.LostSyncs++
		}
		rep.Commits += po.commits
		if po.recrashed {
			rep.Recrashes++
		}
		rep.Failures = append(rep.Failures, po.failures...)
	}
	return rep, nil
}

// sweepFilePoint audits one file-level fault point: inject the fault at
// the k-th file operation, crash the engine, re-crash recovery itself at
// a k-derived page operation, finish recovery, and audit.
func sweepFilePoint(tg Target, opt Options, pt filePoint) (*pointOutcome, error) {
	po := &pointOutcome{}
	label := fmt.Sprintf("%s@fileop %d (%s)", tg.Name, pt.k, faultName(pt.fault))
	fail := func(format string, args ...any) {
		po.failures = append(po.failures, label+": "+fmt.Sprintf(format, args...))
	}
	e, stores, err := tg.Build()
	if err != nil {
		return nil, fmt.Errorf("faultinj: build %s: %w", tg.Name, err)
	}
	defer tg.clean(stores)
	model, err := LoadPages(e, opt.Pages)
	if err != nil {
		return nil, fmt.Errorf("faultinj: load %s: %w", tg.Name, err)
	}
	if err := armFileHook(tg, stores, crashAtFileOp(pt.k, pt.fault)); err != nil {
		return nil, err
	}
	out := RunScript(e, model, opt.Seed, opt.Pages, opt.MaxTxns)
	po.commits = int64(out.Commits)
	e.Crash()
	if err := armFileHook(tg, stores, nil); err != nil {
		return nil, err
	}

	// Re-crash recovery partway through at the page-operation level, the
	// same schedule the memory sweep uses; power-on replay must converge
	// on the second attempt regardless of where the first one died.
	j := 1 + (pt.k-1)%opt.RecrashCycle
	rhook := CrashAtOp(j)
	for _, s := range stores {
		s.SetFaultHook(rhook)
	}
	if err := e.Recover(); err != nil {
		po.recrashed = true
		e.Crash()
		if err := e.Recover(); err != nil {
			fail("recovery after mid-recovery crash (op %d): %v", j, err)
			return po, nil
		}
	}
	for _, s := range stores {
		s.SetFaultHook(nil)
	}

	fails, applied := AuditState(e, out, opt.Pages)
	po.failures = append(po.failures, prefixLabel(label, fails)...)
	if out.Doubt != nil {
		if applied {
			po.doubtApplied = true
		} else {
			po.doubtReverted = true
		}
	}
	po.failures = append(po.failures, prefixLabel(label, AuditIdempotence(e, opt.Pages))...)
	po.failures = append(po.failures, prefixLabel(label, AuditLiveness(e, opt.Pages))...)
	return po, nil
}

func prefixLabel(label string, fails []string) []string {
	out := make([]string, 0, len(fails))
	for _, f := range fails {
		out = append(out, label+": "+f)
	}
	return out
}

// SweepFiles runs SweepFileTarget over targets (normally FileTargets) and
// bundles the reports for Report.Files.
func SweepFiles(targets []Target, opt Options) ([]*FileTargetReport, error) {
	opt = opt.withDefaults()
	var out []*FileTargetReport
	for _, tg := range targets {
		tr, err := SweepFileTarget(tg, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, tr)
	}
	return out, nil
}
