package obs

import (
	"encoding/json"
	"io"

	"repro/internal/sim"
)

// Tracer records spans, instants, and counter samples against virtual
// time. Tracks are named lanes ("data0", "qp/3", "txn/17"); each becomes
// one thread row when the trace is opened in Perfetto / chrome://tracing.
//
// The no-op implementation (Nop) keeps the hot path free: components
// check Enabled() before building span arguments.
type Tracer interface {
	// Enabled reports whether events are being recorded.
	Enabled() bool
	// Span records a completed interval [start, end] on a track. args may
	// be nil; map keys are emitted in sorted order, so args are
	// deterministic.
	Span(track, name string, start, end sim.Time, args map[string]any)
	// Instant records a point event.
	Instant(track, name string, at sim.Time)
	// Counter records a sample of a numeric series.
	Counter(track, name string, at sim.Time, value float64)
}

type nopTracer struct{}

func (nopTracer) Enabled() bool                                           { return false }
func (nopTracer) Span(string, string, sim.Time, sim.Time, map[string]any) {}
func (nopTracer) Instant(string, string, sim.Time)                        {}
func (nopTracer) Counter(string, string, sim.Time, float64)               {}

var nop Tracer = nopTracer{}

// Nop returns the shared no-op tracer.
func Nop() Tracer { return nop }

// traceEvent is one Chrome trace-event (the JSON Array Format understood
// by chrome://tracing and Perfetto). Virtual time is microseconds, which
// is exactly the format's ts/dur unit, so timestamps map one-to-one.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceBuffer is a Tracer that accumulates events in memory and writes
// them as Chrome trace-event JSON. Events are stored in emission order
// (simulation order), so the file is byte-identical across same-seed runs.
type TraceBuffer struct {
	events []traceEvent
	tids   map[string]int
}

// NewTrace returns an empty, enabled trace buffer.
func NewTrace() *TraceBuffer {
	return &TraceBuffer{tids: make(map[string]int)}
}

// Enabled implements Tracer.
func (t *TraceBuffer) Enabled() bool { return true }

// tid maps a track name to a stable thread id, emitting a thread_name
// metadata event on first use so the viewer labels the lane.
func (t *TraceBuffer) tid(track string) int {
	if id, ok := t.tids[track]; ok {
		return id
	}
	id := len(t.tids) + 1
	t.tids[track] = id
	t.events = append(t.events, traceEvent{
		Name: "thread_name",
		Ph:   "M",
		Pid:  1,
		Tid:  id,
		Args: map[string]any{"name": track},
	})
	return id
}

// Span implements Tracer with a complete ("X") event.
func (t *TraceBuffer) Span(track, name string, start, end sim.Time, args map[string]any) {
	if end < start {
		end = start
	}
	t.events = append(t.events, traceEvent{
		Name: name,
		Ph:   "X",
		Ts:   int64(start),
		Dur:  int64(end - start),
		Pid:  1,
		Tid:  t.tid(track),
		Args: args,
	})
}

// Instant implements Tracer with an instant ("i") event.
func (t *TraceBuffer) Instant(track, name string, at sim.Time) {
	t.events = append(t.events, traceEvent{
		Name: name,
		Ph:   "i",
		Ts:   int64(at),
		Pid:  1,
		Tid:  t.tid(track),
		Args: map[string]any{"s": "t"},
	})
}

// Counter implements Tracer with a counter ("C") event.
func (t *TraceBuffer) Counter(track, name string, at sim.Time, value float64) {
	t.events = append(t.events, traceEvent{
		Name: name,
		Ph:   "C",
		Ts:   int64(at),
		Pid:  1,
		Tid:  t.tid(track),
		Args: map[string]any{"value": value},
	})
}

// Len reports the number of recorded events (metadata included).
func (t *TraceBuffer) Len() int { return len(t.events) }

// WriteTo writes the trace in the Chrome trace-event JSON Object Format;
// the output loads directly in Perfetto (ui.perfetto.dev) and
// chrome://tracing. The byte stream is deterministic.
func (t *TraceBuffer) WriteTo(w io.Writer) (int64, error) {
	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: t.events, DisplayTimeUnit: "ms"}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []traceEvent{}
	}
	b, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return 0, err
	}
	n, err := w.Write(b)
	return int64(n), err
}
