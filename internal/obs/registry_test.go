package obs

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestCounter(t *testing.T) {
	eng := sim.New()
	r := NewRegistry(eng)
	c := r.Counter("io.reads")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("io.reads") != c {
		t.Fatal("Counter with same name returned a different instance")
	}
	if s := r.Snapshot(); s.Counters["io.reads"] != 5 {
		t.Fatalf("snapshot counter = %d, want 5", s.Counters["io.reads"])
	}
}

func TestGaugeTimeWeighted(t *testing.T) {
	eng := sim.New()
	r := NewRegistry(eng)
	g := r.Gauge("cache.used")
	eng.At(0, func() { g.Set(10) })
	eng.At(100, func() { g.Set(30) })
	eng.RunUntil(200)
	// 10 for [0,100), 30 for [100,200): mean 20.
	if g.Value() != 30 {
		t.Errorf("gauge value = %v, want 30", g.Value())
	}
	if g.Mean() != 20 {
		t.Errorf("gauge mean = %v, want 20", g.Mean())
	}
	if g.Max() != 30 {
		t.Errorf("gauge max = %v, want 30", g.Max())
	}
}

func TestRegisterGaugeAdoption(t *testing.T) {
	eng := sim.New()
	r := NewRegistry(eng)
	tw := sim.NewTimeWeighted(eng)
	g := r.RegisterGauge("disk.busy", tw)
	tw.Set(1) // mutate through the component's own tracker
	if g.Value() != 1 {
		t.Fatal("registered gauge does not share the component tracker")
	}
	if r.RegisterGauge("disk.busy", tw) != g {
		t.Fatal("re-registering the same tracker returned a new gauge")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering a different tracker under an existing name should panic")
		}
	}()
	r.RegisterGauge("disk.busy", sim.NewTimeWeighted(eng))
}

func TestFuncLazyEvaluation(t *testing.T) {
	eng := sim.New()
	r := NewRegistry(eng)
	calls := 0
	r.Func("model.stat", func() float64 { calls++; return 42 })
	if calls != 0 {
		t.Fatal("stat func evaluated before Snapshot")
	}
	s := r.Snapshot()
	if calls != 1 {
		t.Fatalf("stat func evaluated %d times, want 1", calls)
	}
	if s.Stats["model.stat"] != 42 {
		t.Fatalf("stat = %v, want 42", s.Stats["model.stat"])
	}
	r.PutStat("model.direct", 7)
	if s2 := r.Snapshot(); s2.Stats["model.direct"] != 7 {
		t.Fatalf("direct stat = %v, want 7", s2.Stats["model.direct"])
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() []byte {
		eng := sim.New()
		r := NewRegistry(eng)
		// Insert names in different orders across metric kinds; JSON output
		// must still be identical because map keys are sorted on encode.
		r.Counter("z.count").Add(3)
		r.Counter("a.count").Add(1)
		r.Gauge("m.gauge").Set(2.5)
		h := r.Histogram("lat.ms")
		h.Observe(1.5)
		h.Observe(800)
		r.Func("u.func", func() float64 { return 0.75 })
		r.PutStat("s.stat", 9)
		eng.RunUntil(sim.Ms(10))
		b, err := r.Snapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical registries produced different JSON:\n%s\n---\n%s", a, b)
	}
	if !bytes.Contains(a, []byte(`"a.count": 1`)) {
		t.Fatalf("snapshot JSON missing counter: %s", a)
	}
}

func TestSnapshotWriteText(t *testing.T) {
	build := func() string {
		eng := sim.New()
		r := NewRegistry(eng)
		r.Counter("z.count").Add(3)
		r.Counter("a.count").Add(1)
		r.Gauge("m.gauge").Set(2.5)
		h := r.Histogram("lat.ms")
		h.Observe(1.5)
		h.Observe(800)
		r.Func("u.func", func() float64 { return 0.75 })
		r.PutStat("s.stat", 9)
		eng.RunUntil(sim.Ms(10))
		var buf bytes.Buffer
		if err := r.Snapshot().WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("identical registries rendered different text:\n%s\n---\n%s", a, b)
	}
	// Names appear in sorted order regardless of registration order.
	if !strings.Contains(a, "counter a.count 1\ncounter z.count 3\n") {
		t.Fatalf("counters missing or unsorted:\n%s", a)
	}
	for _, want := range []string{"nowMs ", "gauge m.gauge ", "hist lat.ms ", "stat s.stat ", "stat u.func "} {
		if !strings.Contains(a, want) {
			t.Fatalf("rendered text missing %q:\n%s", want, a)
		}
	}
}
