package obs

import (
	"math"

	"repro/internal/sim"
)

// Histogram bucket layout: fixed log-scaled buckets so that percentile
// estimates are reproducible across runs (no reservoir sampling, no
// randomness). Bucket i covers (lo·g^i, lo·g^(i+1)]; with lo = 1 µs
// (0.001 ms), g = 2^(1/4) and 160 buckets the range spans 0.001 ms to
// ~10^9 ms with a worst-case relative error of g-1 ≈ 19 % — and exact
// min/max tracking clamps the estimate so degenerate distributions
// (empty, single-valued) report exactly.
const (
	histLo      = 1e-3 // lower bound of bucket 0, in the caller's unit (ms)
	histBuckets = 160
)

var histLogGrowth = math.Log(2) / 4 // ln g for g = 2^(1/4)

// Histogram accumulates point samples into fixed log-scaled buckets and
// reports deterministic quantile estimates. The zero value is NOT ready;
// create one with NewHistogram (or Registry.Histogram).
type Histogram struct {
	buckets [histBuckets]int64
	tally   sim.Tally
}

// NewHistogram returns an empty histogram with the default latency
// bucketing (intended for millisecond values).
func NewHistogram() *Histogram { return &Histogram{} }

// bucketOf maps a sample to its bucket index. The clamp happens in float
// space: v/histLo can overflow to +Inf for huge samples, and converting
// +Inf to int is platform-defined (negative on amd64), which would drop
// such samples into bucket 0.
func bucketOf(v float64) int {
	if v <= histLo {
		return 0
	}
	f := math.Floor((math.Log(v) - math.Log(histLo)) / histLogGrowth)
	if !(f > 0) { // also catches NaN
		return 0
	}
	if f >= histBuckets-1 {
		return histBuckets - 1
	}
	return int(f)
}

// lowerBound reports the lower edge of bucket i.
func lowerBound(i int) float64 {
	return histLo * math.Exp(float64(i)*histLogGrowth)
}

// The bucket layout is shared with the runtime metrics layer
// (internal/obs/live), whose lock-free histograms must bucket wall-clock
// samples exactly like this package buckets virtual-time samples so the two
// layers' percentiles are comparable. These exports are the single source
// of truth for that math.

// HistogramBucketCount is the number of fixed log-scaled buckets every
// histogram in this repository uses.
const HistogramBucketCount = histBuckets

// HistogramBucketIndex maps a sample (in ms) to its bucket index.
func HistogramBucketIndex(v float64) int { return bucketOf(v) }

// HistogramBucketLower reports the lower edge of bucket i, in ms.
func HistogramBucketLower(i int) float64 { return lowerBound(i) }

// HistogramLogGrowth reports ln g for the bucket growth factor g = 2^(1/4),
// the constant behind geometric interpolation within a bucket.
func HistogramLogGrowth() float64 { return histLogGrowth }

// Observe records one sample. Non-positive samples land in the lowest
// bucket (their exact values still shape Min/Mean).
func (h *Histogram) Observe(v float64) {
	h.buckets[bucketOf(v)]++
	h.tally.Add(v)
}

// Count reports the number of samples.
func (h *Histogram) Count() int64 { return h.tally.Count() }

// Sum reports the sum of all samples.
func (h *Histogram) Sum() float64 { return h.tally.Sum() }

// Mean reports the exact sample mean (0 if empty).
func (h *Histogram) Mean() float64 { return h.tally.Mean() }

// Min reports the smallest sample (0 if empty).
func (h *Histogram) Min() float64 { return h.tally.Min() }

// Max reports the largest sample (0 if empty).
func (h *Histogram) Max() float64 { return h.tally.Max() }

// Percentile estimates the p-th percentile (p in [0,100]) by geometric
// interpolation within the bucket where the cumulative count crosses the
// rank, clamped to the observed [Min, Max]. An empty histogram reports 0.
func (h *Histogram) Percentile(p float64) float64 {
	n := h.tally.Count()
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return h.tally.Min()
	}
	if p >= 100 {
		return h.tally.Max()
	}
	rank := p / 100 * float64(n)
	var cum float64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			frac := (rank - cum) / float64(c)
			v := lowerBound(i) * math.Exp(frac*histLogGrowth)
			return clamp(v, h.tally.Min(), h.tally.Max())
		}
		cum = next
	}
	return h.tally.Max()
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
