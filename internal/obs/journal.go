package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// The recovery journal is the forensic counterpart of the metrics registry:
// where metrics aggregate *how much* recovery work happened, the journal
// records *which decisions* recovery made and in what order — which
// transactions were classified winners or losers, which log records were
// redone or undone, what a checkpoint flushed and truncated, what a merge
// folded. The pure recovery kernels (internal/wal, internal/shadoweng,
// internal/diffeng) emit into it directly, so like everything else in this
// package it is strictly deterministic and single-threaded: no sync, no
// wall-clock, records numbered in emission order. Concurrent readers must
// quiesce the emitting kernel first (internal/engine.Guard does).

// JournalRecord is one recovery decision. Field order is the JSONL column
// order; zero-valued optional fields are omitted so records stay compact.
type JournalRecord struct {
	// Seq is the record's emission index, assigned by Journal.Emit.
	Seq int64 `json:"seq"`
	// Event classifies the decision: "scan", "winner", "loser", "redo",
	// "undo", "checkpoint", "truncate", "merge", "replay", "root", "gc", ...
	// (see docs/OBSERVABILITY.md for the full schema).
	Event string `json:"event"`
	// Engine names the emitting kernel.
	Engine string `json:"engine,omitempty"`
	Txn    uint64 `json:"txn,omitempty"`
	// Page is a pointer so that page 0 — a legitimate page id — still
	// serializes, while events without a page omit the field entirely.
	// Build it with JournalPage.
	Page *int64 `json:"page,omitempty"`
	LSN  uint64 `json:"lsn,omitempty"`
	// N carries the event's magnitude (records scanned, chunks truncated,
	// blocks reclaimed, ...).
	N int64 `json:"n,omitempty"`
	// Note carries free-form detail ("clr", "add", "del", ...).
	Note string `json:"note,omitempty"`
}

// Journal collects recovery decisions in emission order. The zero value is
// ready to use; a nil *Journal is a valid no-op sink, so kernels hold one
// unconditionally and emit without nil checks.
type Journal struct {
	recs []JournalRecord
}

// NewJournal returns an empty journal.
func NewJournal() *Journal { return &Journal{} }

// JournalPage wraps a page id for JournalRecord.Page.
func JournalPage(p int64) *int64 { return &p }

// Emit appends one record, assigning its sequence number. Emitting to a nil
// journal is a no-op — the nil-safety that lets pure kernels carry a sink
// without configuration.
func (j *Journal) Emit(r JournalRecord) {
	if j == nil {
		return
	}
	r.Seq = int64(len(j.recs))
	j.recs = append(j.recs, r)
}

// Len reports the number of records emitted (0 for a nil journal).
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	return len(j.recs)
}

// Records returns the emitted records in order. The slice is shared; treat
// it as read-only.
func (j *Journal) Records() []JournalRecord {
	if j == nil {
		return nil
	}
	return j.recs
}

// Reset drops every record (no-op on nil).
func (j *Journal) Reset() {
	if j != nil {
		j.recs = j.recs[:0]
	}
}

// WriteJSONL renders the journal as one JSON object per line, in emission
// order. encoding/json emits struct fields in declaration order, so the
// output is byte-deterministic — two same-seed recoveries journal
// identically, which is what lets crash sweeps pin journals as goldens.
func (j *Journal) WriteJSONL(w io.Writer) error {
	for _, r := range j.Records() {
		b, err := json.Marshal(r)
		if err != nil {
			return fmt.Errorf("obs: journal record %d: %w", r.Seq, err)
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}
