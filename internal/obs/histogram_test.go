package obs

import (
	"math"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 {
		t.Fatalf("Count = %d, want 0", h.Count())
	}
	for _, p := range []float64{0, 50, 95, 99, 100} {
		if got := h.Percentile(p); got != 0 {
			t.Errorf("empty Percentile(%v) = %v, want 0", p, got)
		}
	}
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Errorf("empty Mean/Min/Max = %v/%v/%v, want 0", h.Mean(), h.Min(), h.Max())
	}
}

func TestHistogramSingleSample(t *testing.T) {
	// With one sample every percentile must be exactly that sample: the
	// geometric interpolation is clamped to [Min, Max].
	for _, v := range []float64{0.0005, 0.001, 1, 7.3, 5598.7, 2e6} {
		h := NewHistogram()
		h.Observe(v)
		for _, p := range []float64{0, 1, 50, 95, 99, 100} {
			if got := h.Percentile(p); got != v {
				t.Errorf("Observe(%v): Percentile(%v) = %v, want %v", v, p, got, v)
			}
		}
		if h.Count() != 1 || h.Mean() != v || h.Min() != v || h.Max() != v {
			t.Errorf("Observe(%v): count/mean/min/max = %d/%v/%v/%v",
				v, h.Count(), h.Mean(), h.Min(), h.Max())
		}
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	// Values exactly on a bucket's lower edge belong to that bucket's
	// predecessor range boundary; the mapping must stay in range and be
	// monotone.
	if got := bucketOf(0); got != 0 {
		t.Errorf("bucketOf(0) = %d, want 0", got)
	}
	if got := bucketOf(-5); got != 0 {
		t.Errorf("bucketOf(-5) = %d, want 0", got)
	}
	if got := bucketOf(histLo); got != 0 {
		t.Errorf("bucketOf(histLo) = %d, want 0", got)
	}
	if got := bucketOf(math.MaxFloat64); got != histBuckets-1 {
		t.Errorf("bucketOf(MaxFloat64) = %d, want %d", got, histBuckets-1)
	}
	prev := -1
	for i := 0; i < histBuckets; i++ {
		// A value just above each lower edge must land in bucket i.
		v := lowerBound(i) * 1.0001
		b := bucketOf(v)
		if b != i {
			t.Fatalf("bucketOf(lowerBound(%d)*1.0001) = %d, want %d", i, b, i)
		}
		if b < prev {
			t.Fatalf("bucketOf not monotone at bucket %d", i)
		}
		prev = b
	}
}

func TestHistogramPercentileOrderAndClamp(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i)) // 1..1000 ms, uniform
	}
	p50 := h.Percentile(50)
	p95 := h.Percentile(95)
	p99 := h.Percentile(99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("percentiles not monotone: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	if p50 < h.Min() || p99 > h.Max() {
		t.Fatalf("percentiles escape [Min,Max]: p50=%v p99=%v min=%v max=%v",
			p50, p99, h.Min(), h.Max())
	}
	// Log-bucket estimates carry at most ~19 % relative error (growth 2^¼).
	if math.Abs(p50-500)/500 > 0.20 {
		t.Errorf("p50 = %v, want ~500 within 20%%", p50)
	}
	if math.Abs(p99-990)/990 > 0.20 {
		t.Errorf("p99 = %v, want ~990 within 20%%", p99)
	}
	if h.Percentile(0) != h.Min() || h.Percentile(100) != h.Max() {
		t.Errorf("Percentile(0)/Percentile(100) = %v/%v, want Min/Max %v/%v",
			h.Percentile(0), h.Percentile(100), h.Min(), h.Max())
	}
}

func TestHistogramDeterministic(t *testing.T) {
	build := func() *Histogram {
		h := NewHistogram()
		v := 0.37
		for i := 0; i < 500; i++ {
			v = math.Mod(v*1.7+0.13, 1) // fixed pseudo-sequence, no RNG
			h.Observe(v * 10000)
		}
		return h
	}
	a, b := build(), build()
	for _, p := range []float64{10, 50, 90, 95, 99, 99.9} {
		if a.Percentile(p) != b.Percentile(p) {
			t.Fatalf("Percentile(%v) differs across identical builds: %v vs %v",
				p, a.Percentile(p), b.Percentile(p))
		}
	}
}
