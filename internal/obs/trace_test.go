package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

func TestNopTracer(t *testing.T) {
	n := Nop()
	if n.Enabled() {
		t.Fatal("Nop().Enabled() = true, want false")
	}
	// All methods must be callable no-ops.
	n.Span("a", "b", 0, 10, map[string]any{"k": 1})
	n.Instant("a", "b", 5)
	n.Counter("a", "b", 5, 1.5)
}

func TestTraceBufferWellFormed(t *testing.T) {
	tb := NewTrace()
	if !tb.Enabled() {
		t.Fatal("TraceBuffer.Enabled() = false, want true")
	}
	tb.Span("disk0", "read", sim.Ms(1), sim.Ms(3), map[string]any{"pages": 2})
	tb.Instant("log", "checkpoint", sim.Ms(2))
	tb.Counter("cache", "used", sim.Ms(2), 40)
	tb.Span("disk0", "read", sim.Ms(4), sim.Ms(5), nil)

	var buf bytes.Buffer
	if _, err := tb.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("trace output is not valid JSON")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != tb.Len() {
		t.Fatalf("traceEvents has %d events, Len() reports %d", len(doc.TraceEvents), tb.Len())
	}
	var meta, spans, instants, counters int
	for i, ev := range doc.TraceEvents {
		for _, field := range []string{"ph", "ts", "name"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %d missing required field %q: %v", i, field, ev)
			}
		}
		switch ev["ph"] {
		case "M":
			meta++
			if ev["name"] != "thread_name" {
				t.Errorf("metadata event %d has name %v, want thread_name", i, ev["name"])
			}
		case "X":
			spans++
			if _, ok := ev["dur"]; !ok {
				t.Errorf("span event %d missing dur", i)
			}
		case "i":
			instants++
		case "C":
			counters++
		default:
			t.Errorf("event %d has unexpected phase %v", i, ev["ph"])
		}
	}
	// Three distinct tracks -> three thread_name metadata events.
	if meta != 3 || spans != 2 || instants != 1 || counters != 1 {
		t.Fatalf("event mix M/X/i/C = %d/%d/%d/%d, want 3/2/1/1", meta, spans, instants, counters)
	}
}

func TestTraceBufferSpanTimes(t *testing.T) {
	tb := NewTrace()
	tb.Span("x", "s", 100, 250, nil)
	tb.Span("x", "neg", 300, 200, nil) // end < start clamps to zero duration
	var buf bytes.Buffer
	if _, err := tb.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	// Event 0 is the track metadata; 1 and 2 are the spans.
	if doc.TraceEvents[1].Ts != 100 || doc.TraceEvents[1].Dur != 150 {
		t.Errorf("span ts/dur = %d/%d, want 100/150", doc.TraceEvents[1].Ts, doc.TraceEvents[1].Dur)
	}
	if doc.TraceEvents[2].Ts != 300 || doc.TraceEvents[2].Dur != 0 {
		t.Errorf("clamped span ts/dur = %d/%d, want 300/0", doc.TraceEvents[2].Ts, doc.TraceEvents[2].Dur)
	}
}

func TestTraceBufferEmpty(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewTrace().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("empty trace output is not valid JSON")
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"traceEvents": []`)) {
		t.Fatalf("empty trace should serialize an empty array, got %s", buf.Bytes())
	}
}

func TestTraceBufferStableTids(t *testing.T) {
	tb := NewTrace()
	tb.Instant("a", "x", 0)
	tb.Instant("b", "x", 1)
	tb.Instant("a", "y", 2)
	var buf bytes.Buffer
	if _, err := tb.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	// Layout: M(a) i M(b) i i — both "a" instants must share a tid distinct
	// from "b"'s.
	tidA := doc.TraceEvents[1].Tid
	tidB := doc.TraceEvents[3].Tid
	if tidA == tidB {
		t.Fatal("tracks a and b share a tid")
	}
	if doc.TraceEvents[4].Tid != tidA {
		t.Fatalf("second event on track a has tid %d, want %d", doc.TraceEvents[4].Tid, tidA)
	}
}
