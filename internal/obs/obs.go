// Package obs is the simulator's observability layer: a deterministic
// metrics registry (named counters, time-weighted gauges, log-bucketed
// latency histograms, and lazily-evaluated stat functions) plus a
// span-based tracer that emits Chrome trace-event JSON keyed to virtual
// time (see trace.go).
//
// Everything in this package is deterministic: snapshots iterate names in
// sorted order, histograms use fixed bucket boundaries, and trace events
// are emitted in simulation order, so two runs with the same seed produce
// byte-identical metrics snapshots and trace files.
//
// The registry is always cheap enough to leave on — gauges adopt the
// sim.TimeWeighted trackers components already maintain, and stat
// functions cost nothing until Snapshot is called. Tracing defaults to a
// no-op implementation so the hot path pays only a nil-free interface
// check when it is off.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Counter is a monotonically-increasing event count.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n int64) { c.v += n }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is a piecewise-constant quantity tracked over virtual time. It
// wraps a sim.TimeWeighted so a component's existing tracker can be
// adopted into the registry without double bookkeeping.
type Gauge struct{ tw *sim.TimeWeighted }

// Set replaces the gauge value as of the current virtual time.
func (g *Gauge) Set(v float64) { g.tw.Set(v) }

// Adjust adds delta as of the current virtual time.
func (g *Gauge) Adjust(delta float64) { g.tw.Adjust(delta) }

// Value reports the current value.
func (g *Gauge) Value() float64 { return g.tw.Value() }

// Mean reports the time-weighted mean since creation.
func (g *Gauge) Mean() float64 { return g.tw.Mean() }

// Max reports the largest value ever set.
func (g *Gauge) Max() float64 { return g.tw.Max() }

// Registry is a deterministic metrics namespace for one simulation run.
// Metrics are created on demand and identified by dotted names
// ("cache.used", "disk.data0.busy", "txn.completion.ms").
type Registry struct {
	eng      *sim.Engine
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() float64
	stats    map[string]float64
}

// NewRegistry returns an empty registry bound to eng (used to create
// time-weighted gauges at the current virtual time).
func NewRegistry(eng *sim.Engine) *Registry {
	return &Registry{
		eng:      eng,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() float64),
		stats:    make(map[string]float64),
	}
}

// Counter returns the counter with the given name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it (backed by a
// fresh sim.TimeWeighted) if needed.
func (r *Registry) Gauge(name string) *Gauge {
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{tw: sim.NewTimeWeighted(r.eng)}
		r.gauges[name] = g
	}
	return g
}

// RegisterGauge adopts an existing time-weighted tracker as the gauge with
// the given name, so components that already track a quantity do not pay
// for a second integrator. It panics if the name is already registered to
// a different tracker.
func (r *Registry) RegisterGauge(name string, tw *sim.TimeWeighted) *Gauge {
	if g, ok := r.gauges[name]; ok {
		if g.tw != tw {
			panic(fmt.Sprintf("obs: gauge %q already registered", name))
		}
		return g
	}
	g := &Gauge{tw: tw}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram with the given name, creating it with
// the default latency bucketing if needed.
func (r *Registry) Histogram(name string) *Histogram {
	h := r.hists[name]
	if h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Func registers a stat evaluated lazily at snapshot time; use it to
// expose statistics a component already maintains (utilizations, served
// counts) at zero hot-path cost. Re-registering a name replaces it.
func (r *Registry) Func(name string, fn func() float64) {
	r.funcs[name] = fn
}

// PutStat records a point-in-time stat value directly (model statistics
// copied in at the end of a run).
func (r *Registry) PutStat(name string, v float64) {
	r.stats[name] = v
}

// GaugeSnap is the snapshot of one gauge.
type GaugeSnap struct {
	Value float64 `json:"value"`
	Mean  float64 `json:"mean"`
	Max   float64 `json:"max"`
}

// HistSnap is the snapshot of one histogram.
type HistSnap struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot is a point-in-time copy of every metric in a registry. Its JSON
// encoding is deterministic: encoding/json emits map keys in sorted order.
type Snapshot struct {
	NowMs      float64              `json:"nowMs"`
	Counters   map[string]int64     `json:"counters"`
	Gauges     map[string]GaugeSnap `json:"gauges"`
	Histograms map[string]HistSnap  `json:"histograms"`
	Stats      map[string]float64   `json:"stats"`
}

// Snapshot captures every metric at the current virtual time. Registered
// stat functions are evaluated here and merged with PutStat values.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		NowMs:      r.eng.Now().ToMs(),
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]GaugeSnap, len(r.gauges)),
		Histograms: make(map[string]HistSnap, len(r.hists)),
		Stats:      make(map[string]float64, len(r.stats)+len(r.funcs)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeSnap{Value: g.Value(), Mean: g.Mean(), Max: g.Max()}
	}
	for name, h := range r.hists {
		s.Histograms[name] = HistSnap{
			Count: h.Count(),
			Mean:  h.Mean(),
			Min:   h.Min(),
			Max:   h.Max(),
			P50:   h.Percentile(50),
			P95:   h.Percentile(95),
			P99:   h.Percentile(99),
		}
	}
	for name, v := range r.stats {
		s.Stats[name] = v
	}
	for name, fn := range r.funcs {
		s.Stats[name] = fn()
	}
	return s
}

// JSON renders the snapshot as indented, deterministic JSON.
func (s *Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// sortedKeys returns m's keys in ascending order, so renderers visit
// metrics in a reproducible sequence.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteText renders the snapshot as a deterministic plain-text report:
// one section per metric kind, names in sorted order, fixed float
// formatting. Two snapshots of identical registries render to identical
// bytes, which is what lets crash sweeps diff whole machine states
// (see internal/faultinj).
func (s *Snapshot) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "nowMs %.6f\n", s.NowMs); err != nil {
		return err
	}
	for _, k := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", k, s.Counters[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Gauges) {
		g := s.Gauges[k]
		if _, err := fmt.Fprintf(w, "gauge %s value=%.6f mean=%.6f max=%.6f\n",
			k, g.Value, g.Mean, g.Max); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		if _, err := fmt.Fprintf(w,
			"hist %s count=%d mean=%.6f min=%.6f max=%.6f p50=%.6f p95=%.6f p99=%.6f\n",
			k, h.Count, h.Mean, h.Min, h.Max, h.P50, h.P95, h.P99); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Stats) {
		if _, err := fmt.Fprintf(w, "stat %s %.6f\n", k, s.Stats[k]); err != nil {
			return err
		}
	}
	return nil
}

// Sink bundles the registry with the (swappable) tracer; components hold a
// *Sink and read the tracer through it so tracing can be enabled after the
// components are built but before the run starts.
type Sink struct {
	Reg *Registry
	tr  Tracer
}

// NewSink returns a sink with a fresh registry and the no-op tracer.
func NewSink(eng *sim.Engine) *Sink {
	return &Sink{Reg: NewRegistry(eng), tr: Nop()}
}

// Tracer reports the current tracer (never nil).
func (s *Sink) Tracer() Tracer { return s.tr }

// SetTracer replaces the tracer; nil restores the no-op tracer.
func (s *Sink) SetTracer(t Tracer) {
	if t == nil {
		t = Nop()
	}
	s.tr = t
}

// Tracing reports whether a real tracer is attached; hot paths check this
// before building span arguments.
func (s *Sink) Tracing() bool { return s.tr.Enabled() }
