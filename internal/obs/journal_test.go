package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Emit(JournalRecord{Event: "redo"}) // must not panic
	if j.Len() != 0 || j.Records() != nil {
		t.Fatalf("nil journal not empty: len=%d", j.Len())
	}
	j.Reset()
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil journal rendered %q, err %v", buf.String(), err)
	}
}

func TestJournalOrderAndJSONL(t *testing.T) {
	j := NewJournal()
	j.Emit(JournalRecord{Event: "scan", Engine: "wal(1 streams,cyclic)", N: 12})
	j.Emit(JournalRecord{Event: "winner", Txn: 3})
	j.Emit(JournalRecord{Event: "redo", Txn: 3, Page: JournalPage(5), LSN: 9, Note: "clr"})
	if j.Len() != 3 {
		t.Fatalf("Len = %d, want 3", j.Len())
	}
	for i, r := range j.Records() {
		if r.Seq != int64(i) {
			t.Errorf("record %d has Seq %d", i, r.Seq)
		}
	}
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"seq":0,"event":"scan","engine":"wal(1 streams,cyclic)","n":12}
{"seq":1,"event":"winner","txn":3}
{"seq":2,"event":"redo","txn":3,"page":5,"lsn":9,"note":"clr"}
`
	if buf.String() != want {
		t.Errorf("JSONL mismatch\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}

	// Byte-determinism: rendering twice is identical.
	var again bytes.Buffer
	if err := j.WriteJSONL(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two renders of the same journal differ")
	}

	j.Reset()
	if j.Len() != 0 {
		t.Errorf("Len after Reset = %d", j.Len())
	}
	j.Emit(JournalRecord{Event: "undo"})
	if got := j.Records()[0].Seq; got != 0 {
		t.Errorf("Seq restarts at %d after Reset, want 0", got)
	}
}

func TestJournalOmitsZeroFields(t *testing.T) {
	j := NewJournal()
	j.Emit(JournalRecord{Event: "merge"})
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	if line != `{"seq":0,"event":"merge"}` {
		t.Errorf("zero fields not omitted: %s", line)
	}
}
