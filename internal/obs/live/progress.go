package live

import (
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Progress tracks completion of a long-running batch (a crash sweep, a
// benchmark grid) for the /progress endpoint and the stderr ticker. All
// methods are safe for concurrent use, and a nil *Progress is a valid
// no-op sink.
type Progress struct {
	clock Clock
	label string
	start time.Time
	done  atomic.Int64
	total atomic.Int64
}

// NewProgress returns a progress tracker started now on clock.
func NewProgress(clock Clock, label string) *Progress {
	return &Progress{clock: clock, label: label, start: clock.Now()}
}

// AddTotal grows the expected number of work items (no-op on nil).
func (p *Progress) AddTotal(n int64) {
	if p != nil {
		p.total.Add(n)
	}
}

// Add records n completed work items (no-op on nil).
func (p *Progress) Add(n int64) {
	if p != nil {
		p.done.Add(n)
	}
}

// ProgressSnap is the point-in-time state of a Progress, as served by
// /progress.
type ProgressSnap struct {
	Label     string  `json:"label"`
	Done      int64   `json:"done"`
	Total     int64   `json:"total"`
	ElapsedMs float64 `json:"elapsed_ms"`
	// EtaMs linearly extrapolates the remaining time from throughput so
	// far; -1 when nothing has completed yet or the total is unknown.
	EtaMs float64 `json:"eta_ms"`
}

// Snapshot reports the current progress state.
func (p *Progress) Snapshot() ProgressSnap {
	if p == nil {
		return ProgressSnap{EtaMs: -1}
	}
	done, total := p.done.Load(), p.total.Load()
	elapsed := float64(p.clock.Now().Sub(p.start)) / float64(time.Millisecond)
	eta := -1.0
	if done > 0 && total > done {
		eta = elapsed / float64(done) * float64(total-done)
	}
	return ProgressSnap{
		Label:     p.label,
		Done:      done,
		Total:     total,
		ElapsedMs: elapsed,
		EtaMs:     eta,
	}
}

// String renders the snapshot as the one-line ticker format, e.g.
// "sweep 128/682 (18.8%) elapsed 12s eta 41s".
func (s ProgressSnap) String() string {
	pct := 0.0
	if s.Total > 0 {
		pct = float64(s.Done) / float64(s.Total) * 100
	}
	line := fmt.Sprintf("%s %d/%d (%.1f%%) elapsed %s", s.Label, s.Done, s.Total, pct,
		roundSec(s.ElapsedMs))
	if s.EtaMs >= 0 {
		line += " eta " + roundSec(s.EtaMs)
	}
	return line
}

// roundSec renders a millisecond quantity as a duration rounded (not
// truncated) to the nearest second: 59.9 s of elapsed time prints as
// "1m0s", an eta of 0.9 s as "1s".
func roundSec(ms float64) string {
	return time.Duration(ms * float64(time.Millisecond)).Round(time.Second).String()
}

// MarshalJSON renders the snapshot (convenience for the /progress handler).
func (p *Progress) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.Snapshot())
}

// StartTicker prints the progress line to w every interval until the
// returned stop function is called (which prints one final line). Intended
// for stderr on long sweeps; callers keeping reports byte-identical must
// point it at stderr only, never at report writers.
func (p *Progress) StartTicker(w io.Writer, interval time.Duration) (stop func()) {
	if p == nil {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				fmt.Fprintln(w, p.Snapshot().String())
			}
		}
	}()
	return func() {
		close(done)
		<-finished
		fmt.Fprintln(w, p.Snapshot().String())
	}
}
