package live

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("served.requests").Add(7)
	clock := NewManualClock(time.Unix(0, 0))
	prog := NewProgress(clock, "sweep")
	prog.AddTotal(10)
	prog.Add(4)
	clock.Advance(2 * time.Second)

	s, err := Serve("127.0.0.1:0", reg, prog)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "served_requests 7") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	code, body = get("/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress status %d", code)
	}
	for _, frag := range []string{`"label":"sweep"`, `"done":4`, `"total":10`, `"elapsed_ms":2000`, `"eta_ms":3000`} {
		if !strings.Contains(body, frag) {
			t.Errorf("/progress missing %s:\n%s", frag, body)
		}
	}

	code, body = get("/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles:\n%s", body)
	}
	code, _ = get("/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}
}

func TestProgress(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	p := NewProgress(clock, "bench")
	p.AddTotal(100)
	clock.Advance(10 * time.Second)
	p.Add(25)
	snap := p.Snapshot()
	if snap.Done != 25 || snap.Total != 100 {
		t.Fatalf("snap = %+v", snap)
	}
	if snap.ElapsedMs != 10000 {
		t.Errorf("elapsed = %g ms", snap.ElapsedMs)
	}
	// 25 points in 10 s → 75 remaining at the same rate = 30 s.
	if snap.EtaMs != 30000 {
		t.Errorf("eta = %g ms, want 30000", snap.EtaMs)
	}
	line := snap.String()
	if !strings.Contains(line, "bench 25/100 (25.0%)") || !strings.Contains(line, "eta 30s") {
		t.Errorf("ticker line = %q", line)
	}

	// Nil progress is a valid no-op sink.
	var nilp *Progress
	nilp.Add(1)
	nilp.AddTotal(1)
	if s := nilp.Snapshot(); s.EtaMs != -1 || s.Done != 0 {
		t.Errorf("nil snapshot = %+v", s)
	}
	stop := nilp.StartTicker(io.Discard, time.Millisecond)
	stop()
}

// TestProgressStringRounds pins the ticker line's second-rounding: elapsed
// and eta are rounded to the nearest second, never truncated (59.9 s used
// to print "59s" and a 0.9 s eta printed "0s").
func TestProgressStringRounds(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	p := NewProgress(clock, "load")
	p.AddTotal(600)
	clock.Advance(59900 * time.Millisecond)
	p.Add(599)
	snap := p.Snapshot()
	if got := snap.String(); !strings.Contains(got, "elapsed 1m0s") {
		t.Errorf("elapsed 59.9s rendered %q, want it rounded to 1m0s", got)
	}

	// A sub-second eta rounds to the nearest second instead of printing 0s.
	s := ProgressSnap{Label: "load", Done: 599, Total: 600, ElapsedMs: 59900, EtaMs: 900}
	if got := s.String(); !strings.Contains(got, "eta 1s") {
		t.Errorf("eta 0.9s rendered %q, want eta 1s", got)
	}
	// Exactly representable values stay put.
	s = ProgressSnap{Label: "load", Done: 1, Total: 2, ElapsedMs: 12000, EtaMs: 41000}
	if got := s.String(); !strings.Contains(got, "elapsed 12s eta 41s") {
		t.Errorf("integral seconds rendered %q", got)
	}
}

func TestProgressTicker(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	p := NewProgress(clock, "tick")
	p.AddTotal(2)
	p.Add(1)
	var sb safeWriter
	stop := p.StartTicker(&sb, time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	stop()
	out := sb.String()
	if !strings.Contains(out, "tick 1/2 (50.0%)") {
		t.Errorf("ticker output %q", out)
	}
	// Stop must have printed a final line and terminated the goroutine; a
	// second stop-like read of the buffer should be stable.
	n := len(out)
	time.Sleep(10 * time.Millisecond)
	if len(sb.String()) != n {
		t.Error("ticker kept printing after stop")
	}
}

// safeWriter is a mutex-guarded buffer: the ticker goroutine writes while
// the test reads.
type safeWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *safeWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *safeWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}
