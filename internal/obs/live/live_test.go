package live

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}

	var g Gauge
	g.Add(3)
	g.Add(2)
	g.Add(-4)
	if got := g.Value(); got != 1 {
		t.Errorf("gauge = %d, want 1", got)
	}
	if got := g.Max(); got != 5 {
		t.Errorf("gauge max = %d, want 5", got)
	}
	g.Set(10)
	if g.Value() != 10 || g.Max() != 10 {
		t.Errorf("after Set(10): value=%d max=%d", g.Value(), g.Max())
	}
}

func TestManualClock(t *testing.T) {
	base := time.Unix(100, 0)
	c := NewManualClock(base)
	if !c.Now().Equal(base) {
		t.Fatalf("Now = %v, want %v", c.Now(), base)
	}
	c.Advance(1500 * time.Millisecond)
	if got := c.Now().Sub(base); got != 1500*time.Millisecond {
		t.Errorf("advanced %v, want 1.5s", got)
	}
}

// TestHistogramMatchesObs pins the live histogram to the virtual-time
// obs.Histogram: same samples, same bucket math, so quantile estimates must
// agree wherever obs's min/max clamp doesn't engage.
func TestHistogramMatchesObs(t *testing.T) {
	var h Histogram
	ref := obs.NewHistogram()
	samples := []float64{0.01, 0.02, 0.02, 0.5, 1.2, 3.7, 3.7, 42, 800, 12000}
	for _, v := range samples {
		h.Observe(v)
		ref.Observe(v)
	}
	if h.Count() != ref.Count() {
		t.Fatalf("count %d vs obs %d", h.Count(), ref.Count())
	}
	if math.Abs(h.Sum()-ref.Sum()) > 1e-9 {
		t.Fatalf("sum %g vs obs %g", h.Sum(), ref.Sum())
	}
	// obs clamps to exact min/max; live clamps to bucket edges. Interior
	// quantiles take the same geometric-interpolation branch and must agree
	// exactly; tail quantiles may differ by at most one bucket's growth
	// factor g = 2^(1/4).
	if got, want := h.Quantile(0.50), ref.Percentile(50); math.Abs(got-want) > 1e-9*want {
		t.Errorf("q0.50: live %g, obs %g", got, want)
	}
	g := math.Exp(obs.HistogramLogGrowth())
	for _, q := range []float64{0.95, 0.99} {
		got, want := h.Quantile(q), ref.Percentile(q*100)
		if ratio := got / want; ratio < 1/g || ratio > g {
			t.Errorf("q%.2f: live %g vs obs %g beyond one bucket (ratio %g)", q, got, want, ratio)
		}
	}
}

func TestHistogramEmptyAndEdges(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("empty histogram not zero")
	}
	h.Observe(5)
	if got := h.Quantile(0); got > 5 || got <= 0 {
		t.Errorf("q0 = %g", got)
	}
	if got := h.Quantile(1); got < 5 {
		t.Errorf("q1 = %g", got)
	}
	snap := h.Snap()
	if snap.Count != 1 || snap.Sum != 5 {
		t.Errorf("snap = %+v", snap)
	}
}

func TestObserveSince(t *testing.T) {
	c := NewManualClock(time.Unix(0, 0))
	var h Histogram
	start := c.Now()
	c.Advance(250 * time.Millisecond)
	ms := h.ObserveSince(c, start)
	if ms != 250 {
		t.Errorf("ObserveSince = %g ms, want 250", ms)
	}
	if h.Count() != 1 {
		t.Errorf("count = %d", h.Count())
	}
}

// TestMergeDeterministic proves per-worker histogram aggregation is
// order-deterministic: merging the same per-worker histograms in a fixed
// order always yields identical buckets, counts, sums, and quantiles.
func TestMergeDeterministic(t *testing.T) {
	mk := func() []*Histogram {
		workers := make([]*Histogram, 4)
		for w := range workers {
			workers[w] = &Histogram{}
			for i := 0; i < 50; i++ {
				workers[w].Observe(float64(w+1) * float64(i%7+1) * 0.3)
			}
		}
		return workers
	}
	merge := func(parts []*Histogram) *Histogram {
		var total Histogram
		for _, p := range parts {
			total.Merge(p)
		}
		return &total
	}
	a, b := merge(mk()), merge(mk())
	if a.Count() != b.Count() || a.Sum() != b.Sum() {
		t.Fatalf("merge not deterministic: count %d/%d sum %g/%g",
			a.Count(), b.Count(), a.Sum(), b.Sum())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Errorf("q%g differs: %g vs %g", q, a.Quantile(q), b.Quantile(q))
		}
	}
	if a.Count() != 200 {
		t.Errorf("merged count = %d, want 200", a.Count())
	}
	var fromNil Histogram
	fromNil.Merge(nil) // must not panic
	if fromNil.Count() != 0 {
		t.Error("merge(nil) mutated histogram")
	}
}

// TestConcurrentStress hammers every metric type from many goroutines while
// snapshots are taken concurrently; run under -race this is the package's
// core safety proof.
func TestConcurrentStress(t *testing.T) {
	reg := NewRegistry()
	gm := NewGuardMetrics(Wall())
	reg.AddCollector(gm)
	const workers = 8
	const iters = 2000

	var writersWG, scrapersWG sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent scrapers.
	for s := 0; s < 2; s++ {
		scrapersWG.Add(1)
		go func() {
			defer scrapersWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := reg.Snapshot()
				var sb safeDiscard
				if err := snap.WritePrometheus(&sb); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
			}
		}()
	}
	// Concurrent writers.
	for w := 0; w < workers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			c := reg.Counter("stress.events")
			g := reg.Gauge("stress.depth")
			h := reg.Histogram("stress.lat_ms")
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%13) * 0.25)
				tok := gm.Enter(GuardOp(i % int(numGuardOps)))
				tok.Acquired()
				tok.Release()
				g.Add(-1)
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	scrapersWG.Wait()

	snap := reg.Snapshot()
	if got := snap.Counters["stress.events"]; got != workers*iters {
		t.Errorf("events = %d, want %d", got, workers*iters)
	}
	if got := snap.Histograms["stress.lat_ms"].Count; got != workers*iters {
		t.Errorf("hist count = %d, want %d", got, workers*iters)
	}
	if got := snap.Gauges["stress.depth"].Value; got != 0 {
		t.Errorf("depth after drain = %d, want 0", got)
	}
}

// safeDiscard is an io.Writer usable from the race detector's perspective
// without sharing (each scraper builds its own).
type safeDiscard struct{ n int }

func (d *safeDiscard) Write(p []byte) (int, error) { d.n += len(p); return len(p), nil }

// TestGuardMetricsBatchAndCache covers the group-commit and read-cache
// instrumentation: nil-safety of the observer methods, flush-reason
// accounting, and the conditional Collect emission (an engine that never
// batched or cached must not grow new series).
func TestGuardMetricsBatchAndCache(t *testing.T) {
	var nilGM *GuardMetrics
	nilGM.ObserveCommitBatch(3, 1.5, true) // must not panic
	nilGM.ReadCacheHit()
	nilGM.ReadCacheMiss()

	gm := NewGuardMetrics(NewManualClock(time.Unix(0, 0)))
	snap := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]GaugeSnap{},
		Histograms: map[string]HistSnap{},
	}
	gm.Collect(snap)
	for _, name := range []string{
		"guard.commit_batch.size", "guard.commit_batch.wait_ms",
	} {
		if _, ok := snap.Histograms[name]; ok {
			t.Errorf("idle metrics emitted %s", name)
		}
	}
	if _, ok := snap.Counters["guard.readcache.hits"]; ok {
		t.Error("idle metrics emitted guard.readcache.hits")
	}

	gm.ObserveCommitBatch(4, 2.5, true)
	gm.ObserveCommitBatch(2, 10, false)
	gm.ReadCacheHit()
	gm.ReadCacheHit()
	gm.ReadCacheMiss()
	if gm.FlushFull() != 1 || gm.FlushTimer() != 1 {
		t.Errorf("flush counts full=%d timer=%d, want 1/1", gm.FlushFull(), gm.FlushTimer())
	}
	if got := gm.CommitBatchSize().Sum(); got != 6 {
		t.Errorf("batch size sum = %v, want 6", got)
	}
	if got := gm.CommitBatchWait().Sum(); got != 12.5 {
		t.Errorf("batch wait sum = %v, want 12.5", got)
	}
	if gm.ReadCacheHits() != 2 || gm.ReadCacheMisses() != 1 {
		t.Errorf("cache hits=%d misses=%d, want 2/1", gm.ReadCacheHits(), gm.ReadCacheMisses())
	}

	gm.Collect(snap)
	if got := snap.Counters["guard.commit_batch.flush_full"]; got != 1 {
		t.Errorf("flush_full series = %d, want 1", got)
	}
	if got := snap.Counters["guard.readcache.hits"]; got != 2 {
		t.Errorf("readcache.hits series = %d, want 2", got)
	}
	if h, ok := snap.Histograms["guard.commit_batch.size"]; !ok || h.Count != 2 {
		t.Errorf("commit_batch.size series = %+v, want count 2", h)
	}
}
