package live

import (
	"time"
)

// GuardOp classifies the engine.Guard entry points for per-op contention
// profiling. Every Guard method maps to one of these; rarely-contended
// bookkeeping calls share GuardOther.
type GuardOp int

const (
	GuardBegin GuardOp = iota
	GuardRead
	GuardWrite
	GuardCommit
	GuardAbort
	GuardRecover
	GuardCheckpoint
	GuardMerge
	GuardOther

	numGuardOps
)

var guardOpNames = [numGuardOps]string{
	GuardBegin:      "begin",
	GuardRead:       "read",
	GuardWrite:      "write",
	GuardCommit:     "commit",
	GuardAbort:      "abort",
	GuardRecover:    "recover",
	GuardCheckpoint: "checkpoint",
	GuardMerge:      "merge",
	GuardOther:      "other",
}

// String returns the lower-case op name used in metric names.
func (op GuardOp) String() string {
	if op < 0 || op >= numGuardOps {
		return "invalid"
	}
	return guardOpNames[op]
}

// GuardMetrics profiles contention on one engine.Guard: per-op histograms
// of mutex wait time (Enter → Acquired) and hold time (Acquired → Release),
// plus a gauge of threads currently waiting for the lock. All methods are
// lock-free and safe for concurrent use; a nil *GuardMetrics is a valid
// no-op sink so Guard can carry one unconditionally.
//
// GuardMetrics implements Collector; register it on a Registry to expose
// guard.<op>.wait_ms / guard.<op>.hold_ms summaries and the guard.waiters
// gauge through /metrics.
type GuardMetrics struct {
	clock   Clock
	waiters Gauge
	wait    [numGuardOps]Histogram
	hold    [numGuardOps]Histogram
}

// NewGuardMetrics returns guard metrics reading time from clock (Wall() in
// production, a ManualClock in tests).
func NewGuardMetrics(clock Clock) *GuardMetrics {
	return &GuardMetrics{clock: clock}
}

// GuardToken tracks one passage through the guard's mutex. The zero value
// (returned by a nil GuardMetrics) makes Acquired and Release no-ops.
type GuardToken struct {
	m     *GuardMetrics
	op    GuardOp
	enter time.Time
	acq   time.Time
}

// Enter records that a thread is about to contend for the guard's mutex.
// Call before Lock; pair with Acquired after Lock and Release before
// Unlock.
func (m *GuardMetrics) Enter(op GuardOp) GuardToken {
	if m == nil {
		return GuardToken{}
	}
	m.waiters.Add(1)
	return GuardToken{m: m, op: op, enter: m.clock.Now()}
}

// Acquired records that the mutex was obtained, observing the wait time.
func (t *GuardToken) Acquired() {
	if t.m == nil {
		return
	}
	t.m.waiters.Add(-1)
	t.acq = t.m.clock.Now()
	t.m.wait[t.op].Observe(float64(t.acq.Sub(t.enter)) / float64(time.Millisecond))
}

// Release records that the mutex is about to be released, observing the
// hold time.
func (t *GuardToken) Release() {
	if t.m == nil {
		return
	}
	t.m.hold[t.op].Observe(float64(t.m.clock.Now().Sub(t.acq)) / float64(time.Millisecond))
}

// Waiters reports the number of threads currently between Enter and
// Acquired.
func (m *GuardMetrics) Waiters() int64 { return m.waiters.Value() }

// MaxWaiters reports the high-water mark of the waiter queue depth.
func (m *GuardMetrics) MaxWaiters() int64 { return m.waiters.Max() }

// Wait returns the wait-time histogram for op (do not mutate).
func (m *GuardMetrics) Wait(op GuardOp) *Histogram { return &m.wait[op] }

// Hold returns the hold-time histogram for op (do not mutate).
func (m *GuardMetrics) Hold(op GuardOp) *Histogram { return &m.hold[op] }

// Collect implements Collector: ops that were never entered are skipped so
// an idle engine does not flood /metrics with empty summaries.
func (m *GuardMetrics) Collect(s *Snapshot) {
	s.PutGauge("guard.waiters", GaugeSnap{Value: m.waiters.Value(), Max: m.waiters.Max()})
	for op := GuardOp(0); op < numGuardOps; op++ {
		if m.wait[op].Count() != 0 {
			s.PutHist("guard."+op.String()+".wait_ms", m.wait[op].Snap())
		}
		if m.hold[op].Count() != 0 {
			s.PutHist("guard."+op.String()+".hold_ms", m.hold[op].Snap())
		}
	}
}
