package live

import (
	"time"
)

// GuardOp classifies the engine.Guard entry points for per-op contention
// profiling. Every Guard method maps to one of these; rarely-contended
// bookkeeping calls share GuardOther.
type GuardOp int

const (
	GuardBegin GuardOp = iota
	GuardRead
	GuardWrite
	GuardCommit
	GuardAbort
	GuardRecover
	GuardCheckpoint
	GuardMerge
	GuardOther

	numGuardOps
)

var guardOpNames = [numGuardOps]string{
	GuardBegin:      "begin",
	GuardRead:       "read",
	GuardWrite:      "write",
	GuardCommit:     "commit",
	GuardAbort:      "abort",
	GuardRecover:    "recover",
	GuardCheckpoint: "checkpoint",
	GuardMerge:      "merge",
	GuardOther:      "other",
}

// String returns the lower-case op name used in metric names.
func (op GuardOp) String() string {
	if op < 0 || op >= numGuardOps {
		return "invalid"
	}
	return guardOpNames[op]
}

// GuardMetrics profiles contention on one engine.Guard: per-op histograms
// of mutex wait time (Enter → Acquired) and hold time (Acquired → Release),
// plus a gauge of threads currently waiting for the lock. All methods are
// lock-free and safe for concurrent use; a nil *GuardMetrics is a valid
// no-op sink so Guard can carry one unconditionally.
//
// GuardMetrics implements Collector; register it on a Registry to expose
// guard.<op>.wait_ms / guard.<op>.hold_ms summaries and the guard.waiters
// gauge through /metrics.
type GuardMetrics struct {
	clock   Clock
	waiters Gauge
	wait    [numGuardOps]Histogram
	hold    [numGuardOps]Histogram

	// Group-commit batching (engine.Guard with a GroupCommitPolicy): one
	// sample per flushed batch, plus a counter per flush reason.
	batchSize  Histogram // members per batch
	batchWait  Histogram // ms from the leader's arrival to the flush
	flushFull  Counter   // batches flushed because MaxBatch was reached
	flushTimer Counter   // batches flushed because MaxWait expired

	// Striped read latching: committed-page cache traffic. A hit is a
	// read served without touching the kernel mutex; a miss fell through
	// to the exclusive path.
	cacheHits   Counter
	cacheMisses Counter
}

// NewGuardMetrics returns guard metrics reading time from clock (Wall() in
// production, a ManualClock in tests).
func NewGuardMetrics(clock Clock) *GuardMetrics {
	return &GuardMetrics{clock: clock}
}

// GuardToken tracks one passage through the guard's mutex. The zero value
// (returned by a nil GuardMetrics) makes Acquired and Release no-ops.
type GuardToken struct {
	m     *GuardMetrics
	op    GuardOp
	enter time.Time
	acq   time.Time
}

// Enter records that a thread is about to contend for the guard's mutex.
// Call before Lock; pair with Acquired after Lock and Release before
// Unlock.
func (m *GuardMetrics) Enter(op GuardOp) GuardToken {
	if m == nil {
		return GuardToken{}
	}
	m.waiters.Add(1)
	return GuardToken{m: m, op: op, enter: m.clock.Now()}
}

// Acquired records that the mutex was obtained, observing the wait time.
func (t *GuardToken) Acquired() {
	if t.m == nil {
		return
	}
	t.m.waiters.Add(-1)
	t.acq = t.m.clock.Now()
	t.m.wait[t.op].Observe(float64(t.acq.Sub(t.enter)) / float64(time.Millisecond))
}

// Release records that the mutex is about to be released, observing the
// hold time.
func (t *GuardToken) Release() {
	if t.m == nil {
		return
	}
	t.m.hold[t.op].Observe(float64(t.m.clock.Now().Sub(t.acq)) / float64(time.Millisecond))
}

// ObserveCommitBatch records one flushed group-commit batch: its size, how
// long the batch window stayed open (ms), and why it closed (full = MaxBatch
// reached; otherwise the MaxWait timer expired). Nil-safe.
func (m *GuardMetrics) ObserveCommitBatch(size int, waitMs float64, full bool) {
	if m == nil {
		return
	}
	m.batchSize.Observe(float64(size))
	m.batchWait.Observe(waitMs)
	if full {
		m.flushFull.Inc()
	} else {
		m.flushTimer.Inc()
	}
}

// ReadCacheHit records a read served from the striped committed-page cache
// without entering the kernel mutex. Nil-safe.
func (m *GuardMetrics) ReadCacheHit() {
	if m == nil {
		return
	}
	m.cacheHits.Inc()
}

// ReadCacheMiss records a read that missed the stripe cache and fell through
// to the exclusive kernel path. Nil-safe.
func (m *GuardMetrics) ReadCacheMiss() {
	if m == nil {
		return
	}
	m.cacheMisses.Inc()
}

// CommitBatchSize returns the batch-size histogram (do not mutate).
func (m *GuardMetrics) CommitBatchSize() *Histogram { return &m.batchSize }

// CommitBatchWait returns the batch-window histogram in ms (do not mutate).
func (m *GuardMetrics) CommitBatchWait() *Histogram { return &m.batchWait }

// FlushFull reports batches flushed because MaxBatch was reached.
func (m *GuardMetrics) FlushFull() int64 { return m.flushFull.Value() }

// FlushTimer reports batches flushed because MaxWait expired.
func (m *GuardMetrics) FlushTimer() int64 { return m.flushTimer.Value() }

// ReadCacheHits reports reads served from the stripe cache.
func (m *GuardMetrics) ReadCacheHits() int64 { return m.cacheHits.Value() }

// ReadCacheMisses reports reads that fell through to the kernel.
func (m *GuardMetrics) ReadCacheMisses() int64 { return m.cacheMisses.Value() }

// Waiters reports the number of threads currently between Enter and
// Acquired.
func (m *GuardMetrics) Waiters() int64 { return m.waiters.Value() }

// MaxWaiters reports the high-water mark of the waiter queue depth.
func (m *GuardMetrics) MaxWaiters() int64 { return m.waiters.Max() }

// Wait returns the wait-time histogram for op (do not mutate).
func (m *GuardMetrics) Wait(op GuardOp) *Histogram { return &m.wait[op] }

// Hold returns the hold-time histogram for op (do not mutate).
func (m *GuardMetrics) Hold(op GuardOp) *Histogram { return &m.hold[op] }

// Collect implements Collector: ops that were never entered are skipped so
// an idle engine does not flood /metrics with empty summaries.
func (m *GuardMetrics) Collect(s *Snapshot) {
	s.PutGauge("guard.waiters", GaugeSnap{Value: m.waiters.Value(), Max: m.waiters.Max()})
	for op := GuardOp(0); op < numGuardOps; op++ {
		if m.wait[op].Count() != 0 {
			s.PutHist("guard."+op.String()+".wait_ms", m.wait[op].Snap())
		}
		if m.hold[op].Count() != 0 {
			s.PutHist("guard."+op.String()+".hold_ms", m.hold[op].Snap())
		}
	}
	if m.batchSize.Count() != 0 {
		s.PutHist("guard.commit_batch.size", m.batchSize.Snap())
		s.PutHist("guard.commit_batch.wait_ms", m.batchWait.Snap())
		s.PutCounter("guard.commit_batch.flush_full", m.flushFull.Value())
		s.PutCounter("guard.commit_batch.flush_timer", m.flushTimer.Value())
	}
	if hits, misses := m.cacheHits.Value(), m.cacheMisses.Value(); hits != 0 || misses != 0 {
		s.PutCounter("guard.readcache.hits", hits)
		s.PutCounter("guard.readcache.misses", misses)
	}
}
