package live

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry is a concurrency-safe namespace of runtime metrics, identified
// by dotted names ("runpool.task.ms", "guard.read.wait_ms"). Metric
// creation takes a mutex; the returned metric objects are lock-free, so hot
// paths look a metric up once and hold the pointer.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// defaultRegistry is the process-wide registry the -live HTTP surface
// serves. Library instrumentation (internal/runpool) records here so any
// command can expose it without plumbing.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// A Collector contributes externally-owned metrics to a registry snapshot
// at scrape time (the pattern GuardMetrics uses: it owns fixed per-op
// histogram arrays for lock-freedom and renders them on demand).
type Collector interface {
	Collect(s *Snapshot)
}

// AddCollector registers c; every Snapshot will include its metrics.
func (r *Registry) AddCollector(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// Snapshot is a point-in-time copy of every metric. Maps keep the dotted
// metric names; rendering sorts them, so two snapshots of identical state
// render identically.
type Snapshot struct {
	Counters   map[string]int64     `json:"counters"`
	Gauges     map[string]GaugeSnap `json:"gauges"`
	Histograms map[string]HistSnap  `json:"histograms"`
}

// GaugeSnap is the snapshot of one gauge.
type GaugeSnap struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// NewSnapshot returns an empty snapshot for collectors to fill.
func NewSnapshot() *Snapshot {
	return &Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]GaugeSnap),
		Histograms: make(map[string]HistSnap),
	}
}

// PutCounter records a counter value into the snapshot.
func (s *Snapshot) PutCounter(name string, v int64) { s.Counters[name] = v }

// PutGauge records a gauge value into the snapshot.
func (s *Snapshot) PutGauge(name string, g GaugeSnap) { s.Gauges[name] = g }

// PutHist records a histogram summary into the snapshot.
func (s *Snapshot) PutHist(name string, h HistSnap) { s.Histograms[name] = h }

// Snapshot captures every metric (registry-owned and collector-owned). The
// values are each read atomically but the set is not a consistent cut;
// that is inherent to scraping live concurrent state.
func (r *Registry) Snapshot() *Snapshot {
	s := NewSnapshot()
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()

	for name, c := range counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		s.Gauges[name] = GaugeSnap{Value: g.Value(), Max: g.Max()}
	}
	for name, h := range hists {
		s.Histograms[name] = h.Snap()
	}
	for _, c := range collectors {
		c.Collect(s)
	}
	return s
}

// promName maps a dotted metric name to a legal Prometheus metric name:
// dots and every other illegal rune become underscores.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			b.WriteByte('_')
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// promFloat formats a float the way Prometheus text exposition expects,
// with the shortest round-trip representation (deterministic for a given
// value).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format: counters and gauges as their native types, histograms as
// summaries (quantile series plus _sum and _count). Names are emitted in
// sorted order and floats with shortest round-trip formatting, so a given
// snapshot renders to exactly one byte sequence — pinned by a golden test.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		g := s.Gauges[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n%s_max %d\n",
			pn, pn, g.Value, pn, g.Max); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w,
			"# TYPE %s summary\n%s{quantile=\"0.5\"} %s\n%s{quantile=\"0.95\"} %s\n%s{quantile=\"0.99\"} %s\n%s_sum %s\n%s_count %d\n",
			pn,
			pn, promFloat(h.P50),
			pn, promFloat(h.P95),
			pn, promFloat(h.P99),
			pn, promFloat(h.Sum),
			pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// JSON renders the snapshot as indented JSON (map keys sorted by
// encoding/json, so deterministic for a given snapshot).
func (s *Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
