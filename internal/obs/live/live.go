// Package live is the runtime (wall-clock) observability layer — the
// concurrent sibling of the deterministic, virtual-time internal/obs.
//
// internal/obs instruments what happens *inside* a simulation: everything is
// single-threaded, keyed to virtual time, and byte-reproducible. This
// package instruments the machinery that *runs* simulations and kernels —
// engine.Guard's mutex, internal/runpool's workers, long sweeps — where the
// interesting quantities (lock wait time, worker busy time, scrape-time
// queue depth) only exist on the host clock and under real concurrency.
// Everything here is safe for concurrent use and built on atomics: counters
// and gauges are single atomic words, histograms are lock-free arrays of
// atomic buckets sharing the exact bucket math of obs.Histogram, so the two
// layers' percentiles are directly comparable.
//
// Time is read through the Clock interface. Production code uses Wall()
// (the one place in internal/ where the host clock is legal — simlint's
// D001 scope excludes this package, and only this package); tests use a
// ManualClock, which makes the same types deterministic under virtual time.
//
// The runtime layer must add zero nondeterminism to deterministic outputs:
// nothing in this package is ever rendered into experiment tables, crash
// reports, or obs snapshots. It is exported only through the live HTTP
// surface (see Serve: Prometheus-text /metrics, /debug/pprof, /progress)
// and the BENCH_*.json files, which are wall-clock measurements by design.
package live

import (
	"math"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Clock is the time source. The wall clock is the production
// implementation; virtual-time tests substitute a ManualClock so the same
// metric types produce deterministic values.
type Clock interface {
	Now() time.Time
}

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// Wall returns the host wall clock.
func Wall() Clock { return wallClock{} }

// ManualClock is a settable clock for deterministic tests. It is safe for
// concurrent use.
type ManualClock struct {
	ns atomic.Int64
}

// NewManualClock returns a manual clock at t.
func NewManualClock(t time.Time) *ManualClock {
	c := &ManualClock{}
	c.ns.Store(t.UnixNano())
	return c
}

// Now reports the clock's current instant.
func (c *ManualClock) Now() time.Time { return time.Unix(0, c.ns.Load()) }

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) { c.ns.Add(int64(d)) }

// Counter is a monotonically-increasing event count, safe for concurrent
// use. The zero value is ready.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous quantity (queue depth, in-flight operations),
// safe for concurrent use. Unlike obs.Gauge it is not time-weighted: the
// runtime layer has no virtual clock to integrate over, so it tracks the
// current value and the high-water mark instead. The zero value is ready.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	g.bumpMax(v)
}

// Add adjusts the value by delta and returns the new value.
func (g *Gauge) Add(delta int64) int64 {
	v := g.v.Add(delta)
	g.bumpMax(v)
	return v
}

func (g *Gauge) bumpMax(v int64) {
	for {
		cur := g.max.Load()
		if v <= cur || g.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reports the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max reports the high-water mark.
func (g *Gauge) Max() int64 { return g.max.Load() }

// Histogram is a lock-free log-bucketed latency histogram for millisecond
// samples. It reuses the fixed bucket layout of obs.Histogram (the bucket
// math is exported by internal/obs precisely for this), so percentiles from
// the runtime layer line up with the virtual-time layer's. The zero value
// is ready; all methods are safe for concurrent use.
//
// Unlike obs.Histogram it does not track exact min/max — exact extrema
// would need a CAS pair per sample on the hot path — so quantile estimates
// clamp to bucket edges instead of observed extrema.
type Histogram struct {
	buckets [obs.HistogramBucketCount]atomic.Int64
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one sample (in ms).
func (h *Histogram) Observe(v float64) {
	h.buckets[obs.HistogramBucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		cur := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(cur) + v)
		if h.sum.CompareAndSwap(cur, next) {
			return
		}
	}
}

// ObserveSince records the elapsed time from start to clock.Now, in ms, and
// returns it.
func (h *Histogram) ObserveSince(clock Clock, start time.Time) float64 {
	ms := float64(clock.Now().Sub(start)) / float64(time.Millisecond)
	h.Observe(ms)
	return ms
}

// Count reports the number of samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reports the sum of all samples. Note that under concurrent observers
// the low bits depend on accumulation order; deterministic tests drive the
// histogram single-threaded.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Merge folds other into h bucket by bucket. Bucket counts and the sample
// count are plain sums, so merging any permutation of the same histograms
// yields identical buckets; callers who also need bit-identical sums (the
// per-worker aggregation in dbbench) merge in a fixed order — worker index —
// which makes the whole result deterministic. Merge is not atomic with
// respect to concurrent Observe calls on other; quiesce first.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i := range h.buckets {
		if n := other.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(other.count.Load())
	for {
		cur := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(cur) + other.Sum())
		if h.sum.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Quantile estimates the q-th quantile (q in [0,1]) by the same geometric
// interpolation obs.Histogram uses, clamped to the edges of the occupied
// bucket range. An empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	first, last := -1, -1
	for i := range h.buckets {
		if h.buckets[i].Load() != 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 {
		return 0 // count raced ahead of the bucket write
	}
	lo := obs.HistogramBucketLower(first)
	hi := obs.HistogramBucketLower(last) * math.Exp(obs.HistogramLogGrowth())
	if q <= 0 {
		return lo
	}
	if q >= 1 {
		return hi
	}
	rank := q * float64(n)
	var cum float64
	for i := first; i <= last; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			frac := (rank - cum) / float64(c)
			v := obs.HistogramBucketLower(i) * math.Exp(frac*obs.HistogramLogGrowth())
			if v < lo {
				v = lo
			}
			if v > hi {
				v = hi
			}
			return v
		}
		cum = next
	}
	return hi
}

// Snap captures the histogram's summary statistics at one instant. Under
// concurrent observers the fields are each atomically read but not mutually
// consistent — fine for scraping, not for invariants.
func (h *Histogram) Snap() HistSnap {
	return HistSnap{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// HistSnap is the point-in-time summary of one histogram.
type HistSnap struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}
