package live

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the live observability HTTP surface: Prometheus-text /metrics,
// JSON /progress, and the standard /debug/pprof profiling endpoints. It is
// deliberately built on an explicit mux — nothing registers on
// http.DefaultServeMux — so importing this package has no global effect.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the live endpoint on addr (e.g. ":9090" or
// "127.0.0.1:0"). reg supplies /metrics; prog (may be nil) supplies
// /progress. The server runs until Close.
func Serve(addr string, reg *Registry, prog *Progress) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		b, err := prog.MarshalJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(append(b, '\n'))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	s := &Server{ln: ln, srv: srv}
	go func() { _ = srv.Serve(ln) }()
	return s, nil
}

// Addr reports the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately.
func (s *Server) Close() error { return s.srv.Close() }
