package live

import (
	"time"
)

// Sleep pauses the calling goroutine for d on the host clock. It lives here
// because internal/obs/live is the one scope where blocking on wall time is
// legal (simlint D001); commands that need real delays — dial-retry
// backoff, open-loop pacing — reach them through this package instead of
// calling time.Sleep themselves.
func Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Pacer schedules open-loop arrivals at a fixed rate: each Wait blocks
// until the next arrival instant and returns it. Unlike a closed loop —
// where a slow server slows the request stream down — the schedule is fixed
// at construction, so service-time degradation shows up as queueing delay
// (measure latency from the returned arrival time, not from when Wait
// unblocked the sender).
//
// A Pacer is owned by one dispatcher goroutine.
type Pacer struct {
	clock    Clock
	sleep    func(time.Duration)
	interval time.Duration
	next     time.Time
}

// NewPacer returns a pacer emitting perSec arrivals per second on clock,
// starting now. perSec must be positive.
func NewPacer(clock Clock, perSec float64) *Pacer {
	return newPacer(clock, perSec, Sleep)
}

// newPacer lets tests substitute the sleep function (pairing a ManualClock
// with a sleep that advances it keeps the schedule fully deterministic).
func newPacer(clock Clock, perSec float64, sleep func(time.Duration)) *Pacer {
	if perSec <= 0 {
		panic("live: pacer rate must be positive")
	}
	return &Pacer{
		clock:    clock,
		sleep:    sleep,
		interval: time.Duration(float64(time.Second) / perSec),
		next:     clock.Now(),
	}
}

// Wait blocks until the next scheduled arrival and returns its instant.
// When the caller has fallen behind the schedule, Wait returns immediately
// with the overdue instant — arrivals are never silently dropped, they
// queue, exactly as an open-loop workload demands.
func (p *Pacer) Wait() time.Time {
	arrival := p.next
	p.next = arrival.Add(p.interval)
	if d := arrival.Sub(p.clock.Now()); d > 0 {
		p.sleep(d)
	}
	return arrival
}
