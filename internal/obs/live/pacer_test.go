package live

import (
	"testing"
	"time"
)

func TestPacerSchedule(t *testing.T) {
	clock := NewManualClock(time.Unix(100, 0))
	var slept []time.Duration
	sleep := func(d time.Duration) {
		slept = append(slept, d)
		clock.Advance(d)
	}
	p := newPacer(clock, 10, sleep) // 100ms between arrivals
	t0 := clock.Now()

	for i := 0; i < 3; i++ {
		got := p.Wait()
		want := t0.Add(time.Duration(i) * 100 * time.Millisecond)
		if !got.Equal(want) {
			t.Fatalf("arrival %d = %v, want %v", i, got, want)
		}
	}
	// The first arrival is due immediately; the next two each require one
	// full-interval sleep because the workload itself consumes no time.
	if len(slept) != 2 || slept[0] != 100*time.Millisecond || slept[1] != 100*time.Millisecond {
		t.Fatalf("slept %v, want [100ms 100ms]", slept)
	}
}

func TestPacerOverdueArrivalsDoNotSleep(t *testing.T) {
	clock := NewManualClock(time.Unix(100, 0))
	slept := 0
	p := newPacer(clock, 10, func(d time.Duration) {
		slept++
		clock.Advance(d)
	})
	t0 := clock.Now()
	p.Wait() // consume the immediate first arrival

	// A stalled dispatcher returns to find several arrivals overdue: they
	// must be handed out back-to-back, on schedule, with no sleeping.
	clock.Advance(time.Second)
	slept = 0
	for i := 1; i <= 3; i++ {
		got := p.Wait()
		want := t0.Add(time.Duration(i) * 100 * time.Millisecond)
		if !got.Equal(want) {
			t.Fatalf("overdue arrival %d = %v, want %v", i, got, want)
		}
	}
	if slept != 0 {
		t.Fatalf("slept %d times while overdue, want 0", slept)
	}
}

func TestPacerRejectsNonPositiveRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPacer(clock, 0) did not panic")
		}
	}()
	NewPacer(NewManualClock(time.Unix(0, 0)), 0)
}
