package live

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestPrometheusGolden pins the Prometheus text exposition byte-for-byte:
// deterministic inputs (ManualClock, fixed samples) must render exactly one
// byte sequence, in sorted name order. Regenerate with
// go test ./internal/obs/live -run Golden -update.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sweep.points").Add(682)
	reg.Gauge("pool.inflight").Add(3)
	reg.Gauge("pool.inflight").Add(-2)
	h := reg.Histogram("task.ms")
	h.Observe(1)
	h.Observe(1)
	h.Observe(4)

	clock := NewManualClock(time.Unix(0, 0))
	gm := NewGuardMetrics(clock)
	tok := gm.Enter(GuardCommit)
	clock.Advance(2 * time.Millisecond)
	tok.Acquired()
	clock.Advance(8 * time.Millisecond)
	tok.Release()
	reg.AddCollector(gm)

	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	golden := filepath.Join("testdata", "prometheus.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Prometheus text drifted from golden\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Byte-determinism: two snapshots of identical state render identically.
	var again bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, again.Bytes()) {
		t.Error("two renders of the same state differ")
	}

	// Spot-check the load-bearing series so a golden drift failure
	// pinpoints what changed.
	text := string(got)
	for _, series := range []string{
		"# TYPE sweep_points counter\nsweep_points 682\n",
		"# TYPE pool_inflight gauge\npool_inflight 1\npool_inflight_max 3\n",
		"# TYPE guard_waiters gauge\nguard_waiters 0\nguard_waiters_max 1\n",
		"guard_commit_wait_ms_sum 2\n",
		"guard_commit_hold_ms_sum 8\n",
		"task_ms_count 3\n",
		`task_ms{quantile="0.5"} `,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("missing series %q in:\n%s", series, text)
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"guard.read.wait_ms": "guard_read_wait_ms",
		"runpool.worker0":    "runpool_worker0",
		"0starts.with.digit": "_starts_with_digit",
		"ok_name":            "ok_name",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("x") != reg.Counter("x") {
		t.Error("Counter not memoized")
	}
	if reg.Gauge("x") != reg.Gauge("x") {
		t.Error("Gauge not memoized")
	}
	if reg.Histogram("x") != reg.Histogram("x") {
		t.Error("Histogram not memoized")
	}
	if Default() == nil || Default() != Default() {
		t.Error("Default registry not stable")
	}
}

func TestSnapshotJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a").Inc()
	b, err := reg.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"a": 1`) {
		t.Errorf("JSON missing counter: %s", b)
	}
}
