package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestGenerateRandom(t *testing.T) {
	cfg := DefaultConfig(24000)
	txns, err := Generate(200, cfg, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(txns) != 200 {
		t.Fatalf("len = %d", len(txns))
	}
	for _, tx := range txns {
		n := tx.NumReads()
		if n < 1 || n > 250 {
			t.Fatalf("txn %d reads %d pages", tx.ID, n)
		}
		seen := map[PageID]bool{}
		for _, p := range tx.Reads {
			if p < 0 || int(p) >= cfg.DBPages {
				t.Fatalf("page %d out of range", p)
			}
			if seen[p] {
				t.Fatalf("txn %d reads page %d twice", tx.ID, p)
			}
			seen[p] = true
		}
		for p := range tx.Writes {
			if !seen[p] {
				t.Fatalf("txn %d writes page %d it never read", tx.ID, p)
			}
		}
	}
}

func TestGenerateSequential(t *testing.T) {
	cfg := DefaultConfig(24000)
	cfg.Sequential = true
	txns, err := Generate(100, cfg, sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range txns {
		for j := 1; j < len(tx.Reads); j++ {
			if tx.Reads[j] != tx.Reads[j-1]+1 {
				t.Fatalf("txn %d not sequential at %d", tx.ID, j)
			}
		}
	}
}

func TestWriteFraction(t *testing.T) {
	cfg := DefaultConfig(24000)
	txns, err := Generate(500, cfg, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	reads, writes := TotalReads(txns), TotalWrites(txns)
	frac := float64(writes) / float64(reads)
	if frac < 0.17 || frac > 0.23 {
		t.Fatalf("write fraction = %v, want ~0.20", frac)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(24000)
	a, _ := Generate(50, cfg, sim.NewRNG(7))
	b, _ := Generate(50, cfg, sim.NewRNG(7))
	for i := range a {
		if len(a[i].Reads) != len(b[i].Reads) {
			t.Fatal("nondeterministic read sets")
		}
		for j := range a[i].Reads {
			if a[i].Reads[j] != b[i].Reads[j] {
				t.Fatal("nondeterministic reference strings")
			}
		}
		if len(a[i].Writes) != len(b[i].Writes) {
			t.Fatal("nondeterministic write sets")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{MinPages: 0, MaxPages: 10, DBPages: 100},
		{MinPages: 10, MaxPages: 5, DBPages: 100},
		{MinPages: 1, MaxPages: 10, WriteFrac: -0.1, DBPages: 100},
		{MinPages: 1, MaxPages: 10, WriteFrac: 1.5, DBPages: 100},
		{MinPages: 1, MaxPages: 250, WriteFrac: 0.2, DBPages: 100},
		{MinPages: 1, MaxPages: 10, WriteFrac: 0.2, DBPages: 1000, Skew: 0.5},
		{MinPages: 1, MaxPages: 10, WriteFrac: 0.2, DBPages: 1000, Skew: 1.5, Sequential: true},
	}
	for i, c := range cases {
		if _, err := Generate(1, c, sim.NewRNG(1)); err == nil {
			t.Errorf("case %d: bad config accepted: %+v", i, c)
		}
	}
}

func TestSkewedGeneration(t *testing.T) {
	cfg := DefaultConfig(10000)
	cfg.Skew = 2.0
	txns, err := Generate(100, cfg, sim.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	// Zipf concentrates accesses on low page numbers: the majority of all
	// reads should land in the first 1% of the database.
	low, total := 0, 0
	for _, tx := range txns {
		seen := map[PageID]bool{}
		for _, p := range tx.Reads {
			if seen[p] {
				t.Fatalf("txn %d reads page %d twice", tx.ID, p)
			}
			seen[p] = true
			total++
			if int(p) < cfg.DBPages/100 {
				low++
			}
		}
	}
	if frac := float64(low) / float64(total); frac < 0.5 {
		t.Fatalf("only %.0f%% of skewed accesses hit the hot 1%%", frac*100)
	}
}

func TestSortedWrites(t *testing.T) {
	tx := &Txn{Writes: map[PageID]bool{5: true, 1: true, 9: true}}
	w := tx.SortedWrites()
	if len(w) != 3 || w[0] != 1 || w[1] != 5 || w[2] != 9 {
		t.Fatalf("sorted writes = %v", w)
	}
}

func TestWriteSubsetProperty(t *testing.T) {
	// Property: every write is in the read set; write count <= read count.
	f := func(seed int64, seq bool) bool {
		cfg := DefaultConfig(10000)
		cfg.Sequential = seq
		txns, err := Generate(20, cfg, sim.NewRNG(seed))
		if err != nil {
			return false
		}
		for _, tx := range txns {
			if tx.NumWrites() > tx.NumReads() {
				return false
			}
			in := map[PageID]bool{}
			for _, p := range tx.Reads {
				in[p] = true
			}
			for p := range tx.Writes {
				if !in[p] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
