// Package workload generates the transaction loads used throughout the
// paper's evaluation: each transaction accesses a uniform-random number of
// pages in [MinPages, MaxPages] (1..250 in the paper), with either a random
// or a sequential reference string, and updates a random subset (20 % in the
// paper) of the pages it reads.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// PageID identifies a logical database page.
type PageID int

// Txn is one generated transaction: the pages it reads, in reference order,
// and the subset it updates.
type Txn struct {
	ID     int
	Reads  []PageID        // reference string
	Writes map[PageID]bool // write set: random 20 % subset of Reads
}

// NumReads reports the number of pages the transaction reads.
func (t *Txn) NumReads() int { return len(t.Reads) }

// NumWrites reports the number of pages the transaction updates.
func (t *Txn) NumWrites() int { return len(t.Writes) }

// Config describes a transaction load.
type Config struct {
	MinPages   int     // smallest transaction, in pages (paper: 1)
	MaxPages   int     // largest transaction, in pages (paper: 250)
	WriteFrac  float64 // fraction of read pages that are updated (paper: 0.20)
	Sequential bool    // sequential (vs random) reference strings
	DBPages    int     // logical database size in pages
	// Skew, when > 1.0, draws random reference strings from a Zipf
	// distribution with parameter Skew instead of uniformly — an extension
	// beyond the paper for studying hot-spot contention. 0 means uniform.
	Skew float64
}

// DefaultConfig reproduces the paper's transaction model over a database of
// dbPages logical pages.
func DefaultConfig(dbPages int) Config {
	return Config{MinPages: 1, MaxPages: 250, WriteFrac: 0.20, DBPages: dbPages}
}

// Validate reports an error for inconsistent configurations.
func (c Config) Validate() error {
	switch {
	case c.MinPages < 1 || c.MaxPages < c.MinPages:
		return fmt.Errorf("workload: bad page range [%d,%d]", c.MinPages, c.MaxPages)
	case c.WriteFrac < 0 || c.WriteFrac > 1:
		return fmt.Errorf("workload: bad write fraction %v", c.WriteFrac)
	case c.DBPages < c.MaxPages:
		return fmt.Errorf("workload: database (%d pages) smaller than largest transaction (%d)",
			c.DBPages, c.MaxPages)
	case c.Skew != 0 && c.Skew <= 1:
		return fmt.Errorf("workload: Zipf skew must be > 1.0, got %v", c.Skew)
	case c.Skew != 0 && c.Sequential:
		return fmt.Errorf("workload: skew applies only to random reference strings")
	}
	return nil
}

// Generate produces n transactions drawn from c using rng. The result is
// deterministic for a given seed.
func Generate(n int, c Config, rng *sim.RNG) ([]*Txn, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	txns := make([]*Txn, n)
	for i := range txns {
		txns[i] = generateOne(i, c, rng)
	}
	return txns, nil
}

func generateOne(id int, c Config, rng *sim.RNG) *Txn {
	npages := rng.UniformInt(c.MinPages, c.MaxPages)
	t := &Txn{ID: id, Writes: make(map[PageID]bool)}
	switch {
	case c.Sequential:
		start := rng.Intn(c.DBPages - npages + 1)
		t.Reads = make([]PageID, npages)
		for j := range t.Reads {
			t.Reads[j] = PageID(start + j)
		}
	case c.Skew > 1:
		// Zipf-skewed distinct sample by rejection.
		seen := make(map[PageID]bool, npages)
		for len(t.Reads) < npages {
			p := PageID(rng.Zipf(c.Skew, c.DBPages))
			if !seen[p] {
				seen[p] = true
				t.Reads = append(t.Reads, p)
			}
		}
	default:
		sample := rng.SampleDistinct(npages, c.DBPages)
		t.Reads = make([]PageID, npages)
		for j, p := range sample {
			t.Reads[j] = PageID(p)
		}
	}
	// Write set: a random WriteFrac subset of the read set. Rounded to the
	// nearest page so a 1-page transaction updates a page 20 % of the time.
	nwrites := int(float64(npages)*c.WriteFrac + 0.5)
	if nwrites == 0 && c.WriteFrac > 0 && rng.Bool(float64(npages)*c.WriteFrac) {
		nwrites = 1
	}
	for _, idx := range rng.SampleDistinct(nwrites, npages) {
		t.Writes[t.Reads[idx]] = true
	}
	return t
}

// TotalReads sums the read set sizes of txns.
func TotalReads(txns []*Txn) int {
	total := 0
	for _, t := range txns {
		total += t.NumReads()
	}
	return total
}

// TotalWrites sums the write set sizes of txns.
func TotalWrites(txns []*Txn) int {
	total := 0
	for _, t := range txns {
		total += t.NumWrites()
	}
	return total
}

// SortedWrites returns the transaction's write set in ascending page order;
// useful for deterministic iteration.
func (t *Txn) SortedWrites() []PageID {
	out := make([]PageID, 0, len(t.Writes))
	for p := range t.Writes {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
