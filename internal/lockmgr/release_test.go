package lockmgr

import (
	"errors"
	"testing"
	"time"
)

// TestReleaseAllScrubsQueuedWaiterWithError is the regression test for the
// spurious-success wakeup: a waiter parked in a page queue whose transaction
// has ReleaseAll run (the deadlock-victim race ReleaseAll's queue scrub
// exists for) must NOT see its Lock call return nil — the lock was never
// granted, and pre-fix the scrub closed the ready channel without setting
// an error, so the caller believed it held the lock.
func TestReleaseAllScrubsQueuedWaiterWithError(t *testing.T) {
	m := New()
	if err := m.Lock(1, 10, Exclusive); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- m.Lock(2, 10, Exclusive) }()
	waitForWaits(t, m, 1)

	// Race ReleaseAll(2) against the parked Lock(2, ...): the scrub finds
	// txn 2 queued on page 10 and must wake it with an error.
	m.ReleaseAll(2)

	var err error
	select {
	case err = <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("scrubbed waiter never woke")
	}
	if err == nil {
		t.Fatal("Lock reported success but the lock was never granted (spurious-success wakeup)")
	}
	if !errors.Is(err, ErrReleased) {
		t.Fatalf("Lock returned %v, want ErrReleased", err)
	}
	if m.Holds(2, 10, Shared) || m.Holds(2, 10, Exclusive) {
		t.Fatal("scrubbed waiter holds the lock it was never granted")
	}

	// The lock world must still be coherent: txn 1 still holds page 10,
	// releases it, and a third transaction acquires it cleanly.
	if !m.Holds(1, 10, Exclusive) {
		t.Fatal("holder lost its lock during the scrub")
	}
	m.ReleaseAll(1)
	if err := lockOrTimeout(t, m, 3, 10, Exclusive); err != nil {
		t.Fatalf("fresh transaction cannot lock after scrub: %v", err)
	}
}

// TestReleaseAllScrubWakesBlockedWaiters: scrubbing a queued waiter must
// re-run the wake pass so transactions queued behind the scrubbed entry are
// granted, not leaked.
func TestReleaseAllScrubWakesBlockedWaiters(t *testing.T) {
	m := New()
	if err := m.Lock(1, 10, Shared); err != nil {
		t.Fatal(err)
	}
	// Txn 2 queues for X behind the S holder; txn 3 queues for S behind
	// txn 2 (FIFO: an S request behind a queued X must wait).
	got2 := make(chan error, 1)
	go func() { got2 <- m.Lock(2, 10, Exclusive) }()
	waitForWaits(t, m, 1)
	got3 := make(chan error, 1)
	go func() { got3 <- m.Lock(3, 10, Shared) }()
	waitForWaits(t, m, 2)

	// Scrubbing txn 2 out of the queue must grant txn 3's compatible S.
	m.ReleaseAll(2)
	if err := <-got2; !errors.Is(err, ErrReleased) {
		t.Fatalf("scrubbed waiter returned %v, want ErrReleased", err)
	}
	select {
	case err := <-got3:
		if err != nil {
			t.Fatalf("waiter behind scrubbed entry returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter behind scrubbed entry never granted")
	}
	if !m.Holds(3, 10, Shared) {
		t.Fatal("waiter behind scrubbed entry not granted")
	}
}
