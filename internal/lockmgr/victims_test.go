package lockmgr

import (
	"errors"
	"testing"
	"time"
)

// waitForWaits polls until the manager has seen at least n lock waits; the
// scripted deadlock scenarios use it to pin down the wait graph before the
// closing request arrives.
func waitForWaits(t *testing.T, m *Manager, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if w, _ := m.Stats(); w >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("wait graph never reached %d waits", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWaitingVictimEvicted pins the youngest-on-cycle rule when the victim
// is not the requester: the youngest transaction is already parked in a
// queue, and the cycle is closed by an older one. The parked Lock call must
// return ErrDeadlock while the older requester waits and is then granted.
func TestWaitingVictimEvicted(t *testing.T) {
	m := New()
	if err := m.Lock(1, 10, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, 20, Exclusive); err != nil {
		t.Fatal(err)
	}
	// T2 (youngest) waits for p10 held by T1.
	victimErr := make(chan error, 1)
	go func() { victimErr <- m.Lock(2, 10, Exclusive) }()
	waitForWaits(t, m, 1)

	// T1 closes the cycle {1,2}. Victim is T2 — the parked waiter — so T1's
	// own request must block until T2 aborts, then be granted.
	granted := make(chan error, 1)
	go func() { granted <- m.Lock(1, 20, Exclusive) }()

	select {
	case err := <-victimErr:
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("victim err = %v, want ErrDeadlock", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked victim never received ErrDeadlock")
	}
	m.ReleaseAll(2) // the victim's caller aborts it

	select {
	case err := <-granted:
		if err != nil {
			t.Fatalf("survivor err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("survivor never granted after victim abort")
	}
	if !m.Holds(1, 20, Exclusive) {
		t.Fatal("survivor does not hold the contested lock")
	}
	if got := m.Victims(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("victims = %v, want [2]", got)
	}
}

// runThreeCycle builds the same three-transaction cycle every time —
// T3 holds p3 and waits for p1, T2 holds p2 and waits for p3, then T1
// (holding p1) requests p2 — and returns the victim trace.
func runThreeCycle(t *testing.T) []TxnID {
	t.Helper()
	m := New()
	for i := int64(1); i <= 3; i++ {
		if err := m.Lock(TxnID(i), PageID(i), Exclusive); err != nil {
			t.Fatal(err)
		}
	}
	errs := make(chan error, 2)
	go func() { errs <- m.Lock(3, 1, Exclusive) }()
	waitForWaits(t, m, 1)
	go func() { errs <- m.Lock(2, 3, Exclusive) }()
	waitForWaits(t, m, 2)

	// T1 closes the cycle {1,2,3}; the youngest (T3) must be the victim even
	// though it is parked two edges away from the detecting request.
	grant := make(chan error, 1)
	go func() { grant <- m.Lock(1, 2, Exclusive) }()
	select {
	case err := <-errs:
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("victim err = %v, want ErrDeadlock", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no victim evicted")
	}
	m.ReleaseAll(3)
	// With T3 gone, T2 gets p3, and once T2 is released T1 gets p2.
	select {
	case err := <-errs:
		if err != nil {
			t.Fatalf("T2 err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("T2 never granted")
	}
	m.ReleaseAll(2)
	select {
	case err := <-grant:
		if err != nil {
			t.Fatalf("T1 err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("T1 never granted")
	}
	m.ReleaseAll(1)
	return m.Victims()
}

// TestVictimTraceDeterministic is the regression test for ROADMAP open item
// 1: the same wait graph must elect the same victim on every run, no matter
// how goroutines interleave or maps iterate. Before the ordered-traversal
// fix, which transaction aborted differed run to run.
func TestVictimTraceDeterministic(t *testing.T) {
	first := runThreeCycle(t)
	if len(first) != 1 || first[0] != 3 {
		t.Fatalf("victims = %v, want [3] (youngest on cycle)", first)
	}
	for i := 0; i < 49; i++ {
		got := runThreeCycle(t)
		if len(got) != len(first) || got[0] != first[0] {
			t.Fatalf("run %d: victims = %v, first run had %v", i+2, got, first)
		}
	}
}
