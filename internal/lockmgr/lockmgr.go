// Package lockmgr is a page-level two-phase-locking lock manager for the
// functional recovery engines: shared/exclusive modes, lock upgrades, FIFO
// queuing, and waits-for-graph deadlock detection. It plays the role the
// back-end controller's scheduler plays in the paper's database machine.
package lockmgr

import (
	"errors"
	"fmt"
	"sync"
)

// TxnID identifies a transaction; 0 is reserved.
type TxnID uint64

// PageID identifies a lockable page.
type PageID int64

// Mode is a lock mode.
type Mode int

const (
	// Shared permits concurrent readers.
	Shared Mode = iota
	// Exclusive permits one writer.
	Exclusive
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Exclusive {
		return "X"
	}
	return "S"
}

// ErrDeadlock is returned to the transaction chosen as the deadlock victim;
// the caller must abort it.
var ErrDeadlock = errors.New("lockmgr: deadlock detected; abort this transaction")

type waiter struct {
	txn   TxnID
	mode  Mode
	ready chan struct{}
}

type lockState struct {
	sHolders map[TxnID]bool
	xHolder  TxnID
	queue    []*waiter
}

// Manager is the lock manager. Create with New; safe for concurrent use.
type Manager struct {
	mu    sync.Mutex
	locks map[PageID]*lockState
	held  map[TxnID]map[PageID]Mode
	// waitsOn[t] is the set of transactions t currently waits for.
	waitsOn map[TxnID]map[TxnID]bool

	waits     int64
	deadlocks int64
}

// New returns an empty lock manager.
func New() *Manager {
	return &Manager{
		locks:   make(map[PageID]*lockState),
		held:    make(map[TxnID]map[PageID]Mode),
		waitsOn: make(map[TxnID]map[TxnID]bool),
	}
}

// Lock acquires page p in mode for txn, blocking until granted. It returns
// ErrDeadlock if waiting would close a cycle; the caller must then abort the
// transaction (release its locks) to unblock the others.
func (m *Manager) Lock(txn TxnID, p PageID, mode Mode) error {
	if txn == 0 {
		return fmt.Errorf("lockmgr: TxnID 0 is reserved")
	}
	m.mu.Lock()
	ls := m.lockState(p)

	// Re-entrant and upgrade cases.
	if cur, ok := m.held[txn][p]; ok {
		if cur == Exclusive || mode == Shared {
			m.mu.Unlock()
			return nil
		}
		// Upgrade S -> X: compatible once txn is the only holder.
		if ls.xHolder == 0 && len(ls.sHolders) == 1 && ls.sHolders[txn] {
			ls.xHolder = txn
			delete(ls.sHolders, txn)
			m.held[txn][p] = Exclusive
			m.mu.Unlock()
			return nil
		}
	}

	if m.compatible(ls, txn, mode) && len(ls.queue) == 0 {
		m.grant(ls, txn, p, mode)
		m.mu.Unlock()
		return nil
	}

	// Must wait: record waits-for edges and check for a cycle.
	w := &waiter{txn: txn, mode: mode, ready: make(chan struct{})}
	blockers := m.blockers(ls, txn)
	if m.wouldDeadlock(txn, blockers) {
		m.deadlocks++
		m.mu.Unlock()
		return ErrDeadlock
	}
	edges := m.waitsOn[txn]
	if edges == nil {
		edges = make(map[TxnID]bool)
		m.waitsOn[txn] = edges
	}
	for b := range blockers {
		edges[b] = true
	}
	ls.queue = append(ls.queue, w)
	m.waits++
	m.mu.Unlock()

	<-w.ready
	return nil
}

// blockers returns every transaction that currently prevents txn from being
// granted on ls: the incompatible holders plus all queued waiters ahead.
func (m *Manager) blockers(ls *lockState, txn TxnID) map[TxnID]bool {
	out := make(map[TxnID]bool)
	if ls.xHolder != 0 && ls.xHolder != txn {
		out[ls.xHolder] = true
	}
	for t := range ls.sHolders {
		if t != txn {
			out[t] = true
		}
	}
	for _, w := range ls.queue {
		if w.txn != txn {
			out[w.txn] = true
		}
	}
	return out
}

// wouldDeadlock reports whether adding edges txn->blockers closes a cycle in
// the waits-for graph.
func (m *Manager) wouldDeadlock(txn TxnID, blockers map[TxnID]bool) bool {
	// DFS from each blocker looking for txn.
	seen := map[TxnID]bool{}
	var dfs func(t TxnID) bool
	dfs = func(t TxnID) bool {
		if t == txn {
			return true
		}
		if seen[t] {
			return false
		}
		seen[t] = true
		for next := range m.waitsOn[t] {
			if dfs(next) {
				return true
			}
		}
		return false
	}
	for b := range blockers {
		if dfs(b) {
			return true
		}
	}
	return false
}

func (m *Manager) lockState(p PageID) *lockState {
	ls := m.locks[p]
	if ls == nil {
		ls = &lockState{sHolders: make(map[TxnID]bool)}
		m.locks[p] = ls
	}
	return ls
}

func (m *Manager) compatible(ls *lockState, txn TxnID, mode Mode) bool {
	if ls.xHolder != 0 && ls.xHolder != txn {
		return false
	}
	if mode == Exclusive {
		if ls.xHolder != 0 && ls.xHolder != txn {
			return false
		}
		for t := range ls.sHolders {
			if t != txn {
				return false
			}
		}
	}
	return true
}

func (m *Manager) grant(ls *lockState, txn TxnID, p PageID, mode Mode) {
	if mode == Exclusive {
		ls.xHolder = txn
		delete(ls.sHolders, txn)
	} else if ls.xHolder != txn {
		ls.sHolders[txn] = true
	}
	hm := m.held[txn]
	if hm == nil {
		hm = make(map[PageID]Mode)
		m.held[txn] = hm
	}
	// Record the strongest mode held.
	if cur, ok := hm[p]; !ok || (cur == Shared && mode == Exclusive) {
		hm[p] = mode
	}
}

// ReleaseAll releases every lock txn holds and removes it from all queues,
// then grants any newly-eligible waiters. Transactions call it at commit or
// abort.
func (m *Manager) ReleaseAll(txn TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.waitsOn, txn)
	for p := range m.held[txn] {
		ls := m.locks[p]
		if ls == nil {
			continue
		}
		if ls.xHolder == txn {
			ls.xHolder = 0
		}
		delete(ls.sHolders, txn)
		m.wake(ls, p)
		m.cleanup(p, ls)
	}
	delete(m.held, txn)
	// txn may also sit in queues of pages it does not hold (it should not,
	// because Lock blocks, but a deadlock victim might have raced). Scrub.
	for p, ls := range m.locks {
		changed := false
		rest := ls.queue[:0]
		for _, w := range ls.queue {
			if w.txn == txn {
				changed = true
				close(w.ready)
				continue
			}
			rest = append(rest, w)
		}
		ls.queue = rest
		if changed {
			m.wake(ls, p)
			m.cleanup(p, ls)
		}
	}
	// Remove txn from everyone's waits-for sets.
	for _, edges := range m.waitsOn {
		delete(edges, txn)
	}
}

// wake grants queued waiters FIFO while compatible.
func (m *Manager) wake(ls *lockState, p PageID) {
	for len(ls.queue) > 0 {
		w := ls.queue[0]
		if !m.compatible(ls, w.txn, w.mode) {
			return
		}
		ls.queue = ls.queue[1:]
		m.grant(ls, w.txn, p, w.mode)
		// The waiter no longer waits on anyone for this page.
		delete(m.waitsOn, w.txn)
		close(w.ready)
		if w.mode == Exclusive {
			return
		}
	}
}

func (m *Manager) cleanup(p PageID, ls *lockState) {
	if ls.xHolder == 0 && len(ls.sHolders) == 0 && len(ls.queue) == 0 {
		delete(m.locks, p)
	}
}

// Holds reports whether txn currently holds p in at least mode.
func (m *Manager) Holds(txn TxnID, p PageID, mode Mode) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur, ok := m.held[txn][p]
	if !ok {
		return false
	}
	return mode == Shared || cur == Exclusive
}

// Stats reports the number of waits and deadlocks observed.
func (m *Manager) Stats() (waits, deadlocks int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.waits, m.deadlocks
}
