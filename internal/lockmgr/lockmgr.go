// Package lockmgr is a page-level two-phase-locking lock manager for the
// functional recovery engines: shared/exclusive modes, lock upgrades, FIFO
// queuing, and waits-for-graph deadlock detection. It plays the role the
// back-end controller's scheduler plays in the paper's database machine.
//
// Deadlock-victim rule: when a lock request would close a cycle in the
// waits-for graph, the victim is the youngest transaction on that cycle —
// the one with the highest TxnID, which (TxnIDs being allocated in Begin
// order) has done the least work. The rule is a pure function of the cycle's
// membership, computed by depth-first search over sorted adjacency lists, so
// which transaction aborts never depends on map iteration order or on which
// request happened to detect the cycle: same wait graph, same victim, every
// run. The chosen victim's Lock call returns ErrDeadlock — whether it is the
// requester that closed the cycle or a transaction already parked in a
// queue — and the caller must abort it (ReleaseAll) to unblock the rest.
package lockmgr

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// TxnID identifies a transaction; 0 is reserved.
type TxnID uint64

// PageID identifies a lockable page.
type PageID int64

// Mode is a lock mode.
type Mode int

const (
	// Shared permits concurrent readers.
	Shared Mode = iota
	// Exclusive permits one writer.
	Exclusive
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Exclusive {
		return "X"
	}
	return "S"
}

// ErrDeadlock is returned to the transaction chosen as the deadlock victim;
// the caller must abort it.
var ErrDeadlock = errors.New("lockmgr: deadlock detected; abort this transaction")

// ErrReleased is returned by a Lock call that was still queued when
// ReleaseAll ran for the same transaction: the lock was never granted, and
// the transaction's locks are gone. Only a caller that races Lock against
// its own commit/abort can observe it; the error exists so that race can
// never be mistaken for a successful grant.
var ErrReleased = errors.New("lockmgr: transaction released while waiting; lock not granted")

type waiter struct {
	txn   TxnID
	mode  Mode
	ready chan struct{}
	// err is set (before ready is closed) when the waiter was chosen as a
	// deadlock victim instead of being granted.
	err error
}

type lockState struct {
	sHolders map[TxnID]bool
	xHolder  TxnID
	queue    []*waiter
}

// Manager is the lock manager. Create with New; safe for concurrent use.
type Manager struct {
	mu    sync.Mutex
	locks map[PageID]*lockState
	held  map[TxnID]map[PageID]Mode
	// waitsOn[t] is the set of transactions t currently waits for.
	waitsOn map[TxnID]map[TxnID]bool

	waits     int64
	deadlocks int64
	victims   []TxnID // deadlock victims in detection order
}

// New returns an empty lock manager.
func New() *Manager {
	return &Manager{
		locks:   make(map[PageID]*lockState),
		held:    make(map[TxnID]map[PageID]Mode),
		waitsOn: make(map[TxnID]map[TxnID]bool),
	}
}

// Lock acquires page p in mode for txn, blocking until granted. When
// waiting would close a cycle in the waits-for graph, the youngest
// transaction on that cycle (highest TxnID) is chosen as the victim and its
// Lock call returns ErrDeadlock — that may be this call, or a call already
// parked in a queue. The victim's caller must abort it (release its locks)
// to unblock the others.
func (m *Manager) Lock(txn TxnID, p PageID, mode Mode) error {
	if txn == 0 {
		return fmt.Errorf("lockmgr: TxnID 0 is reserved")
	}
	m.mu.Lock()
	ls := m.lockState(p)

	// Re-entrant and upgrade cases.
	if cur, ok := m.held[txn][p]; ok {
		if cur == Exclusive || mode == Shared {
			m.mu.Unlock()
			return nil
		}
		// Upgrade S -> X: compatible once txn is the only holder.
		if ls.xHolder == 0 && len(ls.sHolders) == 1 && ls.sHolders[txn] {
			ls.xHolder = txn
			delete(ls.sHolders, txn)
			m.held[txn][p] = Exclusive
			m.mu.Unlock()
			return nil
		}
	}

	for {
		if m.compatible(ls, txn, mode) && len(ls.queue) == 0 {
			m.grant(ls, txn, p, mode)
			m.mu.Unlock()
			return nil
		}

		// Must wait: adding the edges txn -> blockers may close a cycle.
		blockers := m.blockers(ls, txn)
		cycle := m.cycle(txn, blockers)
		if len(cycle) == 0 {
			edges := m.waitsOn[txn]
			if edges == nil {
				edges = make(map[TxnID]bool)
				m.waitsOn[txn] = edges
			}
			for b := range blockers {
				edges[b] = true
			}
			w := &waiter{txn: txn, mode: mode, ready: make(chan struct{})}
			ls.queue = append(ls.queue, w)
			m.waits++
			m.mu.Unlock()

			<-w.ready
			return w.err
		}

		// Deadlock. The victim is the youngest (highest TxnID) transaction
		// on the cycle — a rule that depends only on the cycle's membership,
		// never on which request detected it.
		victim := cycle[len(cycle)-1] // cycle is sorted ascending
		m.deadlocks++
		m.victims = append(m.victims, victim)
		if victim == txn {
			m.mu.Unlock()
			return ErrDeadlock
		}
		// The victim is parked in some queue. Hand it ErrDeadlock and retry:
		// removing its wait edges breaks this cycle, though its held locks
		// still block us until its caller aborts it.
		m.evict(victim)
	}
}

// evict hands ErrDeadlock to a parked victim: its queue entries are removed
// (waking any waiters they blocked), its outgoing wait edges disappear, and
// its blocked Lock call returns the error. Its held locks stay put until the
// caller-side abort runs ReleaseAll. Callers hold m.mu.
func (m *Manager) evict(victim TxnID) {
	delete(m.waitsOn, victim)
	for _, p := range m.lockedPages() {
		ls := m.locks[p]
		changed := false
		rest := ls.queue[:0]
		for _, w := range ls.queue {
			if w.txn == victim {
				changed = true
				w.err = ErrDeadlock
				close(w.ready)
				continue
			}
			rest = append(rest, w)
		}
		ls.queue = rest
		if changed {
			m.wake(ls, p)
			m.cleanup(p, ls)
		}
	}
}

// lockedPages returns the pages with lock state in ascending order, so
// queue scrubs wake waiters in a reproducible sequence.
func (m *Manager) lockedPages() []PageID {
	out := make([]PageID, 0, len(m.locks))
	for p := range m.locks {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// blockers returns every transaction that currently prevents txn from being
// granted on ls: the incompatible holders plus all queued waiters ahead.
func (m *Manager) blockers(ls *lockState, txn TxnID) map[TxnID]bool {
	out := make(map[TxnID]bool)
	if ls.xHolder != 0 && ls.xHolder != txn {
		out[ls.xHolder] = true
	}
	for t := range ls.sHolders {
		if t != txn {
			out[t] = true
		}
	}
	for _, w := range ls.queue {
		if w.txn != txn {
			out[w.txn] = true
		}
	}
	return out
}

// cycle reports the transactions on the waits-for cycle(s) that adding the
// edges txn -> blockers would close, in ascending TxnID order (txn itself
// included); it returns nil when no cycle would form. Adjacency is traversed
// in sorted order, so the result — and therefore the victim choice — is
// independent of map iteration order.
func (m *Manager) cycle(txn TxnID, blockers map[TxnID]bool) []TxnID {
	// reaches memoizes whether txn is reachable from a node along existing
	// edges. The existing graph is acyclic (cycles are refused at creation),
	// so the provisional "no" entry only guards against repeated work.
	memo := map[TxnID]int{} // 0 unknown, 1 reaches txn, 2 does not
	var reaches func(t TxnID) bool
	reaches = func(t TxnID) bool {
		if t == txn {
			return true
		}
		switch memo[t] {
		case 1:
			return true
		case 2:
			return false
		}
		memo[t] = 2
		for _, next := range sortedIDs(m.waitsOn[t]) {
			if reaches(next) {
				memo[t] = 1
				return true
			}
		}
		return false
	}
	// A node is on a new cycle exactly when it lies on a path from some
	// blocker back to txn: reachable from a blocker through nodes that all
	// reach txn, and reaching txn itself.
	onCycle := map[TxnID]bool{}
	var mark func(t TxnID)
	mark = func(t TxnID) {
		if t == txn || onCycle[t] || !reaches(t) {
			return
		}
		onCycle[t] = true
		for _, next := range sortedIDs(m.waitsOn[t]) {
			mark(next)
		}
	}
	for _, b := range sortedIDs(blockers) {
		mark(b)
	}
	if len(onCycle) == 0 {
		return nil
	}
	onCycle[txn] = true
	return sortedIDs(onCycle)
}

// sortedIDs returns the set's members in ascending order.
func sortedIDs(set map[TxnID]bool) []TxnID {
	out := make([]TxnID, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (m *Manager) lockState(p PageID) *lockState {
	ls := m.locks[p]
	if ls == nil {
		ls = &lockState{sHolders: make(map[TxnID]bool)}
		m.locks[p] = ls
	}
	return ls
}

func (m *Manager) compatible(ls *lockState, txn TxnID, mode Mode) bool {
	if ls.xHolder != 0 && ls.xHolder != txn {
		return false
	}
	if mode == Exclusive {
		if ls.xHolder != 0 && ls.xHolder != txn {
			return false
		}
		for t := range ls.sHolders {
			if t != txn {
				return false
			}
		}
	}
	return true
}

func (m *Manager) grant(ls *lockState, txn TxnID, p PageID, mode Mode) {
	if mode == Exclusive {
		ls.xHolder = txn
		delete(ls.sHolders, txn)
	} else if ls.xHolder != txn {
		ls.sHolders[txn] = true
	}
	hm := m.held[txn]
	if hm == nil {
		hm = make(map[PageID]Mode)
		m.held[txn] = hm
	}
	// Record the strongest mode held.
	if cur, ok := hm[p]; !ok || (cur == Shared && mode == Exclusive) {
		hm[p] = mode
	}
}

// ReleaseAll releases every lock txn holds and removes it from all queues,
// then grants any newly-eligible waiters. Transactions call it at commit or
// abort.
func (m *Manager) ReleaseAll(txn TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.waitsOn, txn)
	held := make([]PageID, 0, len(m.held[txn]))
	for p := range m.held[txn] {
		held = append(held, p)
	}
	sort.Slice(held, func(i, j int) bool { return held[i] < held[j] })
	for _, p := range held {
		ls := m.locks[p]
		if ls == nil {
			continue
		}
		if ls.xHolder == txn {
			ls.xHolder = 0
		}
		delete(ls.sHolders, txn)
		m.wake(ls, p)
		m.cleanup(p, ls)
	}
	delete(m.held, txn)
	// txn may also sit in queues of pages it does not hold (it should not,
	// because Lock blocks, but a deadlock victim might have raced). Scrub,
	// in page order so wake-ups replay identically run to run. The scrubbed
	// waiter was never granted, so its parked Lock call must not return
	// nil: hand it ErrReleased before waking it, exactly as evict hands
	// ErrDeadlock to victims.
	for _, p := range m.lockedPages() {
		ls := m.locks[p]
		changed := false
		rest := ls.queue[:0]
		for _, w := range ls.queue {
			if w.txn == txn {
				changed = true
				w.err = ErrReleased
				close(w.ready)
				continue
			}
			rest = append(rest, w)
		}
		ls.queue = rest
		if changed {
			m.wake(ls, p)
			m.cleanup(p, ls)
		}
	}
	// Remove txn from everyone's waits-for sets.
	for _, edges := range m.waitsOn {
		delete(edges, txn)
	}
}

// wake grants queued waiters FIFO while compatible.
func (m *Manager) wake(ls *lockState, p PageID) {
	for len(ls.queue) > 0 {
		w := ls.queue[0]
		if !m.compatible(ls, w.txn, w.mode) {
			return
		}
		ls.queue = ls.queue[1:]
		m.grant(ls, w.txn, p, w.mode)
		// The waiter no longer waits on anyone for this page.
		delete(m.waitsOn, w.txn)
		close(w.ready)
		if w.mode == Exclusive {
			return
		}
	}
}

func (m *Manager) cleanup(p PageID, ls *lockState) {
	if ls.xHolder == 0 && len(ls.sHolders) == 0 && len(ls.queue) == 0 {
		delete(m.locks, p)
	}
}

// Holds reports whether txn currently holds p in at least mode.
func (m *Manager) Holds(txn TxnID, p PageID, mode Mode) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur, ok := m.held[txn][p]
	if !ok {
		return false
	}
	return mode == Shared || cur == Exclusive
}

// Stats reports the number of waits and deadlocks observed.
func (m *Manager) Stats() (waits, deadlocks int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.waits, m.deadlocks
}

// Victims returns the deadlock victims chosen so far, in detection order.
// With the youngest-on-cycle rule the trace is a pure function of the wait
// graphs that formed, so same-seed runs produce identical traces.
func (m *Manager) Victims() []TxnID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]TxnID(nil), m.victims...)
}
