package lockmgr

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// lockOrTimeout runs Lock in a goroutine and fails the test on hang.
func lockOrTimeout(t *testing.T, m *Manager, txn TxnID, p PageID, mode Mode) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- m.Lock(txn, p, mode) }()
	select {
	case err := <-done:
		return err
	case <-time.After(5 * time.Second):
		t.Fatal("lock call hung")
		return nil
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	m := New()
	if err := m.Lock(1, 10, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, 10, Shared); err != nil {
		t.Fatal(err)
	}
	if !m.Holds(1, 10, Shared) || !m.Holds(2, 10, Shared) {
		t.Fatal("shared locks not held")
	}
}

func TestExclusiveBlocks(t *testing.T) {
	m := New()
	if err := m.Lock(1, 10, Exclusive); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan struct{})
	go func() {
		if err := m.Lock(2, 10, Exclusive); err != nil {
			t.Error(err)
		}
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("second X lock granted while first held")
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleaseAll(1)
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never granted after release")
	}
}

func TestReentrantAndUpgrade(t *testing.T) {
	m := New()
	if err := m.Lock(1, 10, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(1, 10, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(1, 10, Exclusive); err != nil {
		t.Fatal(err) // sole holder upgrades immediately
	}
	if !m.Holds(1, 10, Exclusive) {
		t.Fatal("upgrade not recorded")
	}
	// X holder can re-request anything.
	if err := m.Lock(1, 10, Shared); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := New()
	if err := m.Lock(1, 10, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, 20, Exclusive); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// T1 waits for T2.
		if err := m.Lock(1, 20, Exclusive); err != nil {
			t.Errorf("t1: %v", err)
		}
	}()
	time.Sleep(50 * time.Millisecond)
	// T2 -> T1 closes the cycle; T2 must be refused.
	err := lockOrTimeout(t, m, 2, 10, Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	m.ReleaseAll(2) // victim aborts; T1 proceeds
	wg.Wait()
	if _, d := m.Stats(); d != 1 {
		t.Fatalf("deadlocks = %d", d)
	}
}

func TestFIFOGrantOrder(t *testing.T) {
	m := New()
	if err := m.Lock(1, 10, Exclusive); err != nil {
		t.Fatal(err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 2; i <= 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := m.Lock(TxnID(i), 10, Exclusive); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			m.ReleaseAll(TxnID(i))
		}()
		time.Sleep(30 * time.Millisecond) // establish queue order
	}
	m.ReleaseAll(1)
	wg.Wait()
	if len(order) != 3 || order[0] != 2 || order[1] != 3 || order[2] != 4 {
		t.Fatalf("grant order %v", order)
	}
}

func TestSharedWaitersGrantedTogether(t *testing.T) {
	m := New()
	if err := m.Lock(1, 10, Exclusive); err != nil {
		t.Fatal(err)
	}
	var granted int32
	var wg sync.WaitGroup
	for i := 2; i <= 5; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := m.Lock(TxnID(i), 10, Shared); err != nil {
				t.Error(err)
				return
			}
			atomic.AddInt32(&granted, 1)
		}()
	}
	time.Sleep(50 * time.Millisecond)
	if atomic.LoadInt32(&granted) != 0 {
		t.Fatal("shared locks granted while X held")
	}
	m.ReleaseAll(1)
	wg.Wait()
	if granted != 4 {
		t.Fatalf("granted = %d", granted)
	}
}

func TestConcurrentStress(t *testing.T) {
	// Many goroutines locking random pages in ascending order (no
	// deadlocks possible); the counter under each page must never tear.
	m := New()
	const pages = 8
	counters := make([]int64, pages)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				txn := TxnID(g*1000 + i + 1)
				for p := 0; p < pages; p++ {
					if err := m.Lock(txn, PageID(p), Exclusive); err != nil {
						t.Error(err)
						return
					}
					counters[p]++ // data race iff locking is broken
					if i%10 == 0 && p == 0 {
						time.Sleep(time.Microsecond) // force overlap
					}
				}
				m.ReleaseAll(txn)
			}
		}()
	}
	close(start)
	wg.Wait()
	for p, c := range counters {
		if c != 16*50 {
			t.Fatalf("page %d counter = %d, want %d", p, c, 16*50)
		}
	}
	if w, _ := m.Stats(); w == 0 {
		t.Error("stress run saw no lock waits")
	}
}

func TestTxnZeroRejected(t *testing.T) {
	m := New()
	if err := m.Lock(0, 1, Shared); err == nil {
		t.Fatal("TxnID 0 accepted")
	}
}

func TestModeString(t *testing.T) {
	if Shared.String() != "S" || Exclusive.String() != "X" {
		t.Fatal("mode names wrong")
	}
}

func TestUpgradeDeadlockDetected(t *testing.T) {
	// The classic conversion deadlock: two shared holders both request the
	// upgrade to exclusive. One must be refused as the victim.
	m := New()
	if err := m.Lock(1, 10, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, 10, Shared); err != nil {
		t.Fatal(err)
	}
	first := make(chan error, 1)
	go func() { first <- m.Lock(1, 10, Exclusive) }()
	time.Sleep(50 * time.Millisecond) // T1 is now waiting on T2
	err2 := lockOrTimeout(t, m, 2, 10, Exclusive)
	if !errors.Is(err2, ErrDeadlock) {
		t.Fatalf("second upgrader: %v, want ErrDeadlock", err2)
	}
	m.ReleaseAll(2) // victim aborts; T1's upgrade proceeds
	select {
	case err := <-first:
		if err != nil {
			t.Fatalf("first upgrader: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("first upgrader never granted")
	}
	if !m.Holds(1, 10, Exclusive) {
		t.Fatal("upgrade not recorded")
	}
}
