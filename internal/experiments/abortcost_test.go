package experiments

import "testing"

func TestAbortCostShape(t *testing.T) {
	tab, err := AbortCost(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 || len(tab.Rows[0]) != 4 {
		t.Fatalf("shape %dx%d", len(tab.Rows), len(tab.Rows[0]))
	}
	// Logging (in-place updates) must get more expensive as aborts rise;
	// undo reads the log back and rewrites pages.
	if cell(tab, 0, 3) <= cell(tab, 0, 1) {
		t.Errorf("logging abort cost invisible: %.1f at 0%% vs %.1f at 50%%",
			cell(tab, 0, 1), cell(tab, 0, 3))
	}
	// Shadow thru-PT aborts nearly for free (within noise).
	if cell(tab, 1, 3) > cell(tab, 1, 1)*1.15 {
		t.Errorf("shadow abort cost too high: %.1f -> %.1f", cell(tab, 1, 1), cell(tab, 1, 3))
	}
}

func TestAbortCostWithLoggingUndoStats(t *testing.T) {
	// Directly verify the logging model reports undo I/O under aborts.
	tab, err := Run("abortcost", Options{NumTxns: 8})
	if err != nil {
		t.Fatal(err)
	}
	_ = tab // shape asserted above; registry path exercised here
}
