package experiments

import (
	"fmt"

	"repro/internal/diffeng"
	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/pagestore"
	"repro/internal/recovery/logging"
	"repro/internal/runpool"
	"repro/internal/shadoweng"
	"repro/internal/wal"
)

// The experiments in this file go beyond the paper's tables: they ablate
// the calibration choices DESIGN.md documents (multiprogramming level,
// cache size, log-fragment size), probe a hot-spot workload the paper
// leaves open, and measure the cost the paper explicitly trades away —
// recovery time itself — on the functional engines.

func init() {
	registry["mpl"] = MPLSweep
	registry["frames"] = FrameSweep
	registry["fragsize"] = FragmentSweep
	registry["writefrac"] = WriteFracSweep
	registry["skew"] = SkewSweep
	registry["funcrecovery"] = FuncRecovery
}

// WriteFracSweep ablates the write-set fraction (the paper fixes it at 20%
// of the read set) under parallel logging.
func WriteFracSweep(opt Options) (*Table, error) {
	t := &Table{
		ID:      "writefrac",
		Title:   "Ablation: write-set fraction (parallel logging, 1 log disk)",
		Columns: []string{"Configuration", "10% e/p", "20% e/p", "40% e/p", "40% log util"},
		Notes:   "more updates mean more write-backs and more log traffic; the paper's 20% keeps the log disk nearly idle",
	}
	fracs := []float64{0.10, 0.20, 0.40}
	res, err := runCells(opt, len(fourConfigs)*len(fracs), func(i int) (machine.Config, machine.Model) {
		cfg := fourConfigs[i/len(fracs)].config(opt)
		cfg.Workload.WriteFrac = fracs[i%len(fracs)]
		return cfg, logging.New(logging.Config{})
	})
	if err != nil {
		return nil, err
	}
	for ci, c := range fourConfigs {
		row := []string{c.Name}
		for fi := range fracs {
			row = append(row, ms(res[ci*len(fracs)+fi].ExecPerPageMs))
		}
		lastUtil := res[ci*len(fracs)+len(fracs)-1].Extra["log.diskUtil"]
		row = append(row, fmt.Sprintf("%.2f", lastUtil))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// MPLSweep ablates the multiprogramming level, the main free parameter of
// our calibration (the paper never states its value; MPL=3 matches its
// completion times).
func MPLSweep(opt Options) (*Table, error) {
	t := &Table{
		ID:      "mpl",
		Title:   "Ablation: multiprogramming level (bare machine)",
		Columns: []string{"Configuration", "MPL=1", "MPL=2", "MPL=3", "MPL=4", "MPL=6"},
		Notes:   "exec time per page; MPL=3 reproduces the paper's completion times",
	}
	mpls := []int{1, 2, 3, 4, 6}
	res, err := runCells(opt, len(fourConfigs)*len(mpls), func(i int) (machine.Config, machine.Model) {
		cfg := fourConfigs[i/len(mpls)].config(opt)
		cfg.MPL = mpls[i%len(mpls)]
		return cfg, nil
	})
	if err != nil {
		return nil, err
	}
	for ci, c := range fourConfigs {
		row := []string{c.Name}
		for mi := range mpls {
			row = append(row, ms(res[ci*len(mpls)+mi].ExecPerPageMs))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// FrameSweep ablates the disk-cache size around the paper's 100 frames.
func FrameSweep(opt Options) (*Table, error) {
	t := &Table{
		ID:      "frames",
		Title:   "Ablation: disk-cache frames (bare machine)",
		Columns: []string{"Configuration", "50 frames", "100 frames", "200 frames"},
		Notes:   "the parallel-sequential configuration is the most cache-hungry",
	}
	frames := []int{50, 100, 200}
	res, err := runCells(opt, len(fourConfigs)*len(frames), func(i int) (machine.Config, machine.Model) {
		cfg := fourConfigs[i/len(frames)].config(opt)
		cfg.CacheFrames = frames[i%len(frames)]
		return cfg, nil
	})
	if err != nil {
		return nil, err
	}
	for ci, c := range fourConfigs {
		row := []string{c.Name}
		for fi := range frames {
			row = append(row, ms(res[ci*len(frames)+fi].ExecPerPageMs))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// FragmentSweep ablates the logical log-fragment size, which sets how many
// updates share a log page (the paper assumes small logical fragments).
func FragmentSweep(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fragsize",
		Title:   "Ablation: logical log fragment size (1 log processor)",
		Columns: []string{"Configuration", "200 B util", "400 B util", "1024 B util", "4096 B util"},
		Notes:   "log-disk utilization grows with fragment size; even page-size fragments stay modest except on parallel-sequential",
	}
	frags := []int{200, 400, 1024, 4096}
	res, err := runCells(opt, len(fourConfigs)*len(frags), func(i int) (machine.Config, machine.Model) {
		return fourConfigs[i/len(frags)].config(opt),
			logging.New(logging.Config{FragmentBytes: frags[i%len(frags)]})
	})
	if err != nil {
		return nil, err
	}
	for ci, c := range fourConfigs {
		row := []string{c.Name}
		for fi := range frags {
			row = append(row, ratio(res[ci*len(frags)+fi].Extra["log.diskUtil"]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// SkewSweep runs a Zipf hot-spot workload (an extension beyond the paper):
// lock conflicts appear and the recovery architectures feel them
// differently.
func SkewSweep(opt Options) (*Table, error) {
	t := &Table{
		ID:      "skew",
		Title:   "Extension: Zipf hot-spot workload (conventional disks)",
		Columns: []string{"Skew", "Bare e/p", "Logging e/p", "Lock waits"},
		Notes: "skew 0 is the paper's uniform-random workload; hot spots shorten seeks " +
			"(faster pages) but multiply lock conflicts",
	}
	skews := []float64{0, 1.2, 2.0}
	// Cell i is skew i/2 run bare (even) or logged (odd).
	res, err := runCells(opt, len(skews)*2, func(i int) (machine.Config, machine.Model) {
		cfg := machine.DefaultConfig()
		cfg.Workload.Skew = skews[i/2]
		cfg = opt.apply(cfg)
		var mdl machine.Model
		if i%2 == 1 {
			mdl = logging.New(logging.Config{})
		}
		return cfg, mdl
	})
	if err != nil {
		return nil, err
	}
	for si, skew := range skews {
		bare, logged := res[si*2], res[si*2+1]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", skew),
			ms(bare.ExecPerPageMs), ms(logged.ExecPerPageMs),
			fmt.Sprintf("%d", bare.LockWaits),
		})
	}
	return t, nil
}

// FuncRecovery measures what the paper's architectures trade away: the cost
// of recovery itself, on the functional engines. For each engine it runs a
// workload, crashes, and reports the restart work performed — log records
// scanned and redo/undo actions — which, unlike wall time, is deterministic:
// the same seed produces the same table on any machine.
func FuncRecovery(opt Options) (*Table, error) {
	t := &Table{
		ID:      "funcrecovery",
		Title:   "Extension: restart-recovery cost of the functional engines",
		Columns: []string{"Engine", "Commits", "Scanned", "Redo", "Undo"},
		Notes: "restart work in recovery actions (records scanned at restart, redo/undo applied); " +
			"logging optimizes the normal case and pays at restart; shadow variants restart almost for free",
	}
	n := opt.NumTxns
	if n == 0 && !opt.NumTxnsSet {
		n = 200
	}
	type build struct {
		name string
		mk   func() (*engine.Engine, func() (scanned, redo, undo int64), error)
	}
	none := func() (int64, int64, int64) { return 0, 0, 0 }
	builds := []build{
		{"wal(1 stream)", func() (*engine.Engine, func() (int64, int64, int64), error) {
			store := pagestore.New(4096)
			e, m := engine.NewWALOn(store, wal.Config{PoolPages: 8})
			return e, func() (int64, int64, int64) {
				s := m.Stats()
				return s["scanned"], s["redone"], s["undone"]
			}, nil
		}},
		{"wal(4 streams)", func() (*engine.Engine, func() (int64, int64, int64), error) {
			store := pagestore.New(4096)
			e, m := engine.NewWALOn(store, wal.Config{Streams: 4, Selection: wal.PageMod, PoolPages: 8})
			return e, func() (int64, int64, int64) {
				s := m.Stats()
				return s["scanned"], s["redone"], s["undone"]
			}, nil
		}},
		{"shadow", func() (*engine.Engine, func() (int64, int64, int64), error) {
			e, err := engine.NewShadow()
			return e, none, err
		}},
		{"overwrite-no-undo", func() (*engine.Engine, func() (int64, int64, int64), error) {
			return engine.NewOverwrite(shadoweng.NoUndo), none, nil
		}},
		{"version-selection", func() (*engine.Engine, func() (int64, int64, int64), error) {
			e, err := engine.NewVersionSelect()
			return e, none, err
		}},
		{"difffile", func() (*engine.Engine, func() (int64, int64, int64), error) {
			store := pagestore.New(4096)
			de := diffeng.New(store)
			return engine.New(de), func() (int64, int64, int64) {
				return de.Stats()["replayed"], 0, 0
			}, nil
		}},
	}
	// Each build owns a private engine and store; the builds are
	// shared-nothing, so they fan out like the simulator cells do.
	rows, err := runpool.Map(opt.Jobs, len(builds), func(bi int) ([]string, error) {
		b := builds[bi]
		e, stats, err := b.mk()
		if err != nil {
			return nil, err
		}
		for p := int64(0); p < 32; p++ {
			if err := e.Load(p, make([]byte, 128)); err != nil {
				return nil, err
			}
		}
		for i := 0; i < n; i++ {
			i := i
			if err := e.Update(func(tx *engine.Txn) error {
				return tx.Write(int64(i%32), []byte(fmt.Sprintf("v%d", i)))
			}); err != nil {
				return nil, err
			}
		}
		e.Crash()
		if err := e.Recover(); err != nil {
			return nil, err
		}
		scanned, redo, undo := stats()
		return []string{
			b.name,
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", scanned),
			fmt.Sprintf("%d", redo),
			fmt.Sprintf("%d", undo),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}
