package experiments

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/recovery/difffile"
	"repro/internal/recovery/logging"
	"repro/internal/recovery/shadow"
)

func init() {
	registry["abortcost"] = AbortCost
}

// AbortCost measures the cost the paper describes but never quantifies: the
// use of recovery data when transactions fail. A fraction of transactions
// aborts partway through and each architecture performs its undo actions —
// logging reads its log back and rewrites pages in place; no-redo
// overwriting restores shadows from the scratch area; shadow paging,
// no-undo overwriting and differential files abort almost for free.
func AbortCost(opt Options) (*Table, error) {
	t := &Table{
		ID:      "abortcost",
		Title:   "Extension: execution time per page vs abort rate (conventional-random)",
		Columns: []string{"Architecture", "0% aborts", "20% aborts", "50% aborts"},
		Notes: "collection-optimized architectures pay on failure: in-place logging " +
			"and no-redo overwriting do extra I/O per abort, deferred-update " +
			"architectures discard and move on",
	}
	models := []struct {
		name string
		mk   func() machine.Model
	}{
		{"logging (in-place)", func() machine.Model { return logging.New(logging.Config{}) }},
		{"shadow thru-PT", func() machine.Model { return shadow.NewPageTable(shadow.Config{}) }},
		{"overwrite no-undo", func() machine.Model { return shadow.NewOverwrite(shadow.Config{}, true) }},
		{"overwrite no-redo", func() machine.Model { return shadow.NewOverwrite(shadow.Config{}, false) }},
		{"differential files", func() machine.Model { return difffile.New(difffile.Config{}) }},
	}
	fracs := []float64{0, 0.2, 0.5}
	res, err := runCells(opt, len(models)*len(fracs), func(i int) (machine.Config, machine.Model) {
		cfg := machine.DefaultConfig()
		cfg.AbortFrac = fracs[i%len(fracs)]
		cfg = opt.apply(cfg)
		return cfg, models[i/len(fracs)].mk()
	})
	if err != nil {
		return nil, fmt.Errorf("abortcost: %w", err)
	}
	for mi, m := range models {
		row := []string{m.name}
		for fi := range fracs {
			row = append(row, ms(res[mi*len(fracs)+fi].ExecPerPageMs))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
