package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the all-tables golden fixture")

const allTablesFixture = "testdata/tables_all_txns12_seed1985.md"

// renderAllTables is what `dbmsim -table all -format md -txns 12 -seed 1985`
// prints: every experiment in IDs() order, rendered as markdown, concatenated.
func renderAllTables(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	for _, id := range IDs() {
		tab, err := Run(id, Options{NumTxns: 12, Seed: 1985})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		sb.WriteString(tab.RenderMarkdown())
	}
	return sb.String()
}

// TestAllTablesGolden pins the complete markdown output of every experiment
// at the quick scale (12 transactions, seed 1985) against a checked-in
// fixture. The simulator promises byte-identical output for identical
// seeds, so any diff — a changed metric, a reordered row, a reworded
// header — must be a deliberate change, landed by rerunning with -update:
//
//	go test ./internal/experiments -run AllTablesGolden -update
func TestAllTablesGolden(t *testing.T) {
	got := renderAllTables(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(allTablesFixture), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(allTablesFixture, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", allTablesFixture, len(got))
		return
	}
	want, err := os.ReadFile(allTablesFixture)
	if err != nil {
		t.Fatalf("%v (generate it with -update)", err)
	}
	if got == string(want) {
		return
	}
	// Report the first diverging line so drift is diagnosable from CI logs.
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	n := len(gl)
	if len(wl) < n {
		n = len(wl)
	}
	for i := 0; i < n; i++ {
		if gl[i] != wl[i] {
			t.Fatalf("output drifted from %s at line %d:\n  got:    %q\n  golden: %q\n%s",
				allTablesFixture, i+1, gl[i], wl[i], updateHint)
		}
	}
	t.Fatalf("output drifted from %s: got %d lines, golden has %d\n%s",
		allTablesFixture, len(gl), len(wl), updateHint)
}

const updateHint = "if the change is deliberate, rerun with -update and commit the new fixture"
