package experiments

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/recovery/shadow"
)

// Table4 reproduces "Impact of the Shadow Mechanism": bare machine vs one
// and two page-table processors, both metrics, four configurations.
func Table4(opt Options) (*Table, error) {
	t := &Table{
		ID:    "table4",
		Title: "Impact of the Shadow Mechanism (thru page-table)",
		Columns: []string{"Configuration",
			"Bare e/p", "1 PTProc e/p", "2 PTProc e/p",
			"Bare compl", "1 PTProc compl", "2 PTProc compl"},
		Paper: [][]string{
			{"Conventional-Random", "18.00", "20.51", "17.99", "7398.41", "8367.19", "7758.92"},
			{"Parallel-Random", "16.62", "20.49", "16.69", "6476.04", "8352.91", "6962.23"},
			{"Conventional-Sequential", "11.01", "10.98", "10.99", "4016.46", "4066.86", "4061.19"},
			{"Parallel-Sequential", "1.92", "1.94", "1.93", "758.06", "829.34", "816.29"},
		},
	}
	for _, c := range fourConfigs {
		cfg := c.config(opt)
		bare, err := machine.Run(cfg, nil)
		if err != nil {
			return nil, err
		}
		one, err := machine.Run(cfg, shadow.NewPageTable(shadow.Config{PageTableProcessors: 1}))
		if err != nil {
			return nil, err
		}
		two, err := machine.Run(cfg, shadow.NewPageTable(shadow.Config{PageTableProcessors: 2}))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{c.Name,
			ms(bare.ExecPerPageMs), ms(one.ExecPerPageMs), ms(two.ExecPerPageMs),
			ms(bare.MeanCompletionMs), ms(one.MeanCompletionMs), ms(two.MeanCompletionMs)})
	}
	t.Notes = "random transactions bottleneck on one page-table processor; two restore the I/O bound"
	return t, nil
}

// Table5 reproduces "Average Utilization of Data and Page-Table Disks".
func Table5(opt Options) (*Table, error) {
	t := &Table{
		ID:    "table5",
		Title: "Average Utilization of Data and Page-Table Disks",
		Columns: []string{"Configuration",
			"Bare data", "1 PT: data", "1 PT: ptdisk", "2 PT: data", "2 PT: ptdisk"},
		Paper: [][]string{
			{"Conventional-Random", "0.99", "0.86", "0.60", "0.99", "~0.3"},
			{"Parallel-Random", "1.00", "0.85", "0.64", "1.00", "~0.3"},
			{"Conventional-Sequential", "0.75", "0.75", "0.03", "0.75", "~0.02"},
			{"Parallel-Sequential", "0.92", "0.90", "0.16", "0.91", "~0.1"},
		},
	}
	for _, c := range fourConfigs {
		cfg := c.config(opt)
		bare, err := machine.Run(cfg, nil)
		if err != nil {
			return nil, err
		}
		one, err := machine.Run(cfg, shadow.NewPageTable(shadow.Config{PageTableProcessors: 1}))
		if err != nil {
			return nil, err
		}
		two, err := machine.Run(cfg, shadow.NewPageTable(shadow.Config{PageTableProcessors: 2}))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{c.Name,
			ratio(bare.DataDiskUtil),
			ratio(one.DataDiskUtil), ratio(one.Extra["pt.diskUtil"]),
			ratio(two.DataDiskUtil), ratio(two.Extra["pt.diskUtil"])})
	}
	return t, nil
}

// Table6 reproduces "Execution Time per Page (1 Page-Table Processor)": the
// page-table buffer size sweep for random transactions.
func Table6(opt Options) (*Table, error) {
	t := &Table{
		ID:      "table6",
		Title:   "Page-Table Buffer Size (random transactions, 1 PT processor)",
		Columns: []string{"Data Disk Type", "Bare", "buf=10", "buf=25", "buf=50"},
		Paper: [][]string{
			{"Conventional", "18.00", "20.51", "18.02", "18.01"},
			{"Parallel-access", "16.62", "20.49", "17.18", "16.70"},
		},
	}
	for _, par := range []bool{false, true} {
		name := "Conventional"
		if par {
			name = "Parallel-access"
		}
		cfg := machine.DefaultConfig()
		cfg.ParallelDisks = par
		cfg = opt.apply(cfg)
		bare, err := machine.Run(cfg, nil)
		if err != nil {
			return nil, err
		}
		row := []string{name, ms(bare.ExecPerPageMs)}
		for _, buf := range []int{10, 25, 50} {
			res, err := machine.Run(cfg, shadow.NewPageTable(shadow.Config{BufferPages: buf}))
			if err != nil {
				return nil, err
			}
			row = append(row, ms(res.ExecPerPageMs))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = "a buffer holding the whole page table annuls the shadow degradation"
	return t, nil
}

// Table7 reproduces "Execution Time per Page (Sequential Transactions)":
// bare machine, clustered and scrambled thru-page-table shadow, and the
// no-undo overwriting architecture.
func Table7(opt Options) (*Table, error) {
	t := &Table{
		ID:      "table7",
		Title:   "Sequential Transactions: placement and overwriting",
		Columns: []string{"Data Disk Type", "Bare", "Clustered (PT)", "Scrambled (PT)", "Overwriting"},
		Paper: [][]string{
			{"Conventional", "11.01", "10.98", "20.74", "24.08"},
			{"Parallel-access", "1.92", "1.94", "18.54", "2.31"},
		},
	}
	for _, par := range []bool{false, true} {
		name := "Conventional"
		if par {
			name = "Parallel-access"
		}
		cfg := machine.DefaultConfig()
		cfg.ParallelDisks = par
		cfg.Workload.Sequential = true
		cfg = opt.apply(cfg)
		bare, err := machine.Run(cfg, nil)
		if err != nil {
			return nil, err
		}
		clustered, err := machine.Run(cfg, shadow.NewPageTable(shadow.Config{}))
		if err != nil {
			return nil, err
		}
		scrambled, err := machine.Run(cfg, shadow.NewPageTable(shadow.Config{Scrambled: true}))
		if err != nil {
			return nil, err
		}
		over, err := machine.Run(cfg, shadow.NewOverwrite(shadow.Config{}, true))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{name,
			ms(bare.ExecPerPageMs), ms(clustered.ExecPerPageMs),
			ms(scrambled.ExecPerPageMs), ms(over.ExecPerPageMs)})
	}
	t.Notes = "scrambling destroys sequentiality; overwriting preserves it and wins on parallel disks"
	return t, nil
}

// Table8 reproduces "Execution Time per Page (Random Transactions)": bare,
// thru-page-table shadow, and overwriting.
func Table8(opt Options) (*Table, error) {
	t := &Table{
		ID:      "table8",
		Title:   "Random Transactions: thru page-table vs overwriting",
		Columns: []string{"Data Disk Type", "Bare", "thru PageTable", "Overwriting"},
		Paper: [][]string{
			{"Conventional", "18.00", "20.51", "26.94"},
			{"Parallel-access", "16.62", "20.49", "21.65"},
		},
	}
	for _, par := range []bool{false, true} {
		name := "Conventional"
		if par {
			name = "Parallel-access"
		}
		cfg := machine.DefaultConfig()
		cfg.ParallelDisks = par
		cfg = opt.apply(cfg)
		bare, err := machine.Run(cfg, nil)
		if err != nil {
			return nil, err
		}
		pt, err := machine.Run(cfg, shadow.NewPageTable(shadow.Config{}))
		if err != nil {
			return nil, err
		}
		over, err := machine.Run(cfg, shadow.NewOverwrite(shadow.Config{}, true))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{name,
			ms(bare.ExecPerPageMs), ms(pt.ExecPerPageMs), ms(over.ExecPerPageMs)})
	}
	t.Notes = "overwriting needs extra data-disk accesses that cannot be overlapped"
	return t, nil
}

var _ = fmt.Sprintf // keep fmt for future extensions
