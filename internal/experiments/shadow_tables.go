package experiments

import (
	"repro/internal/machine"
	"repro/internal/recovery/shadow"
)

// Table4 reproduces "Impact of the Shadow Mechanism": bare machine vs one
// and two page-table processors, both metrics, four configurations.
func Table4(opt Options) (*Table, error) {
	t := &Table{
		ID:    "table4",
		Title: "Impact of the Shadow Mechanism (thru page-table)",
		Columns: []string{"Configuration",
			"Bare e/p", "1 PTProc e/p", "2 PTProc e/p",
			"Bare compl", "1 PTProc compl", "2 PTProc compl"},
		Paper: [][]string{
			{"Conventional-Random", "18.00", "20.51", "17.99", "7398.41", "8367.19", "7758.92"},
			{"Parallel-Random", "16.62", "20.49", "16.69", "6476.04", "8352.91", "6962.23"},
			{"Conventional-Sequential", "11.01", "10.98", "10.99", "4016.46", "4066.86", "4061.19"},
			{"Parallel-Sequential", "1.92", "1.94", "1.93", "758.06", "829.34", "816.29"},
		},
	}
	// Cell i is configuration i/3 run bare, with one, or with two
	// page-table processors (i%3).
	res, err := runCells(opt, len(fourConfigs)*3, func(i int) (machine.Config, machine.Model) {
		var mdl machine.Model
		if n := i % 3; n > 0 {
			mdl = shadow.NewPageTable(shadow.Config{PageTableProcessors: n})
		}
		return fourConfigs[i/3].config(opt), mdl
	})
	if err != nil {
		return nil, err
	}
	for ci, c := range fourConfigs {
		bare, one, two := res[ci*3], res[ci*3+1], res[ci*3+2]
		t.Rows = append(t.Rows, []string{c.Name,
			ms(bare.ExecPerPageMs), ms(one.ExecPerPageMs), ms(two.ExecPerPageMs),
			ms(bare.MeanCompletionMs), ms(one.MeanCompletionMs), ms(two.MeanCompletionMs)})
	}
	t.Notes = "random transactions bottleneck on one page-table processor; two restore the I/O bound"
	return t, nil
}

// Table5 reproduces "Average Utilization of Data and Page-Table Disks".
func Table5(opt Options) (*Table, error) {
	t := &Table{
		ID:    "table5",
		Title: "Average Utilization of Data and Page-Table Disks",
		Columns: []string{"Configuration",
			"Bare data", "1 PT: data", "1 PT: ptdisk", "2 PT: data", "2 PT: ptdisk"},
		Paper: [][]string{
			{"Conventional-Random", "0.99", "0.86", "0.60", "0.99", "~0.3"},
			{"Parallel-Random", "1.00", "0.85", "0.64", "1.00", "~0.3"},
			{"Conventional-Sequential", "0.75", "0.75", "0.03", "0.75", "~0.02"},
			{"Parallel-Sequential", "0.92", "0.90", "0.16", "0.91", "~0.1"},
		},
	}
	res, err := runCells(opt, len(fourConfigs)*3, func(i int) (machine.Config, machine.Model) {
		var mdl machine.Model
		if n := i % 3; n > 0 {
			mdl = shadow.NewPageTable(shadow.Config{PageTableProcessors: n})
		}
		return fourConfigs[i/3].config(opt), mdl
	})
	if err != nil {
		return nil, err
	}
	for ci, c := range fourConfigs {
		bare, one, two := res[ci*3], res[ci*3+1], res[ci*3+2]
		t.Rows = append(t.Rows, []string{c.Name,
			ratio(bare.DataDiskUtil),
			ratio(one.DataDiskUtil), ratio(one.Extra["pt.diskUtil"]),
			ratio(two.DataDiskUtil), ratio(two.Extra["pt.diskUtil"])})
	}
	return t, nil
}

// diskKinds are the two data-disk variants several shadow tables sweep.
var diskKinds = []struct {
	Name     string
	Parallel bool
}{
	{"Conventional", false},
	{"Parallel-access", true},
}

// Table6 reproduces "Execution Time per Page (1 Page-Table Processor)": the
// page-table buffer size sweep for random transactions.
func Table6(opt Options) (*Table, error) {
	t := &Table{
		ID:      "table6",
		Title:   "Page-Table Buffer Size (random transactions, 1 PT processor)",
		Columns: []string{"Data Disk Type", "Bare", "buf=10", "buf=25", "buf=50"},
		Paper: [][]string{
			{"Conventional", "18.00", "20.51", "18.02", "18.01"},
			{"Parallel-access", "16.62", "20.49", "17.18", "16.70"},
		},
	}
	bufs := []int{10, 25, 50}
	perKind := 1 + len(bufs) // bare, then one cell per buffer size
	res, err := runCells(opt, len(diskKinds)*perKind, func(i int) (machine.Config, machine.Model) {
		cfg := machine.DefaultConfig()
		cfg.ParallelDisks = diskKinds[i/perKind].Parallel
		cfg = opt.apply(cfg)
		if j := i % perKind; j > 0 {
			return cfg, shadow.NewPageTable(shadow.Config{BufferPages: bufs[j-1]})
		}
		return cfg, nil
	})
	if err != nil {
		return nil, err
	}
	for ki, k := range diskKinds {
		row := []string{k.Name}
		for j := 0; j < perKind; j++ {
			row = append(row, ms(res[ki*perKind+j].ExecPerPageMs))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = "a buffer holding the whole page table annuls the shadow degradation"
	return t, nil
}

// Table7 reproduces "Execution Time per Page (Sequential Transactions)":
// bare machine, clustered and scrambled thru-page-table shadow, and the
// no-undo overwriting architecture.
func Table7(opt Options) (*Table, error) {
	t := &Table{
		ID:      "table7",
		Title:   "Sequential Transactions: placement and overwriting",
		Columns: []string{"Data Disk Type", "Bare", "Clustered (PT)", "Scrambled (PT)", "Overwriting"},
		Paper: [][]string{
			{"Conventional", "11.01", "10.98", "20.74", "24.08"},
			{"Parallel-access", "1.92", "1.94", "18.54", "2.31"},
		},
	}
	models := []func() machine.Model{
		func() machine.Model { return nil },
		func() machine.Model { return shadow.NewPageTable(shadow.Config{}) },
		func() machine.Model { return shadow.NewPageTable(shadow.Config{Scrambled: true}) },
		func() machine.Model { return shadow.NewOverwrite(shadow.Config{}, true) },
	}
	res, err := runCells(opt, len(diskKinds)*len(models), func(i int) (machine.Config, machine.Model) {
		cfg := machine.DefaultConfig()
		cfg.ParallelDisks = diskKinds[i/len(models)].Parallel
		cfg.Workload.Sequential = true
		return opt.apply(cfg), models[i%len(models)]()
	})
	if err != nil {
		return nil, err
	}
	for ki, k := range diskKinds {
		row := []string{k.Name}
		for j := range models {
			row = append(row, ms(res[ki*len(models)+j].ExecPerPageMs))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = "scrambling destroys sequentiality; overwriting preserves it and wins on parallel disks"
	return t, nil
}

// Table8 reproduces "Execution Time per Page (Random Transactions)": bare,
// thru-page-table shadow, and overwriting.
func Table8(opt Options) (*Table, error) {
	t := &Table{
		ID:    "table8",
		Title: "Random Transactions: thru page-table vs overwriting",
		Columns: []string{"Data Disk Type", "Bare", "thru PageTable", "Overwriting"},
		Paper: [][]string{
			{"Conventional", "18.00", "20.51", "26.94"},
			{"Parallel-access", "16.62", "20.49", "21.65"},
		},
	}
	models := []func() machine.Model{
		func() machine.Model { return nil },
		func() machine.Model { return shadow.NewPageTable(shadow.Config{}) },
		func() machine.Model { return shadow.NewOverwrite(shadow.Config{}, true) },
	}
	res, err := runCells(opt, len(diskKinds)*len(models), func(i int) (machine.Config, machine.Model) {
		cfg := machine.DefaultConfig()
		cfg.ParallelDisks = diskKinds[i/len(models)].Parallel
		return opt.apply(cfg), models[i%len(models)]()
	})
	if err != nil {
		return nil, err
	}
	for ki, k := range diskKinds {
		row := []string{k.Name}
		for j := range models {
			row = append(row, ms(res[ki*len(models)+j].ExecPerPageMs))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = "overwriting needs extra data-disk accesses that cannot be overlapped"
	return t, nil
}
