package experiments

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/machine"
	"repro/internal/recovery/logging"
	"repro/internal/runpool"
	"repro/internal/sim"
)

func init() {
	registry["checkpoint"] = CheckpointSweep
	registry["sysrecovery"] = SystemRecovery
}

// CheckpointSweep reproduces the point of the paper's reference [13]:
// system checkpoints taken in parallel with normal processing cost almost
// nothing, while quiescing checkpoints (drain the machine, then write the
// checkpoint) hurt more the more often they run.
func CheckpointSweep(opt Options) (*Table, error) {
	t := &Table{
		ID:    "checkpoint",
		Title: "Extension: checkpointing without quiescing ([13]) vs quiescing",
		Columns: []string{"Checkpoint interval",
			"parallel e/p", "quiescing e/p", "parallel compl", "quiescing compl"},
		Notes: "conventional disks, random transactions, logical logging; the parallel " +
			"scheme overlaps checkpoints with data processing",
	}
	intervals := []struct {
		name  string
		every sim.Time
	}{
		{"none", 0},
		{"5 s", 5 * sim.Second},
		{"2 s", 2 * sim.Second},
		{"0.5 s", sim.Second / 2},
	}
	// Cell i is interval i/2, parallel (even) or quiescing (odd) checkpoints.
	res, err := runCells(opt, len(intervals)*2, func(i int) (machine.Config, machine.Model) {
		cfg := opt.apply(machine.DefaultConfig())
		return cfg, logging.New(logging.Config{
			CheckpointEvery:     intervals[i/2].every,
			QuiescingCheckpoint: i%2 == 1,
		})
	})
	if err != nil {
		return nil, err
	}
	for ii, iv := range intervals {
		par, qui := res[ii*2], res[ii*2+1]
		t.Rows = append(t.Rows, []string{iv.name,
			ms(par.ExecPerPageMs), ms(qui.ExecPerPageMs),
			ms(par.MeanCompletionMs), ms(qui.MeanCompletionMs)})
	}
	return t, nil
}

// SystemRecovery simulates restart after a system crash with the paper's
// parallel-logging architecture: the log disks are read back concurrently
// (no physical merge — reference [13]) and the redo/undo writes go to the
// two data disks. More log disks mean proportionally faster log reading,
// which is the payoff of distributing the log.
func SystemRecovery(opt Options) (*Table, error) {
	t := &Table{
		ID:      "sysrecovery",
		Title:   "Extension: simulated restart time vs number of log disks",
		Columns: []string{"Log Disks", "Log pages read", "Redo/undo writes", "Restart (ms)"},
		Notes: "physical logging after the Table 3 workload; log disks are scanned in " +
			"parallel and never merged into one physical log",
	}
	// Each row is an independent workload-plus-restart simulation pair with
	// its own engines, so rows fan out as whole jobs.
	rows, err := runpool.Map(opt.Jobs, 5, func(row int) ([]string, error) {
		n := row + 1
		// First run the workload to learn how much log each disk holds.
		res, err := machine.Run(table3Config(opt), logging.New(logging.Config{
			Mode:          logging.Physical,
			LogProcessors: n,
		}))
		if err != nil {
			return nil, err
		}
		var logPages int64
		for i := 0; i < n; i++ {
			logPages += int64(res.Extra[fmt.Sprintf("log.disk%d.writes", i)])
		}
		// Assume a crash at the end: roughly one transaction's updates per
		// active slot were unprotected; redo/undo rewrites them in place.
		redoWrites := int(res.Extra["log.frags"])

		// Now simulate the restart on fresh devices: each log disk streams
		// its pages back sequentially while the data disks absorb the
		// redo/undo writes round-robin.
		eng := sim.New()
		geom := disk.Geometry{PagesPerTrack: 4, TracksPerCyl: 12, Cylinders: 200}
		params := disk.Default3350Params()
		dataDisks := []*disk.Conventional{
			disk.NewConventional(eng, "data0", geom, params),
			disk.NewConventional(eng, "data1", geom, params),
		}
		perDisk := int(logPages) / n
		for i := 0; i < n; i++ {
			ld := disk.NewConventional(eng, fmt.Sprintf("log%d", i), geom, params)
			i := i
			var readNext func(seq int)
			readNext = func(seq int) {
				if seq >= perDisk {
					return
				}
				page := seq % geom.Capacity()
				ld.Submit(&disk.Request{Pages: []int{page}, Done: func() {
					// Every few log pages produce a data-page rewrite.
					if seq%3 == 0 && redoWrites > 0 {
						redoWrites--
						d := dataDisks[(i+seq)%2]
						d.Submit(&disk.Request{
							Pages: []int{(seq * 7) % geom.Capacity()},
							Write: true,
						})
					}
					readNext(seq + 1)
				}})
			}
			readNext(0)
		}
		eng.Run()
		return []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", logPages),
			fmt.Sprintf("%d", int(res.Extra["log.frags"])),
			ms(eng.Now().ToMs()),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}
