package experiments

import (
	"testing"

	"repro/internal/machine"
)

// TestOptionsSentinels pins the Options resolution rules: the zero value
// keeps its historical "use the default" meaning, while the *Set flags make
// the zeros expressible.
func TestOptionsSentinels(t *testing.T) {
	def := machine.DefaultConfig()
	if def.Seed != 1985 {
		t.Fatalf("machine default seed moved to %d; update this test and the Options docs", def.Seed)
	}

	cases := []struct {
		name     string
		opt      Options
		wantTxns int
		wantSeed int64
	}{
		{"zero value keeps defaults", Options{}, def.NumTxns, 1985},
		{"legacy sentinel: Seed 0 resolves to 1985", Options{Seed: 0}, def.NumTxns, 1985},
		{"explicit seed", Options{Seed: 7}, def.NumTxns, 7},
		{"explicit zero seed", Options{Seed: 0, SeedSet: true}, def.NumTxns, 0},
		{"explicit txns", Options{NumTxns: 12}, 12, 1985},
		{"explicit zero txns", Options{NumTxns: 0, NumTxnsSet: true}, 0, 1985},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.opt.apply(machine.DefaultConfig())
			if cfg.NumTxns != tc.wantTxns || cfg.Seed != tc.wantSeed {
				t.Fatalf("apply(%+v) -> txns=%d seed=%d, want txns=%d seed=%d",
					tc.opt, cfg.NumTxns, cfg.Seed, tc.wantTxns, tc.wantSeed)
			}
		})
	}
}

// TestDefaultOptionsResolved: DefaultOptions is the explicit form of the
// zero value — same resolved config, but with every field marked set, so
// overriding a field to zero means zero.
func TestDefaultOptionsResolved(t *testing.T) {
	def := machine.DefaultConfig()
	opt := DefaultOptions()
	if !opt.SeedSet || !opt.NumTxnsSet {
		t.Fatalf("DefaultOptions fields not marked explicit: %+v", opt)
	}
	cfg := opt.apply(machine.DefaultConfig())
	if cfg.NumTxns != def.NumTxns || cfg.Seed != def.Seed {
		t.Fatalf("DefaultOptions resolves to txns=%d seed=%d, want the machine defaults %d/%d",
			cfg.NumTxns, cfg.Seed, def.NumTxns, def.Seed)
	}
	zeroSeed := DefaultOptions()
	zeroSeed.Seed = 0
	if got := zeroSeed.apply(machine.DefaultConfig()).Seed; got != 0 {
		t.Fatalf("DefaultOptions with Seed overridden to 0 resolves to %d, want 0", got)
	}
}
