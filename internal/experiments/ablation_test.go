package experiments

import (
	"strconv"
	"testing"
)

func TestMPLSweepShape(t *testing.T) {
	tab, err := MPLSweep(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 || len(tab.Rows[0]) != 6 {
		t.Fatalf("shape %dx%d", len(tab.Rows), len(tab.Rows[0]))
	}
	// Throughput improves (exec/page falls) from MPL=1 to MPL=3 for the
	// I/O-bound random configurations.
	if cell(tab, 0, 3) > cell(tab, 0, 1) {
		t.Errorf("MPL=3 (%.1f) slower than MPL=1 (%.1f)", cell(tab, 0, 3), cell(tab, 0, 1))
	}
}

func TestFrameSweepShape(t *testing.T) {
	tab, err := FrameSweep(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	// Parallel-sequential benefits most from more frames (bigger batches).
	if cell(tab, 3, 3) > cell(tab, 3, 1) {
		t.Errorf("parallel-sequential got slower with more frames: %.2f vs %.2f",
			cell(tab, 3, 3), cell(tab, 3, 1))
	}
}

func TestFragmentSweepShape(t *testing.T) {
	tab, err := FragmentSweep(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		small, big := cell(tab, i, 1), cell(tab, i, 4)
		if big < small {
			t.Errorf("row %d: log util fell with bigger fragments: %.2f -> %.2f", i, small, big)
		}
	}
}

func TestSkewSweepShape(t *testing.T) {
	tab, err := SkewSweep(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	waits := func(row int) int64 {
		v, err := strconv.ParseInt(tab.Rows[row][3], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// Heavy skew must produce more lock conflicts than uniform access.
	if waits(2) <= waits(0) {
		t.Errorf("skew 2.0 waits (%d) not above uniform (%d)", waits(2), waits(0))
	}
}

func TestFuncRecoveryShape(t *testing.T) {
	tab, err := FuncRecovery(Options{NumTxns: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The WAL engines must report real restart work (records scanned, redo);
	// shadow restarts do none by construction.
	col := func(row, c int) int64 {
		v, _ := strconv.ParseInt(tab.Rows[row][c], 10, 64)
		return v
	}
	if col(0, 2) == 0 {
		t.Error("wal(1 stream) scanned no log records at restart")
	}
	if col(0, 3) == 0 {
		t.Error("wal(1 stream) reported no redo work")
	}
	if col(2, 2) != 0 || col(2, 3) != 0 {
		t.Error("shadow reported restart work")
	}
	if col(5, 2) == 0 {
		t.Error("difffile replayed no differential entries at restart")
	}

	// With wall-clock gone the whole table is deterministic: a second run
	// must reproduce it cell for cell.
	again, err := FuncRecovery(Options{NumTxns: 40})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		for j := range tab.Rows[i] {
			if tab.Rows[i][j] != again.Rows[i][j] {
				t.Errorf("cell [%d][%d] not deterministic: %q vs %q",
					i, j, tab.Rows[i][j], again.Rows[i][j])
			}
		}
	}
}

func TestRegistryIncludesExtensions(t *testing.T) {
	ids := IDs()
	want := map[string]bool{"mpl": true, "frames": true, "fragsize": true,
		"skew": true, "funcrecovery": true}
	found := 0
	for _, id := range ids {
		if want[id] {
			found++
		}
	}
	if found != len(want) {
		t.Fatalf("extensions missing from registry: %v", ids)
	}
}
