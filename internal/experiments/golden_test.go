package experiments

import "testing"

// TestTable12Golden pins the exact Table 12 values at the quick scale
// (12 transactions, default seed). The simulator is fully deterministic, so
// any diff here means the calibration or the event ordering changed — run
// `go run ./cmd/dbmsim -table 12 -txns 12`, compare shapes against the
// paper, and update deliberately.
func TestTable12Golden(t *testing.T) {
	tab, err := Table12(Options{NumTxns: 12})
	if err != nil {
		t.Fatal(err)
	}
	golden := [][]string{
		{"Conventional-Random", "18.8", "18.6", "19.8", "19.5", "19.4", "19.5", "28.8", "20.2"},
		{"Parallel-Random", "16.9", "17.1", "18.4", "17.7", "17.6", "18.5", "18.7", "18.6"},
		{"Conventional-Sequential", "10.4", "10.3", "10.6", "10.6", "10.5", "18.0", "17.6", "14.4"},
		{"Parallel-Sequential", "2.0", "2.1", "2.1", "2.1", "2.1", "16.2", "2.9", "13.7"},
	}
	if len(tab.Rows) != len(golden) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i, want := range golden {
		for j, cell := range want {
			if tab.Rows[i][j] != cell {
				t.Errorf("row %d col %d: got %q, golden %q (calibration drift?)",
					i, j, tab.Rows[i][j], cell)
			}
		}
	}
}
