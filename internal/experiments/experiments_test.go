package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// quick keeps experiment tests fast; shapes hold with a reduced load.
var quickOpt = Options{NumTxns: 12}

func cell(t *Table, row, col int) float64 {
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		panic(err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != 22 {
		t.Fatalf("got %d experiments: %v", len(ids), ids)
	}
	if ids[0] != "table1" || ids[11] != "table12" {
		t.Fatalf("order wrong: %v", ids)
	}
	if _, err := Run("nope", quickOpt); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTable1Shape(t *testing.T) {
	tab, err := Table1(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 || len(tab.Rows[0]) != 5 {
		t.Fatalf("table shape wrong: %dx%d", len(tab.Rows), len(tab.Rows[0]))
	}
	for i := range tab.Rows {
		bare, logged := cell(tab, i, 1), cell(tab, i, 2)
		if logged > bare*1.15 {
			t.Errorf("row %d: logging degraded exec/page too much: %.1f vs %.1f", i, logged, bare)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	tab, err := Table2(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		if u := cell(tab, i, 1); u > 0.25 {
			t.Errorf("row %d: log disk util %.2f too high", i, u)
		}
	}
	// Parallel-Sequential has the highest log utilization.
	if cell(tab, 3, 1) <= cell(tab, 0, 1) {
		t.Error("parallel-sequential should stress the log disk most")
	}
}

func TestTable3Shape(t *testing.T) {
	tab, err := Table3(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("want 6 rows, got %d", len(tab.Rows))
	}
	// Cyclic column improves sharply to 3 disks, then may plateau (the
	// paper's own 4->5 step is small).
	for n := 1; n < 3; n++ {
		if cell(tab, n, 1) >= cell(tab, n-1, 1) {
			t.Errorf("cyclic exec/page not decreasing at %d disks: %.2f >= %.2f",
				n+1, cell(tab, n, 1), cell(tab, n-1, 1))
		}
	}
	for n := 3; n < 5; n++ {
		if cell(tab, n, 1) > cell(tab, n-1, 1)*1.02 {
			t.Errorf("cyclic exec/page regressed at %d disks: %.2f > %.2f",
				n+1, cell(tab, n, 1), cell(tab, n-1, 1))
		}
	}
	// One log disk is much worse than the no-logging baseline.
	if cell(tab, 0, 1) < cell(tab, 5, 1)*2.5 {
		t.Errorf("1 log disk (%.2f) should be >2.5x baseline (%.2f)",
			cell(tab, 0, 1), cell(tab, 5, 1))
	}
	// TranNoMod plateaus above cyclic at 5 disks.
	if cell(tab, 4, 4) <= cell(tab, 4, 1) {
		t.Errorf("tranno (%.2f) should trail cyclic (%.2f) at 5 disks",
			cell(tab, 4, 4), cell(tab, 4, 1))
	}
}

func TestTable4Shape(t *testing.T) {
	tab, err := Table4(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	// Random rows: 1 PT processor degrades, 2 restore.
	for _, i := range []int{0, 1} {
		bare, one, two := cell(tab, i, 1), cell(tab, i, 2), cell(tab, i, 3)
		if one <= bare {
			t.Errorf("row %d: 1 PT proc did not degrade (%.1f vs %.1f)", i, one, bare)
		}
		if two >= one {
			t.Errorf("row %d: 2 PT procs did not help (%.1f vs %.1f)", i, two, one)
		}
	}
	// Sequential rows barely move.
	for _, i := range []int{2, 3} {
		bare, one := cell(tab, i, 1), cell(tab, i, 2)
		if one > bare*1.15 {
			t.Errorf("row %d: sequential should be insensitive (%.1f vs %.1f)", i, one, bare)
		}
	}
}

func TestTable5Shape(t *testing.T) {
	tab, err := Table5(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	// Random: page-table disk busy; sequential: nearly idle.
	if cell(tab, 0, 3) < 0.2 {
		t.Errorf("conventional-random PT disk util too low: %.2f", cell(tab, 0, 3))
	}
	if cell(tab, 2, 3) > 0.2 {
		t.Errorf("conventional-sequential PT disk util too high: %.2f", cell(tab, 2, 3))
	}
}

func TestTable6Shape(t *testing.T) {
	tab, err := Table6(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		bare, b10, b50 := cell(tab, i, 1), cell(tab, i, 2), cell(tab, i, 4)
		if b10 <= bare {
			t.Errorf("row %d: buf=10 should degrade (%.1f vs bare %.1f)", i, b10, bare)
		}
		if b50 >= b10 {
			t.Errorf("row %d: buf=50 (%.1f) should beat buf=10 (%.1f)", i, b50, b10)
		}
	}
}

func TestTable7Shape(t *testing.T) {
	tab, err := Table7(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		bare := cell(tab, i, 1)
		clustered := cell(tab, i, 2)
		scrambled := cell(tab, i, 3)
		if clustered > bare*1.2 {
			t.Errorf("row %d: clustered PT should track bare (%.1f vs %.1f)", i, clustered, bare)
		}
		if scrambled < clustered*1.5 {
			t.Errorf("row %d: scrambled (%.1f) should be much worse than clustered (%.1f)",
				i, scrambled, clustered)
		}
	}
	// Overwriting: bad on conventional, fine on parallel-access.
	convOver, parOver := cell(tab, 0, 4), cell(tab, 1, 4)
	convBare, parBare := cell(tab, 0, 1), cell(tab, 1, 1)
	if convOver < convBare*1.3 {
		t.Errorf("conventional overwriting (%.1f) should be much worse than bare (%.1f)",
			convOver, convBare)
	}
	if parOver > parBare*1.7 {
		t.Errorf("parallel overwriting (%.1f) should stay near bare (%.1f)", parOver, parBare)
	}
}

func TestTable8Shape(t *testing.T) {
	tab, err := Table8(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	// Conventional disks: overwriting clearly trails thru-page-table.
	if pt, over := cell(tab, 0, 2), cell(tab, 0, 3); over <= pt {
		t.Errorf("conventional: overwriting (%.1f) should trail thru-PT (%.1f)", over, pt)
	}
	// Parallel-access disks soften the penalty (paper: 21.6 vs 20.5; our
	// calibration makes it a near tie) but overwriting still costs vs bare.
	if bare, over := cell(tab, 1, 1), cell(tab, 1, 3); over < bare*1.02 {
		t.Errorf("parallel: overwriting (%.1f) should still cost vs bare (%.1f)", over, bare)
	}
}

func TestTable9Shape(t *testing.T) {
	tab, err := Table9(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	var basics []float64
	for i := range tab.Rows {
		bare, basic, optimal := cell(tab, i, 1), cell(tab, i, 2), cell(tab, i, 3)
		if basic < bare {
			t.Errorf("row %d: basic (%.1f) should be worse than bare (%.1f)", i, basic, bare)
		}
		if optimal >= basic {
			t.Errorf("row %d: optimal (%.1f) should beat basic (%.1f)", i, optimal, basic)
		}
		basics = append(basics, basic)
	}
	// Basic strategy is flat across configurations (CPU bound).
	min, max := basics[0], basics[0]
	for _, v := range basics {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max/min > 1.35 {
		t.Errorf("basic strategy not flat: %v", basics)
	}
}

func TestTable10Shape(t *testing.T) {
	tab, err := Table10(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		if cell(tab, i, 4) < cell(tab, i, 2)*0.9 {
			t.Errorf("row %d: 50%% output fraction should not beat 10%%", i)
		}
	}
}

func TestTable11Shape(t *testing.T) {
	tab, err := Table11(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		a, b, c := cell(tab, i, 2), cell(tab, i, 3), cell(tab, i, 4)
		if !(a < b && b < c) {
			t.Errorf("row %d: degradation not increasing: %.1f %.1f %.1f", i, a, b, c)
		}
	}
}

func TestTable12Shape(t *testing.T) {
	tab, err := Table12(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 || len(tab.Rows[0]) != 9 {
		t.Fatalf("shape %dx%d", len(tab.Rows), len(tab.Rows[0]))
	}
	// Headline conclusion: logging stays within a few percent of bare in
	// every configuration; every other architecture hurts somewhere.
	for i := range tab.Rows {
		bare, logging := cell(tab, i, 1), cell(tab, i, 2)
		if logging > bare*1.15 {
			t.Errorf("row %d: logging (%.1f) strays from bare (%.1f)", i, logging, bare)
		}
	}
	// Scrambled shadow ruins parallel-sequential; differential file hurts it too.
	psBare := cell(tab, 3, 1)
	if cell(tab, 3, 6) < psBare*3 {
		t.Error("scrambled should collapse parallel-sequential")
	}
	if cell(tab, 3, 8) < psBare*2 {
		t.Error("differential files should clearly degrade parallel-sequential")
	}
}

func TestBandwidthShape(t *testing.T) {
	tab, err := Bandwidth(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	// 1.0 vs 0.1 MB/s indistinguishable on every configuration.
	for i := range tab.Rows {
		fast, mid := cell(tab, i, 1), cell(tab, i, 2)
		if mid > fast*1.1 {
			t.Errorf("row %d: 0.1 MB/s (%.1f) degraded vs 1.0 MB/s (%.1f)", i, mid, fast)
		}
	}
}

func TestRenderIncludesPaperValues(t *testing.T) {
	tab, err := Table2(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.Render()
	if !strings.Contains(out, "paper reported:") || !strings.Contains(out, "0.13") {
		t.Fatalf("render missing paper block:\n%s", out)
	}
	if !strings.Contains(out, "TABLE2") {
		t.Fatal("render missing table id")
	}
}

// TestRenderRaggedRow is the regression test for the renderGrid
// index-out-of-range panic: a row with more cells than the header used to
// crash line()'s widths[i] lookup. Extra cells must render, not panic.
func TestRenderRaggedRow(t *testing.T) {
	tab := &Table{
		ID:      "ragged",
		Title:   "Ragged",
		Columns: []string{"Row", "A"},
		Rows: [][]string{
			{"r1", "1.0"},
			{"r2", "2.0", "overflow", "wide-cell-beyond-header"},
		},
	}
	out := tab.Render()
	for _, want := range []string{"overflow", "wide-cell-beyond-header", "1.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ragged render lost %q:\n%s", want, out)
		}
	}
	// The paper block takes the same code path; a ragged Paper row must not
	// panic either.
	tab.Paper = [][]string{{"r1", "2.0", "extra", "cells", "here"}}
	if out := tab.Render(); !strings.Contains(out, "cells") {
		t.Fatalf("ragged paper render lost cells:\n%s", out)
	}
}

func TestRenderMarkdown(t *testing.T) {
	tab := &Table{
		ID:      "tablex",
		Title:   "Demo",
		Columns: []string{"Row", "A"},
		Rows:    [][]string{{"r1", "1.0"}},
		Paper:   [][]string{{"r1", "2.0"}},
		Notes:   "a note",
	}
	out := tab.RenderMarkdown()
	for _, want := range []string{"### TABLEX", "| Row | A |", "1.0 *(paper 2.0)*", "*a note*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}
