package experiments

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/recovery/difffile"
	"repro/internal/recovery/logging"
	"repro/internal/recovery/shadow"
)

// TestSimulationDeterminism runs every recovery model twice with the same
// seed and demands bit-identical results — the property that makes the
// regenerated tables reproducible.
func TestSimulationDeterminism(t *testing.T) {
	models := map[string]func() machine.Model{
		"bare":      func() machine.Model { return nil },
		"logging":   func() machine.Model { return logging.New(logging.Config{}) },
		"physical":  func() machine.Model { return logging.New(logging.Config{Mode: logging.Physical, LogProcessors: 2}) },
		"shadow":    func() machine.Model { return shadow.NewPageTable(shadow.Config{}) },
		"scrambled": func() machine.Model { return shadow.NewPageTable(shadow.Config{Scrambled: true}) },
		"version":   func() machine.Model { return shadow.NewVersion(shadow.Config{}) },
		"noundo":    func() machine.Model { return shadow.NewOverwrite(shadow.Config{}, true) },
		"noredo":    func() machine.Model { return shadow.NewOverwrite(shadow.Config{}, false) },
		"difffile":  func() machine.Model { return difffile.New(difffile.Config{}) },
	}
	for name, mk := range models {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			cfg := machine.DefaultConfig()
			cfg.NumTxns = 10
			cfg.Workload.MaxPages = 80
			cfg.AbortFrac = 0.2
			a, err := machine.Run(cfg, mk())
			if err != nil {
				t.Fatal(err)
			}
			b, err := machine.Run(cfg, mk())
			if err != nil {
				t.Fatal(err)
			}
			if a.SimTime != b.SimTime {
				t.Fatalf("sim time diverged: %v vs %v", a.SimTime, b.SimTime)
			}
			if a.PagesProcessed != b.PagesProcessed || a.ExecPerPageMs != b.ExecPerPageMs ||
				a.MeanCompletionMs != b.MeanCompletionMs {
				t.Fatalf("metrics diverged: %+v vs %+v", a, b)
			}
			for k, v := range a.Extra {
				if b.Extra[k] != v {
					t.Fatalf("stat %s diverged: %v vs %v", k, v, b.Extra[k])
				}
			}
		})
	}
}
