package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/runpool"
)

// TestJobsEquivalence is the differential acceptance test for the run-pool
// wiring: every experiment, rendered both ways, must be byte-identical at
// jobs=1 (a plain sequential loop) and jobs=8. Worker count may only change
// wall-clock time — determinism lives in each cell's seeded state, never in
// scheduling order.
func TestJobsEquivalence(t *testing.T) {
	render := func(jobs int) string {
		t.Helper()
		var sb strings.Builder
		for _, id := range IDs() {
			tab, err := Run(id, Options{NumTxns: 8, Seed: 77, Jobs: jobs})
			if err != nil {
				t.Fatalf("jobs=%d %s: %v", jobs, id, err)
			}
			sb.WriteString(tab.Render())
			sb.WriteString(tab.RenderMarkdown())
		}
		return sb.String()
	}
	seq, par := render(1), render(8)
	if seq == par {
		return
	}
	sl, pl := strings.Split(seq, "\n"), strings.Split(par, "\n")
	n := len(sl)
	if len(pl) < n {
		n = len(pl)
	}
	for i := 0; i < n; i++ {
		if sl[i] != pl[i] {
			t.Fatalf("jobs=1 and jobs=8 output diverged at line %d:\n  jobs=1: %q\n  jobs=8: %q",
				i+1, sl[i], pl[i])
		}
	}
	t.Fatalf("jobs=1 and jobs=8 output lengths diverged: %d vs %d lines", len(sl), len(pl))
}

// TestObsSnapshotJobsEquivalence pins the deepest observable: the full obs
// metrics registry of each simulated machine, rendered to text, must be
// byte-identical whether the runs were fanned out across 1 or 8 workers.
// Each run owns its own registry, so worker count cannot leak into any
// counter, histogram, or gauge.
func TestObsSnapshotJobsEquivalence(t *testing.T) {
	snapshots := func(jobs int) []string {
		t.Helper()
		out, err := runpool.Map(jobs, len(fourConfigs), func(i int) (string, error) {
			cfg := fourConfigs[i].config(Options{NumTxns: 6, Seed: 77})
			m, err := machine.New(cfg, nil)
			if err != nil {
				return "", err
			}
			if _, err := m.Run(); err != nil {
				return "", err
			}
			var buf bytes.Buffer
			if err := m.Metrics().Snapshot().WriteText(&buf); err != nil {
				return "", err
			}
			return buf.String(), nil
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return out
	}
	seq, par := snapshots(1), snapshots(8)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("obs snapshot %d differs between jobs=1 and jobs=8:\n--- jobs=1\n%s\n--- jobs=8\n%s",
				i, seq[i], par[i])
		}
	}
}

// TestRunAllOrdered: RunAll fans tables out but must return them in ids
// order with per-table errors attributed.
func TestRunAllOrdered(t *testing.T) {
	ids := []string{"table2", "table1"}
	tabs, err := RunAll(ids, Options{NumTxns: 6, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 || tabs[0].ID != "table2" || tabs[1].ID != "table1" {
		t.Fatalf("RunAll order wrong: %v", []string{tabs[0].ID, tabs[1].ID})
	}
	if _, err := RunAll([]string{"table1", "nope"}, Options{NumTxns: 6}); err == nil ||
		!strings.Contains(err.Error(), "nope") {
		t.Fatalf("RunAll did not attribute the failing table: %v", err)
	}
}
