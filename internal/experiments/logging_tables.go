package experiments

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/recovery/logging"
)

// Table1 reproduces "Impact of Logging": execution time per page and
// transaction completion time, with and without logical logging (one log
// processor), for the four standard configurations.
func Table1(opt Options) (*Table, error) {
	t := &Table{
		ID:      "table1",
		Title:   "Impact of Logging (1 log processor, logical logging)",
		Columns: []string{"Configuration", "Exec/Page w/o Log", "Exec/Page w/ Log", "Completion w/o Log", "Completion w/ Log"},
		Paper: [][]string{
			{"Conventional-Random", "18.0", "17.9", "7398.4", "7543.2"},
			{"Parallel-Random", "16.6", "16.5", "6476.0", "6649.9"},
			{"Conventional-Sequential", "11.0", "11.4", "4016.5", "4333.5"},
			{"Parallel-Sequential", "1.9", "2.0", "758.1", "862.2"},
		},
	}
	// Cell i is configuration i/2, bare (even) or logged (odd).
	res, err := runCells(opt, len(fourConfigs)*2, func(i int) (machine.Config, machine.Model) {
		var mdl machine.Model
		if i%2 == 1 {
			mdl = logging.New(logging.Config{})
		}
		return fourConfigs[i/2].config(opt), mdl
	})
	if err != nil {
		return nil, err
	}
	for ci, c := range fourConfigs {
		bare, logged := res[ci*2], res[ci*2+1]
		t.Rows = append(t.Rows, []string{
			c.Name,
			ms(bare.ExecPerPageMs), ms(logged.ExecPerPageMs),
			ms(bare.MeanCompletionMs), ms(logged.MeanCompletionMs),
		})
	}
	t.Notes = "log-page assembly overlaps data processing; only completion times move"
	return t, nil
}

// Table2 reproduces "Log Characteristics": the utilization of a single log
// disk under logical logging.
func Table2(opt Options) (*Table, error) {
	t := &Table{
		ID:      "table2",
		Title:   "Log Disk Utilization (one log processor)",
		Columns: []string{"Configuration", "Log Disk Utilization"},
		Paper: [][]string{
			{"Conventional-Random", "0.02"},
			{"Parallel-Random", "0.02"},
			{"Conventional-Sequential", "0.02"},
			{"Parallel-Sequential", "0.13"},
		},
	}
	res, err := runCells(opt, len(fourConfigs), func(i int) (machine.Config, machine.Model) {
		return fourConfigs[i].config(opt), logging.New(logging.Config{})
	})
	if err != nil {
		return nil, err
	}
	for ci, c := range fourConfigs {
		t.Rows = append(t.Rows, []string{c.Name, ratio(res[ci].Extra["log.diskUtil"])})
	}
	t.Notes = "the query processors cannot update pages fast enough to keep even one log disk busy"
	return t, nil
}

// table3Config is the scaled-up machine of Table 3: 75 query processors,
// 2 parallel-access data disks, 150 cache frames, sequential transactions,
// physical logging.
func table3Config(opt Options) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.QueryProcessors = 75
	cfg.CacheFrames = 150
	cfg.ParallelDisks = true
	cfg.Workload.Sequential = true
	return opt.apply(cfg)
}

// Table3 reproduces "Performance of Parallel Logging and Log Processor
// Selection Algorithms": physical logging with 1-5 log disks under the four
// selection algorithms, plus the no-logging baseline.
func Table3(opt Options) (*Table, error) {
	t := &Table{
		ID:    "table3",
		Title: "Parallel Physical Logging (75 QPs, 2 parallel-access disks, 150 frames)",
		Columns: []string{"Log Disks",
			"cyclic e/p", "random e/p", "qpno e/p", "tranno e/p",
			"cyclic compl", "random compl", "qpno compl", "tranno compl"},
		Paper: [][]string{
			{"1", "5.1", "5.1", "5.1", "5.1", "4518.1", "4518.1", "4518.1", "4518.1"},
			{"2", "2.5", "2.6", "2.6", "2.7", "1999.5", "2104.3", "2232.0", "2165.4"},
			{"3", "1.7", "1.8", "1.8", "2.1", "1078.9", "1137.2", "1135.7", "1381.8"},
			{"4", "1.5", "1.5", "1.5", "2.0", "830.7", "854.6", "837.8", "1137.5"},
			{"5", "1.3", "1.4", "1.3", "2.0", "716.3", "741.7", "714.1", "1128.4"},
			{"w/o logging", "0.9", "0.9", "0.9", "0.9", "430.6", "430.6", "430.6", "430.6"},
		},
	}
	selections := []logging.Selection{logging.Cyclic, logging.Random, logging.QpNoMod, logging.TranNoMod}
	// Cells 0..19 are (log disks i/4 + 1, selection i%4); cell 20 is the
	// no-logging baseline.
	res, err := runCells(opt, 5*len(selections)+1, func(i int) (machine.Config, machine.Model) {
		if i == 5*len(selections) {
			return table3Config(opt), nil
		}
		return table3Config(opt), logging.New(logging.Config{
			Mode:          logging.Physical,
			LogProcessors: i/len(selections) + 1,
			Selection:     selections[i%len(selections)],
		})
	})
	if err != nil {
		return nil, err
	}
	for n := 1; n <= 5; n++ {
		row := []string{fmt.Sprintf("%d", n)}
		var compl []string
		for si := range selections {
			r := res[(n-1)*len(selections)+si]
			row = append(row, ms(r.ExecPerPageMs))
			compl = append(compl, ms(r.MeanCompletionMs))
		}
		t.Rows = append(t.Rows, append(row, compl...))
	}
	bare := res[5*len(selections)]
	e, c := ms(bare.ExecPerPageMs), ms(bare.MeanCompletionMs)
	t.Rows = append(t.Rows, []string{"w/o logging", e, e, e, e, c, c, c, c})
	t.Notes = "one log disk is the bottleneck; tranno-mod loses with few concurrent transactions"
	return t, nil
}

// Bandwidth reproduces the Section 4.1.3 study: the effect of the query
// processor / log processor interconnect (1.0, 0.1, 0.01 MB/s dedicated
// networks, and routing the fragments through the disk cache).
func Bandwidth(opt Options) (*Table, error) {
	t := &Table{
		ID:      "bandwidth",
		Title:   "QP/LP Interconnect Study (logical logging, 1 log processor)",
		Columns: []string{"Configuration", "1.0 MB/s", "0.1 MB/s", "0.01 MB/s", "via cache"},
		Notes:   "paper reports performance is quite insensitive to the medium (no table published)",
	}
	bws := []float64{1.0, 0.1, 0.01}
	perCfg := len(bws) + 1 // three bandwidths, then via-cache routing
	res, err := runCells(opt, len(fourConfigs)*perCfg, func(i int) (machine.Config, machine.Model) {
		cfg := fourConfigs[i/perCfg].config(opt)
		if j := i % perCfg; j < len(bws) {
			return cfg, logging.New(logging.Config{NetBandwidthMBs: bws[j]})
		}
		return cfg, logging.New(logging.Config{Routing: logging.ViaCache})
	})
	if err != nil {
		return nil, err
	}
	for ci, c := range fourConfigs {
		row := []string{c.Name}
		for j := 0; j < perCfg; j++ {
			row = append(row, ms(res[ci*perCfg+j].ExecPerPageMs))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
