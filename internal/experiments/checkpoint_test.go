package experiments

import (
	"strconv"
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/recovery/difffile"
	"repro/internal/recovery/logging"
	"repro/internal/recovery/shadow"
)

func TestCheckpointSweepShape(t *testing.T) {
	tab, err := CheckpointSweep(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Parallel checkpoints barely move throughput even at the shortest
	// interval (the paper's [13] claim).
	base, parShort := cell(tab, 0, 1), cell(tab, 3, 1)
	if parShort > base*1.05 {
		t.Errorf("parallel checkpoints degraded throughput: %.1f vs %.1f", parShort, base)
	}
	// Quiescing checkpoints cost more the more often they run.
	if cell(tab, 3, 2) <= cell(tab, 0, 2) {
		t.Errorf("quiescing checkpoints free? %.1f vs %.1f", cell(tab, 3, 2), cell(tab, 0, 2))
	}
}

func TestSystemRecoveryShape(t *testing.T) {
	tab, err := SystemRecovery(Options{NumTxns: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	restart := func(row int) float64 {
		v, err := strconv.ParseFloat(tab.Rows[row][3], 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// Restart time falls with more parallel log disks; 4 disks must be at
	// least twice as fast as 1.
	if restart(4) >= restart(0) {
		t.Errorf("5 log disks (%v) not faster than 1 (%v)", restart(4), restart(0))
	}
	if restart(3) > restart(0)/2 {
		t.Errorf("4 log disks (%v) should halve the 1-disk restart (%v)", restart(3), restart(0))
	}
}

// TestStallFreedomFuzz drives random valid machine configurations through
// every recovery model; the simulator must always finish the load — the
// machine's central liveness invariant (no lost wakeups, no WAL deadlocks,
// no leaked frames).
func TestStallFreedomFuzz(t *testing.T) {
	mkModels := []func() machine.Model{
		func() machine.Model { return nil },
		func() machine.Model { return logging.New(logging.Config{}) },
		func() machine.Model { return logging.New(logging.Config{Mode: logging.Physical, LogProcessors: 2}) },
		func() machine.Model { return shadow.NewPageTable(shadow.Config{BufferPages: 3}) },
		func() machine.Model { return shadow.NewOverwrite(shadow.Config{}, true) },
		func() machine.Model { return shadow.NewOverwrite(shadow.Config{}, false) },
		func() machine.Model { return difffile.New(difffile.Config{}) },
	}
	f := func(qps, frames, disks, mpl, maxPages, modelIdx uint8, par, seq bool, seed int64, abort uint8) bool {
		cfg := machine.DefaultConfig()
		cfg.QueryProcessors = int(qps%20) + 1
		cfg.CacheFrames = int(frames%60) + 8
		cfg.DataDisks = int(disks%3) + 1
		cfg.MPL = int(mpl%4) + 1
		cfg.NumTxns = 5
		cfg.Workload.MaxPages = int(maxPages%100) + 1
		cfg.Workload.Sequential = seq
		cfg.ParallelDisks = par
		cfg.Seed = seed
		cfg.AbortFrac = float64(abort%3) * 0.25
		res, err := machine.Run(cfg, mkModels[int(modelIdx)%len(mkModels)]())
		if err != nil {
			t.Logf("stalled: %v", err)
			return false
		}
		return res.Committed+res.Aborted == cfg.NumTxns
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
