package experiments

import (
	"repro/internal/machine"
	"repro/internal/recovery/difffile"
	"repro/internal/recovery/logging"
	"repro/internal/recovery/shadow"
)

// Table9 reproduces "Impact of the Differential File Mechanism": basic vs
// optimal query-processing strategy, both metrics, four configurations.
func Table9(opt Options) (*Table, error) {
	t := &Table{
		ID:    "table9",
		Title: "Impact of the Differential File Mechanism (10% files)",
		Columns: []string{"Configuration",
			"Bare e/p", "Basic e/p", "Optimal e/p",
			"Bare compl", "Basic compl", "Optimal compl"},
		Paper: [][]string{
			{"Conventional-Random", "18.0", "37.8", "19.2", "7398.4", "11589.8", "6634.3"},
			{"Parallel-Random", "16.6", "37.7", "18.0", "6476.0", "11565.1", "6207.6"},
			{"Conventional-Sequential", "11.0", "37.6", "17.8", "4016.5", "11443.7", "5795.5"},
			{"Parallel-Sequential", "1.9", "37.6", "13.9", "758.1", "11368.8", "4573.5"},
		},
	}
	for _, c := range fourConfigs {
		cfg := c.config(opt)
		bare, err := machine.Run(cfg, nil)
		if err != nil {
			return nil, err
		}
		basic, err := machine.Run(cfg, difffile.New(difffile.Config{Strategy: difffile.Basic}))
		if err != nil {
			return nil, err
		}
		optimal, err := machine.Run(cfg, difffile.New(difffile.Config{Strategy: difffile.Optimal}))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{c.Name,
			ms(bare.ExecPerPageMs), ms(basic.ExecPerPageMs), ms(optimal.ExecPerPageMs),
			ms(bare.MeanCompletionMs), ms(basic.MeanCompletionMs), ms(optimal.MeanCompletionMs)})
	}
	t.Notes = "the basic strategy is CPU bound and flat across configurations"
	return t, nil
}

// Table10 reproduces "Effect of Output Fraction on Execution Time per Page".
func Table10(opt Options) (*Table, error) {
	t := &Table{
		ID:      "table10",
		Title:   "Effect of Output Fraction (optimal strategy)",
		Columns: []string{"Configuration", "Bare", "10%", "20%", "50%"},
		Paper: [][]string{
			{"Conventional-Random", "18.0", "19.2", "19.2", "20.3"},
			{"Parallel-Random", "16.6", "18.0", "18.0", "18.9"},
			{"Conventional-Sequential", "11.0", "17.8", "17.9", "17.8"},
			{"Parallel-Sequential", "1.9", "13.9", "13.9", "13.6"},
		},
	}
	for _, c := range fourConfigs {
		cfg := c.config(opt)
		bare, err := machine.Run(cfg, nil)
		if err != nil {
			return nil, err
		}
		row := []string{c.Name, ms(bare.ExecPerPageMs)}
		for _, frac := range []float64{0.10, 0.20, 0.50} {
			res, err := machine.Run(cfg, difffile.New(difffile.Config{OutputFrac: frac}))
			if err != nil {
				return nil, err
			}
			row = append(row, ms(res.ExecPerPageMs))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = "output pages grow sublinearly with the fraction due to per-transaction fragmentation"
	return t, nil
}

// Table11 reproduces "Effect of Size of Differential Files on Execution Time
// per Page".
func Table11(opt Options) (*Table, error) {
	t := &Table{
		ID:      "table11",
		Title:   "Effect of Differential File Size (optimal strategy)",
		Columns: []string{"Configuration", "Bare", "10%", "15%", "20%"},
		Paper: [][]string{
			{"Conventional-Random", "18.0", "19.2", "24.8", "37.0"},
			{"Parallel-Random", "16.6", "18.0", "24.4", "37.0"},
			{"Conventional-Sequential", "11.0", "17.8", "25.8", "39.6"},
			{"Parallel-Sequential", "1.9", "13.9", "23.5", "36.4"},
		},
	}
	for _, c := range fourConfigs {
		cfg := c.config(opt)
		bare, err := machine.Run(cfg, nil)
		if err != nil {
			return nil, err
		}
		row := []string{c.Name, ms(bare.ExecPerPageMs)}
		for _, frac := range []float64{0.10, 0.15, 0.20} {
			res, err := machine.Run(cfg, difffile.New(difffile.Config{DiffFrac: frac}))
			if err != nil {
				return nil, err
			}
			row = append(row, ms(res.ExecPerPageMs))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = "degradation grows nonlinearly with differential file size"
	return t, nil
}

// Table12 reproduces the grand comparison of all recovery architectures.
func Table12(opt Options) (*Table, error) {
	t := &Table{
		ID:    "table12",
		Title: "Average Execution Time per Page — all architectures",
		Columns: []string{"Configuration", "Bare", "Logging",
			"PT buf=10", "PT buf=50", "2 PTProc", "Scrambled", "Overwriting", "DiffFile"},
		Paper: [][]string{
			{"Conventional-Random", "18.0", "17.9", "20.5", "18.0", "18.0", "20.5", "26.9", "19.2"},
			{"Parallel-Random", "16.6", "16.5", "20.5", "16.7", "16.7", "20.5", "21.6", "18.0"},
			{"Conventional-Sequential", "11.0", "11.4", "11.0", "11.0", "11.0", "20.7", "24.1", "17.8"},
			{"Parallel-Sequential", "1.9", "2.0", "1.9", "1.9", "1.9", "18.5", "2.3", "13.9"},
		},
	}
	for _, c := range fourConfigs {
		cfg := c.config(opt)
		models := []machine.Model{
			nil,
			logging.New(logging.Config{}),
			shadow.NewPageTable(shadow.Config{BufferPages: 10}),
			shadow.NewPageTable(shadow.Config{BufferPages: 50}),
			shadow.NewPageTable(shadow.Config{PageTableProcessors: 2}),
			shadow.NewPageTable(shadow.Config{Scrambled: true}),
			shadow.NewOverwrite(shadow.Config{}, true),
			difffile.New(difffile.Config{}),
		}
		row := []string{c.Name}
		for _, mdl := range models {
			res, err := machine.Run(cfg, mdl)
			if err != nil {
				return nil, err
			}
			row = append(row, ms(res.ExecPerPageMs))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = "parallel logging is the best overall recovery architecture"
	return t, nil
}
