package experiments

import (
	"repro/internal/machine"
	"repro/internal/recovery/difffile"
	"repro/internal/recovery/logging"
	"repro/internal/recovery/shadow"
)

// Table9 reproduces "Impact of the Differential File Mechanism": basic vs
// optimal query-processing strategy, both metrics, four configurations.
func Table9(opt Options) (*Table, error) {
	t := &Table{
		ID:    "table9",
		Title: "Impact of the Differential File Mechanism (10% files)",
		Columns: []string{"Configuration",
			"Bare e/p", "Basic e/p", "Optimal e/p",
			"Bare compl", "Basic compl", "Optimal compl"},
		Paper: [][]string{
			{"Conventional-Random", "18.0", "37.8", "19.2", "7398.4", "11589.8", "6634.3"},
			{"Parallel-Random", "16.6", "37.7", "18.0", "6476.0", "11565.1", "6207.6"},
			{"Conventional-Sequential", "11.0", "37.6", "17.8", "4016.5", "11443.7", "5795.5"},
			{"Parallel-Sequential", "1.9", "37.6", "13.9", "758.1", "11368.8", "4573.5"},
		},
	}
	models := []func() machine.Model{
		func() machine.Model { return nil },
		func() machine.Model { return difffile.New(difffile.Config{Strategy: difffile.Basic}) },
		func() machine.Model { return difffile.New(difffile.Config{Strategy: difffile.Optimal}) },
	}
	res, err := runCells(opt, len(fourConfigs)*len(models), func(i int) (machine.Config, machine.Model) {
		return fourConfigs[i/len(models)].config(opt), models[i%len(models)]()
	})
	if err != nil {
		return nil, err
	}
	for ci, c := range fourConfigs {
		bare, basic, optimal := res[ci*3], res[ci*3+1], res[ci*3+2]
		t.Rows = append(t.Rows, []string{c.Name,
			ms(bare.ExecPerPageMs), ms(basic.ExecPerPageMs), ms(optimal.ExecPerPageMs),
			ms(bare.MeanCompletionMs), ms(basic.MeanCompletionMs), ms(optimal.MeanCompletionMs)})
	}
	t.Notes = "the basic strategy is CPU bound and flat across configurations"
	return t, nil
}

// fracSweep builds the shared shape of Tables 10 and 11: per configuration,
// a bare run followed by one differential-file run per fraction.
func fracSweep(opt Options, fracs []float64, mk func(frac float64) machine.Model) ([][]string, error) {
	perCfg := 1 + len(fracs)
	res, err := runCells(opt, len(fourConfigs)*perCfg, func(i int) (machine.Config, machine.Model) {
		cfg := fourConfigs[i/perCfg].config(opt)
		if j := i % perCfg; j > 0 {
			return cfg, mk(fracs[j-1])
		}
		return cfg, nil
	})
	if err != nil {
		return nil, err
	}
	var rows [][]string
	for ci, c := range fourConfigs {
		row := []string{c.Name}
		for j := 0; j < perCfg; j++ {
			row = append(row, ms(res[ci*perCfg+j].ExecPerPageMs))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table10 reproduces "Effect of Output Fraction on Execution Time per Page".
func Table10(opt Options) (*Table, error) {
	t := &Table{
		ID:      "table10",
		Title:   "Effect of Output Fraction (optimal strategy)",
		Columns: []string{"Configuration", "Bare", "10%", "20%", "50%"},
		Paper: [][]string{
			{"Conventional-Random", "18.0", "19.2", "19.2", "20.3"},
			{"Parallel-Random", "16.6", "18.0", "18.0", "18.9"},
			{"Conventional-Sequential", "11.0", "17.8", "17.9", "17.8"},
			{"Parallel-Sequential", "1.9", "13.9", "13.9", "13.6"},
		},
	}
	rows, err := fracSweep(opt, []float64{0.10, 0.20, 0.50}, func(frac float64) machine.Model {
		return difffile.New(difffile.Config{OutputFrac: frac})
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = "output pages grow sublinearly with the fraction due to per-transaction fragmentation"
	return t, nil
}

// Table11 reproduces "Effect of Size of Differential Files on Execution Time
// per Page".
func Table11(opt Options) (*Table, error) {
	t := &Table{
		ID:      "table11",
		Title:   "Effect of Differential File Size (optimal strategy)",
		Columns: []string{"Configuration", "Bare", "10%", "15%", "20%"},
		Paper: [][]string{
			{"Conventional-Random", "18.0", "19.2", "24.8", "37.0"},
			{"Parallel-Random", "16.6", "18.0", "24.4", "37.0"},
			{"Conventional-Sequential", "11.0", "17.8", "25.8", "39.6"},
			{"Parallel-Sequential", "1.9", "13.9", "23.5", "36.4"},
		},
	}
	rows, err := fracSweep(opt, []float64{0.10, 0.15, 0.20}, func(frac float64) machine.Model {
		return difffile.New(difffile.Config{DiffFrac: frac})
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = "degradation grows nonlinearly with differential file size"
	return t, nil
}

// Table12 reproduces the grand comparison of all recovery architectures.
func Table12(opt Options) (*Table, error) {
	t := &Table{
		ID:    "table12",
		Title: "Average Execution Time per Page — all architectures",
		Columns: []string{"Configuration", "Bare", "Logging",
			"PT buf=10", "PT buf=50", "2 PTProc", "Scrambled", "Overwriting", "DiffFile"},
		Paper: [][]string{
			{"Conventional-Random", "18.0", "17.9", "20.5", "18.0", "18.0", "20.5", "26.9", "19.2"},
			{"Parallel-Random", "16.6", "16.5", "20.5", "16.7", "16.7", "20.5", "21.6", "18.0"},
			{"Conventional-Sequential", "11.0", "11.4", "11.0", "11.0", "11.0", "20.7", "24.1", "17.8"},
			{"Parallel-Sequential", "1.9", "2.0", "1.9", "1.9", "1.9", "18.5", "2.3", "13.9"},
		},
	}
	models := []func() machine.Model{
		func() machine.Model { return nil },
		func() machine.Model { return logging.New(logging.Config{}) },
		func() machine.Model { return shadow.NewPageTable(shadow.Config{BufferPages: 10}) },
		func() machine.Model { return shadow.NewPageTable(shadow.Config{BufferPages: 50}) },
		func() machine.Model { return shadow.NewPageTable(shadow.Config{PageTableProcessors: 2}) },
		func() machine.Model { return shadow.NewPageTable(shadow.Config{Scrambled: true}) },
		func() machine.Model { return shadow.NewOverwrite(shadow.Config{}, true) },
		func() machine.Model { return difffile.New(difffile.Config{}) },
	}
	res, err := runCells(opt, len(fourConfigs)*len(models), func(i int) (machine.Config, machine.Model) {
		return fourConfigs[i/len(models)].config(opt), models[i%len(models)]()
	})
	if err != nil {
		return nil, err
	}
	for ci, c := range fourConfigs {
		row := []string{c.Name}
		for j := range models {
			row = append(row, ms(res[ci*len(models)+j].ExecPerPageMs))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = "parallel logging is the best overall recovery architecture"
	return t, nil
}
