// Package experiments regenerates every table of the paper's evaluation
// (Tables 1-12) plus the Section 4.1.3 interconnect-bandwidth study. Each
// driver runs the required simulations and returns a Table holding both the
// measured values and the paper's published values, so the two can be
// printed side by side.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/machine"
	"repro/internal/runpool"
)

// Options tune an experiment run.
//
// The zero value keeps the historical sentinel behavior: NumTxns == 0 and
// Seed == 0 mean "use the machine.DefaultConfig value" (the full 40
// transactions, seed 1985). To actually request zero — a zero seed, or a
// run with no transactions — set the matching *Set flag, or start from
// DefaultOptions and override.
type Options struct {
	// NumTxns is the transaction count per simulation. Zero is the
	// use-the-default sentinel unless NumTxnsSet marks it explicit.
	NumTxns int
	// NumTxnsSet marks NumTxns as explicit, making NumTxns == 0 expressible.
	NumTxnsSet bool
	// Seed is the base random seed. Zero is the use-the-default sentinel
	// unless SeedSet marks it explicit.
	Seed int64
	// SeedSet marks Seed as explicit, making Seed == 0 expressible.
	SeedSet bool
	// Jobs is the worker count for fanning a table's independent simulation
	// cells out through internal/runpool (< 1 = GOMAXPROCS). Every cell owns
	// its own seeded engine and results are collected in submission order,
	// so any value renders byte-identical tables.
	Jobs int
}

// DefaultOptions returns the experiment defaults fully resolved and marked
// explicit: machine.DefaultConfig's paper-scale transaction count and seed.
// Unlike the zero Options value, overriding a field of DefaultOptions to
// zero means zero.
func DefaultOptions() Options {
	cfg := machine.DefaultConfig()
	return Options{
		NumTxns: cfg.NumTxns, NumTxnsSet: true,
		Seed: cfg.Seed, SeedSet: true,
	}
}

func (o Options) apply(cfg machine.Config) machine.Config {
	if o.NumTxnsSet || o.NumTxns > 0 {
		cfg.NumTxns = o.NumTxns
	}
	if o.SeedSet || o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	return cfg
}

// runCells executes n independent machine simulations through the run pool
// and returns the results in cell order. Cell i is described by mk(i),
// which must build a fresh Config and Model (models carry per-run state);
// mk runs on pool workers, so it must not touch shared mutable state.
func runCells(opt Options, n int, mk func(i int) (machine.Config, machine.Model)) ([]*machine.Result, error) {
	return runpool.Map(opt.Jobs, n, func(i int) (*machine.Result, error) {
		cfg, mdl := mk(i)
		return machine.Run(cfg, mdl)
	})
}

// Table is one regenerated evaluation table.
type Table struct {
	ID      string
	Title   string
	Columns []string   // first column is the row label
	Rows    [][]string // measured values
	Paper   [][]string // the paper's published values (same shape; may be nil)
	Notes   string
}

// Render formats the table (and the paper's values, if present) as ASCII.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(t.ID), t.Title)
	b.WriteString(renderGrid(t.Columns, t.Rows))
	if t.Paper != nil {
		b.WriteString("paper reported:\n")
		b.WriteString(renderGrid(t.Columns, t.Paper))
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// RenderMarkdown formats the table as GitHub-flavoured markdown, with the
// paper's published values interleaved as "(paper X)" where available.
func (t *Table) RenderMarkdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", strings.ToUpper(t.ID), t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for ri, r := range t.Rows {
		cells := make([]string, len(r))
		copy(cells, r)
		if t.Paper != nil && ri < len(t.Paper) {
			for ci := 1; ci < len(cells) && ci < len(t.Paper[ri]); ci++ {
				cells[ci] = fmt.Sprintf("%s *(paper %s)*", cells[ci], t.Paper[ri][ci])
			}
		}
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "\n*%s*\n", t.Notes)
	}
	b.WriteString("\n")
	return b.String()
}

func renderGrid(cols []string, rows [][]string) string {
	// widths covers the widest row, not just the header, so a ragged row
	// with more cells than columns renders instead of indexing out of range.
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	for _, r := range rows {
		for i, c := range r {
			for i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(cols)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// configCase is one of the paper's four standard machine configurations.
type configCase struct {
	Name       string
	Sequential bool
	Parallel   bool
}

// fourConfigs are the paper's standard configurations, in table order.
var fourConfigs = []configCase{
	{"Conventional-Random", false, false},
	{"Parallel-Random", false, true},
	{"Conventional-Sequential", true, false},
	{"Parallel-Sequential", true, true},
}

func (c configCase) config(opt Options) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Workload.Sequential = c.Sequential
	cfg.ParallelDisks = c.Parallel
	return opt.apply(cfg)
}

func ms(v float64) string { return fmt.Sprintf("%.1f", v) }

func ratio(v float64) string { return fmt.Sprintf("%.2f", v) }

// Runner is a named experiment driver.
type Runner func(Options) (*Table, error)

// registry maps experiment IDs to drivers.
var registry = map[string]Runner{
	"table1":    Table1,
	"table2":    Table2,
	"table3":    Table3,
	"table4":    Table4,
	"table5":    Table5,
	"table6":    Table6,
	"table7":    Table7,
	"table8":    Table8,
	"table9":    Table9,
	"table10":   Table10,
	"table11":   Table11,
	"table12":   Table12,
	"bandwidth": Bandwidth,
}

// Run executes the experiment with the given ID ("table1".."table12",
// "bandwidth").
func Run(id string, opt Options) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)",
			id, strings.Join(IDs(), ", "))
	}
	return r(opt)
}

// RunAll executes every experiment named in ids through the run pool,
// fanning whole tables out across workers (each table additionally fans its
// own cells out, so small tables cannot serialize the batch). Tables come
// back in ids order; the first failing table (lowest index) reports the
// error.
func RunAll(ids []string, opt Options) ([]*Table, error) {
	return runpool.Map(opt.Jobs, len(ids), func(i int) (*Table, error) {
		tab, err := Run(ids[i], opt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", ids[i], err)
		}
		return tab, nil
	})
}

// IDs lists the registered experiment IDs in a stable order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		// table2 < table10 numerically.
		ni, errI := idOrder(out[i])
		nj, errJ := idOrder(out[j])
		if errI == nil && errJ == nil {
			return ni < nj
		}
		if (errI == nil) != (errJ == nil) {
			return errI == nil
		}
		return out[i] < out[j]
	})
	return out
}

func idOrder(id string) (int, error) {
	var n int
	_, err := fmt.Sscanf(id, "table%d", &n)
	return n, err
}
