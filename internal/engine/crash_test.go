package engine

import (
	"fmt"
	"testing"

	"repro/internal/pagestore"
	"repro/internal/shadoweng"
	"repro/internal/sim"
	"repro/internal/wal"
)

// crashCase builds an engine plus the store whose write budget injects the
// crash.
type crashCase struct {
	name  string
	build func(t *testing.T) (*Engine, *pagestore.Store)
}

func crashCases() []crashCase {
	return []crashCase{
		{"wal-1stream", func(t *testing.T) (*Engine, *pagestore.Store) {
			store := pagestore.New(4096)
			e, m := NewWALOn(store, wal.Config{PoolPages: 4})
			_ = m
			return e, store
		}},
		{"wal-3streams", func(t *testing.T) (*Engine, *pagestore.Store) {
			store := pagestore.New(4096)
			e, m := NewWALOn(store, wal.Config{Streams: 3, Selection: wal.PageMod, PoolPages: 4})
			_ = m
			return e, store
		}},
		{"shadow", func(t *testing.T) (*Engine, *pagestore.Store) {
			store := pagestore.New(4096)
			e, err := NewShadowOn(store)
			if err != nil {
				t.Fatal(err)
			}
			return e, store
		}},
		{"ow-noundo", func(t *testing.T) (*Engine, *pagestore.Store) {
			store := pagestore.New(4096)
			return NewOverwriteOn(store, shadoweng.NoUndo), store
		}},
		{"ow-noredo", func(t *testing.T) (*Engine, *pagestore.Store) {
			store := pagestore.New(4096)
			return NewOverwriteOn(store, shadoweng.NoRedo), store
		}},
		{"verselect", func(t *testing.T) (*Engine, *pagestore.Store) {
			store := pagestore.New(4096)
			e, err := NewVersionSelectOn(store)
			if err != nil {
				t.Fatal(err)
			}
			return e, store
		}},
		{"difffile", func(t *testing.T) (*Engine, *pagestore.Store) {
			store := pagestore.New(4096)
			return NewDiffOn(store), store
		}},
	}
}

// TestCrashScheduleSweep drives every engine through a randomized
// transaction history, cutting power at every possible stable-write
// boundary, and verifies that recovery always restores a state consistent
// with the committed (plus possibly one atomic in-doubt) history.
func TestCrashScheduleSweep(t *testing.T) {
	const pages = 6
	for _, cc := range crashCases() {
		cc := cc
		t.Run(cc.name, func(t *testing.T) {
			for budget := int64(1); budget <= 40; budget++ {
				runCrashSchedule(t, cc, budget, pages)
			}
		})
	}
}

func runCrashSchedule(t *testing.T, cc crashCase, budget int64, pages int) {
	t.Helper()
	e, store := cc.build(t)
	model := map[int64]string{}
	for p := int64(0); p < int64(pages); p++ {
		v := fmt.Sprintf("init%d", p)
		if err := e.Load(p, []byte(v)); err != nil {
			t.Fatalf("budget %d: load: %v", budget, err)
		}
		model[p] = v
	}
	rng := sim.NewRNG(budget * 7919)
	store.SetWriteBudget(budget)

	// Run transactions until the store crashes (or a fixed cap).
	var doubt map[int64]string
	for i := 0; i < 25; i++ {
		tx, err := e.Begin()
		if err != nil {
			break // store down
		}
		writes := map[int64]string{}
		n := rng.UniformInt(1, 3)
		failed := false
		for j := 0; j < n; j++ {
			p := int64(rng.Intn(pages))
			v := fmt.Sprintf("b%d-t%d-%d", budget, tx.ID(), j)
			if err := tx.Write(p, []byte(v)); err != nil {
				failed = true
				break
			}
			writes[p] = v
		}
		if failed {
			_ = tx.Abort() // may itself fail; either way it is a loser
			break
		}
		if rng.Bool(0.2) {
			if err := tx.Abort(); err != nil {
				break
			}
			continue
		}
		if err := tx.Commit(); err != nil {
			doubt = writes // power failed mid-commit: in doubt
			break
		}
		for p, v := range writes {
			model[p] = v
		}
	}

	e.Crash()
	if err := e.Recover(); err != nil {
		t.Fatalf("budget %d: recover: %v", budget, err)
	}
	applied, reverted := 0, 0
	for p := int64(0); p < int64(pages); p++ {
		got, err := e.ReadCommitted(p)
		if err != nil {
			t.Fatalf("budget %d: read %d: %v", budget, p, err)
		}
		if v, ok := doubt[p]; ok {
			switch string(got) {
			case v:
				applied++
			case model[p]:
				reverted++
			default:
				t.Fatalf("budget %d: page %d = %q (neither %q nor %q)",
					budget, p, got, v, model[p])
			}
			continue
		}
		if string(got) != model[p] {
			t.Fatalf("budget %d: page %d = %q, want %q", budget, p, got, model[p])
		}
	}
	if applied > 0 && reverted > 0 {
		t.Fatalf("budget %d: in-doubt commit torn (%d applied, %d reverted)",
			budget, applied, reverted)
	}

	// The recovered engine must be fully operational.
	if err := e.Update(func(tx *Txn) error { return tx.Write(0, []byte("post")) }); err != nil {
		t.Fatalf("budget %d: post-recovery update: %v", budget, err)
	}
	got, err := e.ReadCommitted(0)
	if err != nil || string(got) != "post" {
		t.Fatalf("budget %d: post-recovery state: %q %v", budget, got, err)
	}
}

// TestDoubleCrash exercises crash -> recover -> more work -> crash ->
// recover for every engine.
func TestDoubleCrash(t *testing.T) {
	for _, cc := range crashCases() {
		cc := cc
		t.Run(cc.name, func(t *testing.T) {
			e, _ := cc.build(t)
			if err := e.Load(1, []byte("v0")); err != nil {
				t.Fatal(err)
			}
			if err := e.Update(func(tx *Txn) error { return tx.Write(1, []byte("v1")) }); err != nil {
				t.Fatal(err)
			}
			e.Crash()
			if err := e.Recover(); err != nil {
				t.Fatal(err)
			}
			if err := e.Update(func(tx *Txn) error { return tx.Write(1, []byte("v2")) }); err != nil {
				t.Fatal(err)
			}
			e.Crash()
			if err := e.Recover(); err != nil {
				t.Fatal(err)
			}
			got, err := e.ReadCommitted(1)
			if err != nil || string(got) != "v2" {
				t.Fatalf("after double crash: %q %v", got, err)
			}
		})
	}
}
