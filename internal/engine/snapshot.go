package engine

// Point-in-time backup and restore for any recovery architecture. Every
// kernel exposes its stable stores through the Snapshotter seam; the Guard
// serializes a snapshot against running transactions exactly like any
// other kernel call, so a backup taken mid-load is a transaction-
// consistent image of whatever the architecture keeps on stable storage —
// home pages AND the recovery structures (log chunks, intent records,
// differential files) that make in-flight work undoable/redoable. A
// restore therefore finishes with restart recovery: the restored bytes are
// treated like a machine that lost power at the snapshot instant.
//
// An archive multiplexes one pagestore snapshot blob per store:
//
//	magic   "GDSNAP1\n" (8 bytes)
//	kind    u8: 'F' full, 'I' incremental
//	nstores u32
//	  per store: u32 blob length · blob (see pagestore/snapshot.go)
//
// Incremental archives chain off the manifests the previous snapshot
// returned; ArchiveManifests recomputes manifests from archive files alone
// so chains survive process restarts.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/lockmgr"
	"repro/internal/obs"
	"repro/internal/obs/live"
	"repro/internal/pagestore"
)

var archiveMagic = [8]byte{'G', 'D', 'S', 'N', 'A', 'P', '1', '\n'}

const (
	archiveFull = 'F'
	archiveIncr = 'I'
)

// Snapshotter is implemented by kernels that expose their stable stores
// for backup (all seven architectures do).
type Snapshotter interface {
	Stores() []*pagestore.Store
}

// Snapshot writes a point-in-time archive of every stable store of the
// wrapped kernel to w and returns one manifest per store. base nil takes a
// full snapshot; base non-nil (the manifests returned by the previous
// snapshot in the chain, or by ArchiveManifests) takes an incremental one.
// The call runs under the guard lock, so the image is transaction-
// consistent. Returns ErrUnsupported for kernels without stable stores.
func (g *Guard) Snapshot(w io.Writer, base []pagestore.Manifest) ([]pagestore.Manifest, error) {
	tok := g.mx.Load().Enter(live.GuardOther)
	g.mu.Lock()
	tok.Acquired()
	defer g.mu.Unlock()
	defer tok.Release()
	sn, ok := g.rm.(Snapshotter)
	if !ok {
		return nil, ErrUnsupported
	}
	stores := sn.Stores()
	if base != nil && len(base) != len(stores) {
		return nil, fmt.Errorf("engine: snapshot base has %d manifests, kernel has %d stores",
			len(base), len(stores))
	}
	kind := byte(archiveFull)
	note := "full"
	if base != nil {
		kind = archiveIncr
		note = "incremental"
	}
	manifests := make([]pagestore.Manifest, len(stores))
	blobs := make([][]byte, len(stores))
	var pages int64
	for i, st := range stores {
		var b pagestore.Manifest
		if base != nil {
			b = base[i]
			if b == nil {
				b = pagestore.Manifest{}
			}
		}
		var buf bytes.Buffer
		m, err := st.WriteSnapshot(&buf, b)
		if err != nil {
			return nil, fmt.Errorf("engine: snapshot store %d: %w", i, err)
		}
		manifests[i] = m
		blobs[i] = buf.Bytes()
		pages += int64(len(m))
	}
	if err := writeArchive(w, kind, blobs); err != nil {
		return nil, err
	}
	g.journal.Emit(obs.JournalRecord{
		Event: "snapshot", Engine: g.rm.Name(), N: pages, Note: note,
	})
	return manifests, nil
}

// Restore applies a backup chain — one full archive followed by zero or
// more incrementals, in order — to the kernel's stable stores, then runs
// crash-restart recovery so the kernel rebuilds its volatile state from
// the restored bytes (in-flight transactions of the snapshot instant roll
// back or forward exactly as a power failure at that instant would). All
// under the guard lock. Returns ErrUnsupported for kernels without stable
// stores.
func (g *Guard) Restore(rs ...io.Reader) error {
	tok := g.mx.Load().Enter(live.GuardOther)
	g.mu.Lock()
	tok.Acquired()
	defer g.mu.Unlock()
	defer tok.Release()
	sn, ok := g.rm.(Snapshotter)
	if !ok {
		return ErrUnsupported
	}
	if len(rs) == 0 {
		return fmt.Errorf("engine: restore needs at least one archive")
	}
	stores := sn.Stores()
	for i, r := range rs {
		kind, blobs, err := readArchive(r)
		if err != nil {
			return fmt.Errorf("engine: restore archive %d: %w", i, err)
		}
		if i == 0 && kind != archiveFull {
			return fmt.Errorf("engine: restore archive 0 must be a full snapshot")
		}
		if i > 0 && kind != archiveIncr {
			return fmt.Errorf("engine: restore archive %d must be incremental", i)
		}
		if len(blobs) != len(stores) {
			return fmt.Errorf("engine: restore archive %d has %d stores, kernel has %d",
				i, len(blobs), len(stores))
		}
		for j, blob := range blobs {
			if err := stores[j].ApplySnapshot(bytes.NewReader(blob)); err != nil {
				return fmt.Errorf("engine: restore archive %d store %d: %w", i, j, err)
			}
		}
	}
	g.journal.Emit(obs.JournalRecord{
		Event: "restore", Engine: g.rm.Name(), N: int64(len(rs)),
	})
	if sc := g.stripes.Load(); sc != nil {
		sc.invalidateAll()
	}
	g.rm.Crash()
	g.recoveries.Inc()
	return g.rm.Recover()
}

// Snapshot takes a full point-in-time backup of the engine (see
// Guard.Snapshot).
func (e *Engine) Snapshot(w io.Writer) ([]pagestore.Manifest, error) {
	return e.rm.Snapshot(w, nil)
}

// SnapshotSince takes an incremental backup relative to base (see
// Guard.Snapshot).
func (e *Engine) SnapshotSince(w io.Writer, base []pagestore.Manifest) ([]pagestore.Manifest, error) {
	return e.rm.Snapshot(w, base)
}

// Restore applies a backup chain and re-runs recovery (see Guard.Restore).
// The lock table is reset along with the rest of volatile state.
func (e *Engine) Restore(rs ...io.Reader) error {
	if err := e.rm.Restore(rs...); err != nil {
		return err
	}
	e.locks = lockmgr.New()
	return nil
}

// ArchiveManifests folds a backup chain's archives (full first, then
// incrementals, in order) into the per-store manifests of the state the
// chain describes — without touching any store. Use it to resume an
// incremental chain in a new process: feed the result to SnapshotSince.
func ArchiveManifests(rs ...io.Reader) ([]pagestore.Manifest, error) {
	if len(rs) == 0 {
		return nil, fmt.Errorf("engine: manifests need at least one archive")
	}
	var manifests []pagestore.Manifest
	for i, r := range rs {
		kind, blobs, err := readArchive(r)
		if err != nil {
			return nil, fmt.Errorf("engine: archive %d: %w", i, err)
		}
		if i == 0 {
			if kind != archiveFull {
				return nil, fmt.Errorf("engine: archive 0 must be a full snapshot")
			}
			manifests = make([]pagestore.Manifest, len(blobs))
		} else if kind != archiveIncr {
			return nil, fmt.Errorf("engine: archive %d must be incremental", i)
		} else if len(blobs) != len(manifests) {
			return nil, fmt.Errorf("engine: archive %d has %d stores, chain has %d",
				i, len(blobs), len(manifests))
		}
		for j, blob := range blobs {
			m, err := pagestore.SnapshotManifest(bytes.NewReader(blob), manifests[j])
			if err != nil {
				return nil, fmt.Errorf("engine: archive %d store %d: %w", i, j, err)
			}
			manifests[j] = m
		}
	}
	return manifests, nil
}

func writeArchive(w io.Writer, kind byte, blobs [][]byte) error {
	hdr := make([]byte, 0, 13)
	hdr = append(hdr, archiveMagic[:]...)
	hdr = append(hdr, kind)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(len(blobs)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	for _, blob := range blobs {
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(len(blob)))
		if _, err := w.Write(n[:]); err != nil {
			return err
		}
		if _, err := w.Write(blob); err != nil {
			return err
		}
	}
	return nil
}

func readArchive(r io.Reader) (byte, [][]byte, error) {
	var hdr [13]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("short archive header: %w", err)
	}
	if [8]byte(hdr[:8]) != archiveMagic {
		return 0, nil, fmt.Errorf("bad archive magic")
	}
	kind := hdr[8]
	if kind != archiveFull && kind != archiveIncr {
		return 0, nil, fmt.Errorf("unknown archive kind %q", kind)
	}
	n := int(binary.BigEndian.Uint32(hdr[9:13]))
	blobs := make([][]byte, n)
	for i := range blobs {
		var ln [4]byte
		if _, err := io.ReadFull(r, ln[:]); err != nil {
			return 0, nil, fmt.Errorf("short blob %d length: %w", i, err)
		}
		blob := make([]byte, binary.BigEndian.Uint32(ln[:]))
		if _, err := io.ReadFull(r, blob); err != nil {
			return 0, nil, fmt.Errorf("short blob %d: %w", i, err)
		}
		blobs[i] = blob
	}
	return kind, blobs, nil
}
