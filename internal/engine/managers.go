package engine

import (
	"repro/internal/diffeng"
	"repro/internal/obs"
	"repro/internal/pagestore"
	"repro/internal/shadoweng"
	"repro/internal/wal"
)

// ErrBusy surfaces a kernel admission limit (today: the overwriting
// engines' fixed intention-list, shadoweng.ErrBusy). The transaction
// cannot proceed right now but the condition is transient — wrapper
// layers abort the transaction and retry, exactly like a deadlock
// victim.
var ErrBusy = shadoweng.ErrBusy

// walAdapter bridges wal.Manager's pagestore.PageID signatures to the int64
// RecoveryManager interface. It also forwards the maintenance surface
// (Checkpoint, Stats) so the engine's Guard can reach it under its lock.
type walAdapter struct{ m *wal.Manager }

func (a walAdapter) Name() string                 { return a.m.Name() }
func (a walAdapter) Load(p int64, d []byte) error { return a.m.Load(pagestore.PageID(p), d) }
func (a walAdapter) Begin(tid uint64) error       { return a.m.Begin(tid) }
func (a walAdapter) Commit(tid uint64) error      { return a.m.Commit(tid) }
func (a walAdapter) Abort(tid uint64) error       { return a.m.Abort(tid) }
func (a walAdapter) Crash()                       { a.m.Crash() }
func (a walAdapter) Recover() error               { return a.m.Recover() }
func (a walAdapter) Checkpoint() error            { return a.m.Checkpoint() }
func (a walAdapter) Stats() map[string]int64      { return a.m.Stats() }
func (a walAdapter) SetJournal(j *obs.Journal)    { a.m.SetJournal(j) }
func (a walAdapter) Stores() []*pagestore.Store   { return a.m.Stores() }
func (a walAdapter) Read(tid uint64, p int64) ([]byte, error) {
	return a.m.Read(tid, pagestore.PageID(p))
}
func (a walAdapter) Write(tid uint64, p int64, d []byte) error {
	return a.m.Write(tid, pagestore.PageID(p), d)
}
func (a walAdapter) ReadCommitted(p int64) ([]byte, error) {
	return a.m.ReadCommitted(pagestore.PageID(p))
}

// NewWAL builds an engine over a write-ahead-logging recovery manager with
// the given number of parallel log streams.
func NewWAL(cfg wal.Config) *Engine {
	store := pagestore.New(4096)
	return New(walAdapter{wal.NewManager(store, cfg)})
}

// NewWALOn is NewWAL over a caller-supplied store (for fault injection).
// The returned Manager is the pure kernel itself: touch it directly only
// while the engine is quiescent (reading stats after a run, grabbing
// LogStore before one); concurrent maintenance must go through
// Engine.Guard().
func NewWALOn(store *pagestore.Store, cfg wal.Config) (*Engine, *wal.Manager) {
	m := wal.NewManager(store, cfg)
	return New(walAdapter{m}), m
}

// NewShadow builds an engine over the canonical shadow-paging manager.
func NewShadow() (*Engine, error) {
	store := pagestore.New(4096)
	return NewShadowOn(store)
}

// NewShadowOn is NewShadow over a caller-supplied store.
func NewShadowOn(store *pagestore.Store) (*Engine, error) {
	se, err := shadoweng.New(store)
	if err != nil {
		return nil, err
	}
	return New(se), nil
}

// NewOverwrite builds an engine over an overwriting shadow manager.
func NewOverwrite(variant shadoweng.Variant) *Engine {
	return NewOverwriteOn(pagestore.New(4096), variant)
}

// NewOverwriteOn is NewOverwrite over a caller-supplied store.
func NewOverwriteOn(store *pagestore.Store, variant shadoweng.Variant) *Engine {
	return New(shadoweng.NewOverwrite(store, variant))
}

// NewVersionSelect builds an engine over the version-selection shadow
// manager.
func NewVersionSelect() (*Engine, error) {
	return NewVersionSelectOn(pagestore.New(4096))
}

// NewVersionSelectOn is NewVersionSelect over a caller-supplied store.
func NewVersionSelectOn(store *pagestore.Store) (*Engine, error) {
	ve, err := shadoweng.NewVersion(store)
	if err != nil {
		return nil, err
	}
	return New(ve), nil
}

// NewDiff builds an engine over the differential-file manager.
func NewDiff() *Engine {
	return NewDiffOn(pagestore.New(4096))
}

// NewDiffOn is NewDiff over a caller-supplied store.
func NewDiffOn(store *pagestore.Store) *Engine {
	return New(diffeng.New(store))
}
