// Concurrency stress tests for the thread-safe wrapper layer. The pure
// kernels are single-threaded by contract; everything concurrent must go
// through engine.Engine and its Guard. These tests hammer every
// architecture with parallel transactions while maintenance operations
// (fuzzy checkpoints, differential merges) and stats readers run against
// the same Guard, then audit the surviving state. They are most meaningful
// under the race detector (make ci runs `go test -race ./...`).
package engine_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/faultinj"
	"repro/internal/sim"
)

const (
	stressPages   = 8
	stressWorkers = 6
	stressTxns    = 30 // per worker
)

// stressWorker runs txns read-modify-write transactions against e, each
// reading then overwriting 1–2 pages with self-describing payloads.
// Deadlock victims are retried by Update; any other error is fatal.
func stressWorker(t *testing.T, e *engine.Engine, seed int64, txns int) {
	rng := sim.NewRNG(seed)
	for i := 0; i < txns; i++ {
		err := e.Update(func(tx *engine.Txn) error {
			n := rng.UniformInt(1, 2)
			for j := 0; j < n; j++ {
				p := int64(rng.Intn(stressPages))
				if _, err := tx.Read(p); err != nil {
					return err
				}
				if err := tx.Write(p, faultinj.Payload(p, tx.ID(), j)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Errorf("worker txn %d: %v", i, err)
			return
		}
	}
}

// TestWrapperStress runs parallel transaction workers against every wrapped
// architecture while a maintenance goroutine drives Guard.Checkpoint and
// Guard.Merge and a reader polls Guard stats, then crashes, recovers, and
// audits the committed state.
func TestWrapperStress(t *testing.T) {
	for _, tg := range equivTargets() {
		t.Run(tg.name, func(t *testing.T) {
			t.Parallel()
			e, _ := tg.wrapped(t)
			if _, err := faultinj.LoadPages(e, stressPages); err != nil {
				t.Fatalf("load: %v", err)
			}

			var wg sync.WaitGroup
			stop := make(chan struct{})

			// Maintenance: checkpoints and merges race the workers through the
			// Guard. Kernels without the operation return ErrUnsupported; the
			// differential kernel refuses to merge unless quiescent. Both are
			// expected here — what matters is that concurrent maintenance never
			// corrupts state or trips the race detector.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if err := e.Guard().Checkpoint(); err != nil && !errors.Is(err, engine.ErrUnsupported) {
						t.Errorf("checkpoint: %v", err)
						return
					}
					if err := e.Guard().Merge(); err == nil {
						continue // quiescent instant: the merge landed
					}
				}
			}()

			// Reader: stats snapshots must be safe to take mid-flight.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					_ = e.Guard().Stats()
					_ = e.Guard().OpCounts()
				}
			}()

			var workers sync.WaitGroup
			for w := 0; w < stressWorkers; w++ {
				workers.Add(1)
				go func(seed int64) {
					defer workers.Done()
					stressWorker(t, e, seed, stressTxns)
				}(int64(1985 + w))
			}
			workers.Wait()
			close(stop)
			wg.Wait()
			if t.Failed() {
				return
			}

			// Quiesced: the Guard's books must balance — every transaction the
			// kernel began either committed or aborted.
			ops := e.Guard().OpCounts()
			if ops["begins"] != ops["commits"]+ops["aborts"] {
				t.Errorf("unbalanced guard counters: begins=%d commits=%d aborts=%d",
					ops["begins"], ops["commits"], ops["aborts"])
			}
			commits, _, _ := e.Stats()
			if want := int64(stressWorkers * stressTxns); commits != want {
				t.Errorf("engine commits = %d, want %d", commits, want)
			}

			// Power-cycle and audit: every page must hold a sound committed
			// payload after recovery.
			e.Crash()
			if err := e.Recover(); err != nil {
				t.Fatalf("recover: %v", err)
			}
			for p := int64(0); p < stressPages; p++ {
				v, err := e.ReadCommitted(p)
				if err != nil {
					t.Fatalf("page %d: %v", p, err)
				}
				if msg := faultinj.CheckPayload(v, p); msg != "" {
					t.Errorf("after stress: %s", msg)
				}
			}
		})
	}
}

// TestGuardSerializesDirectCalls bypasses the 2PL layer entirely and slams
// raw Guard calls from many goroutines: distinct transactions begin, write
// disjoint pages, and commit with no locks held. The Guard's single mutex is
// the only thing keeping the single-threaded kernel sane.
func TestGuardSerializesDirectCalls(t *testing.T) {
	for _, tg := range equivTargets() {
		t.Run(tg.name, func(t *testing.T) {
			t.Parallel()
			e, _ := tg.wrapped(t)
			g := e.Guard()
			if _, err := faultinj.LoadPages(e, stressPages); err != nil {
				t.Fatalf("load: %v", err)
			}
			var wg sync.WaitGroup
			for w := 0; w < stressPages; w++ {
				wg.Add(1)
				go func(p int64) {
					defer wg.Done()
					tid := uint64(1000 + p) // disjoint from engine-assigned ids
					if err := g.Begin(tid); err != nil {
						t.Errorf("begin %d: %v", tid, err)
						return
					}
					if _, err := g.Read(tid, p); err != nil {
						t.Errorf("read %d: %v", tid, err)
						return
					}
					if err := g.Write(tid, p, faultinj.Payload(p, tid, 0)); err != nil {
						t.Errorf("write %d: %v", tid, err)
						return
					}
					if err := g.Commit(tid); err != nil {
						t.Errorf("commit %d: %v", tid, err)
					}
				}(int64(w))
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			e.Crash()
			if err := e.Recover(); err != nil {
				t.Fatalf("recover: %v", err)
			}
			for p := int64(0); p < stressPages; p++ {
				v, err := g.ReadCommitted(p)
				if err != nil {
					t.Fatalf("page %d: %v", p, err)
				}
				want := fmt.Sprintf("p%d.t%d.n0.", p, 1000+p)
				if msg := faultinj.CheckPayload(v, p); msg != "" {
					t.Errorf("%s", msg)
				} else if string(v[:len(want)]) != want {
					t.Errorf("page %d = %q, want prefix %q", p, v, want)
				}
			}
		})
	}
}
