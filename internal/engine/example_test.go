package engine_test

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/wal"
)

// Example runs a transaction against the WAL-recovered engine, crashes the
// machine, and shows the committed write surviving restart recovery.
func Example() {
	eng := engine.NewWAL(wal.Config{Streams: 2, Selection: wal.PageMod})
	if err := eng.Load(1, []byte("initial")); err != nil {
		panic(err)
	}

	err := eng.Update(func(tx *engine.Txn) error {
		v, err := tx.Read(1)
		if err != nil {
			return err
		}
		return tx.Write(1, append(v, []byte(" + committed")...))
	})
	if err != nil {
		panic(err)
	}

	eng.Crash() // power failure: pool, locks and unforced log tail vanish
	if err := eng.Recover(); err != nil {
		panic(err)
	}
	v, err := eng.ReadCommitted(1)
	if err != nil {
		panic(err)
	}
	fmt.Println(string(v))
	// Output:
	// initial + committed
}

// ExampleEngine_Update shows the automatic abort on error: the transaction
// leaves no trace.
func ExampleEngine_Update() {
	eng := engine.NewWAL(wal.Config{})
	if err := eng.Load(1, []byte("safe")); err != nil {
		panic(err)
	}
	err := eng.Update(func(tx *engine.Txn) error {
		if err := tx.Write(1, []byte("clobbered")); err != nil {
			return err
		}
		return fmt.Errorf("business rule violated")
	})
	fmt.Println("update error:", err)
	v, _ := eng.ReadCommitted(1)
	fmt.Println("page:", string(v))
	// Output:
	// update error: business rule violated
	// page: safe
}
