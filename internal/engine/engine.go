// Package engine is the transactional facade over the functional recovery
// engines: it adds page-level two-phase locking (via lockmgr) and a uniform
// Begin/Read/Write/Commit/Abort API on top of any RecoveryManager — the WAL
// engine, either shadow engine, or the differential-file engine — so the
// same application code runs against every recovery architecture the paper
// compares.
package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/lockmgr"
)

// RecoveryManager is a functional recovery engine: it stores pages durably,
// isolates nothing (that is this package's job), and guarantees atomicity
// and durability across Crash/Recover. Implementations are pure,
// single-threaded kernels (internal/wal, internal/shadoweng,
// internal/diffeng); the Engine serializes all access to them through a
// Guard.
type RecoveryManager interface {
	Name() string
	Load(p int64, data []byte) error
	Begin(tid uint64) error
	Read(tid uint64, p int64) ([]byte, error)
	Write(tid uint64, p int64, data []byte) error
	Commit(tid uint64) error
	Abort(tid uint64) error
	Crash()
	Recover() error
	ReadCommitted(p int64) ([]byte, error)
}

// ErrDeadlock is returned when a transaction was chosen as a deadlock
// victim; it has been aborted and may simply be retried.
var ErrDeadlock = errors.New("engine: transaction aborted as deadlock victim")

// ErrDone is returned when using a transaction after commit or abort.
var ErrDone = errors.New("engine: transaction already finished")

// Engine runs transactions with page-level 2PL over a RecoveryManager.
type Engine struct {
	rm      *Guard
	locks   *lockmgr.Manager
	nextTID atomic.Uint64

	mu        sync.Mutex
	commits   int64
	aborts    int64
	deadlocks int64
}

// New builds an engine over rm. Pure recovery kernels (which contain no
// locking of their own) are wrapped in a Guard automatically; passing an
// existing Guard reuses it.
func New(rm RecoveryManager) *Engine {
	return &Engine{rm: NewGuard(rm), locks: lockmgr.New()}
}

// Guard exposes the engine's thread-safe kernel wrapper, through which
// maintenance operations (Checkpoint, Merge) and kernel stats can be
// reached safely while transactions run.
func (e *Engine) Guard() *Guard { return e.rm }

// Name reports the underlying recovery architecture.
func (e *Engine) Name() string { return e.rm.Name() }

// Load populates page p before transactions run.
func (e *Engine) Load(p int64, data []byte) error { return e.rm.Load(p, data) }

// Txn is one transaction. A Txn is owned by a single goroutine.
type Txn struct {
	e    *Engine
	id   uint64
	done bool
}

// Begin starts a transaction.
func (e *Engine) Begin() (*Txn, error) {
	id := e.nextTID.Add(1)
	if err := e.rm.Begin(id); err != nil {
		return nil, err
	}
	return &Txn{e: e, id: id}, nil
}

// ID reports the transaction id.
func (t *Txn) ID() uint64 { return t.id }

// Read returns page p under a shared lock. On deadlock the transaction is
// aborted and ErrDeadlock returned.
func (t *Txn) Read(p int64) ([]byte, error) {
	if t.done {
		return nil, ErrDone
	}
	if err := t.lock(p, lockmgr.Shared); err != nil {
		return nil, err
	}
	return t.e.rm.Read(t.id, p)
}

// Write replaces page p under an exclusive lock. On deadlock the
// transaction is aborted and ErrDeadlock returned.
func (t *Txn) Write(p int64, data []byte) error {
	if t.done {
		return ErrDone
	}
	if err := t.lock(p, lockmgr.Exclusive); err != nil {
		return err
	}
	return t.e.rm.Write(t.id, p, data)
}

func (t *Txn) lock(p int64, mode lockmgr.Mode) error {
	err := t.e.locks.Lock(lockmgr.TxnID(t.id), lockmgr.PageID(p), mode)
	if errors.Is(err, lockmgr.ErrDeadlock) {
		t.e.bump(&t.e.deadlocks)
		if aerr := t.Abort(); aerr != nil {
			return fmt.Errorf("%w (abort failed: %v)", ErrDeadlock, aerr)
		}
		return ErrDeadlock
	}
	return err
}

// Commit makes the transaction durable and releases its locks.
func (t *Txn) Commit() error {
	if t.done {
		return ErrDone
	}
	t.done = true
	err := t.e.rm.Commit(t.id)
	t.e.locks.ReleaseAll(lockmgr.TxnID(t.id))
	if err == nil {
		t.e.bump(&t.e.commits)
	}
	return err
}

// Abort rolls the transaction back and releases its locks.
func (t *Txn) Abort() error {
	if t.done {
		return ErrDone
	}
	t.done = true
	err := t.e.rm.Abort(t.id)
	t.e.locks.ReleaseAll(lockmgr.TxnID(t.id))
	t.e.bump(&t.e.aborts)
	return err
}

func (e *Engine) bump(c *int64) {
	e.mu.Lock()
	*c++
	e.mu.Unlock()
}

// Update runs fn inside a transaction, committing on nil return and
// aborting on error; deadlock victims are retried automatically.
func (e *Engine) Update(fn func(*Txn) error) error {
	for {
		t, err := e.Begin()
		if err != nil {
			return err
		}
		err = fn(t)
		if errors.Is(err, ErrDeadlock) {
			continue // fn's transaction was already aborted; retry
		}
		if err != nil {
			if !t.done {
				_ = t.Abort()
			}
			return err
		}
		err = t.Commit()
		if errors.Is(err, ErrDeadlock) {
			continue
		}
		return err
	}
}

// Crash simulates power loss. Any concurrently running transactions will
// see errors; locks are forgotten like the rest of volatile state.
func (e *Engine) Crash() {
	e.rm.Crash()
	e.locks = lockmgr.New()
}

// Recover runs restart recovery on the underlying engine.
func (e *Engine) Recover() error { return e.rm.Recover() }

// ReadCommitted reads the committed state of page p (use when quiescent,
// e.g. after Recover).
func (e *Engine) ReadCommitted(p int64) ([]byte, error) { return e.rm.ReadCommitted(p) }

// Stats reports commit/abort/deadlock counts.
func (e *Engine) Stats() (commits, aborts, deadlocks int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.commits, e.aborts, e.deadlocks
}

// DeadlockVictims returns the transaction ids chosen as deadlock victims
// since the last Crash, in detection order. With the deterministic
// youngest-on-cycle rule in lockmgr, same-seed runs yield identical traces.
func (e *Engine) DeadlockVictims() []lockmgr.TxnID { return e.locks.Victims() }
