// Concurrent-equivalence harness for the relaxed concurrency envelope
// (group commit + striped read latching): the proof that breaking the
// single Guard mutex changed performance and nothing else.
//
// Three layers of evidence, all across the 7 canonical architectures and
// all meaningful under -race:
//
//  1. TestConcurrentEquivalenceClean replays the same logical schedule —
//     K workers × M transactions with per-worker RNGs, disjoint write
//     pages, and shared read-only pages — through a relaxed guard and a
//     plain-Guard oracle, and demands identical committed page bytes
//     (crc-checked), identical per-worker models, and identical op
//     counters. Disjoint write sets make the final committed state
//     interleaving-independent, which is what makes the concurrent
//     comparison well-defined.
//
//  2. TestConcurrentCrashRecovery cuts power mid-load (a shared hook that
//     models whole-machine power failure across every store) under full
//     concurrency, recovers, and audits the paper's claims per worker: a
//     group-committed transaction is never half-durable — a commit whose
//     force completed is wholly present, a batch member whose force never
//     completed is wholly in-doubt or wholly absent, and a member rolled
//     back by a failing batch (ErrGroupAborted) is wholly absent.
//
//  3. TestSequentialCrashEquivalenceGroupCommit drives the deterministic
//     faultinj script through a group-commit guard and a plain guard with
//     a crash injected at the same mutation ordinal, and demands
//     byte-identical outcomes, in-doubt sets, recovered pages, and kernel
//     counters — the strongest point-for-point equivalence, possible
//     sequentially because group commit adds no kernel traffic.
//
// Like equiv_test.go this lives in package engine_test (faultinj imports
// internal/engine).
package engine_test

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/faultinj"
	"repro/internal/obs/live"
	"repro/internal/pagestore"
	"repro/internal/sim"
)

const (
	ceSeed           = 503
	ceWorkers        = 4
	ceTxnsPerWorker  = 24
	cePagesPerWorker = 3
	ceSharedPages    = 2
	cePages          = ceSharedPages + ceWorkers*cePagesPerWorker
)

// ceRelaxedPolicy is the envelope under test in the concurrent suites.
var ceRelaxedPolicy = engine.GroupCommitPolicy{MaxBatch: ceWorkers, MaxWait: time.Millisecond}

// ceWorkerPage maps worker w's j-th private page into the page space above
// the shared read-only range.
func ceWorkerPage(w, j int) int64 {
	return int64(ceSharedPages + w*cePagesPerWorker + j)
}

// ceAudit is what one worker's deterministic schedule left behind: its own
// oracle for the post-run (and post-recovery) audits.
type ceAudit struct {
	// model holds the last committed value of each page the worker owns.
	model map[int64][]byte
	// doubt holds the write set of a commit that returned a storage error
	// (power failed during the force): recovery may surface it fully
	// applied or fully reverted, never torn. Nil when no commit is in doubt.
	doubt map[int64][]byte
	// groupAborted reports that the final commit was rolled back because a
	// preceding member of its batch failed; its writes must be absent.
	groupAborted bool
	// stopped reports the worker quit early on a storage error.
	stopped bool
	// badRead records a successful read of a shared page that returned
	// something other than the initial committed payload.
	badRead string
	commits int
	aborts  int
}

// runConcWorker executes worker w's schedule against e. The schedule is a
// pure function of (seed, w): payloads embed a worker-derived virtual id,
// never the engine-assigned tid, so two runs with different interleavings
// still write identical bytes. Writes touch only the worker's own pages;
// reads touch only the shared read-only range — so concurrent workers
// never conflict and the union of worker models is the exact committed
// state.
func runConcWorker(e *engine.Engine, w int, initial map[int64][]byte) *ceAudit {
	rng := sim.NewRNG(ceSeed + int64(w)*7919)
	a := &ceAudit{model: map[int64][]byte{}}
	for i := 0; i < ceTxnsPerWorker; i++ {
		vid := uint64(w)*1_000_000 + uint64(i) + 1
		tx, err := e.Begin()
		if err != nil {
			a.stopped = true
			return a
		}
		sp := int64(rng.Intn(ceSharedPages))
		got, err := tx.Read(sp)
		if err != nil {
			_ = tx.Abort()
			a.stopped = true
			return a
		}
		if want := initial[sp]; !bytes.Equal(got, want) {
			a.badRead = fmt.Sprintf("shared page %d = %q, want %q", sp, got, want)
		}
		writes := make(map[int64][]byte)
		n := rng.UniformInt(1, cePagesPerWorker)
		for j := 0; j < n; j++ {
			p := ceWorkerPage(w, rng.Intn(cePagesPerWorker))
			v := faultinj.Payload(p, vid, j)
			if err := tx.Write(p, v); err != nil {
				_ = tx.Abort()
				a.stopped = true
				return a
			}
			writes[p] = v
		}
		if rng.Bool(0.2) {
			if err := tx.Abort(); err != nil {
				a.stopped = true
				return a
			}
			a.aborts++
			continue
		}
		if err := tx.Commit(); err != nil {
			a.stopped = true
			if errors.Is(err, engine.ErrGroupAborted) {
				a.groupAborted = true
			} else {
				a.doubt = writes
			}
			return a
		}
		a.commits++
		for p, v := range writes {
			a.model[p] = v
		}
	}
	return a
}

// runConcWorkload fans the K workers out concurrently and joins them.
func runConcWorkload(e *engine.Engine, initial map[int64][]byte) []*ceAudit {
	audits := make([]*ceAudit, ceWorkers)
	var wg sync.WaitGroup
	for w := 0; w < ceWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			audits[w] = runConcWorker(e, w, initial)
		}(w)
	}
	wg.Wait()
	return audits
}

// TestConcurrentEquivalenceClean is the headline equivalence proof: the
// relaxed guard (group commit + striped reads) and the plain-Guard oracle
// run the same concurrent schedule and must be indistinguishable in every
// observable — committed page bytes, per-worker models, op counters — with
// op counters additionally scraped concurrently and required monotone.
func TestConcurrentEquivalenceClean(t *testing.T) {
	for _, tg := range equivTargets() {
		t.Run(tg.name, func(t *testing.T) {
			relaxed, _ := tg.wrapped(t)
			plain, _ := tg.wrapped(t)
			gm := live.NewGuardMetrics(live.Wall())
			relaxed.Guard().SetMetrics(gm)
			relaxed.Guard().SetGroupCommit(ceRelaxedPolicy, nil)
			relaxed.Guard().SetReadStripes(8)

			rInit, err := faultinj.LoadPages(relaxed, cePages)
			if err != nil {
				t.Fatalf("relaxed load: %v", err)
			}
			pInit, err := faultinj.LoadPages(plain, cePages)
			if err != nil {
				t.Fatalf("plain load: %v", err)
			}

			// Monotone-counter scraper rides along with the relaxed run.
			stop := make(chan struct{})
			var scraper sync.WaitGroup
			scraper.Add(1)
			go func() {
				defer scraper.Done()
				last := map[string]int64{}
				for {
					for k, v := range relaxed.Guard().OpCounts() {
						if v < last[k] {
							t.Errorf("relaxed op counter %q regressed: %d -> %d", k, last[k], v)
							return
						}
						last[k] = v
					}
					select {
					case <-stop:
						return
					default:
					}
				}
			}()
			rAudits := runConcWorkload(relaxed, rInit)
			close(stop)
			scraper.Wait()
			pAudits := runConcWorkload(plain, pInit)

			totalCommits := 0
			for w := 0; w < ceWorkers; w++ {
				for side, a := range map[string]*ceAudit{"relaxed": rAudits[w], "plain": pAudits[w]} {
					if a.stopped || a.doubt != nil || a.groupAborted {
						t.Fatalf("%s worker %d did not run clean: %+v", side, w, a)
					}
					if a.badRead != "" {
						t.Errorf("%s worker %d: %s", side, w, a.badRead)
					}
					if a.commits+a.aborts != ceTxnsPerWorker {
						t.Errorf("%s worker %d: %d commits + %d aborts != %d txns",
							side, w, a.commits, a.aborts, ceTxnsPerWorker)
					}
				}
				if !reflect.DeepEqual(rAudits[w].model, pAudits[w].model) {
					t.Errorf("worker %d models diverge:\n  relaxed: %v\n  plain:   %v",
						w, rAudits[w].model, pAudits[w].model)
				}
				totalCommits += rAudits[w].commits
			}

			// Committed state, page by page, both guards, crc-checked.
			model := map[int64][]byte{}
			for p, v := range rInit {
				model[p] = v
			}
			for _, a := range rAudits {
				for p, v := range a.model {
					model[p] = v
				}
			}
			for p := int64(0); p < cePages; p++ {
				rv, rerr := relaxed.ReadCommitted(p)
				pv, perr := plain.ReadCommitted(p)
				if rerr != nil || perr != nil {
					t.Fatalf("page %d: read errors relaxed=%v plain=%v", p, rerr, perr)
				}
				if !bytes.Equal(rv, pv) {
					t.Errorf("page %d diverges: relaxed=%q plain=%q", p, rv, pv)
				}
				if !bytes.Equal(rv, model[p]) {
					t.Errorf("page %d = %q, want committed model %q", p, rv, model[p])
				}
				if msg := faultinj.CheckPayload(rv, p); msg != "" {
					t.Errorf("relaxed state corrupt: %s", msg)
				}
			}

			// The relaxed guard must count exactly what the oracle counts.
			rOps, pOps := relaxed.Guard().OpCounts(), plain.Guard().OpCounts()
			if !reflect.DeepEqual(rOps, pOps) {
				t.Errorf("op counters diverge:\n  relaxed: %v\n  plain:   %v", rOps, pOps)
			}

			// And the batching/caching machinery must actually have run:
			// every commit passed through a flushed batch, and the shared
			// read-only pages were served from the stripe cache.
			if got := gm.CommitBatchSize().Sum(); got != float64(totalCommits) {
				t.Errorf("batched commits = %v, want %d (every commit in exactly one batch)",
					got, totalCommits)
			}
			if gm.ReadCacheHits() == 0 {
				t.Error("stripe cache served no reads; striped path not exercised")
			}
		})
	}
}

// powerFail returns a fault hook modeling whole-machine power loss: it
// fires at the k-th mutation it observes across every store it is
// installed on, and from then on fails every operation — reads included —
// so a multi-store engine (the WAL engine's data + log pair) cannot limp
// on with only one store down. All stable-storage traffic is serialized
// under the guard's kernel mutex, so the closure needs no further locking.
func powerFail(k int64) pagestore.FaultHook {
	var seen int64
	var down bool
	return func(op pagestore.Op, _ pagestore.PageID, _ int64) bool {
		if down {
			return true
		}
		if op == pagestore.OpRead {
			return false
		}
		seen++
		if seen == k {
			down = true
		}
		return down
	}
}

// auditConcRecovered checks the recovered committed state against every
// worker's oracle: shared pages untouched, committed writes durable,
// losers and group-aborted members absent, and an in-doubt commit applied
// all or nothing.
func auditConcRecovered(t *testing.T, e *engine.Engine, initial map[int64][]byte, audits []*ceAudit) {
	t.Helper()
	for p := int64(0); p < ceSharedPages; p++ {
		got, err := e.ReadCommitted(p)
		if err != nil {
			t.Errorf("shared page %d: %v", p, err)
			continue
		}
		if !bytes.Equal(got, initial[p]) {
			t.Errorf("shared page %d mutated: %q, want %q", p, got, initial[p])
		}
	}
	for w, a := range audits {
		if a.badRead != "" {
			t.Errorf("worker %d: %s", w, a.badRead)
		}
		applied, reverted := 0, 0
		for j := 0; j < cePagesPerWorker; j++ {
			p := ceWorkerPage(w, j)
			got, err := e.ReadCommitted(p)
			if err != nil {
				t.Errorf("worker %d page %d: %v", w, p, err)
				continue
			}
			if msg := faultinj.CheckPayload(got, p); msg != "" {
				t.Errorf("worker %d: checksum: %s", w, msg)
				continue
			}
			want, ok := a.model[p]
			if !ok {
				want = initial[p]
			}
			if dv, inDoubt := a.doubt[p]; inDoubt {
				switch {
				case bytes.Equal(got, dv):
					applied++
				case bytes.Equal(got, want):
					reverted++
				default:
					t.Errorf("worker %d page %d = %q, neither in-doubt %q nor committed %q",
						w, p, got, dv, want)
				}
				continue
			}
			if !bytes.Equal(got, want) {
				t.Errorf("worker %d page %d = %q, want %q (groupAborted=%v)",
					w, p, got, want, a.groupAborted)
			}
		}
		if applied > 0 && reverted > 0 {
			t.Errorf("worker %d: in-doubt group commit torn (%d pages applied, %d reverted)",
				w, applied, reverted)
		}
	}
}

// TestConcurrentCrashRecovery cuts power at sampled mutation ordinals
// while the relaxed guard is under full concurrent load, recovers, and
// audits per worker that no group-committed transaction is half-durable.
// The crash point is sampled from a concurrent probe run; the audit is
// interleaving-independent by construction, so the nondeterminism of where
// exactly the power failure lands only widens the coverage.
func TestConcurrentCrashRecovery(t *testing.T) {
	for _, tg := range equivTargets() {
		t.Run(tg.name, func(t *testing.T) {
			// Probe: how many stable mutations does one concurrent run make?
			probe, stores := tg.wrapped(t)
			probe.Guard().SetGroupCommit(ceRelaxedPolicy, nil)
			probe.Guard().SetReadStripes(8)
			initial, err := faultinj.LoadPages(probe, cePages)
			if err != nil {
				t.Fatalf("probe load: %v", err)
			}
			ctr := &faultinj.Counter{}
			hook := ctr.Hook()
			for _, s := range stores {
				s.SetFaultHook(hook)
			}
			for w, a := range runConcWorkload(probe, initial) {
				if a.stopped {
					t.Fatalf("probe worker %d crashed without injection", w)
				}
			}
			muts := ctr.Mutations()
			if muts == 0 {
				t.Fatal("probe run made no stable mutations")
			}

			points := []int64{1, muts / 4, muts / 2, 3 * muts / 4, muts}
			if testing.Short() {
				points = []int64{1, muts / 2, muts}
			}
			seen := map[int64]bool{}
			for _, k := range points {
				if k < 1 || seen[k] {
					continue
				}
				seen[k] = true
				t.Run(fmt.Sprintf("mut%d", k), func(t *testing.T) {
					e, stores := tg.wrapped(t)
					e.Guard().SetGroupCommit(ceRelaxedPolicy, nil)
					e.Guard().SetReadStripes(8)
					initial, err := faultinj.LoadPages(e, cePages)
					if err != nil {
						t.Fatalf("load: %v", err)
					}
					hook := powerFail(k)
					for _, s := range stores {
						s.SetFaultHook(hook)
					}
					audits := runConcWorkload(e, initial)
					// Power restored: disarm the hook, then crash-recover.
					for _, s := range stores {
						s.SetFaultHook(nil)
					}
					e.Crash()
					if err := e.Recover(); err != nil {
						t.Fatalf("recover: %v", err)
					}
					auditConcRecovered(t, e, initial, audits)

					// Liveness: the recovered relaxed guard accepts new work
					// through the group-commit path.
					v := faultinj.Payload(0, 1<<40, 0)
					if err := e.Update(func(tx *engine.Txn) error { return tx.Write(0, v) }); err != nil {
						t.Fatalf("post-recovery update: %v", err)
					}
					if got, err := e.ReadCommitted(0); err != nil || !bytes.Equal(got, v) {
						t.Fatalf("post-recovery read = %q, %v (want %q)", got, err, v)
					}
				})
			}
		})
	}
}

// TestSequentialCrashEquivalenceGroupCommit injects a crash at the same
// mutation ordinal into a plain guard and a group-commit guard running the
// deterministic faultinj script, and demands identical outcomes, identical
// in-doubt sets, byte-identical recovered pages, and identical kernel
// counters. Group commit adds no kernel traffic, so the two runs share
// mutation ordinals exactly; striped reads are left off here because the
// cache legitimately changes kernel read traffic (and with it buffer-pool
// eviction), which would shift ordinals.
func TestSequentialCrashEquivalenceGroupCommit(t *testing.T) {
	stride := int64(5)
	if testing.Short() {
		stride = 11
	}
	for _, tg := range equivTargets() {
		t.Run(tg.name, func(t *testing.T) {
			probe, stores := tg.wrapped(t)
			model, err := faultinj.LoadPages(probe, equivPages)
			if err != nil {
				t.Fatalf("probe load: %v", err)
			}
			ctr := &faultinj.Counter{}
			hook := ctr.Hook()
			for _, s := range stores {
				s.SetFaultHook(hook)
			}
			if out := faultinj.RunScript(probe, model, equivSeed, equivPages, equivTxns); out.Crashed {
				t.Fatal("probe run crashed without injection")
			}
			muts := ctr.Mutations()

			points := []int64{1}
			for k := stride; k < muts; k += stride {
				points = append(points, k)
			}
			points = append(points, muts)

			for _, k := range points {
				t.Run(fmt.Sprintf("mut%d", k), func(t *testing.T) {
					plain, pstores := tg.wrapped(t)
					relaxed, rstores := tg.wrapped(t)
					relaxed.Guard().SetGroupCommit(engine.GroupCommitPolicy{MaxBatch: 4}, nil)
					pModel, err := faultinj.LoadPages(plain, equivPages)
					if err != nil {
						t.Fatalf("plain load: %v", err)
					}
					rModel, err := faultinj.LoadPages(relaxed, equivPages)
					if err != nil {
						t.Fatalf("relaxed load: %v", err)
					}
					phook := faultinj.CrashAtMutation(k)
					for _, s := range pstores {
						s.SetFaultHook(phook)
					}
					rhook := faultinj.CrashAtMutation(k)
					for _, s := range rstores {
						s.SetFaultHook(rhook)
					}
					pOut := faultinj.RunScript(plain, pModel, equivSeed, equivPages, equivTxns)
					rOut := faultinj.RunScript(relaxed, rModel, equivSeed, equivPages, equivTxns)
					compareOutcomes(t, pOut, rOut)

					plain.Crash()
					relaxed.Crash()
					if err := plain.Recover(); err != nil {
						t.Fatalf("plain recover: %v", err)
					}
					if err := relaxed.Recover(); err != nil {
						t.Fatalf("relaxed recover: %v", err)
					}
					for p := int64(0); p < equivPages; p++ {
						pv, perr := plain.ReadCommitted(p)
						rv, rerr := relaxed.ReadCommitted(p)
						if (perr == nil) != (rerr == nil) {
							t.Fatalf("page %d: read errors diverge: plain=%v relaxed=%v", p, perr, rerr)
						}
						if perr != nil {
							continue
						}
						if !bytes.Equal(pv, rv) {
							t.Errorf("page %d: recovered bytes diverge: plain=%q relaxed=%q", p, pv, rv)
						}
						if msg := faultinj.CheckPayload(pv, p); msg != "" {
							t.Errorf("recovered state corrupt: %s", msg)
						}
					}
					ps, rs := plain.Guard().Stats(), relaxed.Guard().Stats()
					if !reflect.DeepEqual(ps, rs) {
						t.Errorf("kernel counters diverge:\n  plain:   %v\n  relaxed: %v", ps, rs)
					}
				})
			}
		})
	}
}
