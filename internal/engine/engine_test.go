package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/shadoweng"
	"repro/internal/wal"
)

// allEngines builds one engine per recovery architecture.
func allEngines(t *testing.T) map[string]*Engine {
	t.Helper()
	shadow, err := NewShadow()
	if err != nil {
		t.Fatal(err)
	}
	vs, err := NewVersionSelect()
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Engine{
		"wal":       NewWAL(wal.Config{Streams: 2, Selection: wal.PageMod}),
		"shadow":    shadow,
		"ow-noundo": NewOverwrite(shadoweng.NoUndo),
		"ow-noredo": NewOverwrite(shadoweng.NoRedo),
		"verselect": vs,
		"difffile":  NewDiff(),
	}
}

func enc(v int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

func dec(b []byte) int64 {
	if len(b) < 8 {
		return 0
	}
	return int64(binary.BigEndian.Uint64(b))
}

func TestCommitAbortAllEngines(t *testing.T) {
	for name, e := range allEngines(t) {
		t.Run(name, func(t *testing.T) {
			if err := e.Load(1, enc(100)); err != nil {
				t.Fatal(err)
			}
			tx, err := e.Begin()
			if err != nil {
				t.Fatal(err)
			}
			v, err := tx.Read(1)
			if err != nil || dec(v) != 100 {
				t.Fatalf("read %v %v", v, err)
			}
			if err := tx.Write(1, enc(150)); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			// Abort leaves no trace.
			tx2, _ := e.Begin()
			if err := tx2.Write(1, enc(0)); err != nil {
				t.Fatal(err)
			}
			if err := tx2.Abort(); err != nil {
				t.Fatal(err)
			}
			got, err := e.ReadCommitted(1)
			if err != nil || dec(got) != 150 {
				t.Fatalf("final = %v %v", got, err)
			}
			// Using a finished transaction fails.
			if _, err := tx2.Read(1); !errors.Is(err, ErrDone) {
				t.Fatalf("read after abort: %v", err)
			}
		})
	}
}

func TestIsolationNoDirtyReads(t *testing.T) {
	for name, e := range allEngines(t) {
		t.Run(name, func(t *testing.T) {
			if err := e.Load(1, enc(1)); err != nil {
				t.Fatal(err)
			}
			writer, _ := e.Begin()
			if err := writer.Write(1, enc(2)); err != nil {
				t.Fatal(err)
			}
			readerDone := make(chan int64, 1)
			go func() {
				reader, err := e.Begin()
				if err != nil {
					readerDone <- -1
					return
				}
				v, err := reader.Read(1) // blocks on the X lock
				if err != nil {
					readerDone <- -1
					return
				}
				_ = reader.Commit()
				readerDone <- dec(v)
			}()
			// The reader must not return while the writer holds the lock.
			select {
			case v := <-readerDone:
				t.Fatalf("dirty read returned %d before writer finished", v)
			default:
			}
			if err := writer.Commit(); err != nil {
				t.Fatal(err)
			}
			if v := <-readerDone; v != 2 {
				t.Fatalf("reader saw %d, want committed 2", v)
			}
		})
	}
}

func TestBankTransfersConserveMoney(t *testing.T) {
	const accounts = 8
	const workers = 4
	const transfers = 30
	for name, e := range allEngines(t) {
		t.Run(name, func(t *testing.T) {
			for a := int64(0); a < accounts; a++ {
				if err := e.Load(a, enc(1000)); err != nil {
					t.Fatal(err)
				}
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < transfers; i++ {
						from := int64((w + i) % accounts)
						to := int64((w*3 + i*7 + 1) % accounts)
						if from == to {
							continue
						}
						err := e.Update(func(tx *Txn) error {
							// Ascending lock order avoids deadlocks; the
							// deadlock test exercises the other path.
							a, b := from, to
							if a > b {
								a, b = b, a
							}
							va, err := tx.Read(a)
							if err != nil {
								return err
							}
							vb, err := tx.Read(b)
							if err != nil {
								return err
							}
							if err := tx.Write(a, enc(dec(va)-10)); err != nil {
								return err
							}
							return tx.Write(b, enc(dec(vb)+10))
						})
						if err != nil {
							t.Errorf("transfer: %v", err)
							return
						}
					}
				}()
			}
			wg.Wait()
			var total int64
			for a := int64(0); a < accounts; a++ {
				v, err := e.ReadCommitted(a)
				if err != nil {
					t.Fatal(err)
				}
				total += dec(v)
			}
			if total != accounts*1000 {
				t.Fatalf("money not conserved: %d", total)
			}
		})
	}
}

func TestDeadlockVictimRetried(t *testing.T) {
	for name, e := range allEngines(t) {
		t.Run(name, func(t *testing.T) {
			if err := e.Load(1, enc(0)); err != nil {
				t.Fatal(err)
			}
			if err := e.Load(2, enc(0)); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			// Two workers locking in opposite orders many times: deadlocks
			// must be broken and every update must eventually commit.
			for w := 0; w < 2; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					first, second := int64(1), int64(2)
					if w == 1 {
						first, second = second, first
					}
					for i := 0; i < 20; i++ {
						err := e.Update(func(tx *Txn) error {
							v1, err := tx.Read(first)
							if err != nil {
								return err
							}
							if err := tx.Write(first, enc(dec(v1)+1)); err != nil {
								return err
							}
							v2, err := tx.Read(second)
							if err != nil {
								return err
							}
							return tx.Write(second, enc(dec(v2)+1))
						})
						if err != nil {
							t.Errorf("worker %d: %v", w, err)
							return
						}
					}
				}()
			}
			wg.Wait()
			v1, _ := e.ReadCommitted(1)
			v2, _ := e.ReadCommitted(2)
			if dec(v1) != 40 || dec(v2) != 40 {
				t.Fatalf("lost updates: %d, %d (want 40, 40)", dec(v1), dec(v2))
			}
		})
	}
}

func TestCrashRecoveryAllEngines(t *testing.T) {
	for name, e := range allEngines(t) {
		t.Run(name, func(t *testing.T) {
			for a := int64(0); a < 4; a++ {
				if err := e.Load(a, enc(100)); err != nil {
					t.Fatal(err)
				}
			}
			// Commit one transfer.
			err := e.Update(func(tx *Txn) error {
				if err := tx.Write(0, enc(50)); err != nil {
					return err
				}
				return tx.Write(1, enc(150))
			})
			if err != nil {
				t.Fatal(err)
			}
			// Leave another in flight.
			dangling, _ := e.Begin()
			if err := dangling.Write(2, enc(0)); err != nil {
				t.Fatal(err)
			}
			e.Crash()
			if err := e.Recover(); err != nil {
				t.Fatal(err)
			}
			want := map[int64]int64{0: 50, 1: 150, 2: 100, 3: 100}
			for a, w := range want {
				v, err := e.ReadCommitted(a)
				if err != nil {
					t.Fatal(err)
				}
				if dec(v) != w {
					t.Fatalf("page %d = %d, want %d", a, dec(v), w)
				}
			}
		})
	}
}

func TestStatsAndNames(t *testing.T) {
	for _, e := range allEngines(t) {
		if e.Name() == "" {
			t.Fatal("empty engine name")
		}
		if err := e.Load(1, enc(5)); err != nil {
			t.Fatal(err)
		}
		if err := e.Update(func(tx *Txn) error { return tx.Write(1, enc(6)) }); err != nil {
			t.Fatal(err)
		}
		c, _, _ := e.Stats()
		if c != 1 {
			t.Fatalf("%s: commits = %d", e.Name(), c)
		}
	}
}

func TestUpdateAbortsOnError(t *testing.T) {
	e := NewWAL(wal.Config{})
	if err := e.Load(1, enc(9)); err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("boom")
	err := e.Update(func(tx *Txn) error {
		if err := tx.Write(1, enc(0)); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, _ := e.ReadCommitted(1)
	if dec(v) != 9 {
		t.Fatalf("failed Update leaked: %d", dec(v))
	}
	_, aborts, _ := e.Stats()
	if aborts != 1 {
		t.Fatalf("aborts = %d", aborts)
	}
}
