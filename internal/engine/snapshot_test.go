package engine

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/internal/pagestore"
	"repro/internal/pagestore/filestore"
)

// snapWorkload commits n transactions over pages, each bumping one page's
// counter, and returns the committed values.
func snapWorkload(t *testing.T, e *Engine, pages int, n int, seed int64) []int64 {
	t.Helper()
	model := make([]int64, pages)
	rng := seed
	next := func(m int64) int64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		v := rng >> 33
		if v < 0 {
			v = -v
		}
		return v % m
	}
	for i := 0; i < n; i++ {
		tx, err := e.Begin()
		if err != nil {
			t.Fatal(err)
		}
		p := next(int64(pages))
		cur, err := tx.Read(p)
		if err != nil {
			t.Fatal(err)
		}
		v := dec(cur) + 1
		if err := tx.Write(p, enc(v)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		model[p] = v
	}
	return model
}

func checkCommitted(t *testing.T, e *Engine, model []int64, what string) {
	t.Helper()
	for p := range model {
		got, err := e.ReadCommitted(int64(p))
		if err != nil {
			t.Fatalf("%s: page %d: %v", what, p, err)
		}
		if dec(got) != model[p] {
			t.Fatalf("%s: page %d = %d, want %d", what, p, dec(got), model[p])
		}
	}
}

// TestSnapshotRestoreRoundTrip proves the acceptance property on every
// architecture: a full + incremental backup chain restored into a fresh
// engine reproduces the committed state of the snapshot instant exactly,
// even though the source engine diverged afterwards.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	const pages = 8
	for _, cc := range crashCases() {
		t.Run(cc.name, func(t *testing.T) {
			e, _ := cc.build(t)
			for p := int64(0); p < pages; p++ {
				if err := e.Load(p, enc(0)); err != nil {
					t.Fatal(err)
				}
			}
			snapWorkload(t, e, pages, 30, 1)
			var full bytes.Buffer
			base, err := e.Snapshot(&full)
			if err != nil {
				t.Fatal(err)
			}
			model := snapWorkload(t, e, pages, 20, 2)
			var incr bytes.Buffer
			incrMan, err := e.SnapshotSince(&incr, base)
			if err != nil {
				t.Fatal(err)
			}
			snapWorkload(t, e, pages, 15, 3) // diverge past the snapshot

			// The chain's manifests, recomputed from the archives alone,
			// must match what SnapshotSince reported (crc included).
			folded, err := ArchiveManifests(bytes.NewReader(full.Bytes()), bytes.NewReader(incr.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if len(folded) != len(incrMan) {
				t.Fatalf("chain folds to %d manifests, snapshot returned %d", len(folded), len(incrMan))
			}
			for i := range folded {
				if len(folded[i]) != len(incrMan[i]) {
					t.Fatalf("store %d: folded manifest has %d pages, want %d",
						i, len(folded[i]), len(incrMan[i]))
				}
				for id, meta := range incrMan[i] {
					if folded[i][id] != meta {
						t.Fatalf("store %d page %d: folded meta %+v, want %+v",
							i, id, folded[i][id], meta)
					}
				}
			}

			fresh, _ := cc.build(t)
			if err := fresh.Restore(bytes.NewReader(full.Bytes()), bytes.NewReader(incr.Bytes())); err != nil {
				t.Fatal(err)
			}
			checkCommitted(t, fresh, model, "restored engine")
			// The restored engine is live: it accepts and commits new work.
			snapWorkload(t, fresh, pages, 5, 4)
		})
	}
}

func TestRestoreRejectsBadChains(t *testing.T) {
	e, _ := crashCases()[0].build(t)
	if err := e.Load(1, enc(7)); err != nil {
		t.Fatal(err)
	}
	var full bytes.Buffer
	base, err := e.Snapshot(&full)
	if err != nil {
		t.Fatal(err)
	}
	var incr bytes.Buffer
	if _, err := e.SnapshotSince(&incr, base); err != nil {
		t.Fatal(err)
	}
	// An incremental cannot head a chain.
	if err := e.Restore(bytes.NewReader(incr.Bytes())); err == nil {
		t.Fatal("restore accepted an incremental-first chain")
	}
	// A second full cannot continue one.
	if err := e.Restore(bytes.NewReader(full.Bytes()), bytes.NewReader(full.Bytes())); err == nil {
		t.Fatal("restore accepted full-after-full")
	}
	// Garbage is rejected whole.
	if err := e.Restore(bytes.NewReader([]byte("not an archive"))); err == nil {
		t.Fatal("restore accepted garbage")
	}
	// The engine still works after the rejected attempts.
	if err := e.Restore(bytes.NewReader(full.Bytes())); err != nil {
		t.Fatal(err)
	}
	got, err := e.ReadCommitted(1)
	if err != nil || dec(got) != 7 {
		t.Fatalf("after restore: %v %v", got, err)
	}
}

// TestSnapshotJournalEvents checks the backup plane reports itself through
// the structured recovery journal.
func TestSnapshotJournalEvents(t *testing.T) {
	e, _ := crashCases()[0].build(t) // wal journals
	j := obs.NewJournal()
	if err := e.Guard().SetJournal(j); err != nil {
		t.Fatal(err)
	}
	if err := e.Load(1, enc(1)); err != nil {
		t.Fatal(err)
	}
	var full bytes.Buffer
	base, err := e.Snapshot(&full)
	if err != nil {
		t.Fatal(err)
	}
	var incr bytes.Buffer
	if _, err := e.SnapshotSince(&incr, base); err != nil {
		t.Fatal(err)
	}
	if err := e.Restore(bytes.NewReader(full.Bytes()), bytes.NewReader(incr.Bytes())); err != nil {
		t.Fatal(err)
	}
	var events []string
	var notes []string
	for _, r := range j.Records() {
		if r.Event == "snapshot" || r.Event == "restore" {
			events = append(events, r.Event)
			notes = append(notes, r.Note)
		}
	}
	if len(events) != 3 || events[0] != "snapshot" || events[1] != "snapshot" || events[2] != "restore" {
		t.Fatalf("journal events = %v, want [snapshot snapshot restore]", events)
	}
	if notes[0] != "full" || notes[1] != "incremental" {
		t.Fatalf("snapshot notes = %v, want [full incremental ...]", notes[:2])
	}
}

// TestSnapshotRestoreFileBacked proves a restore into a file-backed engine
// is durable: the restored bytes survive closing the store and reopening
// the directory cold, and the page images are byte-identical to the
// source's committed pages.
func TestSnapshotRestoreFileBacked(t *testing.T) {
	const pages = 6
	dirA := filepath.Join(t.TempDir(), "a")
	storeA, err := filestore.Open(dirA, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer storeA.Close()
	eA, err := NewShadowOn(storeA)
	if err != nil {
		t.Fatal(err)
	}
	for p := int64(0); p < pages; p++ {
		if err := eA.Load(p, enc(0)); err != nil {
			t.Fatal(err)
		}
	}
	model := snapWorkload(t, eA, pages, 40, 9)
	var snap bytes.Buffer
	if _, err := eA.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}

	dirB := filepath.Join(t.TempDir(), "b")
	storeB, err := filestore.Open(dirB, 4096)
	if err != nil {
		t.Fatal(err)
	}
	eB, err := NewShadowOn(storeB)
	if err != nil {
		t.Fatal(err)
	}
	if err := eB.Restore(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	checkCommitted(t, eB, model, "file-backed restore")

	// Durability proof at the store layer: the restored bytes survive
	// closing the store and reopening the directory cold, and the
	// crc-verified per-page manifest is identical to the source store's.
	// (Kernel constructors write fresh metadata, so cold process restart
	// is a store-layer property, not an engine-layer one.)
	manifest := func(s *pagestore.Store) pagestore.Manifest {
		var buf bytes.Buffer
		m, err := s.WriteSnapshot(&buf, nil)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	wantMan := manifest(storeA)
	if err := storeB.Close(); err != nil {
		t.Fatal(err)
	}
	storeC, err := filestore.Open(dirB, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer storeC.Close()
	gotMan := manifest(storeC)
	if len(gotMan) != len(wantMan) {
		t.Fatalf("cold reopen: %d pages, want %d", len(gotMan), len(wantMan))
	}
	for id, meta := range wantMan {
		if gotMan[id] != meta {
			t.Fatalf("cold reopen: page %d meta %+v, want %+v (crc mismatch = bytes diverged)",
				id, gotMan[id], meta)
		}
	}
}

// TestSnapshotRefusesCrashedStore: the backup plane must not read through
// a power failure.
func TestSnapshotRefusesCrashedStore(t *testing.T) {
	e, store := crashCases()[2].build(t) // shadow: single store
	if err := e.Load(1, enc(1)); err != nil {
		t.Fatal(err)
	}
	// Cut the store's power (an exhausted write budget powers it off).
	store.SetWriteBudget(0)
	if err := store.Write(99, []byte("x"), 0); !errors.Is(err, pagestore.ErrCrashed) {
		t.Fatalf("budget crash: %v", err)
	}
	var buf bytes.Buffer
	if _, err := e.Snapshot(&buf); !errors.Is(err, pagestore.ErrCrashed) {
		t.Fatalf("snapshot of crashed store: %v", err)
	}
	e.Crash()
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Snapshot(&buf); err != nil {
		t.Fatalf("snapshot after recovery: %v", err)
	}
}
