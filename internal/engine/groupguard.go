package engine

// Concurrency envelope v2: two opt-in relaxations of the Guard's single
// mutex, both preserving the kernels' single-threaded contract by
// construction (see DESIGN.md "Concurrency envelope v2").
//
//   - Group commit: concurrent Commit callers are collected into a batch
//     and one leader drains the whole batch through a single acquisition
//     of the kernel mutex — the paper's group-force idea lifted to the
//     envelope. The batch window is bounded by GroupCommitPolicy
//     (MaxBatch members or MaxWait on the injected clock, whichever
//     comes first).
//
//   - Striped read latching: Read and ReadCommitted are served from a
//     guard-owned committed-page cache behind per-stripe RWMutexes, so
//     reads of distinct pages proceed in parallel without touching the
//     kernel mutex. Reads that miss fall through to the exclusive path;
//     the cache is populated only with pages no active transaction has
//     written, and invalidated on write, commit, abort, load, crash,
//     and recover. Reads that reach the kernel still serialize.
//
// Both relaxations are wrapper-side machinery and live outside the
// simlint D004 kernel scope (testdata/d004group pins that boundary):
// the kernels themselves stay pure and are never entered by more than
// one goroutine at a time.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs/live"
)

// ErrGroupAborted is returned to a group-commit waiter whose kernel commit
// was never attempted because an earlier member of the same batch failed:
// the group force did not complete, so the transaction was rolled back
// (best-effort) instead of committed. It wraps no success — every waiter
// in a failed batch observes a non-nil error.
var ErrGroupAborted = fmt.Errorf("engine: group commit aborted")

// GroupCommitPolicy bounds the group-commit batch window. A batch is
// flushed as soon as MaxBatch commits have joined it, or MaxWait after the
// first member arrived, whichever comes first. MaxBatch values below one
// are treated as one; a policy of {MaxBatch: 1, MaxWait: 0} is exactly the
// plain Guard commit path and disables batching.
type GroupCommitPolicy struct {
	// MaxBatch is the largest number of commits drained per kernel pass.
	MaxBatch int
	// MaxWait bounds how long a lone committer can be delayed waiting for
	// company; zero flushes whatever has queued immediately (opportunistic
	// batching with no added latency).
	MaxWait time.Duration
}

// commitWaiter is one transaction parked in the group-commit queue.
type commitWaiter struct {
	tid  uint64
	err  error
	done chan struct{}
}

// groupCommitter batches Guard.Commit calls. The first committer to find
// no batch forming becomes the leader: it opens the window, waits for it
// to close (MaxBatch reached or MaxWait expired), then drains every queued
// member through one acquisition of the Guard's kernel mutex and fans the
// per-member results out. Later committers just enqueue and wait.
type groupCommitter struct {
	g      *Guard
	policy GroupCommitPolicy
	clock  live.Clock
	sleep  func(time.Duration) // injected so ManualClock tests control time

	mu      sync.Mutex
	queue   []*commitWaiter
	leading bool
	full    chan struct{} // closed when the forming batch reaches MaxBatch
	fullSig bool
	opened  time.Time // when the forming batch's window opened
}

// commit enqueues tid and blocks until its batch is flushed, returning
// this transaction's own kernel commit result.
func (gc *groupCommitter) commit(tid uint64) error {
	w := &commitWaiter{tid: tid, done: make(chan struct{})}
	gc.mu.Lock()
	if gc.leading {
		gc.queue = append(gc.queue, w)
		if len(gc.queue) >= gc.policy.MaxBatch && !gc.fullSig {
			gc.fullSig = true
			close(gc.full)
		}
		gc.mu.Unlock()
		<-w.done
		return w.err
	}
	gc.leading = true
	gc.queue = []*commitWaiter{w}
	gc.full = make(chan struct{})
	gc.fullSig = false
	gc.opened = gc.clock.Now()
	full := gc.full
	if gc.policy.MaxBatch <= 1 {
		gc.fullSig = true
		close(full)
	}
	gc.mu.Unlock()

	gc.await(full)

	gc.mu.Lock()
	batch := gc.queue
	gc.queue = nil
	gc.leading = false
	wasFull := gc.fullSig
	waitMs := float64(gc.clock.Now().Sub(gc.opened)) / float64(time.Millisecond)
	gc.mu.Unlock()

	gc.flush(batch, waitMs, wasFull)
	return w.err
}

// await blocks the leader until the window closes: the batch fills, or
// MaxWait expires on the injected clock. A MaxWait of zero (or less)
// closes the window immediately — whatever raced in gets batched, and a
// lone committer proceeds with no added latency.
func (gc *groupCommitter) await(full chan struct{}) {
	select {
	case <-full:
		return
	default:
	}
	if gc.policy.MaxWait <= 0 {
		return
	}
	timer := make(chan struct{})
	go func() {
		gc.sleep(gc.policy.MaxWait)
		close(timer)
	}()
	select {
	case <-full:
	case <-timer:
	}
}

// flush drains one batch under a single acquisition of the kernel mutex:
// members commit in arrival order, and the first kernel error aborts the
// rest of the group — unattempted members are rolled back (best-effort)
// and receive ErrGroupAborted, so no waiter ever observes a spurious
// success. Per-member results are published before done is closed.
func (gc *groupCommitter) flush(batch []*commitWaiter, waitMs float64, full bool) {
	g := gc.g
	tok := g.mx.Load().Enter(live.GuardCommit)
	g.mu.Lock()
	tok.Acquired()
	var failed error
	for _, w := range batch {
		g.commits.Inc()
		if failed != nil {
			_ = g.rm.Abort(w.tid) // may itself fail; the txn is a loser either way
			w.err = fmt.Errorf("%w: a preceding member of the batch failed: %v", ErrGroupAborted, failed)
		} else {
			w.err = g.rm.Commit(w.tid)
			if w.err != nil {
				failed = w.err
			}
		}
		if sc := g.stripes.Load(); sc != nil {
			sc.finishTxn(w.tid)
		}
	}
	g.mu.Unlock()
	tok.Release()
	g.mx.Load().ObserveCommitBatch(len(batch), waitMs, full)
	for _, w := range batch {
		close(w.done)
	}
}

// SetGroupCommit attaches a group-commit policy to the Guard, batching
// concurrent Commit callers per the policy with the window timed on clock
// (nil defaults to the wall clock). A policy of {MaxBatch: 1, MaxWait: 0}
// — or anything that normalizes to it — detaches batching and restores
// the plain commit path. Like SetReadStripes, call it while the Guard is
// quiescent (setup time, or between workloads).
func (g *Guard) SetGroupCommit(policy GroupCommitPolicy, clock live.Clock) {
	g.setGroupCommit(policy, clock, live.Sleep)
}

// setGroupCommit is SetGroupCommit with the leader's sleep function
// injected, so policy tests pair a ManualClock with a scripted sleep.
func (g *Guard) setGroupCommit(policy GroupCommitPolicy, clock live.Clock, sleep func(time.Duration)) {
	if policy.MaxBatch < 1 {
		policy.MaxBatch = 1
	}
	if policy.MaxWait < 0 {
		policy.MaxWait = 0
	}
	if policy.MaxBatch == 1 && policy.MaxWait == 0 {
		g.gc.Store(nil)
		return
	}
	if clock == nil {
		clock = live.Wall()
	}
	g.gc.Store(&groupCommitter{g: g, policy: policy, clock: clock, sleep: sleep})
}

// GroupCommit reports the attached batching policy, or ok=false when
// commits run on the plain path.
func (g *Guard) GroupCommit() (policy GroupCommitPolicy, ok bool) {
	gc := g.gc.Load()
	if gc == nil {
		return GroupCommitPolicy{}, false
	}
	return gc.policy, true
}

// stripeCap bounds the committed-page cache per stripe so a scan-heavy
// workload cannot grow the guard without bound.
const stripeCap = 1024

// stripeCache is the guard-owned committed-page cache behind the striped
// read path. The stripes' RWMutexes order concurrent readers against
// invalidation; the dirty/tx bookkeeping is only ever touched while the
// Guard's kernel mutex is held, so it needs no lock of its own.
type stripeCache struct {
	stripes []cacheStripe
	mask    uint64

	// dirty counts active writers per page; a page with a nonzero count
	// must not be cached (an active transaction's Read of it would see
	// its own uncommitted write, which is not committed state).
	dirty map[int64]int
	// tx records each active transaction's written pages so commit and
	// abort can release the dirty counts.
	tx map[uint64]map[int64]struct{}
}

type cacheStripe struct {
	mu    sync.RWMutex
	pages map[int64][]byte
}

func newStripeCache(n int) *stripeCache {
	size := 1
	for size < n {
		size <<= 1
	}
	sc := &stripeCache{
		stripes: make([]cacheStripe, size),
		mask:    uint64(size - 1),
		dirty:   make(map[int64]int),
		tx:      make(map[uint64]map[int64]struct{}),
	}
	for i := range sc.stripes {
		sc.stripes[i].pages = make(map[int64][]byte)
	}
	return sc
}

func (sc *stripeCache) stripe(p int64) *cacheStripe {
	// Mix the page id so striding page ranges spread across stripes.
	h := uint64(p) * 0x9e3779b97f4a7c15
	return &sc.stripes[(h>>32)&sc.mask]
}

// get serves page p from the cache, returning a private copy. It takes
// only the stripe's read latch — never the kernel mutex.
func (sc *stripeCache) get(p int64) ([]byte, bool) {
	s := sc.stripe(p)
	s.mu.RLock()
	v, ok := s.pages[p]
	if !ok {
		s.mu.RUnlock()
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	s.mu.RUnlock()
	return out, true
}

// put caches a private copy of page p's committed image. Called with the
// kernel mutex held, after the caller verified clean(p).
func (sc *stripeCache) put(p int64, v []byte) {
	s := sc.stripe(p)
	s.mu.Lock()
	if _, ok := s.pages[p]; !ok && len(s.pages) >= stripeCap {
		s.mu.Unlock()
		return
	}
	buf := make([]byte, len(v))
	copy(buf, v)
	s.pages[p] = buf
	s.mu.Unlock()
}

// clean reports whether no active transaction has written page p. Called
// with the kernel mutex held.
func (sc *stripeCache) clean(p int64) bool { return sc.dirty[p] == 0 }

// invalidate drops page p. Called with the kernel mutex held.
func (sc *stripeCache) invalidate(p int64) {
	s := sc.stripe(p)
	s.mu.Lock()
	delete(s.pages, p)
	s.mu.Unlock()
}

// invalidateAll empties the cache and forgets all writer bookkeeping —
// the crash/recover path. Called with the kernel mutex held.
func (sc *stripeCache) invalidateAll() {
	for i := range sc.stripes {
		s := &sc.stripes[i]
		s.mu.Lock()
		s.pages = make(map[int64][]byte)
		s.mu.Unlock()
	}
	sc.dirty = make(map[int64]int)
	sc.tx = make(map[uint64]map[int64]struct{})
}

// noteWrite marks page p dirty on behalf of tid and drops any cached
// image. Called with the kernel mutex held, before the kernel write (a
// torn kernel write must still invalidate).
func (sc *stripeCache) noteWrite(tid uint64, p int64) {
	set := sc.tx[tid]
	if set == nil {
		set = make(map[int64]struct{})
		sc.tx[tid] = set
	}
	if _, seen := set[p]; !seen {
		set[p] = struct{}{}
		sc.dirty[p]++
	}
	sc.invalidate(p)
}

// finishTxn releases tid's dirty counts after commit or abort; the pages
// become cacheable again on their next clean read. Called with the kernel
// mutex held.
func (sc *stripeCache) finishTxn(tid uint64) {
	for p := range sc.tx[tid] {
		if sc.dirty[p]--; sc.dirty[p] <= 0 {
			delete(sc.dirty, p)
		}
	}
	delete(sc.tx, tid)
}

// SetReadStripes attaches a striped committed-page cache with at least n
// stripes (rounded up to a power of two), letting Read and ReadCommitted
// on distinct pages proceed in parallel without the kernel mutex; n <= 0
// detaches the cache and restores the fully serialized read path. Call it
// while the Guard is quiescent: the cache assumes every page written by a
// still-active transaction is tracked, which only holds if no transaction
// predates the cache.
func (g *Guard) SetReadStripes(n int) {
	if n <= 0 {
		g.stripes.Store(nil)
		return
	}
	g.stripes.Store(newStripeCache(n))
}

// ReadStripes reports the stripe count of the attached read cache, or 0
// when reads are fully serialized.
func (g *Guard) ReadStripes() int {
	sc := g.stripes.Load()
	if sc == nil {
		return 0
	}
	return len(sc.stripes)
}
