package engine

import (
	"bytes"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/live"
	"repro/internal/wal"
)

// TestGuardMetricsAndJournal drives a WAL engine with the contention
// profile and recovery journal attached, and checks both observe the run:
// per-op wait/hold samples land in the right histograms, and recovery
// decisions appear in the journal in order.
func TestGuardMetricsAndJournal(t *testing.T) {
	e := NewWAL(wal.Config{})
	gm := live.NewGuardMetrics(live.Wall())
	e.Guard().SetMetrics(gm)
	if e.Guard().Metrics() != gm {
		t.Fatal("Metrics() does not round-trip")
	}
	j := obs.NewJournal()
	if err := e.Guard().SetJournal(j); err != nil {
		t.Fatalf("SetJournal: %v", err)
	}

	txn, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Write(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	loser, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := loser.Write(2, []byte("b")); err != nil {
		t.Fatal(err)
	}
	// A second committer forces every stream, making the loser's buffered
	// update durable — so recovery must classify it a loser and undo it.
	forcer, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := forcer.Write(3, []byte("c")); err != nil {
		t.Fatal(err)
	}
	if err := forcer.Commit(); err != nil {
		t.Fatal(err)
	}
	e.Crash()
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		op   live.GuardOp
		want int64
	}{
		{live.GuardBegin, 3},
		{live.GuardWrite, 3},
		{live.GuardCommit, 2},
		{live.GuardRecover, 1},
	} {
		if got := gm.Wait(tc.op).Count(); got != tc.want {
			t.Errorf("%s wait samples = %d, want %d", tc.op, got, tc.want)
		}
		if got := gm.Hold(tc.op).Count(); got != tc.want {
			t.Errorf("%s hold samples = %d, want %d", tc.op, got, tc.want)
		}
	}
	if gm.Waiters() != 0 {
		t.Errorf("waiters after quiescence = %d", gm.Waiters())
	}

	if j.Len() == 0 {
		t.Fatal("journal empty after recovery")
	}
	events := map[string]int{}
	for _, r := range j.Records() {
		events[r.Event]++
	}
	for _, ev := range []string{"scan", "winner", "loser", "redo"} {
		if events[ev] == 0 {
			t.Errorf("journal has no %q record (events: %v)", ev, events)
		}
	}
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("journal rendered empty")
	}

	// Detach both; further traffic must be invisible.
	e.Guard().SetMetrics(nil)
	if err := e.Guard().SetJournal(nil); err != nil {
		t.Fatal(err)
	}
	n := j.Len()
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
	if j.Len() != n {
		t.Error("journal grew after detach")
	}
	if got := gm.Wait(live.GuardRecover).Count(); got != 1 {
		t.Errorf("metrics grew after detach: recover wait count %d", got)
	}
}

// TestSetJournalUnsupported covers kernels without a journal via a stub.
func TestSetJournalUnsupported(t *testing.T) {
	g := NewGuard(stubRM{})
	if err := g.SetJournal(obs.NewJournal()); err != ErrUnsupported {
		t.Fatalf("SetJournal on journal-less kernel: %v, want ErrUnsupported", err)
	}
}

type stubRM struct{}

func (stubRM) Name() string                        { return "stub" }
func (stubRM) Load(int64, []byte) error            { return nil }
func (stubRM) Begin(uint64) error                  { return nil }
func (stubRM) Read(uint64, int64) ([]byte, error)  { return nil, nil }
func (stubRM) Write(uint64, int64, []byte) error   { return nil }
func (stubRM) Commit(uint64) error                 { return nil }
func (stubRM) Abort(uint64) error                  { return nil }
func (stubRM) Crash()                              {}
func (stubRM) Recover() error                      { return nil }
func (stubRM) ReadCommitted(int64) ([]byte, error) { return nil, nil }
