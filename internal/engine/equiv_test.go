// Differential equivalence tests for the kernel/wrapper split: the same
// seeded faultinj script is replayed twice per recovery architecture — once
// straight into the pure, single-threaded kernel and once through the
// thread-safe engine (Guard + 2PL) — and the two runs must be
// indistinguishable: identical script outcomes, identical recovered page
// bytes, identical kernel counters. This holds both for clean runs and for
// runs cut down by an injected crash at every sampled stable-storage
// mutation.
//
// The test lives in package engine_test because faultinj imports
// internal/engine; an in-package test would be an import cycle.
package engine_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/diffeng"
	"repro/internal/engine"
	"repro/internal/faultinj"
	"repro/internal/pagestore"
	"repro/internal/shadoweng"
	"repro/internal/sim"
	"repro/internal/wal"
)

const (
	equivSeed  = 1985
	equivPages = 6
	equivTxns  = 25
)

// kernelAdapter bridges wal.Manager's pagestore.PageID signatures to the
// int64 RecoveryManager interface, mirroring the engine package's own
// unexported adapter.
type kernelAdapter struct{ m *wal.Manager }

func (a kernelAdapter) Name() string                 { return a.m.Name() }
func (a kernelAdapter) Load(p int64, d []byte) error { return a.m.Load(pagestore.PageID(p), d) }
func (a kernelAdapter) Begin(tid uint64) error       { return a.m.Begin(tid) }
func (a kernelAdapter) Commit(tid uint64) error      { return a.m.Commit(tid) }
func (a kernelAdapter) Abort(tid uint64) error       { return a.m.Abort(tid) }
func (a kernelAdapter) Crash()                       { a.m.Crash() }
func (a kernelAdapter) Recover() error               { return a.m.Recover() }
func (a kernelAdapter) Stats() map[string]int64      { return a.m.Stats() }
func (a kernelAdapter) Read(tid uint64, p int64) ([]byte, error) {
	return a.m.Read(tid, pagestore.PageID(p))
}
func (a kernelAdapter) Write(tid uint64, p int64, d []byte) error {
	return a.m.Write(tid, pagestore.PageID(p), d)
}
func (a kernelAdapter) ReadCommitted(p int64) ([]byte, error) {
	return a.m.ReadCommitted(pagestore.PageID(p))
}

// equivTarget builds one recovery architecture twice: the bare kernel and
// the wrapped engine, each over its own stores (every stable store is
// returned so fault hooks cover the WAL engine's separate log store).
type equivTarget struct {
	name    string
	kernel  func(t *testing.T) (engine.RecoveryManager, []*pagestore.Store)
	wrapped func(t *testing.T) (*engine.Engine, []*pagestore.Store)
}

func equivTargets() []equivTarget {
	walKernel := func(cfg wal.Config) func(*testing.T) (engine.RecoveryManager, []*pagestore.Store) {
		return func(*testing.T) (engine.RecoveryManager, []*pagestore.Store) {
			store := pagestore.New(4096)
			m := wal.NewManager(store, cfg)
			return kernelAdapter{m}, []*pagestore.Store{store, m.LogStore()}
		}
	}
	walWrapped := func(cfg wal.Config) func(*testing.T) (*engine.Engine, []*pagestore.Store) {
		return func(*testing.T) (*engine.Engine, []*pagestore.Store) {
			store := pagestore.New(4096)
			e, m := engine.NewWALOn(store, cfg)
			return e, []*pagestore.Store{store, m.LogStore()}
		}
	}
	return []equivTarget{
		{
			name:    "wal-1stream",
			kernel:  walKernel(wal.Config{PoolPages: 4}),
			wrapped: walWrapped(wal.Config{PoolPages: 4}),
		},
		{
			name:    "wal-3streams",
			kernel:  walKernel(wal.Config{Streams: 3, Selection: wal.PageMod, PoolPages: 4}),
			wrapped: walWrapped(wal.Config{Streams: 3, Selection: wal.PageMod, PoolPages: 4}),
		},
		{
			name: "shadow",
			kernel: func(t *testing.T) (engine.RecoveryManager, []*pagestore.Store) {
				store := pagestore.New(4096)
				se, err := shadoweng.New(store)
				if err != nil {
					t.Fatalf("shadoweng.New: %v", err)
				}
				return se, []*pagestore.Store{store}
			},
			wrapped: func(t *testing.T) (*engine.Engine, []*pagestore.Store) {
				store := pagestore.New(4096)
				e, err := engine.NewShadowOn(store)
				if err != nil {
					t.Fatalf("NewShadowOn: %v", err)
				}
				return e, []*pagestore.Store{store}
			},
		},
		{
			name: "ow-noundo",
			kernel: func(*testing.T) (engine.RecoveryManager, []*pagestore.Store) {
				store := pagestore.New(4096)
				return shadoweng.NewOverwrite(store, shadoweng.NoUndo), []*pagestore.Store{store}
			},
			wrapped: func(*testing.T) (*engine.Engine, []*pagestore.Store) {
				store := pagestore.New(4096)
				return engine.NewOverwriteOn(store, shadoweng.NoUndo), []*pagestore.Store{store}
			},
		},
		{
			name: "ow-noredo",
			kernel: func(*testing.T) (engine.RecoveryManager, []*pagestore.Store) {
				store := pagestore.New(4096)
				return shadoweng.NewOverwrite(store, shadoweng.NoRedo), []*pagestore.Store{store}
			},
			wrapped: func(*testing.T) (*engine.Engine, []*pagestore.Store) {
				store := pagestore.New(4096)
				return engine.NewOverwriteOn(store, shadoweng.NoRedo), []*pagestore.Store{store}
			},
		},
		{
			name: "verselect",
			kernel: func(t *testing.T) (engine.RecoveryManager, []*pagestore.Store) {
				store := pagestore.New(4096)
				ve, err := shadoweng.NewVersion(store)
				if err != nil {
					t.Fatalf("shadoweng.NewVersion: %v", err)
				}
				return ve, []*pagestore.Store{store}
			},
			wrapped: func(t *testing.T) (*engine.Engine, []*pagestore.Store) {
				store := pagestore.New(4096)
				e, err := engine.NewVersionSelectOn(store)
				if err != nil {
					t.Fatalf("NewVersionSelectOn: %v", err)
				}
				return e, []*pagestore.Store{store}
			},
		},
		{
			name: "difffile",
			kernel: func(*testing.T) (engine.RecoveryManager, []*pagestore.Store) {
				store := pagestore.New(4096)
				return diffeng.New(store), []*pagestore.Store{store}
			},
			wrapped: func(*testing.T) (*engine.Engine, []*pagestore.Store) {
				store := pagestore.New(4096)
				return engine.NewDiffOn(store), []*pagestore.Store{store}
			},
		},
	}
}

// loadKernelPages is faultinj.LoadPages for a bare kernel: identical
// payloads, identical model map.
func loadKernelPages(rm engine.RecoveryManager, pages int) (map[int64][]byte, error) {
	model := make(map[int64][]byte, pages)
	for p := int64(0); p < int64(pages); p++ {
		v := faultinj.Payload(p, 0, 0)
		if err := rm.Load(p, v); err != nil {
			return nil, err
		}
		model[p] = v
	}
	return model, nil
}

// runKernelScript is faultinj.RunScript with the engine layer peeled away:
// the same seeded RNG drives the same Begin/Write/Commit/Abort sequence
// straight into the pure kernel, with sequential transaction ids exactly as
// the engine's id counter would assign them. Any divergence between this
// and a wrapped run is by construction a behavioral difference introduced
// by the wrapper.
func runKernelScript(rm engine.RecoveryManager, model map[int64][]byte, seed int64, pages, maxTxns int) *faultinj.Outcome {
	rng := sim.NewRNG(seed)
	out := &faultinj.Outcome{Model: model}
	var tid uint64
	for i := 0; i < maxTxns; i++ {
		tid++
		if err := rm.Begin(tid); err != nil {
			out.Crashed = true
			return out
		}
		writes := make(map[int64][]byte)
		n := rng.UniformInt(1, 3)
		for j := 0; j < n; j++ {
			p := int64(rng.Intn(pages))
			v := faultinj.Payload(p, tid, j)
			if err := rm.Write(tid, p, v); err != nil {
				_ = rm.Abort(tid) // mirrors RunScript's best-effort abort
				out.Crashed = true
				return out
			}
			writes[p] = v
		}
		if rng.Bool(0.2) {
			if err := rm.Abort(tid); err != nil {
				out.Crashed = true
				return out
			}
			continue
		}
		if err := rm.Commit(tid); err != nil {
			out.Doubt = writes
			out.Crashed = true
			return out
		}
		out.Commits++
		for p, v := range writes {
			out.Model[p] = v
		}
	}
	return out
}

// kernelStats mirrors Guard.Stats for the bare kernel side.
func kernelStats(rm engine.RecoveryManager) map[string]int64 {
	if ss, ok := rm.(engine.StatsSource); ok {
		return ss.Stats()
	}
	return map[string]int64{}
}

// compareOutcomes asserts the script saw the same world through both layers.
func compareOutcomes(t *testing.T, pure, wrapped *faultinj.Outcome) {
	t.Helper()
	if pure.Crashed != wrapped.Crashed {
		t.Errorf("crashed: kernel=%v wrapper=%v", pure.Crashed, wrapped.Crashed)
	}
	if pure.Commits != wrapped.Commits {
		t.Errorf("commits: kernel=%d wrapper=%d", pure.Commits, wrapped.Commits)
	}
	if !reflect.DeepEqual(pure.Doubt, wrapped.Doubt) {
		t.Errorf("in-doubt write sets differ: kernel=%v wrapper=%v", pure.Doubt, wrapped.Doubt)
	}
	if !reflect.DeepEqual(pure.Model, wrapped.Model) {
		t.Errorf("committed models differ: kernel=%v wrapper=%v", pure.Model, wrapped.Model)
	}
}

// compareRecovered crashes and recovers both layers, then asserts identical
// committed page bytes (all of them sound payloads) and identical kernel
// counters.
func compareRecovered(t *testing.T, rm engine.RecoveryManager, e *engine.Engine, pages int) {
	t.Helper()
	rm.Crash()
	e.Crash()
	if err := rm.Recover(); err != nil {
		t.Fatalf("kernel recover: %v", err)
	}
	if err := e.Recover(); err != nil {
		t.Fatalf("wrapper recover: %v", err)
	}
	for p := int64(0); p < int64(pages); p++ {
		kv, kerr := rm.ReadCommitted(p)
		wv, werr := e.ReadCommitted(p)
		if (kerr == nil) != (werr == nil) {
			t.Fatalf("page %d: read errors diverge: kernel=%v wrapper=%v", p, kerr, werr)
		}
		if kerr != nil {
			continue
		}
		if !bytes.Equal(kv, wv) {
			t.Errorf("page %d: recovered bytes diverge: kernel=%q wrapper=%q", p, kv, wv)
		}
		if msg := faultinj.CheckPayload(kv, p); msg != "" {
			t.Errorf("recovered state corrupt: %s", msg)
		}
	}
	ks, ws := kernelStats(rm), e.Guard().Stats()
	if !reflect.DeepEqual(ks, ws) {
		t.Errorf("kernel counters diverge:\n  kernel:  %v\n  wrapper: %v", ks, ws)
	}
}

// TestKernelWrapperEquivalenceClean replays the scripted workload crash-free
// through both layers of every architecture and demands identical outcomes,
// recovered states, and counters.
func TestKernelWrapperEquivalenceClean(t *testing.T) {
	for _, tg := range equivTargets() {
		t.Run(tg.name, func(t *testing.T) {
			rm, _ := tg.kernel(t)
			e, _ := tg.wrapped(t)
			kmodel, err := loadKernelPages(rm, equivPages)
			if err != nil {
				t.Fatalf("kernel load: %v", err)
			}
			wmodel, err := faultinj.LoadPages(e, equivPages)
			if err != nil {
				t.Fatalf("wrapper load: %v", err)
			}
			pure := runKernelScript(rm, kmodel, equivSeed, equivPages, equivTxns)
			wrapped := faultinj.RunScript(e, wmodel, equivSeed, equivPages, equivTxns)
			if pure.Crashed || wrapped.Crashed {
				t.Fatalf("clean run crashed without injection (kernel=%v wrapper=%v)",
					pure.Crashed, wrapped.Crashed)
			}
			compareOutcomes(t, pure, wrapped)
			compareRecovered(t, rm, e, equivPages)
		})
	}
}

// TestKernelWrapperEquivalenceUnderCrashes enumerates the workload's stable
// mutations and, at each sampled crash point, cuts power in both layers at
// the same mutation ordinal. Because the two layers issue identical kernel
// call sequences, they must crash at the same logical instant and recover
// to byte-identical states with identical counters.
func TestKernelWrapperEquivalenceUnderCrashes(t *testing.T) {
	stride := int64(3)
	if testing.Short() {
		stride = 7
	}
	for _, tg := range equivTargets() {
		t.Run(tg.name, func(t *testing.T) {
			// Probe: count stable mutations of a crash-free kernel run. Hooks
			// go in after the initial load, as in faultinj.SweepTarget, so
			// mutation ordinals count workload traffic only.
			rm, stores := tg.kernel(t)
			model, err := loadKernelPages(rm, equivPages)
			if err != nil {
				t.Fatalf("probe load: %v", err)
			}
			ctr := &faultinj.Counter{}
			hook := ctr.Hook()
			for _, s := range stores {
				s.SetFaultHook(hook)
			}
			if out := runKernelScript(rm, model, equivSeed, equivPages, equivTxns); out.Crashed {
				t.Fatalf("probe run crashed without injection")
			}
			muts := ctr.Mutations()
			if muts == 0 {
				t.Fatalf("probe run made no stable mutations")
			}

			points := []int64{1}
			for k := stride; k < muts; k += stride {
				points = append(points, k)
			}
			points = append(points, muts)

			for _, k := range points {
				t.Run(fmt.Sprintf("mut%d", k), func(t *testing.T) {
					rm, kstores := tg.kernel(t)
					e, wstores := tg.wrapped(t)
					kmodel, err := loadKernelPages(rm, equivPages)
					if err != nil {
						t.Fatalf("kernel load: %v", err)
					}
					wmodel, err := faultinj.LoadPages(e, equivPages)
					if err != nil {
						t.Fatalf("wrapper load: %v", err)
					}
					// Each layer gets its own hook: CrashAtMutation closes over
					// a private ordinal counter, so sharing one would halve the
					// observed crash point.
					khook := faultinj.CrashAtMutation(k)
					for _, s := range kstores {
						s.SetFaultHook(khook)
					}
					whook := faultinj.CrashAtMutation(k)
					for _, s := range wstores {
						s.SetFaultHook(whook)
					}
					pure := runKernelScript(rm, kmodel, equivSeed, equivPages, equivTxns)
					wrapped := faultinj.RunScript(e, wmodel, equivSeed, equivPages, equivTxns)
					compareOutcomes(t, pure, wrapped)
					compareRecovered(t, rm, e, equivPages)
				})
			}
		})
	}
}
