package engine

// Unit tests for the relaxed concurrency envelope (groupguard.go): the
// group-commit policy driven by a ManualClock with a scripted sleep, the
// error fan-out that keeps a failed batch free of spurious successes
// (regression-shaped like the PR 8 lockmgr ErrReleased bug), and the
// striped committed-page cache's invalidation rules. The cross-layer
// equivalence proof lives in concequiv_test.go (package engine_test).

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/obs/live"
	"repro/internal/wal"
)

// fakeRM is a scriptable in-memory kernel for policy tests: it records the
// order of commit and abort calls and can be told to fail commits.
type fakeRM struct {
	stubRM
	commits []uint64
	aborts  []uint64
	// failNext makes the next attempted commit fail with this error, once.
	failNext error
}

func (f *fakeRM) Commit(tid uint64) error {
	f.commits = append(f.commits, tid)
	if err := f.failNext; err != nil {
		f.failNext = nil
		return err
	}
	return nil
}

func (f *fakeRM) Abort(tid uint64) error {
	f.aborts = append(f.aborts, tid)
	return nil
}

// scriptedSleep is the leader's injected sleep for ManualClock tests. Each
// call reports its duration on calls, then blocks until the test releases
// the gate (at which point the clock is advanced by the requested amount)
// or the test ends.
type scriptedSleep struct {
	clock *live.ManualClock
	calls chan time.Duration
	gate  chan struct{}
	done  chan struct{}
}

func newScriptedSleep(t *testing.T, clock *live.ManualClock) *scriptedSleep {
	s := &scriptedSleep{
		clock: clock,
		calls: make(chan time.Duration, 8),
		gate:  make(chan struct{}, 8),
		done:  make(chan struct{}),
	}
	t.Cleanup(func() { close(s.done) })
	return s
}

func (s *scriptedSleep) sleep(d time.Duration) {
	s.calls <- d
	select {
	case <-s.gate:
		s.clock.Advance(d)
	case <-s.done:
	}
}

// groupState reads the committer's forming-batch size under its own lock.
func groupState(g *Guard) (queued int, leading bool) {
	gc := g.gc.Load()
	if gc == nil {
		return 0, false
	}
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return len(gc.queue), gc.leading
}

// waitQueued spins until the forming batch holds n members.
func waitQueued(t *testing.T, g *Guard, n int) {
	t.Helper()
	for i := 0; i < 1e7; i++ {
		if q, _ := groupState(g); q == n {
			return
		}
		runtime.Gosched()
	}
	q, leading := groupState(g)
	t.Fatalf("queue never reached %d members (at %d, leading=%v)", n, q, leading)
}

func groupGuard(t *testing.T, rm RecoveryManager, p GroupCommitPolicy) (*Guard, *live.ManualClock, *scriptedSleep, *live.GuardMetrics) {
	t.Helper()
	clock := live.NewManualClock(time.Unix(1000, 0))
	sleep := newScriptedSleep(t, clock)
	g := NewGuard(rm)
	gm := live.NewGuardMetrics(clock)
	g.SetMetrics(gm)
	g.setGroupCommit(p, clock, sleep.sleep)
	return g, clock, sleep, gm
}

// TestGroupCommitMaxWaitFlushesPartialBatch parks two committers (fewer
// than MaxBatch) and lets MaxWait expire on the manual clock: the partial
// batch must flush as one kernel pass, in arrival order, with the batch
// metrics recording a timer flush whose window is exactly MaxWait.
func TestGroupCommitMaxWaitFlushesPartialBatch(t *testing.T) {
	const maxWait = 10 * time.Millisecond
	fake := &fakeRM{}
	g, clock, sleep, gm := groupGuard(t, fake, GroupCommitPolicy{MaxBatch: 4, MaxWait: maxWait})
	start := clock.Now()

	errs := make(chan error, 2)
	go func() { errs <- g.Commit(1) }()
	// The leader must be parked in its MaxWait sleep before the second
	// committer joins, so the join is unambiguous.
	if d := <-sleep.calls; d != maxWait {
		t.Fatalf("leader slept %v, want MaxWait %v", d, maxWait)
	}
	waitQueued(t, g, 1)
	go func() { errs <- g.Commit(2) }()
	waitQueued(t, g, 2)

	sleep.gate <- struct{}{} // let MaxWait expire
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}

	if want := []uint64{1, 2}; fmt.Sprint(fake.commits) != fmt.Sprint(want) {
		t.Errorf("kernel commit order = %v, want %v", fake.commits, want)
	}
	if got := clock.Now().Sub(start); got != maxWait {
		t.Errorf("clock advanced %v, want exactly MaxWait %v", got, maxWait)
	}
	if n := gm.CommitBatchSize().Count(); n != 1 {
		t.Fatalf("batches observed = %d, want 1", n)
	}
	if got := gm.CommitBatchSize().Sum(); got != 2 {
		t.Errorf("batch size = %v, want 2", got)
	}
	if got := gm.CommitBatchWait().Sum(); got != 10 {
		t.Errorf("batch window = %vms, want 10ms", got)
	}
	if gm.FlushTimer() != 1 || gm.FlushFull() != 0 {
		t.Errorf("flush reasons: timer=%d full=%d, want timer=1 full=0",
			gm.FlushTimer(), gm.FlushFull())
	}
}

// TestGroupCommitMaxBatchFlushesEarly fills the batch to MaxBatch while
// the MaxWait timer is still pending: the flush must happen without the
// clock ever advancing.
func TestGroupCommitMaxBatchFlushesEarly(t *testing.T) {
	fake := &fakeRM{}
	g, clock, sleep, gm := groupGuard(t, fake, GroupCommitPolicy{MaxBatch: 3, MaxWait: time.Hour})
	start := clock.Now()

	errs := make(chan error, 3)
	go func() { errs <- g.Commit(1) }()
	<-sleep.calls // leader parked on the (never-released) timer
	waitQueued(t, g, 1)
	go func() { errs <- g.Commit(2) }()
	waitQueued(t, g, 2)
	go func() { errs <- g.Commit(3) }()

	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if got := clock.Now(); !got.Equal(start) {
		t.Errorf("clock advanced to %v; a full batch must not wait", got)
	}
	if want := []uint64{1, 2, 3}; fmt.Sprint(fake.commits) != fmt.Sprint(want) {
		t.Errorf("kernel commit order = %v, want %v", fake.commits, want)
	}
	if n := gm.CommitBatchSize().Count(); n != 1 {
		t.Fatalf("batches observed = %d, want 1", n)
	}
	if got := gm.CommitBatchSize().Sum(); got != 3 {
		t.Errorf("batch size = %v, want 3", got)
	}
	if gm.FlushFull() != 1 || gm.FlushTimer() != 0 {
		t.Errorf("flush reasons: full=%d timer=%d, want full=1 timer=0",
			gm.FlushFull(), gm.FlushTimer())
	}
}

// TestGroupCommitLoneCommitterBoundedByMaxWait proves a committer with no
// company is delayed by exactly one MaxWait window and nothing more: the
// only sleep the leader ever requests is MaxWait itself.
func TestGroupCommitLoneCommitterBoundedByMaxWait(t *testing.T) {
	const maxWait = 5 * time.Millisecond
	fake := &fakeRM{}
	g, clock, sleep, gm := groupGuard(t, fake, GroupCommitPolicy{MaxBatch: 8, MaxWait: maxWait})
	start := clock.Now()

	errs := make(chan error, 1)
	go func() { errs <- g.Commit(7) }()
	if d := <-sleep.calls; d != maxWait {
		t.Fatalf("leader slept %v, want MaxWait %v", d, maxWait)
	}
	sleep.gate <- struct{}{}
	if err := <-errs; err != nil {
		t.Fatalf("lone commit: %v", err)
	}
	select {
	case d := <-sleep.calls:
		t.Fatalf("unexpected extra sleep of %v", d)
	default:
	}
	if got := clock.Now().Sub(start); got != maxWait {
		t.Errorf("lone committer delayed %v, want exactly MaxWait %v", got, maxWait)
	}
	if gm.FlushTimer() != 1 || gm.CommitBatchSize().Sum() != 1 {
		t.Errorf("want one timer flush of batch size 1 (timer=%d size-sum=%v)",
			gm.FlushTimer(), gm.CommitBatchSize().Sum())
	}
}

// TestGroupCommitErrorFansOutToWholeBatch makes the first kernel commit of
// a full batch fail: the failing member must see the kernel's error, every
// later member must see ErrGroupAborted (their commits were never
// attempted; they are rolled back instead), and NO member may observe a
// nil result — the spurious-success shape of the PR 8 lockmgr bug.
func TestGroupCommitErrorFansOutToWholeBatch(t *testing.T) {
	forceErr := errors.New("log force failed")
	fake := &fakeRM{failNext: forceErr}
	g, _, sleep, _ := groupGuard(t, fake, GroupCommitPolicy{MaxBatch: 3, MaxWait: time.Hour})

	type result struct {
		tid uint64
		err error
	}
	results := make(chan result, 3)
	go func() { results <- result{1, g.Commit(1)} }()
	<-sleep.calls
	waitQueued(t, g, 1)
	go func() { results <- result{2, g.Commit(2)} }()
	waitQueued(t, g, 2)
	go func() { results <- result{3, g.Commit(3)} }()

	byTid := map[uint64]error{}
	for i := 0; i < 3; i++ {
		r := <-results
		byTid[r.tid] = r.err
	}
	for tid, err := range byTid {
		if err == nil {
			t.Fatalf("txn %d: nil commit result from a failed batch (spurious success)", tid)
		}
	}
	if !errors.Is(byTid[1], forceErr) {
		t.Errorf("txn 1 = %v, want the kernel error", byTid[1])
	}
	for _, tid := range []uint64{2, 3} {
		if !errors.Is(byTid[tid], ErrGroupAborted) {
			t.Errorf("txn %d = %v, want ErrGroupAborted", tid, byTid[tid])
		}
	}
	if want := []uint64{1}; fmt.Sprint(fake.commits) != fmt.Sprint(want) {
		t.Errorf("kernel commits attempted = %v, want only %v", fake.commits, want)
	}
	if want := []uint64{2, 3}; fmt.Sprint(fake.aborts) != fmt.Sprint(want) {
		t.Errorf("kernel aborts = %v, want %v (unattempted members rolled back)", fake.aborts, want)
	}
}

// TestGroupCommitPolicyNormalization: a policy that normalizes to
// {MaxBatch: 1, MaxWait: 0} is the plain path, and anything else attaches.
func TestGroupCommitPolicyNormalization(t *testing.T) {
	g := NewGuard(&fakeRM{})
	for _, p := range []GroupCommitPolicy{{}, {MaxBatch: 1}, {MaxBatch: -3, MaxWait: -time.Second}} {
		g.SetGroupCommit(p, nil)
		if _, ok := g.GroupCommit(); ok {
			t.Errorf("policy %+v should disable batching", p)
		}
	}
	g.SetGroupCommit(GroupCommitPolicy{MaxBatch: 4}, nil)
	if p, ok := g.GroupCommit(); !ok || p.MaxBatch != 4 {
		t.Fatalf("GroupCommit() = %+v,%v after attach", p, ok)
	}
	if err := g.Commit(1); err != nil { // batched solo commit, MaxWait 0
		t.Fatalf("solo batched commit: %v", err)
	}
	g.SetGroupCommit(GroupCommitPolicy{}, nil)
	if _, ok := g.GroupCommit(); ok {
		t.Fatal("detach failed")
	}
}

// TestStripedReadCache covers the invalidation rules directly against a
// real WAL kernel through the raw Guard (no 2PL): a dirty page is never
// cached, commit and abort re-admit pages, and crash/recover empties the
// cache.
func TestStripedReadCache(t *testing.T) {
	e := NewWAL(wal.Config{})
	g := e.Guard()
	clock := live.NewManualClock(time.Unix(0, 0))
	gm := live.NewGuardMetrics(clock)
	g.SetMetrics(gm)
	g.SetReadStripes(8)
	if got := g.ReadStripes(); got != 8 {
		t.Fatalf("ReadStripes() = %d, want 8", got)
	}

	v0 := []byte("committed-v0")
	if err := g.Load(5, v0); err != nil {
		t.Fatal(err)
	}

	// First committed read misses and populates; second hits the stripe.
	if err := g.Begin(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		v, err := g.Read(1, 5)
		if err != nil || !bytes.Equal(v, v0) {
			t.Fatalf("read %d = %q, %v", i, v, err)
		}
	}
	if gm.ReadCacheHits() == 0 || gm.ReadCacheMisses() == 0 {
		t.Fatalf("hits=%d misses=%d, want both nonzero", gm.ReadCacheHits(), gm.ReadCacheMisses())
	}

	// A cached value must be a private copy: mutating what Read returned
	// must not corrupt the cache.
	v, _ := g.Read(1, 5)
	v[0] = 'X'
	if got, _ := g.Read(1, 5); !bytes.Equal(got, v0) {
		t.Fatalf("cache corrupted through a returned slice: %q", got)
	}

	// While txn 2 holds an uncommitted write of page 5, the page is dirty:
	// reads fall through to the kernel, and nothing the kernel returns for
	// it may enter the cache.
	if err := g.Begin(2); err != nil {
		t.Fatal(err)
	}
	v1 := []byte("uncommitted-v1")
	if err := g.Write(2, 5, v1); err != nil {
		t.Fatal(err)
	}
	if got, err := g.Read(2, 5); err != nil || !bytes.Equal(got, v1) {
		t.Fatalf("writer's own read = %q, %v (want its uncommitted write)", got, err)
	}
	if err := g.Abort(2); err != nil {
		t.Fatal(err)
	}
	// If the uncommitted value had been cached, this would serve v1.
	if got, err := g.ReadCommitted(5); err != nil || !bytes.Equal(got, v0) {
		t.Fatalf("after abort ReadCommitted = %q, %v, want %q", got, err, v0)
	}

	// Commit invalidates: a committed overwrite must be visible even
	// though the old image was cached.
	v2 := []byte("committed-v2")
	if err := g.Begin(3); err != nil {
		t.Fatal(err)
	}
	if err := g.Write(3, 5, v2); err != nil {
		t.Fatal(err)
	}
	if err := g.Commit(3); err != nil {
		t.Fatal(err)
	}
	if got, err := g.ReadCommitted(5); err != nil || !bytes.Equal(got, v2) {
		t.Fatalf("after commit ReadCommitted = %q, %v, want %q", got, err, v2)
	}

	// Crash/recover drops the cache; the recovered image re-enters it.
	g.Crash()
	if err := g.Recover(); err != nil {
		t.Fatal(err)
	}
	if got, err := g.ReadCommitted(5); err != nil || !bytes.Equal(got, v2) {
		t.Fatalf("after recover ReadCommitted = %q, %v, want %q", got, err, v2)
	}

	g.SetReadStripes(0)
	if got := g.ReadStripes(); got != 0 {
		t.Fatalf("ReadStripes() = %d after detach", got)
	}
}

// TestOpCountsConcurrentWithLoad pins the satellite fix: OpCounts is
// snapshotted from atomic counters with NO kernel lock, so it must be
// safe (and monotone per key) while transaction load hammers the same
// Guard. Run under -race this also proves the counters are sound to
// scrape without the mutex.
func TestOpCountsConcurrentWithLoad(t *testing.T) {
	e := NewWAL(wal.Config{})
	for p := int64(0); p < 8; p++ {
		if err := e.Load(p, []byte("seed")); err != nil {
			t.Fatal(err)
		}
	}
	const workers, txns = 4, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Scraper: OpCounts must never regress while load is in flight.
	scraped := make(chan int64, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		last := map[string]int64{}
		var polls int64
		for {
			polls++
			counts := e.Guard().OpCounts()
			for k, v := range counts {
				if v < last[k] {
					t.Errorf("counter %q regressed: %d -> %d", k, last[k], v)
					scraped <- polls
					return
				}
				last[k] = v
			}
			select {
			case <-stop:
				scraped <- polls
				return
			default:
			}
		}
	}()

	var load sync.WaitGroup
	for w := 0; w < workers; w++ {
		load.Add(1)
		go func(w int) {
			defer load.Done()
			for i := 0; i < txns; i++ {
				p := int64((w*txns + i) % 8)
				err := e.Update(func(tx *Txn) error {
					if _, err := tx.Read(p); err != nil {
						return err
					}
					return tx.Write(p, []byte("v"))
				})
				if err != nil {
					t.Errorf("worker %d txn %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	load.Wait()
	close(stop)
	wg.Wait()
	if polls := <-scraped; polls < 2 {
		t.Fatalf("scraper made only %d polls", polls)
	}

	ops := e.Guard().OpCounts()
	if ops["commits"] != workers*txns {
		t.Errorf("commits = %d, want %d", ops["commits"], workers*txns)
	}
	if ops["begins"] != ops["commits"]+ops["aborts"] {
		t.Errorf("unbalanced: begins=%d commits=%d aborts=%d",
			ops["begins"], ops["commits"], ops["aborts"])
	}
}
