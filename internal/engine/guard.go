package engine

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
)

// The recovery kernels (internal/wal, internal/shadoweng, internal/diffeng)
// are pure and single-threaded by contract — simlint rule D004 bans sync
// primitives and goroutines inside them. Guard is their concurrency
// envelope: it serializes every kernel call behind one mutex and counts
// operations with obs counters, so the concurrent runtime sees exactly the
// call sequences the single-threaded kernels are proven against.

// Checkpointer is implemented by kernels with a checkpoint maintenance
// operation (the WAL manager).
type Checkpointer interface {
	Checkpoint() error
}

// Merger is implemented by kernels with a merge maintenance operation (the
// differential-file engine).
type Merger interface {
	Merge() error
}

// StatsSource is implemented by kernels that report internal counters.
type StatsSource interface {
	Stats() map[string]int64
}

// ErrUnsupported is returned by Guard maintenance methods when the wrapped
// kernel has no such operation.
var ErrUnsupported = fmt.Errorf("engine: operation not supported by this recovery kernel")

// Guard wraps a pure recovery kernel, making it safe for concurrent use.
// All kernel calls — transactional operations and maintenance alike — are
// serialized behind a single mutex, and per-operation obs counters record
// the traffic the kernel absorbed.
type Guard struct {
	mu sync.Mutex
	rm RecoveryManager

	reads, writes obs.Counter
	begins        obs.Counter
	commits       obs.Counter
	aborts        obs.Counter
	recoveries    obs.Counter
	checkpoints   obs.Counter
	merges        obs.Counter
}

// NewGuard wraps kernel rm. Wrapping an already-wrapped kernel returns it
// unchanged.
func NewGuard(rm RecoveryManager) *Guard {
	if g, ok := rm.(*Guard); ok {
		return g
	}
	return &Guard{rm: rm}
}

// Unwrap returns the pure kernel. Callers may use it only while no other
// goroutine touches the Guard (single-threaded drivers, quiesced engines).
func (g *Guard) Unwrap() RecoveryManager { return g.rm }

// Name identifies the wrapped kernel.
func (g *Guard) Name() string { return g.rm.Name() }

// Load populates page p before transactions run.
func (g *Guard) Load(p int64, data []byte) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.rm.Load(p, data)
}

// Begin starts transaction tid.
func (g *Guard) Begin(tid uint64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.begins.Inc()
	return g.rm.Begin(tid)
}

// Read returns page p as seen by tid.
func (g *Guard) Read(tid uint64, p int64) ([]byte, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.reads.Inc()
	return g.rm.Read(tid, p)
}

// Write replaces page p on behalf of tid.
func (g *Guard) Write(tid uint64, p int64, data []byte) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.writes.Inc()
	return g.rm.Write(tid, p, data)
}

// Commit makes tid durable.
func (g *Guard) Commit(tid uint64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.commits.Inc()
	return g.rm.Commit(tid)
}

// Abort rolls tid back.
func (g *Guard) Abort(tid uint64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.aborts.Inc()
	return g.rm.Abort(tid)
}

// Crash simulates power loss on the kernel.
func (g *Guard) Crash() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.rm.Crash()
}

// Recover runs restart recovery on the kernel.
func (g *Guard) Recover() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.recoveries.Inc()
	return g.rm.Recover()
}

// ReadCommitted reads the committed contents of page p.
func (g *Guard) ReadCommitted(p int64) ([]byte, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.rm.ReadCommitted(p)
}

// Checkpoint runs the kernel's checkpoint maintenance operation under the
// guard lock, so it is safe to call while transactions run (the fuzzy
// checkpoint of the WAL kernel). Returns ErrUnsupported for kernels
// without one.
func (g *Guard) Checkpoint() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	cp, ok := g.rm.(Checkpointer)
	if !ok {
		return ErrUnsupported
	}
	g.checkpoints.Inc()
	return cp.Checkpoint()
}

// Merge runs the kernel's merge maintenance operation under the guard lock
// (the differential-file fold of Table 11). Returns ErrUnsupported for
// kernels without one; the kernel itself may also refuse (diffeng requires
// quiescence).
func (g *Guard) Merge() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	mg, ok := g.rm.(Merger)
	if !ok {
		return ErrUnsupported
	}
	g.merges.Inc()
	return mg.Merge()
}

// Stats reports the wrapped kernel's counters (empty for kernels without
// any), taken under the guard lock.
func (g *Guard) Stats() map[string]int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if ss, ok := g.rm.(StatsSource); ok {
		return ss.Stats()
	}
	return map[string]int64{}
}

// OpCounts reports the guard's own instrumentation: how many operations of
// each kind the kernel absorbed since construction.
func (g *Guard) OpCounts() map[string]int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return map[string]int64{
		"begins":      g.begins.Value(),
		"reads":       g.reads.Value(),
		"writes":      g.writes.Value(),
		"commits":     g.commits.Value(),
		"aborts":      g.aborts.Value(),
		"recoveries":  g.recoveries.Value(),
		"checkpoints": g.checkpoints.Value(),
		"merges":      g.merges.Value(),
	}
}

// OpCountKeys lists the OpCounts keys in sorted order (for deterministic
// reporting).
func (g *Guard) OpCountKeys() []string {
	counts := g.OpCounts()
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
