package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/obs/live"
)

// The recovery kernels (internal/wal, internal/shadoweng, internal/diffeng)
// are pure and single-threaded by contract — simlint rule D004 bans sync
// primitives and goroutines inside them. Guard is their concurrency
// envelope: it serializes every kernel call behind one mutex and counts
// operations with obs counters, so the concurrent runtime sees exactly the
// call sequences the single-threaded kernels are proven against.

// Checkpointer is implemented by kernels with a checkpoint maintenance
// operation (the WAL manager).
type Checkpointer interface {
	Checkpoint() error
}

// Merger is implemented by kernels with a merge maintenance operation (the
// differential-file engine).
type Merger interface {
	Merge() error
}

// StatsSource is implemented by kernels that report internal counters.
type StatsSource interface {
	Stats() map[string]int64
}

// Journaled is implemented by kernels that can emit a structured recovery
// journal (internal/wal, internal/shadoweng, internal/diffeng). The sink is
// nil-safe: passing nil detaches the journal.
type Journaled interface {
	SetJournal(*obs.Journal)
}

// ErrUnsupported is returned by Guard maintenance methods when the wrapped
// kernel has no such operation.
var ErrUnsupported = fmt.Errorf("engine: operation not supported by this recovery kernel")

// Guard wraps a pure recovery kernel, making it safe for concurrent use.
// All kernel calls — transactional operations and maintenance alike — are
// serialized behind a single mutex, and per-operation atomic counters
// record the traffic the kernel absorbed. Two opt-in relaxations of the
// envelope live in groupguard.go: group commit (SetGroupCommit) batches
// concurrent committers through one mutex acquisition, and striped read
// latching (SetReadStripes) serves reads of committed pages from a
// guard-owned cache without the mutex at all. Neither changes what the
// kernel sees: every kernel call still happens under the one mutex.
type Guard struct {
	mu sync.Mutex
	rm RecoveryManager

	// mx is the optional runtime contention profile. It is attached with
	// SetMetrics through an atomic pointer so hot paths read it without
	// extending the guarded section; a nil profile makes every token
	// operation a no-op.
	mx atomic.Pointer[live.GuardMetrics]

	// gc batches concurrent commits (nil: plain path); stripes is the
	// committed-page cache behind the parallel read path (nil: all reads
	// serialize). Both are attached atomically, like mx.
	gc      atomic.Pointer[groupCommitter]
	stripes atomic.Pointer[stripeCache]

	// journal is the guard's own copy of the attached recovery journal
	// (guarded by mu): backup-plane operations (Snapshot, Restore) are
	// guard-side, not kernel-side, so the guard emits their events itself.
	journal *obs.Journal

	// The op counters are live.Counters (single atomic words), NOT values
	// guarded by mu: hot paths increment them while holding the mutex,
	// but OpCounts snapshots them without it — scraping must never queue
	// behind the kernel.
	reads, writes live.Counter
	begins        live.Counter
	commits       live.Counter
	aborts        live.Counter
	recoveries    live.Counter
	checkpoints   live.Counter
	merges        live.Counter
}

// NewGuard wraps kernel rm. Wrapping an already-wrapped kernel returns it
// unchanged.
func NewGuard(rm RecoveryManager) *Guard {
	if g, ok := rm.(*Guard); ok {
		return g
	}
	return &Guard{rm: rm}
}

// Unwrap returns the pure kernel. Callers may use it only while no other
// goroutine touches the Guard (single-threaded drivers, quiesced engines).
func (g *Guard) Unwrap() RecoveryManager { return g.rm }

// Name identifies the wrapped kernel.
func (g *Guard) Name() string { return g.rm.Name() }

// Load populates page p before transactions run.
func (g *Guard) Load(p int64, data []byte) error {
	tok := g.mx.Load().Enter(live.GuardOther)
	g.mu.Lock()
	tok.Acquired()
	defer g.mu.Unlock()
	defer tok.Release()
	if sc := g.stripes.Load(); sc != nil {
		sc.invalidate(p)
	}
	return g.rm.Load(p, data)
}

// Begin starts transaction tid.
func (g *Guard) Begin(tid uint64) error {
	tok := g.mx.Load().Enter(live.GuardBegin)
	g.mu.Lock()
	tok.Acquired()
	defer g.mu.Unlock()
	defer tok.Release()
	g.begins.Inc()
	return g.rm.Begin(tid)
}

// Read returns page p as seen by tid (which must be an active
// transaction). With a stripe cache attached, a read of a page no active
// transaction has written is served from the cache under a stripe read
// latch — in parallel with other reads, without the kernel mutex. A page
// in no active write set reads identically for every transaction, so the
// committed image is exactly tid's view of it.
func (g *Guard) Read(tid uint64, p int64) ([]byte, error) {
	if sc := g.stripes.Load(); sc != nil {
		if v, ok := sc.get(p); ok {
			g.reads.Inc()
			g.mx.Load().ReadCacheHit()
			return v, nil
		}
		g.mx.Load().ReadCacheMiss()
	}
	tok := g.mx.Load().Enter(live.GuardRead)
	g.mu.Lock()
	tok.Acquired()
	defer g.mu.Unlock()
	defer tok.Release()
	g.reads.Inc()
	v, err := g.rm.Read(tid, p)
	if err == nil {
		if sc := g.stripes.Load(); sc != nil && sc.clean(p) {
			sc.put(p, v)
		}
	}
	return v, err
}

// Write replaces page p on behalf of tid.
func (g *Guard) Write(tid uint64, p int64, data []byte) error {
	tok := g.mx.Load().Enter(live.GuardWrite)
	g.mu.Lock()
	tok.Acquired()
	defer g.mu.Unlock()
	defer tok.Release()
	g.writes.Inc()
	if sc := g.stripes.Load(); sc != nil {
		// Before the kernel call: even a write the kernel tears mid-crash
		// must leave no stale committed image behind.
		sc.noteWrite(tid, p)
	}
	return g.rm.Write(tid, p, data)
}

// Commit makes tid durable. With a group-commit policy attached
// (SetGroupCommit), the call may park until its batch flushes; the result
// is always this transaction's own kernel commit outcome.
func (g *Guard) Commit(tid uint64) error {
	if gc := g.gc.Load(); gc != nil {
		return gc.commit(tid)
	}
	tok := g.mx.Load().Enter(live.GuardCommit)
	g.mu.Lock()
	tok.Acquired()
	defer g.mu.Unlock()
	defer tok.Release()
	g.commits.Inc()
	err := g.rm.Commit(tid)
	if sc := g.stripes.Load(); sc != nil {
		sc.finishTxn(tid)
	}
	return err
}

// Abort rolls tid back.
func (g *Guard) Abort(tid uint64) error {
	tok := g.mx.Load().Enter(live.GuardAbort)
	g.mu.Lock()
	tok.Acquired()
	defer g.mu.Unlock()
	defer tok.Release()
	g.aborts.Inc()
	err := g.rm.Abort(tid)
	if sc := g.stripes.Load(); sc != nil {
		sc.finishTxn(tid)
	}
	return err
}

// Crash simulates power loss on the kernel. Volatile state — including
// the guard's committed-page cache and its writer bookkeeping — is lost
// with the machine.
func (g *Guard) Crash() {
	tok := g.mx.Load().Enter(live.GuardOther)
	g.mu.Lock()
	tok.Acquired()
	defer g.mu.Unlock()
	defer tok.Release()
	if sc := g.stripes.Load(); sc != nil {
		sc.invalidateAll()
	}
	g.rm.Crash()
}

// Recover runs restart recovery on the kernel. Anything the guard cached
// before the crash is dropped; recovered pages re-enter the cache on
// their next clean read.
func (g *Guard) Recover() error {
	tok := g.mx.Load().Enter(live.GuardRecover)
	g.mu.Lock()
	tok.Acquired()
	defer g.mu.Unlock()
	defer tok.Release()
	if sc := g.stripes.Load(); sc != nil {
		sc.invalidateAll()
	}
	g.recoveries.Inc()
	return g.rm.Recover()
}

// ReadCommitted reads the committed contents of page p. Like Read, it is
// served from the stripe cache when one is attached and the page is clean.
func (g *Guard) ReadCommitted(p int64) ([]byte, error) {
	if sc := g.stripes.Load(); sc != nil {
		if v, ok := sc.get(p); ok {
			g.mx.Load().ReadCacheHit()
			return v, nil
		}
		g.mx.Load().ReadCacheMiss()
	}
	tok := g.mx.Load().Enter(live.GuardOther)
	g.mu.Lock()
	tok.Acquired()
	defer g.mu.Unlock()
	defer tok.Release()
	v, err := g.rm.ReadCommitted(p)
	if err == nil {
		if sc := g.stripes.Load(); sc != nil && sc.clean(p) {
			sc.put(p, v)
		}
	}
	return v, err
}

// Checkpoint runs the kernel's checkpoint maintenance operation under the
// guard lock, so it is safe to call while transactions run (the fuzzy
// checkpoint of the WAL kernel). Returns ErrUnsupported for kernels
// without one.
func (g *Guard) Checkpoint() error {
	tok := g.mx.Load().Enter(live.GuardCheckpoint)
	g.mu.Lock()
	tok.Acquired()
	defer g.mu.Unlock()
	defer tok.Release()
	cp, ok := g.rm.(Checkpointer)
	if !ok {
		return ErrUnsupported
	}
	g.checkpoints.Inc()
	return cp.Checkpoint()
}

// Merge runs the kernel's merge maintenance operation under the guard lock
// (the differential-file fold of Table 11). Returns ErrUnsupported for
// kernels without one; the kernel itself may also refuse (diffeng requires
// quiescence).
func (g *Guard) Merge() error {
	tok := g.mx.Load().Enter(live.GuardMerge)
	g.mu.Lock()
	tok.Acquired()
	defer g.mu.Unlock()
	defer tok.Release()
	mg, ok := g.rm.(Merger)
	if !ok {
		return ErrUnsupported
	}
	g.merges.Inc()
	return mg.Merge()
}

// Stats reports the wrapped kernel's counters (empty for kernels without
// any), taken under the guard lock.
func (g *Guard) Stats() map[string]int64 {
	tok := g.mx.Load().Enter(live.GuardOther)
	g.mu.Lock()
	tok.Acquired()
	defer g.mu.Unlock()
	defer tok.Release()
	if ss, ok := g.rm.(StatsSource); ok {
		return ss.Stats()
	}
	return map[string]int64{}
}

// OpCounts reports the guard's own instrumentation: how many operations of
// each kind the kernel absorbed since construction. The counters are
// atomic (live.Counter), so the snapshot is taken WITHOUT the kernel
// mutex — a scraper polling OpCounts never queues behind transactions.
// Each value is read atomically but the set is not a consistent cut;
// every counter is individually monotone. (Stats, by contrast, must call
// into the kernel and therefore still serializes under the mutex.)
func (g *Guard) OpCounts() map[string]int64 {
	return map[string]int64{
		"begins":      g.begins.Value(),
		"reads":       g.reads.Value(),
		"writes":      g.writes.Value(),
		"commits":     g.commits.Value(),
		"aborts":      g.aborts.Value(),
		"recoveries":  g.recoveries.Value(),
		"checkpoints": g.checkpoints.Value(),
		"merges":      g.merges.Value(),
	}
}

// OpCountKeys lists the OpCounts keys in sorted order (for deterministic
// reporting).
func (g *Guard) OpCountKeys() []string {
	counts := g.OpCounts()
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SetMetrics attaches (or with nil detaches) a runtime contention profile.
// The attachment itself is atomic and may race with in-flight operations;
// an operation observes either the old or the new profile, never a torn
// one.
func (g *Guard) SetMetrics(m *live.GuardMetrics) { g.mx.Store(m) }

// Metrics returns the attached contention profile (nil when none).
func (g *Guard) Metrics() *live.GuardMetrics { return g.mx.Load() }

// SetJournal attaches (or with nil detaches) a structured recovery journal
// to the wrapped kernel, under the guard lock so the single-threaded kernel
// never sees the sink change mid-operation. Returns ErrUnsupported for
// kernels that do not journal.
func (g *Guard) SetJournal(j *obs.Journal) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.journal = j
	jk, ok := g.rm.(Journaled)
	if !ok {
		return ErrUnsupported
	}
	jk.SetJournal(j)
	return nil
}
