package analysis

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/recovery/difffile"
	"repro/internal/recovery/logging"
)

// TestBarePredictionsBracketSimulation cross-validates the discrete-event
// simulator against the operational-law bounds: measured execution time per
// page must sit at or above the bottleneck bound (queueing can only add
// time) and within 60% of it (the machine pipelines well).
func TestBarePredictionsBracketSimulation(t *testing.T) {
	cases := []struct {
		name     string
		seq, par bool
	}{
		{"Conventional-Random", false, false},
		{"Parallel-Random", false, true},
		{"Conventional-Sequential", true, false},
		{"Parallel-Sequential", true, true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cfg := machine.DefaultConfig()
			cfg.NumTxns = 20
			cfg.Workload.Sequential = c.seq
			cfg.ParallelDisks = c.par
			pred := PredictBare(cfg)
			res, err := machine.Run(cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			got := res.ExecPerPageMs
			if got < pred.ExecPerPage*0.92 {
				t.Fatalf("simulation (%.2f) beat the bottleneck bound (%.2f): model violation",
					got, pred.ExecPerPage)
			}
			if got > pred.ExecPerPage*1.6 {
				t.Fatalf("simulation (%.2f) far above the bound (%.2f): pipeline broken?",
					got, pred.ExecPerPage)
			}
			t.Logf("%s: predicted >= %.2f ms/page (disk-bound=%v), simulated %.2f",
				c.name, pred.ExecPerPage, pred.DiskBound, got)
		})
	}
}

func TestBoundResourceIdentification(t *testing.T) {
	// Random configurations are disk bound; parallel-sequential is QP bound
	// at 25 processors (the Table 3 motivation for going to 75).
	cfg := machine.DefaultConfig()
	if p := PredictBare(cfg); !p.DiskBound {
		t.Fatalf("conventional-random should be disk bound: %+v", p)
	}
	cfg.ParallelDisks = true
	cfg.Workload.Sequential = true
	if p := PredictBare(cfg); p.DiskBound {
		t.Fatalf("parallel-sequential should be QP bound: %+v", p)
	}
	// With 75 QPs it flips back toward the disks.
	cfg.QueryProcessors = 75
	p75 := PredictBare(cfg)
	p25 := func() Prediction {
		c := cfg
		c.QueryProcessors = 25
		return PredictBare(c)
	}()
	if p75.ExecPerPage >= p25.ExecPerPage {
		t.Fatalf("75 QPs (%.2f) should beat 25 (%.2f)", p75.ExecPerPage, p25.ExecPerPage)
	}
}

func TestLogUtilizationPrediction(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.NumTxns = 20
	pred := PredictLogUtilization(cfg, 400, 4096)
	res, err := machine.Run(cfg, logging.New(logging.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	got := res.Extra["log.diskUtil"]
	// Commit forces write partial pages, so the measurement can exceed the
	// steady-state prediction; both must agree it is a nearly idle disk.
	if pred > 0.1 || got > 0.1 {
		t.Fatalf("log disk should be nearly idle: predicted %.3f, simulated %.3f", pred, got)
	}
	if got < pred/2 || got > pred*6 {
		t.Fatalf("simulated utilization %.3f too far from predicted %.3f", got, pred)
	}
}

func TestBasicDiffPrediction(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.NumTxns = 12
	dcfg := difffile.DefaultConfig()
	pred := PredictBasicDiffExec(cfg, dcfg.DiffFrac, dcfg.TuplesPage, dcfg.CompareCPU)
	res, err := machine.Run(cfg, difffile.New(difffile.Config{Strategy: difffile.Basic}))
	if err != nil {
		t.Fatal(err)
	}
	got := res.ExecPerPageMs
	if got < pred*0.7 || got > pred*1.5 {
		t.Fatalf("basic strategy: predicted ~%.1f ms/page, simulated %.1f", pred, got)
	}
}
