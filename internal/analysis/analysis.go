// Package analysis provides closed-form (operational-law) predictions for
// the simulated database machine: expected device service times from the
// disk parameters, and bottleneck lower bounds for execution time per page.
// The test suite cross-validates the discrete-event simulator against these
// predictions, so the simulation cannot silently drift away from the
// queueing model it claims to implement.
package analysis

import (
	"repro/internal/disk"
	"repro/internal/machine"
	"repro/internal/sim"
)

// DiskTimes are expected per-access service times for a device described by
// params and geometry, with requests spread over extentCyls cylinders.
type DiskTimes struct {
	RandomAccess sim.Time // seek(avg distance) + avg latency + 1 page transfer
	SeqRead      sim.Time // immediately-sequential page: rotational miss + transfer
	InPlaceWrite sim.Time // write-back near the previous access
	CylinderRead sim.Time // parallel-access: one whole cylinder
}

// Compute derives DiskTimes. Average random seek distance over an extent of
// n cylinders is n/3 (uniform independent positions).
func Compute(params disk.Params, geom disk.Geometry, extentCyls int) DiskTimes {
	avgDist := extentCyls / 3
	if avgDist < 1 {
		avgDist = 1
	}
	latency := params.Rotation / 2
	return DiskTimes{
		RandomAccess: params.SeekTime(avgDist) + latency + params.PageTransfer,
		SeqRead:      3*params.Rotation/4 + params.PageTransfer,
		InPlaceWrite: params.MinSeek + latency + params.PageTransfer,
		CylinderRead: params.MinSeek + latency +
			sim.Time(geom.PagesPerTrack)*params.PageTransfer,
	}
}

// Prediction is the bottleneck analysis of one machine configuration.
type Prediction struct {
	DiskDemandMs float64 // data-disk busy time per processed page (per disk pool)
	QPDemandMs   float64 // query-processor busy time per processed page (per pool)
	ExecPerPage  float64 // max of the demands: the throughput lower bound
	DiskBound    bool    // which resource is predicted to saturate
}

// PredictBare computes the bare machine's bottleneck bound. Processed pages
// follow the paper's denominator: reads plus updated-page writes.
func PredictBare(cfg machine.Config) Prediction {
	reads := float64(cfg.Workload.MinPages+cfg.Workload.MaxPages) / 2
	writes := reads * cfg.Workload.WriteFrac
	pages := reads + writes

	geom := disk.Geometry{
		PagesPerTrack: cfg.PagesPerTrack,
		TracksPerCyl:  cfg.TracksPerCyl,
		Cylinders:     1,
	}
	ppc := cfg.PagesPerTrack * cfg.TracksPerCyl
	extent := cfg.Workload.DBPages / ppc / cfg.DataDisks
	dt := Compute(cfg.DiskParams, geom, extent)

	var diskBusy float64 // ms per transaction across the disk pool
	switch {
	case cfg.ParallelDisks && cfg.Workload.Sequential:
		// Reads arrive a cylinder at a time; writes batch per cylinder too.
		cyls := reads / float64(ppc)
		diskBusy = cyls * dt.CylinderRead.ToMs() * 2 // read pass + write pass
	case cfg.Workload.Sequential:
		diskBusy = reads*dt.SeqRead.ToMs() + writes*dt.InPlaceWrite.ToMs()
	default:
		diskBusy = (reads + writes) * dt.RandomAccess.ToMs()
	}
	diskDemand := diskBusy / pages / float64(cfg.DataDisks)

	cpuBusy := reads*cfg.CPUPerPage.ToMs() +
		writes*(cfg.CPUPerPage.ToMs()+cfg.CPUPerUpdate.ToMs())
	qpDemand := cpuBusy / pages / float64(cfg.QueryProcessors)

	p := Prediction{DiskDemandMs: diskDemand, QPDemandMs: qpDemand}
	if diskDemand >= qpDemand {
		p.ExecPerPage, p.DiskBound = diskDemand, true
	} else {
		p.ExecPerPage = qpDemand
	}
	return p
}

// PredictLogUtilization estimates a single log disk's utilization under
// logical logging: one fragment per updated page, fragsPerPage fragments
// per log page, each log-page write costing roughly a rotational miss plus
// a transfer (sequential appends), normalized by the machine's predicted
// page rate.
func PredictLogUtilization(cfg machine.Config, fragmentBytes, pageBytes int) float64 {
	bare := PredictBare(cfg)
	fragsPerPage := float64(pageBytes / fragmentBytes)
	writeFrac := cfg.Workload.WriteFrac / (1 + cfg.Workload.WriteFrac) // updates per processed page
	logWritesPerPage := writeFrac / fragsPerPage
	logWriteMs := (3*cfg.DiskParams.Rotation/4 + cfg.DiskParams.PageTransfer).ToMs()
	return logWritesPerPage * logWriteMs / bare.ExecPerPage
}

// PredictBasicDiffExec bounds the basic differential-file strategy: every B
// and A page pays a set difference against the transaction's D tuples, and
// the query processors saturate.
func PredictBasicDiffExec(cfg machine.Config, diffFrac float64, tuplesPerPage int, compareCPU sim.Time) float64 {
	reads := float64(cfg.Workload.MinPages+cfg.Workload.MaxPages) / 2
	// E[N^2]/E[N] weighting: the set-difference cost is linear in the
	// transaction size, and big transactions contribute more pages.
	lo, hi := float64(cfg.Workload.MinPages), float64(cfg.Workload.MaxPages)
	en2 := (hi*(hi+1)*(2*hi+1) - (lo-1)*lo*(2*lo-1)) / 6 / (hi - lo + 1)
	weighted := en2 / reads

	dTuples := diffFrac * weighted * float64(tuplesPerPage)
	setDiffMs := float64(tuplesPerPage) * dTuples * compareCPU.ToMs()
	scanMs := cfg.CPUPerPage.ToMs()
	// Per processed page (B, A and D pages; D pages only scan).
	perPage := (setDiffMs*(1+diffFrac) + scanMs*(1+2*diffFrac)) / (1 + 2*diffFrac)
	return perPage / float64(cfg.QueryProcessors)
}
