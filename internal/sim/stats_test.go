package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTallyBasics(t *testing.T) {
	var ta Tally
	if ta.Mean() != 0 || ta.Count() != 0 {
		t.Fatal("zero Tally not zero")
	}
	for _, v := range []float64{1, 2, 3, 4} {
		ta.Add(v)
	}
	if ta.Count() != 4 {
		t.Fatalf("count = %d", ta.Count())
	}
	if ta.Mean() != 2.5 {
		t.Fatalf("mean = %v", ta.Mean())
	}
	if ta.Min() != 1 || ta.Max() != 4 {
		t.Fatalf("min/max = %v/%v", ta.Min(), ta.Max())
	}
	want := math.Sqrt(1.25)
	if math.Abs(ta.StdDev()-want) > 1e-9 {
		t.Fatalf("stddev = %v, want %v", ta.StdDev(), want)
	}
}

func TestTallyMeanBetweenMinMax(t *testing.T) {
	f := func(vs []int32) bool {
		var ta Tally
		for _, v := range vs {
			ta.Add(float64(v))
		}
		if ta.Count() == 0 {
			return true
		}
		return ta.Mean() >= ta.Min()-1e-9 && ta.Mean() <= ta.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeWeightedMean(t *testing.T) {
	e := New()
	w := NewTimeWeighted(e)
	// value 0 for 10ms, then 4 for 10ms -> mean 2.
	e.After(10*Millisecond, func() { w.Set(4) })
	e.Run()
	e.RunUntil(20 * Millisecond)
	if m := w.Mean(); math.Abs(m-2) > 1e-9 {
		t.Fatalf("mean = %v, want 2", m)
	}
	if w.Max() != 4 {
		t.Fatalf("max = %v", w.Max())
	}
	if w.Value() != 4 {
		t.Fatalf("value = %v", w.Value())
	}
}

func TestTimeWeightedAdjust(t *testing.T) {
	e := New()
	w := NewTimeWeighted(e)
	w.Adjust(3)
	w.Adjust(-1)
	if w.Value() != 2 {
		t.Fatalf("value = %v", w.Value())
	}
	e.RunUntil(10 * Millisecond)
	if m := w.Mean(); math.Abs(m-2) > 1e-9 {
		t.Fatalf("mean = %v, want 2", m)
	}
}

func TestTimeWeightedNoElapsedTime(t *testing.T) {
	e := New()
	w := NewTimeWeighted(e)
	w.Set(5)
	if w.Mean() != 0 {
		t.Fatalf("mean with no elapsed time = %v", w.Mean())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Intn(1000) != b.Intn(1000) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGUniformIntBounds(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := g.UniformInt(1, 250)
		if v < 1 || v > 250 {
			t.Fatalf("UniformInt out of range: %d", v)
		}
	}
}

func TestRNGSampleDistinct(t *testing.T) {
	g := NewRNG(7)
	s := g.SampleDistinct(50, 100)
	if len(s) != 50 {
		t.Fatalf("len = %d", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 100 {
			t.Fatalf("out of range: %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate: %d", v)
		}
		seen[v] = true
	}
	// Full sample must be a permutation.
	p := g.SampleDistinct(10, 10)
	seen = map[int]bool{}
	for _, v := range p {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("full sample not a permutation: %v", p)
	}
}

func TestRNGSampleDistinctPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k > n did not panic")
		}
	}()
	NewRNG(1).SampleDistinct(5, 3)
}

func TestRNGForkIndependence(t *testing.T) {
	g := NewRNG(9)
	f1 := g.Fork()
	f2 := g.Fork()
	same := true
	for i := 0; i < 20; i++ {
		if f1.Intn(1<<30) != f2.Intn(1<<30) {
			same = false
		}
	}
	if same {
		t.Fatal("forked streams identical")
	}
}
