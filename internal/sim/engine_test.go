package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInOrder(t *testing.T) {
	e := New()
	var order []int
	e.After(30*Millisecond, func() { order = append(order, 3) })
	e.After(10*Millisecond, func() { order = append(order, 1) })
	e.After(20*Millisecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if e.Now() != 30*Millisecond {
		t.Fatalf("clock = %v, want 30ms", e.Now())
	}
}

func TestEngineSimultaneousEventsFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(5*Millisecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := New()
	var fired []Time
	e.After(Millisecond, func() {
		fired = append(fired, e.Now())
		e.After(Millisecond, func() {
			fired = append(fired, e.Now())
		})
	})
	e.Run()
	if len(fired) != 2 || fired[0] != Millisecond || fired[1] != 2*Millisecond {
		t.Fatalf("nested scheduling wrong: %v", fired)
	}
}

func TestEnginePanicsOnPastEvent(t *testing.T) {
	e := New()
	e.After(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEnginePanicsOnNegativeDelay(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := New()
	ran := false
	e.After(5*Millisecond, func() { ran = true })
	e.RunUntil(3 * Millisecond)
	if ran {
		t.Fatal("event at 5ms ran during RunUntil(3ms)")
	}
	if e.Now() != 3*Millisecond {
		t.Fatalf("clock = %v, want 3ms", e.Now())
	}
	e.RunUntil(10 * Millisecond)
	if !ran {
		t.Fatal("event at 5ms did not run by 10ms")
	}
	if e.Now() != 10*Millisecond {
		t.Fatalf("clock = %v, want 10ms", e.Now())
	}
}

func TestMsConversions(t *testing.T) {
	if Ms(2.5) != 2500 {
		t.Fatalf("Ms(2.5) = %d", Ms(2.5))
	}
	if got := (2500 * Microsecond).ToMs(); got != 2.5 {
		t.Fatalf("ToMs = %v", got)
	}
	if s := Ms(1.5).String(); s != "1.500ms" {
		t.Fatalf("String = %q", s)
	}
}

func TestEventOrderingProperty(t *testing.T) {
	// Property: for any set of delays, events fire in nondecreasing time order.
	f := func(delays []uint16) bool {
		e := New()
		var times []Time
		for _, d := range delays {
			e.After(Time(d), func() { times = append(times, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
