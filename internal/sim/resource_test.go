package sim

import (
	"testing"
	"testing/quick"
)

func TestResourceSingleServerFCFS(t *testing.T) {
	e := New()
	r := NewResource(e, "qp", 1)
	var done []int
	for i := 0; i < 3; i++ {
		i := i
		r.Request(10*Millisecond, func() { done = append(done, i) })
	}
	e.Run()
	if len(done) != 3 || done[0] != 0 || done[1] != 1 || done[2] != 2 {
		t.Fatalf("completion order %v", done)
	}
	if e.Now() != 30*Millisecond {
		t.Fatalf("three serial 10ms jobs finished at %v", e.Now())
	}
	if r.Served() != 3 {
		t.Fatalf("served = %d", r.Served())
	}
}

func TestResourceParallelServers(t *testing.T) {
	e := New()
	r := NewResource(e, "qp", 3)
	count := 0
	for i := 0; i < 3; i++ {
		r.Request(10*Millisecond, func() { count++ })
	}
	e.Run()
	if e.Now() != 10*Millisecond {
		t.Fatalf("3 parallel jobs on 3 servers took %v, want 10ms", e.Now())
	}
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
}

func TestResourceUtilization(t *testing.T) {
	e := New()
	r := NewResource(e, "disk", 1)
	r.Request(10*Millisecond, nil)
	e.Run()
	e.RunUntil(20 * Millisecond) // idle second half
	u := r.Utilization()
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
	if r.BusyTime() != 10*Millisecond {
		t.Fatalf("busy time = %v", r.BusyTime())
	}
}

func TestResourceQueueStats(t *testing.T) {
	e := New()
	r := NewResource(e, "disk", 1)
	for i := 0; i < 4; i++ {
		r.Request(10*Millisecond, nil)
	}
	if r.QueueLen() != 3 {
		t.Fatalf("queue = %d, want 3", r.QueueLen())
	}
	e.Run()
	if r.QueueLen() != 0 {
		t.Fatalf("queue not drained: %d", r.QueueLen())
	}
	if mq := r.MeanQueue(); mq <= 0 {
		t.Fatalf("mean queue = %v, want > 0", mq)
	}
}

func TestResourceServiceFnEvaluatedAtDispatch(t *testing.T) {
	e := New()
	r := NewResource(e, "disk", 1)
	var dispatchTimes []Time
	svc := func() Time {
		dispatchTimes = append(dispatchTimes, e.Now())
		return 5 * Millisecond
	}
	r.RequestFn(svc, nil)
	r.RequestFn(svc, nil)
	e.Run()
	if len(dispatchTimes) != 2 || dispatchTimes[0] != 0 || dispatchTimes[1] != 5*Millisecond {
		t.Fatalf("dispatch times %v", dispatchTimes)
	}
}

func TestResourceConservation(t *testing.T) {
	// Property: every request eventually completes exactly once, and total
	// elapsed time >= total service / capacity.
	f := func(services []uint8, capRaw uint8) bool {
		capacity := int(capRaw%4) + 1
		e := New()
		r := NewResource(e, "x", capacity)
		completed := 0
		var total Time
		for _, s := range services {
			d := Time(s) * Microsecond
			total += d
			r.Request(d, func() { completed++ })
		}
		e.Run()
		if completed != len(services) {
			return false
		}
		minElapsed := total / Time(capacity)
		return e.Now() >= minElapsed-Time(len(services)) // rounding slack
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewResourcePanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity did not panic")
		}
	}()
	NewResource(New(), "bad", 0)
}

func TestRequestServerIDs(t *testing.T) {
	e := New()
	r := NewResource(e, "qp", 3)
	seen := map[int]int{}
	for i := 0; i < 9; i++ {
		r.RequestServer(10*Millisecond, func(server int) {
			if server < 0 || server >= 3 {
				t.Errorf("server id %d out of range", server)
			}
			seen[server]++
		})
	}
	e.Run()
	// All three servers carried load (3 jobs each under FCFS).
	for s := 0; s < 3; s++ {
		if seen[s] != 3 {
			t.Fatalf("server %d served %d jobs: %v", s, seen[s], seen)
		}
	}
}

func TestRequestServerReusesFreedIDs(t *testing.T) {
	e := New()
	r := NewResource(e, "qp", 1)
	var ids []int
	for i := 0; i < 3; i++ {
		r.RequestServer(Millisecond, func(server int) { ids = append(ids, server) })
	}
	e.Run()
	for _, id := range ids {
		if id != 0 {
			t.Fatalf("single-server resource issued id %d", id)
		}
	}
}
