package sim

import "testing"

func TestEventHookFiresPerEvent(t *testing.T) {
	eng := New()
	var hookTimes []Time
	eng.SetEventHook(func(at Time) { hookTimes = append(hookTimes, at) })
	var runTimes []Time
	note := func() { runTimes = append(runTimes, eng.Now()) }
	eng.At(10, note)
	eng.At(5, note)
	eng.At(5, note)
	eng.Run()
	want := []Time{5, 5, 10}
	if len(hookTimes) != len(want) {
		t.Fatalf("hook fired %d times, want %d", len(hookTimes), len(want))
	}
	for i := range want {
		if hookTimes[i] != want[i] || runTimes[i] != want[i] {
			t.Fatalf("hook/run times = %v/%v, want %v", hookTimes, runTimes, want)
		}
	}
	// Removing the hook stops further callbacks.
	eng.SetEventHook(nil)
	eng.At(20, note)
	eng.Run()
	if len(hookTimes) != len(want) {
		t.Fatal("hook fired after removal")
	}
}

type recordedReq struct {
	server                   int
	enqueued, started, ended Time
}

type recordingObserver struct{ reqs []recordedReq }

func (o *recordingObserver) ResourceRequest(r *Resource, server int, enqueued, started, ended Time) {
	o.reqs = append(o.reqs, recordedReq{server, enqueued, started, ended})
}

func TestResourceObserverQueueAndService(t *testing.T) {
	eng := New()
	r := NewResource(eng, "srv", 1)
	o := &recordingObserver{}
	r.SetObserver(o)
	// Two requests at t=0 on a single server: the second waits for the
	// first to finish.
	eng.At(0, func() {
		r.Request(100, func() {})
		r.Request(50, func() {})
	})
	eng.Run()
	if len(o.reqs) != 2 {
		t.Fatalf("observer saw %d requests, want 2", len(o.reqs))
	}
	first, second := o.reqs[0], o.reqs[1]
	if first.enqueued != 0 || first.started != 0 || first.ended != 100 {
		t.Errorf("first request enq/start/end = %v/%v/%v, want 0/0/100",
			first.enqueued, first.started, first.ended)
	}
	if second.enqueued != 0 || second.started != 100 || second.ended != 150 {
		t.Errorf("second request enq/start/end = %v/%v/%v, want 0/100/150",
			second.enqueued, second.started, second.ended)
	}
	if first.server != second.server {
		t.Errorf("single-server resource reported servers %d and %d", first.server, second.server)
	}
}

func TestResourceObserverParallelServers(t *testing.T) {
	eng := New()
	r := NewResource(eng, "srv", 2)
	o := &recordingObserver{}
	r.SetObserver(o)
	eng.At(0, func() {
		r.Request(100, func() {})
		r.Request(100, func() {})
	})
	eng.Run()
	if len(o.reqs) != 2 {
		t.Fatalf("observer saw %d requests, want 2", len(o.reqs))
	}
	for i, req := range o.reqs {
		if req.started != 0 || req.ended != 100 {
			t.Errorf("request %d start/end = %v/%v, want 0/100 (no queueing)", i, req.started, req.ended)
		}
	}
	if o.reqs[0].server == o.reqs[1].server {
		t.Error("two concurrent requests share a server")
	}
}

func TestSeriesMean(t *testing.T) {
	if got := SeriesMean(nil); got != 0 {
		t.Errorf("SeriesMean(nil) = %v, want 0", got)
	}
	if got := SeriesMean([]float64{2, 4, 9}); got != 5 {
		t.Errorf("SeriesMean = %v, want 5", got)
	}
}
