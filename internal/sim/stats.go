package sim

import "math"

// Tally accumulates point samples and reports count/mean/min/max.
// The zero value is ready to use.
type Tally struct {
	n    int64
	sum  float64
	sum2 float64
	min  float64
	max  float64
}

// Add records one sample.
func (t *Tally) Add(v float64) {
	if t.n == 0 || v < t.min {
		t.min = v
	}
	if t.n == 0 || v > t.max {
		t.max = v
	}
	t.n++
	t.sum += v
	t.sum2 += v * v
}

// Count reports the number of samples recorded.
func (t *Tally) Count() int64 { return t.n }

// Sum reports the sum of all samples.
func (t *Tally) Sum() float64 { return t.sum }

// Mean reports the sample mean, or 0 if no samples were recorded.
func (t *Tally) Mean() float64 {
	if t.n == 0 {
		return 0
	}
	return t.sum / float64(t.n)
}

// Min reports the smallest sample, or 0 if none.
func (t *Tally) Min() float64 { return t.min }

// Max reports the largest sample, or 0 if none.
func (t *Tally) Max() float64 { return t.max }

// StdDev reports the population standard deviation of the samples.
func (t *Tally) StdDev() float64 {
	if t.n == 0 {
		return 0
	}
	m := t.Mean()
	v := t.sum2/float64(t.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// SeriesMean reports the arithmetic mean of a sampled series, or 0 if the
// series is empty. It is the one shared implementation behind the various
// per-package mean helpers.
func SeriesMean(xs []float64) float64 {
	var t Tally
	for _, v := range xs {
		t.Add(v)
	}
	return t.Mean()
}

// TimeWeighted tracks a piecewise-constant quantity (queue length, number of
// busy servers, blocked frames) and integrates it over virtual time so that
// time-weighted means can be reported.
type TimeWeighted struct {
	eng      *Engine
	start    Time
	last     Time
	value    float64
	integral float64
	max      float64
}

// NewTimeWeighted returns a tracker bound to eng starting at the current
// virtual time with initial value 0.
func NewTimeWeighted(eng *Engine) *TimeWeighted {
	return &TimeWeighted{eng: eng, start: eng.Now(), last: eng.Now()}
}

func (w *TimeWeighted) catchUp() {
	now := w.eng.Now()
	if now > w.last {
		w.integral += w.value * float64(now-w.last)
		w.last = now
	}
}

// Set replaces the tracked value as of the current virtual time.
func (w *TimeWeighted) Set(v float64) {
	w.catchUp()
	w.value = v
	if v > w.max {
		w.max = v
	}
}

// Adjust adds delta to the tracked value as of the current virtual time.
func (w *TimeWeighted) Adjust(delta float64) { w.Set(w.value + delta) }

// Value reports the current tracked value.
func (w *TimeWeighted) Value() float64 { return w.value }

// Max reports the largest value ever set.
func (w *TimeWeighted) Max() float64 { return w.max }

// Mean reports the time-weighted average of the value from creation to the
// current virtual time. It is 0 if no time has elapsed.
func (w *TimeWeighted) Mean() float64 {
	w.catchUp()
	elapsed := w.last - w.start
	if elapsed <= 0 {
		return 0
	}
	return w.integral / float64(elapsed)
}
