package sim

import "math/rand"

// RNG is a deterministic random number source for simulations. It wraps
// math/rand with the small set of distributions the models need so that all
// randomness flows through one seeded stream per simulation run.
type RNG struct {
	r     *rand.Rand
	zipfs map[zipfKey]*rand.Zipf
}

// NewRNG returns an RNG seeded with seed. Identical seeds yield identical
// streams.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// UniformInt returns a uniform int in [lo, hi] inclusive.
func (g *RNG) UniformInt(lo, hi int) int {
	if hi < lo {
		panic("sim: UniformInt with hi < lo")
	}
	return lo + g.r.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// SampleDistinct returns k distinct uniform ints from [0, n), in random
// order. It panics if k > n.
func (g *RNG) SampleDistinct(k, n int) []int {
	if k > n {
		panic("sim: SampleDistinct with k > n")
	}
	// Floyd's algorithm: O(k) expected work, no O(n) allocation.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := g.r.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	// Floyd's preserves an ordering bias; shuffle for a uniform order.
	g.r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Exp returns an exponentially distributed value with the given mean.
func (g *RNG) Exp(mean float64) float64 { return g.r.ExpFloat64() * mean }

// Zipf returns a Zipf-distributed int in [0, n) with parameter s > 1 (the
// distribution is cached per (s, n) pair, so repeated draws are cheap).
func (g *RNG) Zipf(s float64, n int) int {
	key := zipfKey{s: s, n: n}
	z := g.zipfs[key]
	if z == nil {
		if g.zipfs == nil {
			g.zipfs = make(map[zipfKey]*rand.Zipf)
		}
		z = rand.NewZipf(g.r, s, 1, uint64(n-1))
		g.zipfs[key] = z
	}
	return int(z.Uint64())
}

type zipfKey struct {
	s float64
	n int
}

// Fork derives an independent RNG stream from this one; useful to give
// submodels their own streams while keeping whole-run determinism.
func (g *RNG) Fork() *RNG { return NewRNG(g.r.Int63()) }
