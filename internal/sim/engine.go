// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, an event heap, FCFS multi-server resources, and
// time-weighted statistics.
//
// The kernel is single-threaded and deterministic: given the same seed and
// the same sequence of Schedule calls, a simulation always produces the same
// trajectory. All model state is advanced by callbacks executed at their
// scheduled virtual times.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in (or span of) virtual time, measured in microseconds.
type Time int64

// Convenient duration units in virtual time.
const (
	Microsecond Time = 1
	Millisecond Time = 1000
	Second      Time = 1000 * Millisecond
)

// Ms converts a floating-point number of milliseconds to a Time.
func Ms(ms float64) Time { return Time(ms * float64(Millisecond)) }

// ToMs converts a Time to floating-point milliseconds.
func (t Time) ToMs() float64 { return float64(t) / float64(Millisecond) }

// String renders the time as milliseconds, the paper's unit.
func (t Time) String() string { return fmt.Sprintf("%.3fms", t.ToMs()) }

type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among simultaneous events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// EventHook observes event execution; see Engine.SetEventHook.
type EventHook func(at Time)

// Engine is a discrete-event simulation executive. The zero value is not
// usable; create one with New.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64
	steps  uint64
	hook   EventHook
}

// New returns a fresh Engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Steps reports the number of events executed so far; useful for runaway
// detection in tests.
func (e *Engine) Steps() uint64 { return e.steps }

// SetEventHook installs a hook called once per executed event, after the
// clock has advanced to the event's time but before its callback runs.
// Tracing and sampling layers use it; nil removes the hook. The engine
// pays only a nil check when no hook is set.
func (e *Engine) SetEventHook(h EventHook) { e.hook = h }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a model bug.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v, before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d virtual time units from now.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now+d, fn)
}

// Pending reports the number of scheduled, not yet executed events.
func (e *Engine) Pending() int { return len(e.events) }

// Run executes events in timestamp order until no events remain.
func (e *Engine) Run() {
	for len(e.events) > 0 {
		e.step()
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t (even if no event is scheduled there).
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.step()
	}
	if t > e.now {
		e.now = t
	}
}

func (e *Engine) step() {
	ev := heap.Pop(&e.events).(event)
	if ev.at < e.now {
		panic("sim: event heap corrupted (time went backwards)")
	}
	e.now = ev.at
	e.steps++
	if e.hook != nil {
		e.hook(ev.at)
	}
	ev.fn()
}
