package sim

// ResourceObserver receives the full queue-wait/service timing of every
// completed request on a Resource. The observability layer uses it to feed
// wait and service histograms and to emit per-server trace spans; the
// resource itself pays only a nil check when no observer is set.
type ResourceObserver interface {
	// ResourceRequest is called when a request finishes service, with the
	// virtual times it was enqueued, started service, and ended.
	ResourceRequest(r *Resource, server int, enqueued, started, ended Time)
}

// Resource models a pool of identical FCFS servers (query processors,
// page-table processors, an interconnect). Requests queue in arrival order;
// each request holds one server for its service time and then runs its
// completion callback.
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	busy     int
	queue    []resourceReq

	busyTW  *TimeWeighted // number of busy servers over time
	queueTW *TimeWeighted // queued (not yet in service) requests over time
	served  int64
	busyAcc Time  // total server-busy time (sum over servers)
	freeIDs []int // stack of idle server indices
	obs     ResourceObserver
}

type resourceReq struct {
	service func() Time // evaluated when service begins
	done    func(server int)
	enq     Time // virtual time the request was enqueued
}

// NewResource returns a resource with the given server count.
func NewResource(eng *Engine, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	r := &Resource{
		eng:      eng,
		name:     name,
		capacity: capacity,
		busyTW:   NewTimeWeighted(eng),
		queueTW:  NewTimeWeighted(eng),
		freeIDs:  make([]int, capacity),
	}
	for i := range r.freeIDs {
		r.freeIDs[i] = i
	}
	return r
}

// Name reports the resource's name.
func (r *Resource) Name() string { return r.name }

// Capacity reports the number of servers.
func (r *Resource) Capacity() int { return r.capacity }

// Busy reports the number of currently busy servers.
func (r *Resource) Busy() int { return r.busy }

// QueueLen reports the number of waiting (not in service) requests.
func (r *Resource) QueueLen() int { return len(r.queue) }

// Served reports the number of completed requests.
func (r *Resource) Served() int64 { return r.served }

// SetObserver installs the request observer (nil removes it).
func (r *Resource) SetObserver(o ResourceObserver) { r.obs = o }

// BusyTW exposes the busy-server tracker so a metrics registry can adopt
// it as a gauge.
func (r *Resource) BusyTW() *TimeWeighted { return r.busyTW }

// QueueTW exposes the queue-length tracker so a metrics registry can adopt
// it as a gauge.
func (r *Resource) QueueTW() *TimeWeighted { return r.queueTW }

// Request enqueues a job with a fixed service time; done runs at completion.
func (r *Resource) Request(service Time, done func()) {
	r.RequestFn(func() Time { return service }, done)
}

// RequestFn enqueues a job whose service time is computed when a server
// dispatches it (needed when service time depends on state at dispatch, such
// as a disk head position).
func (r *Resource) RequestFn(service func() Time, done func()) {
	var wrapped func(int)
	if done != nil {
		wrapped = func(int) { done() }
	}
	r.enqueue(resourceReq{service: service, done: wrapped})
}

// RequestServer is like Request but reports which server (0..capacity-1)
// executed the job; models use this to identify the query processor that
// performed an update.
func (r *Resource) RequestServer(service Time, done func(server int)) {
	r.enqueue(resourceReq{service: func() Time { return service }, done: done})
}

func (r *Resource) enqueue(req resourceReq) {
	req.enq = r.eng.Now()
	if r.busy < r.capacity {
		r.start(req)
		return
	}
	r.queue = append(r.queue, req)
	r.queueTW.Set(float64(len(r.queue)))
}

func (r *Resource) start(req resourceReq) {
	r.busy++
	r.busyTW.Set(float64(r.busy))
	server := r.freeIDs[len(r.freeIDs)-1]
	r.freeIDs = r.freeIDs[:len(r.freeIDs)-1]
	started := r.eng.Now()
	svc := req.service()
	if svc < 0 {
		panic("sim: negative service time")
	}
	r.busyAcc += svc
	r.eng.After(svc, func() {
		r.busy--
		r.busyTW.Set(float64(r.busy))
		r.freeIDs = append(r.freeIDs, server)
		r.served++
		if len(r.queue) > 0 {
			next := r.queue[0]
			r.queue = r.queue[1:]
			r.queueTW.Set(float64(len(r.queue)))
			r.start(next)
		}
		if r.obs != nil {
			r.obs.ResourceRequest(r, server, req.enq, started, r.eng.Now())
		}
		if req.done != nil {
			req.done(server)
		}
	})
}

// Utilization reports the time-weighted fraction of servers that were busy,
// in [0, 1].
func (r *Resource) Utilization() float64 {
	return r.busyTW.Mean() / float64(r.capacity)
}

// MeanQueue reports the time-weighted mean number of waiting requests.
func (r *Resource) MeanQueue() float64 { return r.queueTW.Mean() }

// BusyTime reports accumulated server-busy time across all servers.
func (r *Resource) BusyTime() Time { return r.busyAcc }
