package shadow

import (
	"testing"

	"repro/internal/machine"
)

func TestVersionSelectionDoublesSpace(t *testing.T) {
	cfg := smallConfig()
	m, err := machine.New(cfg, NewVersion(Config{}))
	if err != nil {
		t.Fatal(err)
	}
	// The physical space must cover two blocks per database page.
	if m.Place().PhysPages() < 2*cfg.Workload.DBPages {
		t.Fatalf("phys pages %d < 2x database %d",
			m.Place().PhysPages(), cfg.Workload.DBPages)
	}
}

func TestVersionSelectionReadsBothBlocks(t *testing.T) {
	cfg := smallConfig()
	bare, err := machine.Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := machine.Run(cfg, NewVersion(Config{}))
	if err != nil {
		t.Fatal(err)
	}
	// Same page count processed, but roughly double the pages moved off the
	// data disks (both versions fetched per read).
	if vs.PagesProcessed != bare.PagesProcessed {
		t.Fatalf("pages processed: %d vs %d", vs.PagesProcessed, bare.PagesProcessed)
	}
	if vs.DataDiskAccesses < bare.DataDiskAccesses {
		t.Fatalf("accesses: %d vs %d", vs.DataDiskAccesses, bare.DataDiskAccesses)
	}
}

func TestVersionSelectionSequentialAlsoSlower(t *testing.T) {
	// The paper argues thru-page-table beats version selection even for
	// sequential transactions (Section 4.2.5): the doubled span and extra
	// transfer cost more than the (overlappable) page-table accesses.
	cfg := machine.DefaultConfig()
	cfg.NumTxns = 12
	cfg.Workload.Sequential = true
	pt, err := machine.Run(cfg, NewPageTable(Config{}))
	if err != nil {
		t.Fatal(err)
	}
	vs, err := machine.Run(cfg, NewVersion(Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if vs.ExecPerPageMs <= pt.ExecPerPageMs {
		t.Fatalf("version selection (%.1f) should trail thru-PT (%.1f) on sequential",
			vs.ExecPerPageMs, pt.ExecPerPageMs)
	}
}
