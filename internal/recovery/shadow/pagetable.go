package shadow

import (
	"fmt"
	"sort"

	"repro/internal/disk"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ptBuffer is the LRU page-table buffer shared by the page-table
// processors.
type ptBuffer struct {
	cap     int
	dirty   map[int]bool
	order   []int // LRU order: front is the victim
	hits    int64
	misses  int64
	evicted int64
}

func newPTBuffer(capacity int) *ptBuffer {
	return &ptBuffer{cap: capacity, dirty: make(map[int]bool)}
}

func (b *ptBuffer) contains(ptp int) bool {
	_, ok := b.dirty[ptp]
	return ok
}

// touch marks ptp most-recently used.
func (b *ptBuffer) touch(ptp int) {
	for i, v := range b.order {
		if v == ptp {
			b.order = append(append(b.order[:i:i], b.order[i+1:]...), ptp)
			return
		}
	}
}

// insert adds ptp, returning an evicted page and whether it was dirty
// (evicted == -1 when nothing was evicted).
func (b *ptBuffer) insert(ptp int) (evicted int, wasDirty bool) {
	evicted = -1
	if len(b.order) >= b.cap {
		evicted = b.order[0]
		b.order = b.order[1:]
		wasDirty = b.dirty[evicted]
		delete(b.dirty, evicted)
		b.evicted++
	}
	b.order = append(b.order, ptp)
	b.dirty[ptp] = false
	return evicted, wasDirty
}

func (b *ptBuffer) markDirty(ptp int) {
	if _, ok := b.dirty[ptp]; ok {
		b.dirty[ptp] = true
	}
}

func (b *ptBuffer) markClean(ptp int) {
	if _, ok := b.dirty[ptp]; ok {
		b.dirty[ptp] = false
	}
}

// ptProcessor is one page-table processor with its page-table disk.
type ptProcessor struct {
	idx  int
	cpu  *sim.Resource
	disk disk.Device
}

// PageTableModel is the "thru page-table" shadow architecture.
type PageTableModel struct {
	machine.Base
	cfg Config

	procs   []*ptProcessor
	buf     *ptBuffer
	pending map[int][]func() // in-flight page-table reads

	perm     []int // scrambled placement of the database region
	shadowTo *sim.RNG

	// Per-transaction lookup chains: the back-end controller resolves a
	// transaction's page addresses one at a time ("the page-table processor
	// fetches the disk address of the next data page"), so lookups are
	// pipelined with data processing but serialized within a transaction.
	chains    map[*machine.ActiveTxn][]lookupItem
	chainBusy map[*machine.ActiveTxn]bool

	dirtied map[*machine.ActiveTxn]map[int]bool
	rereads int64
	ptReads int64
	ptWrite int64
}

type lookupItem struct {
	ptp     int
	proceed func()
}

// NewPageTable returns a thru-page-table shadow model.
func NewPageTable(cfg Config) *PageTableModel {
	cfg.Variant = ThruPageTable
	return &PageTableModel{
		cfg:       cfg.withDefaults(),
		pending:   make(map[int][]func()),
		dirtied:   make(map[*machine.ActiveTxn]map[int]bool),
		chains:    make(map[*machine.ActiveTxn][]lookupItem),
		chainBusy: make(map[*machine.ActiveTxn]bool),
	}
}

// Name implements machine.Model.
func (s *PageTableModel) Name() string {
	placement := "clustered"
	if s.cfg.Scrambled {
		placement = "scrambled"
	}
	return fmt.Sprintf("shadow(pt,%dproc,buf%d,%s)",
		s.cfg.PageTableProcessors, s.cfg.BufferPages, placement)
}

// Attach implements machine.Model.
func (s *PageTableModel) Attach(m *machine.Machine) {
	s.Base.Attach(m)
	s.buf = newPTBuffer(s.cfg.BufferPages)
	for i := 0; i < s.cfg.PageTableProcessors; i++ {
		s.procs = append(s.procs, &ptProcessor{
			idx:  i,
			cpu:  sim.NewResource(m.Eng(), fmt.Sprintf("ptproc%d", i), 1),
			disk: m.NewAuxDisk(fmt.Sprintf("ptdisk%d", i), s.cfg.PTDiskCylinders),
		})
		m.ObserveResource(s.procs[i].cpu)
	}
	reg := m.Obs().Reg
	reg.Func("pt.hits", func() float64 { return float64(s.buf.hits) })
	reg.Func("pt.misses", func() float64 { return float64(s.buf.misses) })
	reg.Func("pt.evictions", func() float64 { return float64(s.buf.evicted) })
	reg.Func("pt.rereads", func() float64 { return float64(s.rereads) })
	if s.cfg.Scrambled {
		rng := m.RNG().Fork()
		s.perm = rng.Perm(m.Cfg().Workload.DBPages)
		s.shadowTo = rng.Fork()
	}
}

func (s *PageTableModel) ptPageOf(p workload.PageID) int {
	return int(p) / s.cfg.EntriesPerPTPage
}

func (s *PageTableModel) procOf(ptp int) *ptProcessor {
	return s.procs[ptp%len(s.procs)]
}

// ptDiskPage places page-table page ptp on its processor's disk, one
// page-table page per cylinder so page-table seeks behave like the paper's
// dedicated page-table disks.
func (s *PageTableModel) ptDiskPage(proc *ptProcessor, ptp int) int {
	geom := proc.disk.Geom()
	cyl := (ptp / len(s.procs)) % geom.Cylinders
	return cyl * geom.PagesPerCyl()
}

// Plan implements machine.Model. Under clustered placement the physical
// locations match the bare machine; under scrambled placement every logical
// page lives at a random physical page and updates move to fresh random
// shadow locations.
func (s *PageTableModel) Plan(t *machine.ActiveTxn) []machine.PlannedRead {
	plan := s.M.StandardPlan(t)
	if s.cfg.Scrambled {
		for i := range plan {
			phys := s.perm[int(plan[i].Page)]
			plan[i].PhysPages = []int{phys}
			if plan[i].Update {
				plan[i].WriteTo = s.shadowTo.Intn(s.M.Cfg().Workload.DBPages)
			}
		}
	}
	return plan
}

// BeforeRead implements machine.Model: resolve the page's disk address
// through the page table before the data read can start. Lookups are
// serialized per transaction and pipelined with data-page processing.
func (s *PageTableModel) BeforeRead(t *machine.ActiveTxn, pr *machine.PlannedRead, proceed func()) {
	s.chains[t] = append(s.chains[t], lookupItem{ptp: s.ptPageOf(pr.Page), proceed: proceed})
	if !s.chainBusy[t] {
		s.chainBusy[t] = true
		s.runChain(t)
	}
}

func (s *PageTableModel) runChain(t *machine.ActiveTxn) {
	queue := s.chains[t]
	if len(queue) == 0 {
		delete(s.chains, t)
		delete(s.chainBusy, t)
		return
	}
	item := queue[0]
	s.chains[t] = queue[1:]
	s.lookup(item.ptp, func() {
		item.proceed()
		s.runChain(t)
	})
}

// lookup resolves one page-table entry, then calls proceed.
func (s *PageTableModel) lookup(ptp int, proceed func()) {
	proc := s.procOf(ptp)
	proc.cpu.Request(s.cfg.PTLookupCPU, func() {
		if s.buf.contains(ptp) {
			s.buf.hits++
			s.buf.touch(ptp)
			proceed()
			return
		}
		if waiters, inFlight := s.pending[ptp]; inFlight {
			s.buf.hits++ // piggybacks on the in-flight read
			s.pending[ptp] = append(waiters, proceed)
			return
		}
		s.buf.misses++
		s.pending[ptp] = nil
		s.readPTPage(proc, ptp, func() {
			s.installPTPage(proc, ptp)
			waiters := s.pending[ptp]
			delete(s.pending, ptp)
			proceed()
			for _, w := range waiters {
				w()
			}
		})
	})
}

func (s *PageTableModel) readPTPage(proc *ptProcessor, ptp int, done func()) {
	s.ptReads++
	proc.disk.Submit(&disk.Request{
		Pages: []int{s.ptDiskPage(proc, ptp)},
		Done:  done,
	})
}

func (s *PageTableModel) writePTPage(proc *ptProcessor, ptp int, done func()) {
	s.ptWrite++
	proc.disk.Submit(&disk.Request{
		Pages: []int{s.ptDiskPage(proc, ptp)},
		Write: true,
		Done:  done,
	})
}

// installPTPage inserts ptp into the buffer, writing back a dirty victim.
func (s *PageTableModel) installPTPage(proc *ptProcessor, ptp int) {
	evicted, wasDirty := s.buf.insert(ptp)
	if evicted >= 0 && wasDirty {
		s.writePTPage(s.procOf(evicted), evicted, nil)
	}
}

// UpdateReady implements machine.Model: shadow updates go to fresh blocks,
// so the data page may be written immediately; the page-table entry becomes
// dirty and is persisted at commit.
func (s *PageTableModel) UpdateReady(t *machine.ActiveTxn, pr *machine.PlannedRead, release func()) {
	ptp := s.ptPageOf(pr.Page)
	s.buf.markDirty(ptp)
	set := s.dirtied[t]
	if set == nil {
		set = make(map[int]bool)
		s.dirtied[t] = set
	}
	set[ptp] = true
	release()
}

// BeforeCommit implements machine.Model: every page-table page the
// transaction dirtied must reach the page-table disk; pages evicted from
// the buffer are reread first (the paper's commit-time rereads).
func (s *PageTableModel) BeforeCommit(t *machine.ActiveTxn, done func()) {
	set := s.dirtied[t]
	delete(s.dirtied, t)
	if len(set) == 0 {
		done()
		return
	}
	remaining := len(set)
	o := s.M.Obs()
	flushStart := s.M.Eng().Now()
	finish := func() {
		remaining--
		if remaining == 0 {
			if o.Tracing() {
				o.Tracer().Span("pt", "commit-flush", flushStart, s.M.Eng().Now(),
					map[string]any{"ptPages": len(set), "txn": t.ID()})
			}
			done()
		}
	}
	// Deterministic issue order (map iteration order would randomize the
	// disk schedule and break run-to-run reproducibility).
	ptps := make([]int, 0, len(set))
	for ptp := range set {
		ptps = append(ptps, ptp)
	}
	sort.Ints(ptps)
	for _, ptp := range ptps {
		ptp := ptp
		proc := s.procOf(ptp)
		proc.cpu.Request(s.cfg.PTLookupCPU, func() {
			if s.buf.contains(ptp) {
				s.buf.markClean(ptp)
				s.writePTPage(proc, ptp, finish)
				return
			}
			// Evicted before commit: reread for updating, then write.
			s.rereads++
			if o.Tracing() {
				o.Tracer().Instant("pt", fmt.Sprintf("commit-reread pt%d", ptp), s.M.Eng().Now())
			}
			s.readPTPage(proc, ptp, func() {
				s.installPTPage(proc, ptp)
				s.writePTPage(proc, ptp, finish)
			})
		})
	}
}

// Stats implements machine.Model.
func (s *PageTableModel) Stats() map[string]float64 {
	out := map[string]float64{
		"pt.hits":    float64(s.buf.hits),
		"pt.misses":  float64(s.buf.misses),
		"pt.rereads": float64(s.rereads),
		"pt.reads":   float64(s.ptReads),
		"pt.writes":  float64(s.ptWrite),
	}
	var util float64
	for _, p := range s.procs {
		u := p.disk.Utilization()
		out[fmt.Sprintf("pt.disk%d.util", p.idx)] = u
		util += u
	}
	out["pt.diskUtil"] = util / float64(len(s.procs))
	if total := s.buf.hits + s.buf.misses; total > 0 {
		out["pt.hitRate"] = float64(s.buf.hits) / float64(total)
	}
	return out
}
