package shadow

import (
	"testing"

	"repro/internal/machine"
)

func smallConfig() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.NumTxns = 10
	cfg.Workload.MaxPages = 60
	return cfg
}

func TestPageTableRunsToCompletion(t *testing.T) {
	res, err := machine.Run(smallConfig(), NewPageTable(Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 10 {
		t.Fatalf("committed = %d", res.Committed)
	}
	if res.Extra["pt.misses"] == 0 {
		t.Fatal("page-table buffer never missed")
	}
	if res.Extra["pt.diskUtil"] <= 0 {
		t.Fatal("page-table disk never used")
	}
}

func TestPTBufferLRU(t *testing.T) {
	b := newPTBuffer(2)
	b.insert(1)
	b.insert(2)
	if ev, _ := b.insert(3); ev != 1 {
		t.Fatalf("evicted %d, want LRU page 1", ev)
	}
	b.touch(2) // 2 becomes MRU; 3 is now LRU
	if ev, _ := b.insert(4); ev != 3 {
		t.Fatalf("evicted %d, want 3", ev)
	}
	if !b.contains(2) || !b.contains(4) {
		t.Fatal("buffer contents wrong")
	}
}

func TestPTBufferDirtyEviction(t *testing.T) {
	b := newPTBuffer(1)
	b.insert(1)
	b.markDirty(1)
	ev, dirty := b.insert(2)
	if ev != 1 || !dirty {
		t.Fatalf("evicted %d dirty=%v, want 1/dirty", ev, dirty)
	}
	b.markDirty(99) // no-op for absent page
	if b.contains(99) {
		t.Fatal("markDirty inserted a page")
	}
}

func TestSecondPTProcessorHelpsRandom(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.NumTxns = 20
	one, err := machine.Run(cfg, NewPageTable(Config{PageTableProcessors: 1}))
	if err != nil {
		t.Fatal(err)
	}
	two, err := machine.Run(cfg, NewPageTable(Config{PageTableProcessors: 2}))
	if err != nil {
		t.Fatal(err)
	}
	bare, err := machine.Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 4: 1 PT processor degrades random throughput; 2 restore it.
	if one.ExecPerPageMs <= bare.ExecPerPageMs*1.02 {
		t.Fatalf("1 PT processor did not degrade: %.2f vs bare %.2f",
			one.ExecPerPageMs, bare.ExecPerPageMs)
	}
	if two.ExecPerPageMs >= one.ExecPerPageMs {
		t.Fatalf("2 PT processors (%.2f) not faster than 1 (%.2f)",
			two.ExecPerPageMs, one.ExecPerPageMs)
	}
}

func TestLargerBufferAnnulsDegradation(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.NumTxns = 20
	small, err := machine.Run(cfg, NewPageTable(Config{BufferPages: 10}))
	if err != nil {
		t.Fatal(err)
	}
	large, err := machine.Run(cfg, NewPageTable(Config{BufferPages: 50}))
	if err != nil {
		t.Fatal(err)
	}
	if large.ExecPerPageMs >= small.ExecPerPageMs {
		t.Fatalf("50-page buffer (%.2f) not faster than 10 (%.2f)",
			large.ExecPerPageMs, small.ExecPerPageMs)
	}
	if large.Extra["pt.hitRate"] <= small.Extra["pt.hitRate"] {
		t.Fatal("hit rate did not improve with larger buffer")
	}
}

func TestScrambledKillsSequential(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.NumTxns = 12
	cfg.Workload.Sequential = true
	clustered, err := machine.Run(cfg, NewPageTable(Config{}))
	if err != nil {
		t.Fatal(err)
	}
	scrambled, err := machine.Run(cfg, NewPageTable(Config{Scrambled: true}))
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 7: scrambling roughly doubles execution time per page.
	if scrambled.ExecPerPageMs < clustered.ExecPerPageMs*1.5 {
		t.Fatalf("scrambled (%.2f) not much worse than clustered (%.2f)",
			scrambled.ExecPerPageMs, clustered.ExecPerPageMs)
	}

	// On parallel-access disks the collapse is dramatic (18.54 vs 1.94).
	cfg.ParallelDisks = true
	pc, err := machine.Run(cfg, NewPageTable(Config{}))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := machine.Run(cfg, NewPageTable(Config{Scrambled: true}))
	if err != nil {
		t.Fatal(err)
	}
	if ps.ExecPerPageMs < pc.ExecPerPageMs*3 {
		t.Fatalf("parallel scrambled (%.2f) should collapse vs clustered (%.2f)",
			ps.ExecPerPageMs, pc.ExecPerPageMs)
	}
}

func TestVersionSelectionSlower(t *testing.T) {
	cfg := smallConfig()
	bare, err := machine.Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := machine.Run(cfg, NewVersion(Config{}))
	if err != nil {
		t.Fatal(err)
	}
	// Fetching both versions and doubling the seek span must cost.
	if vs.ExecPerPageMs <= bare.ExecPerPageMs {
		t.Fatalf("version selection (%.2f) not slower than bare (%.2f)",
			vs.ExecPerPageMs, bare.ExecPerPageMs)
	}
}

func TestOverwriteNoUndoConventionalRandomWorse(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.NumTxns = 15
	bare, err := machine.Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ow, err := machine.Run(cfg, NewOverwrite(Config{}, true))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := machine.Run(cfg, NewPageTable(Config{}))
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 8: overwriting (26.9) worse than thru-page-table (20.5)
	// worse than bare (18.0) for conventional random.
	if ow.ExecPerPageMs <= pt.ExecPerPageMs {
		t.Fatalf("overwriting (%.2f) should be worse than thru-PT (%.2f) on random",
			ow.ExecPerPageMs, pt.ExecPerPageMs)
	}
	if ow.ExecPerPageMs <= bare.ExecPerPageMs*1.2 {
		t.Fatalf("overwriting (%.2f) too close to bare (%.2f)",
			ow.ExecPerPageMs, bare.ExecPerPageMs)
	}
	if ow.Extra["overwrite.copyReads"] == 0 || ow.Extra["overwrite.commitRecords"] == 0 {
		t.Fatal("overwrite copy phase never ran")
	}
}

func TestOverwriteNoUndoGoodOnParallelSequential(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.NumTxns = 15
	cfg.Workload.Sequential = true
	cfg.ParallelDisks = true
	bare, err := machine.Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ow, err := machine.Run(cfg, NewOverwrite(Config{}, true))
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 7: 2.31 vs bare 1.92 — modest overhead, nothing like the
	// conventional-disk collapse.
	if ow.ExecPerPageMs > bare.ExecPerPageMs*1.6 {
		t.Fatalf("overwriting on parallel-sequential too slow: %.2f vs bare %.2f",
			ow.ExecPerPageMs, bare.ExecPerPageMs)
	}
}

func TestOverwriteNoRedoRuns(t *testing.T) {
	res, err := machine.Run(smallConfig(), NewOverwrite(Config{}, false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 10 {
		t.Fatalf("committed = %d", res.Committed)
	}
	if res.Extra["overwrite.scratchWrites"] == 0 {
		t.Fatal("no-redo never saved shadows to scratch")
	}
	if res.Extra["overwrite.copyReads"] != 0 {
		t.Fatal("no-redo should not copy from scratch after commit")
	}
}

func TestNoRedoAbortRestoresFromScratch(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.NumTxns = 12
	cfg.AbortFrac = 0.5
	res, err := machine.Run(cfg, NewOverwrite(Config{}, false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted == 0 {
		t.Fatal("no aborts happened")
	}
	// No-redo undo = read saved shadows from scratch and rewrite homes.
	if res.Extra["overwrite.copyReads"] == 0 || res.Extra["overwrite.copyWrites"] == 0 {
		t.Fatalf("no-redo abort performed no restore I/O: %+v", res.Extra)
	}
}

func TestNoUndoAbortIsFree(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.NumTxns = 12
	cfg.AbortFrac = 0.5
	res, err := machine.Run(cfg, NewOverwrite(Config{}, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted == 0 {
		t.Fatal("no aborts happened")
	}
	// Aborted transactions never reach the copy phase, so copy I/O counts
	// only committed work: copyReads == copied updates of committed txns.
	if res.Extra["overwrite.commitRecords"] != float64(res.Committed) {
		t.Fatalf("commit records (%v) != committed (%d): aborts wrote commit records?",
			res.Extra["overwrite.commitRecords"], res.Committed)
	}
}

func TestVariantNames(t *testing.T) {
	for v, want := range map[Variant]string{
		ThruPageTable:    "thru-page-table",
		VersionSelection: "version-selection",
		OverwriteNoUndo:  "overwrite-no-undo",
		OverwriteNoRedo:  "overwrite-no-redo",
	} {
		if v.String() != want {
			t.Errorf("%d.String() = %q", int(v), v.String())
		}
	}
}

func TestCommitRereadsEvictedPTPages(t *testing.T) {
	// A tiny buffer forces dirty page-table pages out before commit.
	cfg := machine.DefaultConfig()
	cfg.NumTxns = 10
	res, err := machine.Run(cfg, NewPageTable(Config{BufferPages: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Extra["pt.rereads"] == 0 {
		t.Fatal("no commit-time rereads with a 2-page buffer")
	}
}
