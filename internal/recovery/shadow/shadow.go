// Package shadow implements the paper's shadow-based recovery architectures
// (Section 3.2):
//
//   - ThruPageTable: the canonical shadow mechanism with indirection through
//     page tables kept on dedicated page-table disks behind one or more
//     page-table processors, with an LRU page-table buffer (Tables 4-6), in
//     both the clustered and scrambled placement regimes (Table 7).
//   - VersionSelection: physically adjacent current/shadow block pairs read
//     together, with version selection applied after the fact (Section
//     3.2.2.1); it doubles disk space.
//   - OverwriteNoUndo / OverwriteNoRedo: the overwriting architectures of
//     Section 3.2.2.2, using a scratch ring buffer on each data disk
//     (Tables 7-8).
package shadow

import (
	"repro/internal/sim"
)

// Variant selects one of the shadow architectures.
type Variant int

const (
	// ThruPageTable is canonical shadow paging with page-table indirection.
	ThruPageTable Variant = iota
	// VersionSelection reads both versions of every page and selects.
	VersionSelection
	// OverwriteNoUndo writes updates to scratch space, commits, then
	// overwrites the shadows (no undo needed at recovery).
	OverwriteNoUndo
	// OverwriteNoRedo saves shadows to scratch space before updating in
	// place (no redo needed at recovery).
	OverwriteNoRedo
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case ThruPageTable:
		return "thru-page-table"
	case VersionSelection:
		return "version-selection"
	case OverwriteNoUndo:
		return "overwrite-no-undo"
	case OverwriteNoRedo:
		return "overwrite-no-redo"
	}
	return "shadow(?)"
}

// Config parameterizes the shadow architectures. Zero fields take defaults.
type Config struct {
	Variant Variant

	// ThruPageTable parameters.
	PageTableProcessors int      // 1 or 2 in the paper
	BufferPages         int      // page-table buffer (10/25/50 in Table 6)
	EntriesPerPTPage    int      // >1000 for 4 KB pages in the paper
	Scrambled           bool     // logically adjacent pages scattered
	PTLookupCPU         sim.Time // page-table processor time per lookup
	PTDiskCylinders     int      // page-table disk size

	// VersionSelection parameters.
	VersionCPU sim.Time // version-selection time per read

	// Overwriting parameters.
	ScratchCylsPerDisk int // scratch ring cylinders per data disk
}

// DefaultConfig is the Table 4 baseline: one page-table processor with a
// ten-page buffer, clustered placement.
func DefaultConfig() Config {
	return Config{
		Variant:             ThruPageTable,
		PageTableProcessors: 1,
		BufferPages:         10,
		EntriesPerPTPage:    1000,
		PTLookupCPU:         sim.Ms(0.3),
		PTDiskCylinders:     40,
		VersionCPU:          sim.Ms(1),
		ScratchCylsPerDisk:  20,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.PageTableProcessors == 0 {
		c.PageTableProcessors = d.PageTableProcessors
	}
	if c.BufferPages == 0 {
		c.BufferPages = d.BufferPages
	}
	if c.EntriesPerPTPage == 0 {
		c.EntriesPerPTPage = d.EntriesPerPTPage
	}
	if c.PTLookupCPU == 0 {
		c.PTLookupCPU = d.PTLookupCPU
	}
	if c.PTDiskCylinders == 0 {
		c.PTDiskCylinders = d.PTDiskCylinders
	}
	if c.VersionCPU == 0 {
		c.VersionCPU = d.VersionCPU
	}
	if c.ScratchCylsPerDisk == 0 {
		c.ScratchCylsPerDisk = d.ScratchCylsPerDisk
	}
	return c
}
