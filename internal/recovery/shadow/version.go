package shadow

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/workload"
)

// VersionModel is the version-selection architecture (Section 3.2.2.1):
// current and shadow copies live in physically adjacent blocks; a read
// fetches both and selects the current version by timestamp, avoiding
// page-table indirection at the cost of doubled disk space and transfer.
type VersionModel struct {
	machine.Base
	cfg Config
}

// NewVersion returns a version-selection shadow model.
func NewVersion(cfg Config) *VersionModel {
	cfg.Variant = VersionSelection
	return &VersionModel{cfg: cfg.withDefaults()}
}

// Name implements machine.Model.
func (v *VersionModel) Name() string { return "shadow(version-selection)" }

// ExtraPhysPages implements machine.SpaceRequirer: every database page needs
// a second block, doubling the database region.
func (v *VersionModel) ExtraPhysPages(cfg machine.Config) int {
	return cfg.Workload.DBPages
}

// DBPhys implements machine.PhysMapper: page p's version pair starts at 2p.
func (v *VersionModel) DBPhys(p workload.PageID) int { return 2 * int(p) }

// Plan implements machine.Model: each read fetches both blocks of the pair
// and pays the version-selection CPU; updates overwrite the older block (the
// same pair, so one write).
func (v *VersionModel) Plan(t *machine.ActiveTxn) []machine.PlannedRead {
	plan := make([]machine.PlannedRead, len(t.T.Reads))
	cfg := v.M.Cfg()
	for i, p := range t.T.Reads {
		base := 2 * int(p)
		update := t.T.Writes[p]
		cpu := cfg.CPUPerPage + v.cfg.VersionCPU
		if update {
			cpu += cfg.CPUPerUpdate
		}
		plan[i] = machine.PlannedRead{
			Page:      p,
			PhysPages: []int{base, base + 1},
			Update:    update,
			WriteTo:   base,
			CPU:       cpu,
		}
	}
	return plan
}

// Stats implements machine.Model.
func (v *VersionModel) Stats() map[string]float64 {
	return map[string]float64{
		"version.spaceMultiplier": 2,
	}
}

var _ fmt.Stringer = Variant(0)
