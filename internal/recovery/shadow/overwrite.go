package shadow

import (
	"fmt"

	"repro/internal/machine"
)

// OverwriteModel implements the overwriting architectures (Section 3.2.2.2).
// Both keep a scratch ring buffer of whole cylinders on every data disk and
// avoid page-table indirection entirely, preserving physical sequentiality.
//
// No-undo: updated pages are first written to the scratch area; once all are
// durable the transaction commits (a commit-list page is forced), and only
// then are the shadows overwritten in place — locks release after the
// overwrite. Recovery redoes the overwrites of committed transactions.
//
// No-redo: the original of each page is saved to the scratch area before the
// updated page overwrites it in place; commit requires all in-place writes
// durable. Recovery restores scratch copies of uncommitted transactions.
type OverwriteModel struct {
	machine.Base
	cfg  Config
	redo bool // true => no-undo variant (redo applies scratch copies)

	scratch *machine.RingAllocator
	metaPg  int // commit/abort-list page

	scratchWrites int64
	copyReads     int64
	copyWrites    int64
	commitRecs    int64

	// per-transaction scratch/home pairs (no-undo)
	pairs map[*machine.ActiveTxn][][2]int
}

// NewOverwrite returns an overwriting model; noUndo selects the no-undo
// variant (the one evaluated in Tables 7 and 8), otherwise no-redo.
func NewOverwrite(cfg Config, noUndo bool) *OverwriteModel {
	if noUndo {
		cfg.Variant = OverwriteNoUndo
	} else {
		cfg.Variant = OverwriteNoRedo
	}
	return &OverwriteModel{
		cfg:   cfg.withDefaults(),
		redo:  noUndo,
		pairs: make(map[*machine.ActiveTxn][][2]int),
	}
}

// Name implements machine.Model.
func (o *OverwriteModel) Name() string {
	if o.redo {
		return "shadow(overwrite-no-undo)"
	}
	return "shadow(overwrite-no-redo)"
}

// ExtraPhysPages implements machine.SpaceRequirer: the scratch ring plus one
// cylinder for the commit-list metadata.
func (o *OverwriteModel) ExtraPhysPages(cfg machine.Config) int {
	ppc := cfg.PagesPerTrack * cfg.TracksPerCyl
	return (o.cfg.ScratchCylsPerDisk*cfg.DataDisks + cfg.DataDisks) * ppc
}

// Attach implements machine.Model.
func (o *OverwriteModel) Attach(m *machine.Machine) {
	o.Base.Attach(m)
	place := m.Place()
	start := place.ExtraRegionStart()
	o.metaPg = start // first extra cylinder holds the commit list
	scratchStart := start + place.PagesPerCyl()*place.NDisks()
	o.scratch = machine.NewRingAllocator(place, scratchStart, o.cfg.ScratchCylsPerDisk)
}

// Plan implements machine.Model. Under no-undo the planned write of each
// updated page goes to the scratch area of its home disk; under no-redo it
// stays in place.
func (o *OverwriteModel) Plan(t *machine.ActiveTxn) []machine.PlannedRead {
	plan := o.M.StandardPlan(t)
	if !o.redo {
		return plan
	}
	place := o.M.Place()
	for i := range plan {
		if !plan[i].Update {
			continue
		}
		home := plan[i].PhysPages[0]
		scratch := o.scratch.Next(place.DiskOf(home))
		o.scratchWrites++
		plan[i].WriteTo = scratch
		o.pairs[t] = append(o.pairs[t], [2]int{scratch, home})
	}
	return plan
}

// UpdateReady implements machine.Model. The no-redo variant saves the shadow
// (the page's original, already in the cache) to the scratch area before the
// in-place write is allowed.
func (o *OverwriteModel) UpdateReady(t *machine.ActiveTxn, pr *machine.PlannedRead, release func()) {
	if o.redo {
		release() // scratch write is the planned write itself
		return
	}
	place := o.M.Place()
	scratch := o.scratch.Next(place.DiskOf(pr.PhysPages[0]))
	o.scratchWrites++
	o.pairs[t] = append(o.pairs[t], [2]int{scratch, pr.PhysPages[0]})
	o.M.SubmitPhys([]int{scratch}, true, release)
}

// OnAbort implements machine.Model. No-undo aborts for free: the scratch
// copies are simply abandoned and the shadows are still current. No-redo
// must undo: the saved shadows are read back from the scratch area and
// rewritten over the in-place updates.
func (o *OverwriteModel) OnAbort(t *machine.ActiveTxn, done func()) {
	pairs := o.pairs[t]
	delete(o.pairs, t)
	if o.redo || len(pairs) == 0 {
		done()
		return
	}
	scratchPages := make([]int, len(pairs))
	homePages := make([]int, len(pairs))
	for i, pr := range pairs {
		scratchPages[i] = pr[0]
		homePages[i] = pr[1]
	}
	o.copyReads += int64(len(scratchPages))
	o.M.SubmitPhys(scratchPages, false, func() {
		o.copyWrites += int64(len(homePages))
		o.M.SubmitPhys(homePages, true, func() {
			o.M.NoteTxnWrite(t)
			done()
		})
	})
}

// AfterCommit implements machine.Model. For no-undo: force the commit-list
// page, read the updated pages back from scratch, and overwrite the shadows
// in place; the transaction's locks release only after that. For no-redo:
// just force the commit-list page.
func (o *OverwriteModel) AfterCommit(t *machine.ActiveTxn, done func()) {
	o.commitRecs++
	o.M.SubmitPhys([]int{o.metaPg}, true, func() {
		if !o.redo {
			done()
			return
		}
		pairs := o.pairs[t]
		delete(o.pairs, t)
		if len(pairs) == 0 {
			done()
			return
		}
		if o.M.Cfg().ParallelDisks {
			// Parallel-access disks read the whole scratch area and
			// overwrite the shadows in one or very few accesses.
			scratchPages := make([]int, len(pairs))
			homePages := make([]int, len(pairs))
			for i, pr := range pairs {
				scratchPages[i] = pr[0]
				homePages[i] = pr[1]
			}
			o.copyReads += int64(len(scratchPages))
			o.M.SubmitPhys(scratchPages, false, func() {
				o.copyWrites += int64(len(homePages))
				o.M.SubmitPhys(homePages, true, func() {
					o.M.NoteTxnWrite(t)
					done()
				})
			})
			return
		}
		// Conventional disks overwrite one shadow at a time: the arm
		// ping-pongs between the scratch area and the data area — the
		// paper's reason overwriting performs poorly on conventional disks.
		var step func(i int)
		step = func(i int) {
			if i == len(pairs) {
				o.M.NoteTxnWrite(t)
				done()
				return
			}
			o.copyReads++
			o.M.SubmitPhys([]int{pairs[i][0]}, false, func() {
				o.copyWrites++
				o.M.SubmitPhys([]int{pairs[i][1]}, true, func() {
					step(i + 1)
				})
			})
		}
		step(0)
	})
}

// Stats implements machine.Model.
func (o *OverwriteModel) Stats() map[string]float64 {
	return map[string]float64{
		"overwrite.scratchWrites": float64(o.scratchWrites),
		"overwrite.copyReads":     float64(o.copyReads),
		"overwrite.copyWrites":    float64(o.copyWrites),
		"overwrite.commitRecords": float64(o.commitRecs),
	}
}

var _ machine.SpaceRequirer = (*OverwriteModel)(nil)
var _ fmt.Stringer = Variant(0)
