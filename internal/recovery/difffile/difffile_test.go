package difffile

import (
	"testing"

	"repro/internal/machine"
)

func smallConfig() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.NumTxns = 10
	cfg.Workload.MaxPages = 60
	return cfg
}

func TestDiffFileRunsToCompletion(t *testing.T) {
	res, err := machine.Run(smallConfig(), New(Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 10 {
		t.Fatalf("committed = %d", res.Committed)
	}
	if res.Extra["diff.aReads"] == 0 || res.Extra["diff.dReads"] == 0 {
		t.Fatal("no differential file pages read")
	}
	if res.Extra["diff.appends"] == 0 {
		t.Fatal("no output pages appended")
	}
}

func TestBasicStrategyCPUBound(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.NumTxns = 15
	basic, err := machine.Run(cfg, New(Config{Strategy: Basic}))
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 9: the basic strategy saturates the query processors.
	if basic.QPUtil < 0.85 {
		t.Fatalf("basic strategy QP utilization %.2f, want near saturation", basic.QPUtil)
	}
	bare, err := machine.Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if basic.ExecPerPageMs < bare.ExecPerPageMs*1.5 {
		t.Fatalf("basic strategy (%.1f) not much slower than bare (%.1f)",
			basic.ExecPerPageMs, bare.ExecPerPageMs)
	}
}

func TestBasicStrategyFlatAcrossConfigs(t *testing.T) {
	// Paper Table 9: execution time per page under the basic strategy is
	// almost identical for all four configurations (CPU bound).
	var results []float64
	for _, seq := range []bool{false, true} {
		for _, par := range []bool{false, true} {
			cfg := machine.DefaultConfig()
			cfg.NumTxns = 12
			cfg.Workload.Sequential = seq
			cfg.ParallelDisks = par
			res, err := machine.Run(cfg, New(Config{Strategy: Basic}))
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, res.ExecPerPageMs)
		}
	}
	min, max := results[0], results[0]
	for _, v := range results {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max/min > 1.3 {
		t.Fatalf("basic strategy should be flat across configs, got %v", results)
	}
}

func TestOptimalBeatsBasic(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.NumTxns = 12
	basic, err := machine.Run(cfg, New(Config{Strategy: Basic}))
	if err != nil {
		t.Fatal(err)
	}
	optimal, err := machine.Run(cfg, New(Config{Strategy: Optimal}))
	if err != nil {
		t.Fatal(err)
	}
	if optimal.ExecPerPageMs >= basic.ExecPerPageMs {
		t.Fatalf("optimal (%.1f) not faster than basic (%.1f)",
			optimal.ExecPerPageMs, basic.ExecPerPageMs)
	}
	if optimal.Extra["diff.skipped"] == 0 {
		t.Fatal("optimal strategy never skipped a set-difference")
	}
}

func TestLargerDiffFilesDegradeNonlinearly(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.NumTxns = 12
	var exec []float64
	for _, frac := range []float64{0.10, 0.15, 0.20} {
		res, err := machine.Run(cfg, New(Config{DiffFrac: frac}))
		if err != nil {
			t.Fatal(err)
		}
		exec = append(exec, res.ExecPerPageMs)
	}
	if !(exec[0] < exec[1] && exec[1] < exec[2]) {
		t.Fatalf("execution time not increasing with diff size: %v", exec)
	}
	// Nonlinear: the 15->20 step exceeds the 10->15 step.
	if exec[2]-exec[1] <= exec[1]-exec[0] {
		t.Fatalf("degradation not superlinear: %v", exec)
	}
}

func TestFewerWritesThanBare(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.NumTxns = 12
	m, err := machine.New(cfg, New(Config{}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Appends are ~OutputFrac of the update count.
	if res.Extra["diff.appends"] <= 0 {
		t.Fatal("no appends")
	}
	updates := res.PagesProcessed // not directly comparable; just sanity
	_ = updates
}

func TestOutputFractionIncreasesAppends(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.NumTxns = 12
	small, err := machine.Run(cfg, New(Config{OutputFrac: 0.10}))
	if err != nil {
		t.Fatal(err)
	}
	large, err := machine.Run(cfg, New(Config{OutputFrac: 0.50}))
	if err != nil {
		t.Fatal(err)
	}
	if large.Extra["diff.appends"] <= small.Extra["diff.appends"] {
		t.Fatalf("appends did not grow with output fraction: %.0f vs %.0f",
			large.Extra["diff.appends"], small.Extra["diff.appends"])
	}
}

func TestStrategyStringer(t *testing.T) {
	if Basic.String() != "basic" || Optimal.String() != "optimal" {
		t.Fatal("strategy names wrong")
	}
}
