// Package difffile implements the paper's differential-file recovery
// architecture (Section 3.3): every relation R is a view R = (B ∪ A) − D of
// a read-only base file B, an additions file A, and a deletions file D.
// Updates never touch B — new tuples are appended to A and deleted tuples to
// D — so recovery only needs the short-lived A/D tails. The costs are extra
// reads of A and D pages and the set-difference CPU work turning a simple
// scan into a union/difference computation.
//
// Both query-processing strategies of Table 9 are modeled: the basic
// strategy set-differences every B and A page against the transaction's D
// tuples, while the optimal strategy does so only for pages that yield at
// least one qualifying tuple.
package difffile

import (
	"fmt"
	"math"

	"repro/internal/machine"
	"repro/internal/sim"
)

// Strategy selects the query-processing strategy.
type Strategy int

const (
	// Optimal set-differences only pages with at least one result tuple
	// (the paper's standard strategy; the zero value).
	Optimal Strategy = iota
	// Basic set-differences every B and A page.
	Basic
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	if s == Basic {
		return "basic"
	}
	return "optimal"
}

// Config parameterizes the differential-file architecture. Zero fields take
// defaults.
type Config struct {
	Strategy   Strategy
	DiffFrac   float64  // |A|/|B| = |D|/|B| (paper: 0.10, 0.15, 0.20)
	OutputFrac float64  // fraction of an output page created per update (0.10..0.50)
	HitFrac    float64  // pages yielding >=1 result tuple under Optimal
	TuplesPage int      // tuples per 4 KB page
	CompareCPU sim.Time // one tuple-pair comparison on a query processor
}

// DefaultConfig matches the paper's standard setting: 10 % differential
// files, 10 % output pages, optimal-strategy hit fraction calibrated so the
// VAX-class query processors saturate where the paper's do.
func DefaultConfig() Config {
	return Config{
		Strategy:   Optimal,
		DiffFrac:   0.10,
		OutputFrac: 0.10,
		HitFrac:    0.35,
		TuplesPage: 50,
		CompareCPU: 21, // µs; ~13 VAX-11/750 instructions
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.DiffFrac == 0 {
		c.DiffFrac = d.DiffFrac
	}
	if c.OutputFrac == 0 {
		c.OutputFrac = d.OutputFrac
	}
	if c.HitFrac == 0 {
		c.HitFrac = d.HitFrac
	}
	if c.TuplesPage == 0 {
		c.TuplesPage = d.TuplesPage
	}
	if c.CompareCPU == 0 {
		c.CompareCPU = d.CompareCPU
	}
	return c
}

// Model is the differential-file recovery model.
type Model struct {
	machine.Base
	cfg Config

	rng        *sim.RNG
	regionA    int // first physical page of the A region
	regionD    int // first physical page of the D region
	regionSize int // pages per region
	appendPos  int // append cursor into the A region

	aReads    int64
	dReads    int64
	appends   int64
	setDiffed int64
	skipped   int64
}

// New returns a differential-file model with cfg (zero fields defaulted).
func New(cfg Config) *Model {
	return &Model{cfg: cfg.withDefaults()}
}

// Name implements machine.Model.
func (d *Model) Name() string {
	return fmt.Sprintf("difffile(%s,%.0f%%,out%.0f%%)",
		d.cfg.Strategy, d.cfg.DiffFrac*100, d.cfg.OutputFrac*100)
}

// ExtraPhysPages implements machine.SpaceRequirer: space for the A and D
// files plus slack for appends.
func (d *Model) ExtraPhysPages(cfg machine.Config) int {
	region := int(float64(cfg.Workload.DBPages)*d.cfg.DiffFrac) + cfg.Workload.DBPages/20
	return 2 * region
}

// Attach implements machine.Model.
func (d *Model) Attach(m *machine.Machine) {
	d.Base.Attach(m)
	reg := m.Obs().Reg
	reg.Func("diff.aReads", func() float64 { return float64(d.aReads) })
	reg.Func("diff.dReads", func() float64 { return float64(d.dReads) })
	reg.Func("diff.appends", func() float64 { return float64(d.appends) })
	reg.Func("diff.setDiffed", func() float64 { return float64(d.setDiffed) })
	d.rng = m.RNG().Fork()
	start := m.Place().ExtraRegionStart()
	d.regionSize = (m.Place().PhysPages() - start) / 2
	d.regionA = start
	d.regionD = start + d.regionSize
}

// Plan implements machine.Model: read the transaction's D pages, then every
// B page, then its A pages; no page is updated in place.
func (d *Model) Plan(t *machine.ActiveTxn) []machine.PlannedRead {
	cfg := d.M.Cfg()
	n := len(t.T.Reads)
	nDiff := int(float64(n)*d.cfg.DiffFrac + 0.999999)
	if nDiff < 1 {
		nDiff = 1
	}
	// CPU cost of one set-difference: page tuples x transaction's D tuples.
	dTuples := nDiff * d.cfg.TuplesPage
	setDiff := sim.Time(d.cfg.TuplesPage*dTuples) * d.cfg.CompareCPU
	// Larger differential files contain more matching tuples, so more pages
	// yield at least one result tuple and require the set-difference.
	hit := d.cfg.HitFrac * math.Sqrt(d.cfg.DiffFrac/0.10)
	if hit > 1 {
		hit = 1
	}

	plan := make([]machine.PlannedRead, 0, n+2*nDiff)
	for i := 0; i < nDiff; i++ {
		phys := d.regionD + d.rng.Intn(d.regionSize)
		d.dReads++
		plan = append(plan, machine.PlannedRead{
			Page:      -1,
			PhysPages: []int{phys},
			CPU:       cfg.CPUPerPage,
		})
	}
	scanCPU := func(update bool) sim.Time {
		cpu := cfg.CPUPerPage
		if update {
			cpu += cfg.CPUPerUpdate
		}
		switch d.cfg.Strategy {
		case Basic:
			d.setDiffed++
			cpu += setDiff
		case Optimal:
			if d.rng.Bool(hit) {
				d.setDiffed++
				cpu += setDiff
			} else {
				d.skipped++
			}
		}
		return cpu
	}
	for _, p := range t.T.Reads {
		plan = append(plan, machine.PlannedRead{
			Page:      p,
			PhysPages: []int{d.M.DBPhys(p)},
			CPU:       scanCPU(t.T.Writes[p]),
		})
	}
	for i := 0; i < nDiff; i++ {
		phys := d.regionA + d.rng.Intn(d.regionSize)
		d.aReads++
		plan = append(plan, machine.PlannedRead{
			Page:      -1,
			PhysPages: []int{phys},
			CPU:       scanCPU(false),
		})
	}
	return plan
}

// BeforeCommit implements machine.Model: the transaction's output pages —
// OutputFrac of a page per updated page, aggregated — are appended to the A
// file (with deletion entries folded into the same appended pages).
func (d *Model) BeforeCommit(t *machine.ActiveTxn, done func()) {
	u := t.T.NumWrites()
	if u == 0 {
		done()
		return
	}
	nOut := int(float64(u)*d.cfg.OutputFrac + 0.999999)
	pages := make([]int, nOut)
	for i := range pages {
		pages[i] = d.regionA + d.appendPos
		d.appendPos = (d.appendPos + 1) % d.regionSize
	}
	d.appends += int64(nOut)
	o := d.M.Obs()
	appendStart := d.M.Eng().Now()
	d.M.SubmitPhys(pages, true, func() {
		if o.Tracing() {
			o.Tracer().Span("difffile", "append", appendStart, d.M.Eng().Now(),
				map[string]any{"pages": nOut, "txn": t.ID()})
		}
		// Output pages are partial pages appended to A; they are extra I/O
		// work, not processed data pages, so they do not enter the
		// pages-processed denominator.
		d.M.NoteTxnWrite(t)
		done()
	})
}

// Stats implements machine.Model.
func (d *Model) Stats() map[string]float64 {
	return map[string]float64{
		"diff.aReads":    float64(d.aReads),
		"diff.dReads":    float64(d.dReads),
		"diff.appends":   float64(d.appends),
		"diff.setDiffed": float64(d.setDiffed),
		"diff.skipped":   float64(d.skipped),
	}
}

var _ machine.SpaceRequirer = (*Model)(nil)
