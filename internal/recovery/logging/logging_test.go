package logging

import (
	"testing"

	"repro/internal/machine"
)

func smallConfig() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.NumTxns = 10
	cfg.Workload.MaxPages = 60
	return cfg
}

func TestLoggingRunsToCompletion(t *testing.T) {
	res, err := machine.Run(smallConfig(), New(Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 10 {
		t.Fatalf("committed = %d", res.Committed)
	}
	if res.Extra["log.frags"] == 0 {
		t.Fatal("no log fragments recorded")
	}
	if res.Extra["log.diskUtil"] <= 0 {
		t.Fatal("log disk never used")
	}
}

func TestLogicalLoggingBarelyAffectsThroughput(t *testing.T) {
	cfg := machine.DefaultConfig() // full Table 1 load to keep noise down
	bare, err := machine.Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	logged, err := machine.Run(cfg, New(Config{}))
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 1: logical logging changes execution time per page by only
	// a few percent.
	ratio := logged.ExecPerPageMs / bare.ExecPerPageMs
	if ratio > 1.10 {
		t.Fatalf("logical logging degraded throughput %.1f%%", (ratio-1)*100)
	}
	// But completion time goes up (pages wait for log records). Allow a
	// little scheduling noise.
	if logged.MeanCompletionMs < bare.MeanCompletionMs*0.99 {
		t.Fatalf("completion with logging (%.1f) below bare (%.1f)",
			logged.MeanCompletionMs, bare.MeanCompletionMs)
	}
	if logged.MeanBlocked <= 0 {
		t.Fatal("no pages ever waited for log records")
	}
}

func TestLogDiskUtilizationLow(t *testing.T) {
	// Paper Table 2: one log disk is nearly idle under logical logging.
	res, err := machine.Run(smallConfig(), New(Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if u := res.Extra["log.diskUtil"]; u > 0.15 {
		t.Fatalf("log disk utilization %.2f, paper says ~0.02", u)
	}
}

func TestPhysicalLoggingDegradesParallelSequential(t *testing.T) {
	// Paper Table 3 setting (scaled down): physical logging with one log
	// disk bottlenecks the machine; more log disks recover throughput.
	cfg := machine.DefaultConfig()
	cfg.QueryProcessors = 75
	cfg.CacheFrames = 150
	cfg.ParallelDisks = true
	cfg.Workload.Sequential = true
	cfg.NumTxns = 12
	cfg.Workload.MaxPages = 120

	bare, err := machine.Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	one, err := machine.Run(cfg, New(Config{Mode: Physical, LogProcessors: 1}))
	if err != nil {
		t.Fatal(err)
	}
	three, err := machine.Run(cfg, New(Config{Mode: Physical, LogProcessors: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if one.ExecPerPageMs < bare.ExecPerPageMs*2 {
		t.Fatalf("physical logging with 1 disk too cheap: %.2f vs bare %.2f",
			one.ExecPerPageMs, bare.ExecPerPageMs)
	}
	if three.ExecPerPageMs >= one.ExecPerPageMs {
		t.Fatalf("3 log disks (%.2f) not faster than 1 (%.2f)",
			three.ExecPerPageMs, one.ExecPerPageMs)
	}
	// With one log disk it is the bottleneck.
	if u := one.Extra["log.disk0.util"]; u < 0.8 {
		t.Fatalf("single log disk not saturated: %.2f", u)
	}
}

func TestSelectionAlgorithms(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.QueryProcessors = 75
	cfg.CacheFrames = 150
	cfg.ParallelDisks = true
	cfg.Workload.Sequential = true
	cfg.NumTxns = 16

	exec := map[Selection]float64{}
	for _, sel := range []Selection{Cyclic, Random, QpNoMod, TranNoMod} {
		res, err := machine.Run(cfg, New(Config{Mode: Physical, LogProcessors: 5, Selection: sel}))
		if err != nil {
			t.Fatalf("%v: %v", sel, err)
		}
		exec[sel] = res.ExecPerPageMs
	}
	// Paper Table 3: TranNoMod is the loser with few concurrent transactions
	// (only MPL of the 5 log disks ever carry load).
	if exec[TranNoMod] < exec[Cyclic]*1.05 {
		t.Fatalf("tranno-mod (%.2f) not clearly worse than cyclic (%.2f); paper says it loses",
			exec[TranNoMod], exec[Cyclic])
	}
}

func TestRoutingViaCacheWorks(t *testing.T) {
	cfg := smallConfig()
	res, err := machine.Run(cfg, New(Config{Routing: ViaCache}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != cfg.NumTxns {
		t.Fatalf("committed = %d", res.Committed)
	}
	if res.Extra["log.routeUtil"] < 0 {
		t.Fatal("route stats missing")
	}
	// Paper 4.1.3: routing through the cache does not hurt performance.
	ded, err := machine.Run(cfg, New(Config{Routing: DedicatedNet}))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecPerPageMs > ded.ExecPerPageMs*1.1 {
		t.Fatalf("cache routing degraded throughput: %.2f vs %.2f",
			res.ExecPerPageMs, ded.ExecPerPageMs)
	}
}

func TestBandwidthInsensitivity(t *testing.T) {
	// Paper 4.1.3: 1.0 vs 0.1 MB/s dedicated interconnects perform alike on
	// the standard configuration.
	cfg := smallConfig()
	fast, err := machine.Run(cfg, New(Config{NetBandwidthMBs: 1.0}))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := machine.Run(cfg, New(Config{NetBandwidthMBs: 0.1}))
	if err != nil {
		t.Fatal(err)
	}
	if slow.ExecPerPageMs > fast.ExecPerPageMs*1.1 {
		t.Fatalf("0.1 MB/s degraded throughput: %.2f vs %.2f",
			slow.ExecPerPageMs, fast.ExecPerPageMs)
	}
}

func TestSelectionStringer(t *testing.T) {
	if Cyclic.String() != "cyclic" || TranNoMod.String() != "tranno-mod" {
		t.Fatal("selection names wrong")
	}
	if Logical.String() != "logical" || Physical.String() != "physical" {
		t.Fatal("mode names wrong")
	}
}

func TestAbortUndoIO(t *testing.T) {
	cfg := smallConfig()
	cfg.AbortFrac = 0.5
	res, err := machine.Run(cfg, New(Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted == 0 {
		t.Fatal("no aborts happened")
	}
	if res.Extra["log.undoWrites"] == 0 {
		t.Fatal("aborting transactions performed no undo writes")
	}
	if res.Extra["log.undoReads"] == 0 {
		t.Fatal("aborting transactions read no log pages back")
	}
}

func TestAbortUnderPhysicalLogging(t *testing.T) {
	cfg := smallConfig()
	cfg.AbortFrac = 0.4
	res, err := machine.Run(cfg, New(Config{Mode: Physical}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed+res.Aborted != cfg.NumTxns {
		t.Fatalf("finished %d+%d", res.Committed, res.Aborted)
	}
	// Physical logging reads one before-image page per undone update.
	if res.Extra["log.undoReads"] < res.Extra["log.undoWrites"] {
		t.Fatalf("physical undo should read >= one log page per write: %v reads, %v writes",
			res.Extra["log.undoReads"], res.Extra["log.undoWrites"])
	}
}

func TestCommitForcesPartialPages(t *testing.T) {
	res, err := machine.Run(smallConfig(), New(Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Extra["log.forcedSeals"] == 0 {
		t.Fatal("no forced log-page seals; commits must force partial pages")
	}
}
