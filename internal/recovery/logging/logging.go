// Package logging implements the paper's parallel-logging recovery
// architecture (Section 3.1): N log processors, each with a log disk, that
// assemble log fragments from the query processors into log pages. Updated
// data pages are blocked in the disk cache until their log records reach the
// log disk (the write-ahead rule), and commits force the partially-filled
// log pages holding the transaction's fragments.
//
// Both logical logging (small fragments, ten to a log page) and physical
// logging (a before-image page and an after-image page per update) are
// modeled, along with the four log-processor selection algorithms of
// Table 3 and the two query-processor/log-processor interconnects of
// Section 4.1.3 (a dedicated network of configurable bandwidth, or routing
// fragments through the disk cache).
package logging

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Mode selects logical or physical logging.
type Mode int

const (
	// Logical logs a small fragment per updated page.
	Logical Mode = iota
	// Physical logs full before- and after-image pages per updated page.
	Physical
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Physical {
		return "physical"
	}
	return "logical"
}

// Selection is a log-processor selection algorithm (paper Table 3).
type Selection int

const (
	// Cyclic: each query processor cycles among all log processors.
	Cyclic Selection = iota
	// Random: uniform random log processor per fragment.
	Random
	// QpNoMod: query-processor number mod number of log processors.
	QpNoMod
	// TranNoMod: transaction number mod number of log processors.
	TranNoMod
)

// String implements fmt.Stringer.
func (s Selection) String() string {
	switch s {
	case Cyclic:
		return "cyclic"
	case Random:
		return "random"
	case QpNoMod:
		return "qpno-mod"
	case TranNoMod:
		return "tranno-mod"
	}
	return fmt.Sprintf("selection(%d)", int(s))
}

// Routing selects how fragments travel from query to log processors.
type Routing int

const (
	// DedicatedNet uses a separate interconnect of NetBandwidthMBs.
	DedicatedNet Routing = iota
	// ViaCache routes fragments through disk-cache frames.
	ViaCache
)

// Config parameterizes the logging architecture.
type Config struct {
	LogProcessors    int
	Mode             Mode
	Selection        Selection
	Routing          Routing
	NetBandwidthMBs  float64  // dedicated interconnect bandwidth (default 1.0)
	FragmentBytes    int      // logical fragment size (default 400)
	PageBytes        int      // log page size (default 4096)
	FragCPU          sim.Time // QP time to build a logical fragment (default 1 ms)
	PhysCPU          sim.Time // QP time to build before/after images (default 2 ms)
	RouteCPU         sim.Time // extra QP time when routing via the cache
	LogDiskCylinders int      // log disk size (default 80 cylinders)

	// CheckpointEvery, when positive, takes a system checkpoint at that
	// virtual-time interval. With QuiescingCheckpoint the machine stops
	// admitting transactions and drains first (the naive scheme); without
	// it the checkpoint runs in parallel with normal processing, as the
	// paper's reference [13] prescribes.
	CheckpointEvery     sim.Time
	QuiescingCheckpoint bool
}

// DefaultConfig is one log processor doing logical logging over a dedicated
// 1 MB/s interconnect — the Table 1 configuration.
func DefaultConfig() Config {
	return Config{
		LogProcessors:    1,
		Mode:             Logical,
		Selection:        Cyclic,
		Routing:          DedicatedNet,
		NetBandwidthMBs:  1.0,
		FragmentBytes:    400,
		PageBytes:        4096,
		FragCPU:          sim.Ms(1),
		PhysCPU:          sim.Ms(2),
		RouteCPU:         sim.Ms(0.5),
		LogDiskCylinders: 80,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.LogProcessors == 0 {
		c.LogProcessors = d.LogProcessors
	}
	if c.NetBandwidthMBs == 0 {
		c.NetBandwidthMBs = d.NetBandwidthMBs
	}
	if c.FragmentBytes == 0 {
		c.FragmentBytes = d.FragmentBytes
	}
	if c.PageBytes == 0 {
		c.PageBytes = d.PageBytes
	}
	if c.FragCPU == 0 {
		c.FragCPU = d.FragCPU
	}
	if c.PhysCPU == 0 {
		c.PhysCPU = d.PhysCPU
	}
	if c.RouteCPU == 0 {
		c.RouteCPU = d.RouteCPU
	}
	if c.LogDiskCylinders == 0 {
		c.LogDiskCylinders = d.LogDiskCylinders
	}
	return c
}

type fragment struct {
	t       *machine.ActiveTxn
	release func()
}

type logPage struct {
	frags []*fragment
}

type logProcessor struct {
	idx      int
	disk     disk.Device
	nextPage int
	capacity int
	current  *logPage
	writes   int64
}

// Model is the parallel-logging recovery model. Create with New and pass to
// machine.Run.
type Model struct {
	machine.Base
	cfg Config

	lps       []*logProcessor
	net       *sim.Resource
	route     *sim.Resource
	rng       *sim.RNG
	cyclicIdx []int // per query processor

	unflushed  map[*machine.ActiveTxn]int
	committing map[*machine.ActiveTxn]func()
	updates    map[*machine.ActiveTxn][]int // home pages updated so far

	fragsSent   int64
	forcedSeals int64
	fullSeals   int64
	undoReads   int64
	undoWrites  int64
	checkpoints int64
}

// New returns a logging model with cfg (zero fields take defaults).
func New(cfg Config) *Model {
	return &Model{
		cfg:        cfg.withDefaults(),
		unflushed:  make(map[*machine.ActiveTxn]int),
		committing: make(map[*machine.ActiveTxn]func()),
		updates:    make(map[*machine.ActiveTxn][]int),
	}
}

// Name implements machine.Model.
func (l *Model) Name() string {
	return fmt.Sprintf("logging(%s,%d,%s)", l.cfg.Mode, l.cfg.LogProcessors, l.cfg.Selection)
}

// Attach implements machine.Model.
func (l *Model) Attach(m *machine.Machine) {
	l.Base.Attach(m)
	l.rng = m.RNG().Fork()
	l.cyclicIdx = make([]int, m.Cfg().QueryProcessors)
	for i := 0; i < l.cfg.LogProcessors; i++ {
		d := m.NewAuxDisk(fmt.Sprintf("log%d", i), l.cfg.LogDiskCylinders)
		l.lps = append(l.lps, &logProcessor{
			idx:      i,
			disk:     d,
			capacity: d.Geom().Capacity(),
		})
	}
	switch l.cfg.Routing {
	case DedicatedNet:
		l.net = sim.NewResource(m.Eng(), "log-net", 1)
		m.ObserveResource(l.net)
	case ViaCache:
		// A handful of reserved frames carry in-transit fragments; the
		// paper found the cache path is never the constraint.
		l.route = sim.NewResource(m.Eng(), "log-route", 4)
		m.ObserveResource(l.route)
	}
	reg := m.Obs().Reg
	reg.Func("log.frags", func() float64 { return float64(l.fragsSent) })
	reg.Func("log.forcedSeals", func() float64 { return float64(l.forcedSeals) })
	reg.Func("log.fullSeals", func() float64 { return float64(l.fullSeals) })
	reg.Func("log.checkpoints", func() float64 { return float64(l.checkpoints) })
	if l.cfg.CheckpointEvery > 0 {
		l.scheduleCheckpoint()
	}
}

// scheduleCheckpoint arms the next checkpoint tick; ticks stop once the
// load has finished so the event queue can drain.
func (l *Model) scheduleCheckpoint() {
	l.M.Eng().After(l.cfg.CheckpointEvery, func() {
		if l.M.Finished() {
			return
		}
		l.takeCheckpoint(func() {
			if !l.M.Finished() {
				l.scheduleCheckpoint()
			}
		})
	})
}

// takeCheckpoint writes a checkpoint record to every log disk. The
// quiescing variant first drains the machine; the parallel variant (the
// paper's reference [13]) overlaps with normal processing.
func (l *Model) takeCheckpoint(done func()) {
	l.checkpoints++
	if o := l.M.Obs(); o.Tracing() {
		kind := "parallel"
		if l.cfg.QuiescingCheckpoint {
			kind = "quiescing"
		}
		o.Tracer().Instant("log", "checkpoint("+kind+")", l.M.Eng().Now())
	}
	perform := func(after func()) {
		l.forceFor(nil) // seal every partial log page
		remaining := len(l.lps)
		for _, lp := range l.lps {
			lp := lp
			pos := lp.nextPage
			lp.nextPage = (lp.nextPage + 1) % lp.capacity
			lp.writes++
			lp.disk.Submit(&disk.Request{Pages: []int{pos}, Write: true, Done: func() {
				remaining--
				if remaining == 0 {
					after()
				}
			}})
		}
	}
	if !l.cfg.QuiescingCheckpoint {
		perform(done)
		return
	}
	l.M.HoldAdmissions()
	l.M.OnQuiescent(func() {
		perform(func() {
			l.M.ReleaseAdmissions()
			done()
		})
	})
}

// Plan implements machine.Model: the standard plan plus the query-processor
// cost of constructing log records.
func (l *Model) Plan(t *machine.ActiveTxn) []machine.PlannedRead {
	plan := l.M.StandardPlan(t)
	extra := l.cfg.FragCPU
	if l.cfg.Mode == Physical {
		extra = l.cfg.PhysCPU
	}
	if l.cfg.Routing == ViaCache {
		extra += l.cfg.RouteCPU
	}
	for i := range plan {
		if plan[i].Update {
			plan[i].CPU += extra
		}
	}
	return plan
}

// transferTime computes the interconnect time for nbytes at the configured
// bandwidth (MB/s => bytes/µs at 1.0).
func (l *Model) transferTime(nbytes int) sim.Time {
	return sim.Time(float64(nbytes) / l.cfg.NetBandwidthMBs)
}

func (l *Model) selectLP(t *machine.ActiveTxn) *logProcessor {
	n := len(l.lps)
	switch l.cfg.Selection {
	case Cyclic:
		qp := t.QP
		i := l.cyclicIdx[qp]
		l.cyclicIdx[qp] = (i + 1) % n
		return l.lps[i%n]
	case Random:
		return l.lps[l.rng.Intn(n)]
	case QpNoMod:
		return l.lps[t.QP%n]
	case TranNoMod:
		return l.lps[t.ID()%n]
	}
	panic("logging: unknown selection algorithm")
}

// UpdateReady implements machine.Model: build the log record, ship it to a
// log processor, and hold the data page until the record is durable.
func (l *Model) UpdateReady(t *machine.ActiveTxn, pr *machine.PlannedRead, release func()) {
	lp := l.selectLP(t)
	l.fragsSent++
	l.unflushed[t]++
	l.updates[t] = append(l.updates[t], pr.WriteTo)
	bytes := l.cfg.FragmentBytes
	if l.cfg.Mode == Physical {
		bytes = 2 * l.cfg.PageBytes
	}
	deliver := func() {
		if l.cfg.Mode == Physical {
			l.deliverPhysical(lp, t, release)
		} else {
			l.deliverLogical(lp, t, release)
		}
	}
	switch l.cfg.Routing {
	case DedicatedNet:
		l.net.Request(l.transferTime(bytes), deliver)
	case ViaCache:
		// Through the cache the transfer runs at memory speed; the frame is
		// occupied for a fixed handoff time.
		l.route.Request(sim.Ms(0.5), deliver)
	}
}

// deliverLogical appends a fragment to the log processor's current page and
// seals the page when full (or immediately if its transaction is already
// committing).
func (l *Model) deliverLogical(lp *logProcessor, t *machine.ActiveTxn, release func()) {
	if lp.current == nil {
		lp.current = &logPage{}
	}
	lp.current.frags = append(lp.current.frags, &fragment{t: t, release: release})
	fragsPerPage := l.cfg.PageBytes / l.cfg.FragmentBytes
	if len(lp.current.frags) >= fragsPerPage {
		l.fullSeals++
		l.seal(lp)
		return
	}
	if _, c := l.committing[t]; c {
		l.forcedSeals++
		l.seal(lp)
	}
}

// deliverPhysical writes the before- and after-image pages as two separate
// log-disk accesses; the data page is released when both are durable.
func (l *Model) deliverPhysical(lp *logProcessor, t *machine.ActiveTxn, release func()) {
	remaining := 2
	for i := 0; i < 2; i++ {
		page := lp.nextPage
		lp.nextPage = (lp.nextPage + 1) % lp.capacity
		lp.writes++
		lp.disk.Submit(&disk.Request{
			Pages: []int{page},
			Write: true,
			Done: func() {
				remaining--
				if remaining == 0 {
					l.recordFlushed(t)
					release()
				}
			},
		})
	}
}

// seal writes the log processor's current page to its log disk and, when the
// write completes, releases every data page whose fragment it carries.
func (l *Model) seal(lp *logProcessor) {
	page := lp.current
	lp.current = nil
	pos := lp.nextPage
	lp.nextPage = (lp.nextPage + 1) % lp.capacity
	lp.writes++
	o := l.M.Obs()
	var start sim.Time
	if o.Tracing() {
		start = l.M.Eng().Now()
	}
	lp.disk.Submit(&disk.Request{
		Pages: []int{pos},
		Write: true,
		Done: func() {
			if o.Tracing() {
				o.Tracer().Span(fmt.Sprintf("log/%d", lp.idx), "log-force",
					start, l.M.Eng().Now(), map[string]any{"frags": len(page.frags)})
			}
			for _, f := range page.frags {
				l.recordFlushed(f.t)
				f.release()
			}
		},
	})
}

// recordFlushed notes one of t's log records reaching stable storage and
// completes t's commit when the last one lands.
func (l *Model) recordFlushed(t *machine.ActiveTxn) {
	l.unflushed[t]--
	if l.unflushed[t] > 0 {
		return
	}
	delete(l.unflushed, t)
	if done, ok := l.committing[t]; ok {
		delete(l.committing, t)
		done()
	}
}

// BeforeCommit implements machine.Model: commit waits until every log record
// of the transaction is on a log disk, forcing partially-filled log pages.
func (l *Model) BeforeCommit(t *machine.ActiveTxn, done func()) {
	delete(l.updates, t)
	if l.unflushed[t] == 0 {
		done()
		return
	}
	l.committing[t] = done
	l.forceFor(t)
}

// OnAbort implements machine.Model: undo with a log is expensive — the
// transaction's log records are forced (undo reads them from stable
// storage), the log pages holding its before-images are read back, each
// updated page is rewritten in place, and an abort record is logged.
func (l *Model) OnAbort(t *machine.ActiveTxn, done func()) {
	homes := l.updates[t]
	delete(l.updates, t)
	if o := l.M.Obs(); o.Tracing() {
		o.Tracer().Instant("log", fmt.Sprintf("undo txn %d (%d pages)", t.ID(), len(homes)),
			l.M.Eng().Now())
	}
	undo := func() {
		if len(homes) == 0 {
			done()
			return
		}
		// Log pages to read back: one per update under physical logging,
		// packed fragments under logical logging.
		nLogPages := len(homes)
		if l.cfg.Mode == Logical {
			perPage := l.cfg.PageBytes / l.cfg.FragmentBytes
			nLogPages = (len(homes) + perPage - 1) / perPage
		}
		l.undoReads += int64(nLogPages)
		remaining := nLogPages
		afterReads := func() {
			// Write the before-images over the updated pages, then log the
			// abort record.
			l.undoWrites += int64(len(homes))
			l.M.SubmitPhys(homes, true, func() {
				l.M.NoteTxnWrite(t)
				lp := l.lps[t.ID()%len(l.lps)]
				pos := lp.nextPage
				lp.nextPage = (lp.nextPage + 1) % lp.capacity
				lp.writes++
				lp.disk.Submit(&disk.Request{Pages: []int{pos}, Write: true, Done: done})
			})
		}
		for i := 0; i < nLogPages; i++ {
			lp := l.lps[i%len(l.lps)]
			// Undo reads seek back into the written log region.
			pos := lp.nextPage - 1 - i/len(l.lps)
			for pos < 0 {
				pos += lp.capacity
			}
			lp.disk.Submit(&disk.Request{Pages: []int{pos}, Done: func() {
				remaining--
				if remaining == 0 {
					afterReads()
				}
			}})
		}
	}
	// The write-ahead rule: records must be stable before undo proceeds.
	if l.unflushed[t] == 0 {
		undo()
		return
	}
	l.committing[t] = undo
	l.forceFor(t)
}

// forceFor seals any partial log page holding fragments of t.
func (l *Model) forceFor(t *machine.ActiveTxn) {
	for _, lp := range l.lps {
		if lp.current == nil {
			continue
		}
		for _, f := range lp.current.frags {
			if t == nil || f.t == t {
				l.forcedSeals++
				l.seal(lp)
				break
			}
		}
	}
}

// OnCachePressure implements machine.Model: the back-end controller needs
// frames, so expedite the log pages blocking this transaction's updates.
func (l *Model) OnCachePressure(t *machine.ActiveTxn) {
	if l.cfg.Mode == Physical {
		return // physical log writes are already queued
	}
	l.forceFor(t)
}

// Stats implements machine.Model.
func (l *Model) Stats() map[string]float64 {
	s := map[string]float64{
		"log.frags":       float64(l.fragsSent),
		"log.forcedSeals": float64(l.forcedSeals),
		"log.fullSeals":   float64(l.fullSeals),
		"log.undoReads":   float64(l.undoReads),
		"log.undoWrites":  float64(l.undoWrites),
		"log.checkpoints": float64(l.checkpoints),
	}
	var util float64
	for _, lp := range l.lps {
		u := lp.disk.Utilization()
		s[fmt.Sprintf("log.disk%d.util", lp.idx)] = u
		s[fmt.Sprintf("log.disk%d.writes", lp.idx)] = float64(lp.writes)
		util += u
	}
	s["log.diskUtil"] = util / float64(len(l.lps))
	if l.net != nil {
		s["log.netUtil"] = l.net.Utilization()
	}
	if l.route != nil {
		s["log.routeUtil"] = l.route.Utilization()
	}
	return s
}
