// Package pagestore provides the stable-storage substrate for the functional
// recovery engines: a page-addressed store with atomic page writes, a
// crash-consistency contract, and fault injection.
//
// A Store models a disk: writes that return nil are durable and survive
// Crash; anything a client keeps in its own memory does not. Each page
// carries a caller-managed version word (used as a pageLSN by the WAL
// engine and as a timestamp by the shadow engines) written atomically with
// the page contents — the moral equivalent of a page header.
//
// The contract is total: EVERY stable-storage operation — Read, Write,
// Delete, and the Exists probe — fails with ErrCrashed while the power is
// off, and every one of them advances the operation sequence a FaultHook
// observes. Nothing is readable from a crashed store, and no operation is
// invisible to a crash sweep.
//
// Store separates the contract from the medium: the crash state, fault
// hooks, budget, and statistics live in Store, while the bytes live behind
// the Backend interface. New builds the in-memory backend (the simulated
// disk the experiments run on); internal/pagestore/filestore implements the
// same contract over a real page file and an on-disk write-ahead log with
// explicit fsync discipline, so the same recovery audits run against bytes
// on disk.
//
// Fault injection: SetWriteBudget arms a countdown; when it reaches zero
// the store "crashes" — every subsequent operation fails with ErrCrashed
// until Reset is called. This lets tests cut power at any mutation
// boundary (writes AND deletes are charged). For systematic crash-point
// sweeps, SetFaultHook installs an arbitrary predicate consulted before
// every read, write, delete, and existence probe; returning true cuts
// power at exactly that operation (see internal/faultinj). File-backed
// stores additionally expose file-operation-granularity injection through
// SetFileHook (torn writes, lost fsyncs; see filefault.go).
package pagestore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// PageID identifies a page in a Store.
type PageID int64

// ErrCrashed is returned once the injected write budget is exhausted (and
// until Reset): the simulated machine has lost power.
var ErrCrashed = errors.New("pagestore: store has crashed (write budget exhausted)")

// ErrNotFound is returned when reading a page that was never written.
var ErrNotFound = errors.New("pagestore: page not found")

// ErrClosed is returned by operations on a store whose backend has been
// closed.
var ErrClosed = errors.New("pagestore: store is closed")

// Op identifies a stable-storage operation presented to a FaultHook.
type Op uint8

// The operations a FaultHook observes. Existence probes (Store.Exists)
// present as OpRead: they read device state even though they transfer no
// page bytes.
const (
	OpRead Op = iota
	OpWrite
	OpDelete
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpDelete:
		return "delete"
	}
	return "op?"
}

// A FaultHook is consulted before every read, write, delete, and existence
// probe on a live store. Returning true cuts power at exactly that
// operation: the op fails with ErrCrashed and the store stays down until
// Reset. seq is the store's monotone operation sequence number (1-based,
// counting every hooked op over the store's whole lifetime — Reset does not
// rewind it), so a sweep can enumerate crash points exhaustively. The hook
// runs with the store's lock held and must not call back into the store.
type FaultHook func(op Op, id PageID, seq int64) bool

// Backend stores the bytes for a Store. The Store owns the crash contract
// (ErrCrashed gating, fault hooks, budget, stats) and calls the backend
// only while live; backends own the medium.
//
// Buffer ownership: Put receives a buffer the backend may retain; Get may
// return an internal buffer (the Store copies before handing it to
// callers).
//
// PowerOff models losing power: whatever the medium would lose, it loses
// now (the in-memory backend loses nothing — its "platter" is the map; the
// file backend drops unsynced bytes and keeps at most a torn prefix of an
// in-flight record). PowerOn models restart: the backend rebuilds its
// state from the medium and reports corruption it cannot recover from.
// Both must be idempotent.
type Backend interface {
	Get(id PageID) (data []byte, version uint64, ok bool)
	Put(id PageID, data []byte, version uint64) error
	Del(id PageID) error
	Has(id PageID) bool
	Len() int
	Keys() []PageID // ascending id order (determinism is part of the contract)
	PowerOff()
	PowerOn() error
	Close() error
}

// memBackend is the volatile simulated disk: a map whose contents survive
// power-off by construction (the map is the platter).
type memBackend struct {
	pages map[PageID]memPage
}

type memPage struct {
	data    []byte
	version uint64
}

func newMemBackend() *memBackend { return &memBackend{pages: make(map[PageID]memPage)} }

func (m *memBackend) Get(id PageID) ([]byte, uint64, bool) {
	p, ok := m.pages[id]
	if !ok {
		return nil, 0, false
	}
	return p.data, p.version, true
}

func (m *memBackend) Put(id PageID, data []byte, version uint64) error {
	m.pages[id] = memPage{data: data, version: version}
	return nil
}

func (m *memBackend) Del(id PageID) error {
	delete(m.pages, id)
	return nil
}

func (m *memBackend) Has(id PageID) bool { _, ok := m.pages[id]; return ok }
func (m *memBackend) Len() int           { return len(m.pages) }

func (m *memBackend) Keys() []PageID {
	out := make([]PageID, 0, len(m.pages))
	for id := range m.pages {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (m *memBackend) PowerOff()      {}
func (m *memBackend) PowerOn() error { return nil }
func (m *memBackend) Close() error   { return nil }

// Store is a simulated disk with a crash-consistency contract. The zero
// value is not usable; create one with New (in-memory) or NewOn (any
// Backend, e.g. filestore.Open). Store is safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	pageSize int
	be       Backend

	writeBudget int64 // -1 = unlimited
	crashed     bool
	closed      bool
	hook        FaultHook
	opSeq       int64

	reads  int64
	writes int64
}

// New returns an in-memory Store for pages of exactly pageSize bytes.
func New(pageSize int) *Store { return NewOn(pageSize, newMemBackend()) }

// NewOn returns a Store for pages of exactly pageSize bytes over backend
// be. The store takes ownership of the backend.
func NewOn(pageSize int, be Backend) *Store {
	if pageSize <= 0 {
		panic("pagestore: page size must be positive")
	}
	if be == nil {
		panic("pagestore: nil backend")
	}
	return &Store{
		pageSize:    pageSize,
		be:          be,
		writeBudget: -1,
	}
}

// Backend returns the store's backend (for experimenters that need the
// medium itself, e.g. to find a file-backed store's directory). Callers
// must not mutate pages through it while the store is in use.
func (s *Store) Backend() Backend {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.be
}

// PageSize reports the page size in bytes.
func (s *Store) PageSize() int { return s.pageSize }

// crash cuts power: the store enters the crashed state and the backend
// applies its medium's loss semantics. Callers hold s.mu.
func (s *Store) crash() {
	s.crashed = true
	s.be.PowerOff()
}

// backendErr translates a backend failure. A backend that reports
// ErrCrashed has had power cut by an injected file fault and has already
// applied its own loss semantics; the store just records the outage.
// Callers hold s.mu.
func (s *Store) backendErr(err error) error {
	if errors.Is(err, ErrCrashed) {
		s.crashed = true
	}
	return err
}

// Write atomically replaces page id with data and its version word. The
// write is durable once Write returns nil. Checks run in contract order —
// crashed, fault hook, size, budget — all under the lock, so even an
// oversize attempt on a crashed store reports ErrCrashed and every attempt
// is visible in the operation sequence.
func (s *Store) Write(id PageID, data []byte, version uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.crashed {
		return ErrCrashed
	}
	if s.fire(OpWrite, id) {
		return ErrCrashed
	}
	if len(data) > s.pageSize {
		return fmt.Errorf("pagestore: page %d: %d bytes exceeds page size %d",
			id, len(data), s.pageSize)
	}
	if s.writeBudget == 0 {
		s.crash()
		return ErrCrashed
	}
	if s.writeBudget > 0 {
		s.writeBudget--
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	if err := s.be.Put(id, buf, version); err != nil {
		return s.backendErr(err)
	}
	s.writes++
	return nil
}

// Read returns a copy of page id and its version word.
func (s *Store) Read(id PageID) ([]byte, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, 0, ErrClosed
	}
	if s.crashed {
		return nil, 0, ErrCrashed
	}
	if s.fire(OpRead, id) {
		return nil, 0, ErrCrashed
	}
	data, version, ok := s.be.Get(id)
	if !ok {
		return nil, 0, ErrNotFound
	}
	s.reads++
	buf := make([]byte, len(data))
	copy(buf, data)
	return buf, version, nil
}

// Exists reports whether page id is currently stored. It is a
// stable-storage operation like any other: it fails with ErrCrashed while
// the power is off and is presented to the fault hook as an OpRead, so a
// crash sweep can cut power at an existence probe (recovery code paths
// such as the overwrite engines' intent-slot scan probe storage this way).
func (s *Store) Exists(id PageID) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, ErrClosed
	}
	if s.crashed {
		return false, ErrCrashed
	}
	if s.fire(OpRead, id) {
		return false, ErrCrashed
	}
	s.reads++
	return s.be.Has(id), nil
}

// Delete removes page id (used by compaction); deleting an absent page is a
// no-op. Deletes are stable-storage mutations: they are charged against the
// write budget and counted in the write statistics exactly like Write, so
// budget-based injection can land on a delete boundary (several commit
// points — the overwrite engines' intent-record removal, the WAL's log
// truncation — ARE deletes).
func (s *Store) Delete(id PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.crashed {
		return ErrCrashed
	}
	if s.fire(OpDelete, id) {
		return ErrCrashed
	}
	if s.writeBudget == 0 {
		s.crash()
		return ErrCrashed
	}
	if s.writeBudget > 0 {
		s.writeBudget--
	}
	if err := s.be.Del(id); err != nil {
		return s.backendErr(err)
	}
	s.writes++
	return nil
}

// fire advances the operation sequence and consults the fault hook; it
// reports true (and cuts power) when the hook fires here. Callers hold
// s.mu.
func (s *Store) fire(op Op, id PageID) bool {
	s.opSeq++
	if s.hook != nil && s.hook(op, id, s.opSeq) {
		s.crash()
		return true
	}
	return false
}

// SetFaultHook installs (or, with nil, removes) the fault hook. Unlike the
// write budget, the hook survives Reset: restoring power does not disarm an
// experimenter's probe, which is what lets sweeps crash a store again in the
// middle of recovery.
func (s *Store) SetFaultHook(h FaultHook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hook = h
}

// OpSeq reports the store's lifetime operation sequence number: the count of
// reads, writes, deletes, and existence probes attempted on a live store so
// far. Reset does not rewind it.
func (s *Store) OpSeq() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.opSeq
}

// SetWriteBudget arms fault injection: after n more successful mutations
// (writes and deletes), the store crashes (all operations fail with
// ErrCrashed until Reset). n < 0 disarms the injection.
func (s *Store) SetWriteBudget(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writeBudget = n
	if n >= 0 && s.crashed {
		// Re-arming implies the experimenter wants further writes counted
		// from a live store.
		s.crashed = false
	}
}

// Crashed reports whether the store is in the crashed state.
func (s *Store) Crashed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed
}

// Reset brings a crashed store back online (power restored). Durable
// contents are preserved — that is the point; the backend reloads them
// from its medium (a no-op for memory, a page-file load plus log replay
// with torn-tail truncation for files) and reports unrecoverable
// corruption as an error. The write budget is disarmed; an installed fault
// hook stays armed (see SetFaultHook).
func (s *Store) Reset() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.crashed = false
	s.writeBudget = -1
	return s.be.PowerOn()
}

// Close releases the backend (flushing and closing any files). Every
// subsequent operation fails with ErrClosed; Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.be.Close()
}

// Stats reports the number of read operations (reads and existence probes)
// and mutations (writes and deletes) served.
func (s *Store) Stats() (reads, writes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reads, s.writes
}

// Pages reports the number of distinct pages stored.
func (s *Store) Pages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.be.Len()
}

// Keys returns the ids of all stored pages in ascending order, so the
// recovery scans and garbage collection built on it visit pages in a
// reproducible sequence.
func (s *Store) Keys() []PageID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.be.Keys()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
