// Package pagestore provides the stable-storage substrate for the functional
// recovery engines: a page-addressed store with atomic page writes, a
// crash-consistency contract, and fault injection.
//
// A Store models a disk: writes that return nil are durable and survive
// Crash; anything a client keeps in its own memory does not. Each page
// carries a caller-managed version word (used as a pageLSN by the WAL
// engine and as a timestamp by the shadow engines) written atomically with
// the page contents — the moral equivalent of a page header.
//
// Fault injection: SetWriteBudget arms a countdown; when it reaches zero
// the store "crashes" — every subsequent operation fails with ErrCrashed
// until Reset is called. This lets tests cut power at any write boundary.
// For systematic crash-point sweeps, SetFaultHook installs an arbitrary
// predicate consulted before every read, write, and delete; returning true
// cuts power at exactly that operation (see internal/faultinj).
package pagestore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// PageID identifies a page in a Store.
type PageID int64

// ErrCrashed is returned once the injected write budget is exhausted (and
// until Reset): the simulated machine has lost power.
var ErrCrashed = errors.New("pagestore: store has crashed (write budget exhausted)")

// ErrNotFound is returned when reading a page that was never written.
var ErrNotFound = errors.New("pagestore: page not found")

type page struct {
	data    []byte
	version uint64
}

// Op identifies a stable-storage operation presented to a FaultHook.
type Op uint8

// The operations a FaultHook observes.
const (
	OpRead Op = iota
	OpWrite
	OpDelete
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpDelete:
		return "delete"
	}
	return "op?"
}

// A FaultHook is consulted before every read, write, and delete on a live
// store. Returning true cuts power at exactly that operation: the op fails
// with ErrCrashed and the store stays down until Reset. seq is the store's
// monotone operation sequence number (1-based, counting every hooked op over
// the store's whole lifetime — Reset does not rewind it), so a sweep can
// enumerate crash points exhaustively. The hook runs with the store's lock
// held and must not call back into the store.
type FaultHook func(op Op, id PageID, seq int64) bool

// Store is an in-memory simulated disk. The zero value is not usable; create
// one with New. Store is safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	pageSize int
	pages    map[PageID]page

	writeBudget int64 // -1 = unlimited
	crashed     bool
	hook        FaultHook
	opSeq       int64

	reads  int64
	writes int64
}

// New returns a Store for pages of exactly pageSize bytes.
func New(pageSize int) *Store {
	if pageSize <= 0 {
		panic("pagestore: page size must be positive")
	}
	return &Store{
		pageSize:    pageSize,
		pages:       make(map[PageID]page),
		writeBudget: -1,
	}
}

// PageSize reports the page size in bytes.
func (s *Store) PageSize() int { return s.pageSize }

// Write atomically replaces page id with data and its version word. The
// write is durable once Write returns nil.
func (s *Store) Write(id PageID, data []byte, version uint64) error {
	if len(data) > s.pageSize {
		return fmt.Errorf("pagestore: page %d: %d bytes exceeds page size %d",
			id, len(data), s.pageSize)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return ErrCrashed
	}
	if s.fire(OpWrite, id) {
		return ErrCrashed
	}
	if s.writeBudget == 0 {
		s.crashed = true
		return ErrCrashed
	}
	if s.writeBudget > 0 {
		s.writeBudget--
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	s.pages[id] = page{data: buf, version: version}
	s.writes++
	return nil
}

// Read returns a copy of page id and its version word.
func (s *Store) Read(id PageID) ([]byte, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return nil, 0, ErrCrashed
	}
	if s.fire(OpRead, id) {
		return nil, 0, ErrCrashed
	}
	p, ok := s.pages[id]
	if !ok {
		return nil, 0, ErrNotFound
	}
	s.reads++
	buf := make([]byte, len(p.data))
	copy(buf, p.data)
	return buf, p.version, nil
}

// Exists reports whether page id has ever been written.
func (s *Store) Exists(id PageID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.pages[id]
	return ok
}

// Delete removes page id (used by compaction); deleting an absent page is a
// no-op.
func (s *Store) Delete(id PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return ErrCrashed
	}
	if s.fire(OpDelete, id) {
		return ErrCrashed
	}
	delete(s.pages, id)
	return nil
}

// fire advances the operation sequence and consults the fault hook; it
// reports true (and marks the store crashed) when the hook cuts power here.
// Callers hold s.mu.
func (s *Store) fire(op Op, id PageID) bool {
	s.opSeq++
	if s.hook != nil && s.hook(op, id, s.opSeq) {
		s.crashed = true
		return true
	}
	return false
}

// SetFaultHook installs (or, with nil, removes) the fault hook. Unlike the
// write budget, the hook survives Reset: restoring power does not disarm an
// experimenter's probe, which is what lets sweeps crash a store again in the
// middle of recovery.
func (s *Store) SetFaultHook(h FaultHook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hook = h
}

// OpSeq reports the store's lifetime operation sequence number: the count of
// reads, writes, and deletes attempted on a live store so far. Reset does
// not rewind it.
func (s *Store) OpSeq() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.opSeq
}

// SetWriteBudget arms fault injection: after n more successful writes, the
// store crashes (all operations fail with ErrCrashed until Reset). n < 0
// disarms the injection.
func (s *Store) SetWriteBudget(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writeBudget = n
	if n >= 0 && s.crashed {
		// Re-arming implies the experimenter wants further writes counted
		// from a live store.
		s.crashed = false
	}
}

// Crashed reports whether the store is in the crashed state.
func (s *Store) Crashed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed
}

// Reset brings a crashed store back online (power restored). Stable
// contents are preserved — that is the point. The write budget is disarmed;
// an installed fault hook stays armed (see SetFaultHook).
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashed = false
	s.writeBudget = -1
}

// Stats reports the number of reads and writes served.
func (s *Store) Stats() (reads, writes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reads, s.writes
}

// Pages reports the number of distinct pages stored.
func (s *Store) Pages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pages)
}

// Keys returns the ids of all stored pages in ascending order, so the
// recovery scans and garbage collection built on it visit pages in a
// reproducible sequence.
func (s *Store) Keys() []PageID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PageID, 0, len(s.pages))
	for id := range s.pages {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
