package pagestore

// File-operation-granularity fault injection. The page-level FaultHook cuts
// power BETWEEN logical operations; a file-backed store additionally has
// interesting failure points INSIDE one logical operation — between the
// write and its fsync, halfway through the bytes of a record, at the fsync
// barrier itself. Backends with a real file surface implement
// FileInjectable and present every file operation to an installed FileHook,
// which chooses a fault for that exact point. The in-memory backend has no
// file surface; SetFileHook reports whether the hook was accepted.

// FileOp identifies a file-level operation presented to a FileHook.
type FileOp uint8

// The file operations a FileHook observes.
const (
	// FileAppend appends one mutation record to the on-disk write-ahead
	// log.
	FileAppend FileOp = iota
	// FileSync is the fsync barrier that makes preceding appends durable.
	FileSync
	// FilePageWrite writes the folded page-file image (the checkpoint that
	// lets the log be truncated). It is made atomic by write-to-temp +
	// fsync + rename.
	FilePageWrite
	// FileTruncate truncates the on-disk log after a successful fold.
	FileTruncate
)

// String implements fmt.Stringer.
func (o FileOp) String() string {
	switch o {
	case FileAppend:
		return "append"
	case FileSync:
		return "sync"
	case FilePageWrite:
		return "pagewrite"
	case FileTruncate:
		return "truncate"
	}
	return "fileop?"
}

// FileFault is a FileHook's verdict for one file operation.
type FileFault uint8

const (
	// FileOK performs the operation normally.
	FileOK FileFault = iota
	// FileCrash cuts power immediately before the operation: none of its
	// bytes reach the medium.
	FileCrash
	// FileTorn cuts power midway through the operation's bytes: a strict
	// prefix of the record persists (a torn page write). Recovery must
	// detect the torn tail by checksum and discard it. For operations
	// with no byte payload (FileSync, FileTruncate) it degrades to
	// FileCrash.
	FileTorn
	// FileLostSync cuts power at the fsync barrier: the preceding
	// unsynced bytes are dropped from the device cache and the sync never
	// completes. The write was never acknowledged, so losing it is
	// contract-clean — recovery simply must cope, exactly as with
	// FileCrash at the same point. For non-sync operations it degrades to
	// FileCrash.
	FileLostSync
	// FileSkipSync models a lying device: the fsync is ACKNOWLEDGED but
	// not performed, so a later power cut silently loses an acknowledged
	// write. This violates the stable-storage contract by construction —
	// it exists so tests can prove the recovery audits detect the
	// violation, and must never appear in a sweep that is expected to
	// pass.
	FileSkipSync
)

// String implements fmt.Stringer.
func (f FileFault) String() string {
	switch f {
	case FileOK:
		return "ok"
	case FileCrash:
		return "crash"
	case FileTorn:
		return "torn"
	case FileLostSync:
		return "lostsync"
	case FileSkipSync:
		return "skipsync"
	}
	return "fault?"
}

// A FileHook is consulted before every file operation of a file-backed
// store. name is the file being operated on (relative to the store's
// directory); seq is the backend's monotone file-operation sequence number
// (1-based over the store's whole lifetime — power cycles do not rewind
// it). The hook runs with the store's lock held and must not call back
// into the store. Like the page-level FaultHook, it survives Reset.
type FileHook func(op FileOp, name string, seq int64) FileFault

// FileInjectable is implemented by backends with a real file surface
// (internal/pagestore/filestore).
type FileInjectable interface {
	SetFileHook(FileHook)
	FileOps() int64
}

// SetFileHook installs (or, with nil, removes) a file-operation fault hook
// on the store's backend. It reports false when the backend has no file
// surface (the in-memory store), true when the hook is armed.
func (s *Store) SetFileHook(h FileHook) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	fi, ok := s.be.(FileInjectable)
	if !ok {
		return false
	}
	fi.SetFileHook(h)
	return true
}

// FileOps reports the backend's lifetime file-operation sequence number,
// and whether the backend has a file surface at all.
func (s *Store) FileOps() (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fi, ok := s.be.(FileInjectable)
	if !ok {
		return 0, false
	}
	return fi.FileOps(), true
}
