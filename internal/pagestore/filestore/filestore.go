// Package filestore implements the pagestore.Backend contract over real
// files: a page file (data.db) plus an append-only on-disk write-ahead log
// (wal.log) with explicit fsync discipline. It converts the repo's
// recovery audits from claims about a map into claims about bytes on disk,
// while keeping the exact crash semantics the audits rely on:
//
//   - A mutation is acknowledged (Put/Del returns nil) only after its log
//     record is on the platter — append, then fsync, then ack.
//   - Power-off loses everything the device had not synced: the file is
//     truncated back to the synced frontier, keeping at most a torn prefix
//     of the record that was in flight.
//   - Power-on reloads the page file, then replays the log sequentially;
//     a torn or corrupt tail is detected by per-record crc32 and truncated
//     away. Replay skips records already folded into the page file (each
//     record carries a monotone sequence number; data.db records the fold
//     horizon), so a crash between fold and log truncation cannot replay
//     stale images over newer ones.
//
// When the log grows past Config.FoldBytes, the store folds: it writes the
// full page image to data.db.tmp, fsyncs, renames over data.db (atomic on
// POSIX), fsyncs the directory, and only then truncates the log. The fold
// runs BEFORE the triggering record is appended, so a crash mid-fold can
// only lose unacknowledged work.
//
// File layout (big-endian, crc32-IEEE):
//
//	wal.log   sequence of records:
//	          seq u64 · op u8 (1=put 2=del) · id u64 · version u64 ·
//	          len u32 · data · crc u32 (over all preceding record bytes)
//	data.db   magic "PAGEDB1\n" · foldSeq u64 · pageSize u32 · count u32 ·
//	          then per page (ascending id):
//	          id u64 · version u64 · len u32 · data · crc u32
//
// Fault injection: the backend implements pagestore.FileInjectable. An
// installed pagestore.FileHook is consulted before every file operation
// (append, sync, fold page-write, log truncate) and can cut power cleanly,
// tear the record's bytes, or lose the sync — see pagestore/filefault.go.
// The backend is not safe for concurrent use by itself; the owning
// pagestore.Store serializes all access.
package filestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/pagestore"
)

const (
	walName  = "wal.log"
	dataName = "data.db"
	tmpName  = "data.db.tmp"

	opPut = 1
	opDel = 2

	// walHdrLen is seq(8) + op(1) + id(8) + version(8) + len(4).
	walHdrLen = 29

	// DefaultFoldBytes is the log size that triggers a fold into the page
	// file.
	DefaultFoldBytes = 1 << 20
)

var dataMagic = [8]byte{'P', 'A', 'G', 'E', 'D', 'B', '1', '\n'}

// ErrCorrupt is wrapped by unrecoverable on-disk corruption (a damaged
// page file; torn log tails are recovered from, not errors).
var ErrCorrupt = errors.New("filestore: corrupt")

// Config tunes a file-backed store.
type Config struct {
	// FoldBytes folds the log into the page file when the log exceeds this
	// many bytes; 0 means DefaultFoldBytes.
	FoldBytes int64
}

type pageRec struct {
	data    []byte
	version uint64
}

// Backend is the file-backed pagestore.Backend. Obtain one through Open /
// OpenConfig, which wrap it in a pagestore.Store.
type Backend struct {
	dir      string
	pageSize int
	fold     int64

	wal *os.File

	// pages mirrors the durable-or-acknowledged state for reads; power-on
	// rebuilds it from the files, so after every crash it reflects exactly
	// the bytes that survived.
	pages   map[pagestore.PageID]pageRec
	nextSeq uint64
	foldSeq uint64

	walSize   int64 // bytes appended (acknowledged into the OS file)
	walSynced int64 // bytes known to be on the platter
	tornStart int64 // offset of a torn in-flight record, -1 when none
	tornLen   int64

	hook    pagestore.FileHook
	fileOps int64

	closed       bool
	folds        int64
	tornDetected int64
}

// Open opens (creating if needed) a file-backed store rooted at dir with
// the default configuration.
func Open(dir string, pageSize int) (*pagestore.Store, error) {
	return OpenConfig(dir, pageSize, Config{})
}

// OpenConfig opens (creating if needed) a file-backed store rooted at dir.
func OpenConfig(dir string, pageSize int, cfg Config) (*pagestore.Store, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("filestore: page size must be positive")
	}
	fold := cfg.FoldBytes
	if fold <= 0 {
		fold = DefaultFoldBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(filepath.Join(dir, walName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	b := &Backend{
		dir:       dir,
		pageSize:  pageSize,
		fold:      fold,
		wal:       wal,
		tornStart: -1,
	}
	if err := b.PowerOn(); err != nil {
		wal.Close()
		return nil, err
	}
	return pagestore.NewOn(pageSize, b), nil
}

// Dir reports the directory holding the store's files.
func (b *Backend) Dir() string { return b.dir }

// Folds reports how many times the log has been folded into the page file.
func (b *Backend) Folds() int64 { return b.folds }

// TornDetected reports how many power-ons truncated a torn or corrupt log
// tail.
func (b *Backend) TornDetected() int64 { return b.tornDetected }

// SetFileHook implements pagestore.FileInjectable.
func (b *Backend) SetFileHook(h pagestore.FileHook) { b.hook = h }

// FileOps implements pagestore.FileInjectable.
func (b *Backend) FileOps() int64 { return b.fileOps }

// fire presents one file operation to the hook, degrading faults that do
// not apply to this operation kind (a sync has no bytes to tear; only a
// sync can be lost or lyingly skipped).
func (b *Backend) fire(op pagestore.FileOp, name string) pagestore.FileFault {
	b.fileOps++
	if b.hook == nil {
		return pagestore.FileOK
	}
	f := b.hook(op, name, b.fileOps)
	switch op {
	case pagestore.FileAppend, pagestore.FilePageWrite:
		if f == pagestore.FileLostSync {
			f = pagestore.FileCrash
		}
		if f == pagestore.FileSkipSync {
			f = pagestore.FileOK
		}
	case pagestore.FileSync:
		if f == pagestore.FileTorn {
			f = pagestore.FileCrash
		}
	case pagestore.FileTruncate:
		if f == pagestore.FileTorn || f == pagestore.FileLostSync {
			f = pagestore.FileCrash
		}
		if f == pagestore.FileSkipSync {
			f = pagestore.FileOK
		}
	}
	return f
}

// PowerOff applies the medium's loss semantics: unsynced log bytes vanish
// from the device cache, and a torn in-flight record survives only when it
// sits exactly at the synced frontier (otherwise it was behind lost cached
// bytes and is gone too). Idempotent.
func (b *Backend) PowerOff() {
	if b.closed {
		return
	}
	persist := b.walSynced
	if b.tornStart >= 0 && b.tornStart == b.walSynced {
		persist += b.tornLen
	}
	b.wal.Truncate(persist)
	b.wal.Sync()
	b.walSize, b.walSynced = persist, persist
	b.tornStart, b.tornLen = -1, 0
}

// PowerOn rebuilds the in-memory mirror from the files: remove any
// incomplete fold, load the page file, replay the log (skipping records at
// or below the fold horizon), and truncate away a torn or corrupt tail.
func (b *Backend) PowerOn() error {
	if b.closed {
		return pagestore.ErrClosed
	}
	os.Remove(filepath.Join(b.dir, tmpName))

	pages, foldSeq, err := loadDataFile(filepath.Join(b.dir, dataName), b.pageSize)
	if err != nil {
		return err
	}
	b.pages, b.foldSeq = pages, foldSeq

	raw, err := io.ReadAll(io.NewSectionReader(b.wal, 0, 1<<62))
	if err != nil {
		return fmt.Errorf("filestore: reading %s: %w", walName, err)
	}
	off := int64(0)
	maxSeq := foldSeq
	for int64(len(raw))-off >= walHdrLen+4 {
		hdr := raw[off : off+walHdrLen]
		seq := binary.BigEndian.Uint64(hdr[:8])
		op := hdr[8]
		id := pagestore.PageID(binary.BigEndian.Uint64(hdr[9:17]))
		version := binary.BigEndian.Uint64(hdr[17:25])
		n := int64(binary.BigEndian.Uint32(hdr[25:29]))
		if (op != opPut && op != opDel) || n > int64(b.pageSize) ||
			int64(len(raw))-off < walHdrLen+n+4 {
			break // torn or corrupt tail
		}
		body := raw[off+walHdrLen : off+walHdrLen+n]
		want := binary.BigEndian.Uint32(raw[off+walHdrLen+n : off+walHdrLen+n+4])
		if crc32.ChecksumIEEE(raw[off:off+walHdrLen+n]) != want {
			break // torn or corrupt tail
		}
		if seq > foldSeq {
			if op == opPut {
				buf := make([]byte, n)
				copy(buf, body)
				b.pages[id] = pageRec{data: buf, version: version}
			} else {
				delete(b.pages, id)
			}
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		off += walHdrLen + n + 4
	}
	if off < int64(len(raw)) {
		b.tornDetected++
		if err := b.wal.Truncate(off); err != nil {
			return fmt.Errorf("filestore: truncating torn tail of %s: %w", walName, err)
		}
		if err := b.wal.Sync(); err != nil {
			return err
		}
	}
	b.walSize, b.walSynced = off, off
	b.nextSeq = maxSeq + 1
	b.tornStart, b.tornLen = -1, 0
	return nil
}

// Close flushes and closes the files. Idempotent.
func (b *Backend) Close() error {
	if b.closed {
		return nil
	}
	b.closed = true
	if err := b.wal.Sync(); err != nil {
		b.wal.Close()
		return err
	}
	return b.wal.Close()
}

func (b *Backend) Get(id pagestore.PageID) ([]byte, uint64, bool) {
	p, ok := b.pages[id]
	if !ok {
		return nil, 0, false
	}
	return p.data, p.version, true
}

func (b *Backend) Has(id pagestore.PageID) bool { _, ok := b.pages[id]; return ok }
func (b *Backend) Len() int                     { return len(b.pages) }

func (b *Backend) Keys() []pagestore.PageID {
	out := make([]pagestore.PageID, 0, len(b.pages))
	for id := range b.pages {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (b *Backend) Put(id pagestore.PageID, data []byte, version uint64) error {
	return b.appendRec(opPut, id, data, version)
}

func (b *Backend) Del(id pagestore.PageID) error {
	return b.appendRec(opDel, id, nil, 0)
}

// appendRec is the single mutation path: fold if due, append the record,
// fsync, acknowledge, then update the mirror. The fold runs before the
// append so a mid-fold crash only ever loses the not-yet-acknowledged
// record.
func (b *Backend) appendRec(op byte, id pagestore.PageID, data []byte, version uint64) error {
	if b.closed {
		return pagestore.ErrClosed
	}
	if b.walSize >= b.fold {
		if err := b.foldNow(); err != nil {
			return err
		}
	}
	rec := encodeWalRec(b.nextSeq, op, id, version, data)
	switch b.fire(pagestore.FileAppend, walName) {
	case pagestore.FileCrash:
		b.PowerOff()
		return pagestore.ErrCrashed
	case pagestore.FileTorn:
		// A strict prefix of the record reaches the platter before the
		// lights go out.
		pfx := rec[:len(rec)/2]
		b.wal.WriteAt(pfx, b.walSize)
		b.tornStart, b.tornLen = b.walSize, int64(len(pfx))
		b.PowerOff()
		return pagestore.ErrCrashed
	}
	if _, err := b.wal.WriteAt(rec, b.walSize); err != nil {
		return fmt.Errorf("filestore: appending to %s: %w", walName, err)
	}
	b.walSize += int64(len(rec))
	switch b.fire(pagestore.FileSync, walName) {
	case pagestore.FileCrash, pagestore.FileLostSync:
		b.PowerOff()
		return pagestore.ErrCrashed
	case pagestore.FileSkipSync:
		// The lying device: acknowledge without syncing. walSynced stays
		// behind, so the next power-off silently drops this acknowledged
		// record — the contract violation negative tests arm on purpose.
	default:
		if err := b.wal.Sync(); err != nil {
			return fmt.Errorf("filestore: fsync %s: %w", walName, err)
		}
		b.walSynced = b.walSize
	}
	b.nextSeq++
	if op == opPut {
		b.pages[id] = pageRec{data: data, version: version}
	} else {
		delete(b.pages, id)
	}
	return nil
}

// foldNow checkpoints the mirror into data.db (write temp, fsync, rename,
// fsync dir) and then truncates the log. data.db carries the sequence
// number of the last folded record, so replay after any crash in this
// window skips exactly the records the fold absorbed.
func (b *Backend) foldNow() error {
	lastSeq := b.nextSeq - 1
	img := encodeDataFile(b.pages, lastSeq, b.pageSize)
	tmpPath := filepath.Join(b.dir, tmpName)
	switch b.fire(pagestore.FilePageWrite, tmpName) {
	case pagestore.FileCrash:
		b.PowerOff()
		return pagestore.ErrCrashed
	case pagestore.FileTorn:
		os.WriteFile(tmpPath, img[:len(img)/2], 0o644)
		b.PowerOff()
		return pagestore.ErrCrashed
	}
	if err := writeFileSync(tmpPath, img); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, filepath.Join(b.dir, dataName)); err != nil {
		return err
	}
	if err := syncDir(b.dir); err != nil {
		return err
	}
	b.foldSeq = lastSeq
	switch b.fire(pagestore.FileTruncate, walName) {
	case pagestore.FileCrash:
		// The fold is durable; only the (now-redundant) log survives. The
		// fold horizon in data.db keeps replay from regressing pages.
		b.PowerOff()
		return pagestore.ErrCrashed
	}
	if err := b.wal.Truncate(0); err != nil {
		return fmt.Errorf("filestore: truncating %s: %w", walName, err)
	}
	if err := b.wal.Sync(); err != nil {
		return err
	}
	b.walSize, b.walSynced = 0, 0
	b.folds++
	return nil
}

func encodeWalRec(seq uint64, op byte, id pagestore.PageID, version uint64, data []byte) []byte {
	rec := make([]byte, 0, walHdrLen+len(data)+4)
	rec = binary.BigEndian.AppendUint64(rec, seq)
	rec = append(rec, op)
	rec = binary.BigEndian.AppendUint64(rec, uint64(id))
	rec = binary.BigEndian.AppendUint64(rec, version)
	rec = binary.BigEndian.AppendUint32(rec, uint32(len(data)))
	rec = append(rec, data...)
	rec = binary.BigEndian.AppendUint32(rec, crc32.ChecksumIEEE(rec))
	return rec
}
