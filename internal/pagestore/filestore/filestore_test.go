package filestore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/pagestore"
)

func openT(t *testing.T, dir string, pageSize int, cfg Config) *pagestore.Store {
	t.Helper()
	s, err := OpenConfig(dir, pageSize, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func backend(t *testing.T, s *pagestore.Store) *Backend {
	t.Helper()
	b, ok := s.Backend().(*Backend)
	if !ok {
		t.Fatalf("backend is %T, want *filestore.Backend", s.Backend())
	}
	return b
}

func TestRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 64, Config{})
	if err := s.Write(7, []byte("hello disk"), 42); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(9, []byte("second"), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(9); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh process: everything acknowledged must come back from the files.
	s2 := openT(t, dir, 64, Config{})
	got, ver, err := s2.Read(7)
	if err != nil || !bytes.Equal(got, []byte("hello disk")) || ver != 42 {
		t.Fatalf("after reopen: %q v%d %v", got, ver, err)
	}
	if ok, _ := s2.Exists(9); ok {
		t.Fatal("deleted page resurrected by reopen")
	}
}

func TestClosedStoreFails(t *testing.T) {
	s := openT(t, t.TempDir(), 64, Config{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(1, []byte("x"), 0); !errors.Is(err, pagestore.ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestFoldAndReplayHorizon(t *testing.T) {
	// A tiny fold threshold forces many folds; the fold horizon must keep
	// log replay from regressing folded pages, across both Reset and a
	// genuine reopen.
	dir := t.TempDir()
	s := openT(t, dir, 32, Config{FoldBytes: 256})
	for i := 0; i < 50; i++ {
		id := pagestore.PageID(i % 7)
		if err := s.Write(id, []byte{byte(i), byte(i >> 8)}, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if backend(t, s).Folds() == 0 {
		t.Fatal("no fold happened below a 256-byte threshold")
	}
	check := func(s *pagestore.Store) {
		t.Helper()
		for id := 0; id < 7; id++ {
			last := 49 - (49-id)%7 + 0 // latest i with i%7 == id
			for i := 49; i >= 0; i-- {
				if i%7 == id {
					last = i
					break
				}
			}
			got, ver, err := s.Read(pagestore.PageID(id))
			if err != nil {
				t.Fatal(err)
			}
			if got[0] != byte(last) || ver != uint64(last) {
				t.Fatalf("page %d = %v v%d, want value of write %d", id, got, ver, last)
			}
		}
	}
	if err := s.Reset(); err != nil { // power-cycle in place
		t.Fatal(err)
	}
	check(s)
	s.Close()
	s2 := openT(t, dir, 32, Config{})
	check(s2)
}

// hookAt returns a FileHook injecting fault f at the n-th file operation
// (counted over the store's lifetime), once.
func hookAt(n int64, f pagestore.FileFault) pagestore.FileHook {
	fired := false
	return func(op pagestore.FileOp, name string, seq int64) pagestore.FileFault {
		if !fired && seq == n {
			fired = true
			return f
		}
		return pagestore.FileOK
	}
}

func TestCrashBetweenWriteAndSync(t *testing.T) {
	// Cut power at the fsync of the second mutation: the first write is
	// acknowledged and must survive; the second was never acknowledged and
	// must be gone after power-on.
	s := openT(t, t.TempDir(), 64, Config{})
	if !s.SetFileHook(hookAt(4, pagestore.FileCrash)) { // ops: append(1) sync(2) append(3) sync(4)
		t.Fatal("file hook rejected")
	}
	if err := s.Write(1, []byte("keep"), 1); err != nil {
		t.Fatal(err)
	}
	err := s.Write(2, []byte("lose"), 1)
	if !errors.Is(err, pagestore.ErrCrashed) {
		t.Fatalf("write at lost sync: %v", err)
	}
	if !s.Crashed() {
		t.Fatal("store not crashed")
	}
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	if got, _, err := s.Read(1); err != nil || string(got) != "keep" {
		t.Fatalf("acknowledged write lost: %q %v", got, err)
	}
	if ok, _ := s.Exists(2); ok {
		t.Fatal("unacknowledged write survived")
	}
}

func TestTornWriteDetectedAndDiscarded(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 64, Config{})
	if err := s.Write(1, []byte("keep"), 1); err != nil {
		t.Fatal(err)
	}
	s.SetFileHook(hookAt(3, pagestore.FileTorn)) // the second append
	if err := s.Write(2, []byte("torn!"), 1); !errors.Is(err, pagestore.ErrCrashed) {
		t.Fatalf("torn write: %v", err)
	}
	// The torn prefix is physically in the file.
	fi, err := os.Stat(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	full := int64(walHdrLen + len("keep") + 4)
	if fi.Size() <= full {
		t.Fatalf("wal.log has %d bytes; expected a torn prefix beyond %d", fi.Size(), full)
	}
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	if backend(t, s).TornDetected() == 0 {
		t.Fatal("torn tail not detected at power-on")
	}
	if got, _, err := s.Read(1); err != nil || string(got) != "keep" {
		t.Fatalf("acknowledged write lost: %q %v", got, err)
	}
	if ok, _ := s.Exists(2); ok {
		t.Fatal("torn write survived")
	}
	// The file was truncated back to the clean prefix.
	if fi, _ := os.Stat(filepath.Join(dir, walName)); fi.Size() != full {
		t.Fatalf("wal.log = %d bytes after truncation, want %d", fi.Size(), full)
	}
}

func TestLostSyncLosesOnlyUnacknowledged(t *testing.T) {
	s := openT(t, t.TempDir(), 64, Config{})
	if err := s.Write(1, []byte("keep"), 1); err != nil {
		t.Fatal(err)
	}
	s.SetFileHook(hookAt(4, pagestore.FileLostSync))
	if err := s.Write(2, []byte("lose"), 1); !errors.Is(err, pagestore.ErrCrashed) {
		t.Fatal("lost sync must fail the write")
	}
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.Exists(2); ok {
		t.Fatal("write whose sync was lost survived")
	}
	if ok, _ := s.Exists(1); !ok {
		t.Fatal("synced write lost")
	}
}

func TestSkipSyncViolatesDurability(t *testing.T) {
	// The lying device: the fsync is acknowledged but skipped. The write
	// returns nil — and a later power cut loses it anyway. This is the
	// negative control proving the store can express (and the audits can
	// catch) a genuine durability violation; see faultinj's
	// TestFileSweepCatchesLyingSync for the audit side.
	s := openT(t, t.TempDir(), 64, Config{})
	fired := false
	s.SetFileHook(func(op pagestore.FileOp, name string, seq int64) pagestore.FileFault {
		if op == pagestore.FileSync && !fired {
			fired = true
			return pagestore.FileSkipSync
		}
		return pagestore.FileOK
	})
	if err := s.Write(1, []byte("acked"), 1); err != nil {
		t.Fatalf("skip-sync write must be (falsely) acknowledged: %v", err)
	}
	// Power cut via the page-level budget.
	s.SetWriteBudget(0)
	if err := s.Write(2, []byte("x"), 1); !errors.Is(err, pagestore.ErrCrashed) {
		t.Fatal("budget crash expected")
	}
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.Exists(1); ok {
		t.Fatal("skip-sync write survived power-off — the test device failed to lie")
	}
}

func TestCrashDuringFold(t *testing.T) {
	// Cut power at the fold's page-file write and at its log truncate; in
	// both cases every acknowledged write must survive power-on.
	for _, fault := range []pagestore.FileFault{pagestore.FileCrash, pagestore.FileTorn} {
		for _, foldOp := range []pagestore.FileOp{pagestore.FilePageWrite, pagestore.FileTruncate} {
			dir := t.TempDir()
			s := openT(t, dir, 32, Config{FoldBytes: 256})
			want := map[pagestore.PageID][]byte{}
			armed := false
			s.SetFileHook(func(op pagestore.FileOp, name string, seq int64) pagestore.FileFault {
				if armed && op == foldOp {
					armed = false
					return fault
				}
				return pagestore.FileOK
			})
			var crashedAt pagestore.PageID = -1
			for i := 0; i < 120 && crashedAt < 0; i++ {
				if i == 40 {
					armed = true // fault the next fold
				}
				id := pagestore.PageID(i % 7)
				data := []byte{byte(i), 0xAB}
				if err := s.Write(id, data, uint64(i)); err != nil {
					if !errors.Is(err, pagestore.ErrCrashed) {
						t.Fatal(err)
					}
					crashedAt = id
					break
				}
				want[id] = data
			}
			if crashedAt < 0 {
				t.Fatalf("fold fault %v@%v never fired", fault, foldOp)
			}
			if err := s.Reset(); err != nil {
				t.Fatal(err)
			}
			for id, data := range want {
				got, _, err := s.Read(id)
				if err != nil || !bytes.Equal(got, data) {
					t.Fatalf("fold fault %v@%v: page %d = %q %v, want %q",
						fault, foldOp, id, got, err, data)
				}
			}
			s.Close()
		}
	}
}

func TestDurabilityPropertyOnFiles(t *testing.T) {
	// The same property the in-memory store guarantees, on real files with
	// file-level crash injection: every acknowledged write survives
	// power-off + power-on.
	f := func(values []uint8, crashOp uint8) bool {
		dir := t.TempDir()
		s, err := OpenConfig(dir, 16, Config{FoldBytes: 128})
		if err != nil {
			return false
		}
		defer s.Close()
		n := int64(crashOp%64) + 1
		fault := pagestore.FileCrash
		if crashOp%3 == 1 {
			fault = pagestore.FileTorn
		} else if crashOp%3 == 2 {
			fault = pagestore.FileLostSync
		}
		s.SetFileHook(hookAt(n, fault))
		acked := map[pagestore.PageID][]byte{}
		for i, v := range values {
			id := pagestore.PageID(i % 8)
			data := []byte{v, byte(i)}
			if err := s.Write(id, data, uint64(i)); err == nil {
				acked[id] = data
			}
		}
		if err := s.Reset(); err != nil {
			return false
		}
		for id, want := range acked {
			got, _, err := s.Read(id)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
