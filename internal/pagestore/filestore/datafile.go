package filestore

// data.db encoding and the fsync plumbing around it. The page file is only
// ever replaced wholesale — write data.db.tmp, fsync, rename, fsync the
// directory — so a reader either sees the old complete image or the new
// complete image, never a torn one. Per-record checksums still guard
// against media corruption.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"

	"repro/internal/pagestore"
)

// dataHdrLen is magic(8) + foldSeq(8) + pageSize(4) + count(4).
const dataHdrLen = 24

// encodeDataFile serializes the full page image, pages in ascending id
// order so the bytes are deterministic for a given state.
func encodeDataFile(pages map[pagestore.PageID]pageRec, foldSeq uint64, pageSize int) []byte {
	ids := make([]pagestore.PageID, 0, len(pages))
	for id := range pages {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	out := make([]byte, 0, dataHdrLen)
	out = append(out, dataMagic[:]...)
	out = binary.BigEndian.AppendUint64(out, foldSeq)
	out = binary.BigEndian.AppendUint32(out, uint32(pageSize))
	out = binary.BigEndian.AppendUint32(out, uint32(len(ids)))
	for _, id := range ids {
		p := pages[id]
		start := len(out)
		out = binary.BigEndian.AppendUint64(out, uint64(id))
		out = binary.BigEndian.AppendUint64(out, p.version)
		out = binary.BigEndian.AppendUint32(out, uint32(len(p.data)))
		out = append(out, p.data...)
		out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(out[start:]))
	}
	return out
}

// loadDataFile reads the page file; a missing file is an empty store. Any
// damage here is unrecoverable corruption (the atomic-replace discipline
// means a crash can never tear this file), reported as ErrCorrupt.
func loadDataFile(path string, pageSize int) (map[pagestore.PageID]pageRec, uint64, error) {
	pages := make(map[pagestore.PageID]pageRec)
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return pages, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	if len(raw) < dataHdrLen || [8]byte(raw[:8]) != dataMagic {
		return nil, 0, fmt.Errorf("%w: %s: bad header", ErrCorrupt, dataName)
	}
	foldSeq := binary.BigEndian.Uint64(raw[8:16])
	if got := int(binary.BigEndian.Uint32(raw[16:20])); got != pageSize {
		return nil, 0, fmt.Errorf("%w: %s: page size %d, store expects %d",
			ErrCorrupt, dataName, got, pageSize)
	}
	count := int(binary.BigEndian.Uint32(raw[20:24]))
	off := dataHdrLen
	for i := 0; i < count; i++ {
		if len(raw)-off < 24 {
			return nil, 0, fmt.Errorf("%w: %s: short page record %d", ErrCorrupt, dataName, i)
		}
		id := pagestore.PageID(binary.BigEndian.Uint64(raw[off : off+8]))
		version := binary.BigEndian.Uint64(raw[off+8 : off+16])
		n := int(binary.BigEndian.Uint32(raw[off+16 : off+20]))
		if n > pageSize || len(raw)-off < 20+n+4 {
			return nil, 0, fmt.Errorf("%w: %s: short page %d data", ErrCorrupt, dataName, id)
		}
		want := binary.BigEndian.Uint32(raw[off+20+n : off+24+n])
		if crc32.ChecksumIEEE(raw[off:off+20+n]) != want {
			return nil, 0, fmt.Errorf("%w: %s: page %d checksum mismatch", ErrCorrupt, dataName, id)
		}
		buf := make([]byte, n)
		copy(buf, raw[off+20:off+20+n])
		pages[id] = pageRec{data: buf, version: version}
		off += 24 + n
	}
	if off != len(raw) {
		return nil, 0, fmt.Errorf("%w: %s: %d trailing bytes", ErrCorrupt, dataName, len(raw)-off)
	}
	return pages, foldSeq, nil
}

// writeFileSync writes data to path and fsyncs it before returning.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
