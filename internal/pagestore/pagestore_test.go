package pagestore

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

// mustExists probes page id on a store expected to be live.
func mustExists(t *testing.T, s *Store, id PageID) bool {
	t.Helper()
	ok, err := s.Exists(id)
	if err != nil {
		t.Fatalf("Exists(%d): %v", id, err)
	}
	return ok
}

func TestReadWriteRoundTrip(t *testing.T) {
	s := New(4096)
	data := []byte("hello recovery")
	if err := s.Write(7, data, 42); err != nil {
		t.Fatal(err)
	}
	got, ver, err := s.Read(7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) || ver != 42 {
		t.Fatalf("got %q v%d", got, ver)
	}
}

func TestReadReturnsCopy(t *testing.T) {
	s := New(64)
	if err := s.Write(1, []byte{1, 2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	a, _, _ := s.Read(1)
	a[0] = 99
	b, _, _ := s.Read(1)
	if b[0] != 1 {
		t.Fatal("Read returned aliased storage")
	}
}

func TestWriteCopiesInput(t *testing.T) {
	s := New(64)
	data := []byte{1, 2, 3}
	if err := s.Write(1, data, 0); err != nil {
		t.Fatal(err)
	}
	data[0] = 99
	got, _, _ := s.Read(1)
	if got[0] != 1 {
		t.Fatal("Write aliased caller buffer")
	}
}

func TestMissingPage(t *testing.T) {
	s := New(64)
	if _, _, err := s.Read(5); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if mustExists(t, s, 5) {
		t.Fatal("absent page exists")
	}
}

func TestOversizedWriteRejected(t *testing.T) {
	s := New(4)
	if err := s.Write(1, []byte("too long"), 0); err == nil {
		t.Fatal("oversized write accepted")
	}
}

func TestWriteBudgetCrash(t *testing.T) {
	s := New(64)
	s.SetWriteBudget(2)
	if err := s.Write(1, []byte("a"), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(2, []byte("b"), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(3, []byte("c"), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("third write err = %v", err)
	}
	if !s.Crashed() {
		t.Fatal("store not crashed")
	}
	// All operations fail while crashed.
	if _, _, err := s.Read(1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read err = %v", err)
	}
	// Reset restores service and preserves stable contents.
	s.Reset()
	got, _, err := s.Read(2)
	if err != nil || string(got) != "b" {
		t.Fatalf("after reset: %q %v", got, err)
	}
	if mustExists(t, s, 3) {
		t.Fatal("failed write became durable")
	}
}

func TestDelete(t *testing.T) {
	s := New(64)
	if err := s.Write(1, []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	if mustExists(t, s, 1) {
		t.Fatal("page still exists")
	}
	if err := s.Delete(99); err != nil {
		t.Fatal("deleting absent page should be a no-op")
	}
}

func TestStats(t *testing.T) {
	s := New(64)
	_ = s.Write(1, []byte("x"), 0)
	_, _, _ = s.Read(1)
	_, _, _ = s.Read(1)
	r, w := s.Stats()
	if r != 2 || w != 1 {
		t.Fatalf("stats = %d reads %d writes", r, w)
	}
	if s.Pages() != 1 {
		t.Fatalf("pages = %d", s.Pages())
	}
}

func TestDurabilityProperty(t *testing.T) {
	// Property: whatever sequence of writes precedes a crash, every write
	// that returned nil is readable (with its exact contents) after Reset.
	f := func(values []uint8, budget uint8) bool {
		s := New(16)
		s.SetWriteBudget(int64(budget % 16))
		acked := map[PageID][]byte{}
		for i, v := range values {
			id := PageID(i % 8)
			data := []byte{v, byte(i)}
			if err := s.Write(id, data, uint64(i)); err == nil {
				acked[id] = data
			}
		}
		s.Reset()
		for id, want := range acked {
			got, _, err := s.Read(id)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	// The store must be safe under concurrent readers and writers (the
	// functional engines hit it from many goroutines).
	s := New(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := PageID(g*1000 + i%16)
				if err := s.Write(id, []byte{byte(g), byte(i)}, uint64(i)); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := s.Read(id); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.Pages() != 8*16 {
		t.Fatalf("pages = %d", s.Pages())
	}
}

func TestFaultHookCutsPowerAtWrite(t *testing.T) {
	s := New(64)
	var seen []Op
	s.SetFaultHook(func(op Op, id PageID, seq int64) bool {
		seen = append(seen, op)
		return op == OpWrite && seq == 3
	})
	if err := s.Write(1, []byte("a"), 0); err != nil { // seq 1
		t.Fatal(err)
	}
	if _, _, err := s.Read(1); err != nil { // seq 2
		t.Fatal(err)
	}
	if err := s.Write(2, []byte("b"), 0); !errors.Is(err, ErrCrashed) { // seq 3
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if !s.Crashed() {
		t.Fatal("store not crashed after hook fired")
	}
	// Down means down: every operation fails, and the hook sees none of them.
	if _, _, err := s.Read(1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read on crashed store: %v", err)
	}
	if len(seen) != 3 {
		t.Fatalf("hook saw %d ops, want 3", len(seen))
	}
	// The faulted write never landed.
	s.Reset()
	if mustExists(t, s, 2) {
		t.Fatal("crashed write became durable")
	}
	if !mustExists(t, s, 1) {
		t.Fatal("pre-crash write lost")
	}
}

func TestFaultHookSurvivesReset(t *testing.T) {
	s := New(64)
	fired := 0
	s.SetFaultHook(func(op Op, id PageID, seq int64) bool {
		if op == OpDelete {
			fired++
			return true
		}
		return false
	})
	if err := s.Delete(1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}
	s.Reset()
	if err := s.Delete(1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-Reset delete: %v", err)
	}
	if fired != 2 {
		t.Fatalf("hook fired %d times, want 2 (hook must survive Reset)", fired)
	}
	s.Reset()
	s.SetFaultHook(nil)
	if err := s.Delete(1); err != nil {
		t.Fatalf("delete after disarm: %v", err)
	}
}

func TestOpSeqMonotoneAcrossReset(t *testing.T) {
	s := New(64)
	var seqs []int64
	s.SetFaultHook(func(op Op, id PageID, seq int64) bool {
		seqs = append(seqs, seq)
		return false
	})
	if err := s.Write(1, []byte("a"), 0); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if _, _, err := s.Read(1); err != nil {
		t.Fatal(err)
	}
	if s.OpSeq() != 2 {
		t.Fatalf("OpSeq = %d, want 2", s.OpSeq())
	}
	for i, want := range []int64{1, 2} {
		if seqs[i] != want {
			t.Fatalf("seqs = %v, want [1 2]", seqs)
		}
	}
}

// --- Regression tests for the crash-contract holes fixed in this change.
// Each of these fails against the previous pagestore: Exists ignored the
// crashed flag and never consulted the fault hook, Delete charged neither
// the write budget nor the write stats, and Write's size check ran before
// the crashed check (outside any contract ordering).

func TestExistsRespectsCrash(t *testing.T) {
	s := New(64)
	if err := s.Write(1, []byte("a"), 0); err != nil {
		t.Fatal(err)
	}
	s.SetWriteBudget(0)
	if err := s.Write(2, []byte("b"), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("budget crash: %v", err)
	}
	// Down means down — an existence probe is a stable-storage read.
	if _, err := s.Exists(1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Exists on crashed store: %v, want ErrCrashed", err)
	}
	s.Reset()
	if !mustExists(t, s, 1) {
		t.Fatal("page lost across reset")
	}
}

func TestExistsFiresHookAndCountsRead(t *testing.T) {
	s := New(64)
	var ops []Op
	s.SetFaultHook(func(op Op, id PageID, seq int64) bool {
		ops = append(ops, op)
		return op == OpRead && seq == 2
	})
	if _, err := s.Exists(5); err != nil { // seq 1: survives
		t.Fatal(err)
	}
	if _, err := s.Exists(5); !errors.Is(err, ErrCrashed) { // seq 2: crashes
		t.Fatalf("hooked Exists: %v, want ErrCrashed", err)
	}
	if len(ops) != 2 || ops[0] != OpRead || ops[1] != OpRead {
		t.Fatalf("hook saw %v, want [OpRead OpRead]", ops)
	}
	s.Reset()
	s.SetFaultHook(nil)
	before, _ := s.Stats()
	mustExists(t, s, 5)
	if after, _ := s.Stats(); after != before+1 {
		t.Fatalf("Exists did not count as a read: %d -> %d", before, after)
	}
}

func TestDeleteChargesBudget(t *testing.T) {
	s := New(64)
	for id := PageID(1); id <= 3; id++ {
		if err := s.Write(id, []byte("x"), 0); err != nil {
			t.Fatal(err)
		}
	}
	s.SetWriteBudget(1)
	if err := s.Delete(1); err != nil { // spends the last budget unit
		t.Fatal(err)
	}
	if err := s.Delete(2); !errors.Is(err, ErrCrashed) {
		t.Fatalf("delete beyond budget: %v, want ErrCrashed", err)
	}
	if !s.Crashed() {
		t.Fatal("store not crashed after budget-exhausted delete")
	}
	s.Reset()
	if mustExists(t, s, 1) {
		t.Fatal("budgeted delete did not stick")
	}
	if !mustExists(t, s, 2) {
		t.Fatal("crashed delete was applied")
	}
}

func TestDeleteCountsAsWrite(t *testing.T) {
	s := New(64)
	if err := s.Write(1, []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	if _, w := s.Stats(); w != 2 {
		t.Fatalf("writes = %d after one write and one delete, want 2", w)
	}
}

func TestWriteChecksCrashBeforeSize(t *testing.T) {
	s := New(4)
	s.SetWriteBudget(0)
	if err := s.Write(1, []byte("x"), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("budget crash: %v", err)
	}
	// An oversize attempt on a crashed store is a crashed-store error, not
	// a size error: the device is off, nothing examines the payload.
	if err := s.Write(2, []byte("way too long"), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("oversize write on crashed store: %v, want ErrCrashed", err)
	}
}

func TestWriteFiresHookBeforeSizeCheck(t *testing.T) {
	s := New(4)
	fired := 0
	s.SetFaultHook(func(op Op, id PageID, seq int64) bool {
		if op == OpWrite {
			fired++
			return true
		}
		return false
	})
	// The attempt itself is a stable-storage operation: the hook sees it
	// (and may cut power there) even though the payload is oversized.
	if err := s.Write(1, []byte("way too long"), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("hooked oversize write: %v, want ErrCrashed", err)
	}
	if fired != 1 {
		t.Fatalf("hook fired %d times, want 1", fired)
	}
}
