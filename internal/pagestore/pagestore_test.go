package pagestore

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestReadWriteRoundTrip(t *testing.T) {
	s := New(4096)
	data := []byte("hello recovery")
	if err := s.Write(7, data, 42); err != nil {
		t.Fatal(err)
	}
	got, ver, err := s.Read(7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) || ver != 42 {
		t.Fatalf("got %q v%d", got, ver)
	}
}

func TestReadReturnsCopy(t *testing.T) {
	s := New(64)
	if err := s.Write(1, []byte{1, 2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	a, _, _ := s.Read(1)
	a[0] = 99
	b, _, _ := s.Read(1)
	if b[0] != 1 {
		t.Fatal("Read returned aliased storage")
	}
}

func TestWriteCopiesInput(t *testing.T) {
	s := New(64)
	data := []byte{1, 2, 3}
	if err := s.Write(1, data, 0); err != nil {
		t.Fatal(err)
	}
	data[0] = 99
	got, _, _ := s.Read(1)
	if got[0] != 1 {
		t.Fatal("Write aliased caller buffer")
	}
}

func TestMissingPage(t *testing.T) {
	s := New(64)
	if _, _, err := s.Read(5); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if s.Exists(5) {
		t.Fatal("absent page exists")
	}
}

func TestOversizedWriteRejected(t *testing.T) {
	s := New(4)
	if err := s.Write(1, []byte("too long"), 0); err == nil {
		t.Fatal("oversized write accepted")
	}
}

func TestWriteBudgetCrash(t *testing.T) {
	s := New(64)
	s.SetWriteBudget(2)
	if err := s.Write(1, []byte("a"), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(2, []byte("b"), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(3, []byte("c"), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("third write err = %v", err)
	}
	if !s.Crashed() {
		t.Fatal("store not crashed")
	}
	// All operations fail while crashed.
	if _, _, err := s.Read(1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read err = %v", err)
	}
	// Reset restores service and preserves stable contents.
	s.Reset()
	got, _, err := s.Read(2)
	if err != nil || string(got) != "b" {
		t.Fatalf("after reset: %q %v", got, err)
	}
	if s.Exists(3) {
		t.Fatal("failed write became durable")
	}
}

func TestDelete(t *testing.T) {
	s := New(64)
	if err := s.Write(1, []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	if s.Exists(1) {
		t.Fatal("page still exists")
	}
	if err := s.Delete(99); err != nil {
		t.Fatal("deleting absent page should be a no-op")
	}
}

func TestStats(t *testing.T) {
	s := New(64)
	_ = s.Write(1, []byte("x"), 0)
	_, _, _ = s.Read(1)
	_, _, _ = s.Read(1)
	r, w := s.Stats()
	if r != 2 || w != 1 {
		t.Fatalf("stats = %d reads %d writes", r, w)
	}
	if s.Pages() != 1 {
		t.Fatalf("pages = %d", s.Pages())
	}
}

func TestDurabilityProperty(t *testing.T) {
	// Property: whatever sequence of writes precedes a crash, every write
	// that returned nil is readable (with its exact contents) after Reset.
	f := func(values []uint8, budget uint8) bool {
		s := New(16)
		s.SetWriteBudget(int64(budget % 16))
		acked := map[PageID][]byte{}
		for i, v := range values {
			id := PageID(i % 8)
			data := []byte{v, byte(i)}
			if err := s.Write(id, data, uint64(i)); err == nil {
				acked[id] = data
			}
		}
		s.Reset()
		for id, want := range acked {
			got, _, err := s.Read(id)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	// The store must be safe under concurrent readers and writers (the
	// functional engines hit it from many goroutines).
	s := New(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := PageID(g*1000 + i%16)
				if err := s.Write(id, []byte{byte(g), byte(i)}, uint64(i)); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := s.Read(id); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.Pages() != 8*16 {
		t.Fatalf("pages = %d", s.Pages())
	}
}

func TestFaultHookCutsPowerAtWrite(t *testing.T) {
	s := New(64)
	var seen []Op
	s.SetFaultHook(func(op Op, id PageID, seq int64) bool {
		seen = append(seen, op)
		return op == OpWrite && seq == 3
	})
	if err := s.Write(1, []byte("a"), 0); err != nil { // seq 1
		t.Fatal(err)
	}
	if _, _, err := s.Read(1); err != nil { // seq 2
		t.Fatal(err)
	}
	if err := s.Write(2, []byte("b"), 0); !errors.Is(err, ErrCrashed) { // seq 3
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if !s.Crashed() {
		t.Fatal("store not crashed after hook fired")
	}
	// Down means down: every operation fails, and the hook sees none of them.
	if _, _, err := s.Read(1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read on crashed store: %v", err)
	}
	if len(seen) != 3 {
		t.Fatalf("hook saw %d ops, want 3", len(seen))
	}
	// The faulted write never landed.
	s.Reset()
	if s.Exists(2) {
		t.Fatal("crashed write became durable")
	}
	if !s.Exists(1) {
		t.Fatal("pre-crash write lost")
	}
}

func TestFaultHookSurvivesReset(t *testing.T) {
	s := New(64)
	fired := 0
	s.SetFaultHook(func(op Op, id PageID, seq int64) bool {
		if op == OpDelete {
			fired++
			return true
		}
		return false
	})
	if err := s.Delete(1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}
	s.Reset()
	if err := s.Delete(1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-Reset delete: %v", err)
	}
	if fired != 2 {
		t.Fatalf("hook fired %d times, want 2 (hook must survive Reset)", fired)
	}
	s.Reset()
	s.SetFaultHook(nil)
	if err := s.Delete(1); err != nil {
		t.Fatalf("delete after disarm: %v", err)
	}
}

func TestOpSeqMonotoneAcrossReset(t *testing.T) {
	s := New(64)
	var seqs []int64
	s.SetFaultHook(func(op Op, id PageID, seq int64) bool {
		seqs = append(seqs, seq)
		return false
	})
	if err := s.Write(1, []byte("a"), 0); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if _, _, err := s.Read(1); err != nil {
		t.Fatal(err)
	}
	if s.OpSeq() != 2 {
		t.Fatalf("OpSeq = %d, want 2", s.OpSeq())
	}
	for i, want := range []int64{1, 2} {
		if seqs[i] != want {
			t.Fatalf("seqs = %v, want [1 2]", seqs)
		}
	}
}
