package pagestore

// Point-in-time snapshots of a single store. A snapshot blob is a
// self-describing byte stream: a full blob carries every page; an
// incremental blob carries the pages that changed relative to a base
// manifest plus the ids deleted since. Every page record carries a crc32
// checksum, so a restore verifies byte integrity record by record, and a
// manifest carries the same checksums so incremental chains can be
// composed and audited without touching a store.
//
// Snapshots are backup-plane operations, deliberately OUTSIDE the
// crash-sweep operation sequence: WriteSnapshot reads and ApplySnapshot
// writes through the backend directly (a file-backed store still performs
// real durable I/O), without consulting the page-level FaultHook, so
// arming a sweep does not perturb backups and vice versa. Both still
// refuse to touch a crashed store.
//
// Blob layout (big-endian):
//
//	magic   "PSSNAP1\n" (8 bytes)
//	kind    u8: 'F' full, 'I' incremental
//	pageSz  u32
//	nputs   u32
//	  per put: id i64 · version u64 · len u32 · data · crc u32
//	           (crc32-IEEE over id‖version‖len‖data as encoded)
//	ndels   u32 (always 0 in a full blob)
//	  per del: id i64
//	delcrc  u32 (crc32-IEEE over the encoded del ids)

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

var snapMagic = [8]byte{'P', 'S', 'S', 'N', 'A', 'P', '1', '\n'}

const (
	snapFull = 'F'
	snapIncr = 'I'
)

// ErrSnapshotCorrupt is wrapped by every snapshot decode failure.
var ErrSnapshotCorrupt = errors.New("pagestore: snapshot corrupt")

// PageMeta is one page's identity in a Manifest: its version word and the
// crc32-IEEE checksum of its contents.
type PageMeta struct {
	Version uint64
	CRC     uint32
}

// Manifest maps every page of a snapshotted state to its meta. A manifest
// is the composition key for incremental chains: WriteSnapshot(w, base)
// emits exactly the records needed to take a restorer from base to the
// store's current state.
type Manifest map[PageID]PageMeta

// Clone returns a copy of m.
func (m Manifest) Clone() Manifest {
	out := make(Manifest, len(m))
	for id, pm := range m {
		out[id] = pm
	}
	return out
}

// putRecord encodes one page record (without the crc trailer).
func putRecord(buf []byte, id PageID, version uint64, data []byte) []byte {
	buf = binary.BigEndian.AppendUint64(buf, uint64(id))
	buf = binary.BigEndian.AppendUint64(buf, version)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(data)))
	buf = append(buf, data...)
	return buf
}

// WriteSnapshot writes a snapshot of the store's current pages to w and
// returns the manifest of that state. base nil requests a full snapshot;
// base non-nil requests an incremental snapshot relative to base (pages
// whose version or checksum differ, plus deletions). The store must be
// live (not crashed, not closed).
func (s *Store) WriteSnapshot(w io.Writer, base Manifest) (Manifest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.crashed {
		return nil, ErrCrashed
	}

	ids := s.be.Keys()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	manifest := make(Manifest, len(ids))
	var puts []PageID
	for _, id := range ids {
		data, version, ok := s.be.Get(id)
		if !ok {
			return nil, fmt.Errorf("pagestore: snapshot: page %d vanished mid-scan", id)
		}
		pm := PageMeta{Version: version, CRC: crc32.ChecksumIEEE(data)}
		manifest[id] = pm
		if bm, ok := base[id]; base == nil || !ok || bm != pm {
			puts = append(puts, id)
		}
	}
	var dels []PageID
	if base != nil {
		for id := range base {
			if !s.be.Has(id) {
				dels = append(dels, id)
			}
		}
		sort.Slice(dels, func(i, j int) bool { return dels[i] < dels[j] })
	}

	bw := bufio.NewWriter(w)
	bw.Write(snapMagic[:])
	kind := byte(snapFull)
	if base != nil {
		kind = snapIncr
	}
	bw.WriteByte(kind)
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(s.pageSize))
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(puts)))
	bw.Write(hdr[:])
	var rec []byte
	for _, id := range puts {
		data, version, _ := s.be.Get(id)
		rec = putRecord(rec[:0], id, version, data)
		bw.Write(rec)
		var crc [4]byte
		binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(rec))
		bw.Write(crc[:])
	}
	var cnt [4]byte
	binary.BigEndian.PutUint32(cnt[:], uint32(len(dels)))
	bw.Write(cnt[:])
	delBytes := make([]byte, 0, 8*len(dels))
	for _, id := range dels {
		delBytes = binary.BigEndian.AppendUint64(delBytes, uint64(id))
	}
	bw.Write(delBytes)
	var dcrc [4]byte
	binary.BigEndian.PutUint32(dcrc[:], crc32.ChecksumIEEE(delBytes))
	bw.Write(dcrc[:])
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return manifest, nil
}

// snapDecoder streams one snapshot blob.
type snapDecoder struct {
	r        *bufio.Reader
	kind     byte
	pageSize int
	nputs    int
}

func openSnapshot(r io.Reader) (*snapDecoder, error) {
	br := bufio.NewReader(r)
	var hdr [17]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrSnapshotCorrupt, err)
	}
	if [8]byte(hdr[:8]) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrSnapshotCorrupt)
	}
	kind := hdr[8]
	if kind != snapFull && kind != snapIncr {
		return nil, fmt.Errorf("%w: unknown kind %q", ErrSnapshotCorrupt, kind)
	}
	return &snapDecoder{
		r:        br,
		kind:     kind,
		pageSize: int(binary.BigEndian.Uint32(hdr[9:13])),
		nputs:    int(binary.BigEndian.Uint32(hdr[13:17])),
	}, nil
}

// readPut decodes the next page record, verifying its crc.
func (d *snapDecoder) readPut() (PageID, uint64, []byte, error) {
	var fixed [20]byte
	if _, err := io.ReadFull(d.r, fixed[:]); err != nil {
		return 0, 0, nil, fmt.Errorf("%w: short page record: %v", ErrSnapshotCorrupt, err)
	}
	n := binary.BigEndian.Uint32(fixed[16:20])
	if int(n) > d.pageSize {
		return 0, 0, nil, fmt.Errorf("%w: record length %d exceeds page size %d",
			ErrSnapshotCorrupt, n, d.pageSize)
	}
	rest := make([]byte, int(n)+4)
	if _, err := io.ReadFull(d.r, rest); err != nil {
		return 0, 0, nil, fmt.Errorf("%w: short page data: %v", ErrSnapshotCorrupt, err)
	}
	data := rest[:n]
	crc := crc32.ChecksumIEEE(fixed[:])
	crc = crc32.Update(crc, crc32.IEEETable, data)
	if got := binary.BigEndian.Uint32(rest[n:]); got != crc {
		return 0, 0, nil, fmt.Errorf("%w: page %d checksum mismatch",
			ErrSnapshotCorrupt, int64(binary.BigEndian.Uint64(fixed[:8])))
	}
	id := PageID(binary.BigEndian.Uint64(fixed[:8]))
	version := binary.BigEndian.Uint64(fixed[8:16])
	return id, version, data, nil
}

// readDels decodes and verifies the deletion section.
func (d *snapDecoder) readDels() ([]PageID, error) {
	var cnt [4]byte
	if _, err := io.ReadFull(d.r, cnt[:]); err != nil {
		return nil, fmt.Errorf("%w: short del count: %v", ErrSnapshotCorrupt, err)
	}
	n := int(binary.BigEndian.Uint32(cnt[:]))
	raw := make([]byte, 8*n)
	if _, err := io.ReadFull(d.r, raw); err != nil {
		return nil, fmt.Errorf("%w: short del section: %v", ErrSnapshotCorrupt, err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(d.r, crc[:]); err != nil {
		return nil, fmt.Errorf("%w: short del checksum: %v", ErrSnapshotCorrupt, err)
	}
	if binary.BigEndian.Uint32(crc[:]) != crc32.ChecksumIEEE(raw) {
		return nil, fmt.Errorf("%w: del section checksum mismatch", ErrSnapshotCorrupt)
	}
	out := make([]PageID, n)
	for i := range out {
		out[i] = PageID(binary.BigEndian.Uint64(raw[8*i:]))
	}
	return out, nil
}

// ApplySnapshot applies one snapshot blob to the store: a full blob
// replaces the store's contents wholesale; an incremental blob patches
// them (and must be applied on top of the state its base manifest
// described). Every record's checksum is verified before any byte is
// written, then the mutations go through the backend — on a file-backed
// store the restore is itself durable. The store must be live.
func (s *Store) ApplySnapshot(r io.Reader) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.crashed {
		return ErrCrashed
	}
	d, err := openSnapshot(r)
	if err != nil {
		return err
	}
	if d.pageSize != s.pageSize {
		return fmt.Errorf("%w: snapshot page size %d, store page size %d",
			ErrSnapshotCorrupt, d.pageSize, s.pageSize)
	}
	type put struct {
		id      PageID
		version uint64
		data    []byte
	}
	puts := make([]put, 0, d.nputs)
	for i := 0; i < d.nputs; i++ {
		id, version, data, err := d.readPut()
		if err != nil {
			return err
		}
		buf := make([]byte, len(data))
		copy(buf, data)
		puts = append(puts, put{id: id, version: version, data: buf})
	}
	dels, err := d.readDels()
	if err != nil {
		return err
	}
	if d.kind == snapFull {
		if len(dels) != 0 {
			return fmt.Errorf("%w: full snapshot with %d deletions", ErrSnapshotCorrupt, len(dels))
		}
		keep := make(map[PageID]bool, len(puts))
		for _, p := range puts {
			keep[p.id] = true
		}
		ids := s.be.Keys()
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			if !keep[id] {
				if err := s.be.Del(id); err != nil {
					return s.backendErr(err)
				}
			}
		}
	}
	for _, p := range puts {
		if err := s.be.Put(p.id, p.data, p.version); err != nil {
			return s.backendErr(err)
		}
	}
	for _, id := range dels {
		if err := s.be.Del(id); err != nil {
			return s.backendErr(err)
		}
	}
	return nil
}

// SnapshotManifest folds blob r into base without a store: it returns the
// manifest of the state that applying r on top of base would produce
// (verifying every record checksum on the way). For a full blob, base is
// ignored. Use it to chain incremental backups: the manifest of snapshot
// N is the base for snapshot N+1.
func SnapshotManifest(r io.Reader, base Manifest) (Manifest, error) {
	d, err := openSnapshot(r)
	if err != nil {
		return nil, err
	}
	var out Manifest
	if d.kind == snapFull {
		out = make(Manifest, d.nputs)
	} else {
		out = base.Clone()
	}
	for i := 0; i < d.nputs; i++ {
		id, version, data, err := d.readPut()
		if err != nil {
			return nil, err
		}
		out[id] = PageMeta{Version: version, CRC: crc32.ChecksumIEEE(data)}
	}
	dels, err := d.readDels()
	if err != nil {
		return nil, err
	}
	for _, id := range dels {
		delete(out, id)
	}
	return out, nil
}
