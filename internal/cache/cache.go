// Package cache models the database machine's disk cache: a fixed pool of
// page frames shared by all query processors, managed by the back-end
// controller. The machine allocates a frame before reading a page and
// releases it when the page has been processed or written back.
//
// The cache also accounts for the paper's key logging statistic: the number
// of updated pages sitting in the cache waiting for their log records to
// reach stable storage ("blocked" frames).
package cache

import (
	"fmt"

	"repro/internal/sim"
)

// Cache is a frame accountant with FIFO waiting for frame availability.
type Cache struct {
	eng    *sim.Engine
	frames int
	free   int

	waiters []func()

	usedTW    *sim.TimeWeighted
	blockedTW *sim.TimeWeighted
	blocked   int
}

// New returns a cache with the given number of page frames.
func New(eng *sim.Engine, frames int) *Cache {
	if frames <= 0 {
		panic("cache: frame count must be positive")
	}
	return &Cache{
		eng:       eng,
		frames:    frames,
		free:      frames,
		usedTW:    sim.NewTimeWeighted(eng),
		blockedTW: sim.NewTimeWeighted(eng),
	}
}

// Frames reports the total frame count.
func (c *Cache) Frames() int { return c.frames }

// Free reports currently unallocated frames.
func (c *Cache) Free() int { return c.free }

// Used reports currently allocated frames.
func (c *Cache) Used() int { return c.frames - c.free }

// Waiting reports the number of pending Alloc callbacks.
func (c *Cache) Waiting() int { return len(c.waiters) }

// TryAlloc claims a frame immediately if one is free.
func (c *Cache) TryAlloc() bool {
	if c.free == 0 {
		return false
	}
	c.free--
	c.usedTW.Set(float64(c.Used()))
	return true
}

// Alloc claims a frame, invoking grant immediately if one is free or when a
// frame is released otherwise. Grants are FIFO.
func (c *Cache) Alloc(grant func()) {
	if c.TryAlloc() {
		grant()
		return
	}
	c.waiters = append(c.waiters, grant)
}

// Release returns one frame to the pool, handing it to the oldest waiter if
// any.
func (c *Cache) Release() {
	if len(c.waiters) > 0 {
		grant := c.waiters[0]
		c.waiters = c.waiters[1:]
		// Frame passes directly to the waiter; usage is unchanged.
		grant()
		return
	}
	if c.free == c.frames {
		panic(fmt.Sprintf("cache: release with all %d frames free", c.frames))
	}
	c.free++
	c.usedTW.Set(float64(c.Used()))
}

// AdjustBlocked records a change in the number of updated pages blocked in
// the cache waiting for their log records to be written.
func (c *Cache) AdjustBlocked(delta int) {
	c.blocked += delta
	if c.blocked < 0 {
		panic("cache: negative blocked count")
	}
	c.blockedTW.Set(float64(c.blocked))
}

// Blocked reports the current number of blocked updated pages.
func (c *Cache) Blocked() int { return c.blocked }

// MeanBlocked reports the time-weighted mean number of blocked pages — the
// statistic the paper reports as "pages waiting for their log records".
func (c *Cache) MeanBlocked() float64 { return c.blockedTW.Mean() }

// MaxBlocked reports the peak number of blocked pages.
func (c *Cache) MaxBlocked() float64 { return c.blockedTW.Max() }

// MeanUsed reports the time-weighted mean number of allocated frames.
func (c *Cache) MeanUsed() float64 { return c.usedTW.Mean() }
