// Package cache models the database machine's disk cache: a fixed pool of
// page frames shared by all query processors, managed by the back-end
// controller. The machine allocates a frame before reading a page and
// releases it when the page has been processed or written back.
//
// The cache also accounts for the paper's key logging statistic: the number
// of updated pages sitting in the cache waiting for their log records to
// reach stable storage ("blocked" frames).
//
// For observability the cache additionally keeps a residency tracker: an
// LRU set of as many physical page numbers as there are frames, advanced
// by NoteAccess on every data-disk read. It yields hit/miss/eviction
// counters and a hit ratio without changing any timing — the simulated
// machine of the paper always fetches from disk.
package cache

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Cache is a frame accountant with FIFO waiting for frame availability.
type Cache struct {
	eng    *sim.Engine
	frames int
	free   int

	waiters []func()

	usedTW    *sim.TimeWeighted
	blockedTW *sim.TimeWeighted
	blocked   int

	// Residency tracker (observability only; never affects timing).
	resident  map[int]bool
	lru       []int // front is the eviction victim
	hits      int64
	misses    int64
	evictions int64

	allocWaits int64
	sink       *obs.Sink
}

// New returns a cache with the given number of page frames.
func New(eng *sim.Engine, frames int) *Cache {
	if frames <= 0 {
		panic("cache: frame count must be positive")
	}
	return &Cache{
		eng:       eng,
		frames:    frames,
		free:      frames,
		usedTW:    sim.NewTimeWeighted(eng),
		blockedTW: sim.NewTimeWeighted(eng),
		resident:  make(map[int]bool, frames),
	}
}

// Instrument wires the cache into the observability sink: its used and
// blocked trackers become registry gauges and its counters become stats.
func (c *Cache) Instrument(sink *obs.Sink) {
	c.sink = sink
	reg := sink.Reg
	reg.RegisterGauge("cache.used", c.usedTW)
	reg.RegisterGauge("cache.blocked", c.blockedTW)
	reg.Func("cache.hits", func() float64 { return float64(c.hits) })
	reg.Func("cache.misses", func() float64 { return float64(c.misses) })
	reg.Func("cache.evictions", func() float64 { return float64(c.evictions) })
	reg.Func("cache.allocWaits", func() float64 { return float64(c.allocWaits) })
	reg.Func("cache.hitRatio", c.HitRatio)
}

// Frames reports the total frame count.
func (c *Cache) Frames() int { return c.frames }

// Free reports currently unallocated frames.
func (c *Cache) Free() int { return c.free }

// Used reports currently allocated frames.
func (c *Cache) Used() int { return c.frames - c.free }

// Waiting reports the number of pending Alloc callbacks.
func (c *Cache) Waiting() int { return len(c.waiters) }

// TryAlloc claims a frame immediately if one is free.
func (c *Cache) TryAlloc() bool {
	if c.free == 0 {
		return false
	}
	c.free--
	c.usedTW.Set(float64(c.Used()))
	c.traceUsage()
	return true
}

// Alloc claims a frame, invoking grant immediately if one is free or when a
// frame is released otherwise. Grants are FIFO.
func (c *Cache) Alloc(grant func()) {
	if c.TryAlloc() {
		grant()
		return
	}
	c.allocWaits++
	c.waiters = append(c.waiters, grant)
}

// Release returns one frame to the pool, handing it to the oldest waiter if
// any.
func (c *Cache) Release() {
	if len(c.waiters) > 0 {
		grant := c.waiters[0]
		c.waiters = c.waiters[1:]
		// Frame passes directly to the waiter; usage is unchanged.
		grant()
		return
	}
	if c.free == c.frames {
		panic(fmt.Sprintf("cache: release with all %d frames free", c.frames))
	}
	c.free++
	c.usedTW.Set(float64(c.Used()))
	c.traceUsage()
}

// AdjustBlocked records a change in the number of updated pages blocked in
// the cache waiting for their log records to be written.
func (c *Cache) AdjustBlocked(delta int) {
	c.blocked += delta
	if c.blocked < 0 {
		panic("cache: negative blocked count")
	}
	c.blockedTW.Set(float64(c.blocked))
	if c.sink != nil && c.sink.Tracing() {
		c.sink.Tracer().Counter("cache", "blocked", c.eng.Now(), float64(c.blocked))
	}
}

// traceUsage emits a counter sample of frame usage when tracing is on.
func (c *Cache) traceUsage() {
	if c.sink != nil && c.sink.Tracing() {
		c.sink.Tracer().Counter("cache", "used", c.eng.Now(), float64(c.Used()))
	}
}

// NoteAccess advances the residency tracker with a read of physical page
// p and reports whether it was a (hypothetical) hit. The tracker is purely
// observational: the machine still performs the disk read either way.
func (c *Cache) NoteAccess(p int) bool {
	if c.resident[p] {
		c.hits++
		// Move p to the most-recently-used end.
		for i, v := range c.lru {
			if v == p {
				copy(c.lru[i:], c.lru[i+1:])
				c.lru[len(c.lru)-1] = p
				break
			}
		}
		return true
	}
	c.misses++
	if len(c.lru) >= c.frames {
		victim := c.lru[0]
		c.lru = c.lru[1:]
		delete(c.resident, victim)
		c.evictions++
	}
	c.lru = append(c.lru, p)
	c.resident[p] = true
	return false
}

// Hits reports residency-tracker hits.
func (c *Cache) Hits() int64 { return c.hits }

// Misses reports residency-tracker misses.
func (c *Cache) Misses() int64 { return c.misses }

// Evictions reports residency-tracker evictions.
func (c *Cache) Evictions() int64 { return c.evictions }

// AllocWaits reports how many frame allocations had to wait.
func (c *Cache) AllocWaits() int64 { return c.allocWaits }

// HitRatio reports hits / (hits + misses), or 0 before any access.
func (c *Cache) HitRatio() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Blocked reports the current number of blocked updated pages.
func (c *Cache) Blocked() int { return c.blocked }

// MeanBlocked reports the time-weighted mean number of blocked pages — the
// statistic the paper reports as "pages waiting for their log records".
func (c *Cache) MeanBlocked() float64 { return c.blockedTW.Mean() }

// MaxBlocked reports the peak number of blocked pages.
func (c *Cache) MaxBlocked() float64 { return c.blockedTW.Max() }

// MeanUsed reports the time-weighted mean number of allocated frames.
func (c *Cache) MeanUsed() float64 { return c.usedTW.Mean() }
