package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestAllocRelease(t *testing.T) {
	c := New(sim.New(), 3)
	if c.Frames() != 3 || c.Free() != 3 || c.Used() != 0 {
		t.Fatal("fresh cache wrong counts")
	}
	if !c.TryAlloc() || !c.TryAlloc() || !c.TryAlloc() {
		t.Fatal("allocation failed with free frames")
	}
	if c.TryAlloc() {
		t.Fatal("allocation succeeded with no free frames")
	}
	c.Release()
	if c.Free() != 1 {
		t.Fatalf("free = %d", c.Free())
	}
}

func TestAllocWaitsFIFO(t *testing.T) {
	c := New(sim.New(), 1)
	var order []int
	c.Alloc(func() { order = append(order, 0) }) // immediate
	c.Alloc(func() { order = append(order, 1) }) // waits
	c.Alloc(func() { order = append(order, 2) }) // waits
	if c.Waiting() != 2 {
		t.Fatalf("waiting = %d", c.Waiting())
	}
	c.Release() // -> grants 1
	c.Release() // -> grants 2
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("grant order %v", order)
	}
	if c.Free() != 0 || c.Used() != 1 {
		t.Fatalf("frame accounting after handoff: free=%d used=%d", c.Free(), c.Used())
	}
}

func TestReleaseAllFreePanics(t *testing.T) {
	c := New(sim.New(), 1)
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	c.Release()
}

func TestBlockedAccounting(t *testing.T) {
	e := sim.New()
	c := New(e, 10)
	c.AdjustBlocked(3)
	if c.Blocked() != 3 {
		t.Fatalf("blocked = %d", c.Blocked())
	}
	e.RunUntil(10 * sim.Millisecond)
	c.AdjustBlocked(-3)
	e.RunUntil(20 * sim.Millisecond)
	m := c.MeanBlocked()
	if m < 1.4 || m > 1.6 {
		t.Fatalf("mean blocked = %v, want ~1.5", m)
	}
	if c.MaxBlocked() != 3 {
		t.Fatalf("max blocked = %v", c.MaxBlocked())
	}
}

func TestNegativeBlockedPanics(t *testing.T) {
	c := New(sim.New(), 1)
	defer func() {
		if recover() == nil {
			t.Error("negative blocked did not panic")
		}
	}()
	c.AdjustBlocked(-1)
}

func TestZeroFramesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero frames did not panic")
		}
	}()
	New(sim.New(), 0)
}

func TestFrameConservationProperty(t *testing.T) {
	// Property: after any sequence of allocs and matching releases,
	// free + used == frames and no waiter is lost.
	f := func(ops []bool, framesRaw uint8) bool {
		frames := int(framesRaw%16) + 1
		c := New(sim.New(), frames)
		granted, released := 0, 0
		for _, alloc := range ops {
			if alloc {
				c.Alloc(func() { granted++ })
			} else if granted > released {
				c.Release()
				released++
			}
		}
		// Drain: release everything granted so far.
		for released < granted {
			c.Release()
			released++
		}
		return c.Free()+c.Used() == frames && c.Used() == c.Waiting()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
