package wal

import (
	"fmt"

	"repro/internal/pagestore"
)

// Archive support: media recovery per Gray's "Notes on Database Operating
// Systems" (the paper's reference [12]). Archive() snapshots the committed
// database into a separate store and pins the log so that a later
// MediaRecover(archive) can rebuild the data store from the snapshot plus
// the retained log suffix — even after the data store is lost entirely.

// Archive produces a transaction-consistent snapshot: a checkpoint flushes
// everything committed, the stable pages are copied into a fresh store, and
// the snapshot remembers the LSN horizon it covers. Until UnpinArchive is
// called, checkpoints retain all log records above that horizon so media
// recovery can replay them.
func (m *Manager) Archive() (*ArchiveSnapshot, error) {
	if err := m.Checkpoint(); err != nil {
		return nil, err
	}
	snap := &ArchiveSnapshot{
		store:   pagestore.New(m.data.PageSize()),
		UpToLSN: m.nextLSN - 1,
	}
	for _, id := range m.data.Keys() {
		data, version, err := m.data.Read(id)
		if err != nil {
			return nil, err
		}
		if err := snap.store.Write(id, data, version); err != nil {
			return nil, fmt.Errorf("wal: archive copy: %w", err)
		}
	}
	m.archiveLSN = snap.UpToLSN
	return snap, nil
}

// UnpinArchive releases the log-retention pin of the last Archive; later
// checkpoints may truncate freely again.
func (m *Manager) UnpinArchive() {
	m.archiveLSN = 0
}

// ArchiveSnapshot is a media-recovery fallback image of the database.
type ArchiveSnapshot struct {
	store   *pagestore.Store
	UpToLSN uint64
}

// Pages reports the number of pages in the snapshot.
func (s *ArchiveSnapshot) Pages() int { return s.store.Pages() }

// MediaRecover rebuilds the data store after media loss: the archive pages
// are restored and the stable log replayed on top (redo of committed work
// past the snapshot, undo of losers), exactly like crash recovery but
// starting from the snapshot instead of the damaged disk.
func (m *Manager) MediaRecover(snap *ArchiveSnapshot) error {
	for _, id := range m.data.Keys() {
		if err := m.data.Delete(id); err != nil {
			return err
		}
	}
	for _, id := range snap.store.Keys() {
		data, version, err := snap.store.Read(id)
		if err != nil {
			return err
		}
		if err := m.data.Write(id, data, version); err != nil {
			return err
		}
	}
	// Standard restart recovery replays the retained log over the snapshot.
	return m.Recover()
}
