package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/pagestore"
)

func putUint64(b []byte, v uint64) { binary.BigEndian.PutUint64(b, v) }
func getUint64(b []byte) uint64    { return binary.BigEndian.Uint64(b) }

// Selection is a log-stream selection algorithm, mirroring the paper's
// log-processor selection algorithms of Table 3.
type Selection int

const (
	// Cyclic rotates through the streams per writer.
	Cyclic Selection = iota
	// Random selects a uniform random stream.
	Random
	// PageMod selects stream = page number mod streams.
	PageMod
	// TxnMod selects stream = transaction number mod streams.
	TxnMod
)

// String implements fmt.Stringer.
func (s Selection) String() string {
	switch s {
	case Cyclic:
		return "cyclic"
	case Random:
		return "random"
	case PageMod:
		return "page-mod"
	case TxnMod:
		return "txn-mod"
	}
	return fmt.Sprintf("selection(%d)", int(s))
}

// LogChunkSize is the stable-write granularity of a log stream (and
// therefore the page size of the log store). Records never split across
// chunks. Exported so callers supplying their own log store through
// Config.LogStore (e.g. a file-backed one) can size it correctly.
const LogChunkSize = 1 << 16

// logChunkSize is the internal alias.
const logChunkSize = LogChunkSize

// stream is one parallel log stream persisting to its own region of the log
// store.
type stream struct {
	idx        int
	store      *pagestore.Store
	firstChunk int64    // oldest stable chunk not yet truncated
	nextChunk  int64    // next stable chunk sequence number
	chunkMax   []uint64 // max LSN per stable chunk (parallel to firstChunk..)
	volatile   []Record // appended but not yet forced
	forces     int64
	records    int64
	truncated  int64
}

// metaID is the stream's metadata page recording the truncation point.
func metaID(streamIdx int) pagestore.PageID {
	return pagestore.PageID(int64(streamIdx)<<40 | 1<<39)
}

// chunkID maps (stream, seq) to a log-store page id.
func chunkID(streamIdx int, seq int64) pagestore.PageID {
	return pagestore.PageID(int64(streamIdx)<<40 | seq)
}

// append buffers a record in the stream's volatile tail.
func (s *stream) append(r Record) {
	s.volatile = append(s.volatile, r)
	s.records++
}

// force persists the whole volatile tail. Records are packed into chunks of
// at most logChunkSize bytes, whole records only, so a crash mid-force
// leaves a clean prefix of the log.
func (s *stream) force() error {
	if len(s.volatile) == 0 {
		return nil
	}
	i := 0
	for i < len(s.volatile) {
		var buf []byte
		max := uint64(0)
		j := i
		for j < len(s.volatile) {
			sz := s.volatile[j].marshaledSize()
			if len(buf) > 0 && len(buf)+sz > logChunkSize {
				break
			}
			buf = s.volatile[j].Marshal(buf)
			if s.volatile[j].LSN > max {
				max = s.volatile[j].LSN
			}
			j++
		}
		if err := s.store.Write(chunkID(s.idx, s.nextChunk), buf, 0); err != nil {
			// Chunks already written stay durable; keep the rest volatile.
			s.volatile = append([]Record(nil), s.volatile[i:]...)
			return err
		}
		s.nextChunk++
		s.chunkMax = append(s.chunkMax, max)
		i = j
	}
	s.volatile = s.volatile[:0]
	s.forces++
	return nil
}

// truncate deletes leading stable chunks whose every record has LSN below
// point (such records can never be needed again: their pages are flushed
// and their transactions finished). The truncation point is persisted so a
// post-crash scan knows where the log starts.
func (s *stream) truncate(point uint64) error {
	first := s.firstChunk
	for first < s.nextChunk && s.chunkMax[first-s.firstChunk] < point {
		first++
	}
	if first == s.firstChunk {
		return nil
	}
	var buf [8]byte
	putUint64(buf[:], uint64(first))
	if err := s.store.Write(metaID(s.idx), buf[:], 0); err != nil {
		return err
	}
	for seq := s.firstChunk; seq < first; seq++ {
		if err := s.store.Delete(chunkID(s.idx, seq)); err != nil {
			return err
		}
		s.truncated++
	}
	s.chunkMax = append([]uint64(nil), s.chunkMax[first-s.firstChunk:]...)
	s.firstChunk = first
	return nil
}

// crash drops the volatile tail (power loss).
func (s *stream) crash() {
	s.volatile = nil
}

// readStable decodes every record that reached stable storage, in append
// order, rebuilding the stream cursors (including the truncation point) for
// further appends.
func (s *stream) readStable() ([]Record, error) {
	s.firstChunk = 0
	if meta, _, err := s.store.Read(metaID(s.idx)); err == nil && len(meta) >= 8 {
		s.firstChunk = int64(getUint64(meta))
	} else if err != nil && !errors.Is(err, pagestore.ErrNotFound) {
		return nil, err
	}
	var out []Record
	s.chunkMax = nil
	s.nextChunk = s.firstChunk
	for {
		data, _, err := s.store.Read(chunkID(s.idx, s.nextChunk))
		if errors.Is(err, pagestore.ErrNotFound) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		max := uint64(0)
		for len(data) > 0 {
			r, n, err := UnmarshalRecord(data)
			if err != nil {
				return nil, fmt.Errorf("wal: stream %d chunk %d: %w", s.idx, s.nextChunk, err)
			}
			if r.LSN > max {
				max = r.LSN
			}
			out = append(out, r)
			data = data[n:]
		}
		s.chunkMax = append(s.chunkMax, max)
		s.nextChunk++
	}
}

// selector assigns records to streams.
type selector struct {
	policy Selection
	n      int
	cursor uint64
	rng    *rand.Rand
}

func newSelector(policy Selection, n int, seed int64) *selector {
	return &selector{policy: policy, n: n, rng: rand.New(rand.NewSource(seed))}
}

// pick chooses a stream for a record of txn touching page.
func (sel *selector) pick(txn uint64, page int64) int {
	if sel.n == 1 {
		return 0
	}
	switch sel.policy {
	case Cyclic:
		sel.cursor++
		return int(sel.cursor % uint64(sel.n))
	case Random:
		return sel.rng.Intn(sel.n)
	case PageMod:
		if page < 0 {
			page = -page
		}
		return int(page % int64(sel.n))
	case TxnMod:
		return int(txn % uint64(sel.n))
	}
	return 0
}
