// Package wal is a functional write-ahead-logging recovery engine with the
// paper's parallel-logging structure: log records are distributed over N
// parallel log streams (with the paper's four stream-selection algorithms),
// each stream persists independently to stable storage, and restart recovery
// merges the streams by LSN — no physical single log ever exists, exactly as
// in the paper's architecture.
//
// The engine implements steal/no-force buffer management over a
// pagestore.Store: uncommitted pages may reach disk (undo needed), committed
// pages need not (redo needed). Restart runs analysis, redo of committed
// work, and undo of losers, using full before/after page images.
package wal

import (
	"encoding/binary"
	"fmt"
)

// RecType is the type of a log record.
type RecType uint8

// Log record types.
const (
	RecBegin RecType = iota + 1
	RecUpdate
	RecCommit
	RecAbort
	RecCheckpoint
)

// String implements fmt.Stringer.
func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecUpdate:
		return "UPDATE"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecCheckpoint:
		return "CHECKPOINT"
	}
	return fmt.Sprintf("RecType(%d)", uint8(t))
}

// Record is one log record. Update records carry full before and after page
// images (the paper's physical logging); PrevLSN chains a transaction's
// records for undo. A compensation record (CLR) written while rolling back
// an update sets CompLSN to that update's LSN and carries only an
// after-image — recovery redoes CLRs but never undoes a compensated update.
type Record struct {
	LSN     uint64
	Type    RecType
	Txn     uint64
	Page    int64
	PrevLSN uint64
	CompLSN uint64 // nonzero: this record compensates update CompLSN
	Before  []byte
	After   []byte
}

// IsCLR reports whether the record is a compensation record.
func (r *Record) IsCLR() bool { return r.CompLSN != 0 }

const recHeader = 1 + 5*8 + 4 + 4 // type + lsn,txn,page,prev,comp + lengths

// marshaledSize reports the encoded size of r.
func (r *Record) marshaledSize() int {
	return recHeader + len(r.Before) + len(r.After)
}

// Marshal appends the binary encoding of r to buf and returns the result.
func (r *Record) Marshal(buf []byte) []byte {
	buf = append(buf, byte(r.Type))
	var tmp [8]byte
	put := func(v uint64) {
		binary.BigEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	put(r.LSN)
	put(r.Txn)
	put(uint64(r.Page))
	put(r.PrevLSN)
	put(r.CompLSN)
	var tmp4 [4]byte
	binary.BigEndian.PutUint32(tmp4[:], uint32(len(r.Before)))
	buf = append(buf, tmp4[:]...)
	binary.BigEndian.PutUint32(tmp4[:], uint32(len(r.After)))
	buf = append(buf, tmp4[:]...)
	buf = append(buf, r.Before...)
	buf = append(buf, r.After...)
	return buf
}

// UnmarshalRecord decodes one record from buf, returning the record and the
// number of bytes consumed.
func UnmarshalRecord(buf []byte) (Record, int, error) {
	if len(buf) < recHeader {
		return Record{}, 0, fmt.Errorf("wal: truncated record header (%d bytes)", len(buf))
	}
	var r Record
	r.Type = RecType(buf[0])
	if r.Type < RecBegin || r.Type > RecCheckpoint {
		return Record{}, 0, fmt.Errorf("wal: corrupt record type %d", buf[0])
	}
	r.LSN = binary.BigEndian.Uint64(buf[1:])
	r.Txn = binary.BigEndian.Uint64(buf[9:])
	r.Page = int64(binary.BigEndian.Uint64(buf[17:]))
	r.PrevLSN = binary.BigEndian.Uint64(buf[25:])
	r.CompLSN = binary.BigEndian.Uint64(buf[33:])
	nb := int(binary.BigEndian.Uint32(buf[41:]))
	na := int(binary.BigEndian.Uint32(buf[45:]))
	total := recHeader + nb + na
	if len(buf) < total {
		return Record{}, 0, fmt.Errorf("wal: truncated record body (%d < %d)", len(buf), total)
	}
	if nb > 0 {
		r.Before = append([]byte(nil), buf[recHeader:recHeader+nb]...)
	}
	if na > 0 {
		r.After = append([]byte(nil), buf[recHeader+nb:total]...)
	}
	return r, total, nil
}
