package wal

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalRecord hammers the log-record decoder with arbitrary bytes:
// it must never panic, and every successfully decoded record must re-encode
// to the bytes it consumed (round-trip stability).
func FuzzUnmarshalRecord(f *testing.F) {
	seed := Record{
		LSN: 7, Type: RecUpdate, Txn: 3, Page: 9, PrevLSN: 5, CompLSN: 2,
		Before: []byte("old"), After: []byte("new"),
	}
	f.Add(seed.Marshal(nil))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, n, err := UnmarshalRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		again := r.Marshal(nil)
		if !bytes.Equal(again, data[:n]) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", data[:n], again)
		}
	})
}
