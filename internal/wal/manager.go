package wal

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/pagestore"
)

// Config parameterizes the WAL manager.
type Config struct {
	// Streams is the number of parallel log streams (the paper's log
	// processors). Default 1.
	Streams int
	// Selection assigns records to streams.
	Selection Selection
	// LogStore, when non-nil, holds the log instead of a fresh in-memory
	// store. It must have page size LogChunkSize. This is the seam that
	// lets the log live on a file-backed store (pagestore/filestore) while
	// the manager stays medium-agnostic.
	LogStore *pagestore.Store
	// PoolPages is the buffer pool capacity in pages. Default 64.
	PoolPages int
	// Seed feeds the Random selection policy.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Streams == 0 {
		c.Streams = 1
	}
	if c.PoolPages == 0 {
		c.PoolPages = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

type bufPage struct {
	data  []byte
	lsn   uint64
	dirty bool
}

type txnState struct {
	firstLSN uint64
	lastLSN  uint64
	updates  []Record
}

// Manager is the WAL recovery engine: steal/no-force buffer management over
// a data page store, with parallel log streams on a log store. The Manager
// is a pure, single-threaded recovery kernel — no locks, goroutines, or
// channels (simlint rule D004 enforces this) — so its behaviour is a
// deterministic function of the call sequence. Concurrent callers must go
// through the thread-safe wrapper in internal/engine.
type Manager struct {
	cfg     Config
	data    *pagestore.Store
	logs    *pagestore.Store
	streams []*stream
	sel     *selector
	nextLSN uint64

	pool map[pagestore.PageID]*bufPage
	lru  []pagestore.PageID

	att map[uint64]*txnState

	steals     int64
	redone     int64
	undone     int64
	scanned    int64 // log records merged by the last Recover
	recoveries int64

	// archiveLSN pins log truncation while an archive snapshot is live:
	// records above it must survive for media recovery.
	archiveLSN uint64

	// journal, when attached, records recovery decisions in order. A nil
	// journal is a no-op sink; like every kernel it survives Crash — it
	// belongs to the observer, not to volatile state.
	journal *obs.Journal
}

// NewManager builds a WAL manager over dataStore; the log lives in its own
// store (exposed by LogStore for fault injection).
func NewManager(dataStore *pagestore.Store, cfg Config) *Manager {
	cfg = cfg.withDefaults()
	logs := cfg.LogStore
	if logs == nil {
		logs = pagestore.New(logChunkSize)
	} else if logs.PageSize() != logChunkSize {
		panic("wal: Config.LogStore page size must be wal.LogChunkSize")
	}
	m := &Manager{
		cfg:     cfg,
		data:    dataStore,
		logs:    logs,
		sel:     newSelector(cfg.Selection, cfg.Streams, cfg.Seed),
		nextLSN: 1,
		pool:    make(map[pagestore.PageID]*bufPage),
		att:     make(map[uint64]*txnState),
	}
	for i := 0; i < cfg.Streams; i++ {
		m.streams = append(m.streams, &stream{idx: i, store: m.logs})
	}
	return m
}

// Name identifies the engine.
func (m *Manager) Name() string {
	return fmt.Sprintf("wal(%d streams,%s)", m.cfg.Streams, m.cfg.Selection)
}

// LogStore exposes the log's stable storage for fault injection in tests.
func (m *Manager) LogStore() *pagestore.Store { return m.logs }

// Stores lists the manager's stable stores (data first, then the log) for
// snapshot/backup through the engine.Guard. The stores are the thread-safe
// substrate, exempt from the kernel-state escape rule by contract.
func (m *Manager) Stores() []*pagestore.Store {
	return []*pagestore.Store{m.data, m.logs}
}

// SetJournal attaches (or with nil detaches) the structured recovery
// journal. Subsequent Recover and Checkpoint calls emit their decisions to
// it.
func (m *Manager) SetJournal(j *obs.Journal) { m.journal = j }

// Load populates page p with initial data, bypassing logging. Call before
// running transactions.
func (m *Manager) Load(p pagestore.PageID, data []byte) error {
	if err := m.data.Write(p, data, 0); err != nil {
		return err
	}
	m.journal.Emit(obs.JournalRecord{Event: "load", Page: obs.JournalPage(int64(p))})
	return nil
}

// Begin starts transaction tid.
func (m *Manager) Begin(tid uint64) error {
	if _, ok := m.att[tid]; ok {
		return fmt.Errorf("wal: transaction %d already active", tid)
	}
	ts := &txnState{}
	m.att[tid] = ts
	ts.firstLSN = m.appendRec(Record{Type: RecBegin, Txn: tid})
	return nil
}

// Read returns the current contents of page p as seen by tid (its own
// uncommitted writes included).
func (m *Manager) Read(tid uint64, p pagestore.PageID) ([]byte, error) {
	bp, err := m.getPage(p)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), bp.data...), nil
}

// Write replaces page p with data on behalf of tid, logging a full
// before/after image first (the write-ahead protocol: the record is
// buffered now and forced before the page can reach stable storage).
func (m *Manager) Write(tid uint64, p pagestore.PageID, data []byte) error {
	ts := m.att[tid]
	if ts == nil {
		return fmt.Errorf("wal: transaction %d not active", tid)
	}
	bp, err := m.getPage(p)
	if err != nil {
		return err
	}
	rec := Record{
		Type:    RecUpdate,
		Txn:     tid,
		Page:    int64(p),
		PrevLSN: ts.lastLSN,
		Before:  append([]byte(nil), bp.data...),
		After:   append([]byte(nil), data...),
	}
	lsn := m.appendRec(rec)
	rec.LSN = lsn
	ts.lastLSN = lsn
	ts.updates = append(ts.updates, rec)
	bp.data = append([]byte(nil), data...)
	bp.lsn = lsn
	bp.dirty = true
	return nil
}

// Commit makes tid durable: its commit record is appended and every stream
// is forced. An error means the commit is in doubt (power failed mid-force);
// recovery decides the outcome.
func (m *Manager) Commit(tid uint64) error {
	ts := m.att[tid]
	if ts == nil {
		return fmt.Errorf("wal: transaction %d not active", tid)
	}
	// Force the commit record's stream last. The restart merge treats a
	// durable commit record as proof the transaction's updates are durable
	// too, which only holds if every other stream — where those updates may
	// live — reaches disk before the commit record can. A crash anywhere in
	// this sequence then leaves either no commit record (the transaction is
	// undone whole) or a complete transaction: atomic, never torn.
	lsn, ci := m.appendRecOn(Record{Type: RecCommit, Txn: tid, PrevLSN: ts.lastLSN})
	for i, s := range m.streams {
		if i == ci {
			continue
		}
		if err := s.force(); err != nil {
			return fmt.Errorf("wal: commit %d in doubt: %w", tid, err)
		}
	}
	if err := m.streams[ci].force(); err != nil {
		return fmt.Errorf("wal: commit %d in doubt: %w", tid, err)
	}
	delete(m.att, tid)
	m.journal.Emit(obs.JournalRecord{Event: "commit", Txn: tid, LSN: lsn})
	return nil
}

// Abort rolls back tid by applying its before-images in reverse order. Each
// restoration is itself logged as a compensation record, so recovery never
// undoes work that was already rolled back — even if a later transaction
// committed changes to the same pages.
func (m *Manager) Abort(tid uint64) error {
	ts := m.att[tid]
	if ts == nil {
		return fmt.Errorf("wal: transaction %d not active", tid)
	}
	for i := len(ts.updates) - 1; i >= 0; i-- {
		rec := ts.updates[i]
		bp, err := m.getPage(pagestore.PageID(rec.Page))
		if err != nil {
			return err
		}
		clr := Record{
			Type:    RecUpdate,
			Txn:     tid,
			Page:    rec.Page,
			PrevLSN: ts.lastLSN,
			CompLSN: rec.LSN,
			After:   append([]byte(nil), rec.Before...),
		}
		lsn := m.appendRec(clr)
		ts.lastLSN = lsn
		bp.data = append([]byte(nil), rec.Before...)
		bp.lsn = lsn
		bp.dirty = true
	}
	m.appendRec(Record{Type: RecAbort, Txn: tid, PrevLSN: ts.lastLSN})
	delete(m.att, tid)
	m.journal.Emit(obs.JournalRecord{Event: "abort", Txn: tid, N: int64(len(ts.updates))})
	return nil
}

// appendRec assigns the next LSN and buffers the record on its stream.
func (m *Manager) appendRec(rec Record) uint64 {
	lsn, _ := m.appendRecOn(rec)
	return lsn
}

// appendRecOn is appendRec, additionally reporting which stream the record
// landed on — selection policies like Cyclic are stateful, so the choice
// cannot be re-derived after the fact.
func (m *Manager) appendRecOn(rec Record) (uint64, int) {
	rec.LSN = m.nextLSN
	m.nextLSN++
	i := m.sel.pick(rec.Txn, rec.Page)
	m.streams[i].append(rec)
	return rec.LSN, i
}

func (m *Manager) forceAll() error {
	for _, s := range m.streams {
		if err := s.force(); err != nil {
			return err
		}
	}
	return nil
}

// getPage returns the pooled page, fetching (and possibly evicting) as
// needed. Pages never stored read as empty.
func (m *Manager) getPage(p pagestore.PageID) (*bufPage, error) {
	if bp, ok := m.pool[p]; ok {
		m.touch(p)
		return bp, nil
	}
	data, version, err := m.data.Read(p)
	if err == pagestore.ErrNotFound {
		data, version = nil, 0
	} else if err != nil {
		return nil, err
	}
	if err := m.evictIfFull(); err != nil {
		return nil, err
	}
	bp := &bufPage{data: data, lsn: version}
	m.pool[p] = bp
	m.lru = append(m.lru, p)
	return bp, nil
}

func (m *Manager) touch(p pagestore.PageID) {
	for i, q := range m.lru {
		if q == p {
			m.lru = append(append(m.lru[:i:i], m.lru[i+1:]...), p)
			return
		}
	}
}

// evictIfFull applies LRU replacement. A dirty victim triggers the
// write-ahead rule: the log is forced before the page is stolen to disk.
func (m *Manager) evictIfFull() error {
	for len(m.pool) >= m.cfg.PoolPages {
		victim := m.lru[0]
		bp := m.pool[victim]
		if bp.dirty {
			if err := m.forceAll(); err != nil {
				return err
			}
			if err := m.data.Write(victim, bp.data, bp.lsn); err != nil {
				return err
			}
			m.steals++
			// A steal is the WAL engine's only stable page write outside
			// checkpoints, so it is journaled: the forensic trail must show
			// which uncommitted pages reached disk and under which LSN.
			m.journal.Emit(obs.JournalRecord{Event: "steal", Page: obs.JournalPage(int64(victim)), LSN: bp.lsn})
		}
		m.lru = m.lru[1:]
		delete(m.pool, victim)
	}
	return nil
}

// Checkpoint takes a fuzzy checkpoint: the log is forced, every dirty page
// is flushed, a checkpoint record is logged, and each stream truncates the
// stable chunks no future recovery can need — everything below the oldest
// active transaction's first record (or below the checkpoint itself when
// the engine is quiescent). Transactions keep running throughout.
func (m *Manager) Checkpoint() error {
	if err := m.forceAll(); err != nil {
		return err
	}
	pooled := make([]pagestore.PageID, 0, len(m.pool))
	for p := range m.pool {
		pooled = append(pooled, p)
	}
	sort.Slice(pooled, func(i, j int) bool { return pooled[i] < pooled[j] })
	var flushed int64
	for _, p := range pooled {
		bp := m.pool[p]
		if !bp.dirty {
			continue
		}
		if err := m.data.Write(p, bp.data, bp.lsn); err != nil {
			return err
		}
		bp.dirty = false
		flushed++
	}
	cpLSN := m.appendRec(Record{Type: RecCheckpoint})
	if err := m.forceAll(); err != nil {
		return err
	}
	m.journal.Emit(obs.JournalRecord{Event: "checkpoint", Engine: m.Name(), LSN: cpLSN, N: flushed})
	point := cpLSN
	for _, ts := range m.att {
		if ts.firstLSN < point {
			point = ts.firstLSN
		}
	}
	if m.archiveLSN > 0 && m.archiveLSN+1 < point {
		point = m.archiveLSN + 1 // retain the suffix media recovery needs
	}
	before := m.truncatedChunks()
	for _, s := range m.streams {
		if err := s.truncate(point); err != nil {
			return err
		}
	}
	m.journal.Emit(obs.JournalRecord{Event: "truncate", Engine: m.Name(), LSN: point, N: m.truncatedChunks() - before})
	return nil
}

func (m *Manager) truncatedChunks() int64 {
	var n int64
	for _, s := range m.streams {
		n += s.truncated
	}
	return n
}

// Crash simulates power loss: the buffer pool, active-transaction table and
// unforced log tails vanish. Stable storage is untouched.
func (m *Manager) Crash() {
	m.pool = make(map[pagestore.PageID]*bufPage)
	m.lru = nil
	m.att = make(map[uint64]*txnState)
	for _, s := range m.streams {
		s.crash()
	}
}

// Recover restores a consistent committed state after Crash: power is
// restored to both stores, the parallel streams are merged by LSN, committed
// updates are redone and loser updates undone.
func (m *Manager) Recover() error {
	if err := m.data.Reset(); err != nil {
		return err
	}
	if err := m.logs.Reset(); err != nil {
		return err
	}
	m.recoveries++

	var all []Record
	for _, s := range m.streams {
		recs, err := s.readStable()
		if err != nil {
			return err
		}
		all = append(all, recs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].LSN < all[j].LSN })
	m.scanned = int64(len(all))
	m.journal.Emit(obs.JournalRecord{Event: "scan", Engine: m.Name(), N: m.scanned})

	// Analysis: which transactions committed, and which loser updates were
	// already compensated by a durable CLR?
	committed := map[uint64]bool{}
	compensated := map[uint64]bool{} // update LSNs with a durable CLR
	maxLSN := uint64(0)
	for _, r := range all {
		if r.LSN > maxLSN {
			maxLSN = r.LSN
		}
		switch {
		case r.Type == RecCommit:
			committed[r.Txn] = true
		case r.Type == RecUpdate && r.IsCLR():
			compensated[r.CompLSN] = true
		}
	}

	// Journal the classification in first-appearance (LSN) order — never by
	// iterating the committed map, whose order is nondeterministic.
	if m.journal != nil {
		seen := map[uint64]bool{}
		for _, r := range all {
			if r.Txn == 0 || seen[r.Txn] {
				continue
			}
			seen[r.Txn] = true
			ev := "loser"
			if committed[r.Txn] {
				ev = "winner"
			}
			m.journal.Emit(obs.JournalRecord{Event: ev, Txn: r.Txn})
		}
	}

	// Redo: repeat history — every durable update and CLR, winners and
	// losers alike, in LSN order.
	for _, r := range all {
		if r.Type != RecUpdate {
			continue
		}
		if err := m.redoOne(r); err != nil {
			return err
		}
	}
	// Undo: uncompensated updates of non-committed transactions, in reverse
	// LSN order. Compensated updates were rolled back by their own CLRs
	// during redo; undoing them again would clobber later committed work.
	for i := len(all) - 1; i >= 0; i-- {
		r := all[i]
		if r.Type != RecUpdate || committed[r.Txn] || r.IsCLR() || compensated[r.LSN] {
			continue
		}
		if err := m.undoOne(r); err != nil {
			return err
		}
	}
	m.nextLSN = maxLSN + 1
	m.pool = make(map[pagestore.PageID]*bufPage)
	m.lru = nil
	m.att = make(map[uint64]*txnState)
	return nil
}

func (m *Manager) redoOne(r Record) error {
	_, version, err := m.data.Read(pagestore.PageID(r.Page))
	if err == pagestore.ErrNotFound {
		version = 0
	} else if err != nil {
		return err
	}
	if version >= r.LSN {
		return nil // already applied
	}
	m.redone++
	note := ""
	if r.IsCLR() {
		note = "clr"
	}
	m.journal.Emit(obs.JournalRecord{Event: "redo", Txn: r.Txn, Page: obs.JournalPage(r.Page), LSN: r.LSN, Note: note})
	return m.data.Write(pagestore.PageID(r.Page), r.After, r.LSN)
}

func (m *Manager) undoOne(r Record) error {
	_, version, err := m.data.Read(pagestore.PageID(r.Page))
	if err == pagestore.ErrNotFound {
		return nil // never reached disk; nothing to undo
	}
	if err != nil {
		return err
	}
	if version < r.LSN {
		return nil // this update never reached disk
	}
	m.undone++
	m.journal.Emit(obs.JournalRecord{Event: "undo", Txn: r.Txn, Page: obs.JournalPage(r.Page), LSN: r.LSN})
	return m.data.Write(pagestore.PageID(r.Page), r.Before, r.LSN-1)
}

// ReadCommitted reads page p's current contents; meaningful once no
// transaction is active (for example right after Recover).
func (m *Manager) ReadCommitted(p pagestore.PageID) ([]byte, error) {
	bp, err := m.getPage(p)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), bp.data...), nil
}

// Stats reports counters: steals (dirty evictions), redo and undo actions,
// and per-stream record counts.
func (m *Manager) Stats() map[string]int64 {
	out := map[string]int64{
		"steals":     m.steals,
		"redone":     m.redone,
		"undone":     m.undone,
		"scanned":    m.scanned,
		"recoveries": m.recoveries,
	}
	for _, s := range m.streams {
		out[fmt.Sprintf("stream%d.records", s.idx)] = s.records
		out[fmt.Sprintf("stream%d.forces", s.idx)] = s.forces
		out[fmt.Sprintf("stream%d.truncated", s.idx)] = s.truncated
		out["truncatedChunks"] += s.truncated
	}
	return out
}
