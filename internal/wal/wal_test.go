package wal

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/pagestore"
)

func newTestManager(cfg Config) (*Manager, *pagestore.Store) {
	store := pagestore.New(4096)
	return NewManager(store, cfg), store
}

func page(s string) []byte { return []byte(s) }

func TestRecordMarshalRoundTrip(t *testing.T) {
	in := Record{
		LSN: 42, Type: RecUpdate, Txn: 7, Page: 99, PrevLSN: 40, CompLSN: 12,
		Before: []byte("old"), After: []byte("new"),
	}
	buf := in.Marshal(nil)
	out, n, err := UnmarshalRecord(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) || n != in.marshaledSize() {
		t.Fatalf("consumed %d of %d", n, len(buf))
	}
	if out.LSN != 42 || out.Type != RecUpdate || out.Txn != 7 || out.Page != 99 ||
		out.PrevLSN != 40 || out.CompLSN != 12 ||
		string(out.Before) != "old" || string(out.After) != "new" {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if !out.IsCLR() {
		t.Fatal("CompLSN set but IsCLR false")
	}
}

func TestRecordMarshalProperty(t *testing.T) {
	f := func(lsn, txn, prev, comp uint64, pg int64, before, after []byte) bool {
		in := Record{LSN: lsn, Type: RecCommit, Txn: txn, Page: pg,
			PrevLSN: prev, CompLSN: comp, Before: before, After: after}
		out, n, err := UnmarshalRecord(in.Marshal(nil))
		return err == nil && n == in.marshaledSize() &&
			out.LSN == lsn && out.Txn == txn && out.Page == pg &&
			out.PrevLSN == prev && out.CompLSN == comp &&
			bytes.Equal(out.Before, before) && bytes.Equal(out.After, after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, _, err := UnmarshalRecord([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated header accepted")
	}
	r := Record{Type: RecUpdate, After: []byte("xyz")}
	buf := r.Marshal(nil)
	if _, _, err := UnmarshalRecord(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated body accepted")
	}
	buf[0] = 200 // invalid type
	if _, _, err := UnmarshalRecord(buf); err == nil {
		t.Fatal("corrupt type accepted")
	}
}

func TestCommitDurableAcrossCrash(t *testing.T) {
	m, _ := newTestManager(Config{})
	if err := m.Load(1, page("v0")); err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(1, 1, page("v1")); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(1); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadCommitted(1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v1" {
		t.Fatalf("committed write lost: %q", got)
	}
}

func TestUncommittedRolledBack(t *testing.T) {
	m, _ := newTestManager(Config{PoolPages: 2}) // tiny pool forces steals
	for p := 0; p < 4; p++ {
		if err := m.Load(pagestore.PageID(p), page(fmt.Sprintf("orig%d", p))); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Begin(1); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		if err := m.Write(1, pagestore.PageID(p), page("dirty")); err != nil {
			t.Fatal(err)
		}
	}
	// The tiny pool stole uncommitted pages to disk.
	if m.Stats()["steals"] == 0 {
		t.Fatal("expected steals with a 2-page pool")
	}
	m.Crash()
	if err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		got, err := m.ReadCommitted(pagestore.PageID(p))
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("orig%d", p); string(got) != want {
			t.Fatalf("page %d = %q, want %q", p, got, want)
		}
	}
	if m.Stats()["undone"] == 0 {
		t.Fatal("recovery performed no undo")
	}
}

func TestNoForceRedo(t *testing.T) {
	// Commit without the data page ever reaching disk; redo must apply it.
	m, store := newTestManager(Config{})
	if err := m.Load(1, page("v0")); err != nil {
		t.Fatal(err)
	}
	_, wBefore := store.Stats()
	if err := m.Begin(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(1, 1, page("v1")); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(1); err != nil {
		t.Fatal(err)
	}
	_, wAfter := store.Stats()
	if wAfter != wBefore {
		t.Fatal("no-force violated: data page written at commit")
	}
	m.Crash()
	if err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadCommitted(1)
	if string(got) != "v1" {
		t.Fatalf("redo failed: %q", got)
	}
	if m.Stats()["redone"] == 0 {
		t.Fatal("recovery performed no redo")
	}
}

func TestRuntimeAbort(t *testing.T) {
	m, _ := newTestManager(Config{})
	if err := m.Load(1, page("v0")); err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(1, 1, page("bad")); err != nil {
		t.Fatal(err)
	}
	if err := m.Abort(1); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadCommitted(1)
	if string(got) != "v0" {
		t.Fatalf("abort did not restore: %q", got)
	}
}

func TestAbortThenCommitSamePageSurvivesCrash(t *testing.T) {
	// The CLR case: T1 updates and aborts, T2 then commits the same page.
	// Recovery must keep T2's value, not re-undo T1.
	m, _ := newTestManager(Config{PoolPages: 2})
	if err := m.Load(1, page("v0")); err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(1, 1, page("t1")); err != nil {
		t.Fatal(err)
	}
	// Push T1's dirty page to disk (steal) before the abort.
	if err := m.Load(50, page("x")); err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(9); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read(9, 50); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read(9, 51); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(9); err != nil {
		t.Fatal(err)
	}
	if err := m.Abort(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(2); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(2, 1, page("t2")); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(2); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadCommitted(1)
	if string(got) != "t2" {
		t.Fatalf("committed value clobbered by stale undo: %q", got)
	}
}

func TestParallelStreamsDistributeAndRecover(t *testing.T) {
	for _, sel := range []Selection{Cyclic, Random, PageMod, TxnMod} {
		sel := sel
		t.Run(sel.String(), func(t *testing.T) {
			m, _ := newTestManager(Config{Streams: 4, Selection: sel})
			for p := 0; p < 16; p++ {
				if err := m.Load(pagestore.PageID(p), page("orig")); err != nil {
					t.Fatal(err)
				}
			}
			for tid := uint64(1); tid <= 8; tid++ {
				if err := m.Begin(tid); err != nil {
					t.Fatal(err)
				}
				for p := 0; p < 16; p += 2 {
					if err := m.Write(tid, pagestore.PageID(p), page(fmt.Sprintf("t%d", tid))); err != nil {
						t.Fatal(err)
					}
				}
				if err := m.Commit(tid); err != nil {
					t.Fatal(err)
				}
			}
			stats := m.Stats()
			used := 0
			for i := 0; i < 4; i++ {
				if stats[fmt.Sprintf("stream%d.records", i)] > 0 {
					used++
				}
			}
			if sel != TxnMod && used < 2 {
				t.Fatalf("%v: only %d streams used", sel, used)
			}
			m.Crash()
			if err := m.Recover(); err != nil {
				t.Fatal(err)
			}
			for p := 0; p < 16; p += 2 {
				got, _ := m.ReadCommitted(pagestore.PageID(p))
				if string(got) != "t8" {
					t.Fatalf("page %d = %q, want t8", p, got)
				}
			}
		})
	}
}

func TestInDoubtCommitIsAtomic(t *testing.T) {
	// Cut power during the commit force; after recovery the transaction is
	// either fully applied or fully absent.
	for budget := int64(0); budget < 6; budget++ {
		m, _ := newTestManager(Config{Streams: 3})
		for p := 0; p < 3; p++ {
			if err := m.Load(pagestore.PageID(p), page("orig")); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Begin(1); err != nil {
			t.Fatal(err)
		}
		for p := 0; p < 3; p++ {
			if err := m.Write(1, pagestore.PageID(p), page("new")); err != nil {
				t.Fatal(err)
			}
		}
		m.LogStore().SetWriteBudget(budget)
		err := m.Commit(1)
		m.Crash()
		if rerr := m.Recover(); rerr != nil {
			t.Fatal(rerr)
		}
		var news, origs int
		for p := 0; p < 3; p++ {
			got, rerr := m.ReadCommitted(pagestore.PageID(p))
			if rerr != nil {
				t.Fatal(rerr)
			}
			switch string(got) {
			case "new":
				news++
			case "orig":
				origs++
			default:
				t.Fatalf("budget %d: page %d = %q", budget, p, got)
			}
		}
		if news != 0 && news != 3 {
			t.Fatalf("budget %d: non-atomic commit: %d new, %d orig", budget, news, origs)
		}
		if err == nil && news != 3 {
			t.Fatalf("budget %d: commit acked but lost", budget)
		}
	}
}

func TestCheckpointTruncatesLog(t *testing.T) {
	m, _ := newTestManager(Config{})
	if err := m.Load(1, page("v0")); err != nil {
		t.Fatal(err)
	}
	for tid := uint64(1); tid <= 5; tid++ {
		if err := m.Begin(tid); err != nil {
			t.Fatal(err)
		}
		if err := m.Write(tid, 1, page(fmt.Sprintf("v%d", tid))); err != nil {
			t.Fatal(err)
		}
		if err := m.Commit(tid); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if m.Stats()["truncatedChunks"] == 0 {
		t.Fatal("checkpoint truncated nothing")
	}
	// Only the checkpoint chunk and the stream metadata page remain.
	if n := m.LogStore().Pages(); n > 2 {
		t.Fatalf("log not truncated: %d pages remain", n)
	}
	m.Crash()
	if err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadCommitted(1)
	if string(got) != "v5" {
		t.Fatalf("post-checkpoint state lost: %q", got)
	}
}

func TestFuzzyCheckpointKeepsActiveTxnRecords(t *testing.T) {
	m, _ := newTestManager(Config{})
	if err := m.Load(1, page("v0")); err != nil {
		t.Fatal(err)
	}
	if err := m.Load(2, page("w0")); err != nil {
		t.Fatal(err)
	}
	// An active transaction spans the checkpoint.
	if err := m.Begin(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(1, 1, page("dirty")); err != nil {
		t.Fatal(err)
	}
	// Unrelated committed work that the checkpoint may truncate.
	for tid := uint64(10); tid < 15; tid++ {
		if err := m.Begin(tid); err != nil {
			t.Fatal(err)
		}
		if err := m.Write(tid, 2, page(fmt.Sprintf("w%d", tid))); err != nil {
			t.Fatal(err)
		}
		if err := m.Commit(tid); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Transaction 1 keeps running and never commits; the checkpoint flushed
	// its dirty page (steal), so recovery must undo it — which requires its
	// records to have survived truncation.
	m.Crash()
	if err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadCommitted(1)
	if string(got) != "v0" {
		t.Fatalf("active transaction not undone after fuzzy checkpoint: %q", got)
	}
	got, _ = m.ReadCommitted(2)
	if string(got) != "w14" {
		t.Fatalf("committed work lost: %q", got)
	}
}

func TestCheckpointDuringWorkloadRepeatedly(t *testing.T) {
	m, _ := newTestManager(Config{Streams: 3, Selection: PageMod, PoolPages: 4})
	for p := 0; p < 8; p++ {
		if err := m.Load(pagestore.PageID(p), page("init")); err != nil {
			t.Fatal(err)
		}
	}
	want := map[int]string{}
	for i := 0; i < 60; i++ {
		tid := uint64(i + 1)
		if err := m.Begin(tid); err != nil {
			t.Fatal(err)
		}
		p := i % 8
		v := fmt.Sprintf("v%d", i)
		if err := m.Write(tid, pagestore.PageID(p), page(v)); err != nil {
			t.Fatal(err)
		}
		if err := m.Commit(tid); err != nil {
			t.Fatal(err)
		}
		want[p] = v
		if i%7 == 0 {
			if err := m.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if m.Stats()["truncatedChunks"] == 0 {
		t.Fatal("repeated checkpoints truncated nothing")
	}
	m.Crash()
	if err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	for p, v := range want {
		got, _ := m.ReadCommitted(pagestore.PageID(p))
		if string(got) != v {
			t.Fatalf("page %d = %q, want %q", p, got, v)
		}
	}
}

func TestCrashRecoveryProperty(t *testing.T) {
	// Property: under a random schedule of writes/commits/aborts with a
	// random crash point, recovery restores exactly the committed model.
	f := func(script []uint16, crashBudget uint16) bool {
		m, store := newTestManager(Config{Streams: 2, PoolPages: 3, Selection: PageMod})
		const pages = 6
		model := map[int]string{} // committed state
		for p := 0; p < pages; p++ {
			v := fmt.Sprintf("init%d", p)
			if err := m.Load(pagestore.PageID(p), page(v)); err != nil {
				return false
			}
			model[p] = v
		}
		store.SetWriteBudget(int64(crashBudget%128) + 4)
		tid := uint64(0)
		active := false
		pending := map[int]string{}
		var doubt map[int]string // write set of an in-doubt commit, if any
		crashed := false
		for i, op := range script {
			if crashed {
				break
			}
			switch op % 4 {
			case 0: // begin
				if !active {
					tid++
					if err := m.Begin(tid); err != nil {
						crashed = true
					}
					active = true
					pending = map[int]string{}
				}
			case 1: // write
				if active {
					p := int(op/4) % pages
					v := fmt.Sprintf("t%d-%d", tid, i)
					if err := m.Write(tid, pagestore.PageID(p), page(v)); err != nil {
						crashed = true
						break
					}
					pending[p] = v
				}
			case 2: // commit
				if active {
					if err := m.Commit(tid); err == nil {
						for p, v := range pending {
							model[p] = v
						}
					} else {
						doubt = pending // power failed mid-commit
						crashed = true
					}
					active = false
				}
			case 3: // abort
				if active {
					if err := m.Abort(tid); err != nil {
						crashed = true
					}
					active = false
				}
			}
		}
		m.Crash()
		if err := m.Recover(); err != nil {
			return false
		}
		// The in-doubt commit must be all-or-nothing.
		doubtApplied, doubtReverted := 0, 0
		for p := 0; p < pages; p++ {
			got, err := m.ReadCommitted(pagestore.PageID(p))
			if err != nil {
				return false
			}
			if v, inDoubt := doubt[p]; inDoubt {
				switch string(got) {
				case v:
					doubtApplied++
				case model[p]:
					doubtReverted++
				default:
					return false
				}
				continue
			}
			if string(got) != model[p] {
				return false
			}
		}
		return doubtApplied == 0 || doubtReverted == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
