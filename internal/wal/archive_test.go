package wal

import (
	"fmt"
	"testing"

	"repro/internal/pagestore"
)

func TestMediaRecoveryFromArchive(t *testing.T) {
	m, store := newTestManager(Config{Streams: 2, Selection: PageMod})
	for p := 0; p < 6; p++ {
		if err := m.Load(pagestore.PageID(p), page(fmt.Sprintf("base%d", p))); err != nil {
			t.Fatal(err)
		}
	}
	// Work before the archive.
	if err := m.Begin(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(1, 0, page("pre-archive")); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(1); err != nil {
		t.Fatal(err)
	}
	snap, err := m.Archive()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Pages() == 0 {
		t.Fatal("empty archive")
	}
	// Work after the archive: one committed, one loser.
	if err := m.Begin(2); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(2, 1, page("post-archive")); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(2); err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(3); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(3, 2, page("loser")); err != nil {
		t.Fatal(err)
	}

	// The media fails: wipe the data store completely.
	m.Crash()
	store.Reset()
	for _, id := range store.Keys() {
		if err := store.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.MediaRecover(snap); err != nil {
		t.Fatal(err)
	}
	want := map[int]string{
		0: "pre-archive",  // from the snapshot
		1: "post-archive", // replayed from the retained log
		2: "base2",        // loser undone
		3: "base3",
	}
	for p, w := range want {
		got, err := m.ReadCommitted(pagestore.PageID(p))
		if err != nil {
			t.Fatalf("page %d: %v", p, err)
		}
		if string(got) != w {
			t.Fatalf("page %d = %q, want %q", p, got, w)
		}
	}
}

func TestArchivePinsLogTruncation(t *testing.T) {
	m, _ := newTestManager(Config{})
	if err := m.Load(1, page("v0")); err != nil {
		t.Fatal(err)
	}
	snap, err := m.Archive()
	if err != nil {
		t.Fatal(err)
	}
	// Committed work after the archive, then a checkpoint: the log suffix
	// past the archive horizon must survive.
	for tid := uint64(1); tid <= 4; tid++ {
		if err := m.Begin(tid); err != nil {
			t.Fatal(err)
		}
		if err := m.Write(tid, 1, page(fmt.Sprintf("v%d", tid))); err != nil {
			t.Fatal(err)
		}
		if err := m.Commit(tid); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Media recovery must still reach the latest committed state.
	if err := m.MediaRecover(snap); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadCommitted(1)
	if string(got) != "v4" {
		t.Fatalf("after media recovery: %q (log truncated past the archive?)", got)
	}
	// Unpinning re-enables aggressive truncation.
	m.UnpinArchive()
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if n := m.LogStore().Pages(); n > 3 {
		t.Fatalf("log not truncated after unpin: %d pages", n)
	}
}
