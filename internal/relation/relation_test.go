package relation

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/wal"
)

func newEngine(t *testing.T, pages int64) *engine.Engine {
	t.Helper()
	e := engine.NewWAL(wal.Config{Streams: 2, Selection: wal.PageMod})
	for p := int64(0); p < pages; p++ {
		if err := e.Load(p, nil); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func TestTupleCodecProperty(t *testing.T) {
	f := func(key int64, value string) bool {
		buf := appendTuple(nil, Tuple{Key: key, Value: value})
		out, n, err := decodeTuple(buf)
		return err == nil && n == len(buf) && out.Key == key && out.Value == value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPageCodecRoundTrip(t *testing.T) {
	in := []Tuple{{1, "a"}, {2, "bb"}, {3, ""}}
	out, err := decodePage(encodePage(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0] != in[0] || out[1] != in[1] || out[2] != in[2] {
		t.Fatalf("round trip: %v", out)
	}
	empty, err := decodePage(nil)
	if err != nil || empty != nil {
		t.Fatalf("empty page: %v %v", empty, err)
	}
}

func TestRelationCRUD(t *testing.T) {
	e := newEngine(t, 16)
	r := New("accounts", 0, 8)
	err := e.Update(func(tx *engine.Txn) error {
		for i := int64(0); i < 50; i++ {
			if err := r.Insert(tx, Tuple{Key: i, Value: fmt.Sprintf("v%d", i)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = e.Update(func(tx *engine.Txn) error {
		n, err := r.Count(tx)
		if err != nil {
			return err
		}
		if n != 50 {
			return fmt.Errorf("count = %d", n)
		}
		got, err := r.Lookup(tx, 7)
		if err != nil {
			return err
		}
		if len(got) != 1 || got[0].Value != "v7" {
			return fmt.Errorf("lookup 7 = %v", got)
		}
		if _, err := r.Update(tx, 7, "updated"); err != nil {
			return err
		}
		if removed, err := r.Delete(tx, 9); err != nil || removed != 1 {
			return fmt.Errorf("delete: %d %v", removed, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = e.Update(func(tx *engine.Txn) error {
		got, err := r.Lookup(tx, 7)
		if err != nil {
			return err
		}
		if len(got) != 1 || got[0].Value != "updated" {
			return fmt.Errorf("update lost: %v", got)
		}
		if got, err := r.Lookup(tx, 9); err != nil || len(got) != 0 {
			return fmt.Errorf("delete lost: %v %v", got, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRelationFullError(t *testing.T) {
	e := newEngine(t, 2)
	r := New("tiny", 0, 1)
	err := e.Update(func(tx *engine.Txn) error {
		big := make([]byte, 1000)
		for i := int64(0); ; i++ {
			if err := r.Insert(tx, Tuple{Key: i, Value: string(big)}); err != nil {
				return err
			}
			if i > 10 {
				return fmt.Errorf("relation never filled")
			}
		}
	})
	if err == nil || err.Error() == "relation never filled" {
		t.Fatalf("err = %v", err)
	}
}

func TestRelationSurvivesCrash(t *testing.T) {
	e := newEngine(t, 8)
	r := New("t", 0, 4)
	if err := e.Update(func(tx *engine.Txn) error {
		return r.Insert(tx, Tuple{Key: 1, Value: "keep"})
	}); err != nil {
		t.Fatal(err)
	}
	e.Crash()
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
	err := e.Update(func(tx *engine.Txn) error {
		got, err := r.Lookup(tx, 1)
		if err != nil {
			return err
		}
		if len(got) != 1 || got[0].Value != "keep" {
			return fmt.Errorf("lost: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRelationModelProperty(t *testing.T) {
	// Property: relation contents always equal a model map under random
	// insert/update/delete sequences.
	f := func(ops []uint16) bool {
		e := engine.NewWAL(wal.Config{})
		for p := int64(0); p < 8; p++ {
			if err := e.Load(p, nil); err != nil {
				return false
			}
		}
		r := New("m", 0, 8)
		model := map[int64]string{}
		for i, op := range ops {
			key := int64(op % 16)
			val := fmt.Sprintf("v%d", i)
			err := e.Update(func(tx *engine.Txn) error {
				switch op % 3 {
				case 0:
					if _, ok := model[key]; !ok {
						if err := r.Insert(tx, Tuple{Key: key, Value: val}); err != nil {
							return err
						}
						model[key] = val
					}
				case 1:
					n, err := r.Update(tx, key, val)
					if err != nil {
						return err
					}
					if n > 0 {
						model[key] = val
					}
				case 2:
					if _, err := r.Delete(tx, key); err != nil {
						return err
					}
					delete(model, key)
				}
				return nil
			})
			if err != nil {
				return false
			}
		}
		ok := true
		err := e.Update(func(tx *engine.Txn) error {
			all, err := r.Scan(tx, nil)
			if err != nil {
				return err
			}
			if len(all) != len(model) {
				ok = false
				return nil
			}
			for _, t := range all {
				if model[t.Key] != t.Value {
					ok = false
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelScanMatchesSerial(t *testing.T) {
	e := newEngine(t, 16)
	r := New("p", 0, 16)
	if err := e.Update(func(tx *engine.Txn) error {
		for i := int64(0); i < 200; i++ {
			if err := r.Insert(tx, Tuple{Key: i, Value: fmt.Sprintf("v%d", i)}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	pred := func(t Tuple) bool { return t.Key%3 == 0 }
	err := e.Update(func(tx *engine.Txn) error {
		serial, err := r.Scan(tx, pred)
		if err != nil {
			return err
		}
		for _, workers := range []int{1, 2, 4, 32} {
			par, err := ParallelScan(tx, r, pred, workers)
			if err != nil {
				return err
			}
			if len(par) != len(serial) {
				return fmt.Errorf("%d workers: %d vs %d tuples", workers, len(par), len(serial))
			}
			for i := range par {
				if par[i] != serial[i] {
					return fmt.Errorf("%d workers: order differs at %d", workers, i)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
