package relation

import (
	"sync"

	"repro/internal/engine"
)

// ParallelScan evaluates pred over the relation with the given number of
// goroutine workers, each scanning a contiguous page range — the shape of
// the paper's parallel algorithms for relational operations ([4], [21]),
// with goroutines standing in for query processors. Results come back in
// page order.
//
// All workers share tx (page locks are shared-mode and the engine is safe
// for concurrent reads); the caller must not commit or abort concurrently.
func ParallelScan(tx *engine.Txn, r *Relation, pred func(Tuple) bool, workers int) ([]Tuple, error) {
	if workers < 1 {
		workers = 1
	}
	if int64(workers) > r.Pages {
		workers = int(r.Pages)
	}
	parts := make([][]Tuple, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		lo := r.Pages * int64(w) / int64(workers)
		hi := r.Pages * int64(w+1) / int64(workers)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				tuples, err := r.page(tx, i)
				if err != nil {
					errs[w] = err
					return
				}
				for _, t := range tuples {
					if pred == nil || pred(t) {
						parts[w] = append(parts[w], t)
					}
				}
			}
		}()
	}
	wg.Wait()
	var out []Tuple
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return nil, errs[w]
		}
		out = append(out, parts[w]...)
	}
	return out, nil
}

// ParallelDiffScan is ParallelScan over a differential view: each worker
// handles a page range of B and A and applies the set difference against a
// shared deletion set, merging results in page order. Comparisons are
// accumulated on the view afterwards (single-threaded bookkeeping).
func ParallelDiffScan(tx *engine.Txn, v *DiffView, pred func(Tuple) bool, strat Strategy, workers int) ([]Tuple, error) {
	dels, err := v.dKeys(tx)
	if err != nil {
		return nil, err
	}
	scan := func(r *Relation) ([]Tuple, error) {
		if workers < 1 {
			workers = 1
		}
		w := workers
		if int64(w) > r.Pages {
			w = int(r.Pages)
		}
		parts := make([][]Tuple, w)
		comps := make([]int64, w)
		diffed := make([]int64, w)
		skipped := make([]int64, w)
		errs := make([]error, w)
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			k := k
			lo := r.Pages * int64(k) / int64(w)
			hi := r.Pages * int64(k+1) / int64(w)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					tuples, err := r.page(tx, i)
					if err != nil {
						errs[k] = err
						return
					}
					matched := tuples[:0:0]
					for _, t := range tuples {
						if pred == nil || pred(t) {
							matched = append(matched, t)
						}
					}
					if len(matched) == 0 && strat == Optimal {
						skipped[k]++
						continue
					}
					diffed[k]++
					source := matched
					if strat == Basic {
						source = tuples
					}
					for _, t := range source {
						dead := false
						for _, d := range dels {
							comps[k]++
							if d == t {
								dead = true
							}
						}
						if !dead && (pred == nil || pred(t)) {
							parts[k] = append(parts[k], t)
						}
					}
				}
			}()
		}
		wg.Wait()
		var out []Tuple
		for k := 0; k < w; k++ {
			if errs[k] != nil {
				return nil, errs[k]
			}
			out = append(out, parts[k]...)
			v.Comparisons += comps[k]
			v.PagesDiffed += diffed[k]
			v.PagesSkipped += skipped[k]
		}
		return out, nil
	}
	bOut, err := scan(v.B)
	if err != nil {
		return nil, err
	}
	aOut, err := scan(v.A)
	if err != nil {
		return nil, err
	}
	return append(bOut, aOut...), nil
}
