package relation

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/engine"
)

func TestFixedGetPut(t *testing.T) {
	e := newEngine(t, 8)
	f := NewFixed("f", 0, 4, 4)
	if f.Capacity() != 16 {
		t.Fatalf("capacity = %d", f.Capacity())
	}
	err := e.Update(func(tx *engine.Txn) error {
		for k := int64(0); k < 16; k++ {
			if err := f.Put(tx, Tuple{Key: k, Value: fmt.Sprintf("v%d", k)}); err != nil {
				return err
			}
		}
		// Replace an existing key.
		if err := f.Put(tx, Tuple{Key: 5, Value: "replaced"}); err != nil {
			return err
		}
		got, ok, err := f.Get(tx, 5)
		if err != nil || !ok || got.Value != "replaced" {
			return fmt.Errorf("get 5: %v %v %v", got, ok, err)
		}
		if _, ok, _ := f.Get(tx, 15); !ok {
			return fmt.Errorf("key 15 missing")
		}
		all, err := f.ScanAll(tx)
		if err != nil {
			return err
		}
		if len(all) != 16 {
			return fmt.Errorf("scan = %d tuples", len(all))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFixedKeyOutOfRange(t *testing.T) {
	e := newEngine(t, 4)
	f := NewFixed("f", 0, 2, 2)
	err := e.Update(func(tx *engine.Txn) error {
		if _, _, err := f.Get(tx, 99); err == nil {
			return fmt.Errorf("out-of-range get accepted")
		}
		if err := f.Put(tx, Tuple{Key: -1}); err == nil {
			return fmt.Errorf("negative key accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFixedMissingKey(t *testing.T) {
	e := newEngine(t, 4)
	f := NewFixed("f", 0, 2, 2)
	err := e.Update(func(tx *engine.Txn) error {
		_, ok, err := f.Get(tx, 1)
		if err != nil {
			return err
		}
		if ok {
			return fmt.Errorf("absent key found")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFixedPointAccessTouchesOnePage(t *testing.T) {
	// A Get must lock only the key's page: a writer on another page of the
	// same relation must not block it.
	e := newEngine(t, 8)
	f := NewFixed("f", 0, 4, 2)
	if err := e.Update(func(tx *engine.Txn) error {
		return f.Put(tx, Tuple{Key: 0, Value: "a"})
	}); err != nil {
		t.Fatal(err)
	}
	writer, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Put(writer, Tuple{Key: 7, Value: "held"}); err != nil {
		t.Fatal(err)
	}
	// Reader of key 0 proceeds although the writer X-locks key 7's page.
	done := make(chan error, 1)
	go func() {
		done <- e.Update(func(tx *engine.Txn) error {
			_, _, err := f.Get(tx, 0)
			return err
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("point read blocked behind an unrelated page's writer")
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
}
