// Package relation is a tuple-level layer over the functional transactional
// engines: heap-file relations of keyed tuples packed into pages, plus the
// paper's differential-file view R = (B ∪ A) − D at tuple granularity with
// both of the query-processing strategies Table 9 compares (the basic
// strategy set-differences every page, the optimal strategy only pages that
// produce result tuples), and a parallel scan that fans page ranges out to
// goroutine "query processors" in the spirit of the paper's reference [21].
package relation

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/engine"
)

// Tuple is one record: a key and an uninterpreted value.
type Tuple struct {
	Key   int64
	Value string
}

// encode layout per tuple: 8-byte key, 4-byte length, value bytes.
func (t Tuple) encodedSize() int { return 12 + len(t.Value) }

func appendTuple(buf []byte, t Tuple) []byte {
	var k [8]byte
	binary.BigEndian.PutUint64(k[:], uint64(t.Key))
	buf = append(buf, k[:]...)
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(t.Value)))
	buf = append(buf, l[:]...)
	return append(buf, t.Value...)
}

func decodeTuple(buf []byte) (Tuple, int, error) {
	if len(buf) < 12 {
		return Tuple{}, 0, fmt.Errorf("relation: truncated tuple header")
	}
	key := int64(binary.BigEndian.Uint64(buf))
	n := int(binary.BigEndian.Uint32(buf[8:]))
	if len(buf) < 12+n {
		return Tuple{}, 0, fmt.Errorf("relation: truncated tuple value")
	}
	return Tuple{Key: key, Value: string(buf[12 : 12+n])}, 12 + n, nil
}

// encodePage packs tuples into a page image: 4-byte count then tuples.
func encodePage(tuples []Tuple) []byte {
	var c [4]byte
	binary.BigEndian.PutUint32(c[:], uint32(len(tuples)))
	buf := append([]byte(nil), c[:]...)
	for _, t := range tuples {
		buf = appendTuple(buf, t)
	}
	return buf
}

func decodePage(buf []byte) ([]Tuple, error) {
	if len(buf) == 0 {
		return nil, nil
	}
	if len(buf) < 4 {
		return nil, fmt.Errorf("relation: truncated page header")
	}
	n := int(binary.BigEndian.Uint32(buf))
	buf = buf[4:]
	// Each tuple needs at least 12 bytes; a count beyond that is corruption
	// (and must not drive the allocation below).
	if n > len(buf)/12 {
		return nil, fmt.Errorf("relation: corrupt page: %d tuples in %d bytes", n, len(buf))
	}
	out := make([]Tuple, 0, n)
	for i := 0; i < n; i++ {
		t, sz, err := decodeTuple(buf)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		buf = buf[sz:]
	}
	return out, nil
}

// pageBudget leaves headroom below the 4 KB page size.
const pageBudget = 3900

// Relation is a heap file of tuples spread over a fixed page range
// [Base, Base+Pages) of the underlying engine. All access goes through a
// transaction, so relations inherit locking, atomicity and recovery from
// the engine.
type Relation struct {
	Name  string
	Base  int64
	Pages int64
}

// New defines a relation over the page range [base, base+pages).
func New(name string, base, pages int64) *Relation {
	if pages <= 0 {
		panic("relation: need at least one page")
	}
	return &Relation{Name: name, Base: base, Pages: pages}
}

func (r *Relation) page(tx *engine.Txn, i int64) ([]Tuple, error) {
	buf, err := tx.Read(r.Base + i)
	if err != nil {
		return nil, err
	}
	return decodePage(buf)
}

func (r *Relation) writePage(tx *engine.Txn, i int64, tuples []Tuple) error {
	return tx.Write(r.Base+i, encodePage(tuples))
}

// Insert adds a tuple, packing it into the first page with room.
func (r *Relation) Insert(tx *engine.Txn, t Tuple) error {
	need := t.encodedSize()
	for i := int64(0); i < r.Pages; i++ {
		tuples, err := r.page(tx, i)
		if err != nil {
			return err
		}
		used := 4
		for _, u := range tuples {
			used += u.encodedSize()
		}
		if used+need <= pageBudget {
			return r.writePage(tx, i, append(tuples, t))
		}
	}
	return fmt.Errorf("relation %s: full (%d pages)", r.Name, r.Pages)
}

// Delete removes every tuple with the given key; it reports how many were
// removed.
func (r *Relation) Delete(tx *engine.Txn, key int64) (int, error) {
	removed := 0
	for i := int64(0); i < r.Pages; i++ {
		tuples, err := r.page(tx, i)
		if err != nil {
			return removed, err
		}
		kept := tuples[:0]
		for _, t := range tuples {
			if t.Key == key {
				removed++
				continue
			}
			kept = append(kept, t)
		}
		if len(kept) != len(tuples) {
			if err := r.writePage(tx, i, kept); err != nil {
				return removed, err
			}
		}
	}
	return removed, nil
}

// Update rewrites the value of every tuple with the given key.
func (r *Relation) Update(tx *engine.Txn, key int64, value string) (int, error) {
	updated := 0
	for i := int64(0); i < r.Pages; i++ {
		tuples, err := r.page(tx, i)
		if err != nil {
			return updated, err
		}
		changed := false
		for j := range tuples {
			if tuples[j].Key == key {
				tuples[j].Value = value
				updated++
				changed = true
			}
		}
		if changed {
			if err := r.writePage(tx, i, tuples); err != nil {
				return updated, err
			}
		}
	}
	return updated, nil
}

// Scan returns every tuple satisfying pred (nil = all), in page order.
func (r *Relation) Scan(tx *engine.Txn, pred func(Tuple) bool) ([]Tuple, error) {
	var out []Tuple
	for i := int64(0); i < r.Pages; i++ {
		tuples, err := r.page(tx, i)
		if err != nil {
			return nil, err
		}
		for _, t := range tuples {
			if pred == nil || pred(t) {
				out = append(out, t)
			}
		}
	}
	return out, nil
}

// Lookup returns the tuples with the given key.
func (r *Relation) Lookup(tx *engine.Txn, key int64) ([]Tuple, error) {
	return r.Scan(tx, func(t Tuple) bool { return t.Key == key })
}

// Count reports the number of tuples in the relation.
func (r *Relation) Count(tx *engine.Txn) (int, error) {
	all, err := r.Scan(tx, nil)
	return len(all), err
}

// SortByKey orders tuples by key (stable helper for tests and reports).
func SortByKey(ts []Tuple) {
	sort.SliceStable(ts, func(i, j int) bool { return ts[i].Key < ts[j].Key })
}
