package relation

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/wal"
)

func newView(t *testing.T) (*engine.Engine, *DiffView) {
	t.Helper()
	e := newEngine(t, 32)
	v := NewDiffView("r", 0, 8, 8)
	return e, v
}

func loadBase(t *testing.T, e *engine.Engine, v *DiffView, n int64) {
	t.Helper()
	if err := e.Update(func(tx *engine.Txn) error {
		for i := int64(0); i < n; i++ {
			if err := v.B.Insert(tx, Tuple{Key: i, Value: fmt.Sprintf("base%d", i)}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDiffViewResolution(t *testing.T) {
	e, v := newView(t)
	loadBase(t, e, v, 20)
	err := e.Update(func(tx *engine.Txn) error {
		if err := v.Update(tx, 3, "updated"); err != nil {
			return err
		}
		if err := v.Delete(tx, 5); err != nil {
			return err
		}
		return v.Insert(tx, Tuple{Key: 100, Value: "new"})
	})
	if err != nil {
		t.Fatal(err)
	}
	err = e.Update(func(tx *engine.Txn) error {
		if got, ok, _ := v.Lookup(tx, 3); !ok || got.Value != "updated" {
			return fmt.Errorf("lookup 3: %v %v", got, ok)
		}
		if _, ok, _ := v.Lookup(tx, 5); ok {
			return fmt.Errorf("deleted key visible")
		}
		if got, ok, _ := v.Lookup(tx, 100); !ok || got.Value != "new" {
			return fmt.Errorf("insert lost: %v %v", got, ok)
		}
		if got, ok, _ := v.Lookup(tx, 7); !ok || got.Value != "base7" {
			return fmt.Errorf("base read: %v %v", got, ok)
		}
		all, err := v.Scan(tx, nil, Optimal)
		if err != nil {
			return err
		}
		if len(all) != 20 { // 20 - 1 deleted + 1 inserted
			return fmt.Errorf("view size %d", len(all))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedUpdatesSameKey(t *testing.T) {
	e, v := newView(t)
	loadBase(t, e, v, 5)
	for i := 0; i < 4; i++ {
		i := i
		if err := e.Update(func(tx *engine.Txn) error {
			return v.Update(tx, 2, fmt.Sprintf("rev%d", i))
		}); err != nil {
			t.Fatal(err)
		}
	}
	err := e.Update(func(tx *engine.Txn) error {
		got, ok, err := v.Lookup(tx, 2)
		if err != nil || !ok {
			return fmt.Errorf("lookup: %v %v", ok, err)
		}
		if got.Value != "rev3" {
			return fmt.Errorf("stale version: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBasicDiffsMorePagesThanOptimal(t *testing.T) {
	e, v := newView(t)
	loadBase(t, e, v, 40)
	if err := e.Update(func(tx *engine.Txn) error { return v.Update(tx, 1, "x") }); err != nil {
		t.Fatal(err)
	}
	selective := func(t Tuple) bool { return t.Key == 1 }
	err := e.Update(func(tx *engine.Txn) error {
		v.PagesDiffed, v.PagesSkipped, v.Comparisons = 0, 0, 0
		if _, err := v.Scan(tx, selective, Basic); err != nil {
			return err
		}
		basicDiffed, basicComps := v.PagesDiffed, v.Comparisons

		v.PagesDiffed, v.PagesSkipped, v.Comparisons = 0, 0, 0
		if _, err := v.Scan(tx, selective, Optimal); err != nil {
			return err
		}
		optDiffed, optComps, optSkipped := v.PagesDiffed, v.Comparisons, v.PagesSkipped

		if basicDiffed <= optDiffed {
			return fmt.Errorf("basic diffed %d pages, optimal %d", basicDiffed, optDiffed)
		}
		if basicComps <= optComps {
			return fmt.Errorf("basic %d comparisons, optimal %d", basicComps, optComps)
		}
		if optSkipped == 0 {
			return fmt.Errorf("optimal never skipped a page")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMergeFoldsDifferentials(t *testing.T) {
	e, v := newView(t)
	loadBase(t, e, v, 10)
	if err := e.Update(func(tx *engine.Txn) error {
		if err := v.Update(tx, 1, "merged"); err != nil {
			return err
		}
		return v.Delete(tx, 2)
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Update(func(tx *engine.Txn) error { return v.Merge(tx) }); err != nil {
		t.Fatal(err)
	}
	err := e.Update(func(tx *engine.Txn) error {
		frac, err := v.DiffSizeFrac(tx)
		if err != nil {
			return err
		}
		if frac != 0 {
			return fmt.Errorf("differentials remain: %v", frac)
		}
		if got, ok, _ := v.Lookup(tx, 1); !ok || got.Value != "merged" {
			return fmt.Errorf("merged update lost: %v", got)
		}
		if _, ok, _ := v.Lookup(tx, 2); ok {
			return fmt.Errorf("merged delete lost")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHypotheticalDiscard(t *testing.T) {
	// Stonebraker's hypothetical database: run "what if" updates in the
	// differentials, inspect the view, then abort — the base is untouched.
	e, v := newView(t)
	loadBase(t, e, v, 10)
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Update(tx, 0, "hypothetical"); err != nil {
		t.Fatal(err)
	}
	got, ok, err := v.Lookup(tx, 0)
	if err != nil || !ok || got.Value != "hypothetical" {
		t.Fatalf("hypothesis invisible: %v %v %v", got, ok, err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	err = e.Update(func(tx *engine.Txn) error {
		got, ok, err := v.Lookup(tx, 0)
		if err != nil || !ok || got.Value != "base0" {
			return fmt.Errorf("base mutated: %v %v %v", got, ok, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParallelDiffScanMatchesSerial(t *testing.T) {
	e, v := newView(t)
	loadBase(t, e, v, 60)
	if err := e.Update(func(tx *engine.Txn) error {
		for k := int64(0); k < 10; k++ {
			if err := v.Update(tx, k*3, fmt.Sprintf("u%d", k)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	pred := func(t Tuple) bool { return t.Key%2 == 0 }
	err := e.Update(func(tx *engine.Txn) error {
		serial, err := v.Scan(tx, pred, Optimal)
		if err != nil {
			return err
		}
		par, err := ParallelDiffScan(tx, v, pred, Optimal, 4)
		if err != nil {
			return err
		}
		if len(par) != len(serial) {
			return fmt.Errorf("parallel %d vs serial %d", len(par), len(serial))
		}
		for i := range par {
			if par[i] != serial[i] {
				return fmt.Errorf("order differs at %d: %v vs %v", i, par[i], serial[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDiffViewEquivalenceProperty(t *testing.T) {
	// Property: the view equals a model map under random committed ops,
	// regardless of strategy.
	f := func(ops []uint16) bool {
		e := engine.NewWAL(wal.Config{})
		for p := int64(0); p < 24; p++ {
			if err := e.Load(p, nil); err != nil {
				return false
			}
		}
		v := NewDiffView("q", 0, 8, 8)
		model := map[int64]string{}
		for i := int64(0); i < 10; i++ {
			i := i
			if e.Update(func(tx *engine.Txn) error {
				return v.B.Insert(tx, Tuple{Key: i, Value: fmt.Sprintf("b%d", i)})
			}) != nil {
				return false
			}
			model[i] = fmt.Sprintf("b%d", i)
		}
		for n, op := range ops {
			if n > 25 {
				break // keep differential relations within capacity
			}
			key := int64(op % 12)
			val := fmt.Sprintf("n%d", n)
			err := e.Update(func(tx *engine.Txn) error {
				switch op % 3 {
				case 0:
					if _, ok := model[key]; ok {
						if err := v.Update(tx, key, val); err != nil {
							return err
						}
						model[key] = val
					}
				case 1:
					if err := v.Delete(tx, key); err != nil {
						return err
					}
					delete(model, key)
				case 2:
					if _, ok := model[key]; !ok {
						if err := v.Insert(tx, Tuple{Key: key, Value: val}); err != nil {
							return err
						}
						model[key] = val
					}
				}
				return nil
			})
			if err != nil {
				return false
			}
		}
		ok := true
		err := e.Update(func(tx *engine.Txn) error {
			for _, strat := range []Strategy{Basic, Optimal} {
				all, err := v.Scan(tx, nil, strat)
				if err != nil {
					return err
				}
				if len(all) != len(model) {
					ok = false
					return nil
				}
				for _, t := range all {
					if model[t.Key] != t.Value {
						ok = false
					}
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
