package relation

import (
	"fmt"

	"repro/internal/engine"
)

// Fixed is a key-addressed (hashed) file: a tuple's key determines its page
// directly, so point reads and writes touch exactly one page — the hashed
// access method of the paper's era, and the right shape for record-level
// workloads like DebitCredit where heap scans would serialize everything.
type Fixed struct {
	Name         string
	Base         int64
	Pages        int64
	SlotsPerPage int64
}

// NewFixed defines a fixed-slot relation over [base, base+pages) with the
// given fanout.
func NewFixed(name string, base, pages, slotsPerPage int64) *Fixed {
	if pages <= 0 || slotsPerPage <= 0 {
		panic("relation: bad fixed-relation shape")
	}
	return &Fixed{Name: name, Base: base, Pages: pages, SlotsPerPage: slotsPerPage}
}

// Capacity reports the largest key the relation can hold (exclusive).
func (f *Fixed) Capacity() int64 { return f.Pages * f.SlotsPerPage }

func (f *Fixed) pageOf(key int64) (int64, error) {
	if key < 0 || key >= f.Capacity() {
		return 0, fmt.Errorf("relation %s: key %d out of range [0,%d)", f.Name, key, f.Capacity())
	}
	return f.Base + key/f.SlotsPerPage, nil
}

// Get reads the tuple with the given key (touching only its page).
func (f *Fixed) Get(tx *engine.Txn, key int64) (Tuple, bool, error) {
	pg, err := f.pageOf(key)
	if err != nil {
		return Tuple{}, false, err
	}
	buf, err := tx.Read(pg)
	if err != nil {
		return Tuple{}, false, err
	}
	tuples, err := decodePage(buf)
	if err != nil {
		return Tuple{}, false, err
	}
	for _, t := range tuples {
		if t.Key == key {
			return t, true, nil
		}
	}
	return Tuple{}, false, nil
}

// Put inserts or replaces the tuple at its key's page.
func (f *Fixed) Put(tx *engine.Txn, t Tuple) error {
	pg, err := f.pageOf(t.Key)
	if err != nil {
		return err
	}
	buf, err := tx.Read(pg)
	if err != nil {
		return err
	}
	tuples, err := decodePage(buf)
	if err != nil {
		return err
	}
	replaced := false
	for i := range tuples {
		if tuples[i].Key == t.Key {
			tuples[i] = t
			replaced = true
			break
		}
	}
	if !replaced {
		if int64(len(tuples)) >= f.SlotsPerPage {
			return fmt.Errorf("relation %s: page for key %d full", f.Name, t.Key)
		}
		tuples = append(tuples, t)
	}
	return tx.Write(pg, encodePage(tuples))
}

// ScanAll returns every tuple (page order) — used for invariant checks.
func (f *Fixed) ScanAll(tx *engine.Txn) ([]Tuple, error) {
	var out []Tuple
	for i := int64(0); i < f.Pages; i++ {
		buf, err := tx.Read(f.Base + i)
		if err != nil {
			return nil, err
		}
		tuples, err := decodePage(buf)
		if err != nil {
			return nil, err
		}
		out = append(out, tuples...)
	}
	return out, nil
}
