package relation

import (
	"fmt"

	"repro/internal/engine"
)

// Strategy selects how a differential view processes queries, mirroring the
// simulation's Table 9 strategies at tuple granularity.
type Strategy int

const (
	// Optimal set-differences only pages that produced at least one
	// qualifying tuple.
	Optimal Strategy = iota
	// Basic set-differences every page of B and A.
	Basic
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	if s == Basic {
		return "basic"
	}
	return "optimal"
}

// DiffView is the paper's differential-file data model at tuple level:
// a read-only base relation B, an additions relation A, and a deletions
// relation D (which stores obituary keys). The view's contents are
// (B ∪ A) − D. Updates never touch B, so B can be shared, snapshotted, or
// used for hypothetical ("what if") processing à la Stonebraker's
// hypothetical databases — discard A and D and the base is untouched.
type DiffView struct {
	B *Relation
	A *Relation
	D *Relation

	// Comparisons counts tuple-pair comparisons performed by set
	// differences — the CPU cost driver of the paper's Section 4.3.
	Comparisons int64
	// PagesDiffed / PagesSkipped count set-difference work per strategy.
	PagesDiffed  int64
	PagesSkipped int64
}

// NewDiffView lays B, A and D out over consecutive page ranges starting at
// base: bPages for the base, then diffPages each for A and D.
func NewDiffView(name string, base, bPages, diffPages int64) *DiffView {
	return &DiffView{
		B: New(name+".B", base, bPages),
		A: New(name+".A", base+bPages, diffPages),
		D: New(name+".D", base+bPages+diffPages, diffPages),
	}
}

// Insert adds a tuple to the view (an A-file append).
func (v *DiffView) Insert(tx *engine.Txn, t Tuple) error {
	return v.A.Insert(tx, t)
}

// Delete removes key from the view: the exact current tuple is appended to
// D as its obituary (D holds whole tuples, so an obituary never shadows a
// newer version of the same key). B is untouched.
func (v *DiffView) Delete(tx *engine.Txn, key int64) error {
	cur, ok, err := v.Lookup(tx, key)
	if err != nil {
		return err
	}
	if !ok {
		return nil // nothing to delete
	}
	return v.D.Insert(tx, cur)
}

// Update replaces key's value: the old version's obituary goes to D and the
// new tuple to A — exactly the paper's decomposition.
func (v *DiffView) Update(tx *engine.Txn, key int64, value string) error {
	if err := v.Delete(tx, key); err != nil {
		return err
	}
	return v.Insert(tx, Tuple{Key: key, Value: value})
}

// dKeys loads the deletion set.
func (v *DiffView) dKeys(tx *engine.Txn) ([]Tuple, error) {
	return v.D.Scan(tx, nil)
}

// setDifference filters page tuples against the deletion set (exact-tuple
// matches, since D holds whole tuples), counting every tuple-pair
// comparison like the paper's CPU model does.
func (v *DiffView) setDifference(page []Tuple, dels []Tuple) []Tuple {
	out := page[:0:0]
	for _, t := range page {
		dead := false
		for _, d := range dels {
			v.Comparisons++
			if d == t {
				dead = true
				// Keep scanning: the count models the paper's full
				// set-difference pass over the D tuples.
			}
		}
		if !dead {
			out = append(out, t)
		}
	}
	return out
}

// Scan evaluates pred over the view contents (B ∪ A) − D using the given
// strategy. Within B, a tuple superseded by an A entry for the same key is
// also considered deleted (updates append both a D obituary and an A
// version, so the D pass already handles it).
func (v *DiffView) Scan(tx *engine.Txn, pred func(Tuple) bool, strat Strategy) ([]Tuple, error) {
	dels, err := v.dKeys(tx)
	if err != nil {
		return nil, err
	}
	var out []Tuple
	scanRel := func(r *Relation) error {
		for i := int64(0); i < r.Pages; i++ {
			tuples, err := r.page(tx, i)
			if err != nil {
				return err
			}
			matched := tuples[:0:0]
			for _, t := range tuples {
				if pred == nil || pred(t) {
					matched = append(matched, t)
				}
			}
			switch {
			case len(matched) == 0 && strat == Optimal:
				// The optimal strategy skips the set difference entirely
				// when the scan yields no result tuples.
				v.PagesSkipped++
			case strat == Basic:
				// Basic runs the difference over the whole page first, then
				// filters the survivors.
				v.PagesDiffed++
				survivors := v.setDifference(tuples, dels)
				for _, t := range survivors {
					if pred == nil || pred(t) {
						out = append(out, t)
					}
				}
			default:
				v.PagesDiffed++
				out = append(out, v.setDifference(matched, dels)...)
			}
		}
		return nil
	}
	if err := scanRel(v.B); err != nil {
		return nil, err
	}
	if err := scanRel(v.A); err != nil {
		return nil, err
	}
	return out, nil
}

// Lookup resolves a single key through the view: the newest A version wins,
// a D obituary without a newer A version means absent, otherwise B.
func (v *DiffView) Lookup(tx *engine.Txn, key int64) (Tuple, bool, error) {
	matches, err := v.Scan(tx, func(t Tuple) bool { return t.Key == key }, Optimal)
	if err != nil {
		return Tuple{}, false, err
	}
	if len(matches) == 0 {
		return Tuple{}, false, nil
	}
	// A pages are scanned after B, so the last match is the newest version.
	return matches[len(matches)-1], true, nil
}

// Merge folds the committed view into B and truncates A and D — the
// maintenance operation whose deferral grows the differential files
// (Table 11).
func (v *DiffView) Merge(tx *engine.Txn) error {
	merged, err := v.Scan(tx, nil, Optimal)
	if err != nil {
		return err
	}
	// Deduplicate by key, newest version winning.
	newest := map[int64]Tuple{}
	order := []int64{}
	for _, t := range merged {
		if _, seen := newest[t.Key]; !seen {
			order = append(order, t.Key)
		}
		newest[t.Key] = t
	}
	// Rewrite B, clear A and D.
	for i := int64(0); i < v.B.Pages; i++ {
		if err := v.B.writePage(tx, i, nil); err != nil {
			return err
		}
	}
	for _, k := range order {
		if err := v.B.Insert(tx, newest[k]); err != nil {
			return err
		}
	}
	for i := int64(0); i < v.A.Pages; i++ {
		if err := v.A.writePage(tx, i, nil); err != nil {
			return err
		}
	}
	for i := int64(0); i < v.D.Pages; i++ {
		if err := v.D.writePage(tx, i, nil); err != nil {
			return err
		}
	}
	return nil
}

// DiffSizeFrac reports |A|+|D| relative to |B| in tuples — the knob of
// Table 11.
func (v *DiffView) DiffSizeFrac(tx *engine.Txn) (float64, error) {
	nb, err := v.B.Count(tx)
	if err != nil {
		return 0, err
	}
	na, err := v.A.Count(tx)
	if err != nil {
		return 0, err
	}
	nd, err := v.D.Count(tx)
	if err != nil {
		return 0, err
	}
	if nb == 0 {
		return 0, fmt.Errorf("relation: empty base")
	}
	return float64(na+nd) / float64(nb), nil
}
