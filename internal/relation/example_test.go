package relation_test

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/wal"
)

// Example builds a differential view, updates it without ever touching the
// base file, and resolves reads through (B ∪ A) − D.
func Example() {
	eng := engine.NewWAL(wal.Config{})
	for p := int64(0); p < 12; p++ {
		if err := eng.Load(p, nil); err != nil {
			panic(err)
		}
	}
	view := relation.NewDiffView("parts", 0, 4, 4)

	err := eng.Update(func(tx *engine.Txn) error {
		for i := int64(1); i <= 3; i++ {
			t := relation.Tuple{Key: i, Value: fmt.Sprintf("part-%d", i)}
			if err := view.B.Insert(tx, t); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		panic(err)
	}

	err = eng.Update(func(tx *engine.Txn) error {
		if err := view.Update(tx, 2, "part-2 (revised)"); err != nil {
			return err
		}
		return view.Delete(tx, 3)
	})
	if err != nil {
		panic(err)
	}

	err = eng.Update(func(tx *engine.Txn) error {
		all, err := view.Scan(tx, nil, relation.Optimal)
		if err != nil {
			return err
		}
		relation.SortByKey(all)
		for _, t := range all {
			fmt.Printf("%d: %s\n", t.Key, t.Value)
		}
		base, err := view.B.Count(tx)
		if err != nil {
			return err
		}
		fmt.Printf("base file still holds %d tuples\n", base)
		return nil
	})
	if err != nil {
		panic(err)
	}
	// Output:
	// 1: part-1
	// 2: part-2 (revised)
	// base file still holds 3 tuples
}
