package relation

import (
	"bytes"
	"testing"
)

// FuzzDecodePage hammers the heap-page decoder: no panics, and a successful
// decode must re-encode to an equivalent page.
func FuzzDecodePage(f *testing.F) {
	f.Add(encodePage([]Tuple{{Key: 1, Value: "a"}, {Key: -5, Value: ""}}))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 200})
	f.Add(bytes.Repeat([]byte{0xee}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		tuples, err := decodePage(data)
		if err != nil {
			return
		}
		again, err := decodePage(encodePage(tuples))
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if len(again) != len(tuples) {
			t.Fatalf("tuple count changed: %d vs %d", len(again), len(tuples))
		}
		for i := range tuples {
			if again[i] != tuples[i] {
				t.Fatalf("tuple %d changed: %+v vs %+v", i, again[i], tuples[i])
			}
		}
	})
}

// FuzzDecodeTuple checks the single-tuple decoder's bounds handling.
func FuzzDecodeTuple(f *testing.F) {
	f.Add(appendTuple(nil, Tuple{Key: 42, Value: "hello"}))
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		tup, n, err := decodeTuple(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		if got := appendTuple(nil, tup); !bytes.Equal(got, data[:n]) {
			t.Fatalf("re-encode mismatch")
		}
	})
}
