package debitcredit

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/pagestore"
	"repro/internal/shadoweng"
	"repro/internal/sim"
	"repro/internal/wal"
)

func engines(t *testing.T) map[string]*engine.Engine {
	t.Helper()
	shadow, err := engine.NewShadow()
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*engine.Engine{
		"wal":      engine.NewWAL(wal.Config{Streams: 2, Selection: wal.PageMod, PoolPages: 16}),
		"shadow":   shadow,
		"noundo":   engine.NewOverwrite(shadoweng.NoUndo),
		"difffile": engine.NewDiff(),
	}
}

func TestDebitCreditInvariants(t *testing.T) {
	for name, eng := range engines(t) {
		name, eng := name, eng
		t.Run(name, func(t *testing.T) {
			b, err := New(eng, Config{})
			if err != nil {
				t.Fatal(err)
			}
			if err := b.Run(120, 4); err != nil {
				t.Fatal(err)
			}
			commits, _ := b.Stats()
			if commits != 120 {
				t.Fatalf("commits = %d", commits)
			}
			if err := b.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDebitCreditSurvivesCrash(t *testing.T) {
	store := pagestore.New(4096)
	eng, _ := engine.NewWALOn(store, wal.Config{Streams: 2, Selection: wal.PageMod, PoolPages: 8})
	b, err := New(eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Run(60, 3); err != nil {
		t.Fatal(err)
	}
	eng.Crash()
	if err := eng.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := b.ResyncAfterRecovery(); err != nil {
		t.Fatal(err)
	}
	if err := b.Verify(); err != nil {
		t.Fatalf("invariants broken after crash: %v", err)
	}
	// The bank keeps working after recovery.
	rng := sim.NewRNG(7)
	if err := b.Transact(rng, 0, 42); err != nil {
		t.Fatal(err)
	}
	if err := b.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDebitCreditCrashMidCommitStaysAtomic(t *testing.T) {
	for budget := int64(10); budget <= 200; budget += 37 {
		store := pagestore.New(4096)
		eng, _ := engine.NewWALOn(store, wal.Config{Streams: 2, PoolPages: 8})
		b, err := New(eng, Config{})
		if err != nil {
			t.Fatal(err)
		}
		store.SetWriteBudget(budget)
		_ = b.Run(50, 2) // errors expected when power fails
		eng.Crash()
		if err := eng.Recover(); err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if err := b.ResyncAfterRecovery(); err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if err := b.Verify(); err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
	}
}

func TestRemoteBranchFraction(t *testing.T) {
	eng := engine.NewWAL(wal.Config{})
	b, err := New(eng, Config{Branches: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Run(400, 4); err != nil {
		t.Fatal(err)
	}
	_, remote := b.Stats()
	frac := float64(remote) / 400
	if frac < 0.08 || frac > 0.25 {
		t.Fatalf("remote fraction %.2f, want ~0.15", frac)
	}
}
