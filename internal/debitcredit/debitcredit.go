// Package debitcredit implements the DebitCredit banking workload ("A
// Measure of Transaction Processing Power", Datamation 1985 — the
// contemporaneous benchmark of the paper's era and the ancestor of TPC-A/B)
// on this repository's functional recovery engines.
//
// The schema is the classic one: branches, tellers (ten per branch),
// accounts, and an append-only history file. Each transaction debits or
// credits one account, its teller, and its branch, and appends a history
// record; 15% of transactions touch an account of a *remote* branch. The
// invariant — sum(accounts) = sum(tellers) = sum(branches), one history
// record per commit — must hold at all times, including after a crash.
package debitcredit

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/sim"
)

// Config shapes the bank.
type Config struct {
	Branches          int // default 2
	TellersPerBranch  int // default 10
	AccountsPerBranch int // default 100
	HistoryPages      int // default 64
	Seed              int64
}

func (c Config) withDefaults() Config {
	if c.Branches == 0 {
		c.Branches = 2
	}
	if c.TellersPerBranch == 0 {
		c.TellersPerBranch = 10
	}
	if c.AccountsPerBranch == 0 {
		c.AccountsPerBranch = 100
	}
	if c.HistoryPages == 0 {
		c.HistoryPages = 64
	}
	if c.Seed == 0 {
		c.Seed = 1985
	}
	return c
}

// Bench is one DebitCredit bank over a transactional engine.
type Bench struct {
	cfg Config
	eng *engine.Engine

	accounts *relation.Fixed
	tellers  *relation.Fixed
	branches *relation.Fixed
	history  *relation.Relation

	historySeq atomic.Int64
	commits    atomic.Int64
	remote     atomic.Int64
}

// balance tuples store the amount as a decimal string.
func bal(v int64) string { return strconv.FormatInt(v, 10) }

func unbal(s string) int64 {
	v, _ := strconv.ParseInt(s, 10, 64)
	return v
}

// New lays the bank out over the engine's page space and loads the initial
// rows (every balance starts at 0, so the grand total is 0 throughout).
func New(eng *engine.Engine, cfg Config) (*Bench, error) {
	cfg = cfg.withDefaults()
	nAcct := int64(cfg.Branches * cfg.AccountsPerBranch)
	nTell := int64(cfg.Branches * cfg.TellersPerBranch)
	nBr := int64(cfg.Branches)

	const slots = 16
	acctPages := (nAcct + slots - 1) / slots
	tellPages := (nTell + slots - 1) / slots
	brPages := nBr // one branch per page: the classic hot spot

	base := int64(0)
	b := &Bench{cfg: cfg, eng: eng}
	b.accounts = relation.NewFixed("accounts", base, acctPages, slots)
	base += acctPages
	b.tellers = relation.NewFixed("tellers", base, tellPages, slots)
	base += tellPages
	b.branches = relation.NewFixed("branches", base, brPages, 1)
	base += brPages
	b.history = relation.New("history", base, int64(cfg.HistoryPages))
	base += int64(cfg.HistoryPages)

	for p := int64(0); p < base; p++ {
		if err := eng.Load(p, nil); err != nil {
			return nil, err
		}
	}
	err := eng.Update(func(tx *engine.Txn) error {
		for i := int64(0); i < nAcct; i++ {
			if err := b.accounts.Put(tx, relation.Tuple{Key: i, Value: bal(0)}); err != nil {
				return err
			}
		}
		for i := int64(0); i < nTell; i++ {
			if err := b.tellers.Put(tx, relation.Tuple{Key: i, Value: bal(0)}); err != nil {
				return err
			}
		}
		for i := int64(0); i < nBr; i++ {
			if err := b.branches.Put(tx, relation.Tuple{Key: i, Value: bal(0)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return b, nil
}

// Transact runs one DebitCredit transaction for the given teller with the
// given amount, choosing the account per the 85/15 local/remote rule.
func (b *Bench) Transact(rng *sim.RNG, teller int64, amount int64) error {
	cfg := b.cfg
	branch := teller / int64(cfg.TellersPerBranch)
	acctBranch := branch
	if cfg.Branches > 1 && rng.Bool(0.15) {
		// Remote account: any other branch.
		off := int64(rng.UniformInt(1, cfg.Branches-1))
		acctBranch = (branch + off) % int64(cfg.Branches)
		b.remote.Add(1)
	}
	account := acctBranch*int64(cfg.AccountsPerBranch) + int64(rng.Intn(cfg.AccountsPerBranch))

	err := b.eng.Update(func(tx *engine.Txn) error {
		adjust := func(f *relation.Fixed, key int64) error {
			t, ok, err := f.Get(tx, key)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("debitcredit: %s row %d missing", f.Name, key)
			}
			t.Value = bal(unbal(t.Value) + amount)
			return f.Put(tx, t)
		}
		if err := adjust(b.accounts, account); err != nil {
			return err
		}
		if err := adjust(b.tellers, teller); err != nil {
			return err
		}
		if err := adjust(b.branches, branch); err != nil {
			return err
		}
		seq := b.historySeq.Add(1)
		return b.history.Insert(tx, relation.Tuple{
			Key:   seq,
			Value: fmt.Sprintf("t%d a%d %+d", teller, account, amount),
		})
	})
	if err == nil {
		b.commits.Add(1)
	}
	return err
}

// Run executes n transactions spread over the given worker goroutines.
func (b *Bench) Run(n, workers int) error {
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := sim.NewRNG(b.cfg.Seed + int64(w))
			tellers := int64(b.cfg.Branches * b.cfg.TellersPerBranch)
			for i := 0; i < n/workers; i++ {
				teller := int64(rng.Intn(int(tellers)))
				amount := int64(rng.UniformInt(-99, 99))
				if err := b.Transact(rng, teller, amount); err != nil {
					errs[w] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Stats reports committed transactions and how many used a remote branch.
func (b *Bench) Stats() (commits, remote int64) {
	return b.commits.Load(), b.remote.Load()
}

// Verify checks the DebitCredit invariants against the committed state:
// the three balance sums agree, and the history file has one record per
// commit. Call when quiescent (e.g. after Recover).
func (b *Bench) Verify() error {
	return b.eng.Update(func(tx *engine.Txn) error {
		sum := func(f *relation.Fixed) (int64, error) {
			rows, err := f.ScanAll(tx)
			if err != nil {
				return 0, err
			}
			var s int64
			for _, r := range rows {
				s += unbal(r.Value)
			}
			return s, nil
		}
		sa, err := sum(b.accounts)
		if err != nil {
			return err
		}
		st, err := sum(b.tellers)
		if err != nil {
			return err
		}
		sb, err := sum(b.branches)
		if err != nil {
			return err
		}
		if sa != st || st != sb {
			return fmt.Errorf("debitcredit: balance sums diverged: accounts=%d tellers=%d branches=%d",
				sa, st, sb)
		}
		n, err := b.history.Count(tx)
		if err != nil {
			return err
		}
		if int64(n) != b.commits.Load() {
			return fmt.Errorf("debitcredit: history has %d records for %d commits",
				n, b.commits.Load())
		}
		return nil
	})
}

// ResyncAfterRecovery re-derives the volatile counters (commit count,
// history sequence) from the durable history file after a crash+recover, so
// Verify and further Transact calls see a consistent world.
func (b *Bench) ResyncAfterRecovery() error {
	return b.eng.Update(func(tx *engine.Txn) error {
		rows, err := b.history.Scan(tx, nil)
		if err != nil {
			return err
		}
		maxSeq := int64(0)
		for _, r := range rows {
			if r.Key > maxSeq {
				maxSeq = r.Key
			}
		}
		b.historySeq.Store(maxSeq)
		b.commits.Store(int64(len(rows)))
		return nil
	})
}
