// Package lint implements simlint, the repository's determinism and
// simulator-invariant static analyzer.
//
// The paper's tables are pure simulation results, so the repo's core
// guarantee is reproducibility: same seed, byte-identical metrics
// snapshots and traces. simlint makes that invariant machine-checked
// instead of conventional. It loads every package under internal/ and
// cmd/ with only the standard library (go/parser + go/types; no
// golang.org/x/tools) and reports violations of five rules:
//
//	D001  no wall-clock time (time.Now, time.Since, time.Sleep, timers)
//	      in simulation packages — virtual clock only. The runtime
//	      observability layer internal/obs/live is excluded by scope: it
//	      is the single place allowed to read the host clock, and every
//	      other package reaches wall time through its Clock interface.
//	D002  no global math/rand top-level functions — all randomness must
//	      flow through the seeded sim.RNG (constructors like rand.New
//	      and rand.NewSource are allowed).
//	D003  no range over a map whose loop body has order-sensitive
//	      effects (appends that are never sorted, event scheduling,
//	      writes to io.Writer, obs/trace emission) — iterate a sorted
//	      key slice instead.
//	D004  no goroutine launches, channel operations, select, or
//	      sync/sync-atomic references inside the simulator kernel
//	      (internal/sim, internal/machine, and the pure recovery kernels
//	      internal/recovery/..., internal/shadoweng, internal/diffeng,
//	      internal/wal) — the kernel is single-threaded by design;
//	      concurrency lives in the wrapper layer (internal/engine.Guard).
//	      Kernel packages also must not import the wrapper layer itself:
//	      importing internal/engine, internal/lockmgr, internal/runpool,
//	      or internal/obs/live from kernel scope is a violation even if
//	      no symbol is used, so runtime instrumentation can never leak
//	      below the Guard boundary.
//	D005  no os.Getenv / os.Stdout side channels in internal/
//	      libraries — configuration comes through machine.Config and
//	      output through injected io.Writers.
//
// On top of the per-file rules, a program-wide call graph (callgraph.go)
// backs three interprocedural rules:
//
//	D006  transitive determinism taint — a kernel-scope function that
//	      reaches a wall-clock/global-rand/env sink through any call
//	      chain (wrapper helpers, other packages, function values) is
//	      flagged with the full chain printed in the diagnostic. Direct
//	      sink calls stay D001/D002/D005's job; D006 catches the
//	      laundered ones.
//	D007  kernel-state escape — exported kernel methods on the
//	      functional engines (internal/wal, internal/shadoweng,
//	      internal/diffeng) must not return, or store from parameters,
//	      pointers/slices/maps that alias internal kernel state: the
//	      engine.Guard serializes calls, not the lifetime of returned
//	      data, so every reference crossing the boundary must be a
//	      copy. The thread-safe substrate *pagestore.Store and the
//	      sanctioned sink *obs.Journal are exempt by design.
//	D008  journal-emission completeness — every exported kernel method
//	      that (transitively) performs a stable-storage mutation
//	      (pagestore.Store.Write/Delete) must also reach the recovery
//	      journal sink (obs.Journal.Emit), so the forensic trail cannot
//	      silently rot as kernels grow new mutation paths.
//
// A finding can be suppressed with a comment on the same line or the
// line directly above it:
//
//	//simlint:ignore D001 <reason — mandatory>
//
// A suppression without a reason or naming an unknown rule is itself an
// error; a suppression that matches no diagnostic is reported as a
// stale-suppression warning. Test files (_test.go) are not analyzed:
// tests may legitimately use wall-clock timeouts and goroutines.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, formatted as "file:line: [RULE] message".
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
	// Warning findings (stale suppressions) are reported but do not make
	// the run fail unless the caller opts in.
	Warning bool
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
	if d.Warning {
		s += " (warning)"
	}
	return s
}

// RuleInfo describes one rule and the package subtree(s) it applies to.
// Scope and Exclude entries are module-relative paths; a trailing "/..."
// matches the whole subtree. A package matching any Exclude entry is out
// of scope even when a Scope entry matches it — carve-outs are part of
// the rule table, never per-line suppressions.
type RuleInfo struct {
	ID      string
	Short   string
	Scope   []string
	Exclude []string
}

// Rules is the rule table, in ID order. The D004 scope pins the
// single-threaded simulator kernel: the event engine, the machine model,
// and every pure recovery kernel built on them — including the functional
// engines (internal/wal, internal/shadoweng, internal/diffeng), which must
// stay free of sync primitives. Concurrent runtime-side packages
// (internal/lockmgr, internal/engine with its Guard wrapper, the
// internal/runpool fan-out pool, the internal/server network front end,
// workload drivers) are deliberately outside it: runpool holds all of the
// experiment drivers' goroutines and atomics so the kernels it fans out
// stay pure (testdata/d004runpool pins that boundary), server owns
// the per-session goroutines and connection-table mutexes that drive the
// kernels over TCP, reaching them only through engine.Guard
// (testdata/d004server pins that boundary), and engine's groupguard.go —
// the relaxed concurrency envelope of group-commit batching and striped
// read latches — keeps its mutexes, channels, and atomics on the wrapper
// side of the same line: every kernel call it makes still runs under the
// one kernel mutex (testdata/d004group pins that boundary). The
// file-backed stable-storage backend (internal/pagestore/filestore) is
// wrapper-side too: it owns the os.File handles and fsync barriers that
// make the pagestore durable, is serialized by the owning
// pagestore.Store, and is never entered by kernel code directly — kernels
// reach the disk only through *pagestore.Store, so the file surface must
// stay outside the D004/D006 kernel scopes (testdata/d004filestore pins
// that boundary). On the D007 side the same seam appears as
// Snapshotter.Stores(): a kernel handing []*pagestore.Store to the
// wrapper's snapshot plane is exempt exactly like a single
// *pagestore.Store — the elements are the thread-safe substrate — while a
// slice of anything else still escapes (testdata/d007 pins both sides).
var Rules = []RuleInfo{
	{
		ID:    "D001",
		Short: "no wall-clock time in simulation packages (virtual clock only)",
		Scope: []string{"internal/...", "cmd/..."},
		// internal/obs/live is the runtime observability layer: the one
		// place that is *supposed* to read the host clock. Everything else
		// reaches wall time only through its Clock interface, so the
		// carve-out is a scope rule, not a scatter of suppressions.
		Exclude: []string{"internal/obs/live"},
	},
	{
		ID:    "D002",
		Short: "no global math/rand functions (all randomness via the seeded sim.RNG)",
		Scope: []string{"internal/...", "cmd/..."},
	},
	{
		ID:    "D003",
		Short: "no order-sensitive effects inside an unsorted map iteration",
		Scope: []string{"internal/...", "cmd/..."},
	},
	{
		ID:    "D004",
		Short: "no goroutines, channels, select, or sync primitives in the single-threaded sim kernel",
		Scope: []string{
			"internal/sim",
			"internal/machine",
			"internal/recovery/...",
			"internal/shadoweng",
			"internal/diffeng",
			"internal/wal",
		},
	},
	{
		ID:    "D005",
		Short: "no os env/stdout side channels in internal libraries",
		Scope: []string{"internal/..."},
	},
	{
		ID:    "D006",
		Short: "no transitive reachability of wall-clock/rand/env sinks from kernel code (call-graph taint)",
		Scope: []string{
			"internal/sim",
			"internal/machine",
			"internal/recovery/...",
			"internal/shadoweng",
			"internal/diffeng",
			"internal/wal",
		},
	},
	{
		ID:    "D007",
		Short: "exported kernel methods must not leak aliases of kernel state across the Guard boundary",
		Scope: []string{"internal/wal", "internal/shadoweng", "internal/diffeng"},
	},
	{
		ID:    "D008",
		Short: "exported kernel methods that mutate stable storage must emit through the recovery journal",
		Scope: []string{"internal/wal", "internal/shadoweng", "internal/diffeng"},
	},
}

// ruleByID reports the rule table entry for id.
func ruleByID(id string) (RuleInfo, bool) {
	for _, r := range Rules {
		if r.ID == id {
			return r, true
		}
	}
	return RuleInfo{}, false
}

// KnownRule reports whether id names a rule in the table.
func KnownRule(id string) bool {
	_, ok := ruleByID(id)
	return ok
}

// Config selects which rules run.
type Config struct {
	// Rules enables a subset of rule IDs; nil or empty enables all.
	Rules []string
}

func enabledSet(ids []string) (map[string]bool, error) {
	enabled := make(map[string]bool, len(Rules))
	if len(ids) == 0 {
		for _, r := range Rules {
			enabled[r.ID] = true
		}
		return enabled, nil
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if !KnownRule(id) {
			return nil, fmt.Errorf("lint: unknown rule %q (known: %s)", id, strings.Join(ruleIDs(), ", "))
		}
		enabled[id] = true
	}
	return enabled, nil
}

func ruleIDs() []string {
	ids := make([]string, 0, len(Rules))
	for _, r := range Rules {
		ids = append(ids, r.ID)
	}
	return ids
}

// Run analyzes the packages matched by patterns (e.g. "./internal/...",
// "./cmd/simlint") under the module root and returns the findings sorted
// by file, line, and rule. A non-empty result does not set err; err is
// reserved for load failures (bad pattern, unreadable directory,
// unparseable source).
func Run(root string, patterns []string, cfg Config) ([]Diagnostic, error) {
	enabled, err := enabledSet(cfg.Rules)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		return nil, err
	}
	ld := newLoader(root)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := ld.load(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	// The call graph spans every package the loader saw — analyzed
	// packages and their module-local dependencies — so chains through
	// helper packages resolve even when only the kernel is analyzed.
	g := buildGraph(ld)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, checkPackage(pkg, enabled, g)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return diags, nil
}

// scopeMatch reports whether the module-relative package path rel falls
// under the scope pattern pat ("internal/sim" exact, "internal/..."
// subtree).
func scopeMatch(pat, rel string) bool {
	if base, ok := strings.CutSuffix(pat, "/..."); ok {
		return rel == base || strings.HasPrefix(rel, base+"/")
	}
	return rel == pat
}

func inScope(r RuleInfo, rel string) bool {
	for _, pat := range r.Exclude {
		if scopeMatch(pat, rel) {
			return false
		}
	}
	for _, pat := range r.Scope {
		if scopeMatch(pat, rel) {
			return true
		}
	}
	return false
}
