package lint

// escape.go is the D007 alias analysis: exported kernel methods must
// not hand out (or swallow) pointers, slices, or maps that alias
// internal kernel state, because the engine.Guard serializes *calls*,
// not the lifetime of the data they return — an aliased page buffer
// read outside the Guard races with the next kernel mutation. The
// analysis is a deliberately simple two-direction taint:
//
//   - return direction: a returned expression whose value is rooted in
//     the receiver (directly or through local variables and
//     alias-returning helper calls) escapes kernel state;
//   - store direction: an assignment that plants a parameter-derived
//     aliasing value into receiver-reachable state captures caller
//     memory inside the kernel.
//
// Copy idioms break the taint naturally: append([]T(nil), x...) and
// make+copy produce fresh backing arrays, composite literals are fresh
// unless an element itself aliases, and calls into functions without
// alias-returning summaries (pagestore.Store.Read copies, for one) are
// fresh. Two boundary types are exempt by design: *pagestore.Store is
// the thread-safe stable-storage substrate the wrapper layer is meant
// to share, and *obs.Journal is the sanctioned deterministic journal
// sink injected from above the Guard.

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
)

type aliasMask uint8

const (
	aliasRecv aliasMask = 1 << iota
	aliasParam
)

// aliasingType reports whether a value of type t can carry an alias of
// other state: pointers, slices, maps, chans, funcs, interfaces, and
// any struct/array that contains one.
func aliasingType(t types.Type) bool {
	return aliasingTypeDepth(t, map[types.Type]bool{})
}

var errorType = types.Universe.Lookup("error").Type()

func aliasingTypeDepth(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	// error values are conventionally fresh (message + static sentinel);
	// without this, every (T, error) helper result taints its err local.
	if types.Identical(t, errorType) {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if aliasingTypeDepth(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return aliasingTypeDepth(u.Elem(), seen)
	}
	return false
}

// boundaryExempt reports the two types that may legally cross the Guard
// boundary by reference (see the package comment). A slice or array of an
// exempt type is exempt too: kernels with several stable stores hand the
// whole set to the wrapper's snapshot plane (Stores() []*pagestore.Store),
// and the elements are the same thread-safe substrate as a single one.
func boundaryExempt(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		t = u.Elem()
	case *types.Array:
		t = u.Elem()
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	base := path.Base(named.Obj().Pkg().Path())
	name := named.Obj().Name()
	return (base == "pagestore" && name == "Store") || (base == "obs" && name == "Journal")
}

// aliasScope judges expressions inside one function body.
type aliasScope struct {
	g      *graph
	n      *funcNode
	locals map[types.Object]aliasMask
}

func newAliasScope(g *graph, n *funcNode) *aliasScope {
	s := &aliasScope{g: g, n: n, locals: map[types.Object]aliasMask{}}
	// Two passes over local bindings so chains of assignments resolve
	// regardless of textual order (loop-carried rebinding included).
	for range 2 {
		ast.Inspect(n.decl.Body, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := s.objectOf(id)
					if obj == nil || obj == n.recvObj || n.paramObjs[obj] {
						continue
					}
					var m aliasMask
					if len(x.Rhs) == len(x.Lhs) {
						m = s.judge(x.Rhs[i])
					} else if len(x.Rhs) == 1 {
						m = s.judge(x.Rhs[0]) // multi-value call / map lookup
					}
					s.locals[obj] |= m
				}
			case *ast.ValueSpec:
				for i, id := range x.Names {
					obj := s.objectOf(id)
					if obj == nil {
						continue
					}
					if i < len(x.Values) {
						s.locals[obj] |= s.judge(x.Values[i])
					} else if len(x.Values) == 1 {
						s.locals[obj] |= s.judge(x.Values[0])
					}
				}
			case *ast.RangeStmt:
				m := s.judge(x.X)
				for _, e := range []ast.Expr{x.Key, x.Value} {
					if id, ok := e.(*ast.Ident); ok {
						if obj := s.objectOf(id); obj != nil {
							s.locals[obj] |= m
						}
					}
				}
			}
			return true
		})
	}
	return s
}

func (s *aliasScope) objectOf(id *ast.Ident) types.Object {
	if obj := s.n.pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return s.n.pkg.Info.Defs[id]
}

func (s *aliasScope) typeOf(e ast.Expr) types.Type {
	if tv, ok := s.n.pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// judge computes which state an expression's value may alias.
func (s *aliasScope) judge(e ast.Expr) aliasMask {
	switch e := e.(type) {
	case *ast.Ident:
		obj := s.objectOf(e)
		switch {
		case obj == nil:
			return 0
		case obj == s.n.recvObj:
			return aliasRecv
		case s.n.paramObjs[obj]:
			return aliasParam
		default:
			return s.locals[obj]
		}
	case *ast.SelectorExpr:
		return s.judge(e.X) // pkg selectors root in a PkgName and judge clean
	case *ast.IndexExpr:
		return s.judge(e.X)
	case *ast.SliceExpr:
		return s.judge(e.X) // reslicing shares the backing array
	case *ast.StarExpr:
		return s.judge(e.X)
	case *ast.ParenExpr:
		return s.judge(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return s.judge(e.X)
		}
		return 0
	case *ast.CompositeLit:
		var m aliasMask
		for _, elt := range e.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if aliasingType(s.typeOf(v)) {
				m |= s.judge(v)
			}
		}
		return m
	case *ast.CallExpr:
		return s.judgeCall(e)
	}
	return 0
}

func (s *aliasScope) judgeCall(call *ast.CallExpr) aliasMask {
	fun := unparen(call.Fun)
	// Conversions: []byte(string) copies; slice/map/pointer conversions
	// keep the operand's aliasing.
	if tv, ok := s.n.pkg.Info.Types[fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if aliasingType(tv.Type) && aliasingType(s.typeOf(call.Args[0])) {
			return s.judge(call.Args[0])
		}
		return 0
	}
	switch f := fun.(type) {
	case *ast.Ident:
		if _, ok := s.objectOf(f).(*types.Builtin); ok {
			switch f.Name {
			case "append":
				var m aliasMask
				if len(call.Args) > 0 {
					m = s.judge(call.Args[0]) // append([]T(nil), ...) judges fresh
				}
				for i, arg := range call.Args[1:] {
					t := s.typeOf(arg)
					if call.Ellipsis.IsValid() && i == len(call.Args)-2 {
						if sl, ok := t.Underlying().(*types.Slice); ok {
							t = sl.Elem() // spread copies the slice header, not the elements
						}
					}
					if aliasingType(t) {
						m |= s.judge(arg)
					}
				}
				return m
			default:
				return 0 // make, new, len, cap, copy, min, max ...
			}
		}
		if _, ok := s.objectOf(f).(*types.Func); ok {
			return 0 // plain function results are treated as fresh
		}
	case *ast.SelectorExpr:
		obj, ok := s.n.pkg.Info.Uses[f.Sel].(*types.Func)
		if !ok {
			return 0
		}
		// A method that returns an alias of its own receiver transfers
		// the receiver expression's taint to its result (getPage-style
		// accessors). Everything else — including pagestore.Store.Read,
		// which copies — produces fresh values.
		if callee := s.g.nodes[obj]; callee != nil && callee.returnsRecvAlias {
			if sig, isSig := obj.Type().(*types.Signature); isSig && sig.Recv() != nil {
				return s.judge(f.X)
			}
		}
	}
	return 0
}

// returnsRecvAliasNow recomputes the summary for n with the current
// state of every other summary.
func returnsRecvAliasNow(g *graph, n *funcNode) bool {
	if n.recvObj == nil {
		return false
	}
	s := newAliasScope(g, n)
	found := false
	ast.Inspect(n.decl.Body, func(x ast.Node) bool {
		if found {
			return false
		}
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false // returns inside literals return from the literal
		}
		ret, ok := x.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if aliasingType(s.typeOf(res)) && s.judge(res)&aliasRecv != 0 {
				found = true
			}
		}
		return true
	})
	return found
}

// solveAliasSummaries iterates returnsRecvAlias to a fixpoint: a method
// returning the result of another alias-returning method is itself
// alias-returning. The predicate is monotone, so the loop terminates.
func solveAliasSummaries(g *graph) {
	for changed := true; changed; {
		changed = false
		for _, n := range g.order {
			if !n.returnsRecvAlias && returnsRecvAliasNow(g, n) {
				n.returnsRecvAlias = true
				changed = true
			}
		}
	}
}

// escapeFinding is one D007 diagnostic site found in a method body.
type escapeFinding struct {
	pos token.Pos
	msg string
}

// escapeFindings runs both taint directions over one exported kernel
// method.
func escapeFindings(g *graph, n *funcNode) []escapeFinding {
	s := newAliasScope(g, n)
	var out []escapeFinding
	ast.Inspect(n.decl.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				t := s.typeOf(res)
				if !aliasingType(t) || boundaryExempt(t) {
					continue
				}
				if s.judge(res)&aliasRecv != 0 {
					out = append(out, escapeFinding{pos: x.Pos(), msg: "returns " + exprString(res) +
						", which aliases kernel state: copy before returning (append([]T(nil), x...)) so no reference crosses the Guard boundary"})
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if _, isIdent := lhs.(*ast.Ident); isIdent {
					continue // rebinding a variable stores nothing into kernel state
				}
				if s.judge(lhs)&aliasRecv == 0 {
					continue
				}
				var rhs ast.Expr
				if len(x.Rhs) == len(x.Lhs) {
					rhs = x.Rhs[i]
				} else if len(x.Rhs) == 1 {
					rhs = x.Rhs[0]
				}
				if rhs == nil {
					continue
				}
				t := s.typeOf(rhs)
				if !aliasingType(t) || boundaryExempt(t) {
					continue
				}
				if s.judge(rhs)&aliasParam != 0 {
					out = append(out, escapeFinding{pos: x.Pos(), msg: "stores caller-provided " + exprString(rhs) +
						" into kernel state without a copy: the caller keeps an alias into the kernel across the Guard boundary"})
				}
			}
		}
		return true
	})
	return out
}
