package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// RelPath is the slash-separated path relative to the module root
	// ("internal/sim"); rule scopes match against it.
	RelPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Info    *types.Info
	// Types is the checked package object; the call-graph pass uses it to
	// distinguish package-level state from locals.
	Types *types.Package
	// TypeErrors collects type-check problems without aborting analysis;
	// rules that need type information degrade gracefully when the info
	// for a node is missing.
	TypeErrors []error
}

// loader parses and type-checks packages with only the standard library.
// Module-local imports ("repro/internal/...") are resolved by mapping the
// import path back onto the module directory tree and type-checking that
// directory recursively; everything else (the standard library) goes to
// stdImporter, which type-checks $GOROOT/src signatures-only.
type loader struct {
	root    string
	modPath string
	fset    *token.FileSet
	std     types.Importer
	byDir   map[string]*Package
	byPath  map[string]*types.Package
	loading map[string]bool
}

func newLoader(root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:    root,
		modPath: modulePath(root),
		fset:    fset,
		std:     newStdImporter(fset),
		byDir:   map[string]*Package{},
		byPath:  map[string]*types.Package{},
		loading: map[string]bool{},
	}
}

// stdImporter type-checks standard-library packages from $GOROOT/src with
// IgnoreFuncBodies: the analyzed module only needs the API surface of its
// std imports (exported signatures and types), so skipping every std
// function body cuts the wall-clock cost of a full simlint run severely —
// see docs/LINTING.md for the measured numbers. Packages that fail the
// fast path for any reason fall back to the gc source importer, which
// checks bodies too but is always correct.
type stdImporter struct {
	fset     *token.FileSet
	pkgs     map[string]*types.Package
	loading  map[string]bool
	fallback types.Importer
}

func newStdImporter(fset *token.FileSet) *stdImporter {
	return &stdImporter{
		fset:     fset,
		pkgs:     map[string]*types.Package{},
		loading:  map[string]bool{},
		fallback: importer.ForCompiler(fset, "source", nil),
	}
}

// Import implements types.Importer for the standard library.
func (si *stdImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := si.pkgs[path]; ok {
		return p, nil
	}
	if si.loading[path] {
		return nil, fmt.Errorf("lint: std import cycle through %q", path)
	}
	si.loading[path] = true
	defer delete(si.loading, path)

	tpkg, err := si.check(path)
	if tpkg == nil {
		// Fast path failed outright; let the source importer try. It
		// resolves its own dependency graph, so anything it returns is
		// complete and safe to memoize.
		tpkg, err = si.fallback.Import(path)
		if tpkg == nil {
			return nil, err
		}
	}
	si.pkgs[path] = tpkg
	return tpkg, nil
}

// check type-checks one $GOROOT/src package signatures-only. Soft type
// errors (cgo references, build-tag residue) are tolerated; only a wholly
// unparseable package returns nil.
func (si *stdImporter) check(path string) (*types.Package, error) {
	dir := filepath.Join(build.Default.GOROOT, "src", filepath.FromSlash(path))
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		// net/http and friends import vendored golang.org/x packages.
		dir = filepath.Join(build.Default.GOROOT, "src", "vendor", filepath.FromSlash(path))
		if bp, err = build.Default.ImportDir(dir, 0); err != nil {
			return nil, err
		}
	}
	names := append(append([]string{}, bp.GoFiles...), bp.CgoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(si.fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{
		Importer:         si,
		IgnoreFuncBodies: true,
		FakeImportC:      true,
		Error:            func(error) {},
	}
	tpkg, err := conf.Check(path, si.fset, files, nil)
	if tpkg == nil {
		return nil, err
	}
	return tpkg, nil
}

// modulePath reads the module path from root/go.mod, defaulting to
// "fixture" so self-contained test corpora work without a go.mod.
func modulePath(root string) string {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "fixture"
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return "fixture"
}

// Import implements types.Importer over the module tree + stdlib.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.byPath[path]; ok {
		return p, nil
	}
	if rel, ok := l.relOf(path); ok {
		if _, err := l.load(filepath.Join(l.root, filepath.FromSlash(rel))); err != nil {
			return nil, err
		}
		if p, ok := l.byPath[path]; ok {
			return p, nil
		}
		return nil, fmt.Errorf("lint: import %q produced no package", path)
	}
	return l.std.Import(path)
}

// relOf maps a module-local import path to its module-relative directory.
func (l *loader) relOf(importPath string) (string, bool) {
	if importPath == l.modPath {
		return ".", true
	}
	return strings.CutPrefix(importPath, l.modPath+"/")
}

// load parses and type-checks the package in dir (memoized).
func (l *loader) load(dir string) (*Package, error) {
	dir = filepath.Clean(dir)
	if p, ok := l.byDir[dir]; ok {
		return p, nil
	}
	if l.loading[dir] {
		return nil, fmt.Errorf("lint: import cycle through %s", dir)
	}
	l.loading[dir] = true
	defer delete(l.loading, dir)

	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return nil, err
	}
	rel = filepath.ToSlash(rel)

	names, err := goSourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	pkg := &Package{
		RelPath: rel,
		Dir:     dir,
		Fset:    l.fset,
		Files:   files,
		Info: &types.Info{
			Types: map[ast.Expr]types.TypeAndValue{},
			Uses:  map[*ast.Ident]types.Object{},
			Defs:  map[*ast.Ident]types.Object{},
		},
	}
	importPath := l.modPath
	if rel != "." {
		importPath = l.modPath + "/" + rel
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(importPath, l.fset, files, pkg.Info)
	// Soft type errors were collected through conf.Error; only a nil
	// package (nothing checked at all) is fatal.
	if tpkg == nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", dir, err)
	}
	pkg.Types = tpkg
	l.byPath[importPath] = tpkg
	l.byDir[dir] = pkg
	return pkg, nil
}

// goSourceFiles lists the non-test .go files in dir, sorted.
func goSourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// expandPatterns resolves package patterns ("./internal/...", "cmd/simlint")
// to the sorted list of package directories beneath root. Like the go
// tool, the "..." walk skips testdata, vendor, and dot/underscore
// directories.
func expandPatterns(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		if pat == "" {
			continue
		}
		if base, ok := strings.CutSuffix(pat, "/..."); ok || pat == "..." {
			if pat == "..." {
				base = "."
			}
			start := filepath.Join(root, filepath.FromSlash(base))
			err := filepath.WalkDir(start, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != start && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				names, err := goSourceFiles(path)
				if err != nil {
					return err
				}
				if len(names) > 0 {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("lint: pattern %q: %w", pat, err)
			}
			continue
		}
		dir := filepath.Join(root, filepath.FromSlash(pat))
		if st, err := os.Stat(dir); err != nil || !st.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q does not name a package directory under %s", pat, root)
		}
		add(dir)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing a
// go.mod, so simlint can be invoked from anywhere inside the module.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
