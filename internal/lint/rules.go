package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"strings"
)

// wallClockFuncs are the time functions D001 forbids: everything that
// reads the host clock or blocks on it. Pure value manipulation
// (time.Duration arithmetic, time.Unix) is allowed.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// randConstructors are the math/rand (and /v2) identifiers D002 allows:
// anything that builds an explicitly seeded local generator. Every other
// package-level call draws from the global stream.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// envFuncs are the os functions D005 forbids as configuration side
// channels.
var envFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true,
	"Setenv": true, "Unsetenv": true,
}

// osStreams are the os package variables D005 forbids as output side
// channels.
var osStreams = map[string]bool{"Stdout": true, "Stderr": true, "Stdin": true}

// syncPackages are the concurrency packages D004 bans outright in the
// kernel scope: any qualified reference (a sync.Mutex field, a
// sync.WaitGroup value, an atomic.AddUint64 call) is a violation. The pure
// recovery kernels must carry no concurrency envelope of their own — that
// is the wrapper layer's job (internal/engine.Guard).
var syncPackages = map[string]bool{"sync": true, "sync/atomic": true}

// wrapperImportSuffixes are the runtime/wrapper-layer packages D004 bans
// as imports in kernel scope, matched as module-relative path suffixes so
// the check works for any module name (including the fixture corpus). The
// kernel may depend on the deterministic observation layer (internal/obs,
// whose Journal is a pure ordered log), but never on the concurrency
// wrapper or the wall-clock metrics layer above it.
var wrapperImportSuffixes = []string{
	"internal/engine",
	"internal/lockmgr",
	"internal/runpool",
	"internal/obs/live",
}

// wrapperImport reports the banned suffix importPath matches, if any.
func wrapperImport(importPath string) (string, bool) {
	for _, suf := range wrapperImportSuffixes {
		if importPath == suf || strings.HasSuffix(importPath, "/"+suf) {
			return suf, true
		}
	}
	return "", false
}

// sensitivePrefixes / sensitiveExact classify callee names whose effects
// are order-sensitive when executed under a map iteration: output
// emission, event scheduling, stateful mutation of metrics or stores.
// Pure reads (Value, Mean, Percentile, ...) and map-index writes are
// order-insensitive and deliberately not listed. Since the call-graph
// pass, these lists are only the *fallback* for callees the type-based
// effect analysis cannot see into (dynamic calls, interface methods,
// bodyless standard-library functions); anything with a body in the
// loaded program is judged by its computed effects instead.
var sensitivePrefixes = []string{
	"Write", "Print", "Fprint", "Emit", "Trace", "Schedule", "Record",
	"Observe", "Log", "Push", "Enqueue", "Submit", "Put", "Send", "Append",
}

var sensitiveExact = map[string]bool{
	"Add": true, "Inc": true, "Set": true, "Adjust": true, "At": true,
	"Delete": true, "Remove": true, "Event": true, "Flush": true,
}

func sensitiveCallName(name string) bool {
	if name == "" {
		return false
	}
	if sensitiveExact[name] {
		return true
	}
	for _, p := range sensitivePrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// checker analyzes one file of one package.
type checker struct {
	pkg     *Package
	file    *ast.File
	g       *graph            // program-wide call graph (D003 effects, D006–D008)
	imports map[string]string // fallback identifier -> import path map
	active  map[string]bool   // rule ID -> enabled && in scope for this file
	diags   []Diagnostic
}

// checkPackage runs every enabled rule over every file of pkg — the
// syntactic walk first, then the call-graph rules — and resolves
// suppression comments last, so a graph finding is suppressible exactly
// like a syntactic one.
func checkPackage(pkg *Package, enabled map[string]bool, g *graph) []Diagnostic {
	var out []Diagnostic
	for _, file := range pkg.Files {
		dirs := parseDirectives(pkg.Fset, file)
		rel := pkg.RelPath
		if dirs.pathOverride != "" {
			rel = dirs.pathOverride
		}
		c := &checker{
			pkg:     pkg,
			file:    file,
			g:       g,
			imports: importTable(file),
			active:  map[string]bool{},
		}
		for _, r := range Rules {
			c.active[r.ID] = enabled[r.ID] && inScope(r, rel)
		}
		c.checkKernelImports()
		c.walk()
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkGraphRules(fd)
			}
		}
		out = append(out, applySuppressions(c.diags, dirs)...)
	}
	return out
}

// checkGraphRules runs the interprocedural rules for one declared
// function of the file.
func (c *checker) checkGraphRules(fd *ast.FuncDecl) {
	if c.g == nil {
		return
	}
	obj, ok := c.pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	n := c.g.nodes[obj]
	if n == nil {
		return
	}
	c.checkTaint(n)
	if exportedKernelMethod(n) {
		c.checkEscape(n)
		c.checkJournal(n)
	}
}

// exportedKernelMethod restricts D007/D008 to the kernel API surface:
// exported methods on exported receiver types. Unexported helpers are
// internal to the kernel and judged only through the methods that call
// them.
func exportedKernelMethod(n *funcNode) bool {
	if n.recvObj == nil && n.decl.Recv == nil {
		return false
	}
	if !n.obj.Exported() {
		return false
	}
	sig, ok := n.obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := namedOf(sig.Recv().Type())
	return named != nil && named.Obj().Exported()
}

// checkTaint implements D006: kernel code must not reach a
// nondeterminism sink through any call chain. Direct sink *calls* are
// already D001/D002/D005 findings; D006 reports chains of length ≥ 2
// and direct function-value references (handing time.Now to a callback
// slot), printing the full chain.
func (c *checker) checkTaint(n *funcNode) {
	if !c.active["D006"] || n.sinkChain == nil {
		return
	}
	ch := n.sinkChain
	if ch.dist == 1 && ch.kind == edgeCall {
		return
	}
	what := "reaches"
	if ch.callee == nil && ch.kind == edgeRef {
		what = "captures"
	}
	c.report(ch.pos, "D006", fmt.Sprintf(
		"%s %s %s sink through call chain %s: kernel code must stay deterministic (inject the value from above the Guard boundary)",
		n.displayName(), what, ch.class, chainString(n, func(f *funcNode) *chain { return f.sinkChain })))
}

// checkEscape implements D007 over one exported kernel method.
func (c *checker) checkEscape(n *funcNode) {
	if !c.active["D007"] {
		return
	}
	for _, f := range escapeFindings(c.g, n) {
		c.report(f.pos, "D007", fmt.Sprintf("%s %s", n.displayName(), f.msg))
	}
}

// checkJournal implements D008: an exported kernel method that
// (transitively) mutates stable storage must also reach the recovery
// journal sink.
func (c *checker) checkJournal(n *funcNode) {
	if !c.active["D008"] || n.stableChain == nil || n.reachJournal {
		return
	}
	c.report(n.decl.Name.Pos(), "D008", fmt.Sprintf(
		"%s mutates stable storage (%s) but never reaches the recovery journal: emit an obs.Journal event on every stable-mutation path",
		n.displayName(), chainString(n, func(f *funcNode) *chain { return f.stableChain })))
}

func importTable(file *ast.File) map[string]string {
	t := map[string]string{}
	for _, imp := range file.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		name := path.Base(p)
		if imp.Name != nil {
			name = imp.Name.Name
		}
		t[name] = p
	}
	return t
}

func (c *checker) report(pos token.Pos, rule, msg string) {
	c.diags = append(c.diags, Diagnostic{
		Pos:     c.pkg.Fset.Position(pos),
		Rule:    rule,
		Message: msg,
	})
}

// walk traverses the file keeping an ancestor stack so rules can find
// their enclosing function body.
func (c *checker) walk() {
	var stack []ast.Node
	ast.Inspect(c.file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		c.visit(n, stack)
		return true
	})
}

func (c *checker) visit(n ast.Node, stack []ast.Node) {
	switch n := n.(type) {
	case *ast.CallExpr:
		c.checkCall(n)
	case *ast.SelectorExpr:
		c.checkStreamRef(n)
		c.checkSyncRef(n)
	case *ast.GoStmt:
		c.kernelViolation(n.Pos(), "goroutine launch (go statement)")
	case *ast.SendStmt:
		c.kernelViolation(n.Pos(), "channel send")
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			c.kernelViolation(n.Pos(), "channel receive")
		}
	case *ast.SelectStmt:
		c.kernelViolation(n.Pos(), "select statement")
	case *ast.ChanType:
		c.kernelViolation(n.Pos(), "channel type")
	case *ast.RangeStmt:
		c.checkMapRange(n, stack)
	}
}

// pkgQualified resolves fun as a package-qualified reference ("time.Now")
// to its import path and name, preferring type information and falling
// back to the file's import table when type-checking was incomplete.
func (c *checker) pkgQualified(fun ast.Expr) (pkgPath, name string, ok bool) {
	sel, isSel := fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	if obj := c.pkg.Info.Uses[id]; obj != nil {
		pn, isPkg := obj.(*types.PkgName)
		if !isPkg {
			return "", "", false
		}
		return pn.Imported().Path(), sel.Sel.Name, true
	}
	if p, found := c.imports[id.Name]; found {
		return p, sel.Sel.Name, true
	}
	return "", "", false
}

func (c *checker) objectOf(id *ast.Ident) types.Object {
	if obj := c.pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return c.pkg.Info.Defs[id]
}

func (c *checker) isBuiltin(id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	obj := c.objectOf(id)
	if obj == nil {
		return true // no type info: assume unshadowed builtin
	}
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}

func (c *checker) checkCall(call *ast.CallExpr) {
	if pkgPath, name, ok := c.pkgQualified(call.Fun); ok {
		switch {
		case c.active["D001"] && pkgPath == "time" && wallClockFuncs[name]:
			c.report(call.Pos(), "D001", fmt.Sprintf(
				"call to time.%s reads the wall clock: simulation code must use the virtual clock (sim.Engine)", name))
		case c.active["D002"] && (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !randConstructors[name]:
			c.report(call.Pos(), "D002", fmt.Sprintf(
				"call to rand.%s draws from the global math/rand stream: all randomness must flow through the seeded sim.RNG", name))
		case c.active["D005"] && pkgPath == "os" && envFuncs[name]:
			c.report(call.Pos(), "D005", fmt.Sprintf(
				"call to os.%s is a configuration side channel: internal packages must take configuration through machine.Config", name))
		}
		return
	}
	if c.active["D004"] {
		if id, isIdent := call.Fun.(*ast.Ident); isIdent && c.isBuiltin(id, "close") {
			c.kernelViolation(call.Pos(), "channel close")
		}
	}
}

func (c *checker) checkStreamRef(sel *ast.SelectorExpr) {
	if !c.active["D005"] || !osStreams[sel.Sel.Name] {
		return
	}
	if pkgPath, name, ok := c.pkgQualified(sel); ok && pkgPath == "os" {
		c.report(sel.Pos(), "D005", fmt.Sprintf(
			"reference to os.%s is an output side channel: internal packages must write through an injected io.Writer", name))
	}
}

// checkSyncRef implements the sync half of D004: any reference into the
// sync or sync/atomic packages inside the kernel scope is a violation,
// whether it is a type (a sync.Mutex field), a method-bearing value, or a
// call (atomic.AddUint64).
func (c *checker) checkSyncRef(sel *ast.SelectorExpr) {
	if !c.active["D004"] {
		return
	}
	if pkgPath, name, ok := c.pkgQualified(sel); ok && syncPackages[pkgPath] {
		c.kernelViolation(sel.Pos(), fmt.Sprintf("use of %s.%s", path.Base(pkgPath), name))
	}
}

// checkKernelImports implements the import half of D004: a kernel-scope
// file must not import the wrapper/runtime layer at all — not even with a
// blank import — so instrumentation hooks can only be injected from above
// the Guard boundary, never compiled into the kernel.
func (c *checker) checkKernelImports() {
	if !c.active["D004"] {
		return
	}
	for _, imp := range c.file.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if suf, banned := wrapperImport(p); banned {
			c.kernelViolation(imp.Pos(), fmt.Sprintf(
				"import of %q (wrapper/runtime layer %s)", p, suf))
		}
	}
}

func (c *checker) kernelViolation(pos token.Pos, what string) {
	if !c.active["D004"] {
		return
	}
	c.report(pos, "D004", what+": the simulator kernel is single-threaded by design")
}

// appendTarget records a `x = append(x, ...)` collector inside a map
// range whose slice was declared outside the loop.
type appendTarget struct {
	obj  types.Object
	name string
}

// checkMapRange implements D003: a range over a map whose body performs
// order-sensitive work is only allowed as the sorted-keys idiom — the
// body does nothing but collect into slices that are sorted (sort.* or
// slices.*) later in the same function.
func (c *checker) checkMapRange(rng *ast.RangeStmt, stack []ast.Node) {
	if !c.active["D003"] {
		return
	}
	tv, ok := c.pkg.Info.Types[rng.X]
	if !ok || tv.Type == nil {
		return // no type info; stay silent rather than guess
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	effects, appends := c.orderEffects(rng)
	if len(effects) == 0 && len(appends) == 0 {
		return
	}
	if len(effects) == 0 {
		// Only collecting appends: allowed when every target is sorted
		// before the function is done with it.
		body := enclosingFuncBody(stack)
		for _, t := range appends {
			if !c.sortedAfter(body, t.obj, rng.End()) {
				effects = append(effects, fmt.Sprintf("append to %q, which is never sorted afterwards", t.name))
			}
		}
		if len(effects) == 0 {
			return
		}
	}
	c.report(rng.Pos(), "D003", fmt.Sprintf(
		"map iteration with order-sensitive effects (%s): iterate a sorted key slice instead", strings.Join(effects, "; ")))
}

// orderEffects scans a map-range body for effects whose outcome depends
// on iteration order.
func (c *checker) orderEffects(rng *ast.RangeStmt) (effects []string, appends []appendTarget) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, isCall := rhs.(*ast.CallExpr)
				if !isCall || i >= len(n.Lhs) {
					continue
				}
				if id, isIdent := call.Fun.(*ast.Ident); !isIdent || !c.isBuiltin(id, "append") {
					continue
				}
				lhs, isIdent := n.Lhs[i].(*ast.Ident)
				if !isIdent {
					continue
				}
				obj := c.objectOf(lhs)
				if obj == nil {
					continue
				}
				if obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End() {
					continue // loop-local collector; order folded away inside the loop
				}
				appends = append(appends, appendTarget{obj: obj, name: lhs.Name})
			}
		case *ast.CallExpr:
			if id, isIdent := n.Fun.(*ast.Ident); isIdent && c.isBuiltin(id, "append") {
				return true // handled via the enclosing assignment
			}
			if desc, sensitive := c.callEffect(n, rng); sensitive {
				effects = append(effects, desc)
			}
		case *ast.SendStmt:
			effects = append(effects, "channel send")
		}
		return true
	})
	return effects, appends
}

// callEffect classifies one call inside a map-range body as
// order-sensitive or commuting. Functions with bodies in the loaded
// program are judged by their *computed* effects (emission to an
// escaping io.Writer, package-level mutation, receiver mutation when the
// receiver outlives the loop); bodyless callees (standard library,
// interface methods) are judged by io.Writer implementation and, as a
// last resort, by the legacy name heuristic.
func (c *checker) callEffect(call *ast.CallExpr, rng *ast.RangeStmt) (string, bool) {
	loopLocal := func(e ast.Expr) bool {
		root := rootIdent(e)
		if root == nil {
			return false
		}
		obj := c.objectOf(root)
		return obj != nil && obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()
	}
	var obj *types.Func
	var recvExpr ast.Expr
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		obj, _ = c.objectOf(f).(*types.Func)
	case *ast.SelectorExpr:
		obj, _ = c.pkg.Info.Uses[f.Sel].(*types.Func)
		if obj != nil {
			if sig, isSig := obj.Type().(*types.Signature); isSig && sig.Recv() != nil {
				recvExpr = f.X
			}
		}
	}
	if obj == nil {
		// No type information (or a dynamic call): keep the conservative
		// name heuristic.
		if name := calleeName(call); sensitiveCallName(name) {
			return "call to " + exprString(call.Fun), true
		}
		return "", false
	}
	if c.g != nil {
		if n := c.g.nodes[obj]; n != nil {
			switch {
			case n.effEmit:
				return "call to " + exprString(call.Fun) + ", which emits output", true
			case n.effMutGlobal:
				return "call to " + exprString(call.Fun) + ", which mutates package-level state", true
			case n.effMutRecv && (recvExpr == nil || !loopLocal(recvExpr)):
				return "call to " + exprString(call.Fun) + ", which mutates state that outlives the loop", true
			}
			return "", false // typed verdict: the callee's effects commute
		}
	}
	// Bodyless callee (standard library or interface method).
	if recvExpr == nil && obj.Pkg() != nil {
		switch obj.Pkg().Path() {
		case "fmt":
			name := obj.Name()
			if name == "Print" || name == "Println" || name == "Printf" {
				return "call to " + exprString(call.Fun), true
			}
			if strings.HasPrefix(name, "Fprint") {
				if len(call.Args) > 0 && !loopLocal(call.Args[0]) {
					return "call to " + exprString(call.Fun), true
				}
				return "", false
			}
			return "", false // Sprint* and friends are pure
		case "log":
			return "call to " + exprString(call.Fun), true
		}
	}
	if recvExpr != nil && c.g != nil && !pureWriterMethods[obj.Name()] {
		if tv, ok := c.pkg.Info.Types[recvExpr]; ok && c.g.implementsWriter(tv.Type) {
			if !loopLocal(recvExpr) {
				return "write to io.Writer " + exprString(recvExpr), true
			}
			return "", false
		}
	}
	if sensitiveCallName(obj.Name()) {
		return "call to " + exprString(call.Fun), true
	}
	return "", false
}

// sortedAfter reports whether obj is passed to a sort/slices call after
// pos inside body.
func (c *checker) sortedAfter(body *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall || call.Pos() <= pos {
			return true
		}
		pkgPath, _, ok := c.pkgQualified(call.Fun)
		if !ok || (pkgPath != "sort" && pkgPath != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if id, isIdent := arg.(*ast.Ident); isIdent && c.objectOf(id) == obj {
				found = true
			}
		}
		return true
	})
	return found
}

func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	default:
		return "<expr>"
	}
}
