package lint

// callgraph.go is the interprocedural layer behind rules D006, D007,
// and D008 and the type-based effect classification used by D003. It
// indexes every function declared in the loaded packages — the analyzed
// packages plus every module-local dependency the loader pulled in —
// and connects them with static call edges and function-value reference
// edges. On top of the graph it solves four fixpoints:
//
//   - nearest-sink chains (wall clock, global math/rand, env) for D006,
//     kept as explicit paths so diagnostics can print the full chain;
//   - nearest stable-mutation chains (pagestore.Store.Write/Delete) and
//     journal reachability (obs.Journal.Emit) for D008;
//   - emission/mutation effect summaries (writes to an escaping
//     io.Writer, mutates receiver-reachable or package-level state) for
//     the type-based D003;
//   - returns-alias-of-receiver summaries consumed by the D007 escape
//     analysis in escape.go.
//
// The graph is deliberately modest: edges are static (interface calls
// other than io.Writer stay unresolved), function literals are folded
// into their enclosing declaration, and package-level `var f = func()`
// values are not tracked. Those limits keep the pass linear in the AST
// and are pinned by the fixture corpus.

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
)

type edgeKind uint8

const (
	edgeCall edgeKind = iota
	edgeRef           // function name used as a value (callback, stored func)
)

// edge is one static call (or function-value reference) from one
// module function to another.
type edge struct {
	kind   edgeKind
	pos    token.Pos
	callee *funcNode
	// recvRooted marks a method call whose receiver expression is rooted
	// at the calling method's own receiver, so receiver-mutation effects
	// propagate from helper methods up to the methods that call them.
	recvRooted bool
}

// sinkHit is a direct use of a nondeterminism sink inside one body.
type sinkHit struct {
	kind  edgeKind
	pos   token.Pos
	name  string // "time.Now", "rand.Intn", "os.Getenv"
	class string // "wall-clock", "global-rand", "env"
}

// chain is one step of a shortest path from a function to a sink (or to
// a stable mutation): the site inside this function where the path
// starts, and the next function along it (nil when the path ends at the
// leaf named directly).
type chain struct {
	dist   int
	pos    token.Pos
	kind   edgeKind
	callee *funcNode
	leaf   string // sink / mutator display name when callee == nil
	class  string
}

// funcNode is one declared function or method in the loaded program.
type funcNode struct {
	obj  *types.Func
	decl *ast.FuncDecl
	pkg  *Package
	file *ast.File
	rel  string // effective module-relative path (after //simlint:path)

	recvObj   types.Object
	paramObjs map[types.Object]bool

	calls []edge
	sinks []sinkHit

	// direct (single-body) facts
	mutatesStable bool
	stablePos     token.Pos
	stableCallee  string
	emitsJournal  bool
	emitsOutput   bool // writes to an io.Writer that outlives the function
	mutatesRecv   bool
	mutatesGlobal bool

	// fixpoint-derived facts
	sinkChain        *chain
	stableChain      *chain
	reachJournal     bool
	effEmit          bool
	effMutRecv       bool
	effMutGlobal     bool
	returnsRecvAlias bool
}

// displayName is the diagnostic-facing name: "wal.Manager.Recover",
// "util.WallNow".
func (n *funcNode) displayName() string { return funcDisplayName(n.obj) }

func funcDisplayName(f *types.Func) string {
	name := f.Name()
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedOf(sig.Recv().Type()); named != nil {
			name = named.Obj().Name() + "." + name
		}
	}
	if p := f.Pkg(); p != nil {
		name = path.Base(p.Path()) + "." + name
	}
	return name
}

// namedOf unwraps pointers down to the named receiver type.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// graph is the solved interprocedural index.
type graph struct {
	fset   *token.FileSet
	nodes  map[*types.Func]*funcNode
	order  []*funcNode // deterministic iteration order (by position)
	writer *types.Interface
}

// buildGraph indexes every package the loader has seen (analyzed
// packages and their module-local dependencies alike: a kernel helper
// living in another package is still part of the kernel's call chains)
// and solves the fixpoints.
func buildGraph(ld *loader) *graph {
	g := &graph{
		fset:   ld.fset,
		nodes:  map[*types.Func]*funcNode{},
		writer: writerInterface(ld.std),
	}

	dirs := make([]string, 0, len(ld.byDir))
	for dir := range ld.byDir {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)

	// Pass 1: index declarations.
	for _, dir := range dirs {
		pkg := ld.byDir[dir]
		for _, file := range pkg.Files {
			rel := pkg.RelPath
			if d := parseDirectives(pkg.Fset, file); d.pathOverride != "" {
				rel = d.pathOverride
			}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &funcNode{obj: obj, decl: fd, pkg: pkg, file: file, rel: rel,
					paramObjs: map[types.Object]bool{}}
				if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
					n.recvObj = pkg.Info.Defs[fd.Recv.List[0].Names[0]]
				}
				for _, field := range paramFields(fd.Type) {
					for _, name := range field.Names {
						if o := pkg.Info.Defs[name]; o != nil {
							n.paramObjs[o] = true
						}
					}
				}
				g.nodes[obj] = n
				g.order = append(g.order, n)
			}
		}
	}
	sort.Slice(g.order, func(i, j int) bool { return g.order[i].decl.Pos() < g.order[j].decl.Pos() })

	// Pass 2: edges and direct facts.
	for _, n := range g.order {
		g.scanBody(n)
	}

	// Pass 3: fixpoints.
	g.solveSinkChains()
	g.solveStableChains()
	g.solveBools()
	solveAliasSummaries(g)
	return g
}

// paramFields lists receiver-free parameter and named-result fields:
// objects a caller can observe after the function returns, so writes
// into them count as escaping effects.
func paramFields(ft *ast.FuncType) []*ast.Field {
	var fields []*ast.Field
	if ft.Params != nil {
		fields = append(fields, ft.Params.List...)
	}
	if ft.Results != nil {
		fields = append(fields, ft.Results.List...)
	}
	return fields
}

// writerInterface loads io.Writer through the std importer so effect
// classification can ask "does this receiver implement io.Writer?".
func writerInterface(imp types.Importer) *types.Interface {
	pkg, err := imp.Import("io")
	if err != nil || pkg == nil {
		return nil
	}
	obj := pkg.Scope().Lookup("Writer")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

func (g *graph) implementsWriter(t types.Type) bool {
	if g.writer == nil || t == nil {
		return false
	}
	if types.Implements(t, g.writer) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), g.writer)
	}
	return false
}

// pureWriterMethods are method names that never constitute an emission
// even on a type that implements io.Writer (accessors on buffers).
var pureWriterMethods = map[string]bool{
	"Len": true, "Cap": true, "String": true, "Bytes": true, "Size": true,
	"Available": true, "Buffered": true, "Err": true, "Name": true,
}

// classifySink reports whether f is one of the nondeterminism sinks the
// determinism rules forbid (only ever matches standard-library paths).
func classifySink(f *types.Func) (class string, ok bool) {
	pkg := f.Pkg()
	if pkg == nil {
		return "", false
	}
	if sig, isSig := f.Type().(*types.Signature); !isSig || sig.Recv() != nil {
		return "", false
	}
	switch pkg.Path() {
	case "time":
		if wallClockFuncs[f.Name()] {
			return "wall-clock", true
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[f.Name()] {
			return "global-rand", true
		}
	case "os":
		if envFuncs[f.Name()] {
			return "env", true
		}
	}
	return "", false
}

// methodIdent identifies a method by (package base name, receiver type
// name, method name); base names make the match work for the fixture
// corpus's stand-in packages as well as the real module paths.
func methodIdent(f *types.Func) (pkgBase, recvType, name string, ok bool) {
	sig, isSig := f.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil || f.Pkg() == nil {
		return "", "", "", false
	}
	named := namedOf(sig.Recv().Type())
	if named == nil {
		return "", "", "", false
	}
	return path.Base(f.Pkg().Path()), named.Obj().Name(), f.Name(), true
}

// isStoreMutator reports a call into the stable-storage substrate:
// pagestore.Store.Write / pagestore.Store.Delete are the only two
// operations that change stable state.
func isStoreMutator(f *types.Func) bool {
	pkgBase, recvType, name, ok := methodIdent(f)
	return ok && pkgBase == "pagestore" && recvType == "Store" && (name == "Write" || name == "Delete")
}

// isJournalEmit reports the sanctioned journal sink obs.Journal.Emit.
func isJournalEmit(f *types.Func) bool {
	pkgBase, recvType, name, ok := methodIdent(f)
	return ok && pkgBase == "obs" && recvType == "Journal" && name == "Emit"
}

// rootIdent walks selector/index/slice/star/paren/address chains down to
// the leftmost identifier, or nil when the expression is not rooted in
// one (a call result, a literal).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// bodyScan carries the per-body state of the edge/fact pass.
type bodyScan struct {
	g      *graph
	n      *funcNode
	called map[*ast.Ident]bool
	// rooted holds the receiver object plus every local variable assigned
	// from a receiver-rooted expression, so mutations *through* such
	// locals (bp := m.pool[p]; bp.data = ...) still count as receiver
	// mutations.
	rooted map[types.Object]bool
}

func (g *graph) scanBody(n *funcNode) {
	s := &bodyScan{g: g, n: n, called: map[*ast.Ident]bool{}, rooted: map[types.Object]bool{}}
	if n.recvObj != nil {
		s.rooted[n.recvObj] = true
	}
	// Two passes over simple assignments so chains of receiver-rooted
	// locals resolve regardless of textual order.
	for range 2 {
		ast.Inspect(n.decl.Body, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || i >= len(x.Rhs) {
						continue
					}
					if root := rootIdent(x.Rhs[i]); root != nil && s.rooted[s.objectOf(root)] {
						if obj := s.objectOf(id); obj != nil {
							s.rooted[obj] = true
						}
					}
				}
			case *ast.RangeStmt:
				if root := rootIdent(x.X); root != nil && s.rooted[s.objectOf(root)] {
					if id, ok := x.Value.(*ast.Ident); ok {
						if obj := s.objectOf(id); obj != nil {
							s.rooted[obj] = true
						}
					}
				}
			}
			return true
		})
	}
	ast.Inspect(n.decl.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CallExpr:
			s.scanCall(x)
		case *ast.AssignStmt:
			s.scanAssign(x)
		case *ast.IncDecStmt:
			s.noteMutation(x.X)
		}
		return true
	})
	// Function-value references: any use of a function identifier that
	// was not consumed as a call target.
	ast.Inspect(n.decl.Body, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok || s.called[id] {
			return true
		}
		obj, ok := n.pkg.Info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		s.addEdge(obj, id.Pos(), edgeRef, nil)
		return true
	})
}

func (s *bodyScan) objectOf(id *ast.Ident) types.Object {
	if obj := s.n.pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return s.n.pkg.Info.Defs[id]
}

func (s *bodyScan) scanCall(call *ast.CallExpr) {
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		s.called[f] = true
		switch obj := s.n.pkg.Info.Uses[f].(type) {
		case *types.Func:
			s.addEdge(obj, call.Pos(), edgeCall, nil)
		case *types.Builtin:
			if f.Name == "delete" && len(call.Args) > 0 {
				s.noteMutation(call.Args[0])
			}
		}
	case *ast.SelectorExpr:
		s.called[f.Sel] = true
		obj, ok := s.n.pkg.Info.Uses[f.Sel].(*types.Func)
		if !ok {
			return
		}
		var recvExpr ast.Expr
		if sig, isSig := obj.Type().(*types.Signature); isSig && sig.Recv() != nil {
			recvExpr = f.X
		}
		s.addEdge(obj, call.Pos(), edgeCall, recvExpr)
		s.noteEmission(obj, f, call)
	}
}

func (s *bodyScan) addEdge(obj *types.Func, pos token.Pos, kind edgeKind, recvExpr ast.Expr) {
	n := s.n
	if class, ok := classifySink(obj); ok {
		n.sinks = append(n.sinks, sinkHit{kind: kind, pos: pos,
			name: path.Base(obj.Pkg().Path()) + "." + obj.Name(), class: class})
	}
	if isStoreMutator(obj) && !n.mutatesStable {
		n.mutatesStable = true
		n.stablePos = pos
		n.stableCallee = funcDisplayName(obj)
	}
	if isJournalEmit(obj) {
		n.emitsJournal = true
	}
	if callee := s.g.nodes[obj]; callee != nil {
		rooted := false
		if recvExpr != nil {
			if root := rootIdent(recvExpr); root != nil {
				rooted = s.rooted[s.objectOf(root)]
			}
		}
		n.calls = append(n.calls, edge{kind: kind, pos: pos, callee: callee, recvRooted: rooted})
	}
}

// noteEmission records the direct-emission base fact: a write into an
// io.Writer (or through fmt/log) whose target outlives this function.
// Writes into function-local buffers are not emissions — a helper that
// formats into a fresh bytes.Buffer and returns a string is pure.
func (s *bodyScan) noteEmission(obj *types.Func, sel *ast.SelectorExpr, call *ast.CallExpr) {
	if s.n.emitsOutput {
		return
	}
	sig, isSig := obj.Type().(*types.Signature)
	if !isSig {
		return
	}
	if sig.Recv() == nil {
		if obj.Pkg() == nil {
			return
		}
		switch obj.Pkg().Path() {
		case "fmt":
			name := obj.Name()
			switch {
			case name == "Print" || name == "Println" || name == "Printf":
				s.n.emitsOutput = true
			case strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 && s.escapingTarget(call.Args[0]):
				s.n.emitsOutput = true
			}
		case "log":
			s.n.emitsOutput = true
		}
		return
	}
	// Method calls: module methods contribute through their own computed
	// effects; only bodyless (std / interface) writer methods are base
	// facts here.
	if s.g.nodes[obj] != nil || pureWriterMethods[obj.Name()] {
		return
	}
	if tv, ok := s.n.pkg.Info.Types[sel.X]; ok && s.g.implementsWriter(tv.Type) && s.escapingTarget(sel.X) {
		s.n.emitsOutput = true
	}
}

// escapingTarget reports whether e is rooted in something a caller can
// observe: the receiver, a parameter or named result, a package-level
// variable, or a receiver-rooted local.
func (s *bodyScan) escapingTarget(e ast.Expr) bool {
	root := rootIdent(e)
	if root == nil {
		return false
	}
	obj := s.objectOf(root)
	if obj == nil {
		return false
	}
	return obj == s.n.recvObj || s.n.paramObjs[obj] || s.rooted[obj] || isGlobalVar(s.n.pkg, obj)
}

func isGlobalVar(pkg *Package, obj types.Object) bool {
	v, isVar := obj.(*types.Var)
	return isVar && pkg.Types != nil && v.Parent() == pkg.Types.Scope()
}

func (s *bodyScan) scanAssign(as *ast.AssignStmt) {
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if as.Tok != token.DEFINE && isGlobalVar(s.n.pkg, s.objectOf(id)) {
				s.n.mutatesGlobal = true
			}
			continue
		}
		s.noteMutation(lhs)
	}
}

// noteMutation classifies an assignment/inc-dec/delete target by its
// root: receiver-reachable state or package-level state.
func (s *bodyScan) noteMutation(target ast.Expr) {
	root := rootIdent(target)
	if root == nil {
		return
	}
	obj := s.objectOf(root)
	if obj == nil {
		return
	}
	switch {
	case s.rooted[obj]:
		s.n.mutatesRecv = true
	case isGlobalVar(s.n.pkg, obj):
		s.n.mutatesGlobal = true
	}
}

// --- fixpoints ---

func betterChain(a, b *chain) bool {
	if b == nil {
		return true
	}
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.pos < b.pos
}

func equalChain(a, b *chain) bool {
	if a == nil || b == nil {
		return a == b
	}
	return *a == *b
}

// solveSinkChains computes, for every function, the shortest chain to a
// nondeterminism sink. Function-value references count: handing
// time.Now to a callback slot taints the handler exactly like calling
// it.
func (g *graph) solveSinkChains() {
	seed := map[*funcNode]*chain{}
	for _, n := range g.order {
		for _, h := range n.sinks {
			c := &chain{dist: 1, pos: h.pos, kind: h.kind, leaf: h.name, class: h.class}
			if betterChain(c, seed[n]) {
				seed[n] = c
			}
		}
	}
	g.solve(seed, true, func(n *funcNode) *chain { return n.sinkChain },
		func(n *funcNode, c *chain) { n.sinkChain = c })
}

// solveStableChains computes the shortest chain to a stable-storage
// mutation (call edges only).
func (g *graph) solveStableChains() {
	seed := map[*funcNode]*chain{}
	for _, n := range g.order {
		if n.mutatesStable {
			seed[n] = &chain{dist: 1, pos: n.stablePos, kind: edgeCall, leaf: n.stableCallee}
		}
	}
	g.solve(seed, false, func(n *funcNode) *chain { return n.stableChain },
		func(n *funcNode, c *chain) { n.stableChain = c })
}

func (g *graph) solve(seed map[*funcNode]*chain, useRefs bool,
	get func(*funcNode) *chain, set func(*funcNode, *chain)) {
	for changed := true; changed; {
		changed = false
		for _, n := range g.order {
			best := seed[n]
			for i := range n.calls {
				e := &n.calls[i]
				if e.kind == edgeRef && !useRefs {
					continue
				}
				cc := get(e.callee)
				if cc == nil {
					continue
				}
				cand := &chain{dist: cc.dist + 1, pos: e.pos, kind: e.kind, callee: e.callee, class: cc.class}
				if betterChain(cand, best) {
					best = cand
				}
			}
			if !equalChain(best, get(n)) {
				set(n, best)
				changed = true
			}
		}
	}
}

// chainString renders a solved chain as "a.B -> c.D -> time.Now"
// starting from n.
func chainString(n *funcNode, get func(*funcNode) *chain) string {
	parts := []string{n.displayName()}
	c := get(n)
	for steps := 0; c != nil && steps < 64; steps++ {
		if c.callee == nil {
			parts = append(parts, c.leaf)
			break
		}
		parts = append(parts, c.callee.displayName())
		c = get(c.callee)
	}
	return strings.Join(parts, " -> ")
}

// solveBools propagates journal reachability and the emission/mutation
// effect summaries.
func (g *graph) solveBools() {
	for _, n := range g.order {
		n.reachJournal = n.emitsJournal
		n.effEmit = n.emitsOutput
		n.effMutRecv = n.mutatesRecv
		n.effMutGlobal = n.mutatesGlobal
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.order {
			for i := range n.calls {
				e := &n.calls[i]
				if e.kind != edgeCall {
					continue
				}
				if e.callee.reachJournal && !n.reachJournal {
					n.reachJournal = true
					changed = true
				}
				if e.callee.effEmit && !n.effEmit {
					n.effEmit = true
					changed = true
				}
				if e.callee.effMutGlobal && !n.effMutGlobal {
					n.effMutGlobal = true
					changed = true
				}
				if e.callee.effMutRecv && e.recvRooted && !n.effMutRecv {
					n.effMutRecv = true
					changed = true
				}
			}
		}
	}
}
