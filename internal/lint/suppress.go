package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// A suppression is one well-formed "//simlint:ignore RULE reason"
// comment. It silences diagnostics of that rule on the comment's own
// line (trailing comment) or the line directly below it (standalone
// comment above the offending statement).
type suppression struct {
	pos    token.Position
	rule   string
	reason string
	used   bool
}

// directives is everything simlint-specific found in one file's comments.
type directives struct {
	// pathOverride rewrites the module-relative path used for rule
	// scoping ("//simlint:path internal/sim"); the fixture corpus uses it
	// to stand in for kernel packages.
	pathOverride string
	supps        []*suppression
	malformed    []Diagnostic
}

// parseDirectives scans a file's comments for simlint directives.
// Malformed directives (missing reason, unknown rule, unknown verb) are
// reported as [LINT] errors so a typo cannot silently disable a check.
func parseDirectives(fset *token.FileSet, file *ast.File) *directives {
	d := &directives{}
	for _, group := range file.Comments {
		for _, cm := range group.List {
			text, isLine := strings.CutPrefix(cm.Text, "//")
			if !isLine {
				continue // only line comments carry directives
			}
			rest, isDirective := strings.CutPrefix(strings.TrimSpace(text), "simlint:")
			if !isDirective {
				continue
			}
			pos := fset.Position(cm.Pos())
			verb, arg, _ := strings.Cut(rest, " ")
			switch verb {
			case "ignore":
				rule, reason, _ := strings.Cut(strings.TrimSpace(arg), " ")
				reason = strings.TrimSpace(reason)
				switch {
				case rule == "":
					d.malformed = append(d.malformed, Diagnostic{Pos: pos, Rule: "LINT",
						Message: "simlint:ignore needs a rule ID and a reason: //simlint:ignore D00x <reason>"})
				case !KnownRule(rule):
					d.malformed = append(d.malformed, Diagnostic{Pos: pos, Rule: "LINT",
						Message: fmt.Sprintf("simlint:ignore names unknown rule %q (known: %s)", rule, strings.Join(ruleIDs(), ", "))})
				case reason == "":
					d.malformed = append(d.malformed, Diagnostic{Pos: pos, Rule: "LINT",
						Message: fmt.Sprintf("simlint:ignore %s requires a reason explaining why the invariant is safe to waive here", rule)})
				default:
					d.supps = append(d.supps, &suppression{pos: pos, rule: rule, reason: reason})
				}
			case "path":
				if p := strings.TrimSpace(arg); p != "" {
					d.pathOverride = p
				} else {
					d.malformed = append(d.malformed, Diagnostic{Pos: pos, Rule: "LINT",
						Message: "simlint:path needs a module-relative package path"})
				}
			default:
				d.malformed = append(d.malformed, Diagnostic{Pos: pos, Rule: "LINT",
					Message: fmt.Sprintf("unknown simlint directive %q (known: ignore, path)", verb)})
			}
		}
	}
	return d
}

// applySuppressions filters the file's rule diagnostics through its
// suppressions, then appends malformed-directive errors and
// stale-suppression warnings.
func applySuppressions(diags []Diagnostic, d *directives) []Diagnostic {
	var out []Diagnostic
	for _, diag := range diags {
		suppressed := false
		for _, s := range d.supps {
			if s.rule == diag.Rule && (s.pos.Line == diag.Pos.Line || s.pos.Line == diag.Pos.Line-1) {
				s.used = true
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, diag)
		}
	}
	out = append(out, d.malformed...)
	for _, s := range d.supps {
		if !s.used {
			out = append(out, Diagnostic{Pos: s.pos, Rule: "LINT", Warning: true,
				Message: fmt.Sprintf("stale simlint:ignore %s: no matching diagnostic on this line or the next", s.rule)})
		}
	}
	return out
}
