// Package obs is a stand-in for the observation layer; the base name
// plus the Journal.Emit method identity is what the D008 journal-sink
// detector keys on.
package obs

// Record is one journal entry.
type Record struct{ Event string }

// Journal is the sanctioned ordered sink.
type Journal struct{ recs []Record }

// Emit appends a record (nil-safe).
func (j *Journal) Emit(r Record) {
	if j == nil {
		return
	}
	j.recs = append(j.recs, r)
}
