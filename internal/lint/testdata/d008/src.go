// Package fixture exercises rule D008: journal-emission completeness.
// Posing as the WAL kernel, every exported method that (transitively)
// mutates stable storage must also reach the recovery journal sink
// obs.Journal.Emit on some path — a recovery architecture whose stable
// mutations leave no forensic trail cannot be audited after a crash.
//
//simlint:path internal/wal
package fixture

import (
	"fixture/d008/obs"
	"fixture/d008/pagestore"
)

// Engine is a stand-in recovery kernel.
type Engine struct {
	store *pagestore.Store
	j     *obs.Journal
}

// Load writes stable storage and never journals: flagged.
func (e *Engine) Load(p int64, data []byte) error {
	return e.store.Write(p, data)
}

// Purge mutates stable storage through an unexported helper; the chain
// is printed through it.
func (e *Engine) Purge(p int64) error {
	return e.drop(p)
}

func (e *Engine) drop(p int64) error {
	return e.store.Delete(p)
}

// Read never mutates stable storage: read-only methods are exempt.
func (e *Engine) Read(p int64) ([]byte, error) {
	return e.store.Read(p)
}

// Commit journals its stable mutation directly: allowed.
func (e *Engine) Commit(p int64, data []byte) error {
	if err := e.store.Write(p, data); err != nil {
		return err
	}
	e.j.Emit(obs.Record{Event: "commit"})
	return nil
}

// Abort reaches the journal through a helper: reachability is
// transitive, so this is allowed too.
func (e *Engine) Abort(p int64) error {
	e.note("abort")
	return e.store.Delete(p)
}

func (e *Engine) note(ev string) {
	e.j.Emit(obs.Record{Event: ev})
}
