// Package pagestore is a stand-in for the stable-storage substrate; the
// base name plus the Store.Write / Store.Delete method identities are
// what the D008 stable-mutation detector keys on.
package pagestore

// Store is the stable-storage stand-in.
type Store struct {
	pages map[int64][]byte
}

// Write persists data under page p.
func (s *Store) Write(p int64, data []byte) error {
	if s.pages == nil {
		s.pages = make(map[int64][]byte)
	}
	s.pages[p] = append([]byte(nil), data...)
	return nil
}

// Delete drops page p.
func (s *Store) Delete(p int64) error {
	delete(s.pages, p)
	return nil
}

// Read returns a copy of page p.
func (s *Store) Read(p int64) ([]byte, error) {
	return append([]byte(nil), s.pages[p]...), nil
}
