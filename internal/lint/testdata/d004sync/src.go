// Package fixture exercises the sync half of D004 by posing as a pure
// recovery kernel, where sync and sync/atomic references are banned: the
// kernel's concurrency envelope lives in the wrapper layer, never in the
// kernel itself.
//
//simlint:path internal/wal
package fixture

import (
	"sync"
	"sync/atomic"
)

// Engine smuggles a mutex into a pure kernel: the sync.Mutex field type
// alone is a violation.
type Engine struct {
	mu    sync.Mutex
	count uint64
}

// Bump locks around a counter update: the atomic call is a violation.
func (e *Engine) Bump() {
	e.mu.Lock()
	defer e.mu.Unlock()
	atomic.AddUint64(&e.count, 1)
}

// Fanout uses a WaitGroup (type and methods) and a goroutine: both halves
// of D004 fire.
func Fanout(fns []func()) {
	var wg sync.WaitGroup
	for _, fn := range fns {
		fn := fn
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn()
		}()
	}
	wg.Wait()
}
