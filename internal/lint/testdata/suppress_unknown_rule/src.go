// Package fixture: a suppression naming an unknown rule is rejected,
// and the real diagnostic still fires.
//
//simlint:path internal/fixture
package fixture

import "time"

// Stamp tries to waive a rule that does not exist.
func Stamp() int64 {
	return time.Now().UnixNano() //simlint:ignore D999 the wall clock is fine here
}
