// Package fixture shows the boundary of D004's sync ban: the same mutex
// that is a violation inside a pure kernel is exactly what the thread-safe
// wrapper layer is for. Posing as internal/engine (the wrapper package),
// none of this diagnoses.
//
//simlint:path internal/engine
package fixture

import (
	"sync"
	"sync/atomic"
)

// Guard serializes kernel calls; allowed outside the kernel scope.
type Guard struct {
	mu  sync.Mutex
	ops atomic.Int64
}

// Do runs fn under the guard lock.
func (g *Guard) Do(fn func()) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ops.Add(1)
	fn()
}
