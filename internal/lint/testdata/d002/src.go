// Package fixture exercises rule D002: the global math/rand stream.
//
//simlint:path internal/fixture
package fixture

import "math/rand"

// Draw uses the global stream: three violations.
func Draw() int {
	rand.Seed(42)
	if rand.Float64() < 0.5 {
		return rand.Intn(10)
	}
	return 0
}

// Seeded builds an explicitly seeded local generator: allowed.
func Seeded(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
