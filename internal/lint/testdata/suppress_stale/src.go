// Package fixture: a suppression with no matching diagnostic is
// reported as a stale-suppression warning.
//
//simlint:path internal/fixture
package fixture

// Pure has nothing to suppress; the comment is left over from an old
// wall-clock implementation.
func Pure(a, b int) int {
	//simlint:ignore D001 leftover from an old wall-clock implementation
	return a + b
}
