// Package fixture pins internal/server's side of the D004 boundary: the
// networked front end is wrapper-layer code — one goroutine per accepted
// session, a mutex around the connection table, channels for shutdown —
// and it reaches the pure kernels only through engine.Engine/engine.Guard.
// The exact constructs D004 bans inside the kernel scope must pass clean
// here. If internal/server is ever pulled into the kernel allowlist, this
// fixture fails.
//
//simlint:path internal/server
package fixture

import "sync"

// serve is the server's real shape in miniature: an accept loop handing
// each session to its own goroutine, a mutex-guarded registry, and a
// channel broadcast on shutdown — all legal outside the kernel scope.
func serve(sessions []func(), stop chan struct{}) {
	var mu sync.Mutex
	active := make(map[int]bool)
	var wg sync.WaitGroup
	for i, s := range sessions {
		mu.Lock()
		active[i] = true
		mu.Unlock()
		wg.Add(1)
		go func(i int, s func()) {
			defer wg.Done()
			select {
			case <-stop:
			default:
				s()
			}
			mu.Lock()
			delete(active, i)
			mu.Unlock()
		}(i, s)
	}
	wg.Wait()
}
