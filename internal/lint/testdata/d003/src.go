// Package fixture exercises rule D003: order-sensitive effects under a
// map iteration.
//
//simlint:path internal/fixture
package fixture

import (
	"fmt"
	"io"
	"sort"
)

type scheduler struct{ q []string }

// Schedule mutates the receiver, so its call order is observable.
func (s *scheduler) Schedule(name string) { s.q = append(s.q, name) }

// Probe only reads the receiver: calling it in map order has no effect.
func (s *scheduler) Probe(name string) bool {
	for _, have := range s.q {
		if have == name {
			return true
		}
	}
	return false
}

// EmitUnsorted writes rows in map order: nondeterministic output.
func EmitUnsorted(w io.Writer, stats map[string]int) {
	for k, v := range stats {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// CollectUnsorted leaks map order through the returned slice.
func CollectUnsorted(stats map[string]int) []string {
	var names []string
	for k := range stats {
		names = append(names, k)
	}
	return names
}

// FanOut schedules events in map order: nondeterministic event times.
func FanOut(s *scheduler, jobs map[string]int) {
	for name := range jobs {
		s.Schedule(name)
	}
}

// CountKnown calls an effect-free method in map order: allowed, the
// type-based check sees Probe never mutates anything that outlives the loop.
func CountKnown(s *scheduler, jobs map[string]int) int {
	n := 0
	for name := range jobs {
		if s.Probe(name) {
			n++
		}
	}
	return n
}

// LocalSink mutates a receiver created inside the loop body: allowed, the
// mutation cannot outlive the iteration.
func LocalSink(jobs map[string]int) {
	for name := range jobs {
		var s scheduler
		s.Schedule(name)
	}
}

// EmitSorted is the sorted-keys idiom: allowed.
func EmitSorted(w io.Writer, stats map[string]int) {
	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, stats[k])
	}
}

// Invert only writes map entries: order-insensitive, allowed.
func Invert(stats map[string]int) map[int]string {
	inv := make(map[int]string, len(stats))
	for k, v := range stats {
		inv[v] = k
	}
	return inv
}

// MaxValue folds with max: order-insensitive, allowed.
func MaxValue(stats map[string]int) int {
	best := 0
	for _, v := range stats {
		if v > best {
			best = v
		}
	}
	return best
}
