// Package fixture exercises rule D003: order-sensitive effects under a
// map iteration.
//
//simlint:path internal/fixture
package fixture

import (
	"fmt"
	"io"
	"sort"
)

type scheduler struct{}

func (scheduler) Schedule(name string) {}

// EmitUnsorted writes rows in map order: nondeterministic output.
func EmitUnsorted(w io.Writer, stats map[string]int) {
	for k, v := range stats {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// CollectUnsorted leaks map order through the returned slice.
func CollectUnsorted(stats map[string]int) []string {
	var names []string
	for k := range stats {
		names = append(names, k)
	}
	return names
}

// FanOut schedules events in map order: nondeterministic event times.
func FanOut(s scheduler, jobs map[string]int) {
	for name := range jobs {
		s.Schedule(name)
	}
}

// EmitSorted is the sorted-keys idiom: allowed.
func EmitSorted(w io.Writer, stats map[string]int) {
	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, stats[k])
	}
}

// Invert only writes map entries: order-insensitive, allowed.
func Invert(stats map[string]int) map[int]string {
	inv := make(map[int]string, len(stats))
	for k, v := range stats {
		inv[v] = k
	}
	return inv
}

// MaxValue folds with max: order-insensitive, allowed.
func MaxValue(stats map[string]int) int {
	best := 0
	for _, v := range stats {
		if v > best {
			best = v
		}
	}
	return best
}
