// Package util is a helper package outside the kernel scope: nothing
// here diagnoses directly, but its bodies carry taint into callers.
package util

import (
	"math/rand"
	"os"
	"time"
)

// WallStamp reads the host clock.
func WallStamp() time.Time { return time.Now() }

// DefaultDir reads configuration from the environment.
func DefaultDir() string { return os.Getenv("DBM_DIR") }

// NewRNG builds an explicitly seeded generator: allowed everywhere.
func NewRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
