// Package fixture exercises rule D006: transitive determinism taint.
// Posing as the WAL kernel, functions here must not reach a wall-clock,
// global-rand, or env sink through *any* call chain — including chains
// that cross into helper packages the per-file rules never look at, and
// function values captured without being called.
//
//simlint:path internal/wal
package fixture

import (
	"math/rand"
	"time"

	"fixture/d006/internal/util"
)

// Manager is a stand-in kernel type.
type Manager struct {
	seed  int64
	clock func() time.Time
	stamp time.Time
}

// Recover reaches time.Now through a helper package: the direct rule
// (D001) never sees it, the chain does.
func (m *Manager) Recover() error {
	m.stamp = util.WallStamp()
	return nil
}

// Configure reaches os.Getenv two hops away.
func (m *Manager) Configure() string {
	return util.DefaultDir()
}

// AttachClock captures time.Now as a function value without calling it:
// the stored value taints every later use.
func (m *Manager) AttachClock() {
	m.clock = time.Now
}

// Shuffle builds an explicitly seeded local generator through a helper:
// constructors are not sinks, so the chain is clean.
func (m *Manager) Shuffle() *rand.Rand {
	return util.NewRNG(m.seed)
}

// Tick calls the injected clock: a dynamic call through a function
// value is not a static chain, and injection is exactly the sanctioned
// fix — clean.
func (m *Manager) Tick() time.Time {
	if m.clock == nil {
		return time.Time{}
	}
	return m.clock()
}
