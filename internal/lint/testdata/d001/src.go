// Package fixture exercises rule D001: wall-clock time in simulation
// code. The path directive makes the corpus stand in for a simulation
// package.
//
//simlint:path internal/fixture
package fixture

import "time"

// Tick reads the host clock three ways; every read is a violation.
func Tick() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(start)
}

// Scale is pure duration arithmetic: allowed.
func Scale(d time.Duration) time.Duration { return 3 * d / 2 }
