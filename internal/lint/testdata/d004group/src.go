// Package fixture pins the relaxed concurrency envelope's side of the
// D004 boundary: internal/engine's groupguard.go is wrapper-layer code —
// a mutex-guarded commit batch, channels to park and release waiters, an
// atomic pointer for lock-free opt-in — and every kernel call it makes
// still happens under the one kernel mutex. The exact constructs D004
// bans inside the kernel scope must pass clean here. If internal/engine
// is ever pulled into the kernel allowlist, this fixture fails and the
// group-commit/striped-read layer has to move.
//
//simlint:path internal/engine
package fixture

import (
	"sync"
	"sync/atomic"
)

// batcher is groupguard.go's real shape in miniature: joiners queue under
// a mutex, the leader drains the queue in one pass, and completion fans
// out over per-waiter channels.
type batcher struct {
	mu      sync.Mutex
	queue   []chan struct{}
	leading bool
}

// commit parks the caller until its batch is flushed — legal outside the
// kernel scope, where D004 would reject every line of it.
func (b *batcher) commit() {
	done := make(chan struct{})
	b.mu.Lock()
	b.queue = append(b.queue, done)
	if b.leading {
		b.mu.Unlock()
		<-done
		return
	}
	b.leading = true
	b.mu.Unlock()

	b.mu.Lock()
	batch := b.queue
	b.queue, b.leading = nil, false
	b.mu.Unlock()
	for _, w := range batch {
		close(w)
	}
}

// cache is the striped read layer in miniature: an atomic pointer makes
// the whole relaxation an opt-in, and per-stripe RWMutexes serve reads
// without the kernel lock.
type cache struct {
	stripes atomic.Pointer[stripe]
}

type stripe struct {
	mu    sync.RWMutex
	pages map[int64][]byte
}

func (c *cache) get(p int64) ([]byte, bool) {
	s := c.stripes.Load()
	if s == nil {
		return nil, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.pages[p]
	return v, ok
}
