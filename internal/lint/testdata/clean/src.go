// Package fixture is a clean simulator-flavored package: seeded
// randomness, sorted map iteration, injected output. No findings.
//
//simlint:path internal/fixture
package fixture

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
)

// Model is a toy deterministic model.
type Model struct {
	rng   *rand.Rand
	stats map[string]float64
}

// NewModel seeds the model's private stream.
func NewModel(seed int64) *Model {
	return &Model{rng: rand.New(rand.NewSource(seed)), stats: map[string]float64{}}
}

// Step accumulates one observation.
func (m *Model) Step(name string) {
	m.stats[name] += m.rng.Float64()
}

// Dump writes the stats in sorted order to an injected writer.
func (m *Model) Dump(w io.Writer) {
	keys := make([]string, 0, len(m.stats))
	for k := range m.stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%g\n", k, m.stats[k])
	}
}
