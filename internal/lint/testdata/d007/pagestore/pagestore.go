// Package pagestore is a stand-in for the thread-safe stable-storage
// substrate; the base name is what makes the D007 exemption apply.
package pagestore

// Store is safe for concurrent use by contract.
type Store struct{ n int64 }

// Len reports the number of pages.
func (s *Store) Len() int64 { return s.n }
