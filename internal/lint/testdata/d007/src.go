// Package fixture exercises rule D007: kernel-state escape. Posing as
// the WAL kernel, exported methods must not return or store references
// that alias kernel-internal state — every byte slice, map, or pointer
// crossing the Guard boundary must be a copy, so callers above the
// Guard can never race the single-threaded kernel.
//
//simlint:path internal/wal
package fixture

import (
	"fixture/d007/obs"
	"fixture/d007/pagestore"
)

// Pool is a stand-in buffer-pool kernel type.
type Pool struct {
	frames map[int64][]byte
	order  []int64
	logs   *pagestore.Store
	j      *obs.Journal
}

// Frame returns the cached page bytes without a copy: the caller holds
// an alias into the pool.
func (p *Pool) Frame(id int64) []byte {
	return p.frames[id]
}

// Order returns the internal eviction order slice directly.
func (p *Pool) Order() []int64 {
	return p.order
}

// Install stores the caller's slice into the pool without a copy: the
// caller keeps an alias into kernel state.
func (p *Pool) Install(id int64, data []byte) {
	p.frames[id] = data
}

// FrameCopy is the sanctioned idiom: copy before returning.
func (p *Pool) FrameCopy(id int64) []byte {
	return append([]byte(nil), p.frames[id]...)
}

// InstallCopy stores a private copy of the caller's slice: allowed.
func (p *Pool) InstallCopy(id int64, data []byte) {
	p.frames[id] = append([]byte(nil), data...)
}

// LogStore hands out the stable-storage substrate, which is thread-safe
// by contract: exempt from the boundary rule.
func (p *Pool) LogStore() *pagestore.Store {
	return p.logs
}

// SetJournal stores the sanctioned observation sink: exempt.
func (p *Pool) SetJournal(j *obs.Journal) {
	p.j = j
}

// Stats builds a fresh map per call: allowed.
func (p *Pool) Stats() map[string]int64 {
	return map[string]int64{
		"frames": int64(len(p.frames)),
		"order":  int64(len(p.order)),
	}
}

// Stores hands the snapshot plane every stable store at once: a slice of
// the thread-safe substrate is as exempt as a single *pagestore.Store
// (the filestore-backed stores ride the same seam).
func (p *Pool) Stores() []*pagestore.Store {
	return []*pagestore.Store{p.logs}
}

// Frames is the negative control for the slice unwrap: a slice of
// NON-exempt slices into kernel state must still be flagged.
func (p *Pool) Frames() [][]byte {
	out := [][]byte{}
	for _, id := range p.order {
		out = append(out, p.frames[id])
	}
	return out
}
