// Package fixture shows D001's scope carve-out: posing as the runtime
// observability layer internal/obs/live — the one package allowed to read
// the host clock — none of these wall-clock reads diagnose. The same
// calls posed anywhere else under internal/ are violations (testdata/d001
// pins that side of the boundary).
//
//simlint:path internal/obs/live
package fixture

import "time"

// Stamp reads the host clock; legal only inside internal/obs/live.
func Stamp() time.Time { return time.Now() }

// AgeMS measures elapsed wall time since start.
func AgeMS(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}

// Ticker blocks on host time; legal here, banned in simulation scope.
func Ticker(d time.Duration) *time.Ticker { return time.NewTicker(d) }
