// Package fixture exercises rule D004 by posing as the simulator kernel,
// where concurrency primitives are banned outright.
//
//simlint:path internal/sim
package fixture

// Fire runs callbacks concurrently: channel type, goroutine, send,
// receive, and close are all violations.
func Fire(fns []func()) {
	done := make(chan struct{}, len(fns))
	for _, fn := range fns {
		fn := fn
		go func() {
			fn()
			done <- struct{}{}
		}()
	}
	for range fns {
		<-done
	}
	close(done)
}

// Wait races a channel against nothing: select and receive violations
// (plus the channel type in the signature).
func Wait(a chan int) int {
	select {
	case v := <-a:
		return v
	default:
		return 0
	}
}
