// Package fixture: a suppression without a reason is rejected, and the
// diagnostic it tried to silence still fires.
//
//simlint:path internal/fixture
package fixture

import "time"

// Stamp tries to waive D001 without saying why.
func Stamp() int64 {
	return time.Now().UnixNano() //simlint:ignore D001
}
