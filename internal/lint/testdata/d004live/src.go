// Package fixture shows the import half of D004: a kernel-scope package
// must not import the wrapper/runtime layer at all. Posing as
// internal/wal (a pure recovery kernel), even a blank import of the
// runtime metrics layer diagnoses — instrumentation is injected from
// above the Guard boundary, never compiled into the kernel.
//
//simlint:path internal/wal
package fixture

import _ "fixture/d004live/internal/obs/live"

// Redo is a stand-in kernel entry point; the violation is the import
// above, not anything this file does.
func Redo() {}
