// Package live is a stand-in for the runtime metrics layer so the
// d004live fixture can exercise D004's wrapper-import ban against an
// import path that actually resolves (matched by suffix internal/obs/live).
package live

// Counter is a minimal stand-in for the real lock-free counter.
type Counter struct{ v int64 }

// Add bumps the counter.
func (c *Counter) Add(d int64) { c.v += d }
