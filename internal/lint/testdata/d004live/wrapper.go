// The same import one layer up: posed as internal/engine (the wrapper),
// depending on the runtime metrics layer is exactly what the wrapper is
// for, and nothing here diagnoses.
//
//simlint:path internal/engine
package fixture

import "fixture/d004live/internal/obs/live"

// Count ticks a runtime counter; allowed outside the kernel scope.
func Count(c *live.Counter) { c.Add(1) }
