// Package fixture shows D004 scoping: the same concurrent code that is
// banned inside the kernel is fine in a runtime-side package.
//
//simlint:path internal/fixture
package fixture

// Fire runs callbacks concurrently; allowed outside the kernel scope.
func Fire(fns []func()) {
	done := make(chan struct{}, len(fns))
	for _, fn := range fns {
		fn := fn
		go func() {
			fn()
			done <- struct{}{}
		}()
	}
	for range fns {
		<-done
	}
	close(done)
}
