// Package fixture exercises rule D005: environment and stdout side
// channels in internal libraries.
//
//simlint:path internal/fixture
package fixture

import (
	"fmt"
	"io"
	"os"
)

// Verbose reads configuration from the environment: violation.
func Verbose() bool {
	return os.Getenv("SIM_VERBOSE") != ""
}

// Banner writes to the process stdout: violation.
func Banner() {
	fmt.Fprintln(os.Stdout, "simulator ready")
}

// Report writes to an injected writer: allowed.
func Report(w io.Writer) {
	fmt.Fprintln(w, "simulator ready")
}
