// Package fixture pins internal/runpool's side of the D004 boundary: the
// fan-out pool is the wrapper-layer home for the goroutines and atomics
// that drive pure kernels in parallel, so the exact constructs D004 bans
// inside the kernel scope must pass clean here. If runpool is ever pulled
// into the kernel allowlist, this fixture fails.
//
//simlint:path internal/runpool
package fixture

import "sync/atomic"

// run fans tasks out across workers claiming indices from an atomic
// counter — the pool's real shape: goroutines, channels, and atomics, all
// legal outside the kernel scope.
func run(workers int, tasks []func() int) []int {
	out := make([]int, len(tasks))
	var next atomic.Int64
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				out[i] = tasks[i]()
			}
		}()
	}
	for w := 0; w < workers; w++ {
		select {
		case <-done:
		}
	}
	return out
}
