// Package fixture pins internal/pagestore/filestore's side of the D004
// boundary: the file-backed stable-storage backend is wrapper-layer code.
// It owns the os.File handles, fsync barriers, and crash-truncation
// bookkeeping that make the pagestore durable, and it is serialized by the
// owning pagestore.Store — kernel code never touches a file directly, it
// reaches the disk only through *pagestore.Store. The D004/D006 kernel
// scopes must not grow to cover it. If filestore is ever pulled into the
// kernel allowlist, this fixture fails.
//
//simlint:path internal/pagestore/filestore
package fixture

import "os"

// backend mirrors the real backend's shape: an append-only log file plus
// the synced frontier that power-off truncates back to.
type backend struct {
	wal    *os.File
	synced int64
}

// appendRec writes one record and fsyncs — the append → fsync →
// acknowledge ordering the durability contract hangs on. Real file I/O is
// legal here; it would be banned (via the D006 sink taint) if this
// package were inside the kernel scope.
func (b *backend) appendRec(rec []byte) error {
	if _, err := b.wal.Write(rec); err != nil {
		return err
	}
	if err := b.wal.Sync(); err != nil {
		return err
	}
	b.synced += int64(len(rec))
	return nil
}

// powerOff truncates the unsynced tail, exactly as the real backend does.
func (b *backend) powerOff() error {
	if err := b.wal.Truncate(b.synced); err != nil {
		return err
	}
	return b.wal.Sync()
}
