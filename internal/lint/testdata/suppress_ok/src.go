// Package fixture shows well-formed suppressions: same-line and
// line-above comments with a rule ID and a reason.
//
//simlint:path internal/fixture
package fixture

import "time"

// Stamp names host-side log files; the wall clock never enters
// simulation state.
func Stamp() int64 {
	return time.Now().UnixNano() //simlint:ignore D001 host-side log file naming, never enters simulation state
}

// Boot waits for the host before the simulation starts.
func Boot() {
	//simlint:ignore D001 startup delay on the host side, outside the simulation
	time.Sleep(time.Millisecond)
}
