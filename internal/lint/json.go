package lint

// json.go renders a diagnostic list as a machine-readable report for CI
// artifacts. The encoding is deterministic: diagnostics arrive sorted
// from Run, field order is fixed by the struct, and paths are
// module-relative, so the same tree always produces byte-identical
// output (the cmd/simlint tests pin it as a golden file).

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// JSONFinding is the machine-readable form of one Diagnostic.
type JSONFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	Warning bool   `json:"warning,omitempty"`
}

// JSONReport is the top-level document written by WriteJSON.
type JSONReport struct {
	Findings []JSONFinding `json:"findings"`
	Failures int           `json:"failures"`
	Warnings int           `json:"warnings"`
}

// WriteJSON writes diags as an indented JSON report followed by a
// newline. Paths are rewritten relative to root (slash-separated), so
// the report is byte-identical wherever the module is checked out.
// Failures counts the findings that make a run fail (warnings only do
// under -strict; the caller applies that policy to the counts).
func WriteJSON(w io.Writer, root string, diags []Diagnostic) error {
	rep := JSONReport{Findings: make([]JSONFinding, 0, len(diags))}
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil && filepath.IsLocal(rel) {
			file = rel
		}
		rep.Findings = append(rep.Findings, JSONFinding{
			File:    filepath.ToSlash(file),
			Line:    d.Pos.Line,
			Rule:    d.Rule,
			Message: d.Message,
			Warning: d.Warning,
		})
		if d.Warning {
			rep.Warnings++
		} else {
			rep.Failures++
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
