package lint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, *directives) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "s.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, parseDirectives(fset, f)
}

func TestParseDirectivesValid(t *testing.T) {
	_, d := parseSrc(t, `package p

//simlint:path internal/sim
//simlint:ignore D003 the body only mutates commutative state
var x int
`)
	if d.pathOverride != "internal/sim" {
		t.Errorf("pathOverride = %q", d.pathOverride)
	}
	if len(d.malformed) != 0 {
		t.Errorf("unexpected malformed diagnostics: %v", d.malformed)
	}
	if len(d.supps) != 1 {
		t.Fatalf("suppressions = %v, want 1", d.supps)
	}
	s := d.supps[0]
	if s.rule != "D003" || s.reason != "the body only mutates commutative state" || s.pos.Line != 4 {
		t.Errorf("suppression = %+v", *s)
	}
}

func TestParseDirectivesLeadingSpace(t *testing.T) {
	// A space after // is tolerated; directives stay line comments only.
	_, d := parseSrc(t, `package p

// simlint:ignore D001 reads the host clock for log names only
var x int

/*simlint:ignore D001 block comments carry no directives*/
var y int
`)
	if len(d.supps) != 1 || d.supps[0].rule != "D001" {
		t.Fatalf("suppressions = %v, want the line-comment one", d.supps)
	}
	if len(d.malformed) != 0 {
		t.Errorf("unexpected malformed diagnostics: %v", d.malformed)
	}
}

func TestParseDirectivesMissingReason(t *testing.T) {
	for _, src := range []string{
		"package p\n\n//simlint:ignore D001\nvar x int\n",
		"package p\n\n//simlint:ignore D001   \nvar x int\n",
		"package p\n\n//simlint:ignore\nvar x int\n",
	} {
		_, d := parseSrc(t, src)
		if len(d.supps) != 0 {
			t.Errorf("%q: reason-less suppression accepted", src)
		}
		if len(d.malformed) != 1 {
			t.Errorf("%q: malformed = %v, want 1 diagnostic", src, d.malformed)
		}
	}
}

func TestParseDirectivesUnknownRule(t *testing.T) {
	_, d := parseSrc(t, `package p

//simlint:ignore D999 no such rule
var x int
`)
	if len(d.supps) != 0 {
		t.Error("unknown-rule suppression accepted")
	}
	if len(d.malformed) != 1 || !strings.Contains(d.malformed[0].Message, `unknown rule "D999"`) {
		t.Errorf("malformed = %v", d.malformed)
	}
}

func TestParseDirectivesUnknownVerb(t *testing.T) {
	_, d := parseSrc(t, `package p

//simlint:silence D001 wrong verb
var x int
`)
	if len(d.malformed) != 1 || !strings.Contains(d.malformed[0].Message, "unknown simlint directive") {
		t.Errorf("malformed = %v", d.malformed)
	}
}

func TestApplySuppressions(t *testing.T) {
	mk := func(line int, rule string) Diagnostic {
		d := Diagnostic{Rule: rule, Message: "m"}
		d.Pos.Filename = "s.go"
		d.Pos.Line = line
		return d
	}
	sup := func(line int, rule string) *suppression {
		s := &suppression{rule: rule, reason: "r"}
		s.pos.Line = line
		return s
	}

	// Same-line and line-above suppressions silence their rule only.
	d := &directives{supps: []*suppression{sup(10, "D001"), sup(19, "D003")}}
	out := applySuppressions([]Diagnostic{mk(10, "D001"), mk(10, "D002"), mk(20, "D003")}, d)
	if len(out) != 1 || out[0].Rule != "D002" {
		t.Errorf("applySuppressions = %v, want only the D002 diagnostic", out)
	}

	// A suppression that matches nothing becomes a stale warning.
	d = &directives{supps: []*suppression{sup(5, "D004")}}
	out = applySuppressions(nil, d)
	if len(out) != 1 || !out[0].Warning || out[0].Rule != "LINT" ||
		!strings.Contains(out[0].Message, "stale simlint:ignore D004") {
		t.Errorf("stale suppression result = %v", out)
	}

	// A suppression two lines above the diagnostic does not reach it.
	d = &directives{supps: []*suppression{sup(7, "D001")}}
	out = applySuppressions([]Diagnostic{mk(9, "D001")}, d)
	if len(out) != 2 {
		t.Errorf("distant suppression: got %v, want unsuppressed diagnostic plus stale warning", out)
	}
}
