package lint

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata golden files")

// fixtureDirs lists the fixture package directories under testdata.
func fixtureDirs(t *testing.T) (root string, dirs []string) {
	t.Helper()
	root, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	if len(dirs) == 0 {
		t.Fatal("no fixture directories under testdata")
	}
	return root, dirs
}

// TestRuleFixtures runs the analyzer over the whole fixture corpus in a
// single pass (sharing one type-checking loader) and compares each
// directory's findings against its expect.txt golden file. Re-generate
// goldens with: go test ./internal/lint -run RuleFixtures -update
func TestRuleFixtures(t *testing.T) {
	root, dirs := fixtureDirs(t)
	patterns := make([]string, len(dirs))
	for i, d := range dirs {
		patterns[i] = "./" + d
	}
	diags, err := Run(root, patterns, Config{})
	if err != nil {
		t.Fatal(err)
	}
	byDir := map[string][]string{}
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		d.Pos.Filename = filepath.ToSlash(rel)
		dir, _, _ := strings.Cut(d.Pos.Filename, "/")
		byDir[dir] = append(byDir[dir], d.String())
	}
	for _, dir := range dirs {
		t.Run(dir, func(t *testing.T) {
			got := ""
			if lines := byDir[dir]; len(lines) > 0 {
				got = strings.Join(lines, "\n") + "\n"
			}
			golden := filepath.Join(root, dir, "expect.txt")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestRuleToggle checks that -rules narrows the analysis to the selected
// rules and that unknown IDs are rejected.
func TestRuleToggle(t *testing.T) {
	root, _ := fixtureDirs(t)
	diags, err := Run(root, []string{"./d001"}, Config{Rules: []string{"D002"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("D001 fixture with only D002 enabled: want 0 diagnostics, got %v", diags)
	}
	diags, err = Run(root, []string{"./d001"}, Config{Rules: []string{"D001"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 3 {
		t.Errorf("D001 fixture with D001 enabled: want 3 diagnostics, got %v", diags)
	}
	if _, err := Run(root, []string{"./d001"}, Config{Rules: []string{"D042"}}); err == nil {
		t.Error("unknown rule ID accepted")
	}
}

// TestSelfCheck keeps the repository clean: the analyzer must report
// nothing (not even warnings) over internal/... and cmd/... — the same
// invocation `make lint` runs. Every true positive the original sweep
// found is fixed or carries a reasoned suppression; this test is the
// regression guard for both.
func TestSelfCheck(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(root, []string{"./internal/...", "./cmd/..."}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repository not lint-clean: %s", d)
	}
}

// TestDiagnosticFormat pins the file:line: [RULE] message contract.
func TestDiagnosticFormat(t *testing.T) {
	d := Diagnostic{Rule: "D001", Message: "no"}
	d.Pos.Filename = "a/b.go"
	d.Pos.Line = 7
	if got, want := d.String(), "a/b.go:7: [D001] no"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	d.Warning = true
	if got := d.String(); !strings.HasSuffix(got, " (warning)") {
		t.Errorf("warning diagnostic %q lacks the (warning) suffix", got)
	}
}

func TestScopeMatch(t *testing.T) {
	cases := []struct {
		pat, rel string
		want     bool
	}{
		{"internal/...", "internal/sim", true},
		{"internal/...", "internal/recovery/logging", true},
		{"internal/...", "internal", true},
		{"internal/...", "cmd/dbmsim", false},
		{"internal/sim", "internal/sim", true},
		{"internal/sim", "internal/simulator", false},
		{"internal/recovery/...", "internal/recovery/shadow", true},
		{"internal/recovery/...", "internal/recover", false},
	}
	for _, c := range cases {
		if got := scopeMatch(c.pat, c.rel); got != c.want {
			t.Errorf("scopeMatch(%q, %q) = %v, want %v", c.pat, c.rel, got, c.want)
		}
	}
}

// TestExpandPatterns checks the go-tool-style walk: testdata and hidden
// directories are skipped, plain patterns must exist.
func TestExpandPatterns(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := expandPatterns(root, []string{"./internal/..."})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range dirs {
		if strings.Contains(filepath.ToSlash(d), "/testdata") {
			t.Errorf("pattern expansion descended into %s", d)
		}
		if filepath.ToSlash(d) == filepath.ToSlash(filepath.Join(root, "internal/lint")) {
			found = true
		}
	}
	if !found {
		t.Error("pattern expansion missed internal/lint itself")
	}
	if _, err := expandPatterns(root, []string{"./no/such/dir"}); err == nil {
		t.Error("nonexistent plain pattern accepted")
	}
}

func TestModulePath(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if got := modulePath(root); got != "repro" {
		t.Errorf("modulePath = %q, want repro", got)
	}
	if got := modulePath(t.TempDir()); got != "fixture" {
		t.Errorf("modulePath without go.mod = %q, want fixture", got)
	}
}

func ExampleDiagnostic_String() {
	d := Diagnostic{Rule: "D003", Message: "map iteration"}
	d.Pos.Filename = "internal/obs/obs.go"
	d.Pos.Line = 12
	fmt.Println(d)
	// Output: internal/obs/obs.go:12: [D003] map iteration
}

// TestZeroSuppressions asserts the tree carries no //simlint:ignore
// directives at all: every finding the analyzer ever raised against the
// repository was fixed, not waived. The walk parses comments (so
// directive-shaped text inside string literals — the suppression
// parser's own tests — does not count) and skips the fixture corpus,
// which exists to exercise suppressions.
func TestZeroSuppressions(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		for _, s := range parseDirectives(fset, file).supps {
			t.Errorf("%s:%d: suppression //simlint:ignore %s — fix the finding instead of waiving it", path, s.pos.Line, s.rule)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
