// Package server is the networked transactional front end over the seven
// recovery architectures: a concurrent TCP server speaking a length-prefixed
// binary protocol that exposes Begin/Read/Write/Commit/Abort/Stats sessions
// over any engine.Engine, plus the matching client. It plays the role of the
// paper's back-end controller interface: many front-end hosts submit
// transaction requests, the controller schedules them against the recovery
// engine (page locks via internal/lockmgr, kernel calls serialized by
// engine.Guard), and deadlock victims are surfaced as a retryable response
// code rather than an error.
//
// This package is wrapper-side of the simlint D004 boundary: it owns
// goroutines, channels, and mutexes, and it reaches the pure kernels only
// through engine.Engine/engine.Guard. Wall time is read exclusively through
// internal/obs/live's Clock interface.
//
// # Wire format
//
// Every message — request and response — is one frame:
//
//	uint32 big-endian payload length | payload (1 ≤ length ≤ MaxFrame)
//
// A request payload is an opcode byte followed by fixed big-endian fields:
//
//	OpBegin  : op
//	OpRead   : op txn(8) page(8)
//	OpWrite  : op txn(8) page(8) data…
//	OpCommit : op txn(8)
//	OpAbort  : op txn(8)
//	OpStats  : op
//
// A response payload echoes the opcode, then a status byte, then a body:
//
//	StatusOK       : Begin → txn(8); Read → data…; Stats → nameLen(2) name
//	                 commits(8) aborts(8) deadlocks(8) sessions(8);
//	                 Write/Commit/Abort → empty
//	StatusDeadlock : empty — the transaction was chosen as a deadlock victim
//	                 and has already been aborted server-side; begin a new
//	                 transaction and retry
//	StatusError    : UTF-8 message
//	StatusBusy     : empty — a kernel admission limit (e.g. the overwriting
//	                 engines' fixed intention list) rejected the operation;
//	                 the transaction has been aborted server-side; begin a
//	                 new transaction and retry
//
// Decoding is strict: unknown opcodes, unknown statuses, truncated fixed
// fields, and over-long frames are errors, never panics, and a frame header
// can never cause more than MaxFrame bytes to be allocated.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Request opcodes.
const (
	OpBegin byte = iota + 1
	OpRead
	OpWrite
	OpCommit
	OpAbort
	OpStats
)

// Response status codes.
const (
	// StatusOK: the operation succeeded; the body is op-specific.
	StatusOK byte = iota
	// StatusDeadlock: the transaction was a deadlock victim and has been
	// aborted server-side. Retryable: begin a new transaction.
	StatusDeadlock
	// StatusError: the operation failed; the body is a message.
	StatusError
	// StatusBusy: a kernel admission limit rejected the operation and the
	// transaction has been aborted server-side. Retryable: begin a new
	// transaction.
	StatusBusy
)

// MaxFrame bounds a frame payload. A length prefix above it is rejected
// before any allocation, so a hostile or corrupt header cannot make the
// reader allocate gigabytes. Page data (≤ 4 KiB everywhere in this repo)
// fits with room for growth.
const MaxFrame = 1 << 20

// ErrFrameTooLarge is returned for a length prefix exceeding MaxFrame.
var ErrFrameTooLarge = errors.New("server: frame exceeds MaxFrame")

// ErrEmptyFrame is returned for a zero-length frame (every payload carries
// at least an opcode).
var ErrEmptyFrame = errors.New("server: empty frame")

// opName reports a diagnostic name for an opcode.
func opName(op byte) string {
	switch op {
	case OpBegin:
		return "begin"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpCommit:
		return "commit"
	case OpAbort:
		return "abort"
	case OpStats:
		return "stats"
	}
	return fmt.Sprintf("op%d", op)
}

// Request is one client request.
type Request struct {
	Op   byte
	Txn  uint64
	Page int64
	Data []byte // OpWrite payload
}

// Stats is the server-side counter snapshot returned by OpStats.
type Stats struct {
	Engine    string `json:"engine"`
	Commits   int64  `json:"commits"`
	Aborts    int64  `json:"aborts"`
	Deadlocks int64  `json:"deadlocks"`
	Sessions  int64  `json:"sessions"`
}

// Response is one server response. Op echoes the request opcode so a
// response decodes without request context.
type Response struct {
	Op     byte
	Status byte
	Txn    uint64 // OpBegin result
	Data   []byte // OpRead result
	Msg    string // StatusError message
	Stats  Stats  // OpStats result
}

// AppendRequest appends r's payload encoding (no frame header) to buf.
func AppendRequest(buf []byte, r Request) []byte {
	buf = append(buf, r.Op)
	switch r.Op {
	case OpBegin, OpStats:
	case OpCommit, OpAbort:
		buf = binary.BigEndian.AppendUint64(buf, r.Txn)
	case OpRead:
		buf = binary.BigEndian.AppendUint64(buf, r.Txn)
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.Page))
	case OpWrite:
		buf = binary.BigEndian.AppendUint64(buf, r.Txn)
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.Page))
		buf = append(buf, r.Data...)
	}
	return buf
}

// DecodeRequest parses one request payload. The returned Request's Data
// aliases payload; callers that keep it across frames must copy.
func DecodeRequest(payload []byte) (Request, error) {
	if len(payload) == 0 {
		return Request{}, ErrEmptyFrame
	}
	r := Request{Op: payload[0]}
	body := payload[1:]
	switch r.Op {
	case OpBegin, OpStats:
		if len(body) != 0 {
			return Request{}, fmt.Errorf("server: %s request carries %d stray bytes", opName(r.Op), len(body))
		}
	case OpCommit, OpAbort:
		if len(body) != 8 {
			return Request{}, fmt.Errorf("server: %s request body is %d bytes, want 8", opName(r.Op), len(body))
		}
		r.Txn = binary.BigEndian.Uint64(body)
	case OpRead:
		if len(body) != 16 {
			return Request{}, fmt.Errorf("server: read request body is %d bytes, want 16", len(body))
		}
		r.Txn = binary.BigEndian.Uint64(body)
		r.Page = int64(binary.BigEndian.Uint64(body[8:]))
	case OpWrite:
		if len(body) < 16 {
			return Request{}, fmt.Errorf("server: write request body is %d bytes, want ≥ 16", len(body))
		}
		r.Txn = binary.BigEndian.Uint64(body)
		r.Page = int64(binary.BigEndian.Uint64(body[8:]))
		r.Data = body[16:]
	default:
		return Request{}, fmt.Errorf("server: unknown opcode %d", r.Op)
	}
	return r, nil
}

// AppendResponse appends r's payload encoding (no frame header) to buf.
func AppendResponse(buf []byte, r Response) []byte {
	buf = append(buf, r.Op, r.Status)
	switch r.Status {
	case StatusError:
		return append(buf, r.Msg...)
	case StatusDeadlock, StatusBusy:
		return buf
	}
	switch r.Op {
	case OpBegin:
		return binary.BigEndian.AppendUint64(buf, r.Txn)
	case OpRead:
		return append(buf, r.Data...)
	case OpStats:
		name := r.Stats.Engine
		if len(name) > 0xffff {
			name = name[:0xffff]
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(name)))
		buf = append(buf, name...)
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.Stats.Commits))
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.Stats.Aborts))
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.Stats.Deadlocks))
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.Stats.Sessions))
	}
	return buf
}

// DecodeResponse parses one response payload. The returned Response's Data
// aliases payload; callers that keep it across frames must copy.
func DecodeResponse(payload []byte) (Response, error) {
	if len(payload) == 0 {
		return Response{}, ErrEmptyFrame
	}
	if len(payload) < 2 {
		return Response{}, fmt.Errorf("server: response payload is %d bytes, want ≥ 2", len(payload))
	}
	r := Response{Op: payload[0], Status: payload[1]}
	body := payload[2:]
	if r.Status == StatusError {
		// An error response may echo an opcode the decoder does not
		// recognize: the server echoes whatever byte led a malformed
		// request when it reports the protocol error.
		r.Msg = string(body)
		return r, nil
	}
	switch r.Op {
	case OpBegin, OpRead, OpWrite, OpCommit, OpAbort, OpStats:
	default:
		return Response{}, fmt.Errorf("server: unknown opcode %d in response", r.Op)
	}
	switch r.Status {
	case StatusDeadlock, StatusBusy:
		if len(body) != 0 {
			return Response{}, fmt.Errorf("server: status-%d response carries %d stray bytes", r.Status, len(body))
		}
		return r, nil
	case StatusOK:
	default:
		return Response{}, fmt.Errorf("server: unknown status %d", r.Status)
	}
	switch r.Op {
	case OpBegin:
		if len(body) != 8 {
			return Response{}, fmt.Errorf("server: begin response body is %d bytes, want 8", len(body))
		}
		r.Txn = binary.BigEndian.Uint64(body)
	case OpRead:
		r.Data = body
	case OpWrite, OpCommit, OpAbort:
		if len(body) != 0 {
			return Response{}, fmt.Errorf("server: %s response carries %d stray bytes", opName(r.Op), len(body))
		}
	case OpStats:
		if len(body) < 2 {
			return Response{}, fmt.Errorf("server: stats response body is %d bytes, want ≥ 2", len(body))
		}
		n := int(binary.BigEndian.Uint16(body))
		body = body[2:]
		if len(body) != n+32 {
			return Response{}, fmt.Errorf("server: stats response body is %d bytes, want %d", len(body), n+32)
		}
		r.Stats.Engine = string(body[:n])
		body = body[n:]
		r.Stats.Commits = int64(binary.BigEndian.Uint64(body))
		r.Stats.Aborts = int64(binary.BigEndian.Uint64(body[8:]))
		r.Stats.Deadlocks = int64(binary.BigEndian.Uint64(body[16:]))
		r.Stats.Sessions = int64(binary.BigEndian.Uint64(body[24:]))
	}
	return r, nil
}

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) == 0 {
		return ErrEmptyFrame
	}
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame, reusing buf when it has
// capacity. A header announcing more than MaxFrame bytes is rejected before
// any allocation; io.EOF is returned untouched only on a clean boundary
// (no header bytes read at all), so callers can distinguish an orderly
// disconnect from a truncated frame.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("server: truncated frame header: %w", err)
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, ErrEmptyFrame
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: header announces %d bytes", ErrFrameTooLarge, n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if got, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("server: truncated frame (%d of %d bytes): %w", got, n, io.ErrUnexpectedEOF)
		}
		return nil, err
	}
	return buf, nil
}

// WriteRequest encodes r and writes it as one frame.
func WriteRequest(w io.Writer, r Request) error {
	return WriteFrame(w, AppendRequest(nil, r))
}

// WriteResponse encodes r and writes it as one frame.
func WriteResponse(w io.Writer, r Response) error {
	return WriteFrame(w, AppendResponse(nil, r))
}
