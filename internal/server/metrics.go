package server

import (
	"repro/internal/obs/live"
)

// metricOp indexes the per-op histogram arrays in Metrics. It mirrors the
// protocol opcodes (metricOp(op-1) for a valid op byte).
type metricOp int

const (
	mBegin metricOp = iota
	mRead
	mWrite
	mCommit
	mAbort
	mStats

	numMetricOps
)

var metricOpNames = [numMetricOps]string{
	mBegin:  "begin",
	mRead:   "read",
	mWrite:  "write",
	mCommit: "commit",
	mAbort:  "abort",
	mStats:  "stats",
}

// Metrics is the server's runtime instrumentation: per-op service-time
// histograms, an in-flight session gauge, and request/deadlock/protocol
// error counters. All methods are lock-free and safe for concurrent use; a
// nil *Metrics is a valid no-op sink.
//
// Metrics implements live.Collector; register it on a live.Registry to
// expose server.<op>.ms summaries, the server.sessions gauge, and the
// counters through /metrics.
type Metrics struct {
	clock     live.Clock
	sessions  live.Gauge
	requests  live.Counter
	deadlocks live.Counter
	busies    live.Counter
	protoErrs live.Counter
	serviceMs [numMetricOps]live.Histogram
}

// NewMetrics returns server metrics reading time from clock (live.Wall() in
// production, a live.ManualClock in tests).
func NewMetrics(clock live.Clock) *Metrics {
	return &Metrics{clock: clock}
}

// SessionStarted records a session entering service and returns the current
// in-flight count.
func (m *Metrics) SessionStarted() int64 {
	if m == nil {
		return 0
	}
	return m.sessions.Add(1)
}

// SessionEnded records a session leaving service.
func (m *Metrics) SessionEnded() {
	if m != nil {
		m.sessions.Add(-1)
	}
}

// Sessions reports the in-flight session count.
func (m *Metrics) Sessions() int64 {
	if m == nil {
		return 0
	}
	return m.sessions.Value()
}

// MaxSessions reports the session high-water mark.
func (m *Metrics) MaxSessions() int64 {
	if m == nil {
		return 0
	}
	return m.sessions.Max()
}

// Requests reports the total request count.
func (m *Metrics) Requests() int64 {
	if m == nil {
		return 0
	}
	return m.requests.Value()
}

// observe records one served request of op kind taking ms milliseconds.
func (m *Metrics) observe(op metricOp, ms float64) {
	if m == nil || op < 0 || op >= numMetricOps {
		return
	}
	m.requests.Inc()
	m.serviceMs[op].Observe(ms)
}

// deadlock counts one StatusDeadlock response.
func (m *Metrics) deadlock() {
	if m != nil {
		m.deadlocks.Inc()
	}
}

// busy counts one StatusBusy response (kernel admission limit).
func (m *Metrics) busy() {
	if m != nil {
		m.busies.Inc()
	}
}

// protoError counts one malformed frame or request.
func (m *Metrics) protoError() {
	if m != nil {
		m.protoErrs.Inc()
	}
}

// ServiceHist returns the service-time histogram for the protocol op (do
// not mutate); nil for unknown ops.
func (m *Metrics) ServiceHist(op byte) *live.Histogram {
	if m == nil || op < OpBegin || op > OpStats {
		return nil
	}
	return &m.serviceMs[metricOp(op-1)]
}

// Collect implements live.Collector: ops never served are skipped so an
// idle server does not flood /metrics with empty summaries.
func (m *Metrics) Collect(s *live.Snapshot) {
	s.PutGauge("server.sessions", live.GaugeSnap{Value: m.sessions.Value(), Max: m.sessions.Max()})
	s.PutCounter("server.requests", m.requests.Value())
	s.PutCounter("server.deadlocks", m.deadlocks.Value())
	s.PutCounter("server.busy", m.busies.Value())
	s.PutCounter("server.proto_errors", m.protoErrs.Value())
	for op := metricOp(0); op < numMetricOps; op++ {
		if m.serviceMs[op].Count() != 0 {
			s.PutHist("server."+metricOpNames[op]+".ms", m.serviceMs[op].Snap())
		}
	}
}
