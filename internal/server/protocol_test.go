package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpBegin},
		{Op: OpStats},
		{Op: OpCommit, Txn: 7},
		{Op: OpAbort, Txn: 1<<63 + 9},
		{Op: OpRead, Txn: 3, Page: 41},
		{Op: OpRead, Txn: 3, Page: -1},
		{Op: OpWrite, Txn: 12, Page: 5, Data: []byte{}},
		{Op: OpWrite, Txn: 12, Page: 5, Data: []byte("hello page")},
	}
	for _, want := range reqs {
		payload := AppendRequest(nil, want)
		got, err := DecodeRequest(payload)
		if err != nil {
			t.Fatalf("decode %s: %v", opName(want.Op), err)
		}
		// Empty and nil Data are the same wire message.
		if len(want.Data) == 0 {
			want.Data, got.Data = nil, got.Data[:0:0]
			if len(got.Data) == 0 {
				got.Data = nil
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip %s: got %+v, want %+v", opName(want.Op), got, want)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{Op: OpBegin, Status: StatusOK, Txn: 99},
		{Op: OpRead, Status: StatusOK, Data: []byte("page image")},
		{Op: OpWrite, Status: StatusOK},
		{Op: OpCommit, Status: StatusOK},
		{Op: OpAbort, Status: StatusOK},
		{Op: OpStats, Status: StatusOK, Stats: Stats{
			Engine: "wal-1stream", Commits: 10, Aborts: 2, Deadlocks: 1, Sessions: 42,
		}},
		{Op: OpRead, Status: StatusDeadlock},
		{Op: OpWrite, Status: StatusDeadlock},
		{Op: OpWrite, Status: StatusBusy},
		{Op: OpCommit, Status: StatusBusy},
		{Op: OpCommit, Status: StatusError, Msg: "unknown transaction 7"},
		// An error response may echo an opcode the decoder does not know:
		// the server echoes the byte that led a malformed request.
		{Op: 0xEE, Status: StatusError, Msg: "server: unknown opcode 238"},
	}
	for _, want := range resps {
		payload := AppendResponse(nil, want)
		got, err := DecodeResponse(payload)
		if err != nil {
			t.Fatalf("decode %s/%d: %v", opName(want.Op), want.Status, err)
		}
		if len(want.Data) == 0 {
			want.Data = nil
			if len(got.Data) == 0 {
				got.Data = nil
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip %s/%d: got %+v, want %+v", opName(want.Op), want.Status, got, want)
		}
	}
}

func TestDecodeRequestRejectsMalformed(t *testing.T) {
	bad := [][]byte{
		{},                                   // empty payload
		{0},                                  // opcode 0
		{99},                                 // unknown opcode
		{255, 1, 2, 3},                       // unknown opcode with body
		{OpBegin, 1},                         // stray byte after begin
		{OpStats, 0, 0},                      // stray bytes after stats
		{OpCommit, 1, 2, 3},                  // commit body too short
		{OpAbort, 1, 2, 3, 4, 5, 6, 7, 8, 9}, // abort body too long
		append([]byte{OpRead}, make([]byte, 15)...),  // read body short
		append([]byte{OpRead}, make([]byte, 17)...),  // read body long
		append([]byte{OpWrite}, make([]byte, 15)...), // write header short
	}
	for _, payload := range bad {
		if _, err := DecodeRequest(payload); err == nil {
			t.Errorf("DecodeRequest(%v) accepted malformed payload", payload)
		}
	}
}

func TestDecodeResponseRejectsMalformed(t *testing.T) {
	bad := [][]byte{
		{},                             // empty
		{OpBegin},                      // no status
		{0, StatusOK},                  // opcode 0
		{77, StatusOK},                 // unknown opcode
		{OpRead, 9},                    // unknown status
		{OpRead, StatusDeadlock, 1},    // stray bytes on deadlock
		{OpWrite, StatusBusy, 1},       // stray bytes on busy
		{OpBegin, StatusOK, 1, 2, 3},   // begin body short
		{OpWrite, StatusOK, 1},         // stray bytes on write ok
		{OpStats, StatusOK, 0},         // stats body shorter than nameLen
		{OpStats, StatusOK, 0, 3, 'a'}, // stats name overruns body
	}
	// nameLen consistent but counter block truncated.
	statsShort := []byte{OpStats, StatusOK, 0, 1, 'x'}
	statsShort = append(statsShort, make([]byte, 31)...)
	bad = append(bad, statsShort)
	for _, payload := range bad {
		if _, err := DecodeResponse(payload); err == nil {
			t.Errorf("DecodeResponse(%v) accepted malformed payload", payload)
		}
	}
}

// TestDecodeNeverPanics drives both decoders with seeded random garbage and
// with random truncations/corruptions of valid encodings. Every call must
// return (possibly an error) — a panic fails the test by crashing it.
func TestDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		payload := make([]byte, rng.Intn(64))
		rng.Read(payload)
		DecodeRequest(payload)
		DecodeResponse(payload)
	}
	valid := [][]byte{
		AppendRequest(nil, Request{Op: OpWrite, Txn: 1, Page: 2, Data: []byte("data")}),
		AppendRequest(nil, Request{Op: OpRead, Txn: 1, Page: 2}),
		AppendResponse(nil, Response{Op: OpStats, Status: StatusOK, Stats: Stats{Engine: "shadow", Commits: 5}}),
		AppendResponse(nil, Response{Op: OpBegin, Status: StatusOK, Txn: 3}),
	}
	for _, v := range valid {
		for i := 0; i < 2000; i++ {
			mut := append([]byte(nil), v...)
			mut = mut[:rng.Intn(len(mut)+1)]
			if len(mut) > 0 && rng.Intn(2) == 0 {
				mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
			}
			DecodeRequest(mut)
			DecodeResponse(mut)
		}
	}
}

func TestWriteFrameRejectsEmptyAndOversized(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, nil); !errors.Is(err, ErrEmptyFrame) {
		t.Fatalf("WriteFrame(nil) = %v, want ErrEmptyFrame", err)
	}
	if err := WriteFrame(&buf, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("WriteFrame(MaxFrame+1) = %v, want ErrFrameTooLarge", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("rejected frames still wrote %d bytes", buf.Len())
	}
}

func TestReadFrameBoundaries(t *testing.T) {
	// Clean EOF at a frame boundary stays io.EOF so sessions can tell an
	// orderly disconnect from a truncated stream.
	if _, err := ReadFrame(bytes.NewReader(nil), nil); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
	// Partial header.
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0}), nil); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("partial header: %v, want ErrUnexpectedEOF", err)
	}
	// Header promising more payload than the stream carries.
	frame := []byte{0, 0, 0, 10, 'x', 'y'}
	if _, err := ReadFrame(bytes.NewReader(frame), nil); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated payload: %v, want ErrUnexpectedEOF", err)
	}
	// Zero-length frame.
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0}), nil); !errors.Is(err, ErrEmptyFrame) {
		t.Fatalf("zero frame: %v, want ErrEmptyFrame", err)
	}
	// A valid frame round-trips through WriteFrame/ReadFrame with buffer reuse.
	var stream bytes.Buffer
	if err := WriteFrame(&stream, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&stream, []byte("defg")); err != nil {
		t.Fatal(err)
	}
	buf, err := ReadFrame(&stream, nil)
	if err != nil || string(buf) != "abc" {
		t.Fatalf("frame 1: %q, %v", buf, err)
	}
	buf2, err := ReadFrame(&stream, buf[:0])
	if err != nil || string(buf2) != "defg" {
		t.Fatalf("frame 2: %q, %v", buf2, err)
	}
}

// TestReadFrameOversizedHeaderDoesNotAllocate feeds headers announcing up to
// 4 GiB of payload and asserts ReadFrame rejects them without allocating
// anywhere near the announced size.
func TestReadFrameOversizedHeaderDoesNotAllocate(t *testing.T) {
	announce := []uint32{MaxFrame + 1, 1 << 28, 1 << 31, 1<<32 - 1}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for _, n := range announce {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], n)
		if _, err := ReadFrame(bytes.NewReader(hdr[:]), nil); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("header %d: %v, want ErrFrameTooLarge", n, err)
		}
	}
	runtime.ReadMemStats(&after)
	if grew := after.TotalAlloc - before.TotalAlloc; grew > MaxFrame {
		t.Fatalf("rejecting oversized headers allocated %d bytes", grew)
	}
}
