package server

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/shadoweng"
	"repro/internal/wal"
)

// Architectures lists the seven functional recovery architectures a server
// can run over, by canonical name (the same names internal/faultinj sweeps
// and cmd/crashsweep reports use).
func Architectures() []string {
	return []string{
		"wal-1stream",
		"wal-3streams",
		"shadow",
		"ow-noundo",
		"ow-noredo",
		"verselect",
		"difffile",
	}
}

// NewEngine builds a fresh transactional engine over the named recovery
// architecture. The returned engine's kernel is wrapped in engine.Guard
// (engine.New does this), so it is safe for the server's concurrent
// sessions.
func NewEngine(name string) (*engine.Engine, error) {
	switch name {
	case "wal-1stream":
		return engine.NewWAL(wal.Config{}), nil
	case "wal-3streams":
		return engine.NewWAL(wal.Config{Streams: 3, Selection: wal.PageMod}), nil
	case "shadow":
		return engine.NewShadow()
	case "ow-noundo":
		return engine.NewOverwrite(shadoweng.NoUndo), nil
	case "ow-noredo":
		return engine.NewOverwrite(shadoweng.NoRedo), nil
	case "verselect":
		return engine.NewVersionSelect()
	case "difffile":
		return engine.NewDiff(), nil
	}
	known := Architectures()
	sort.Strings(known)
	return nil, fmt.Errorf("server: unknown architecture %q (have %s)",
		name, strings.Join(known, ", "))
}

// EnginesByName resolves a comma-separated architecture list; empty or
// "all" selects all seven.
func EnginesByName(sel string) ([]string, error) {
	if sel == "" || sel == "all" {
		return Architectures(), nil
	}
	var out []string
	for _, name := range strings.Split(sel, ",") {
		name = strings.TrimSpace(name)
		if _, err := NewEngine(name); err != nil {
			return nil, err
		}
		out = append(out, name)
	}
	return out, nil
}

// InitPages loads pages 0..n-1 into e, each holding val as an 8-byte
// big-endian integer — the balance-record page image the load generator's
// debit/credit transactions and the consistency audits expect.
func InitPages(e *engine.Engine, n int, val int64) error {
	var img [8]byte
	binary.BigEndian.PutUint64(img[:], uint64(val))
	for p := 0; p < n; p++ {
		if err := e.Load(int64(p), img[:]); err != nil {
			return fmt.Errorf("server: init page %d: %w", p, err)
		}
	}
	return nil
}

// DecodeBalance reads the 8-byte big-endian integer in a page image written
// by InitPages-style workloads; short images read as 0.
func DecodeBalance(data []byte) int64 {
	if len(data) < 8 {
		return 0
	}
	return int64(binary.BigEndian.Uint64(data))
}

// EncodeBalance renders v as the 8-byte page image DecodeBalance reads.
func EncodeBalance(v int64) []byte {
	var img [8]byte
	binary.BigEndian.PutUint64(img[:], uint64(v))
	return img[:]
}
