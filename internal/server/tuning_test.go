package server

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs/live"
)

func TestGuardTuningApplyAndString(t *testing.T) {
	var zero GuardTuning
	if zero.Enabled() {
		t.Error("zero tuning reports enabled")
	}
	if got := zero.String(); got != "plain guard" {
		t.Errorf("zero tuning String() = %q", got)
	}

	full := GuardTuning{GroupCommit: 8, GroupWait: 2 * time.Millisecond, ReadStripes: 16}
	if !full.Enabled() {
		t.Error("full tuning reports disabled")
	}
	if got := full.String(); got != "group commit (batch 8, wait 2ms) + 16 read stripes" {
		t.Errorf("full tuning String() = %q", got)
	}

	eng, err := NewEngine("wal-1stream")
	if err != nil {
		t.Fatal(err)
	}
	full.Apply(eng)
	if p, ok := eng.Guard().GroupCommit(); !ok || p.MaxBatch != 8 || p.MaxWait != 2*time.Millisecond {
		t.Errorf("applied policy = %+v,%v", p, ok)
	}
	if got := eng.Guard().ReadStripes(); got != 16 {
		t.Errorf("applied stripes = %d", got)
	}
	zero.Apply(eng)
	if _, ok := eng.Guard().GroupCommit(); ok {
		t.Error("zero tuning did not detach group commit")
	}
	if got := eng.Guard().ReadStripes(); got != 0 {
		t.Errorf("zero tuning left %d stripes", got)
	}
}

// TestTunedServerConservesBalances runs the debit/credit workload through a
// server whose Guard has the full relaxed envelope, then crashes and
// recovers: money must be conserved exactly as with the plain Guard.
func TestTunedServerConservesBalances(t *testing.T) {
	const (
		sessions = 8
		txns     = 2
		pages    = 8
		value    = int64(100)
	)
	eng, err := NewEngine("wal-1stream")
	if err != nil {
		t.Fatal(err)
	}
	if err := InitPages(eng, pages, value); err != nil {
		t.Fatal(err)
	}
	GuardTuning{GroupCommit: 4, GroupWait: time.Millisecond, ReadStripes: 8}.Apply(eng)

	srv := New(eng, Config{Metrics: NewMetrics(live.Wall())})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	var retries atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, sessions)
	for w := 0; w < sessions; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			c, err := Dial(addr.String())
			if err != nil {
				errc <- fmt.Errorf("session %d: %w", w, err)
				return
			}
			defer c.Close()
			for i := 0; i < txns; i++ {
				if err := transferT(c, rng, pages, &retries); err != nil {
					errc <- fmt.Errorf("session %d txn %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	eng.Crash()
	if err := eng.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	var sum int64
	for p := 0; p < pages; p++ {
		img, err := eng.ReadCommitted(int64(p))
		if err != nil {
			t.Fatalf("read committed page %d: %v", p, err)
		}
		sum += DecodeBalance(img)
	}
	if want := int64(pages) * value; sum != want {
		t.Fatalf("balance sum %d after crash+recover, want %d", sum, want)
	}
}
