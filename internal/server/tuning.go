package server

import (
	"fmt"
	"time"

	"repro/internal/engine"
)

// GuardTuning is the serving-side configuration of the engine Guard's
// relaxed concurrency envelope (group commit and striped read latching —
// see docs/DESIGN.md, "Concurrency envelope v2"). The zero value is the
// plain envelope: every operation serializes through the kernel mutex,
// exactly as before the relaxation existed.
type GuardTuning struct {
	// GroupCommit is the group-commit batch cap (GroupCommitPolicy.MaxBatch).
	// 0 or 1 disables batching.
	GroupCommit int
	// GroupWait bounds how long a commit leader holds the batch window open
	// for company (GroupCommitPolicy.MaxWait). 0 flushes opportunistically:
	// whoever queued while the previous batch drained rides along.
	GroupWait time.Duration
	// ReadStripes is the number of latch stripes for the committed-page
	// read cache; 0 disables striped reads. Values round up to a power of
	// two.
	ReadStripes int
}

// Enabled reports whether the tuning relaxes anything over the plain Guard.
func (t GuardTuning) Enabled() bool {
	return t.GroupCommit > 1 || t.ReadStripes > 0
}

// String renders the tuning the way dbserver logs it.
func (t GuardTuning) String() string {
	if !t.Enabled() {
		return "plain guard"
	}
	s := "plain commits"
	if t.GroupCommit > 1 {
		s = fmt.Sprintf("group commit (batch %d, wait %v)", t.GroupCommit, t.GroupWait)
	}
	if t.ReadStripes > 0 {
		s += fmt.Sprintf(" + %d read stripes", t.ReadStripes)
	}
	return s
}

// Apply configures e's Guard with the tuning. Call before the engine takes
// traffic: installing read stripes on a quiescent engine is a documented
// requirement of Guard.SetReadStripes.
func (t GuardTuning) Apply(e *engine.Engine) {
	e.Guard().SetGroupCommit(engine.GroupCommitPolicy{
		MaxBatch: t.GroupCommit,
		MaxWait:  t.GroupWait,
	}, nil)
	e.Guard().SetReadStripes(t.ReadStripes)
}
