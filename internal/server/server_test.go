package server

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs/live"
)

// startServer brings up an in-process server over the named architecture
// with pages preloaded to value, on an ephemeral loopback port.
func startServer(t *testing.T, arch string, pages int, value int64) (*Server, string) {
	t.Helper()
	eng, err := NewEngine(arch)
	if err != nil {
		t.Fatal(err)
	}
	if err := InitPages(eng, pages, value); err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Config{Metrics: NewMetrics(live.Wall())})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr.String()
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestSessionLifecycle(t *testing.T) {
	srv, addr := startServer(t, "wal-1stream", 4, 100)
	c := dialT(t, addr)

	txn, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	img, err := c.Read(txn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := DecodeBalance(img); got != 100 {
		t.Fatalf("initial balance %d, want 100", got)
	}
	if err := c.Write(txn, 0, EncodeBalance(250)); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(txn); err != nil {
		t.Fatal(err)
	}

	// A second transaction on the same session observes the commit.
	txn2, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	img, err = c.Read(txn2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := DecodeBalance(img); got != 250 {
		t.Fatalf("balance after commit %d, want 250", got)
	}
	// Abort rolls a write back.
	if err := c.Write(txn2, 0, EncodeBalance(999)); err != nil {
		t.Fatal(err)
	}
	if err := c.Abort(txn2); err != nil {
		t.Fatal(err)
	}
	if img, err := srv.Engine().ReadCommitted(0); err != nil || DecodeBalance(img) != 250 {
		t.Fatalf("after abort: balance %d (err %v), want 250", DecodeBalance(img), err)
	}

	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Engine == "" || stats.Commits < 1 || stats.Aborts < 1 {
		t.Fatalf("stats = %+v, want an engine name with ≥1 commit and ≥1 abort", stats)
	}
	if stats.Sessions < 1 {
		t.Fatalf("stats.Sessions = %d, want ≥ 1", stats.Sessions)
	}
}

func TestUnknownTransactionRejected(t *testing.T) {
	_, addr := startServer(t, "shadow", 2, 0)
	c := dialT(t, addr)
	err := c.Commit(12345)
	if err == nil || errors.Is(err, ErrDeadlock) {
		t.Fatalf("commit of never-begun txn: %v, want a status error", err)
	}
	// The session survives the error and can begin work.
	if _, err := c.Begin(); err != nil {
		t.Fatalf("begin after rejected commit: %v", err)
	}
}

// TestTxnsArePerSession: ids minted on one connection are invisible to
// another — a second session cannot commit (or abort) someone else's
// transaction.
func TestTxnsArePerSession(t *testing.T) {
	_, addr := startServer(t, "difffile", 2, 0)
	c1 := dialT(t, addr)
	c2 := dialT(t, addr)
	txn, err := c1.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Commit(txn); err == nil {
		t.Fatal("session 2 committed session 1's transaction")
	}
	if err := c1.Commit(txn); err != nil {
		t.Fatalf("owner commit: %v", err)
	}
}

// TestDeadlockSurfacedAsRetryable manufactures a two-transaction deadlock
// over the wire and asserts the victim's call returns ErrDeadlock while the
// survivor completes.
func TestDeadlockSurfacedAsRetryable(t *testing.T) {
	_, addr := startServer(t, "wal-1stream", 2, 100)
	c1 := dialT(t, addr)
	c2 := dialT(t, addr)

	t1, err := c1.Begin()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := c2.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Write(t1, 0, EncodeBalance(1)); err != nil {
		t.Fatal(err)
	}
	if err := c2.Write(t2, 1, EncodeBalance(2)); err != nil {
		t.Fatal(err)
	}

	errs := make(chan error, 2)
	go func() { errs <- c1.Write(t1, 1, EncodeBalance(3)) }()
	go func() { errs <- c2.Write(t2, 0, EncodeBalance(4)) }()
	errA, errB := <-errs, <-errs

	victims := 0
	if errors.Is(errA, ErrDeadlock) {
		victims++
	}
	if errors.Is(errB, ErrDeadlock) {
		victims++
	}
	if victims != 1 {
		t.Fatalf("deadlock produced %d victims (errs %v / %v), want exactly 1", victims, errA, errB)
	}
	// The survivor's transaction is still usable end to end.
	if !errors.Is(errA, ErrDeadlock) && errA == nil {
		if err := c1.Commit(t1); err != nil {
			t.Fatalf("survivor commit: %v", err)
		}
	}
	if !errors.Is(errB, ErrDeadlock) && errB == nil {
		if err := c2.Commit(t2); err != nil {
			t.Fatalf("survivor commit: %v", err)
		}
	}
}

// TestSessionDropAbortsOpenTxns: a client that vanishes mid-transaction must
// not strand its page locks.
func TestSessionDropAbortsOpenTxns(t *testing.T) {
	_, addr := startServer(t, "verselect", 2, 100)
	c1 := dialT(t, addr)
	t1, err := c1.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Write(t1, 0, EncodeBalance(55)); err != nil {
		t.Fatal(err)
	}
	c1.Close() // vanish holding an X lock on page 0

	// The handler aborts t1 asynchronously; a fresh session must be able to
	// take the lock promptly.
	c2 := dialT(t, addr)
	t2, err := c2.Begin()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		if err := c2.Write(t2, 0, EncodeBalance(77)); err != nil {
			done <- err
			return
		}
		done <- c2.Commit(t2)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("write after session drop: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write after session drop still blocked — dropped session stranded its lock")
	}
	// The dropped transaction's write must not have survived.
	img, err := c2Read(c2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := DecodeBalance(img); got != 77 {
		t.Fatalf("balance %d, want 77 (dropped txn's 55 must be rolled back)", got)
	}
}

func c2Read(c *Client, page int64) ([]byte, error) {
	txn, err := c.Begin()
	if err != nil {
		return nil, err
	}
	img, err := c.Read(txn, page)
	if err != nil {
		return nil, err
	}
	return img, c.Commit(txn)
}

// TestMalformedFrameGetsErrorThenClose: a garbage opcode draws one
// StatusError response and the connection closes; an oversized header
// closes the connection outright.
func TestMalformedFrameGetsErrorThenClose(t *testing.T) {
	srv, addr := startServer(t, "ow-noundo", 2, 0)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, []byte{0xEE, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(conn, nil)
	if err != nil {
		t.Fatalf("expected a StatusError response, got %v", err)
	}
	resp, err := DecodeResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusError {
		t.Fatalf("status %d, want StatusError", resp.Status)
	}
	if _, err := ReadFrame(conn, nil); err == nil {
		t.Fatal("session stayed open after protocol error")
	}

	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(conn2); err != nil && !errors.Is(err, io.EOF) {
		// ReadAll returning nil error means the server closed the socket,
		// which is what we want; a reset is equally acceptable.
		var ne net.Error
		if !errors.As(err, &ne) {
			t.Fatalf("oversized header: unexpected error %v", err)
		}
	}
	if srv.Metrics().Requests() != 0 {
		t.Fatalf("malformed frames were counted as served requests")
	}
}

// transferT is the test-side debit/credit transaction: move amt between two
// pages, retrying with a fresh transaction when chosen as deadlock victim.
func transferT(c *Client, rng *rand.Rand, pages int, retries *atomic.Int64) error {
	for attempt := 0; attempt < 1000; attempt++ {
		txn, err := c.Begin()
		if err != nil {
			return err
		}
		err = func() error {
			from := int64(rng.Intn(pages))
			to := int64(rng.Intn(pages - 1))
			if to >= from {
				to++
			}
			amt := rng.Int63n(10) + 1
			fromImg, err := c.Read(txn, from)
			if err != nil {
				return err
			}
			toImg, err := c.Read(txn, to)
			if err != nil {
				return err
			}
			if err := c.Write(txn, from, EncodeBalance(DecodeBalance(fromImg)-amt)); err != nil {
				return err
			}
			return c.Write(txn, to, EncodeBalance(DecodeBalance(toImg)+amt))
		}()
		if err == nil {
			err = c.Commit(txn)
			if err == nil {
				return nil
			}
		}
		if errors.Is(err, ErrDeadlock) || errors.Is(err, ErrBusy) {
			retries.Add(1)
			continue
		}
		c.Abort(txn)
		return err
	}
	return errors.New("starved: still a deadlock victim after 1000 attempts")
}

// TestConcurrentSessionsConsistentAfterCrash is the stress test: N sessions
// of conflicting debit/credit traffic against every architecture, then a
// crash and recovery, asserting the committed state still sums to the
// initial bank total. Run with -race.
func TestConcurrentSessionsConsistentAfterCrash(t *testing.T) {
	const (
		sessions = 16
		txns     = 3
		pages    = 8
		value    = int64(100)
	)
	for _, arch := range Architectures() {
		t.Run(arch, func(t *testing.T) {
			srv, addr := startServer(t, arch, pages, value)

			var retries atomic.Int64
			var wg sync.WaitGroup
			errc := make(chan error, sessions)
			for w := 0; w < sessions; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w) + 1))
					c, err := Dial(addr)
					if err != nil {
						errc <- fmt.Errorf("session %d: %w", w, err)
						return
					}
					defer c.Close()
					for i := 0; i < txns; i++ {
						if err := transferT(c, rng, pages, &retries); err != nil {
							errc <- fmt.Errorf("session %d txn %d: %w", w, i, err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}

			commits, _, _ := srv.Engine().Stats()
			if commits < sessions*txns {
				t.Fatalf("%d commits, want ≥ %d", commits, sessions*txns)
			}
			if srv.Metrics().MaxSessions() < 2 {
				t.Fatalf("max concurrent sessions %d, want ≥ 2", srv.Metrics().MaxSessions())
			}

			// Quiesce the network layer, then crash and recover the engine.
			if err := srv.Close(); err != nil {
				t.Fatal(err)
			}
			eng := srv.Engine()
			eng.Crash()
			if err := eng.Recover(); err != nil {
				t.Fatalf("recover: %v", err)
			}
			var sum int64
			for p := 0; p < pages; p++ {
				img, err := eng.ReadCommitted(int64(p))
				if err != nil {
					t.Fatalf("read committed page %d after recovery: %v", p, err)
				}
				sum += DecodeBalance(img)
			}
			if want := int64(pages) * value; sum != want {
				t.Fatalf("balance sum %d after crash+recover, want %d — committed transfers lost or leaked", sum, want)
			}
		})
	}
}

// TestServeAfterCloseRefuses: Close marks the server dead; Serve on a fresh
// listener must refuse rather than accept into a torn-down session table.
func TestServeAfterCloseRefuses(t *testing.T) {
	eng, err := NewEngine("shadow")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Config{})
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(ln); !errors.Is(err, ErrClosed) {
		t.Fatalf("Serve after Close = %v, want ErrClosed", err)
	}
}
