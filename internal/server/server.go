package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"

	"repro/internal/engine"
	"repro/internal/obs/live"
)

// Config tunes a Server. The zero value is usable: wall clock, no metrics,
// discarded logs.
type Config struct {
	// Clock supplies service-time measurements; nil means live.Wall().
	Clock live.Clock
	// Metrics receives per-op service times, the in-flight session gauge,
	// and request counters; nil disables instrumentation.
	Metrics *Metrics
	// Log receives one line per accept error and per session protocol
	// error; nil discards. (Output goes through an injected writer, never
	// a process-global stream.)
	Log io.Writer
}

// Server serves the wire protocol over TCP for one engine.Engine. Each
// accepted connection is one session, handled by its own goroutine; a
// session may interleave any number of concurrent transactions (the txn id
// returned by Begin multiplexes them), but frames on one connection are
// processed strictly in order.
//
// Transactions are owned by their session: ids minted by one connection's
// Begin are invisible to other connections, and any transaction still open
// when the session ends is aborted, so a dropped client cannot strand page
// locks and block the rest of the system.
type Server struct {
	eng   *engine.Engine
	clock live.Clock
	mx    *Metrics
	log   io.Writer

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

// New builds a server over eng.
func New(eng *engine.Engine, cfg Config) *Server {
	clock := cfg.Clock
	if clock == nil {
		clock = live.Wall()
	}
	logw := cfg.Log
	if logw == nil {
		logw = io.Discard
	}
	return &Server{
		eng:   eng,
		clock: clock,
		mx:    cfg.Metrics,
		log:   logw,
		conns: make(map[net.Conn]bool),
	}
}

// Engine returns the served engine (for maintenance surfaces: Guard(),
// Crash/Recover in tests, stats).
func (s *Server) Engine() *engine.Engine { return s.eng }

// Metrics returns the attached metrics (nil when none).
func (s *Server) Metrics() *Metrics { return s.mx }

// ErrClosed is returned by Serve after Close.
var ErrClosed = errors.New("server: closed")

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and serves in
// a background goroutine until Close. It returns the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = s.Serve(ln)
	}()
	return ln.Addr(), nil
}

// Serve accepts sessions on ln until Close (or a fatal listener error). It
// owns ln and closes it on return.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrClosed
			}
			fmt.Fprintf(s.log, "server: accept: %v\n", err)
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrClosed
		}
		s.conns[conn] = true
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting, closes every live session's connection, and waits
// for their handlers (which abort any open transactions) to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	sort.Slice(conns, func(i, j int) bool {
		return conns[i].RemoteAddr().String() < conns[j].RemoteAddr().String()
	})
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// stats assembles the OpStats reply.
func (s *Server) stats() Stats {
	commits, aborts, deadlocks := s.eng.Stats()
	return Stats{
		Engine:    s.eng.Name(),
		Commits:   commits,
		Aborts:    aborts,
		Deadlocks: deadlocks,
		Sessions:  s.mx.Sessions(),
	}
}

// handle runs one session: a strict request-response loop over length-
// prefixed frames. Any protocol error (malformed frame, unknown opcode)
// produces one StatusError response and closes the session — the stream
// cannot be trusted to be in sync afterwards.
func (s *Server) handle(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	s.mx.SessionStarted()
	defer s.mx.SessionEnded()

	br := bufio.NewReaderSize(conn, 8<<10)
	bw := bufio.NewWriterSize(conn, 8<<10)
	txns := make(map[uint64]*engine.Txn)
	defer s.abortOpen(txns)

	var inbuf, outbuf []byte
	for {
		payload, err := ReadFrame(br, inbuf)
		if err != nil {
			if err != io.EOF {
				s.mx.protoError()
				fmt.Fprintf(s.log, "server: session %s: %v\n", conn.RemoteAddr(), err)
			}
			return
		}
		inbuf = payload[:0]
		req, err := DecodeRequest(payload)
		if err != nil {
			s.mx.protoError()
			fmt.Fprintf(s.log, "server: session %s: %v\n", conn.RemoteAddr(), err)
			resp := Response{Op: payload[0], Status: StatusError, Msg: err.Error()}
			outbuf = AppendResponse(outbuf[:0], resp)
			_ = WriteFrame(bw, outbuf)
			_ = bw.Flush()
			return
		}

		start := s.clock.Now()
		resp := s.dispatch(txns, req)
		s.mx.observe(metricOp(req.Op-1), float64(s.clock.Now().Sub(start))/1e6)
		switch resp.Status {
		case StatusDeadlock:
			s.mx.deadlock()
		case StatusBusy:
			s.mx.busy()
		}

		outbuf = AppendResponse(outbuf[:0], resp)
		if err := WriteFrame(bw, outbuf); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// abortOpen rolls back every transaction the departing session left open,
// in ascending id order so lock releases replay deterministically.
func (s *Server) abortOpen(txns map[uint64]*engine.Txn) {
	ids := make([]uint64, 0, len(txns))
	for id := range txns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		_ = txns[id].Abort()
	}
}

// dispatch executes one decoded request against the engine. txns is the
// session's live transaction table; only ids minted by this session's
// Begins are honored.
func (s *Server) dispatch(txns map[uint64]*engine.Txn, req Request) Response {
	fail := func(err error) Response {
		return Response{Op: req.Op, Status: StatusError, Msg: err.Error()}
	}
	switch req.Op {
	case OpBegin:
		txn, err := s.eng.Begin()
		if err != nil {
			return fail(err)
		}
		txns[txn.ID()] = txn
		return Response{Op: req.Op, Status: StatusOK, Txn: txn.ID()}

	case OpStats:
		return Response{Op: req.Op, Status: StatusOK, Stats: s.stats()}
	}

	txn := txns[req.Txn]
	if txn == nil {
		return fail(fmt.Errorf("server: unknown transaction %d (not begun on this session)", req.Txn))
	}
	// retryable maps the engine's transient rejections onto wire statuses.
	// A deadlock victim is already aborted by the lock manager; a kernel
	// admission rejection (engine.ErrBusy, e.g. the overwriting engines'
	// fixed intention list) leaves the transaction open, so it is aborted
	// here — either way the client begins a fresh transaction and retries.
	retryable := func(err error) (Response, bool) {
		switch {
		case errors.Is(err, engine.ErrDeadlock):
			delete(txns, req.Txn)
			return Response{Op: req.Op, Status: StatusDeadlock}, true
		case errors.Is(err, engine.ErrBusy):
			_ = txn.Abort()
			delete(txns, req.Txn)
			return Response{Op: req.Op, Status: StatusBusy}, true
		}
		return Response{}, false
	}

	switch req.Op {
	case OpRead:
		data, err := txn.Read(req.Page)
		if resp, ok := retryable(err); ok {
			return resp
		}
		if err != nil {
			return fail(err)
		}
		return Response{Op: req.Op, Status: StatusOK, Data: data}

	case OpWrite:
		err := txn.Write(req.Page, req.Data)
		if resp, ok := retryable(err); ok {
			return resp
		}
		if err != nil {
			return fail(err)
		}
		return Response{Op: req.Op, Status: StatusOK}

	case OpCommit:
		delete(txns, req.Txn)
		if err := txn.Commit(); err != nil {
			// A commit rejected at the admission limit has released its
			// locks without applying any effects (the intention record was
			// never published) — transient, so the client may retry.
			if errors.Is(err, engine.ErrBusy) {
				return Response{Op: req.Op, Status: StatusBusy}
			}
			return fail(err)
		}
		return Response{Op: req.Op, Status: StatusOK}

	case OpAbort:
		delete(txns, req.Txn)
		if err := txn.Abort(); err != nil {
			return fail(err)
		}
		return Response{Op: req.Op, Status: StatusOK}
	}
	return fail(fmt.Errorf("server: unhandled opcode %d", req.Op))
}
