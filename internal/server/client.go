package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
)

// ErrDeadlock is returned by Client calls whose transaction was chosen as a
// deadlock victim. The transaction has already been aborted server-side;
// begin a new one and retry.
var ErrDeadlock = errors.New("server: transaction aborted as deadlock victim (retry)")

// ErrBusy is returned by Client calls rejected by a kernel admission limit
// (e.g. the overwriting engines' fixed intention list). The transaction has
// already been aborted server-side; begin a new one and retry, ideally
// after a short backoff.
var ErrBusy = errors.New("server: transaction aborted at kernel admission limit (retry)")

// Client is one session against a dbserver: a single TCP connection
// carrying strict request-response frames. A Client is owned by one
// goroutine; open as many Clients as you want concurrent sessions.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	in   []byte
	out  []byte
}

// Dial opens a session to addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (any net.Conn, e.g. one end of
// a net.Pipe in tests).
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 8<<10),
		bw:   bufio.NewWriterSize(conn, 8<<10),
	}
}

// Close ends the session. Transactions still open are aborted server-side.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends req and decodes the matching response, translating
// StatusDeadlock and StatusError into errors.
func (c *Client) roundTrip(req Request) (Response, error) {
	c.out = AppendRequest(c.out[:0], req)
	if err := WriteFrame(c.bw, c.out); err != nil {
		return Response{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return Response{}, err
	}
	payload, err := ReadFrame(c.br, c.in)
	if err != nil {
		return Response{}, err
	}
	c.in = payload[:0]
	resp, err := DecodeResponse(payload)
	if err != nil {
		return Response{}, err
	}
	if resp.Op != req.Op {
		return Response{}, fmt.Errorf("server: response op %s for request %s — stream out of sync",
			opName(resp.Op), opName(req.Op))
	}
	switch resp.Status {
	case StatusOK:
		return resp, nil
	case StatusDeadlock:
		return resp, ErrDeadlock
	case StatusBusy:
		return resp, ErrBusy
	default:
		return resp, fmt.Errorf("server: %s: %s", opName(req.Op), resp.Msg)
	}
}

// Begin starts a transaction and returns its id.
func (c *Client) Begin() (uint64, error) {
	resp, err := c.roundTrip(Request{Op: OpBegin})
	return resp.Txn, err
}

// Read returns page p under txn's shared lock. ErrDeadlock means txn was
// aborted as a deadlock victim.
func (c *Client) Read(txn uint64, p int64) ([]byte, error) {
	resp, err := c.roundTrip(Request{Op: OpRead, Txn: txn, Page: p})
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), resp.Data...), nil
}

// Write replaces page p under txn's exclusive lock. ErrDeadlock means txn
// was aborted as a deadlock victim.
func (c *Client) Write(txn uint64, p int64, data []byte) error {
	_, err := c.roundTrip(Request{Op: OpWrite, Txn: txn, Page: p, Data: data})
	return err
}

// Commit makes txn durable and releases its locks.
func (c *Client) Commit(txn uint64) error {
	_, err := c.roundTrip(Request{Op: OpCommit, Txn: txn})
	return err
}

// Abort rolls txn back and releases its locks.
func (c *Client) Abort(txn uint64) error {
	_, err := c.roundTrip(Request{Op: OpAbort, Txn: txn})
	return err
}

// Stats fetches the server's counter snapshot.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.roundTrip(Request{Op: OpStats})
	return resp.Stats, err
}
